GO ?= go

.PHONY: all test race vet bench bench-json experiments fuzz clean

all: vet test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt -l exits 0 even when it lists files, so fail explicitly on any
# output.
vet:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fixed-seed throughput suite -> BENCH_PR2.json (schema-validated; CI diffs
# the artifact across runs). Override e.g. BENCH_JSON_FLAGS="-procs 4 -ops 500".
BENCH_JSON_FLAGS ?=
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json -pretty $(BENCH_JSON_FLAGS)
	$(GO) run ./cmd/benchjson -check BENCH_PR2.json

# Regenerate every table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/tradeoff -format markdown

# Short fuzzing session over every fuzz target.
fuzz:
	$(GO) test -fuzz FuzzMaxRegisterAgreement -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzMaxRegisterCheckerSoundness -fuzztime 30s ./internal/history
	$(GO) test -fuzz FuzzCounterCheckerSoundness -fuzztime 30s ./internal/history

clean:
	$(GO) clean -testcache
