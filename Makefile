GO ?= go

.PHONY: all test race race-sim race-flight vet lint bench bench-json explore-bench experiments flight-smoke fuzz fuzz-smoke clean

all: vet lint test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Targeted race pass over the simulator: the work-stealing exploration
# engine and recycler are the repo's only scheduler-side concurrency, so
# this is the fast smoke CI runs on every push.
race-sim:
	$(GO) test -race ./internal/sim/...

# Targeted race pass over the flight recorder: the seqlock rings, hybrid
# clock, and monitor goroutine are the observability layer's only
# lock-free concurrency, plus the facade-level tests that scrape
# /metrics and /debug/history while a recorded workload runs.
race-flight:
	$(GO) test -race ./internal/obs/flight/... ./internal/bench/flightlive/...
	$(GO) test -race -run TestFlight .

# Short live run with the flight recorder attached at the default 1/64
# sampling rate: a concurrent workload over all four object families
# through the public facade, failing on any detected linearizability
# violation or a drop rate that says the monitor cannot keep up. See
# docs/flight-recorder.md.
flight-smoke:
	$(GO) run ./cmd/tradeoff -run flight

# gofmt -l exits 0 even when it lists files, so fail explicitly on any
# output.
vet:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# Step-accounting static analysis (modelstep, poolalloc, ctxflow,
# boundedloop) — see docs/static-analysis.md.
lint:
	$(GO) run ./cmd/tradeoffvet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fixed-seed throughput suite -> $(BENCH_JSON_OUT) (schema-validated; CI
# diffs the artifact across runs). Override the destination with
# BENCH_JSON_OUT=..., the workload with e.g.
# BENCH_JSON_FLAGS="-procs 4 -ops 500".
BENCH_JSON_OUT ?= BENCH_PR2.json
BENCH_JSON_FLAGS ?=
bench-json:
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON_OUT) -pretty $(BENCH_JSON_FLAGS)
	$(GO) run ./cmd/benchjson -check $(BENCH_JSON_OUT)

# Exhaustive-exploration scaling suite (the E12 experiment): sequential
# sim.Explore vs ExploreParallel at 1, 2, 4, and 8 workers over the
# reference workloads -> $(EXPLORE_BENCH_OUT). Shrink the workload with
# e.g. EXPLORE_BENCH_FLAGS="-procs 2 -steps 2 -workers 1,2".
EXPLORE_BENCH_OUT ?= EXPLORE_BENCH.json
EXPLORE_BENCH_FLAGS ?=
explore-bench:
	$(GO) run ./cmd/benchjson -suite explore -out $(EXPLORE_BENCH_OUT) -pretty $(EXPLORE_BENCH_FLAGS)
	$(GO) run ./cmd/benchjson -check $(EXPLORE_BENCH_OUT)

# Regenerate every table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/tradeoff -format markdown

# Fuzzing session over every fuzz target; FUZZTIME=5s for a quick smoke.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzMaxRegisterAgreement -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -fuzz FuzzMaxRegisterCheckerSoundness -fuzztime $(FUZZTIME) ./internal/history
	$(GO) test -fuzz FuzzCounterCheckerSoundness -fuzztime $(FUZZTIME) ./internal/history

# CI-sized fuzz pass.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=5s

clean:
	$(GO) clean -testcache
