GO ?= go

.PHONY: all test race race-sim race-flight vet lint vet-json bounds bounds-json bounds-check bounds-smoke bench bench-json explore-bench contention-bench dpor-bench bench-gate bench-profile bench-append bench-dash bench-ci-baselines experiments flight-smoke fuzz fuzz-smoke clean

all: vet lint test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Targeted race pass over the simulator: the work-stealing exploration
# engine and recycler are the repo's only scheduler-side concurrency, so
# this is the fast smoke CI runs on every push. The simtrace invocations
# run the DPOR coverage cross-check (sim.CrossCheckReduction) at smoke
# size on every config: reduced and unreduced exploration must visit the
# same set of Mazurkiewicz trace classes — see docs/exploration.md.
# The counter seeds are chosen so the random workloads draw increments,
# not just reads (the default seed happens to draw all-reads at n=2
# ops=2, which collapses to one trace class and checks nothing): seed 2
# on cas is full=56 reduced=19 classes=16, seed 4 on farray is full=78
# reduced=6 classes=6, and algorithm-a is full=210 reduced=6 (35x).
race-sim:
	$(GO) test -race ./internal/sim/...
	$(GO) run ./cmd/simtrace -object counter -impl cas -n 2 -ops 2 -seed 2 -crosscheck
	$(GO) run ./cmd/simtrace -object counter -impl farray -n 2 -ops 2 -seed 4 -crosscheck
	$(GO) run ./cmd/simtrace -object maxreg -impl algorithm-a -n 2 -ops 2 -crosscheck

# Targeted race pass over the flight recorder: the seqlock rings, hybrid
# clock, and monitor goroutine are the observability layer's only
# lock-free concurrency, plus the facade-level tests that scrape
# /metrics and /debug/history while a recorded workload runs.
race-flight:
	$(GO) test -race ./internal/obs/flight/... ./internal/bench/flightlive/...
	$(GO) test -race -run 'TestFlight|TestBound' .

# Short live run with the flight recorder attached at the default 1/64
# sampling rate: a concurrent workload over all four object families
# through the public facade, failing on any detected linearizability
# violation or a drop rate that says the monitor cannot keep up. See
# docs/flight-recorder.md.
flight-smoke:
	$(GO) run ./cmd/tradeoff -run flight

# gofmt -l exits 0 even when it lists files, so fail explicitly on any
# output.
vet:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# Step-accounting static analysis (modelstep, poolalloc, ctxflow,
# boundedloop, stepbound, atomicprotocol, padalign) — see
# docs/static-analysis.md. The second invocation also fails on
# tradeoffvet: annotations that no analyzer consulted. Also fails when
# the committed bound table is stale (bounds-check).
lint: bounds-check
	$(GO) run ./cmd/tradeoffvet -unused-suppressions ./...

# Machine-readable lint report for CI artifacts, plus the certified
# step-bound table (exit 1 if any declared bound fails to certify).
VET_JSON_OUT ?= tradeoffvet.json
vet-json:
	$(GO) run ./cmd/tradeoffvet -unused-suppressions -format json -out $(VET_JSON_OUT) ./...

# Declared-vs-derived step bound table (tradeoffvet -bounds).
bounds:
	$(GO) run ./cmd/tradeoffvet -bounds ./...

# Regenerate the committed machine-readable bound table that the runtime
# conformance layer embeds (internal/obs/bounds reads this at startup).
# Run after any //tradeoffvet:bound or cost-model change, and commit the
# result with the change that explains it.
bounds-json:
	$(GO) run ./cmd/tradeoffvet -bounds -format json -out dev/bounds/bounds.json ./...

# Freshness gate for the committed bound table: regenerate to a temp
# file and compare byte-for-byte (the generator is deterministic). Fails
# when an annotation change landed without `make bounds-json`, which
# would leave the runtime checking bounds the analyzer no longer
# certifies.
bounds-check:
	@tmp="$$(mktemp)"; \
	$(GO) run ./cmd/tradeoffvet -bounds -format json -out "$$tmp" ./... || { rm -f "$$tmp"; exit 1; }; \
	if ! cmp -s "$$tmp" dev/bounds/bounds.json; then \
		echo "dev/bounds/bounds.json is stale; run 'make bounds-json' and commit the result"; \
		rm -f "$$tmp"; exit 1; \
	fi; \
	rm -f "$$tmp"

# Live bound-conformance smoke: drive all four object families (plus the
# sharded/batched/adaptive counter backends) through the public facade
# and fail on any unexplained exceedance or worst-case violation, then
# round-trip the planted-violation exemplar (latch, dump, re-check).
bounds-smoke:
	$(GO) test -count=1 -run TestBound .

bench:
	$(GO) test -bench=. -benchmem ./...

# Fixed-seed throughput suite -> $(BENCH_JSON_OUT) (schema-validated; CI
# diffs the artifact across runs). Override the destination with
# BENCH_JSON_OUT=..., the workload with e.g.
# BENCH_JSON_FLAGS="-procs 4 -ops 500".
BENCH_JSON_OUT ?= BENCH_PR2.json
BENCH_JSON_FLAGS ?=
bench-json:
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON_OUT) -pretty $(BENCH_JSON_FLAGS)
	$(GO) run ./cmd/benchjson -check $(BENCH_JSON_OUT)

# Exhaustive-exploration scaling suite (the E12 experiment): sequential
# sim.Explore vs ExploreParallel at 1, 2, 4, and 8 workers over the
# reference workloads -> $(EXPLORE_BENCH_OUT). Shrink the workload with
# e.g. EXPLORE_BENCH_FLAGS="-procs 2 -steps 2 -workers 1,2".
EXPLORE_BENCH_OUT ?= EXPLORE_BENCH.json
EXPLORE_BENCH_FLAGS ?=
explore-bench:
	$(GO) run ./cmd/benchjson -suite explore -out $(EXPLORE_BENCH_OUT) -pretty $(EXPLORE_BENCH_FLAGS)
	$(GO) run ./cmd/benchjson -check $(EXPLORE_BENCH_OUT)

# Flat-vs-sharded counter contention sweep (the E13 experiment): the CAS
# counter against the elastic sharded counter across writer counts and
# read mixes -> $(CONTENTION_BENCH_OUT). Shrink the workload with e.g.
# CONTENTION_BENCH_FLAGS="-workers 1,2 -ops 500".
CONTENTION_BENCH_OUT ?= CONTENTION_BENCH.json
CONTENTION_BENCH_FLAGS ?=
contention-bench:
	$(GO) run ./cmd/benchjson -suite contention -out $(CONTENTION_BENCH_OUT) -pretty $(CONTENTION_BENCH_FLAGS)
	$(GO) run ./cmd/benchjson -check $(CONTENTION_BENCH_OUT)

# Dynamic partial-order reduction suite (the E14 experiment): unreduced
# sim.Explore vs sleep-set sim.ExploreReduced vs parallel reduced engines
# over the reference workloads -> $(DPOR_BENCH_OUT). Shrink with e.g.
# DPOR_BENCH_FLAGS="-procs 2 -steps 2 -workers 1".
DPOR_BENCH_OUT ?= DPOR_BENCH.json
DPOR_BENCH_FLAGS ?=
dpor-bench:
	$(GO) run ./cmd/benchjson -suite dpor -out $(DPOR_BENCH_OUT) -pretty $(DPOR_BENCH_FLAGS)
	$(GO) run ./cmd/benchjson -check $(DPOR_BENCH_OUT)

# --- Continuous perf tracking (see docs/benchmarking.md) ---------------

# CI-sized workloads: must match the committed baselines in dev/bench/ci/
# exactly (suite, procs, ops, seed) or the gate fails on config mismatch.
BENCH_CI_THROUGHPUT_FLAGS = -procs 4 -ops 500
BENCH_CI_EXPLORE_FLAGS = -procs 2 -steps 2 -workers 1,2
BENCH_CI_CONTENTION_FLAGS = -workers 1,2,4,8 -ops 500
# The dpor suite gates one process AND one step beyond the explore smoke
# (3x3 vs 2x2): reduction is what makes the bigger model-check config
# affordable in CI, and gating it at that size keeps the claim honest.
BENCH_CI_DPOR_FLAGS = -procs 3 -steps 3 -workers 1,2

# Gate thresholds for CI-sized runs: wall-clock metrics are mostly noise
# at smoke size (the flight-overhead ratio was observed anywhere from
# 1.1x to 4.9x across back-to-back runs at -ops 500), so the ns and
# flight ceilings are very loose (10x) and only catch order-of-magnitude
# regressions; steps/op is the real signal but CAS retry counts are
# nondeterministic at GOMAXPROCS > 1, hence 0.25 rather than the 0.05
# local default. The execs/sec floor drops to 0.1 for the same reason (a
# millisecond-scale explore smoke swings several-fold under scheduler
# noise). Allocs keep their defaults — they are deterministic. Tight
# thresholds belong to full-size local runs (see docs/benchmarking.md).
BENCH_GATE_FLAGS ?= -gate-ns 9.0 -gate-steps 0.25 -gate-flight 9.0 -gate-bounds 9.0 -gate-execs 0.1

# Run both suites at the CI-sized config, gate each against its committed
# baseline, and emit machine-readable delta JSON. Exits nonzero on any
# thresholded regression. Deliberately NOT profiled: the CPU profiler and
# tracer perturb the flight-recorder overhead ratio (measured ~2.9x under
# capture vs ~1.2x clean), so the gated measurement stays unperturbed and
# profiles come from the separate bench-profile runs.
bench-gate:
	$(GO) run ./cmd/benchjson $(BENCH_CI_THROUGHPUT_FLAGS) \
		-gate dev/bench/ci/throughput.json $(BENCH_GATE_FLAGS) \
		-out bench-ci.json -delta bench-ci-delta.json
	$(GO) run ./cmd/benchjson -suite explore $(BENCH_CI_EXPLORE_FLAGS) \
		-gate dev/bench/ci/explore.json $(BENCH_GATE_FLAGS) \
		-out explore-ci.json -delta explore-ci-delta.json
	$(GO) run ./cmd/benchjson -suite contention $(BENCH_CI_CONTENTION_FLAGS) \
		-gate dev/bench/ci/contention.json $(BENCH_GATE_FLAGS) \
		-out contention-ci.json -delta contention-ci-delta.json
	$(GO) run ./cmd/benchjson -suite dpor $(BENCH_CI_DPOR_FLAGS) \
		-gate dev/bench/ci/dpor.json $(BENCH_GATE_FLAGS) \
		-out dpor-ci.json -delta dpor-ci-delta.json

# Profiled CI-sized runs of both suites: CPU pprof + execution trace per
# suite into bench-profiles/ (reports land there too, so the profile can
# be read against the numbers it produced).
bench-profile:
	$(GO) run ./cmd/benchjson $(BENCH_CI_THROUGHPUT_FLAGS) \
		-out bench-profiles/throughput.json -profile bench-profiles
	$(GO) run ./cmd/benchjson -suite explore $(BENCH_CI_EXPLORE_FLAGS) \
		-out bench-profiles/explore.json -profile bench-profiles
	$(GO) run ./cmd/benchjson -suite contention $(BENCH_CI_CONTENTION_FLAGS) \
		-out bench-profiles/contention.json -profile bench-profiles
	$(GO) run ./cmd/benchjson -suite dpor $(BENCH_CI_DPOR_FLAGS) \
		-out bench-profiles/dpor.json -profile bench-profiles

# Refresh the committed CI baselines after an intentional perf change
# (the "bless" step — commit the result together with the change that
# explains it).
bench-ci-baselines:
	$(GO) run ./cmd/benchjson $(BENCH_CI_THROUGHPUT_FLAGS) \
		-out dev/bench/ci/throughput.json -pretty -commit "$$(git rev-parse HEAD)"
	$(GO) run ./cmd/benchjson -suite explore $(BENCH_CI_EXPLORE_FLAGS) \
		-out dev/bench/ci/explore.json -pretty -commit "$$(git rev-parse HEAD)"
	$(GO) run ./cmd/benchjson -suite contention $(BENCH_CI_CONTENTION_FLAGS) \
		-out dev/bench/ci/contention.json -pretty -commit "$$(git rev-parse HEAD)"
	$(GO) run ./cmd/benchjson -suite dpor $(BENCH_CI_DPOR_FLAGS) \
		-out dev/bench/ci/dpor.json -pretty -commit "$$(git rev-parse HEAD)"

# Full-size runs of both suites, appended to the committed time-series at
# the current HEAD (refreshing the top-level baseline files so they stay
# in sync with the series), then re-render the dashboard.
bench-append:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json -pretty \
		-append dev/bench/data.json -commit "$$(git rev-parse HEAD)"
	$(GO) run ./cmd/benchjson -suite explore -out EXPLORE_BENCH.json -pretty \
		-append dev/bench/data.json -commit "$$(git rev-parse HEAD)"
	$(GO) run ./cmd/benchjson -suite contention -out CONTENTION_BENCH.json -pretty \
		-append dev/bench/data.json -commit "$$(git rev-parse HEAD)"
	$(GO) run ./cmd/benchjson -suite dpor -out DPOR_BENCH.json -pretty \
		-append dev/bench/data.json -commit "$$(git rev-parse HEAD)"
	$(MAKE) bench-dash

# Regenerate dev/bench/index.html + data.js from dev/bench/data.json.
bench-dash:
	$(GO) run ./cmd/benchdash

# Regenerate every table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/tradeoff -format markdown

# Fuzzing session over every fuzz target; FUZZTIME=5s for a quick smoke.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzMaxRegisterAgreement -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -fuzz FuzzMaxRegisterCheckerSoundness -fuzztime $(FUZZTIME) ./internal/history
	$(GO) test -fuzz FuzzCounterCheckerSoundness -fuzztime $(FUZZTIME) ./internal/history

# CI-sized fuzz pass.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=5s

clean:
	$(GO) clean -testcache
