package tradeoffs

import (
	"fmt"
	"path/filepath"
	"time"

	"github.com/restricteduse/tradeoffs/internal/consensus"
	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/counter/sharded"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/obs/bounds"
	"github.com/restricteduse/tradeoffs/internal/obs/flight"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// Bound-conformance wiring: WithObservability arms each constructed
// object's operations with the certified step budgets of its actual
// implementation, instantiated from the committed bound table
// (dev/bounds/bounds.json, the machine-readable output of
// `tradeoffvet -bounds -format json`) at the object's concrete
// parameters. From then on every completed operation is scored against
// its budget — margin histograms, uncontended-exceedance counters, and
// a latched re-checkable exemplar on a worst-case violation — with no
// further configuration. Implementations with no certified bounds
// (AAC, Afek, snapshot-backed counters) simply record nothing.

// WithBoundTableJSON replaces the embedded certified-bound table with a
// tradeoffs/bounds/v1 document — a regenerated dev/bounds/bounds.json,
// or a deliberately altered table in tests. A parse failure surfaces as
// a construction error.
func WithBoundTableJSON(data []byte) Option {
	return optionFunc(func(c *config) {
		c.boundTable, c.boundTableErr = bounds.ParseTable(data)
	})
}

// opBoundSpec maps one facade operation name to the certified methods
// backing it. Multiple methods (the Scan variants) fold via OpBound.Max.
type opBoundSpec struct {
	op      string
	methods []string
}

// applyOpBounds instantiates and arms the step budgets for one freshly
// constructed object: implKey is the bound table's family key
// ("counter.FArray"), p the object's concrete parameters, and name the
// Observability-resolved object label used on exemplars. A nil
// collector (no WithObservability) is a no-op.
func applyOpBounds(c config, col *obs.Collector, family, name, implKey string, specs []opBoundSpec, p bounds.Params) error {
	if col == nil || implKey == "" {
		return nil
	}
	table := c.boundTable
	if table == nil {
		table = bounds.Default()
	}
	for _, spec := range specs {
		var b bounds.OpBound
		for _, m := range spec.methods {
			ob, err := table.StepBound(implKey, m, p)
			if err != nil {
				return fmt.Errorf("tradeoffs: %w", err)
			}
			b = b.Max(ob)
		}
		if !b.Declared() {
			continue
		}
		b.Op, b.Params = spec.op, p
		cfg := obs.OpBoundConfig{
			Worst:           b.Worst,
			Uncontended:     b.Uncontended,
			WorstExpr:       b.WorstExpr,
			UncontendedExpr: b.UncontendedExpr,
		}
		// The exceedance threshold is the uncontended budget when one
		// exists; carry that clause's amortization flag.
		if b.Uncontended > 0 {
			cfg.Amortized = b.UncontendedAmortized
		} else {
			cfg.Amortized = b.WorstAmortized
		}
		if c.obs != nil {
			bound, fr := b, c.flight
			reg := c.obs
			cfg.OnViolation = func(v obs.BoundViolation) {
				reg.captureBoundExemplar(family, name, bound, v, fr)
			}
		}
		col.SetOpBound(spec.op, cfg)
	}
	return nil
}

// captureBoundExemplar builds and latches the re-checkable exemplar for
// the first worst-case bound violation of one operation. It runs on the
// violating process's goroutine, at most once per op (the obs layer
// latches first), so the flight-window snapshot and artifact write are
// one-time costs. With a linked flight recorder the exemplar embeds the
// object's current recorder window and, when the recorder writes
// artifacts, lands next to them as <object>-bound-violation.json.
func (o *Observability) captureBoundExemplar(family, name string, b bounds.OpBound, v obs.BoundViolation, fr *FlightRecorder) {
	e := &bounds.Exemplar{
		Schema:   bounds.ExemplarSchema,
		Object:   name,
		Family:   family,
		Op:       v.Op,
		Process:  v.Process,
		Observed: v.Observed,
		Expr:     b.WorstExpr,
		Params:   b.Params.Env(),
		Bound:    v.Bound,
		Time:     time.Now(),
	}
	if fr != nil {
		for _, d := range fr.rec.Dumps() {
			if d.Name == name {
				e.Dump = d
				break
			}
		}
		if dir := fr.rec.ArtifactDir(); dir != "" {
			path := filepath.Join(dir, flight.SanitizeName(name)+"-bound-violation.json")
			_ = e.WriteFile(path) // best-effort, like the recorder's own artifacts
		}
	}
	o.addBoundExemplar(e)
}

// maxRegBoundKey resolves a max register implementation to its bound
// table key and concrete parameters.
func maxRegBoundKey(impl maxreg.MaxRegister, procs int) (string, bounds.Params) {
	switch m := impl.(type) {
	case *core.MaxRegister:
		return "core.MaxRegister", bounds.Params{
			N: int64(procs), LogN: int64(m.MaxDepth()), RF: int64(m.Refreshes()),
		}
	case *maxreg.CASRegister:
		return "maxreg.CASRegister", bounds.Params{N: int64(procs)}
	}
	return "", bounds.Params{}
}

var maxRegBoundSpecs = []opBoundSpec{
	{op: "read", methods: []string{"ReadMax"}},
	{op: "write", methods: []string{"WriteMax"}},
}

// counterBoundKey resolves a counter implementation to its bound table
// key and concrete parameters.
func counterBoundKey(impl counter.Counter, procs int) (string, bounds.Params) {
	switch ctr := impl.(type) {
	case *counter.FArray:
		return "counter.FArray", bounds.Params{N: int64(procs), LogN: int64(ctr.Depth())}
	case *counter.CAS:
		return "counter.CAS", bounds.Params{N: int64(procs)}
	case *sharded.Counter:
		return "sharded.Counter", bounds.Params{N: int64(procs), K: int64(ctr.MaxStripes())}
	}
	return "", bounds.Params{}
}

var counterBoundSpecs = []opBoundSpec{
	{op: "read", methods: []string{"Read"}},
	{op: "increment", methods: []string{"Increment"}},
	{op: "add", methods: []string{"Add"}},
}

// snapshotBoundKey resolves a snapshot implementation to its bound
// table key and concrete parameters.
func snapshotBoundKey(impl snapshot.Snapshot, procs int) (string, bounds.Params) {
	switch s := impl.(type) {
	case *snapshot.FArray:
		return "snapshot.FArray", bounds.Params{N: int64(procs), LogN: int64(s.Depth())}
	case *snapshot.DoubleCollect:
		return "snapshot.DoubleCollect", bounds.Params{N: int64(procs)}
	}
	return "", bounds.Params{}
}

var snapshotBoundSpecs = []opBoundSpec{
	{op: "scan", methods: []string{"Scan", "ScanView", "ScanInto"}},
	{op: "update", methods: []string{"Update"}},
}

// consensusBoundKey resolves the consensus object's bound parameters.
func consensusBoundKey(impl *consensus.Consensus, procs int) (string, bounds.Params) {
	return "consensus.Consensus", bounds.Params{
		N:    int64(procs),
		LogN: int64(impl.TrackerDepth()),
		R:    int64(impl.MaxRounds()),
		RF:   int64(impl.TrackerRefreshes()),
	}
}

var consensusBoundSpecs = []opBoundSpec{
	{op: "propose", methods: []string{"Propose"}},
}
