package tradeoffs

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/history"
)

// TestFlightRecorderEndToEnd taps all four families in exact mode,
// drives them concurrently, and asserts the monitor admits everything
// and stays quiet: the real implementations are linearizable, so any
// violation here is a recorder bug.
func TestFlightRecorderEndToEnd(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 1, Window: 1 << 12})

	reg, err := NewMaxRegister(WithFlightRecorder(fr), WithProcesses(4))
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := NewCounter(WithFlightRecorder(fr), WithProcesses(4))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(WithFlightRecorder(fr), WithProcesses(4), WithLimit(4096))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsensus(WithFlightRecorder(fr), WithProcesses(4))
	if err != nil {
		t.Fatal(err)
	}
	fr.Start()
	defer fr.Stop()

	const procs, opsPer = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rh, ch, sh, nh := reg.Handle(p), ctr.Handle(p), snap.Handle(p), cons.Handle(p)
			if _, err := nh.Propose(int64(p) + 1); err != nil {
				t.Error(err)
			}
			for i := 0; i < opsPer; i++ {
				switch i % 4 {
				case 0:
					if err := rh.Write(int64(p*opsPer + i + 1)); err != nil {
						t.Error(err)
					}
				case 1:
					rh.Read()
					ch.Read()
				case 2:
					if err := ch.Add(int64(i%3 + 1)); err != nil {
						t.Error(err)
					}
				case 3:
					if err := sh.Update(int64(p*opsPer + i + 1)); err != nil {
						t.Error(err)
					}
					sh.Scan()
				}
			}
		}(p)
	}
	wg.Wait()
	fr.Sync()

	st := fr.Stats()
	if st.Recorded == 0 || len(st.Taps) != 4 {
		t.Fatalf("bad stats: %+v", st)
	}
	if st.Violations != 0 {
		t.Fatalf("false violation on correct objects: %+v", fr.Violations())
	}
	if st.Dropped != 0 {
		t.Fatalf("unexpected drops: %d", st.Dropped)
	}
	wantNames := map[string]bool{"maxreg#0": true, "counter#0": true, "snapshot#0": true, "consensus#0": true}
	for _, tap := range st.Taps {
		if !wantNames[tap.Object] {
			t.Fatalf("unexpected tap name %q", tap.Object)
		}
		if tap.Relaxed {
			t.Fatalf("exact-mode tap %q reported relaxed", tap.Object)
		}
	}

	// The history dump round-trips through the offline tooling's reader.
	var buf strings.Builder
	if err := fr.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	var dumps []*history.Dump
	if err := json.Unmarshal([]byte(buf.String()), &dumps); err != nil {
		t.Fatalf("WriteHistory output unparseable: %v", err)
	}
	if len(dumps) != 4 {
		t.Fatalf("want 4 dumps, got %d", len(dumps))
	}
	for _, d := range dumps {
		if d.Schema != history.DumpSchema || len(d.Ops) == 0 {
			t.Fatalf("bad dump: %+v", d)
		}
	}
}

// TestFlightRecorderComposesWithObservability attaches both layers to
// one object and scrapes the shared handlers concurrently with the
// workload (the interesting part runs under -race).
func TestFlightRecorderComposesWithObservability(t *testing.T) {
	o := NewObservability()
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 2, Window: 256})
	ctr, err := NewCounter(WithObservability(o), WithFlightRecorder(fr), WithProcesses(4), WithName("served"))
	if err != nil {
		t.Fatal(err)
	}
	fr.Start()
	defer fr.Stop()

	handler := o.Handler()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := ctr.Handle(p)
			for i := 0; i < 1000; i++ {
				if err := h.Increment(); err != nil {
					t.Error(err)
				}
				if i%100 == 0 {
					h.Read()
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, path := range []string{"/metrics", "/debug/history", "/debug/violations"} {
						rw := httptest.NewRecorder()
						handler.ServeHTTP(rw, httptest.NewRequest("GET", path, nil))
						if rw.Code != 200 {
							t.Errorf("%s: status %d", path, rw.Code)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	fr.Sync()

	// One final scrape: both layers label the object identically.
	rw := httptest.NewRecorder()
	handler.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	body := rw.Body.String()
	for _, want := range []string{
		`tradeoffs_primitive_ops_total{object="served"`,
		`tradeoffs_flight_recorded_total{object="served"}`,
		`tradeoffs_flight_dropped_total{object="served"}`,
		`tradeoffs_flight_pending_records{object="served"}`,
		`tradeoffs_flight_relaxed{object="served"} 1`,
		`tradeoffs_flight_violations_total{object="served"} 0`,
		"tradeoffs_flight_sample_every 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	rw = httptest.NewRecorder()
	handler.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/history", nil))
	var dumps []*history.Dump
	if err := json.Unmarshal(rw.Body.Bytes(), &dumps); err != nil {
		t.Fatalf("/debug/history unparseable: %v", err)
	}
	if len(dumps) != 1 || dumps[0].Name != "served" || dumps[0].SampleEvery != 2 {
		t.Fatalf("bad /debug/history payload: %+v", dumps)
	}
	if fr.Stats().Violations != 0 {
		t.Fatalf("false violation: %+v", fr.Violations())
	}
}

// TestFlightRecorderPlantedViolation injects a fabricated record — a
// read claiming to have missed a completed write — through a real
// object's tap and follows the violation to its on-disk repro artifact.
func TestFlightRecorderPlantedViolation(t *testing.T) {
	dir := t.TempDir()
	var cbMu sync.Mutex
	var fromCallback []FlightViolation
	fr := NewFlightRecorder(FlightConfig{
		SampleEvery: 1,
		ArtifactDir: dir,
		OnViolation: func(v FlightViolation) {
			cbMu.Lock()
			fromCallback = append(fromCallback, v)
			cbMu.Unlock()
		},
	})
	reg, err := NewMaxRegister(WithFlightRecorder(fr), WithProcesses(2), WithName("dut"))
	if err != nil {
		t.Fatal(err)
	}
	fr.Start()
	defer fr.Stop()

	h0, h1 := reg.Handle(0), reg.Handle(1)
	if err := h0.Write(42); err != nil {
		t.Fatal(err)
	}
	// The object is correct, so fabricate the faulty read at the tap:
	// a post-write read returning 0 is exactly what a lost write would
	// produce.
	tok := h1.ftap.Begin(h1.fid)
	h1.ftap.End(h1.fid, tok, history.KindReadMax, 0, 0)
	fr.Sync()

	vs := fr.Violations()
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %+v", vs)
	}
	v := vs[0]
	if v.Object != "dut" || v.Family != "maxreg" || v.Checker != "maxreg" || v.Detail == "" {
		t.Fatalf("bad violation: %+v", v)
	}
	cbMu.Lock()
	ncb := len(fromCallback)
	cbMu.Unlock()
	if ncb != 1 {
		t.Fatalf("OnViolation called %d times", ncb)
	}
	if len(v.ArtifactPaths) != 2 {
		t.Fatalf("want 2 artifacts, got %v", v.ArtifactPaths)
	}
	f, err := os.Open(v.ArtifactPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := history.ReadDump(f)
	if err != nil {
		t.Fatalf("history artifact unparseable: %v", err)
	}
	if history.CheckerFor(d.Family)(d.Ops) == nil {
		t.Fatal("artifact window re-checks clean; not a repro")
	}
	if base := filepath.Base(v.ArtifactPaths[0]); base != "dut-violation.history.json" {
		t.Fatalf("unexpected artifact name %q", base)
	}

	// /debug/violations on the standalone handler reports it too.
	rw := httptest.NewRecorder()
	fr.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/violations", nil))
	var served []FlightViolation
	if err := json.Unmarshal(rw.Body.Bytes(), &served); err != nil {
		t.Fatalf("/debug/violations unparseable: %v", err)
	}
	if len(served) != 1 || served[0].Object != "dut" {
		t.Fatalf("bad /debug/violations payload: %+v", served)
	}
}

// TestFlightRecorderBatchedFlushRecordsWeightedIncrement pins the
// WithBatching composition: buffered deltas are recorded only when they
// propagate, as one increment carrying the coalesced weight.
func TestFlightRecorderBatchedFlushRecordsWeightedIncrement(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 1})
	ctr, err := NewCounter(WithFlightRecorder(fr), WithProcesses(1), WithBatching(4))
	if err != nil {
		t.Fatal(err)
	}
	h := ctr.Handle(0)
	for i := 0; i < 7; i++ { // one auto-flush at 4, three left buffered
		if err := h.Add(2); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Read(); got != 14 { // read-your-writes: flushes the rest
		t.Fatalf("Read = %d, want 14", got)
	}
	fr.Sync()

	st := fr.Stats()
	// Two flushes (8 and 6) plus the read: buffered Adds themselves are
	// not shared-memory operations and must not be recorded.
	if st.Recorded != 3 {
		t.Fatalf("recorded %d records, want 3 (2 weighted flushes + 1 read)", st.Recorded)
	}
	if st.Violations != 0 {
		t.Fatalf("weighted flushes flagged: %+v", fr.Violations())
	}
	var buf strings.Builder
	if err := fr.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	var dumps []*history.Dump
	if err := json.Unmarshal([]byte(buf.String()), &dumps); err != nil {
		t.Fatal(err)
	}
	var weights []int64
	for _, op := range dumps[0].Ops {
		if op.Kind == history.KindIncrement {
			weights = append(weights, op.Arg)
		}
	}
	if len(weights) != 2 || weights[0] != 8 || weights[1] != 6 {
		t.Fatalf("flush weights = %v, want [8 6]", weights)
	}
}

// TestFlightRecorderRegistrationErrors pins the construction contract.
func TestFlightRecorderRegistrationErrors(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	if _, err := NewCounter(WithFlightRecorder(fr), WithName("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCounter(WithFlightRecorder(fr), WithName("x")); err == nil {
		t.Fatal("duplicate name accepted")
	}
	fr.Start()
	defer fr.Stop()
	if _, err := NewCounter(WithFlightRecorder(fr)); err == nil {
		t.Fatal("construction after Start accepted")
	}

	// One observability registry cannot serve two recorders.
	o := NewObservability()
	fr2 := NewFlightRecorder(FlightConfig{})
	fr3 := NewFlightRecorder(FlightConfig{})
	if _, err := NewCounter(WithObservability(o), WithFlightRecorder(fr2)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCounter(WithObservability(o), WithFlightRecorder(fr3), WithName("orphan")); err == nil {
		t.Fatal("second recorder on one observability accepted")
	}

	// The failed construction must not leak its obs registration: the name
	// is reusable and the metrics never expose the dead object.
	for _, ns := range o.gather() {
		if ns.Object == "orphan" {
			t.Fatal("failed construction left its collector registered")
		}
	}
	if _, err := NewCounter(WithObservability(o), WithFlightRecorder(fr2), WithName("orphan")); err != nil {
		t.Fatalf("name not released after failed construction: %v", err)
	}
}

// TestFlightBatchingFailedFlushView pins what the flight recorder sees of
// a batching handle stuck over its budget: buffered deltas are invisible
// (they never linearized), the failed flush is aborted rather than
// recorded, and the stale reads admit a consistent (violation-free)
// history of zero increments.
func TestFlightBatchingFailedFlushView(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 1, Window: 1 << 10})
	ctr, err := NewCounter(WithCounterImpl(CounterAAC), WithLimit(4),
		WithProcesses(1), WithBatching(8), WithFlightRecorder(fr))
	if err != nil {
		t.Fatal(err)
	}
	fr.Start()
	defer fr.Stop()

	h := ctr.Handle(0)
	for i := 0; i < 6; i++ {
		if err := h.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err == nil {
		t.Fatal("Flush over the limit succeeded")
	}
	if got := h.Read(); got != 0 {
		t.Fatalf("Read = %d, want 0", got)
	}
	if got := h.Read(); got != 0 {
		t.Fatalf("second Read = %d, want 0", got)
	}

	fr.Sync()
	st := fr.Stats()
	if st.Violations != 0 {
		t.Fatalf("violations = %d, want 0 (stale reads are consistent: nothing linearized)", st.Violations)
	}
	if len(st.Taps) != 1 {
		t.Fatalf("taps = %d, want 1", len(st.Taps))
	}
	// Two reads recorded; the failed flushes (one explicit, two
	// read-triggered) aborted without a record, and the buffered adds
	// were never operations on the shared object at all.
	if got := st.Taps[0].Recorded; got != 2 {
		t.Fatalf("recorded ops = %d, want 2 (the reads only)", got)
	}
}

// TestFlightShardedCounterParity runs the elastic sharded backend under
// an exact-mode recorder (SampleEvery=1): every operation is admitted to
// the online linearizability monitor, so a quiet run is a machine-checked
// parity certificate for the striped double-collect reads — the same
// suite the flat backends pass.
func TestFlightShardedCounterParity(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 1, Window: 1 << 12})
	ctr, err := NewCounter(WithFlightRecorder(fr), WithProcesses(8),
		WithCounterImpl(CounterSharded))
	if err != nil {
		t.Fatal(err)
	}
	fr.Start()
	defer fr.Stop()

	const procs, opsPer = 8, 400
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := ctr.Handle(p)
			for i := 0; i < opsPer; i++ {
				switch i % 4 {
				case 0, 1:
					if err := h.Increment(); err != nil {
						t.Error(err)
					}
				case 2:
					if err := h.Add(int64(i%5 + 1)); err != nil {
						t.Error(err)
					}
				case 3:
					h.Read()
				}
			}
		}(p)
	}
	wg.Wait()
	fr.Sync()

	st := fr.Stats()
	if st.Violations != 0 {
		t.Fatalf("sharded backend flagged by the exact-mode monitor: %+v", fr.Violations())
	}
	if st.Dropped != 0 {
		t.Fatalf("unexpected drops: %d", st.Dropped)
	}
	if st.Recorded == 0 {
		t.Fatal("nothing recorded")
	}
	if got := ctr.Handle(0).Read(); got != procs*(opsPer/2+opsPer/4*3) {
		// per proc: 200 increments + 100 adds of (i%5+1); i%4==2 over
		// 0..399 gives deltas 3,2,1,5,4 repeating -> 100 adds summing 300.
		t.Fatalf("final Read = %d, want %d", got, procs*(200+300))
	}
}

// TestFlightShardedBatchedWeightedIncrement checks the weighted-increment
// recording contract survives the backend swap: coalesced flushes into a
// sharded counter land as single KindIncrement records with Arg = delta.
func TestFlightShardedBatchedWeightedIncrement(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 1})
	ctr, err := NewCounter(WithFlightRecorder(fr), WithProcesses(1),
		WithCounterImpl(CounterSharded), WithBatching(4))
	if err != nil {
		t.Fatal(err)
	}
	h := ctr.Handle(0)
	for i := 0; i < 7; i++ {
		if err := h.Add(2); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Read(); got != 14 {
		t.Fatalf("Read = %d, want 14", got)
	}
	fr.Sync()

	st := fr.Stats()
	if st.Recorded != 3 {
		t.Fatalf("recorded %d records, want 3 (2 weighted flushes + 1 read)", st.Recorded)
	}
	if st.Violations != 0 {
		t.Fatalf("weighted flushes on sharded backend flagged: %+v", fr.Violations())
	}
	var buf strings.Builder
	if err := fr.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	var dumps []*history.Dump
	if err := json.Unmarshal([]byte(buf.String()), &dumps); err != nil {
		t.Fatal(err)
	}
	var weights []int64
	for _, op := range dumps[0].Ops {
		if op.Kind == history.KindIncrement {
			weights = append(weights, op.Arg)
		}
	}
	if len(weights) != 2 || weights[0] != 8 || weights[1] != 6 {
		t.Fatalf("flush weights = %v, want [8 6]", weights)
	}
}

// TestFlightShardedLinearizabilityFuzz drives randomized schedules (mixed
// op ratios, deltas, and read densities per seed) through the sharded
// backend with every operation monitored. Violations latch, so one quiet
// pass over all seeds certifies every sampled interleaving.
func TestFlightShardedLinearizabilityFuzz(t *testing.T) {
	const procs, opsPer = 6, 300
	for seed := int64(1); seed <= 5; seed++ {
		fr := NewFlightRecorder(FlightConfig{SampleEvery: 1, Window: 1 << 12})
		ctr, err := NewCounter(WithFlightRecorder(fr), WithProcesses(procs),
			WithCounterImpl(CounterSharded))
		if err != nil {
			t.Fatal(err)
		}
		fr.Start()

		var wg sync.WaitGroup
		total := make([]int64, procs)
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := ctr.Handle(p)
				rng := rand.New(rand.NewSource(seed*1000 + int64(p)))
				readBias := int(seed) % 4 // 0..3 reads per 4 ops across seeds
				for i := 0; i < opsPer; i++ {
					if rng.Intn(4) < readBias {
						h.Read()
						continue
					}
					delta := int64(rng.Intn(4))
					if err := h.Add(delta); err != nil {
						t.Error(err)
						return
					}
					total[p] += delta
				}
			}(p)
		}
		wg.Wait()
		fr.Sync()
		fr.Stop()

		st := fr.Stats()
		if st.Violations != 0 {
			t.Fatalf("seed %d: sharded backend flagged: %+v", seed, fr.Violations())
		}
		if st.Dropped != 0 {
			t.Fatalf("seed %d: drops: %d", seed, st.Dropped)
		}
		var want int64
		for _, v := range total {
			want += v
		}
		if got := ctr.Handle(0).Read(); got != want {
			t.Fatalf("seed %d: final Read = %d, want %d", seed, got, want)
		}
	}
}
