package tradeoffs

import "runtime"

// BackendObservation is the evidence an AdaptivePolicy decides from: the
// requested configuration plus, when the constructor was also given
// WithObservability, the live usage of every counter already registered in
// the same registry (aggregated CAS traffic and read/update op counts from
// the collectors' histograms). A fresh registry — or none — yields zero
// counts, and policies fall back to the static signals.
type BackendObservation struct {
	// Processes is the WithProcesses value: the number of handles, an
	// upper bound on concurrent writers.
	Processes int

	// GoMaxProcs is runtime.GOMAXPROCS(0): the number of writers that can
	// actually run in parallel. Stripe contention cannot exceed it.
	GoMaxProcs int

	// CASAttempts and CASFailures aggregate the counter family's CAS
	// traffic across the registry. A failed CAS is the contention signal:
	// a retry some other process forced.
	CASAttempts int64
	CASFailures int64

	// Reads and Updates count the family's recorded operations (reads and
	// scans vs everything else).
	Reads   int64
	Updates int64
}

// CASFailureRate returns CASFailures/CASAttempts, or 0 with no attempts.
func (o BackendObservation) CASFailureRate() float64 {
	if o.CASAttempts == 0 {
		return 0
	}
	return float64(o.CASFailures) / float64(o.CASAttempts)
}

// ReadFraction returns Reads/(Reads+Updates), or 0 with no operations.
func (o BackendObservation) ReadFraction() float64 {
	total := o.Reads + o.Updates
	if total == 0 {
		return 0
	}
	return float64(o.Reads) / float64(total)
}

// Samples returns the total operation count behind the observation — the
// policy's confidence signal.
func (o BackendObservation) Samples() int64 { return o.Reads + o.Updates }

// BackendChoice is an AdaptivePolicy's verdict. A zero Impl keeps the
// configured (or default) implementation; a zero BatchWindow keeps the
// configured WithBatching window.
type BackendChoice struct {
	Impl        CounterImpl
	BatchWindow int
}

// AdaptivePolicy maps live evidence to a counter backend. It runs once, at
// construction time, inside NewCounter.
type AdaptivePolicy func(BackendObservation) BackendChoice

// DefaultAdaptivePolicy picks the backend the E13 contention sweep says
// wins each regime (see EXPERIMENTS.md):
//
//   - read-heavy workloads (> 50% reads) get the flat CAS counter — O(1)
//     reads are the whole point of the read-optimal side, and striped
//     reads pay O(stripes);
//   - a measured CAS-failure rate >= 5% (on enough samples to trust) with
//     real parallelism gets the sharded counter — contended retries spread
//     across stripes instead of re-serializing;
//   - a single-process update-heavy workload gets the flat counter with a
//     batching window — coalescing amortizes propagation, and with one
//     process read-your-writes makes batching invisible;
//   - with no usage history the static signals decide: multiple processes
//     that can actually run in parallel provision sharded, everything
//     else starts flat.
func DefaultAdaptivePolicy(o BackendObservation) BackendChoice {
	writers := o.Processes
	if o.GoMaxProcs < writers {
		writers = o.GoMaxProcs
	}
	const (
		minSamples   = 256  // CAS attempts before the failure rate is trusted
		contended    = 0.05 // failure rate that says "retries are real"
		readHeavy    = 0.5
		batchDefault = 8
	)
	switch {
	case o.Samples() > 0 && o.ReadFraction() > readHeavy:
		return BackendChoice{Impl: CounterCAS}
	case o.CASAttempts >= minSamples && o.CASFailureRate() >= contended && writers > 1:
		return BackendChoice{Impl: CounterSharded}
	case o.Processes == 1 && o.Samples() > 0:
		return BackendChoice{Impl: CounterCAS, BatchWindow: batchDefault}
	case o.Samples() == 0 && writers > 1:
		return BackendChoice{Impl: CounterSharded}
	default:
		return BackendChoice{Impl: CounterCAS}
	}
}

// WithAdaptiveBackend makes NewCounter resolve its implementation through
// policy instead of a fixed WithCounterImpl: the policy sees a
// BackendObservation (static config plus, with WithObservability, the
// registry's live counter-family usage) and its BackendChoice rewrites the
// implementation and batching window before construction. Selection is a
// config-resolution layer on the same seam WithBatching and
// WithFlightRecorder compose on, so the chosen backend carries handles,
// metrics, and flight taps exactly as if it had been picked explicitly;
// Counter.Impl reports the outcome.
//
// A nil policy means DefaultAdaptivePolicy. The policy runs once per
// constructor call — re-resolving a live object would break the
// restricted-use and linearizability contracts, so adaptation happens at
// object-creation granularity (create counters through a factory to track
// shifting workloads).
func WithAdaptiveBackend(policy AdaptivePolicy) Option {
	if policy == nil {
		policy = DefaultAdaptivePolicy
	}
	return optionFunc(func(c *config) { c.adaptive = policy })
}

// backendObservation assembles the evidence for an AdaptivePolicy from the
// constructor's config and (if present) its observability registry.
func (c config) backendObservation() BackendObservation {
	o := BackendObservation{
		Processes:  c.processes,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if c.obs != nil {
		o.CASAttempts, o.CASFailures, o.Reads, o.Updates = c.obs.familyUsage("counter")
	}
	return o
}
