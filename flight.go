package tradeoffs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/obs/expo"
	"github.com/restricteduse/tradeoffs/internal/obs/flight"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// FlightConfig tunes a FlightRecorder. The zero value picks the
// defaults noted per field.
type FlightConfig struct {
	// SampleEvery records one in N operations per process (default 64).
	// 1 records every operation and enables exact-mode checking; any
	// other value observes a sub-history, so only the subset-sound
	// checker conditions run (see docs/flight-recorder.md).
	SampleEvery int

	// Window is the per-(object, process) ring capacity in records
	// (default 1024, rounded up to a power of two). A slow monitor
	// overwrites the oldest records rather than stalling the workload;
	// overwritten records count as drops and permanently degrade that
	// object's checking to the subset-sound conditions.
	Window int

	// ArtifactWindow is how many admitted records per object are kept
	// for /debug/history dumps and violation artifacts (default 512).
	ArtifactWindow int

	// Poll is the monitor's drain interval (default 2ms).
	Poll time.Duration

	// ArtifactDir, when set, receives a self-contained repro per
	// violating object: <object>-violation.history.json (re-checkable
	// offline, renderable with cmd/simtrace -from-history) and
	// <object>-violation.trace.json (Chrome trace, opens in Perfetto).
	ArtifactDir string

	// OnViolation, when set, is called on the monitor goroutine for
	// each detected violation, after any artifacts are written.
	OnViolation func(FlightViolation)
}

// FlightViolation is one detected linearizability violation.
type FlightViolation struct {
	Object        string    `json:"object"`
	Family        string    `json:"family"`
	Time          time.Time `json:"time"`
	Checker       string    `json:"checker"`
	Detail        string    `json:"detail"`
	ArtifactPaths []string  `json:"artifacts,omitempty"`
}

// FlightTapStats is one recorded object's live counters.
type FlightTapStats struct {
	Object   string `json:"object"`
	Family   string `json:"family"`
	Procs    int    `json:"procs"`
	Recorded int64  `json:"recorded"`
	Dropped  int64  `json:"dropped"`
	Pending  int64  `json:"pending"`
	Relaxed  bool   `json:"relaxed"`
	Violated bool   `json:"violated"`
}

// FlightStats is a recorder-wide snapshot.
type FlightStats struct {
	SampleEvery int              `json:"sample_every"`
	Recorded    int64            `json:"recorded"`
	Dropped     int64            `json:"dropped"`
	Pending     int64            `json:"pending"`
	Violations  int64            `json:"violations"`
	Taps        []FlightTapStats `json:"taps"`
}

// FlightRecorder is an always-on flight recorder and online
// linearizability monitor for live runs. Construct one per application,
// pass it to constructors with WithFlightRecorder, then Start it:
//
//	fr := tradeoffs.NewFlightRecorder(tradeoffs.FlightConfig{})
//	ctr, _ := tradeoffs.NewCounter(tradeoffs.WithFlightRecorder(fr))
//	fr.Start()
//	defer fr.Stop()
//
// Every handle operation on a tapped object streams an
// invocation/response record (1-in-SampleEvery per process) into a
// lock-free ring; a background goroutine replays the records through
// the paper's interval checkers and reports any window that is not
// linearizable, packaged as a repro artifact. Composes with
// WithObservability — when both are attached to an object, the
// Observability handlers also serve the recorder's metrics,
// /debug/history, and /debug/violations — and with WithBatching, whose
// coalesced flushes are recorded as single weighted increments.
type FlightRecorder struct {
	rec *flight.Recorder

	mu      sync.Mutex
	names   map[string]bool
	nextIdx map[string]int
	started bool
}

// NewFlightRecorder returns an empty recorder; tap objects into it with
// WithFlightRecorder before calling Start.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	fcfg := flight.Config{
		SampleEvery:    cfg.SampleEvery,
		WindowPerProc:  cfg.Window,
		ArtifactWindow: cfg.ArtifactWindow,
		Poll:           cfg.Poll,
		ArtifactDir:    cfg.ArtifactDir,
	}
	if cb := cfg.OnViolation; cb != nil {
		fcfg.OnViolation = func(v *flight.Violation) { cb(publicViolation(v)) }
	}
	return &FlightRecorder{
		rec:     flight.New(fcfg),
		names:   make(map[string]bool),
		nextIdx: make(map[string]int),
	}
}

// tap registers one newly constructed object. An empty name (no
// WithName and no Observability-assigned name) is auto-assigned
// family#k, skipping names already taken.
func (f *FlightRecorder) tap(family, name string, procs int) (*flight.Tap, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return nil, errors.New("tradeoffs: flight recorder already started; construct objects before Start")
	}
	if name == "" {
		for {
			name = fmt.Sprintf("%s#%d", family, f.nextIdx[family])
			f.nextIdx[family]++
			if !f.names[name] {
				break
			}
		}
	}
	if f.names[name] {
		return nil, fmt.Errorf("tradeoffs: flight recorder object name %q already in use", name)
	}
	f.names[name] = true
	return f.rec.Tap(family, name, procs), nil
}

// Start launches the monitor goroutine. Construct all recorded objects
// first; constructors tapping a started recorder fail.
func (f *FlightRecorder) Start() {
	f.mu.Lock()
	f.started = true
	f.mu.Unlock()
	f.rec.Start()
}

// Stop halts the monitor after a final drain-and-check pass. Safe to
// call once the workload's operations have completed; idempotent.
func (f *FlightRecorder) Stop() { f.rec.Stop() }

// Sync forces a full drain-and-check pass and returns once it has
// completed — useful before reading Stats or Violations in tests and
// shutdown paths.
func (f *FlightRecorder) Sync() { f.rec.Sync() }

// Stats snapshots the recorder's counters. Safe from any goroutine.
func (f *FlightRecorder) Stats() FlightStats {
	st := f.rec.Stats()
	out := FlightStats{
		SampleEvery: st.SampleEvery,
		Recorded:    st.Recorded,
		Dropped:     st.Dropped,
		Pending:     st.Pending,
		Violations:  st.Violations,
	}
	for _, t := range st.Taps {
		out.Taps = append(out.Taps, FlightTapStats{
			Object:   t.Name,
			Family:   t.Family,
			Procs:    t.Procs,
			Recorded: t.Recorded,
			Dropped:  t.Dropped,
			Pending:  t.Pending,
			Relaxed:  t.Relaxed,
			Violated: t.Violated,
		})
	}
	return out
}

// Violations returns the violations detected so far (at most one per
// object: detection latches).
func (f *FlightRecorder) Violations() []FlightViolation {
	vs := f.rec.Violations()
	out := make([]FlightViolation, 0, len(vs))
	for _, v := range vs {
		out = append(out, publicViolation(v))
	}
	return out
}

func publicViolation(v *flight.Violation) FlightViolation {
	out := FlightViolation{
		Object:        v.Object,
		Family:        v.Family,
		Time:          v.Time,
		ArtifactPaths: append([]string(nil), v.ArtifactPaths...),
	}
	if v.Err != nil {
		out.Checker = v.Err.Checker
		out.Detail = v.Err.Detail
	}
	return out
}

// WriteHistory writes the recorder's current per-object windows as a
// JSON array of history dumps — the same payload /debug/history serves,
// each element re-checkable offline and renderable with
// cmd/simtrace -from-history.
func (f *FlightRecorder) WriteHistory(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.rec.Dumps())
}

// Handler serves the recorder standalone (without an Observability):
// /metrics with the tradeoffs_flight_* series, /debug/history,
// /debug/violations, and the standard Go debug endpoints.
func (f *FlightRecorder) Handler() http.Handler {
	return expo.DebugMuxWith(
		func() []obs.NamedStats { return nil },
		func() *flight.Recorder { return f.rec },
		nil,
	)
}

// WithFlightRecorder taps the constructed object into f: every handle
// operation is (sampled and) streamed to f's online linearizability
// monitor. Combine with WithName to control the tap's object label;
// with WithObservability the object shares one name across both
// registries and f's endpoints fold into the Observability handlers.
func WithFlightRecorder(f *FlightRecorder) Option {
	return optionFunc(func(c *config) { c.flight = f })
}

// registerObsAndFlight wires a freshly built object into its
// Observability registry and flight recorder in one step, returning the
// resolved object name (empty without an Observability) so the caller
// can label bound-violation exemplars. If the flight tap fails after
// the obs registration succeeded (duplicate tap name, recorder already
// started), the obs entry is rolled back so a retried construction can
// reuse the name and the metrics never expose an object that was never
// built.
func registerObsAndFlight(c config, family string, pool *primitive.Pool) (*obs.Collector, string, *flight.Tap, error) {
	col, name, err := registerObs(c, family, pool)
	if err != nil {
		return nil, "", nil, err
	}
	tap, err := registerFlight(c, family, name)
	if err != nil {
		if col != nil {
			c.obs.unregister(family, name)
		}
		return nil, "", nil, err
	}
	return col, name, tap, nil
}

// registerFlight taps a newly built object into its flight recorder (if
// any), first linking the recorder to the object's Observability so one
// handler serves both. name is the Observability-resolved object name,
// or WithName's value ("" lets the recorder auto-name).
func registerFlight(c config, family, name string) (*flight.Tap, error) {
	if c.flight == nil {
		return nil, nil
	}
	if c.obs != nil {
		if err := c.obs.attachFlight(c.flight); err != nil {
			return nil, err
		}
	}
	return c.flight.tap(family, name, c.processes)
}

// beginFlight opens a flight record for one operation: a no-op without
// a tap, and a zero (ignored) token when the operation is not sampled.
func (h *handle) beginFlight() flight.OpToken {
	if h.ftap == nil {
		return flight.OpToken{}
	}
	return h.ftap.Begin(h.fid)
}

// endFlight completes a scalar operation's record.
func (h *handle) endFlight(tok flight.OpToken, kind history.Kind, arg, ret int64) {
	if h.ftap != nil {
		h.ftap.End(h.fid, tok, kind, arg, ret)
	}
}

// endFlightVec completes a Scan's record with its result vector.
func (h *handle) endFlightVec(tok flight.OpToken, vec []int64) {
	if h.ftap != nil {
		h.ftap.EndVec(h.fid, tok, vec)
	}
}

// abortFlight discards the record of an operation that failed without
// taking effect (rejected write, exhausted limit), so the monitor never
// reasons about an update that did not happen.
func (h *handle) abortFlight(tok flight.OpToken) {
	if h.ftap != nil {
		h.ftap.Abort(h.fid, tok)
	}
}
