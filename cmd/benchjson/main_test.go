package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/bench"
)

func TestEncodeRoundTripAndCheck(t *testing.T) {
	rep, err := bench.RunThroughput(bench.ThroughputConfig{Procs: 2, OpsPerProc: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pretty := range []bool{false, true} {
		enc, err := encode(rep, pretty)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "report.json")
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := checkFile(path); err != nil {
			t.Fatalf("checkFile rejected a fresh report (pretty=%v): %v", pretty, err)
		}
		var back bench.Report
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatal(err)
		}
		if len(back.Results) != len(rep.Results) {
			t.Fatalf("round trip lost results: %d vs %d", len(back.Results), len(rep.Results))
		}
	}
}

func TestCheckFileAcceptsLegacyV1(t *testing.T) {
	// A pre-v2 artifact (no allocs/bytes/wall-clock columns) must still
	// read cleanly: old BENCH_PR2.json baselines stay diffable.
	v1 := `{"schema":"tradeoffs/bench/v1","seed":1,"procs":2,"ops_per_proc":10,"gomaxprocs":2,"go_version":"x","results":[{"name":"counter/cas/increment","procs":2,"ops":20,"ns_per_op":10,"steps_per_op":3,"cas_attempts":5,"cas_failures":1,"cas_failure_rate":0.2}]}`
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkFile(path); err != nil {
		t.Fatalf("checkFile rejected a valid v1 report: %v", err)
	}
}

func TestDiffReports(t *testing.T) {
	base, err := bench.RunExplore(bench.ExploreConfig{Procs: 2, Steps: 2, Workers: []int{1}, Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := bench.RunExplore(bench.ExploreConfig{Procs: 2, Steps: 2, Workers: []int{2}, Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	diffReports(&buf, base, cur)
	out := buf.String()
	for _, want := range []string{
		"explore/writers/seq: ns/op",         // common row compared
		"+ explore/writers/w2 (new row)",     // only in cur
		"- explore/writers/w1 (row removed)", // only in base
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExploreThroughCLIHelpers(t *testing.T) {
	ws, err := bench.ParseWorkers(" 1, 2 ")
	if err != nil || len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Fatalf("ParseWorkers = %v, %v", ws, err)
	}
	for _, bad := range []string{"", "0", "two", "4,-1"} {
		if _, err := bench.ParseWorkers(bad); err == nil {
			t.Errorf("ParseWorkers(%q) accepted", bad)
		}
	}
	rep, err := bench.RunExplore(bench.ExploreConfig{Procs: 2, Steps: 2, Workers: ws, Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encode(rep, false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "explore.json")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkFile(path); err != nil {
		t.Fatalf("checkFile rejected a fresh explore report: %v", err)
	}
}

func TestCheckFileRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not json":      "not json at all",
		"wrong schema":  `{"schema":"nope","seed":1,"procs":1,"ops_per_proc":1,"gomaxprocs":1,"go_version":"x","results":[{"name":"a","procs":1,"ops":1,"ns_per_op":1,"steps_per_op":1,"cas_attempts":0,"cas_failures":0,"cas_failure_rate":0}]}`,
		"unknown field": `{"schema":"tradeoffs/bench/v1","bogus":1,"results":[]}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := checkFile(path); err == nil {
				t.Fatal("checkFile accepted an invalid report")
			}
		})
	}
	if err := checkFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("checkFile accepted a missing file")
	}
}
