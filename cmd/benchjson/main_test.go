package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/bench"
)

func TestEncodeRoundTripAndCheck(t *testing.T) {
	rep, err := bench.RunThroughput(bench.ThroughputConfig{Procs: 2, OpsPerProc: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pretty := range []bool{false, true} {
		enc, err := encode(rep, pretty)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "report.json")
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := checkFile(path); err != nil {
			t.Fatalf("checkFile rejected a fresh report (pretty=%v): %v", pretty, err)
		}
		var back bench.Report
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatal(err)
		}
		if len(back.Results) != len(rep.Results) {
			t.Fatalf("round trip lost results: %d vs %d", len(back.Results), len(rep.Results))
		}
	}
}

func TestCheckFileAcceptsLegacyV1(t *testing.T) {
	// A pre-v2 artifact (no allocs/bytes/wall-clock columns) must still
	// read cleanly: old BENCH_PR2.json baselines stay diffable.
	v1 := `{"schema":"tradeoffs/bench/v1","seed":1,"procs":2,"ops_per_proc":10,"gomaxprocs":2,"go_version":"x","results":[{"name":"counter/cas/increment","procs":2,"ops":20,"ns_per_op":10,"steps_per_op":3,"cas_attempts":5,"cas_failures":1,"cas_failure_rate":0.2}]}`
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkFile(path); err != nil {
		t.Fatalf("checkFile rejected a valid v1 report: %v", err)
	}
}

func TestDiffReports(t *testing.T) {
	base, err := bench.RunExplore(bench.ExploreConfig{Procs: 2, Steps: 2, Workers: []int{1}, Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := bench.RunExplore(bench.ExploreConfig{Procs: 2, Steps: 2, Workers: []int{2}, Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	diffReports(&buf, base, cur)
	out := buf.String()
	for _, want := range []string{
		"explore/writers/seq: ns/op",         // common row compared
		"+ explore/writers/w2 (new row)",     // only in cur
		"- explore/writers/w1 (row removed)", // only in base
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExploreThroughCLIHelpers(t *testing.T) {
	ws, err := bench.ParseWorkers(" 1, 2 ")
	if err != nil || len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Fatalf("ParseWorkers = %v, %v", ws, err)
	}
	for _, bad := range []string{"", "0", "two", "4,-1"} {
		if _, err := bench.ParseWorkers(bad); err == nil {
			t.Errorf("ParseWorkers(%q) accepted", bad)
		}
	}
	rep, err := bench.RunExplore(bench.ExploreConfig{Procs: 2, Steps: 2, Workers: ws, Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encode(rep, false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "explore.json")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkFile(path); err != nil {
		t.Fatalf("checkFile rejected a fresh explore report: %v", err)
	}
}

// writeReport marshals a report to a temp file and returns the path.
func writeReport(t *testing.T, dir, name string, rep *bench.Report) string {
	t.Helper()
	enc, err := encode(rep, true)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// tinyReport runs the smallest real throughput suite once per test binary.
func tinyReport(t *testing.T) *bench.Report {
	t.Helper()
	tinyOnce.Do(func() {
		tinyRep, tinyErr = bench.RunThroughput(bench.ThroughputConfig{Procs: 2, OpsPerProc: 50, Seed: 3})
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	clone := *tinyRep
	clone.Results = append([]bench.Result(nil), tinyRep.Results...)
	return &clone
}

var (
	tinyOnce sync.Once
	tinyRep  *bench.Report
	tinyErr  error
)

func TestRunGateAgainstFiles(t *testing.T) {
	dir := t.TempDir()
	base := tinyReport(t)
	// Pin the flight rows' wall-clock readings: at 50 ops the measured
	// sampled/off ratio is pure noise, and this test gates thresholds, not
	// the recorder.
	for i := range base.Results {
		switch base.Results[i].Name {
		case "counter/farray/increment/flight-off":
			base.Results[i].NsPerOp = 400
		case "counter/farray/increment/flight-sampled":
			base.Results[i].NsPerOp = 440
		}
	}
	basePath := writeReport(t, dir, "base.json", base)

	regressed := tinyReport(t)
	for i := range regressed.Results {
		regressed.Results[i].NsPerOp *= 10
	}
	regPath := writeReport(t, dir, "regressed.json", regressed)
	deltaPath := filepath.Join(dir, "delta.json")

	// Gating a file against itself passes without running the suite.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-against", basePath, "-gate", basePath}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-gate exited %d:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "gate PASS") {
		t.Fatalf("no PASS verdict:\n%s", stderr.String())
	}

	// A synthetically regressed report trips the gate, exits 1, and ships
	// the delta document.
	stdout.Reset()
	stderr.Reset()
	code := run([]string{"-against", regPath, "-gate", basePath, "-delta", deltaPath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("regressed gate exited %d, want 1:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "gate FAIL") {
		t.Fatalf("no FAIL verdict:\n%s", stderr.String())
	}
	raw, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	var delta bench.Delta
	if err := json.Unmarshal(raw, &delta); err != nil {
		t.Fatal(err)
	}
	if delta.Schema != bench.DeltaSchema || delta.Pass || delta.Regressions == 0 {
		t.Fatalf("delta document wrong: %+v", delta)
	}

	// Disabling the tripped metric turns the same comparison green.
	stderr.Reset()
	if code := run([]string{"-against", regPath, "-gate", basePath, "-gate-ns", "-1", "-gate-flight", "-1"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("disabled-threshold gate exited %d:\n%s", code, stderr.String())
	}
}

func TestRunDiffAgainstFilesWithoutSuiteRun(t *testing.T) {
	dir := t.TempDir()
	base := tinyReport(t)
	cur := tinyReport(t)
	cur.Results[0].NsPerOp *= 2
	basePath := writeReport(t, dir, "base.json", base)
	curPath := writeReport(t, dir, "cur.json", cur)
	outPath := filepath.Join(dir, "should-not-exist.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-against", curPath, "-diff", basePath, "-out", outPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("diff exited %d:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "diff against baseline") {
		t.Fatalf("no diff output:\n%s", stderr.String())
	}
	// -against means no suite ran and nothing is (re)written to -out.
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Fatalf("-against wrote -out anyway (err=%v)", err)
	}
}

func TestRunAppendSeriesIdempotent(t *testing.T) {
	dir := t.TempDir()
	repPath := writeReport(t, dir, "rep.json", tinyReport(t))
	seriesPath := filepath.Join(dir, "data.json")

	args := []string{"-against", repPath, "-append", seriesPath,
		"-commit", "abc123", "-timestamp", "2026-08-08T12:00:00Z"}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("append exited %d:\n%s", code, stderr.String())
	}
	first, err := os.ReadFile(seriesPath)
	if err != nil {
		t.Fatal(err)
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("re-append exited %d:\n%s", code, stderr.String())
	}
	second, err := os.ReadFile(seriesPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("append twice is not idempotent:\n%s\nvs\n%s", first, second)
	}
	series, err := bench.ReadSeries(seriesPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Entries) != 1 {
		t.Fatalf("%d entries after double append, want 1", len(series.Entries))
	}
	e := series.Entries[0]
	if e.Commit != "abc123" || e.Timestamp != "2026-08-08T12:00:00Z" || e.Suite != bench.SuiteThroughput {
		t.Fatalf("entry attribution wrong: %+v", e)
	}
	if e.Report.Commit != "abc123" || e.Report.Timestamp != "2026-08-08T12:00:00Z" {
		t.Fatalf("report metadata not stamped: commit=%q ts=%q", e.Report.Commit, e.Report.Timestamp)
	}

	// A second commit becomes a second, ordered entry.
	if code := run([]string{"-against", repPath, "-append", seriesPath,
		"-commit", "def456", "-timestamp", "2026-08-08T13:00:00Z"}, &stdout, &stderr); code != 0 {
		t.Fatalf("second append exited %d:\n%s", code, stderr.String())
	}
	series, err = bench.ReadSeries(seriesPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Entries) != 2 || series.Entries[1].Commit != "def456" {
		t.Fatalf("series after second append: %+v", series.Entries)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-timestamp", "not-a-time", "-against", "x"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad -timestamp exited %d, want 1", code)
	}
	if code := run([]string{"-suite", "nope", "-out", "-"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad -suite exited %d, want 1", code)
	}
	if code := run([]string{"-gate", filepath.Join(t.TempDir(), "missing.json"), "-against", "also-missing.json"},
		&stdout, &stderr); code != 1 {
		t.Fatalf("missing files exited %d, want 1", code)
	}
}

func TestRunProfileCapturesSuite(t *testing.T) {
	dir := t.TempDir()
	profDir := filepath.Join(dir, "profiles")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-procs", "2", "-ops", "50", "-seed", "3",
		"-out", filepath.Join(dir, "rep.json"), "-profile", profDir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("profiled run exited %d:\n%s", code, stderr.String())
	}
	cpu, err := os.ReadFile(filepath.Join(profDir, "throughput.cpu.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cpu) < 2 || cpu[0] != 0x1f || cpu[1] != 0x8b {
		t.Fatalf("cpu profile is not gzip data (len %d)", len(cpu))
	}
	if _, err := os.Stat(filepath.Join(profDir, "throughput.trace")); err != nil {
		t.Fatal(err)
	}
	// The written report carries the host metadata block.
	rep, err := readReport(filepath.Join(dir, "rep.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suite != bench.SuiteThroughput || rep.Host == nil || rep.Host.CPUs < 1 {
		t.Fatalf("report metadata missing: suite=%q host=%+v", rep.Suite, rep.Host)
	}
}

func TestCheckFileRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not json":      "not json at all",
		"wrong schema":  `{"schema":"nope","seed":1,"procs":1,"ops_per_proc":1,"gomaxprocs":1,"go_version":"x","results":[{"name":"a","procs":1,"ops":1,"ns_per_op":1,"steps_per_op":1,"cas_attempts":0,"cas_failures":0,"cas_failure_rate":0}]}`,
		"unknown field": `{"schema":"tradeoffs/bench/v1","bogus":1,"results":[]}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := checkFile(path); err == nil {
				t.Fatal("checkFile accepted an invalid report")
			}
		})
	}
	if err := checkFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("checkFile accepted a missing file")
	}
}
