package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/bench"
)

func TestEncodeRoundTripAndCheck(t *testing.T) {
	rep, err := bench.RunThroughput(bench.ThroughputConfig{Procs: 2, OpsPerProc: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pretty := range []bool{false, true} {
		enc, err := encode(rep, pretty)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "report.json")
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := checkFile(path); err != nil {
			t.Fatalf("checkFile rejected a fresh report (pretty=%v): %v", pretty, err)
		}
		var back bench.Report
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatal(err)
		}
		if len(back.Results) != len(rep.Results) {
			t.Fatalf("round trip lost results: %d vs %d", len(back.Results), len(rep.Results))
		}
	}
}

func TestCheckFileRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not json":      "not json at all",
		"wrong schema":  `{"schema":"nope","seed":1,"procs":1,"ops_per_proc":1,"gomaxprocs":1,"go_version":"x","results":[{"name":"a","procs":1,"ops":1,"ns_per_op":1,"steps_per_op":1,"cas_attempts":0,"cas_failures":0,"cas_failure_rate":0}]}`,
		"unknown field": `{"schema":"tradeoffs/bench/v1","bogus":1,"results":[]}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := checkFile(path); err == nil {
				t.Fatal("checkFile accepted an invalid report")
			}
		})
	}
	if err := checkFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("checkFile accepted a missing file")
	}
}
