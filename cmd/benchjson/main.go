// Command benchjson runs a fixed-seed bench suite and writes its JSON
// report (BENCH_PR2.json by default), the artifact `make bench-json`
// produces and CI diffs across runs. -suite picks the throughput suite
// (default) or the schedule-exploration scaling suite (`explore`, behind
// `make explore-bench`). With -check it instead validates an existing
// report against the current schema and exits; with -diff it additionally
// compares the fresh report against a baseline file (either schema
// version) and summarizes per-row deltas on stderr.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/restricteduse/tradeoffs/internal/bench"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_PR2.json", "output path, or - for stdout")
		suite   = flag.String("suite", "throughput", "suite to run: throughput or explore")
		procs   = flag.Int("procs", 0, "processes per workload; 0 = suite default (8 throughput, 3 explore)")
		ops     = flag.Int("ops", 0, "operations per process (throughput); 0 = 20000")
		steps   = flag.Int("steps", 0, "events per simulated process (explore); 0 = 4")
		workers = flag.String("workers", "1,2,4,8", "comma-separated ExploreParallel worker counts (explore)")
		budget  = flag.Int("budget", 0, "execution budget per exploration (explore); 0 = 10,000,000")
		seed    = flag.Int64("seed", 20260805, "seed for every per-process random source")
		pretty  = flag.Bool("pretty", false, "indent the JSON output")
		check   = flag.String("check", "", "validate an existing report file and exit")
		diff    = flag.String("diff", "", "baseline report file to compare the fresh report against")
	)
	flag.Parse()

	if *check != "" {
		rep, err := readReport(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s: valid %s report\n", *check, rep.Schema)
		return
	}

	var rep *bench.Report
	var err error
	switch *suite {
	case "throughput":
		rep, err = bench.RunThroughput(bench.ThroughputConfig{
			Procs:      *procs,
			OpsPerProc: *ops,
			Seed:       *seed,
		})
	case "explore":
		var ws []int
		ws, err = bench.ParseWorkers(*workers)
		if err == nil {
			rep, err = bench.RunExplore(bench.ExploreConfig{
				Procs:   *procs,
				Steps:   *steps,
				Workers: ws,
				Budget:  *budget,
			})
		}
	default:
		err = fmt.Errorf("unknown suite %q (want throughput or explore)", *suite)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *diff != "" {
		base, err := readReport(*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		diffReports(os.Stderr, base, rep)
	}

	enc, err := encode(rep, *pretty)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}

func encode(rep *bench.Report, pretty bool) ([]byte, error) {
	if pretty {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	}
	b, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// readReport loads and validates a report file of either schema version.
// v1 files simply lack the v2 columns, so the strict decoder accepts them.
func readReport(path string) (*bench.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.Report
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// checkFile validates an existing report file (kept for the tests' sake;
// -check goes through readReport).
func checkFile(path string) error {
	_, err := readReport(path)
	return err
}

// diffReports summarizes cur against base: per-row ns/op, steps/op, and
// allocs/op deltas for rows present in both, plus added/removed rows. The
// diff is informational — wall-clock noise makes ns/op a poor gate — so it
// never fails the run; steps/op shifts in deterministic workloads are the
// signal reviewers act on.
func diffReports(w io.Writer, base, cur *bench.Report) {
	baseRows := make(map[string]bench.Result, len(base.Results))
	for _, r := range base.Results {
		baseRows[r.Name] = r
	}
	fmt.Fprintf(w, "benchjson: diff against baseline (%s, seed %d)\n", base.Schema, base.Seed)
	for _, r := range cur.Results {
		b, ok := baseRows[r.Name]
		if !ok {
			fmt.Fprintf(w, "  + %s (new row)\n", r.Name)
			continue
		}
		delete(baseRows, r.Name)
		fmt.Fprintf(w, "  %s: ns/op %.1f -> %.1f (%+.1f%%), steps/op %.2f -> %.2f",
			r.Name, b.NsPerOp, r.NsPerOp, pct(b.NsPerOp, r.NsPerOp), b.StepsPerOp, r.StepsPerOp)
		if base.Schema == bench.ReportSchema {
			fmt.Fprintf(w, ", allocs/op %.2f -> %.2f", b.AllocsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintln(w)
	}
	removed := make([]string, 0, len(baseRows))
	for name := range baseRows {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "  - %s (row removed)\n", name)
	}
}

func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}
