// Command benchjson runs a fixed-seed bench suite and writes its JSON
// report (BENCH_PR2.json by default), the artifact `make bench-json`
// produces. -suite picks the throughput suite (default), the
// schedule-exploration scaling suite (`explore`, behind
// `make explore-bench`), the flat-vs-sharded counter contention
// sweep (`contention`, behind `make contention-bench`), or the
// partial-order-reduction suite (`dpor`, behind `make dpor-bench`).
//
// On top of the one-shot report it drives the continuous perf-tracking
// layer (docs/benchmarking.md):
//
//   - -check FILE validates an existing report against the schema and
//     exits.
//   - -against FILE skips the suite run and uses FILE as the fresh report,
//     so -diff and -gate can compare two existing files without paying for
//     a bench run.
//   - -diff FILE prints an informational per-row comparison on stderr.
//   - -gate FILE thresholds the fresh report against FILE (per-suite
//     ns/op, steps/op, allocs/op, execs/sec ceilings/floors plus the
//     flight-recorder overhead ratio), prints a verdict, optionally writes
//     the machine-readable delta document (-delta), and exits 1 on any
//     regression — this is the CI merge gate.
//   - -append FILE folds the fresh report into the committed bench
//     time-series (dev/bench/data.json) as one (commit, timestamp, suite)
//     entry; re-appending the same commit+suite replaces its entry.
//     -commit and -timestamp attribute the entry (timestamp defaults to
//     the current time at this CLI layer only — suite runs themselves
//     never read the clock into the schema).
//   - -profile DIR captures a CPU profile and runtime trace of the suite
//     run (DIR/<suite>.cpu.pprof, DIR/<suite>.trace) with pprof labels
//     per workload, the attribution artifact a tripped gate ships.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/restricteduse/tradeoffs/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("out", "BENCH_PR2.json", "output path, or - for stdout")
		suite   = fs.String("suite", "throughput", "suite to run: throughput, explore, contention, or dpor")
		procs   = fs.Int("procs", 0, "processes per workload; 0 = suite default (8 throughput, 3 explore)")
		ops     = fs.Int("ops", 0, "operations per process (throughput/contention); 0 = 20000")
		steps   = fs.Int("steps", 0, "events per simulated process (explore); 0 = 4")
		workers = fs.String("workers", "", "comma-separated worker counts: ExploreParallel workers (explore, default 1,2,4,8) or writer counts (contention, default powers of 2 through max(8, 2*GOMAXPROCS))")
		budget  = fs.Int("budget", 0, "execution budget per exploration (explore); 0 = 10,000,000")
		seed    = fs.Int64("seed", 20260805, "seed for every per-process random source")
		pretty  = fs.Bool("pretty", false, "indent the JSON output")
		check   = fs.String("check", "", "validate an existing report file and exit")
		against = fs.String("against", "", "use this existing report as the fresh report instead of running the suite")
		diff    = fs.String("diff", "", "baseline report file for an informational comparison (stderr)")

		gate       = fs.String("gate", "", "baseline report file to gate against; exit 1 on any thresholded regression")
		deltaOut   = fs.String("delta", "", "write the gate's machine-readable delta JSON here (- for stdout)")
		gateNs     = fs.Float64("gate-ns", defaults.MaxNsRegress, "allowed relative ns/op growth per row (negative disables)")
		gateSteps  = fs.Float64("gate-steps", defaults.MaxStepsRegress, "allowed relative steps/op growth per row (negative disables)")
		gateAllocs = fs.Float64("gate-allocs", defaults.MaxAllocsRegress, "allowed relative allocs/op growth per row (negative disables)")
		gateSlack  = fs.Float64("gate-allocs-slack", defaults.AllocsSlack, "absolute allocs/op slack on top of -gate-allocs")
		gateExecs  = fs.Float64("gate-execs", defaults.MinExecsRatio, "execs/sec floor as a fraction of baseline (<=0 disables)")
		gateFlight = fs.Float64("gate-flight", defaults.MaxFlightOverhead, "allowed flight-recorder sampled-mode overhead over the off row (negative disables)")
		gateBounds = fs.Float64("gate-bounds", defaults.MaxBoundsOverhead, "allowed bound-conformance scoring overhead over the bounds-off row (negative disables)")

		appendTo  = fs.String("append", "", "bench time-series file to append the fresh report to (e.g. dev/bench/data.json)")
		commit    = fs.String("commit", os.Getenv("GITHUB_SHA"), "commit SHA recorded on the report and series entry (default $GITHUB_SHA)")
		timestamp = fs.String("timestamp", "", "RFC 3339 run timestamp for the report and series entry (default: now, stamped here, never inside the suite)")
		profile   = fs.String("profile", "", "directory for per-suite profiling artifacts (<suite>.cpu.pprof + <suite>.trace)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}

	if *check != "" {
		rep, err := readReport(*check)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "benchjson: %s: valid %s report\n", *check, rep.Schema)
		return 0
	}
	if *timestamp != "" {
		if _, err := time.Parse(time.RFC3339, *timestamp); err != nil {
			return fail(fmt.Errorf("-timestamp: %w", err))
		}
	}

	rep, fresh, err := freshReport(fs, *against, *suite, *procs, *ops, *steps, *workers, *budget, *seed, *profile)
	if err != nil {
		return fail(err)
	}
	if *commit != "" && rep.Commit == "" {
		rep.Commit = *commit
	}
	if *timestamp != "" {
		rep.Timestamp = *timestamp
	}

	if *diff != "" {
		base, err := readReport(*diff)
		if err != nil {
			return fail(err)
		}
		diffReports(stderr, base, rep)
	}

	gateFailed := false
	if *gate != "" {
		base, err := readReport(*gate)
		if err != nil {
			return fail(err)
		}
		th := bench.Thresholds{
			MaxNsRegress:      *gateNs,
			MaxStepsRegress:   *gateSteps,
			MaxAllocsRegress:  *gateAllocs,
			AllocsSlack:       *gateSlack,
			MinExecsRatio:     *gateExecs,
			MaxFlightOverhead: *gateFlight,
			MaxBoundsOverhead: *gateBounds,
		}
		delta := bench.Gate(base, rep, th)
		delta.Summary(stderr)
		if *deltaOut != "" {
			enc, err := json.MarshalIndent(delta, "", "  ")
			if err != nil {
				return fail(err)
			}
			enc = append(enc, '\n')
			if *deltaOut == "-" {
				stdout.Write(enc)
			} else if err := os.WriteFile(*deltaOut, enc, 0o644); err != nil {
				return fail(err)
			}
		}
		gateFailed = !delta.Pass
	}

	// Write the report and series even when the gate failed: the regressed
	// artifact is exactly what the investigation needs.
	if fresh {
		enc, err := encode(rep, *pretty)
		if err != nil {
			return fail(err)
		}
		if *out == "-" {
			stdout.Write(enc)
		} else {
			if err := os.WriteFile(*out, enc, 0o644); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
		}
	}

	if *appendTo != "" {
		ts := rep.Timestamp
		if ts == "" {
			// The only clock read in the pipeline, and it lives here at the
			// CLI layer: reports themselves stay byte-reproducible.
			ts = time.Now().UTC().Format(time.RFC3339)
		}
		sha := rep.Commit
		if sha == "" {
			sha = "unknown"
		}
		entrySuite := rep.Suite
		if entrySuite == "" {
			entrySuite = *suite // pre-metadata reports fed via -against
		}
		series, err := bench.ReadSeries(*appendTo)
		if err != nil {
			return fail(err)
		}
		if err := series.Append(bench.SeriesEntry{
			Commit: sha, Timestamp: ts, Suite: entrySuite, Report: rep,
		}); err != nil {
			return fail(err)
		}
		if err := bench.WriteSeries(*appendTo, series); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "benchjson: series %s now has %d entries (appended %s/%s)\n",
			*appendTo, len(series.Entries), sha, entrySuite)
	}

	if gateFailed {
		return 1
	}
	return 0
}

// defaults seeds the -gate-* flag defaults.
var defaults = bench.DefaultThresholds()

// freshReport produces the report under test: read from -against, or run
// the selected suite (optionally under a -profile capture). fresh reports
// whether a suite actually ran (and the report should be written to -out).
func freshReport(fs *flag.FlagSet, against, suite string, procs, ops, steps int,
	workers string, budget int, seed int64, profileDir string) (*bench.Report, bool, error) {

	if against != "" {
		rep, err := readReport(against)
		return rep, false, err
	}

	var stopProfiles func() error
	if profileDir != "" {
		var err error
		stopProfiles, err = bench.StartProfiles(profileDir, suite)
		if err != nil {
			return nil, false, err
		}
	}
	var rep *bench.Report
	var err error
	switch suite {
	case bench.SuiteThroughput:
		rep, err = bench.RunThroughput(bench.ThroughputConfig{
			Procs:      procs,
			OpsPerProc: ops,
			Seed:       seed,
		})
	case bench.SuiteExplore:
		if workers == "" {
			workers = "1,2,4,8"
		}
		var ws []int
		ws, err = bench.ParseWorkers(workers)
		if err == nil {
			rep, err = bench.RunExplore(bench.ExploreConfig{
				Procs:   procs,
				Steps:   steps,
				Workers: ws,
				Budget:  budget,
			})
		}
	case bench.SuiteContention:
		var ws []int // empty -workers keeps the suite's default axis
		if workers != "" {
			ws, err = bench.ParseWorkers(workers)
		}
		if err == nil {
			rep, err = bench.RunContention(bench.ContentionConfig{
				Writers:      ws,
				OpsPerWriter: ops,
				Seed:         seed,
			})
		}
	case bench.SuiteDpor:
		if workers == "" {
			workers = "1,2,4"
		}
		var ws []int
		ws, err = bench.ParseWorkers(workers)
		if err == nil {
			rep, err = bench.RunDpor(bench.DporConfig{
				Procs:   procs,
				Steps:   steps,
				Workers: ws,
				Budget:  budget,
			})
		}
	default:
		err = fmt.Errorf("unknown suite %q (want %s, %s, %s, or %s)",
			suite, bench.SuiteThroughput, bench.SuiteExplore, bench.SuiteContention, bench.SuiteDpor)
	}
	if stopProfiles != nil {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		return nil, false, err
	}
	return rep, true, nil
}

func encode(rep *bench.Report, pretty bool) ([]byte, error) {
	if pretty {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	}
	b, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// readReport loads and validates a report file of either schema version.
// v1 files simply lack the v2 columns, so the strict decoder accepts them.
func readReport(path string) (*bench.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.Report
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// checkFile validates an existing report file (kept for the tests' sake;
// -check goes through readReport).
func checkFile(path string) error {
	_, err := readReport(path)
	return err
}

// diffReports summarizes cur against base: per-row ns/op, steps/op, and
// allocs/op deltas for rows present in both, plus added/removed rows. The
// diff is informational — `-gate` is the enforced counterpart — so it
// never fails the run; steps/op shifts in deterministic workloads are the
// signal reviewers act on.
func diffReports(w io.Writer, base, cur *bench.Report) {
	baseRows := make(map[string]bench.Result, len(base.Results))
	for _, r := range base.Results {
		baseRows[r.Name] = r
	}
	fmt.Fprintf(w, "benchjson: diff against baseline (%s, seed %d)\n", base.Schema, base.Seed)
	for _, r := range cur.Results {
		b, ok := baseRows[r.Name]
		if !ok {
			fmt.Fprintf(w, "  + %s (new row)\n", r.Name)
			continue
		}
		delete(baseRows, r.Name)
		fmt.Fprintf(w, "  %s: ns/op %.1f -> %.1f (%+.1f%%), steps/op %.2f -> %.2f",
			r.Name, b.NsPerOp, r.NsPerOp, pct(b.NsPerOp, r.NsPerOp), b.StepsPerOp, r.StepsPerOp)
		if base.Schema == bench.ReportSchema {
			fmt.Fprintf(w, ", allocs/op %.2f -> %.2f", b.AllocsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintln(w)
	}
	removed := make([]string, 0, len(baseRows))
	for name := range baseRows {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "  - %s (row removed)\n", name)
	}
}

func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}
