// Command benchjson runs the fixed-seed throughput suite and writes its
// JSON report (BENCH_PR2.json by default), the artifact `make bench-json`
// produces and CI diffs across runs. With -check it instead validates an
// existing report against the current schema and exits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/restricteduse/tradeoffs/internal/bench"
)

func main() {
	var (
		out    = flag.String("out", "BENCH_PR2.json", "output path, or - for stdout")
		procs  = flag.Int("procs", 8, "concurrent processes per workload")
		ops    = flag.Int("ops", 20000, "operations per process (restricted-use workloads cap this)")
		seed   = flag.Int64("seed", 20260805, "seed for every per-process random source")
		pretty = flag.Bool("pretty", false, "indent the JSON output")
		check  = flag.String("check", "", "validate an existing report file and exit")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s: valid %s report\n", *check, bench.ReportSchema)
		return
	}

	rep, err := bench.RunThroughput(bench.ThroughputConfig{
		Procs:      *procs,
		OpsPerProc: *ops,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := encode(rep, *pretty)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}

func encode(rep *bench.Report, pretty bool) ([]byte, error) {
	if pretty {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	}
	b, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func checkFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep bench.Report
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
