// Command simtrace runs a chosen object implementation under the
// deterministic simulator and prints the execution: every shared-memory
// event, each process's step count, and the final awareness and
// familiarity sets of the paper's information-flow model (Definitions
// 1-4). It is the debugging / teaching companion to the adversary
// experiments: the same machinery, driven by a plain round-robin or seeded
// random scheduler — or by the Theorem 1 adversary itself (-sched
// theorem1) — and exportable as Chrome trace-event JSON that opens
// directly in Perfetto (-format trace-json).
//
// Usage:
//
//	simtrace [-object maxreg|counter|snapshot] [-impl NAME] [-n 4] \
//	         [-ops 6] [-sched random|roundrobin|theorem1] [-seed 1] \
//	         [-format text|trace-json] [-quiet] \
//	         [-explore [-workers N] [-budget M]] \
//	         [-from-history dump.json]
//
// -from-history skips the simulator entirely and renders a flight-recorder
// history dump (the tradeoffs/flight/v1 JSON written by /debug/history or a
// violation artifact; "-" reads stdin). With -format trace-json the window
// becomes a Chrome trace of real wall-clock operation intervals; the text
// format prints the window and re-runs the offline batch checker on it, so
// a violation artifact can be independently re-verified.
//
// Implementations: maxreg: algorithm-a, aac, unbounded, cas;
// counter: farray, aac, cas; snapshot: farray, afek, doublecollect.
//
// -sched theorem1 replaces the random workload with the paper's Theorem 1
// lower-bound construction (counter objects only, wait-free impls only):
// n-1 processes each run one Increment under Lemma 1 round scheduling,
// then a fresh reader runs one Read. Combined with -format trace-json the
// adversary's round structure and awareness growth are visible on a
// Perfetto timeline.
//
// -explore switches from running one schedule to exhaustively enumerating
// EVERY schedule of the workload via sim.ExploreParallel: -workers sets the
// work-stealing pool size (0 = GOMAXPROCS) and -budget caps the number of
// complete executions. Keep -n and -ops tiny; the tree grows factorially.
//
// -dpor (with -explore) turns on dynamic partial-order reduction: the
// engine visits one representative per Mazurkiewicz trace class instead of
// every interleaving (sim.Options.Reduce). -crosscheck instead runs BOTH
// engines and verifies the reduced run covered every trace class of the
// full run (sim.CrossCheckReduction) — the soundness check `make race-sim`
// executes at smoke size. See docs/exploration.md.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/restricteduse/tradeoffs/internal/adversary"
	"github.com/restricteduse/tradeoffs/internal/aware"
	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

type traceConfig struct {
	object      string
	impl        string
	n           int
	ops         int
	sched       string
	seed        int64
	format      string
	quiet       bool
	explore     bool
	dpor        bool
	crosscheck  bool
	workers     int
	budget      int
	fromHistory string
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simtrace", flag.ContinueOnError)
	cfg := traceConfig{}
	fs.StringVar(&cfg.object, "object", "maxreg", "object family: maxreg, counter, or snapshot")
	fs.StringVar(&cfg.impl, "impl", "", "implementation (default: the family's constant-read one)")
	fs.IntVar(&cfg.n, "n", 4, "number of processes")
	fs.IntVar(&cfg.ops, "ops", 6, "operations per process")
	fs.StringVar(&cfg.sched, "sched", "random", "scheduler: random, roundrobin, or theorem1 (counter only)")
	fs.Int64Var(&cfg.seed, "seed", 1, "scheduler and workload seed")
	fs.StringVar(&cfg.format, "format", "text", "output format: text or trace-json (Chrome trace events for Perfetto)")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress the per-event log (text format)")
	fs.BoolVar(&cfg.explore, "explore", false, "exhaustively explore EVERY schedule of the workload instead of running one")
	fs.BoolVar(&cfg.dpor, "dpor", false, "with -explore: dynamic partial-order reduction (one representative per trace class)")
	fs.BoolVar(&cfg.crosscheck, "crosscheck", false, "run reduced AND unreduced exploration and verify trace-class coverage (implies -explore)")
	fs.IntVar(&cfg.workers, "workers", 0, "exploration worker goroutines (-explore); 0 = GOMAXPROCS")
	fs.IntVar(&cfg.budget, "budget", 1_000_000, "max complete executions before -explore aborts")
	fs.StringVar(&cfg.fromHistory, "from-history", "", "render a flight-recorder history dump (tradeoffs/flight/v1 JSON; \"-\" = stdin) instead of simulating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.n < 1 || cfg.ops < 1 {
		return fmt.Errorf("need -n >= 1 and -ops >= 1")
	}
	if cfg.format != "text" && cfg.format != "trace-json" {
		return fmt.Errorf("unknown format %q (want text or trace-json)", cfg.format)
	}

	if cfg.crosscheck {
		cfg.explore = true
	}
	if cfg.dpor && !cfg.explore {
		return fmt.Errorf("-dpor requires -explore (reduction applies to exhaustive exploration)")
	}
	if cfg.fromHistory != "" {
		if cfg.explore || cfg.sched == "theorem1" {
			return fmt.Errorf("-from-history renders an existing dump; it is incompatible with -explore and -sched theorem1")
		}
		return runFromHistory(cfg, out)
	}
	if cfg.explore {
		if cfg.sched == "theorem1" {
			return fmt.Errorf("-explore is incompatible with -sched theorem1 (the adversary dictates its own schedule)")
		}
		if cfg.format == "trace-json" {
			return fmt.Errorf("-explore is incompatible with -format trace-json (there is no single execution to export)")
		}
		return runExplore(cfg, out)
	}
	if cfg.sched == "theorem1" {
		return runTheorem1(cfg, out)
	}
	return runWorkload(cfg, out)
}

// runFromHistory renders a flight-recorder dump instead of simulating:
// trace-json mode converts the window into a Chrome trace of wall-clock
// operation intervals, text mode prints it and re-verifies it with the
// offline batch checker.
func runFromHistory(cfg traceConfig, out io.Writer) error {
	var src io.Reader = os.Stdin
	if cfg.fromHistory != "-" {
		f, err := os.Open(cfg.fromHistory)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	d, err := history.ReadDump(src)
	if err != nil {
		return err
	}

	if cfg.format == "trace-json" {
		b, err := json.MarshalIndent(obs.HistoryTrace(d), "", " ")
		if err != nil {
			return err
		}
		_, err = out.Write(append(b, '\n'))
		return err
	}

	fmt.Fprintf(out, "flight window: object=%s family=%s ops=%d sample=1/%d dropped=%d\n",
		d.Name, d.Family, len(d.Ops), d.SampleEvery, d.Dropped)
	if !cfg.quiet {
		for _, op := range d.Ops {
			switch op.Kind {
			case history.KindScan:
				fmt.Fprintf(out, "  p%-2d %-12s %v  [%d, %d]\n", op.Proc, op.Kind, op.RetVec, op.Inv, op.Res)
			default:
				fmt.Fprintf(out, "  p%-2d %-12s arg=%-6d ret=%-6d [%d, %d]\n", op.Proc, op.Kind, op.Arg, op.Ret, op.Inv, op.Res)
			}
		}
	}
	if s := d.Summary; s != nil {
		fmt.Fprintf(out, "evicted-prefix summary: admitted=%d sealed_to=%d relaxed=%v\n", s.Admitted, s.SealedTo, s.Relaxed)
	}
	if v := d.Violation; v != nil {
		fmt.Fprintf(out, "recorded violation: %s\n", v.Error())
	}

	check := history.CheckerFor(d.Family)
	if check == nil {
		return fmt.Errorf("no checker for family %q", d.Family)
	}
	if err := check(d.Ops); err != nil {
		fmt.Fprintf(out, "offline re-check: VIOLATION CONFIRMED: %v\n", err)
	} else {
		fmt.Fprintf(out, "offline re-check: window passes the %s interval checker\n", d.Family)
	}
	return nil
}

// runExplore exhaustively enumerates every schedule of the configured
// workload through the work-stealing parallel engine, reporting the tree
// size and exploration throughput. The per-process programs are the same
// seeded random workloads runWorkload executes once. -dpor switches the
// engine to sleep-set partial-order reduction; -crosscheck runs reduced and
// unreduced exploration and verifies trace-class coverage.
func runExplore(cfg traceConfig, out io.Writer) error {
	if cfg.crosscheck {
		return runCrossCheck(cfg, out)
	}
	build := func(rec *sim.Recycler) (*sim.System, error) {
		pool := rec.Pool()
		programs, err := buildPrograms(cfg, pool)
		if err != nil {
			return nil, err
		}
		s := rec.NewSystem()
		for id, p := range programs {
			if err := s.Spawn(id, p); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	began := time.Now()
	execs, err := sim.ExploreParallel(build, func(*sim.System) error { return nil },
		sim.Options{Workers: cfg.workers, Budget: cfg.budget, Reduce: cfg.dpor})
	elapsed := time.Since(began)
	if err != nil {
		var be *sim.BudgetError
		if errors.As(err, &be) {
			return fmt.Errorf("%w\n(shrink -n/-ops or raise -budget; exhaustive trees grow factorially)", err)
		}
		return err
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	engine := "unreduced"
	if cfg.dpor {
		engine = "sleep-set reduced"
	}
	fmt.Fprintf(out, "explored %d complete executions in %v (%.0f execs/sec, %d workers, %s)\n",
		execs, elapsed.Round(time.Millisecond), float64(execs)/elapsed.Seconds(), workers, engine)
	return nil
}

// runCrossCheck runs both engines over the workload and verifies the
// reduced exploration covered every Mazurkiewicz trace class of the full
// one — the coverage soundness check behind `make race-sim`.
func runCrossCheck(cfg traceConfig, out io.Writer) error {
	build := func() (*sim.System, error) {
		//tradeoffvet:unpadded deterministic simulator: one scheduler serializes every access, padding only wastes memory
		pool := primitive.NewPool()
		programs, err := buildPrograms(cfg, pool)
		if err != nil {
			return nil, err
		}
		s := sim.NewSystem()
		for id, p := range programs {
			if err := s.Spawn(id, p); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	began := time.Now()
	stats, err := sim.CrossCheckReduction(build, cfg.budget)
	elapsed := time.Since(began)
	if err != nil {
		var be *sim.BudgetError
		if errors.As(err, &be) {
			return fmt.Errorf("%w\n(shrink -n/-ops or raise -budget; the cross-check pays for BOTH explorations)", err)
		}
		return fmt.Errorf("cross-check FAILED: %w", err)
	}
	fmt.Fprintf(out, "cross-check passed in %v: %v\n", elapsed.Round(time.Millisecond), stats)
	return nil
}

// runWorkload is the classic mode: a seeded random workload under a random
// or round-robin scheduler.
func runWorkload(cfg traceConfig, out io.Writer) error {
	//tradeoffvet:unpadded deterministic simulator: one scheduler serializes every access, padding only wastes memory
	pool := primitive.NewPool()
	programs, err := buildPrograms(cfg, pool)
	if err != nil {
		return err
	}

	s := sim.NewSystem()
	defer s.Shutdown()

	// Track information flow live, event by event, through the scheduler's
	// observer hook rather than post-hoc over the log.
	tr := aware.NewTracker(cfg.n)
	s.SetObserver(tr.Apply)

	for id, p := range programs {
		if err := s.Spawn(id, p); err != nil {
			return err
		}
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	for {
		active := s.Active()
		if len(active) == 0 {
			break
		}
		id := active[0]
		if cfg.sched == "random" {
			id = active[rng.Intn(len(active))]
		} else if cfg.sched != "roundrobin" {
			return fmt.Errorf("unknown scheduler %q", cfg.sched)
		}
		if cfg.sched == "roundrobin" {
			for _, pid := range active {
				if _, err := s.Step(pid); err != nil {
					return err
				}
			}
			continue
		}
		if _, err := s.Step(id); err != nil {
			return err
		}
	}

	if cfg.format == "trace-json" {
		return writeTraceJSON(out, s.Events(), cfg.n)
	}

	if !cfg.quiet {
		fmt.Fprintf(out, "events (%d total):\n", len(s.Events()))
		for _, ev := range s.Events() {
			printEvent(out, ev)
		}
	}

	fmt.Fprintf(out, "\nsteps per process:\n")
	for id := 0; id < cfg.n; id++ {
		fmt.Fprintf(out, "  p%-2d %d\n", id, s.StepsOf(id))
	}

	fmt.Fprintf(out, "\nawareness sets AW(p, E):\n")
	for id := 0; id < cfg.n; id++ {
		fmt.Fprintf(out, "  p%-2d %v  hidden=%v\n", id, tr.Awareness(id).Members(), tr.Hidden(id))
	}
	fmt.Fprintf(out, "\nnon-empty familiarity sets F(o, E):\n")
	for _, regID := range tr.ObjectIDs() {
		if members := tr.Familiarity(regID).Members(); len(members) > 0 {
			fmt.Fprintf(out, "  %-14s %v\n", pool.Get(regID), members)
		}
	}
	fmt.Fprintf(out, "\nM(E) = %d (max awareness/familiarity set size)\n", tr.MaxSetSize())
	return nil
}

// runTheorem1 runs the paper's Theorem 1 adversary construction against a
// counter implementation and renders its event log.
func runTheorem1(cfg traceConfig, out io.Writer) error {
	if cfg.object != "counter" {
		return fmt.Errorf("-sched theorem1 requires -object counter (got %q)", cfg.object)
	}
	if cfg.n < 2 {
		return fmt.Errorf("-sched theorem1 needs -n >= 2")
	}
	var factory adversary.CounterFactory
	switch cfg.impl {
	case "", "farray":
		factory = func(pool *primitive.Pool, n int) (counter.Counter, error) {
			return counter.NewFArray(pool, n)
		}
	case "aac":
		factory = func(pool *primitive.Pool, n int) (counter.Counter, error) {
			return counter.NewAAC(pool, n, int64(n))
		}
	case "cas":
		return fmt.Errorf("-sched theorem1 rejects -impl cas: the CAS counter is not wait-free, so the adversary starves it")
	default:
		return fmt.Errorf("unknown counter impl %q", cfg.impl)
	}

	res, err := adversary.RunCounterConstruction(factory, cfg.n, 100000)
	if err != nil {
		return err
	}

	if cfg.format == "trace-json" {
		return writeTraceJSON(out, res.Events, cfg.n)
	}

	if !cfg.quiet {
		fmt.Fprintf(out, "events (%d total):\n", len(res.Events))
		for _, ev := range res.Events {
			printEvent(out, ev)
		}
	}
	fmt.Fprintf(out, "\ntheorem1 construction (N=%d):\n", res.N)
	fmt.Fprintf(out, "  rounds            %d (bound: >= %d)\n", res.Rounds, res.TheoremBound)
	fmt.Fprintf(out, "  reader steps f(N) %d\n", res.ReadSteps)
	fmt.Fprintf(out, "  reader awareness  %d of %d\n", res.ReaderAwareness, res.N)
	fmt.Fprintf(out, "  read value        %d (want %d)\n", res.ReadValue, res.N-1)
	fmt.Fprintf(out, "  max familiarity per round: %v (invariant <= 3^j)\n", res.MaxFamiliarityPerRound)
	return nil
}

// writeTraceJSON renders events as Chrome trace-event JSON.
func writeTraceJSON(out io.Writer, events []sim.Event, n int) error {
	b, err := obs.ChromeTrace(events, n)
	if err != nil {
		return err
	}
	_, err = out.Write(append(b, '\n'))
	return err
}

// printEvent renders one event line of the text format.
func printEvent(out io.Writer, ev sim.Event) {
	detail := ""
	switch ev.Kind {
	case sim.OpRead:
		detail = fmt.Sprintf("-> %d", ev.Before)
	case sim.OpWrite:
		detail = fmt.Sprintf("val=%d", ev.Value)
	case sim.OpCAS:
		detail = fmt.Sprintf("%d->%d ok=%v", ev.Old, ev.New, ev.CASOK)
	}
	vis := " "
	if ev.Changed {
		vis = "*"
	}
	fmt.Fprintf(out, "  %4d p%-2d %-5s %-14s %s %s\n", ev.Seq, ev.Proc, ev.Kind, ev.Reg, vis, detail)
}

// buildPrograms constructs the chosen object plus one random workload
// program per process.
func buildPrograms(cfg traceConfig, pool *primitive.Pool) ([]sim.Program, error) {
	programs := make([]sim.Program, cfg.n)

	switch cfg.object {
	case "maxreg":
		var (
			m   maxreg.MaxRegister
			err error
		)
		switch cfg.impl {
		case "", "algorithm-a":
			m, err = core.New(pool, cfg.n, 0)
		case "aac":
			m, err = maxreg.NewAAC(pool, 1<<10)
		case "unbounded":
			m = maxreg.NewUnboundedAAC(pool)
		case "cas":
			m, err = maxreg.NewCASRegister(pool, 0)
		default:
			return nil, fmt.Errorf("unknown maxreg impl %q", cfg.impl)
		}
		if err != nil {
			return nil, err
		}
		for id := range programs {
			rng := rand.New(rand.NewSource(cfg.seed*7919 + int64(id)))
			programs[id] = func(ctx primitive.Context) {
				for i := 0; i < cfg.ops; i++ {
					if rng.Intn(2) == 0 {
						if err := m.WriteMax(ctx, rng.Int63n(1<<10)); err != nil {
							panic(err)
						}
					} else {
						m.ReadMax(ctx)
					}
				}
			}
		}

	case "counter":
		var (
			c   counter.Counter
			err error
		)
		switch cfg.impl {
		case "", "farray":
			c, err = counter.NewFArray(pool, cfg.n)
		case "aac":
			c, err = counter.NewAAC(pool, cfg.n, int64(cfg.n*cfg.ops)+1)
		case "cas":
			c, err = counter.NewCAS(pool, 0)
		default:
			return nil, fmt.Errorf("unknown counter impl %q", cfg.impl)
		}
		if err != nil {
			return nil, err
		}
		for id := range programs {
			rng := rand.New(rand.NewSource(cfg.seed*104729 + int64(id)))
			programs[id] = func(ctx primitive.Context) {
				for i := 0; i < cfg.ops; i++ {
					if rng.Intn(2) == 0 {
						if err := c.Increment(ctx); err != nil {
							panic(err)
						}
					} else {
						c.Read(ctx)
					}
				}
			}
		}

	case "snapshot":
		var (
			s   snapshot.Snapshot
			err error
		)
		limit := int64(cfg.n*cfg.ops) + 1
		switch cfg.impl {
		case "", "farray":
			s, err = snapshot.NewFArray(pool, cfg.n, limit)
		case "afek":
			s, err = snapshot.NewAfek(pool, cfg.n, limit)
		case "doublecollect":
			s, err = snapshot.NewDoubleCollect(pool, cfg.n)
		default:
			return nil, fmt.Errorf("unknown snapshot impl %q", cfg.impl)
		}
		if err != nil {
			return nil, err
		}
		for id := range programs {
			rng := rand.New(rand.NewSource(cfg.seed*15485863 + int64(id)))
			programs[id] = func(ctx primitive.Context) {
				seq := int64(0)
				for i := 0; i < cfg.ops; i++ {
					if rng.Intn(2) == 0 {
						seq++
						if err := s.Update(ctx, seq); err != nil {
							panic(err)
						}
					} else {
						s.Scan(ctx)
					}
				}
			}
		}

	default:
		return nil, fmt.Errorf("unknown object %q (want maxreg, counter, or snapshot)", cfg.object)
	}
	return programs, nil
}
