// Command simtrace runs a chosen object implementation under the
// deterministic simulator and prints the execution: every shared-memory
// event, each process's step count, and the final awareness and
// familiarity sets of the paper's information-flow model (Definitions
// 1-4). It is the debugging / teaching companion to the adversary
// experiments: the same machinery, driven by a plain round-robin or seeded
// random scheduler instead of a lower-bound construction.
//
// Usage:
//
//	simtrace [-object maxreg|counter|snapshot] [-impl NAME] [-n 4] \
//	         [-ops 6] [-sched random|roundrobin] [-seed 1] [-quiet]
//
// Implementations: maxreg: algorithm-a, aac, unbounded, cas;
// counter: farray, aac, cas; snapshot: farray, afek, doublecollect.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/restricteduse/tradeoffs/internal/aware"
	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

type traceConfig struct {
	object string
	impl   string
	n      int
	ops    int
	sched  string
	seed   int64
	quiet  bool
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simtrace", flag.ContinueOnError)
	cfg := traceConfig{}
	fs.StringVar(&cfg.object, "object", "maxreg", "object family: maxreg, counter, or snapshot")
	fs.StringVar(&cfg.impl, "impl", "", "implementation (default: the family's constant-read one)")
	fs.IntVar(&cfg.n, "n", 4, "number of processes")
	fs.IntVar(&cfg.ops, "ops", 6, "operations per process")
	fs.StringVar(&cfg.sched, "sched", "random", "scheduler: random or roundrobin")
	fs.Int64Var(&cfg.seed, "seed", 1, "scheduler and workload seed")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress the per-event log")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.n < 1 || cfg.ops < 1 {
		return fmt.Errorf("need -n >= 1 and -ops >= 1")
	}

	pool := primitive.NewPool()
	programs, err := buildPrograms(cfg, pool)
	if err != nil {
		return err
	}

	s := sim.NewSystem()
	defer s.Shutdown()
	for id, p := range programs {
		if err := s.Spawn(id, p); err != nil {
			return err
		}
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	for {
		active := s.Active()
		if len(active) == 0 {
			break
		}
		id := active[0]
		if cfg.sched == "random" {
			id = active[rng.Intn(len(active))]
		} else if cfg.sched != "roundrobin" {
			return fmt.Errorf("unknown scheduler %q", cfg.sched)
		}
		if cfg.sched == "roundrobin" {
			for _, pid := range active {
				if _, err := s.Step(pid); err != nil {
					return err
				}
			}
			continue
		}
		if _, err := s.Step(id); err != nil {
			return err
		}
	}

	tr := aware.NewTracker(cfg.n)
	if !cfg.quiet {
		fmt.Fprintf(out, "events (%d total):\n", len(s.Events()))
	}
	for _, ev := range s.Events() {
		tr.Apply(ev)
		if cfg.quiet {
			continue
		}
		detail := ""
		switch ev.Kind {
		case sim.OpRead:
			detail = fmt.Sprintf("-> %d", ev.Before)
		case sim.OpWrite:
			detail = fmt.Sprintf("val=%d", ev.Value)
		case sim.OpCAS:
			detail = fmt.Sprintf("%d->%d ok=%v", ev.Old, ev.New, ev.CASOK)
		}
		vis := " "
		if ev.Changed {
			vis = "*"
		}
		fmt.Fprintf(out, "  %4d p%-2d %-5s %-14s %s %s\n", ev.Seq, ev.Proc, ev.Kind, ev.Reg, vis, detail)
	}

	fmt.Fprintf(out, "\nsteps per process:\n")
	for id := 0; id < cfg.n; id++ {
		fmt.Fprintf(out, "  p%-2d %d\n", id, s.StepsOf(id))
	}

	fmt.Fprintf(out, "\nawareness sets AW(p, E):\n")
	for id := 0; id < cfg.n; id++ {
		fmt.Fprintf(out, "  p%-2d %v  hidden=%v\n", id, tr.Awareness(id).Members(), tr.Hidden(id))
	}
	fmt.Fprintf(out, "\nnon-empty familiarity sets F(o, E):\n")
	for _, regID := range tr.ObjectIDs() {
		if members := tr.Familiarity(regID).Members(); len(members) > 0 {
			fmt.Fprintf(out, "  %-14s %v\n", pool.Get(regID), members)
		}
	}
	fmt.Fprintf(out, "\nM(E) = %d (max awareness/familiarity set size)\n", tr.MaxSetSize())
	return nil
}

// buildPrograms constructs the chosen object plus one random workload
// program per process.
func buildPrograms(cfg traceConfig, pool *primitive.Pool) ([]sim.Program, error) {
	programs := make([]sim.Program, cfg.n)

	switch cfg.object {
	case "maxreg":
		var (
			m   maxreg.MaxRegister
			err error
		)
		switch cfg.impl {
		case "", "algorithm-a":
			m, err = core.New(pool, cfg.n, 0)
		case "aac":
			m, err = maxreg.NewAAC(pool, 1<<10)
		case "unbounded":
			m = maxreg.NewUnboundedAAC(pool)
		case "cas":
			m = maxreg.NewCASRegister(pool, 0)
		default:
			return nil, fmt.Errorf("unknown maxreg impl %q", cfg.impl)
		}
		if err != nil {
			return nil, err
		}
		for id := range programs {
			rng := rand.New(rand.NewSource(cfg.seed*7919 + int64(id)))
			programs[id] = func(ctx primitive.Context) {
				for i := 0; i < cfg.ops; i++ {
					if rng.Intn(2) == 0 {
						if err := m.WriteMax(ctx, rng.Int63n(1<<10)); err != nil {
							panic(err)
						}
					} else {
						m.ReadMax(ctx)
					}
				}
			}
		}

	case "counter":
		var (
			c   counter.Counter
			err error
		)
		switch cfg.impl {
		case "", "farray":
			c, err = counter.NewFArray(pool, cfg.n)
		case "aac":
			c, err = counter.NewAAC(pool, cfg.n, int64(cfg.n*cfg.ops)+1)
		case "cas":
			c = counter.NewCAS(pool)
		default:
			return nil, fmt.Errorf("unknown counter impl %q", cfg.impl)
		}
		if err != nil {
			return nil, err
		}
		for id := range programs {
			rng := rand.New(rand.NewSource(cfg.seed*104729 + int64(id)))
			programs[id] = func(ctx primitive.Context) {
				for i := 0; i < cfg.ops; i++ {
					if rng.Intn(2) == 0 {
						if err := c.Increment(ctx); err != nil {
							panic(err)
						}
					} else {
						c.Read(ctx)
					}
				}
			}
		}

	case "snapshot":
		var (
			s   snapshot.Snapshot
			err error
		)
		limit := int64(cfg.n*cfg.ops) + 1
		switch cfg.impl {
		case "", "farray":
			s, err = snapshot.NewFArray(pool, cfg.n, limit)
		case "afek":
			s, err = snapshot.NewAfek(pool, cfg.n, limit)
		case "doublecollect":
			s, err = snapshot.NewDoubleCollect(pool, cfg.n)
		default:
			return nil, fmt.Errorf("unknown snapshot impl %q", cfg.impl)
		}
		if err != nil {
			return nil, err
		}
		for id := range programs {
			rng := rand.New(rand.NewSource(cfg.seed*15485863 + int64(id)))
			programs[id] = func(ctx primitive.Context) {
				seq := int64(0)
				for i := 0; i < cfg.ops; i++ {
					if rng.Intn(2) == 0 {
						seq++
						if err := s.Update(ctx, seq); err != nil {
							panic(err)
						}
					} else {
						s.Scan(ctx)
					}
				}
			}
		}

	default:
		return nil, fmt.Errorf("unknown object %q (want maxreg, counter, or snapshot)", cfg.object)
	}
	return programs, nil
}
