package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/obs"
)

func TestTraceMaxRegDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-ops", "4", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"events (", "steps per process:", "awareness sets", "M(E) ="} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		if err := run([]string{"-object", "counter", "-impl", "farray", "-n", "3", "-ops", "3", "-seed", "9"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if render() != render() {
		t.Fatal("same seed produced different traces")
	}
}

func TestTraceAllObjectsAndImpls(t *testing.T) {
	cases := [][2]string{
		{"maxreg", "algorithm-a"}, {"maxreg", "aac"}, {"maxreg", "unbounded"}, {"maxreg", "cas"},
		{"counter", "farray"}, {"counter", "aac"}, {"counter", "cas"},
		{"snapshot", "farray"}, {"snapshot", "afek"}, {"snapshot", "doublecollect"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		args := []string{"-object", tc[0], "-impl", tc[1], "-n", "3", "-ops", "3", "-quiet"}
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if !strings.Contains(out.String(), "M(E) =") {
			t.Fatalf("%v: summary missing", tc)
		}
	}
}

func TestTraceRoundRobin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sched", "roundrobin", "-n", "2", "-ops", "2", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-object", "stack"},
		{"-object", "maxreg", "-impl", "nope"},
		{"-object", "counter", "-impl", "nope"},
		{"-object", "snapshot", "-impl", "nope"},
		{"-sched", "chaos"},
		{"-n", "0"},
		{"-ops", "0"},
		{"-bogus-flag"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestTraceJSONWorkload checks -format trace-json emits parseable Chrome
// trace-event JSON for a random workload.
func TestTraceJSONWorkload(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-ops", "4", "-seed", "2", "-format", "trace-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(out.Bytes(), &tf); err != nil {
		t.Fatalf("trace-json output is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
}

// TestTraceJSONTheorem1 is the acceptance check: the Theorem 1 adversary
// run exports as valid Chrome trace-event JSON with per-event slices and
// the information-flow counter tracks.
func TestTraceJSONTheorem1(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-object", "counter", "-sched", "theorem1", "-n", "5", "-format", "trace-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(out.Bytes(), &tf); err != nil {
		t.Fatalf("trace-json output is not valid JSON: %v", err)
	}
	var slices, counters int
	sawME := false
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
		case "X":
			slices++
		case "C":
			counters++
			if ev.Name == "M(E)" {
				sawME = true
			}
		default:
			t.Fatalf("unknown phase %q in %+v", ev.Ph, ev)
		}
	}
	if slices == 0 || counters == 0 || !sawME {
		t.Fatalf("trace structure wrong: %d slices, %d counters, M(E)=%v", slices, counters, sawME)
	}
}

func TestTheorem1TextSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-object", "counter", "-sched", "theorem1", "-n", "5", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"theorem1 construction (N=5)", "reader steps f(N)", "read value        4 (want 4)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestTheorem1RejectsBadConfigs(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-sched", "theorem1"},                                       // maxreg object
		{"-object", "counter", "-sched", "theorem1", "-n", "1"},      // too few processes
		{"-object", "counter", "-sched", "theorem1", "-impl", "cas"}, // not wait-free
		{"-object", "counter", "-sched", "theorem1", "-impl", "nope"},
		{"-format", "yaml"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestExploreCountsExecutions(t *testing.T) {
	// Exploration must be deterministic in its execution count across
	// worker counts (the schedule tree is a property of the workload).
	counts := make(map[string]bool)
	for _, workers := range []string{"1", "4"} {
		var out bytes.Buffer
		if err := run([]string{"-explore", "-object", "counter", "-impl", "cas",
			"-n", "2", "-ops", "2", "-workers", workers}, &out); err != nil {
			t.Fatal(err)
		}
		text := out.String()
		if !strings.Contains(text, "complete executions") {
			t.Fatalf("missing summary line:\n%s", text)
		}
		counts[strings.Fields(text)[1]] = true
	}
	if len(counts) != 1 {
		t.Fatalf("execution counts differ across worker counts: %v", counts)
	}
}

func TestExploreBudgetAborts(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-explore", "-object", "counter", "-impl", "cas",
		"-n", "2", "-ops", "2", "-budget", "2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("budget overrun not reported: %v", err)
	}
}

func TestExploreRejectsIncompatibleModes(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-explore", "-sched", "theorem1", "-object", "counter"},
		{"-explore", "-format", "trace-json"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestFromHistoryRoundTrip is the satellite acceptance test: a
// flight-recorder dump written by history.WriteDump renders through
// -from-history as both text (with offline re-check) and valid
// Chrome-trace JSON.
func TestFromHistoryRoundTrip(t *testing.T) {
	dump := &history.Dump{
		Name:        "maxreg#0",
		Family:      "maxreg",
		ClockUnit:   "ns-hybrid",
		SampleEvery: 1,
		Violation: &history.ViolationError{
			Checker: "maxreg",
			Detail:  "read missed completed write of 42",
			Op:      history.Op{Proc: 1, Kind: history.KindReadMax, Ret: 0, Inv: 3_000_000, Res: 3_050_000},
		},
		Ops: []history.Op{
			{Proc: 0, Kind: history.KindWriteMax, Arg: 42, Inv: 1_000_000, Res: 1_200_000},
			{Proc: 1, Kind: history.KindReadMax, Ret: 0, Inv: 3_000_000, Res: 3_050_000},
		},
	}
	path := filepath.Join(t.TempDir(), "dump.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := history.WriteDump(f, dump); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if err := run([]string{"-from-history", path}, &text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flight window: object=maxreg#0", "VIOLATION CONFIRMED"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}

	var traced bytes.Buffer
	if err := run([]string{"-from-history", path, "-format", "trace-json"}, &traced); err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(traced.Bytes(), &tf); err != nil {
		t.Fatalf("-from-history trace-json invalid: %v", err)
	}
	var slices, markers int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
		case "I":
			markers++
		}
	}
	if slices != 2 || markers != 1 {
		t.Fatalf("trace structure wrong: %d slices, %d violation markers", slices, markers)
	}
}

// TestFromHistoryRejectsBadInput covers the input-mode error paths.
func TestFromHistoryRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-from-history", filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-from-history", bad}, &out); err == nil {
		t.Fatal("wrong schema accepted")
	}
	for _, args := range [][]string{
		{"-from-history", bad, "-explore"},
		{"-from-history", bad, "-sched", "theorem1", "-object", "counter"},
	} {
		if err := run(args, &out); err == nil || !strings.Contains(err.Error(), "incompatible") {
			t.Fatalf("args %v: want incompatibility error, got %v", args, err)
		}
	}
}
