package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceMaxRegDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-ops", "4", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"events (", "steps per process:", "awareness sets", "M(E) ="} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		if err := run([]string{"-object", "counter", "-impl", "farray", "-n", "3", "-ops", "3", "-seed", "9"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if render() != render() {
		t.Fatal("same seed produced different traces")
	}
}

func TestTraceAllObjectsAndImpls(t *testing.T) {
	cases := [][2]string{
		{"maxreg", "algorithm-a"}, {"maxreg", "aac"}, {"maxreg", "unbounded"}, {"maxreg", "cas"},
		{"counter", "farray"}, {"counter", "aac"}, {"counter", "cas"},
		{"snapshot", "farray"}, {"snapshot", "afek"}, {"snapshot", "doublecollect"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		args := []string{"-object", tc[0], "-impl", tc[1], "-n", "3", "-ops", "3", "-quiet"}
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if !strings.Contains(out.String(), "M(E) =") {
			t.Fatalf("%v: summary missing", tc)
		}
	}
}

func TestTraceRoundRobin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sched", "roundrobin", "-n", "2", "-ops", "2", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-object", "stack"},
		{"-object", "maxreg", "-impl", "nope"},
		{"-object", "counter", "-impl", "nope"},
		{"-object", "snapshot", "-impl", "nope"},
		{"-sched", "chaos"},
		{"-n", "0"},
		{"-ops", "0"},
		{"-bogus-flag"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
