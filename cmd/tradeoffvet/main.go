// Command tradeoffvet runs the repository's step-accounting static
// analysis suite (internal/analysis) over module packages: modelstep,
// poolalloc, ctxflow and boundedloop. It is the machine check behind the
// convention the whole reproduction rests on — that a "step" (Hendler &
// Khait, Section 2) is exactly one primitive.Context event.
//
// Usage:
//
//	go run ./cmd/tradeoffvet [packages]   # default ./...
//	go run ./cmd/tradeoffvet -list        # describe the analyzers
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// load or typecheck failure. Intentional out-of-band accesses are
// annotated in source with //tradeoffvet:outofband (step-model passes) or
// //tradeoffvet:casretry (boundedloop); see docs/static-analysis.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/restricteduse/tradeoffs/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tradeoffvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tradeoffvet [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := analysis.LoadPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAll(pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tradeoffvet: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
