// Command tradeoffvet runs the repository's step-accounting static
// analysis suite (internal/analysis) over module packages: modelstep,
// poolalloc, ctxflow, boundedloop, stepbound, atomicprotocol and padalign.
// It is the machine check behind the convention the whole reproduction
// rests on — that a "step" (Hendler & Khait, Section 2) is exactly one
// primitive.Context event — and, via stepbound, certifies that declared
// per-operation step bounds hold along the whole call graph.
//
// Usage:
//
//	go run ./cmd/tradeoffvet [flags] [packages]   # default ./...
//	go run ./cmd/tradeoffvet -list                # describe the analyzers
//	go run ./cmd/tradeoffvet -bounds              # print the certified-bound table
//
// Flags:
//
//	-format text|json|sarif   output format (default text)
//	-out FILE                 write the report to FILE instead of stdout
//	-baseline FILE            drop findings recorded in FILE (gradual adoption)
//	-write-baseline FILE      record current findings as the baseline and exit 0
//	-unused-suppressions      also fail on tradeoffvet: annotations nothing consulted
//	-bounds                   print declared-vs-derived step bounds and exit
//	                          (honors -format text|json and -out; the JSON
//	                          form is schema tradeoffs/bounds/v1, consumed
//	                          by the runtime loader in internal/obs/bounds)
//
// Exit status: 0 when clean, 1 when diagnostics were reported (or a
// declared bound fails), 2 on a load or typecheck failure. Intentional
// escapes are annotated in source: //tradeoffvet:outofband (step-model
// passes), //tradeoffvet:casretry (boundedloop), //tradeoffvet:seqlock
// (atomicprotocol), //tradeoffvet:unpadded (padalign); see
// docs/static-analysis.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/restricteduse/tradeoffs/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tradeoffvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	bounds := fs.Bool("bounds", false, "print the declared-vs-derived step bound table and exit")
	format := fs.String("format", "text", "output format: text, json or sarif")
	out := fs.String("out", "", "write the report to this file instead of stdout")
	baseline := fs.String("baseline", "", "drop findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	unusedSuppressions := fs.Bool("unused-suppressions", false, "also report tradeoffvet: annotations that no analyzer consulted")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tradeoffvet [-list] [-bounds] [-format text|json|sarif] [-out file] [-baseline file] [-write-baseline file] [-unused-suppressions] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "tradeoffvet: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}

	// Report on the matched packages, but derive step summaries over the
	// whole module: stepbound is interprocedural, and a single-package run
	// must still resolve calls into the packages not under report.
	pkgs, all, root, err := analysis.LoadModule(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
		return 2
	}
	prog := analysis.NewProgram(all)

	if *bounds {
		w := io.Writer(stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		return printBounds(w, stderr, pkgs, prog, *format, root)
	}

	diags, err := analysis.RunAllIn(pkgs, prog)
	if err != nil {
		fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
		return 2
	}
	if *unusedSuppressions {
		// The full suite just ran, so every load-bearing annotation is
		// marked; whatever is left is stale.
		diags = append(diags, analysis.StaleAnnotations(pkgs)...)
	}
	analysis.Relativize(diags, root)

	if *baseline != "" {
		base, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
			return 2
		}
		var suppressed int
		diags, suppressed = analysis.FilterBaseline(diags, base)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "tradeoffvet: %d finding(s) matched the baseline\n", suppressed)
		}
	}
	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "tradeoffvet: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = analysis.WriteJSON(w, diags)
	case "sarif":
		err = analysis.WriteSARIF(w, diags)
	default:
		err = analysis.WriteText(w, diags)
	}
	if err != nil {
		fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tradeoffvet: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// printBounds derives every declared //tradeoffvet:bound and writes the
// comparison table as text or tradeoffs/bounds/v1 JSON. Exit 1 if any
// bound fails.
func printBounds(w, stderr io.Writer, pkgs []*analysis.Package, prog *analysis.Program, format, root string) int {
	rows := analysis.BoundTable(pkgs, prog)
	failed := 0
	for _, r := range rows {
		if !r.OK {
			failed++
		}
	}
	switch format {
	case "json":
		if err := analysis.WriteBoundsJSON(w, rows, root); err != nil {
			fmt.Fprintf(stderr, "tradeoffvet: %v\n", err)
			return 2
		}
	case "sarif":
		fmt.Fprintf(stderr, "tradeoffvet: -bounds supports -format text or json, not sarif\n")
		return 2
	default:
		fmt.Fprintf(w, "%-40s %-12s %-8s %-12s %-28s %s\n", "OPERATION", "MODE", "CLASS", "DECLARED", "DERIVED", "STATUS")
		for _, r := range rows {
			status := "ok"
			if !r.OK {
				status = "FAIL"
			}
			fmt.Fprintf(w, "%-40s %-12s %-8s %-12s %-28s %s\n", r.Func, r.Mode, r.Class, r.Declared, r.Derived, status)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "tradeoffvet: %d bound(s) failed\n", failed)
		return 1
	}
	return 0
}
