package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/analysis"
)

// TestCleanTree is the acceptance gate: the suite must pass over the whole
// module, with every deliberate out-of-band access annotated in source.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("tradeoffvet ./... exited %d, want 0\nstdout:\n%sstderr:\n%s", code, &stdout, &stderr)
	}
}

// TestUnusedSuppressionsClean is the companion gate: every tradeoffvet:
// annotation in the real tree must be load-bearing — consulted by the
// analyzer it exists for — or the build fails.
func TestUnusedSuppressionsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-unused-suppressions", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("tradeoffvet -unused-suppressions ./... exited %d, want 0\nstdout:\n%sstderr:\n%s", code, &stdout, &stderr)
	}
}

// TestDefaultPackagesIncludeExamplesAndCmd pins the default package set:
// the suite must cover examples/ and cmd/ — where register arenas are
// allocated and contexts handed out — not just internal/.
func TestDefaultPackagesIncludeExamplesAndCmd(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	pkgs, _, err := analysis.LoadPatterns(nil)
	if err != nil {
		t.Fatalf("LoadPatterns(nil): %v", err)
	}
	want := map[string]bool{
		"github.com/restricteduse/tradeoffs/cmd/tradeoffvet":    false,
		"github.com/restricteduse/tradeoffs/cmd/simtrace":       false,
		"github.com/restricteduse/tradeoffs/examples/consensus": false,
	}
	for _, p := range pkgs {
		if _, ok := want[p.Path]; ok {
			want[p.Path] = true
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("default package set omits %s", path)
		}
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("tradeoffvet -list exited %d, want 0\nstderr:\n%s", code, &stderr)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, &stdout)
		}
	}
}

func TestNoMatchingPackages(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("tradeoffvet ./no/such/dir exited %d, want 2", code)
	}
}

// writeTree materializes a file tree under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// scratchModule is a minimal module whose one model function declares a
// bound one step tighter than its body: the acceptance case for stepbound
// failing a build.
var scratchModule = map[string]string{
	"go.mod": "module example.fix\n\ngo 1.22\n",
	"internal/primitive/primitive.go": `// Package primitive is a scratch stand-in for the real base objects.
package primitive

// Register is one shared word.
type Register struct{ v int64 }

// Pool allocates registers.
type Pool struct{}

// NewPadded returns a padded arena.
func NewPadded() *Pool { return &Pool{} }

// New allocates one register.
func (p *Pool) New(name string, init int64) *Register { return &Register{v: init} }

// Context issues counted steps.
type Context interface {
	ID() int
	Read(r *Register) int64
	Write(r *Register, v int64)
	CAS(r *Register, old, new int64) bool
}
`,
	"internal/core/core.go": `// Package core under-declares a step bound.
package core

import "example.fix/internal/primitive"

// R is a one-cell register.
type R struct{ cell *primitive.Register }

// Two issues two steps but declares one.
//
//tradeoffvet:bound steps<=1
func (r *R) Two(ctx primitive.Context) {
	_ = ctx.Read(r.cell)
	ctx.Write(r.cell, 1)
}
`,
}

// TestTightenedBoundFailsEndToEnd drives the CLI against a scratch module
// whose declared bound is one step too tight: text mode must exit 1 with
// the stepbound diagnostic, JSON mode must report it deterministically
// with module-root-relative paths, and recording the finding as a baseline
// must turn the same run clean.
func TestTightenedBoundFailsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks a scratch module from source")
	}
	dir := t.TempDir()
	writeTree(t, dir, scratchModule)
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("tightened bound exited %d, want 1\nstdout:\n%sstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "derived worst-case steps cost 2 exceeds declared bound 1") {
		t.Errorf("missing stepbound diagnostic:\n%s", &stdout)
	}

	var json1, json2 bytes.Buffer
	if code := run([]string{"-format", "json", "./..."}, &json1, &stderr); code != 1 {
		t.Fatalf("json mode exited %d, want 1", code)
	}
	if code := run([]string{"-format", "json", "./..."}, &json2, &stderr); code != 1 {
		t.Fatalf("second json run exited %d, want 1", code)
	}
	if json1.String() != json2.String() {
		t.Errorf("json output is not deterministic:\n%s\nvs:\n%s", &json1, &json2)
	}
	var report struct {
		Diagnostics []struct {
			File     string `json:"file"`
			Analyzer string `json:"analyzer"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(json1.Bytes(), &report); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, &json1)
	}
	if len(report.Diagnostics) != 1 {
		t.Fatalf("json reported %d diagnostics, want 1:\n%s", len(report.Diagnostics), &json1)
	}
	if d := report.Diagnostics[0]; d.File != "internal/core/core.go" || d.Analyzer != "stepbound" {
		t.Errorf("json diagnostic is %+v, want module-relative internal/core/core.go from stepbound", d)
	}

	base := filepath.Join(dir, "baseline.json")
	if code := run([]string{"-write-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exited %d, want 0\nstderr:\n%s", code, &stderr)
	}
	stderr.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-baseline exited %d, want 0\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "matched the baseline") {
		t.Errorf("baseline run did not report the suppressed finding:\n%s", &stderr)
	}
}

// injectionLoader shares one import cache across the injection tests.
var injectionLoader = analysis.NewLoader()

// TestInjectedAtomicInCounter proves the check the suite exists for:
// smuggling a raw atomic.Int64 into internal/counter — typechecked against
// the real module without touching the tree — fails modelstep with the
// documented diagnostic.
func TestInjectedAtomicInCounter(t *testing.T) {
	pkg, err := injectionLoader.Source(
		"github.com/restricteduse/tradeoffs/internal/counter",
		map[string]string{"bad_atomic.go": `package counter

import "sync/atomic"

// Hot is a raw atomic counter smuggled into a model package.
type Hot struct {
	n atomic.Int64
}
`})
	if err != nil {
		t.Fatalf("loading injected package: %v", err)
	}
	diags, err := analysis.RunAnalyzer(analysis.Modelstep, pkg)
	if err != nil {
		t.Fatalf("running modelstep: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("modelstep reported nothing for a raw atomic.Int64 in internal/counter")
	}
	var sawImport, sawUse bool
	for _, d := range diags {
		if strings.Contains(d.Message, "model package imports sync/atomic") {
			sawImport = true
		}
		if strings.Contains(d.Message, "atomic.Int64 bypasses the step-counted primitive.Context") {
			sawUse = true
		}
	}
	if !sawImport || !sawUse {
		t.Errorf("missing documented diagnostics (import=%v use=%v):\n%v", sawImport, sawUse, diags)
	}
}

// TestInjectedRawRegisterInCore proves the companion check: allocating a
// register with new(primitive.Register) inside internal/core fails
// poolalloc.
func TestInjectedRawRegisterInCore(t *testing.T) {
	pkg, err := injectionLoader.Source(
		"github.com/restricteduse/tradeoffs/internal/core",
		map[string]string{"bad_alloc.go": `package core

import "github.com/restricteduse/tradeoffs/internal/primitive"

// Rogue allocates a register behind the pool's back.
func Rogue() *primitive.Register {
	return new(primitive.Register)
}
`})
	if err != nil {
		t.Fatalf("loading injected package: %v", err)
	}
	diags, err := analysis.RunAnalyzer(analysis.Poolalloc, pkg)
	if err != nil {
		t.Fatalf("running poolalloc: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("poolalloc reported %d diagnostics, want 1:\n%v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "new(primitive.Register) bypasses the pool") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}
