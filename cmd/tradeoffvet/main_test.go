package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/analysis"
)

// TestCleanTree is the acceptance gate: the suite must pass over the whole
// module, with every deliberate out-of-band access annotated in source.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("tradeoffvet ./... exited %d, want 0\nstdout:\n%sstderr:\n%s", code, &stdout, &stderr)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("tradeoffvet -list exited %d, want 0\nstderr:\n%s", code, &stderr)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, &stdout)
		}
	}
}

func TestNoMatchingPackages(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("tradeoffvet ./no/such/dir exited %d, want 2", code)
	}
}

// injectionLoader shares one import cache across the injection tests.
var injectionLoader = analysis.NewLoader()

// TestInjectedAtomicInCounter proves the check the suite exists for:
// smuggling a raw atomic.Int64 into internal/counter — typechecked against
// the real module without touching the tree — fails modelstep with the
// documented diagnostic.
func TestInjectedAtomicInCounter(t *testing.T) {
	pkg, err := injectionLoader.Source(
		"github.com/restricteduse/tradeoffs/internal/counter",
		map[string]string{"bad_atomic.go": `package counter

import "sync/atomic"

// Hot is a raw atomic counter smuggled into a model package.
type Hot struct {
	n atomic.Int64
}
`})
	if err != nil {
		t.Fatalf("loading injected package: %v", err)
	}
	diags, err := analysis.RunAnalyzer(analysis.Modelstep, pkg)
	if err != nil {
		t.Fatalf("running modelstep: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("modelstep reported nothing for a raw atomic.Int64 in internal/counter")
	}
	var sawImport, sawUse bool
	for _, d := range diags {
		if strings.Contains(d.Message, "model package imports sync/atomic") {
			sawImport = true
		}
		if strings.Contains(d.Message, "atomic.Int64 bypasses the step-counted primitive.Context") {
			sawUse = true
		}
	}
	if !sawImport || !sawUse {
		t.Errorf("missing documented diagnostics (import=%v use=%v):\n%v", sawImport, sawUse, diags)
	}
}

// TestInjectedRawRegisterInCore proves the companion check: allocating a
// register with new(primitive.Register) inside internal/core fails
// poolalloc.
func TestInjectedRawRegisterInCore(t *testing.T) {
	pkg, err := injectionLoader.Source(
		"github.com/restricteduse/tradeoffs/internal/core",
		map[string]string{"bad_alloc.go": `package core

import "github.com/restricteduse/tradeoffs/internal/primitive"

// Rogue allocates a register behind the pool's back.
func Rogue() *primitive.Register {
	return new(primitive.Register)
}
`})
	if err != nil {
		t.Fatalf("loading injected package: %v", err)
	}
	diags, err := analysis.RunAnalyzer(analysis.Poolalloc, pkg)
	if err != nil {
		t.Fatalf("running poolalloc: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("poolalloc reported %d diagnostics, want 1:\n%v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "new(primitive.Register) bypasses the pool") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}
