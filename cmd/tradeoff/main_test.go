package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("8, 16,32")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 8 || got[2] != 32 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("8,x"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseInts("1"); err == nil {
		t.Fatal("size 1 accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "e99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-run", "e1", "-ns", "zap"}, &out); err == nil {
		t.Fatal("bad -ns accepted")
	}
	if err := run([]string{"-ks", "1"}, &out); err == nil {
		t.Fatal("bad -ks accepted")
	}
	if err := run([]string{"-run", "e1", "-ns", "4,8", "-format", "yaml"}, &out); err == nil {
		t.Fatal("bad format accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunE1TextOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "e1", "-ns", "4,8"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"E1:", "forced rounds", "farray", "aac", "cas"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunFlightExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-flight", "-run", "flight", "-flight-sample", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"FLIGHT:", "maxreg", "counter", "snapshot", "consensus"} {
		if !strings.Contains(text, want) {
			t.Fatalf("flight output missing %q:\n%s", want, text)
		}
	}
	// -run flight already selects it; -flight must not run it twice.
	if n := strings.Count(text, "FLIGHT:"); n != 1 {
		t.Fatalf("flight experiment ran %d times, want 1", n)
	}
}

func TestRunMarkdownAndCSV(t *testing.T) {
	var md bytes.Buffer
	if err := run([]string{"-run", "e1", "-ns", "4", "-format", "markdown"}, &md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "### E1:") {
		t.Fatalf("markdown output malformed:\n%s", md.String())
	}
	var csv bytes.Buffer
	if err := run([]string{"-run", "e1", "-ns", "4", "-format", "csv"}, &csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "impl,N,") {
		t.Fatalf("csv output malformed:\n%s", csv.String())
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "e1, e9", "-ns", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E1:") || !strings.Contains(out.String(), "E9:") {
		t.Fatal("requested experiments missing from output")
	}
}

func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	var out bytes.Buffer
	err := run([]string{"-run", "e1", "-ns", "4",
		"-cpuprofile", cpu, "-memprofile", mem, "-trace", tr}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// The CPU profile and trace are finalized by deferred stops inside run,
	// so all three files must exist and be non-empty now.
	for _, path := range []string{cpu, mem, tr} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestProfilingFlagBadPath(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "e1", "-ns", "4", "-cpuprofile", "/nonexistent-dir/x"}, &out); err == nil {
		t.Fatal("unwritable -cpuprofile accepted")
	}
}

func TestRunE12ExploreScaling(t *testing.T) {
	// A single-worker run keeps the test fast while still exercising the
	// seq row, the parallel row, and the speedup column.
	var out bytes.Buffer
	if err := run([]string{"-run", "e12", "-workers", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"E12", "writers", "seq", "w1", "speedup_vs_seq"} {
		if !strings.Contains(text, want) {
			t.Fatalf("e12 output missing %q:\n%s", want, text)
		}
	}
}

func TestRunE12RejectsBadWorkers(t *testing.T) {
	var out bytes.Buffer
	for _, w := range []string{"0", "x", ""} {
		if err := run([]string{"-run", "e12", "-workers", w}, &out); err == nil {
			t.Fatalf("-workers %q accepted", w)
		}
	}
}
