// Command tradeoff runs the repository's experiments — the executable
// counterparts of every theorem in Hendler & Khait (PODC 2014) — and prints
// their tables. See EXPERIMENTS.md for the recorded results and the mapping
// to the paper's claims.
//
// Usage:
//
//	tradeoff [-run e1,e3] [-format text|markdown|csv] [-ns 8,16,32] [-ks 64,256] \
//	         [-flight] [-flight-sample 64] [-flight-window 1024] \
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//
// With no flags it runs everything with the default sweeps. The profiling
// flags wrap the whole run: -cpuprofile and -memprofile write pprof
// profiles (`go tool pprof`), -trace writes a runtime execution trace
// (`go tool trace`) — the standard toolchain views of the same experiments
// whose shared-memory step counts the tables report.
//
// -flight adds the live monitored experiment ("flight", also selectable
// via -run flight): a concurrent workload over all four object families
// through the public facade with the flight recorder and online
// linearizability monitor attached — see docs/flight-recorder.md. The
// run fails on any detected violation. -flight-sample sets the
// recorder's 1-in-N sampling rate (1 = record everything, exact-mode
// checking) and -flight-window its per-process ring capacity.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"slices"
	"strconv"
	"strings"

	"github.com/restricteduse/tradeoffs/internal/bench"
	"github.com/restricteduse/tradeoffs/internal/bench/flightlive"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tradeoff", flag.ContinueOnError)
	var (
		runList    = fs.String("run", "all", "comma-separated experiments to run: e1,e2,e3,e4,e5,e7,e9,e10,e12,e14 or all")
		format     = fs.String("format", "text", "output format: text, markdown, or csv")
		nsFlag     = fs.String("ns", "", "override process-count sweep for e1/e2/e5 (comma-separated)")
		ksFlag     = fs.String("ks", "", "override K sweep for e3 (comma-separated)")
		workersFlg = fs.String("workers", "1,2,4,8", "ExploreParallel worker-count sweep for e12 (comma-separated, counts >= 1)")
		dporFlag   = fs.Bool("dpor", false, "run e12's exploration sweep under dynamic partial-order reduction (sleep sets)")
		flightFlag = fs.Bool("flight", false, "also run the live flight-recorder experiment (fails on any linearizability violation)")
		flightSmpl = fs.Int("flight-sample", 64, "flight recorder sampling rate: record 1 in N operations per process (1 = exact)")
		flightWin  = fs.Int("flight-window", 1024, "flight recorder per-process ring capacity, in records")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		traceFile  = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer trace.Stop()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tradeoff: -memprofile:", err)
			}
			f.Close()
		}()
	}

	ns := bench.DefaultCounterNs
	if *nsFlag != "" {
		parsed, err := parseInts(*nsFlag)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		ns = parsed
	}
	ks := bench.DefaultMaxRegKs
	if *ksFlag != "" {
		parsed, err := parseInts(*ksFlag)
		if err != nil {
			return fmt.Errorf("-ks: %w", err)
		}
		ks = parsed
	}

	experiments := map[string]func() ([]*bench.Table, error){
		"e1": func() ([]*bench.Table, error) { return bench.E1CounterTradeoff(ns) },
		"e2": func() ([]*bench.Table, error) { return bench.E2SnapshotTradeoff(ns) },
		"e3": func() ([]*bench.Table, error) { return bench.E3MaxRegAdversary(ks) },
		"e4": func() ([]*bench.Table, error) {
			return bench.E4AlgorithmASteps([]int{16, 64, 256, 1024, 4096}, 4096,
				[]int64{0, 1, 2, 4, 8, 16, 64, 256, 1024, 4095, 4096, 8192, 1 << 20, 1 << 40})
		},
		"e5": func() ([]*bench.Table, error) { return bench.E5Compare(bench.DefaultCompareNs) },
		"e7": func() ([]*bench.Table, error) { return bench.E7Lemma1Growth(64) },
		"e9": func() ([]*bench.Table, error) {
			return bench.E9Ablations(4096, []int64{1, 4, 16, 256, 4095, 4096, 1 << 20})
		},
		"e10": func() ([]*bench.Table, error) { return bench.E10AmortizedWrites(1 << 12) },
		"e12": func() ([]*bench.Table, error) {
			// -workers allows 1 (unlike the process sweeps): workers=1 vs
			// the sequential row is the replay-reuse ablation.
			workers, err := bench.ParseWorkers(*workersFlg)
			if err != nil {
				return nil, fmt.Errorf("-workers: %w", err)
			}
			return bench.E12ExploreScaling(bench.ExploreConfig{Workers: workers, Reduce: *dporFlag})
		},
		"e14": func() ([]*bench.Table, error) {
			// The DPOR suite sweeps its own smaller default worker axis
			// unless -workers overrides it; the unreduced baseline row pays
			// for the full tree, so dimensions stay at the suite defaults.
			var workers []int
			if *workersFlg != "1,2,4,8" { // only honor an explicit override
				var err error
				workers, err = bench.ParseWorkers(*workersFlg)
				if err != nil {
					return nil, fmt.Errorf("-workers: %w", err)
				}
			}
			return bench.E14DporReduction(bench.DporConfig{Workers: workers})
		},
	}
	experiments["flight"] = func() ([]*bench.Table, error) {
		return flightlive.Run(flightlive.Config{
			SampleEvery: *flightSmpl,
			Window:      *flightWin,
		})
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e7", "e9", "e10", "e12", "e14"}

	var selected []string
	if *runList == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*runList, ",") {
			name = strings.ToLower(strings.TrimSpace(name))
			if _, ok := experiments[name]; !ok {
				return fmt.Errorf("unknown experiment %q (want e1,e2,e3,e4,e5,e7,e9,e10,e12,e14,flight)", name)
			}
			selected = append(selected, name)
		}
	}
	// -flight appends the live monitored run unless -run already named it.
	if *flightFlag && !slices.Contains(selected, "flight") {
		selected = append(selected, "flight")
	}

	for _, name := range selected {
		tables, err := experiments[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, t := range tables {
			switch *format {
			case "text":
				fmt.Fprintln(out, t.Text())
			case "markdown":
				fmt.Fprintln(out, t.Markdown())
			case "csv":
				fmt.Fprintln(out, t.CSV())
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 2 {
			return nil, fmt.Errorf("size %d too small", v)
		}
		out = append(out, v)
	}
	return out, nil
}
