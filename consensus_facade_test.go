package tradeoffs

import (
	"sync"
	"testing"
)

func TestConsensusFacade(t *testing.T) {
	c, err := NewConsensus(WithProcesses(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Processes() != 4 {
		t.Fatalf("Processes = %d", c.Processes())
	}

	h := c.Handle(0)
	if got := h.Decided(); got != 0 {
		t.Fatalf("premature decision %d", got)
	}
	got, err := h.Propose(99)
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("solo proposal decided %d", got)
	}
	if h.Decided() != 99 {
		t.Fatal("Decided not visible")
	}
	if h.ContentionRounds() != 0 {
		t.Fatal("phantom contention")
	}

	// Late proposers adopt.
	late, err := c.Handle(3).Propose(5)
	if err != nil {
		t.Fatal(err)
	}
	if late != 99 {
		t.Fatalf("late proposer got %d", late)
	}
}

func TestConsensusFacadeConcurrent(t *testing.T) {
	const n = 6
	c, err := NewConsensus(WithProcesses(n), WithLimit(512))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]int64, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			got, err := c.Handle(p).Propose(int64(p + 1))
			if err != nil {
				t.Errorf("p%d: %v", p, err)
				return
			}
			results[p] = got
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for p := 1; p < n; p++ {
		if results[p] != results[0] {
			t.Fatalf("agreement violated: %v", results)
		}
	}
}

func TestConsensusFacadeValidation(t *testing.T) {
	if _, err := NewConsensus(WithProcesses(0)); err == nil {
		t.Fatal("0 processes accepted")
	}
	c, err := NewConsensus(WithProcesses(2), WithStepCounting())
	if err != nil {
		t.Fatal(err)
	}
	h := c.Handle(0)
	if _, err := h.Propose(0); err == nil {
		t.Fatal("zero proposal accepted")
	}
	if _, err := h.Propose(7); err != nil {
		t.Fatal(err)
	}
	if h.Steps() == 0 {
		t.Fatal("step counting inactive")
	}
}
