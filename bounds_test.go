package tradeoffs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/obs/bounds"
)

// scrape fetches path from the full debug mux and returns the body.
func scrape(t *testing.T, o *Observability, path string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	o.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s: status %d", path, rec.Code)
	}
	return rec.Body.String()
}

// TestBoundConformanceAllFamilies drives every family (and every counter
// backend with certified bounds) under its intended regime and checks the
// live conformance verdict: bound series present for each armed object,
// zero unexplained exceedances, zero worst-case violations.
func TestBoundConformanceAllFamilies(t *testing.T) {
	o := NewObservability()
	const procs = 4

	drive := func(name string, f func(p int)) {
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				f(p)
			}(p)
		}
		wg.Wait()
	}

	// Max registers: Algorithm A and the CAS baseline.
	mrA, err := NewMaxRegister(WithProcesses(procs), WithObservability(o), WithName("mr-alga"))
	if err != nil {
		t.Fatal(err)
	}
	mrCAS, err := NewMaxRegister(WithProcesses(procs), WithObservability(o),
		WithMaxRegisterImpl(MaxRegisterCAS), WithName("mr-cas"))
	if err != nil {
		t.Fatal(err)
	}
	for _, mr := range []*MaxRegister{mrA, mrCAS} {
		drive("maxreg", func(p int) {
			h := mr.Handle(p)
			for i := 0; i < 100; i++ {
				if err := h.Write(int64(p*100 + i + 1)); err != nil {
					t.Error(err)
					return
				}
				h.Read()
			}
		})
	}

	// Counters: f-array, CAS, sharded, batched f-array. (AAC and the
	// snapshot-backed counter carry no certified step bounds; the
	// snapshot-backed one below checks that absence is harmless.)
	ctrF, err := NewCounter(WithProcesses(procs), WithObservability(o), WithName("ctr-farray"))
	if err != nil {
		t.Fatal(err)
	}
	ctrCAS, err := NewCounter(WithProcesses(procs), WithObservability(o),
		WithCounterImpl(CounterCAS), WithName("ctr-cas"))
	if err != nil {
		t.Fatal(err)
	}
	ctrSh, err := NewCounter(WithProcesses(procs), WithObservability(o),
		WithCounterImpl(CounterSharded), WithName("ctr-sharded"))
	if err != nil {
		t.Fatal(err)
	}
	ctrBatch, err := NewCounter(WithProcesses(procs), WithObservability(o),
		WithBatching(8), WithName("ctr-batched"))
	if err != nil {
		t.Fatal(err)
	}
	ctrSnap, err := NewCounter(WithProcesses(procs), WithObservability(o),
		WithCounterImpl(CounterSnapshot), WithLimit(10_000), WithName("ctr-snapbacked"))
	if err != nil {
		t.Fatal(err)
	}
	ctrAdaptive, err := NewCounter(WithProcesses(procs), WithObservability(o),
		WithAdaptiveBackend(func(BackendObservation) BackendChoice {
			return BackendChoice{Impl: CounterSharded}
		}), WithName("ctr-adaptive"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ctr := range []*Counter{ctrF, ctrCAS, ctrSh, ctrBatch, ctrSnap, ctrAdaptive} {
		drive("counter", func(p int) {
			h := ctr.Handle(p)
			for i := 0; i < 100; i++ {
				if err := h.Increment(); err != nil {
					t.Error(err)
					return
				}
				h.Read()
			}
		})
	}

	// Snapshots: the constant-scan f-array under contention; double
	// collect in its uncontended regime (its Scan bound is an
	// uncontended clause — contended retries are read-only, so driving
	// it concurrently would count legitimate retries as unexplained).
	snF, err := NewSnapshot(WithProcesses(procs), WithObservability(o),
		WithLimit(10_000), WithName("snap-farray"))
	if err != nil {
		t.Fatal(err)
	}
	drive("snapshot", func(p int) {
		h := snF.Handle(p)
		for i := 0; i < 100; i++ {
			if err := h.Update(int64(i)); err != nil {
				t.Error(err)
				return
			}
			h.Scan()
		}
	})
	snDC, err := NewSnapshot(WithProcesses(procs), WithObservability(o),
		WithSnapshotImpl(SnapshotDoubleCollect), WithName("snap-dc"))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < procs; p++ {
		h := snDC.Handle(p)
		for i := 0; i < 20; i++ {
			if err := h.Update(int64(i)); err != nil {
				t.Fatal(err)
			}
			h.Scan()
		}
	}

	// Consensus: one object, all processes proposing.
	cons, err := NewConsensus(WithProcesses(procs), WithObservability(o), WithName("cons"))
	if err != nil {
		t.Fatal(err)
	}
	drive("consensus", func(p int) {
		h := cons.Handle(p)
		if _, err := h.Propose(int64(p) + 1); err != nil {
			t.Error(err)
		}
	})

	text := scrape(t, o, "/metrics")

	// Every object with certified bounds must expose an instantiated
	// budget; the snapshot-backed counter has none and must expose none.
	for _, obj := range []string{
		"mr-alga", "mr-cas", "ctr-farray", "ctr-cas", "ctr-sharded",
		"ctr-batched", "ctr-adaptive", "snap-farray", "snap-dc", "cons",
	} {
		if !strings.Contains(text, `tradeoffs_bound_steps{object="`+obj+`"`) {
			t.Errorf("metrics lack an instantiated bound for %q", obj)
		}
	}
	if strings.Contains(text, `tradeoffs_bound_steps{object="ctr-snapbacked"`) {
		t.Error("snapshot-backed counter has no certified bounds yet exposes a budget")
	}

	// The conformance verdict: no unexplained exceedances, no worst-case
	// violations, anywhere.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "tradeoffs_bound_exceedances_total") &&
			strings.Contains(line, `cause="unexplained"`) && !strings.HasSuffix(line, " 0") {
			t.Errorf("unexplained exceedance: %s", line)
		}
		if strings.HasPrefix(line, "tradeoffs_bound_violations_total{") && !strings.HasSuffix(line, " 0") {
			t.Errorf("worst-case bound violation: %s", line)
		}
	}

	// And the human view agrees.
	table := scrape(t, o, "/debug/bounds")
	if !strings.Contains(table, "ctr-farray") || !strings.Contains(table, "violation exemplars: 0") {
		t.Errorf("/debug/bounds table incomplete:\n%s", table)
	}
}

// plantedTable returns a bounds/v1 table mis-declaring counter.FArray's
// Increment as a 1-step operation — impossible (the real bound is
// 8logn+2), so the very first increment must violate it.
func plantedTable() []byte {
	return []byte(`{
  "schema": "tradeoffs/bounds/v1",
  "rows": [
    {"file": "planted.go", "line": 1, "func": "counter.FArray.Increment",
     "family": "counter.FArray", "op": "Increment", "mode": "worst-case",
     "class": "steps", "declared": "1", "derived": "1", "ok": true}
  ]
}`)
}

// TestBoundPlantedViolationLatchesExemplar plants a mis-declared bound
// and checks the full violation path: the worst-case counter trips, one
// exemplar latches with the flight-recorder window attached, the
// artifact on disk re-checks as a genuine exceedance, and both debug
// surfaces report it.
func TestBoundPlantedViolationLatchesExemplar(t *testing.T) {
	dir := t.TempDir()
	o := NewObservability()
	f := NewFlightRecorder(FlightConfig{SampleEvery: 1, ArtifactDir: dir})

	ctr, err := NewCounter(WithProcesses(2), WithObservability(o), WithFlightRecorder(f),
		WithBoundTableJSON(plantedTable()), WithName("planted"))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	h := ctr.Handle(0)
	for i := 0; i < 10; i++ {
		if err := h.Increment(); err != nil {
			t.Fatal(err)
		}
	}
	f.Stop()

	exs := o.BoundExemplars()
	if len(exs) != 1 {
		t.Fatalf("latched %d exemplars, want exactly 1 (latch must fire once)", len(exs))
	}
	e := exs[0]
	if e.Object != "planted" || e.Op != "increment" || e.Bound != 1 {
		t.Fatalf("exemplar = %+v, want object planted, op increment, bound 1", e)
	}
	if err := e.Recheck(); err != nil {
		t.Fatalf("latched exemplar does not re-check: %v", err)
	}
	if e.Dump == nil || e.Dump.Name != "planted" {
		t.Fatalf("exemplar lacks the object's flight window: %+v", e.Dump)
	}

	// The on-disk artifact must be independently re-checkable.
	path := filepath.Join(dir, "planted-bound-violation.json")
	fh, err := os.Open(path)
	if err != nil {
		t.Fatalf("violation artifact not written: %v", err)
	}
	defer fh.Close()
	loaded, err := bounds.ReadExemplar(fh)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Recheck(); err != nil {
		t.Fatalf("artifact does not re-check as a genuine exceedance: %v", err)
	}
	if loaded.Observed <= loaded.Bound {
		t.Fatalf("artifact observed %d within bound %d", loaded.Observed, loaded.Bound)
	}

	// Both debug surfaces report the violation.
	if text := scrape(t, o, "/metrics"); !strings.Contains(text,
		`tradeoffs_bound_violations_total{object="planted",op="increment"} 1`) {
		t.Errorf("metrics lack the violation counter:\n%s", text)
	}
	if table := scrape(t, o, "/debug/bounds"); !strings.Contains(table, "violation exemplars: 1") {
		t.Errorf("/debug/bounds lacks the exemplar:\n%s", table)
	}
	var fromJSON []*bounds.Exemplar
	if err := json.Unmarshal([]byte(scrape(t, o, "/debug/bounds?exemplars=1")), &fromJSON); err != nil {
		t.Fatalf("?exemplars=1 is not valid JSON: %v", err)
	}
	if len(fromJSON) != 1 || fromJSON[0].Recheck() != nil {
		t.Fatalf("served exemplars do not re-check: %+v", fromJSON)
	}
}

// TestBoundTableJSONRejectsGarbage pins WithBoundTableJSON's error path:
// a bad table must fail construction, not silently disarm.
func TestBoundTableJSONRejectsGarbage(t *testing.T) {
	if _, err := NewCounter(WithBoundTableJSON([]byte(`{"schema":"nope"}`))); err == nil {
		t.Fatal("counter construction accepted a bad bound table")
	}
}

// TestBoundDebugIndexListsEndpoints checks the /debug index page links
// every mounted endpoint.
func TestBoundDebugIndexListsEndpoints(t *testing.T) {
	o := NewObservability()
	if _, err := NewCounter(WithObservability(o)); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/debug", "/debug/"} {
		page := scrape(t, o, path)
		for _, ep := range []string{"/metrics", "/debug/bounds", "/debug/history", "/debug/violations", "/debug/vars", "/debug/pprof/"} {
			if !strings.Contains(page, `href="`+ep+`"`) {
				t.Errorf("GET %s: index lacks a link to %s:\n%s", path, ep, page)
			}
		}
	}
}

// TestBoundScrapeRace hammers /metrics and /debug/bounds while four
// processes record bounded operations, under the race detector's eye:
// the margin histograms and exceedance counters must tolerate
// concurrent scrape-vs-record access.
func TestBoundScrapeRace(t *testing.T) {
	o := NewObservability()
	ctr, err := NewCounter(WithProcesses(4), WithObservability(o), WithName("raced"))
	if err != nil {
		t.Fatal(err)
	}

	var writers, scrapers sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		writers.Add(1)
		go func(p int) {
			defer writers.Done()
			h := ctr.Handle(p)
			for i := 0; i < 300; i++ {
				if err := h.Increment(); err != nil {
					t.Error(err)
					return
				}
				h.Read()
			}
		}(p)
	}
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := scrape(t, o, "/metrics")
				if !strings.Contains(body, "tradeoffs_bound_margin") {
					t.Error("mid-workload scrape lost the margin histogram")
					return
				}
				scrape(t, o, "/debug/bounds")
			}
		}()
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()

	// Post-race sanity: the recorded totals survived the concurrent scrapes.
	text := scrape(t, o, "/metrics")
	if !strings.Contains(text, `tradeoffs_op_steps_count{object="raced",op="increment"} 1200`) {
		t.Errorf("increment count wrong after concurrent scraping:\n%s", text)
	}
}
