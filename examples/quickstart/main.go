// Quickstart: the three object families in one file — a max register, a
// counter, and an atomic snapshot — each shared by a few goroutines through
// per-process handles.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	tradeoffs "github.com/restricteduse/tradeoffs"
)

const processes = 4

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A max register: Read is one shared-memory step (Algorithm A of the
	// paper), Write costs O(min(log N, log v)).
	reg, err := tradeoffs.NewMaxRegister(tradeoffs.WithProcesses(processes))
	if err != nil {
		return err
	}
	// A counter with O(1) reads and O(log N) increments.
	ctr, err := tradeoffs.NewCounter(tradeoffs.WithProcesses(processes))
	if err != nil {
		return err
	}
	// A snapshot with O(1) scans; restricted use, so declare a budget.
	snap, err := tradeoffs.NewSnapshot(
		tradeoffs.WithProcesses(processes),
		tradeoffs.WithLimit(10_000),
	)
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	for id := 0; id < processes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var (
				regH  = reg.Handle(id)
				ctrH  = ctr.Handle(id)
				snapH = snap.Handle(id)
			)
			for i := 1; i <= 100; i++ {
				if err := regH.Write(int64(id*1000 + i)); err != nil {
					log.Print(err)
					return
				}
				if err := ctrH.Increment(); err != nil {
					log.Print(err)
					return
				}
				if err := snapH.Update(int64(i)); err != nil {
					log.Print(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	h := 0
	fmt.Printf("max register: %d (expect 3100: the largest value written)\n", reg.Handle(h).Read())
	fmt.Printf("counter:      %d (expect 400: total increments)\n", ctr.Handle(h).Read())
	fmt.Printf("snapshot:     %v (expect [100 100 100 100])\n", snap.Handle(h).Scan())
	return nil
}
