package main

import (
	"net"
	"testing"
)

func TestWatermarkAllImplementations(t *testing.T) {
	for _, impl := range []string{"algorithm-a", "aac", "cas"} {
		if err := run(3, 200, impl, nil); err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
	}
}

func TestWatermarkRejectsUnknownImpl(t *testing.T) {
	if err := run(3, 10, "nope", nil); err == nil {
		t.Fatal("unknown impl accepted")
	}
}

// TestWatermarkServesMetrics runs with a live metrics listener; run itself
// verifies the /metrics endpoint with a self-scrape before shutdown.
func TestWatermarkServesMetrics(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := run(3, 500, "algorithm-a", lis); err != nil {
		t.Fatal(err)
	}
}
