package main

import "testing"

func TestWatermarkAllImplementations(t *testing.T) {
	for _, impl := range []string{"algorithm-a", "aac", "cas"} {
		if err := run(3, 200, impl); err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
	}
}

func TestWatermarkRejectsUnknownImpl(t *testing.T) {
	if err := run(3, 10, "nope"); err == nil {
		t.Fatal("unknown impl accepted")
	}
}
