// Watermark: commit-index tracking for a simulated replicated log.
//
// Each of R replica goroutines appends entries and publishes its durable
// offset into an atomic snapshot (one segment per replica). A committer
// repeatedly scans the snapshot, computes the quorum watermark — the offset
// durable on a majority — and publishes it through a max register (the
// watermark only advances, which is exactly the max-register abstraction).
// Many reader goroutines poll the commit index on their hot path.
//
// This is the workload the paper's Algorithm A is shaped for: the commit
// index is read by every request but advanced comparatively rarely, so the
// O(1)-read / O(log)-write side of the tradeoff is the right one. Run with
// -impl aac to feel the other side (reads pay O(log M)).
//
//	go run ./examples/watermark [-replicas 5] [-entries 2000] [-impl algorithm-a|aac|cas]
//
// With -listen the run also serves live Prometheus metrics (plus
// /debug/pprof and /debug/vars) for the commit-index max register and the
// durable-offset snapshot while replication is in progress; raise -entries
// to give yourself time to scrape:
//
//	go run ./examples/watermark -entries 2000000 -listen localhost:8080 &
//	curl -s localhost:8080/metrics | grep 'object="commit-index"'
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	tradeoffs "github.com/restricteduse/tradeoffs"
)

func main() {
	var (
		replicas = flag.Int("replicas", 5, "number of replicas (odd)")
		entries  = flag.Int("entries", 2000, "log entries appended per replica")
		implName = flag.String("impl", "algorithm-a", "max register implementation: algorithm-a, aac, or cas")
		listen   = flag.String("listen", "", "serve live /metrics on this address while the run is in progress")
	)
	flag.Parse()
	var lis net.Listener
	if *listen != "" {
		var err error
		lis, err = net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := run(*replicas, *entries, *implName, lis); err != nil {
		log.Fatal(err)
	}
}

func run(replicas, entries int, implName string, lis net.Listener) error {
	obsrv := tradeoffs.NewObservability()
	var impl tradeoffs.MaxRegisterImpl
	opts := []tradeoffs.Option{
		tradeoffs.WithProcesses(replicas + 2), // replicas + committer + reader pool share ids
		tradeoffs.WithStepCounting(),
		tradeoffs.WithObservability(obsrv),
		tradeoffs.WithName("commit-index"),
	}
	switch implName {
	case "algorithm-a":
		impl = tradeoffs.MaxRegisterAlgorithmA
	case "aac":
		impl = tradeoffs.MaxRegisterAAC
		opts = append(opts, tradeoffs.WithBound(int64(entries)+1))
	case "cas":
		impl = tradeoffs.MaxRegisterCAS
	default:
		return fmt.Errorf("unknown -impl %q", implName)
	}
	opts = append(opts, tradeoffs.WithMaxRegisterImpl(impl))

	commitIndex, err := tradeoffs.NewMaxRegister(opts...)
	if err != nil {
		return err
	}
	durable, err := tradeoffs.NewSnapshot(
		tradeoffs.WithProcesses(replicas),
		tradeoffs.WithLimit(int64(replicas*entries)+1),
		tradeoffs.WithObservability(obsrv),
		tradeoffs.WithName("durable-offsets"),
	)
	if err != nil {
		return err
	}

	if lis != nil {
		srv := &http.Server{Handler: obsrv.Handler()}
		go srv.Serve(lis) //nolint:errcheck // closed via srv.Close below
		defer srv.Close()
		log.Printf("serving live metrics on http://%s/metrics while replicating", lis.Addr())
	}

	// Hot-path reader bookkeeping also lives on the facade instead of raw
	// atomics: a monotone done flag is exactly a max register, and the read
	// tally is a CAS counter. Handles 0..readers-1 belong to the reader
	// goroutines; handle `readers` belongs to this coordinating goroutine.
	const readers = 4
	doneFlag, err := tradeoffs.NewMaxRegister(
		tradeoffs.WithProcesses(readers+1),
		tradeoffs.WithMaxRegisterImpl(tradeoffs.MaxRegisterCAS),
	)
	if err != nil {
		return err
	}
	readerReads, err := tradeoffs.NewCounter(
		tradeoffs.WithProcesses(readers+1),
		tradeoffs.WithCounterImpl(tradeoffs.CounterCAS),
	)
	if err != nil {
		return err
	}

	var wg sync.WaitGroup

	// Replicas: append entries, publish durable offsets.
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := durable.Handle(r)
			for off := 1; off <= entries; off++ {
				if err := h.Update(int64(off)); err != nil {
					log.Print(err)
					return
				}
			}
		}(r)
	}

	// Committer: quorum watermark = median durable offset; publish via the
	// max register (monotone by construction, so WriteMax is exactly right
	// even when scans race).
	committerH := commitIndex.Handle(replicas)
	scannerH := durable.Handle(0) // scans don't write; any handle works
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			offsets := scannerH.Scan()
			sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
			quorum := offsets[len(offsets)/2] // majority has at least this
			if err := committerH.Write(quorum); err != nil {
				log.Print(err)
				return
			}
			if quorum >= int64(entries) {
				return
			}
		}
	}()

	// Readers: hot-path commit-index reads until replication finishes.
	var readerWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func(i int) {
			defer readerWG.Done()
			h := commitIndex.Handle(replicas + 1)
			doneH := doneFlag.Handle(i)
			readsH := readerReads.Handle(i)
			prev := int64(-1)
			for doneH.Read() == 0 {
				idx := h.Read()
				if idx < prev {
					log.Printf("BUG: commit index regressed %d -> %d", prev, idx)
					return
				}
				prev = idx
				if err := readsH.Increment(); err != nil {
					log.Print(err)
					return
				}
			}
		}(i)
	}

	start := time.Now()
	wg.Wait()
	if err := doneFlag.Handle(readers).Write(1); err != nil {
		return err
	}
	readerWG.Wait()

	finalH := commitIndex.Handle(0)
	final := finalH.Read()
	readSteps := finalH.Steps() // the read above: per-op step count

	fmt.Printf("impl=%s replicas=%d entries=%d\n", implName, replicas, entries)
	fmt.Printf("final commit index: %d (expect %d)\n", final, entries)
	fmt.Printf("hot-path reads served while replicating: %d in %v\n", readerReads.Handle(readers).Read(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("shared-memory steps for one commit-index read: %d\n", readSteps)
	if final != int64(entries) {
		return fmt.Errorf("commit index stalled at %d", final)
	}

	// When serving metrics, prove the endpoint works end to end with one
	// self-scrape before the deferred shutdown.
	if lis != nil {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", lis.Addr()))
		if err != nil {
			return fmt.Errorf("self-scrape: %w", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("self-scrape: %w", err)
		}
		for _, want := range []string{
			`tradeoffs_op_steps_count{object="commit-index",op="read"}`,
			`tradeoffs_op_steps_count{object="durable-offsets",op="update"}`,
		} {
			if !strings.Contains(string(body), want) {
				return fmt.Errorf("self-scrape missing %q", want)
			}
		}
		fmt.Printf("metrics self-scrape ok (%d bytes of exposition)\n", len(body))
	}
	return nil
}
