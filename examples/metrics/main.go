// Metrics: high-frequency event counting with live readers — the intro
// motivation for restricted-use counters.
//
// Worker goroutines count processed requests and errors; a reporter polls
// the totals concurrently. The example runs the same workload over all
// three counter implementations with step counting on, printing the exact
// shared-memory cost per operation so the paper's tradeoff is visible in
// the output: the f-array counter reads in 1 step but pays ~8 log N per
// increment, the AAC counter pays log(limit) per read and log N * log(limit)
// per increment, and the CAS counter is cheap until contended (its step
// count is unbounded in theory; watch it move with -workers).
//
//	go run ./examples/metrics [-workers 8] [-requests 5000]
//
// With -listen the example becomes a live observability demo instead: the
// workload loops forever over two instrumented counters ("served", an
// f-array; "failed", a CAS loop) while an HTTP server exposes Prometheus
// metrics — steps-per-op histograms, CAS failure (contention) counters,
// and the per-register heatmap — plus /debug/pprof and /debug/vars:
//
//	go run ./examples/metrics -listen localhost:8080
//	curl -s localhost:8080/metrics | grep tradeoffs_
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os/signal"
	"sync"
	"syscall"

	tradeoffs "github.com/restricteduse/tradeoffs"
)

func main() {
	var (
		workers  = flag.Int("workers", 8, "worker goroutines")
		requests = flag.Int("requests", 5000, "requests per worker")
		listen   = flag.String("listen", "", "serve live /metrics on this address and loop the workload until interrupted")
	)
	flag.Parse()
	if *listen != "" {
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		if err := serve(ctx, lis, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*workers, *requests); err != nil {
		log.Fatal(err)
	}
}

// serve loops the request-counting workload over instrumented counters
// until ctx is cancelled, exposing live metrics on lis.
func serve(ctx context.Context, lis net.Listener, workers int) error {
	o := tradeoffs.NewObservability()
	base := []tradeoffs.Option{
		tradeoffs.WithProcesses(workers + 1),
		tradeoffs.WithObservability(o),
	}
	served, err := tradeoffs.NewCounter(append(base,
		tradeoffs.WithCounterImpl(tradeoffs.CounterFArray),
		tradeoffs.WithName("served"))...)
	if err != nil {
		return err
	}
	failed, err := tradeoffs.NewCounter(append(base,
		tradeoffs.WithCounterImpl(tradeoffs.CounterCAS),
		tradeoffs.WithName("failed"))...)
	if err != nil {
		return err
	}

	srv := &http.Server{Handler: o.Handler()}
	go srv.Serve(lis) //nolint:errcheck // closed via srv.Close below
	defer srv.Close()
	log.Printf("serving live metrics on http://%s/metrics (pprof on /debug/pprof)", lis.Addr())

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			servedH := served.Handle(w)
			failedH := failed.Handle(w)
			rng := rand.New(rand.NewSource(int64(w)))
			for ctx.Err() == nil {
				if err := servedH.Increment(); err != nil {
					log.Print(err)
					return
				}
				if rng.Intn(50) == 0 { // 2% error rate
					if err := failedH.Increment(); err != nil {
						log.Print(err)
						return
					}
				}
			}
		}(w)
	}

	// Dashboard reader: hot-path reads, also instrumented.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := served.Handle(workers)
		for ctx.Err() == nil {
			h.Read()
		}
	}()

	<-ctx.Done()
	wg.Wait()
	return nil
}

func run(workers, requests int) error {
	impls := []struct {
		name string
		opts []tradeoffs.Option
	}{
		{name: "farray (O(1) read)", opts: []tradeoffs.Option{
			tradeoffs.WithCounterImpl(tradeoffs.CounterFArray),
		}},
		{name: "aac (read/write only)", opts: []tradeoffs.Option{
			tradeoffs.WithCounterImpl(tradeoffs.CounterAAC),
			tradeoffs.WithLimit(int64(workers*requests) + 1),
		}},
		{name: "cas (lock-free)", opts: []tradeoffs.Option{
			tradeoffs.WithCounterImpl(tradeoffs.CounterCAS),
		}},
	}

	for _, impl := range impls {
		if err := runImpl(impl.name, impl.opts, workers, requests); err != nil {
			return fmt.Errorf("%s: %w", impl.name, err)
		}
	}
	return nil
}

func runImpl(name string, opts []tradeoffs.Option, workers, requests int) error {
	base := append([]tradeoffs.Option{
		tradeoffs.WithProcesses(workers + 1),
		tradeoffs.WithStepCounting(),
	}, opts...)

	served, err := tradeoffs.NewCounter(base...)
	if err != nil {
		return err
	}
	failed, err := tradeoffs.NewCounter(base...)
	if err != nil {
		return err
	}

	// Bookkeeping totals (steps spent, increments landed, errors injected)
	// also live on the facade: CAS counters are the eat-your-own-dogfood
	// replacement for the raw atomics an example would otherwise reach for.
	bookOpts := []tradeoffs.Option{
		tradeoffs.WithProcesses(workers + 1),
		tradeoffs.WithCounterImpl(tradeoffs.CounterCAS),
	}
	incSteps, err := tradeoffs.NewCounter(bookOpts...)
	if err != nil {
		return err
	}
	incs, err := tradeoffs.NewCounter(bookOpts...)
	if err != nil {
		return err
	}
	wantErrors, err := tradeoffs.NewCounter(bookOpts...)
	if err != nil {
		return err
	}

	var (
		wg          sync.WaitGroup
		stopReports = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			servedH := served.Handle(w)
			failedH := failed.Handle(w)
			incStepsH := incSteps.Handle(w)
			incsH := incs.Handle(w)
			wantErrorsH := wantErrors.Handle(w)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < requests; i++ {
				// "Process" the request.
				if err := servedH.Increment(); err != nil {
					log.Print(err)
					return
				}
				if rng.Intn(50) == 0 { // 2% error rate
					if err := wantErrorsH.Increment(); err != nil {
						log.Print(err)
						return
					}
					if err := failedH.Increment(); err != nil {
						log.Print(err)
						return
					}
				}
			}
			if err := incsH.Add(int64(requests)); err != nil {
				log.Print(err)
				return
			}
			if err := incStepsH.Add(servedH.Steps()); err != nil {
				log.Print(err)
			}
		}(w)
	}

	// Reporter: concurrent dashboard reads.
	reporterDone := make(chan int64, 1)
	go func() {
		h := served.Handle(workers)
		reads := int64(0)
		for {
			select {
			case <-stopReports:
				reporterDone <- reads
				return
			default:
			}
			h.Read()
			reads++
		}
	}()

	wg.Wait()
	close(stopReports)
	reporterReads := <-reporterDone

	readerH := served.Handle(0)
	total := readerH.Read()
	readCost := readerH.Steps() // steps of that single read

	wantErrs := wantErrors.Handle(workers).Read()
	fmt.Printf("%-24s served=%-7d errors=%-5d (expected %d/%d)\n",
		name, total, failed.Handle(0).Read(), workers*requests, wantErrs)
	fmt.Printf("%-24s avg steps/increment=%.1f  steps/read=%d  dashboard reads=%d\n\n",
		"", float64(incSteps.Handle(workers).Read())/float64(incs.Handle(workers).Read()), readCost, reporterReads)

	if total != int64(workers*requests) {
		return fmt.Errorf("lost increments: %d != %d", total, workers*requests)
	}
	if failed.Handle(0).Read() != wantErrs {
		return fmt.Errorf("lost error increments")
	}
	return nil
}
