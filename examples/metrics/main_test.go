package main

import "testing"

func TestMetricsRuns(t *testing.T) {
	if err := run(3, 300); err != nil {
		t.Fatal(err)
	}
}
