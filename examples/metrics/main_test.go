package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestMetricsRuns(t *testing.T) {
	if err := run(3, 300); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsServeLive scrapes the live /metrics endpoint twice while the
// workload runs and checks that the steps-per-op histograms and the CAS
// failure counters are present and advancing.
func TestMetricsServeLive(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() { done <- serve(ctx, lis, 4) }()

	url := fmt.Sprintf("http://%s/metrics", lis.Addr())
	scrape := func() string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	incCount := regexp.MustCompile(`tradeoffs_op_steps_count\{object="served",op="increment"\} (\d+)`)
	casFail := regexp.MustCompile(`tradeoffs_cas_failures_total\{object="(?:served|failed)"\} (\d+)`)

	read := func(re *regexp.Regexp, text string) int64 {
		t.Helper()
		total := int64(0)
		matched := false
		for _, m := range re.FindAllStringSubmatch(text, -1) {
			v, err := strconv.ParseInt(m[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			total += v
			matched = true
		}
		if !matched {
			t.Fatalf("no match for %v in:\n%s", re, text)
		}
		return total
	}

	// Wait for the first non-trivial sample, then require growth.
	deadline := time.Now().Add(30 * time.Second)
	var first string
	for {
		first = scrape()
		if incCount.MatchString(first) && read(incCount, first) > 0 && read(casFail, first) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never became non-trivial:\n%s", first)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		"tradeoffs_op_steps_bucket",
		"tradeoffs_op_latency_seconds_bucket",
		"tradeoffs_primitive_ops_total",
		"tradeoffs_register_accesses_total",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("scrape missing %q:\n%s", want, first)
		}
	}

	firstInc, firstFail := read(incCount, first), read(casFail, first)
	for {
		second := scrape()
		if read(incCount, second) > firstInc && read(casFail, second) > firstFail {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("metrics did not advance while workload was running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestMetricsDebugEndpoints checks the pprof and expvar endpoints respond.
func TestMetricsDebugEndpoints(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- serve(ctx, lis, 2) }()

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", lis.Addr(), path))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
