package main

import "testing"

func TestLowerboundExampleRuns(t *testing.T) {
	if err := run(16, 128); err != nil {
		t.Fatal(err)
	}
}
