// Lowerbound: watch the paper's adversaries at work.
//
// This example runs the two lower-bound constructions of Hendler & Khait
// (PODC 2014) against real implementations and prints their traces:
//
//   - The Theorem 1 adversary schedules N-1 CounterIncrement operations in
//     Lemma 1 rounds (invisible events first, then writes, then CASes),
//     which keeps every object's familiarity set growing at most 3x per
//     round — so finishing all increments takes at least log3((N-1)/f(N))
//     rounds, however clever the implementation.
//   - The Theorem 3 adversary maintains a hidden "essential set" of
//     processes stuck inside a single WriteMax, erasing and halting
//     processes so that no information ever links the survivors (Figures
//     1-3 of the paper).
//
// Unlike the paper, the constructions here execute: every proof invariant
// (hidden, supreme, 3^j familiarity ceiling, Lemma 2 indistinguishability
// after erasure) is re-checked at runtime and would abort the run if an
// implementation leaked information faster than the model allows.
//
//	go run ./examples/lowerbound [-n 64] [-k 512]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/restricteduse/tradeoffs/internal/adversary"
	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

func main() {
	var (
		n = flag.Int("n", 64, "processes for the counter construction")
		k = flag.Int("k", 512, "K = min(M,N) for the max register construction")
	)
	flag.Parse()
	if err := run(*n, *k); err != nil {
		log.Fatal(err)
	}
}

func run(n, k int) error {
	fmt.Printf("=== Theorem 1 adversary: counters, N = %d ===\n\n", n)
	counters := []struct {
		name    string
		factory adversary.CounterFactory
	}{
		{name: "f-array counter (O(1) read)", factory: func(pool *primitive.Pool, n int) (counter.Counter, error) {
			return counter.NewFArray(pool, n)
		}},
		{name: "AAC counter (read/write only)", factory: func(pool *primitive.Pool, n int) (counter.Counter, error) {
			return counter.NewAAC(pool, n, int64(n))
		}},
		{name: "single-word CAS counter (not wait-free)", factory: func(pool *primitive.Pool, n int) (counter.Counter, error) {
			return counter.NewCAS(pool, 0)
		}},
	}
	for _, c := range counters {
		res, err := adversary.RunCounterConstruction(c.factory, n, 1_000_000)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Printf("%s\n", c.name)
		fmt.Printf("  read steps f(N)      : %d\n", res.ReadSteps)
		fmt.Printf("  forced rounds        : %d   (Theorem 1 floor: %d)\n", res.Rounds, res.TheoremBound)
		fmt.Printf("  reader awareness     : %d/%d processes (Lemma 3 demands all)\n", res.ReaderAwareness, n)
		growth := res.MaxFamiliarityPerRound
		if len(growth) > 8 {
			growth = growth[:8]
		}
		fmt.Printf("  familiarity growth   : %v... (ceiling 3^j)\n\n", growth)
	}

	fmt.Printf("=== Theorem 3 adversary: max registers, K = %d ===\n\n", k)
	maxRegs := []struct {
		name    string
		factory adversary.MaxRegFactory
		maxIter int
	}{
		{name: "Algorithm A (O(1) read)", factory: func(pool *primitive.Pool, k int) (maxreg.MaxRegister, error) {
			return core.New(pool, k, int64(k))
		}, maxIter: 200},
		{name: "AAC max register (O(log K) read)", factory: func(pool *primitive.Pool, k int) (maxreg.MaxRegister, error) {
			return maxreg.NewAAC(pool, int64(k))
		}, maxIter: 200},
		{name: "single-word CAS register (not wait-free)", factory: func(pool *primitive.Pool, k int) (maxreg.MaxRegister, error) {
			return maxreg.NewCASRegister(pool, int64(k))
		}, maxIter: 24},
	}
	for _, m := range maxRegs {
		res, err := adversary.RunMaxRegConstruction(m.factory, k, 0, m.maxIter)
		if err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		fmt.Printf("%s\n", m.name)
		fmt.Printf("  measured f(K)        : %d\n", res.FK)
		fmt.Printf("  forced steps i*      : %d inside one WriteMax, for %d processes\n", res.IStar, len(res.FinalEssential))
		fmt.Printf("  stop reason          : %s; halted %d, theorem floor %d\n", res.StopReason, res.HaltedCount, res.TheoremBound)
		fmt.Printf("  iteration trace      :\n")
		for _, it := range res.Iterations {
			fmt.Printf("    i=%-3d case=%-22s |E_i|=%-5d erased=%-5d halted=%v\n",
				it.Index, it.Case, it.EssentialSize, it.Erased, it.Halted)
		}
		fmt.Println()
	}
	return nil
}
