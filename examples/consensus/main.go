// Consensus: epoch-based configuration agreement from shared registers,
// with a max register on the hot path.
//
// N proposers repeatedly agree on "cluster configurations", one consensus
// instance per epoch. Agreement itself uses the repository's
// obstruction-free consensus (rounds of commit-adopt built from read/write
// registers — the application domain the paper cites for restricted-use
// objects). The *committed-epoch watermark* is the read-dominated side:
// every client request must learn the latest committed epoch, so it lives
// in a max register and Algorithm A serves it in one shared-memory step
// per read.
//
// The example drives E epochs with P contending proposers, verifies
// agreement and validity per epoch, and prints who won what.
//
//	go run ./examples/consensus [-proposers 4] [-epochs 12]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	tradeoffs "github.com/restricteduse/tradeoffs"
	"github.com/restricteduse/tradeoffs/internal/consensus"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

func main() {
	var (
		proposers = flag.Int("proposers", 4, "contending proposers")
		epochs    = flag.Int("epochs", 12, "epochs to commit")
	)
	flag.Parse()
	if err := run(*proposers, *epochs); err != nil {
		log.Fatal(err)
	}
}

func run(proposers, epochs int) error {
	committed, err := tradeoffs.NewMaxRegister(
		tradeoffs.WithProcesses(proposers),
		tradeoffs.WithStepCounting(),
	)
	if err != nil {
		return err
	}

	// One consensus instance per epoch, all from one cache-line padded
	// arena: epoch slots are hit by every proposer concurrently.
	pool := primitive.NewPadded()
	slots := make([]*consensus.Consensus, epochs+1)
	for e := 1; e <= epochs; e++ {
		c, err := consensus.NewConsensus(pool, proposers, 64)
		if err != nil {
			return err
		}
		slots[e] = c
	}

	// decided[e][p] = value proposer p observed for epoch e (0 = did not
	// participate).
	decided := make([][]int64, epochs+1)
	for e := range decided {
		decided[e] = make([]int64, proposers)
	}

	var wg sync.WaitGroup
	for p := 0; p < proposers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			watermark := committed.Handle(p)
			ctx := primitive.NewDirect(p)
			rng := rand.New(rand.NewSource(int64(p + 1)))

			for {
				// Hot path: learn the latest committed epoch in O(1).
				next := watermark.Read() + 1
				if next > int64(epochs) {
					return
				}
				// Propose a configuration (proposer id + config id, so
				// winners are identifiable).
				proposal := int64(p+1)*1_000_000 + rng.Int63n(1000) + 1
				got, err := slots[next].Propose(ctx, proposal)
				if errors.Is(err, consensus.ErrRoundsExhausted) {
					// Extreme contention: back off and retry the epoch.
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
					continue
				}
				if err != nil {
					log.Print(err)
					return
				}
				decided[next][p] = got

				// Advance the watermark; WriteMax keeps it monotone even
				// when proposers race across epochs.
				if err := watermark.Write(next); err != nil {
					log.Print(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	// Agreement check: every proposer that participated in an epoch saw
	// the same decision.
	wins := make([]int, proposers+1)
	readerCtx := primitive.NewDirect(0)
	for e := 1; e <= epochs; e++ {
		winner := slots[e].Decided(readerCtx)
		if winner == 0 {
			return fmt.Errorf("epoch %d never decided", e)
		}
		for p := 0; p < proposers; p++ {
			if v := decided[e][p]; v != 0 && v != winner {
				return fmt.Errorf("AGREEMENT VIOLATION at epoch %d: p%d saw %d, decided %d", e, p, v, winner)
			}
		}
		wins[winner/1_000_000]++
		fmt.Printf("epoch %2d: config %d committed (proposer %d, %d rounds of contention)\n",
			e, winner%1_000_000, winner/1_000_000, slots[e].HighRound(readerCtx))
	}

	h := committed.Handle(0)
	final := h.Read()
	fmt.Printf("\ncommitted epoch watermark: %d (read in %d shared-memory step)\n", final, h.Steps())
	for p := 1; p <= proposers; p++ {
		fmt.Printf("proposer %d won %d epochs\n", p, wins[p])
	}
	if final != int64(epochs) {
		return fmt.Errorf("watermark stalled at %d", final)
	}
	return nil
}
