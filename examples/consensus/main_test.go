package main

import "testing"

func TestConsensusExampleRuns(t *testing.T) {
	if err := run(3, 5); err != nil {
		t.Fatal(err)
	}
}
