package tradeoffs

import (
	"errors"
	"fmt"
	"net/http"
	"sync"

	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/obs/bounds"
	"github.com/restricteduse/tradeoffs/internal/obs/expo"
	"github.com/restricteduse/tradeoffs/internal/obs/flight"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Observability is a live metrics registry shared by any number of
// objects. Construct one per application, pass it to constructors with
// WithObservability, and serve Handler (or just MetricsHandler) to watch
// the workload run:
//
//	o := tradeoffs.NewObservability()
//	ctr, _ := tradeoffs.NewCounter(
//		tradeoffs.WithObservability(o),
//		tradeoffs.WithName("served"),
//	)
//	go http.ListenAndServe("localhost:8080", o.Handler())
//
// Instrumented objects record, per object: shared-memory events by
// primitive, CAS failures (contention), log2 histograms of steps-per-op
// and latency per operation, and a per-register access heatmap. Recording
// is sharded per process id and merged at scrape time, so the hot path
// pays only uncontended atomic adds. See docs/observability.md.
type Observability struct {
	mu       sync.Mutex
	order    []string
	byName   map[string]*obs.Collector
	families map[string]string // name -> object family, for per-family aggregation
	nextIdx  map[string]int

	// flight is set when an object is constructed with both
	// WithObservability and WithFlightRecorder: the registry's handlers
	// then also serve the recorder's metrics and debug endpoints.
	flight *FlightRecorder

	// exemplars holds the latched worst-case bound-violation exemplars,
	// at most one per (object, op) — the obs layer latches before the
	// capture callback runs — and capped like flight violations.
	exemplars []*bounds.Exemplar
}

// NewObservability returns an empty registry.
func NewObservability() *Observability {
	return &Observability{
		byName:   make(map[string]*obs.Collector),
		families: make(map[string]string),
		nextIdx:  make(map[string]int),
	}
}

// register creates the collector for one newly constructed object. An
// empty name is auto-assigned family#k in construction order, skipping
// names already taken via WithName (the same rule FlightRecorder.tap
// follows, so an unnamed object never fails construction); the resolved
// name is returned so a flight recorder attached to the same object
// labels its tap identically.
func (o *Observability) register(family, name string, processes int, pool *primitive.Pool) (*obs.Collector, string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if name == "" {
		for {
			name = fmt.Sprintf("%s#%d", family, o.nextIdx[family])
			o.nextIdx[family]++
			if _, taken := o.byName[name]; !taken {
				break
			}
		}
	}
	if _, dup := o.byName[name]; dup {
		return nil, "", fmt.Errorf("tradeoffs: observability object name %q already in use", name)
	}
	col := obs.NewCollector(processes, pool)
	o.byName[name] = col
	o.families[name] = family
	o.order = append(o.order, name)
	return col, name, nil
}

// familyUsage aggregates the live evidence for one object family across
// every collector registered so far: total CAS traffic and per-operation
// counts. It is the raw material WithAdaptiveBackend's policy sees.
func (o *Observability) familyUsage(family string) (casAttempts, casFailures, reads, updates int64) {
	o.mu.Lock()
	cols := make([]*obs.Collector, 0, len(o.order))
	for _, n := range o.order {
		if o.families[n] == family {
			cols = append(cols, o.byName[n])
		}
	}
	o.mu.Unlock()

	for _, col := range cols {
		st := col.Snapshot()
		casAttempts += st.CASAttempts
		casFailures += st.CASFailures
		for _, op := range st.Ops {
			switch op.Name {
			case "read", "scan":
				reads += op.Steps.Count
			default:
				updates += op.Steps.Count
			}
		}
	}
	return casAttempts, casFailures, reads, updates
}

// unregister rolls back a registration whose object could not finish
// construction (its flight tap failed), so the name is reusable and
// gather stops exposing the dead collector. When the rolled-back name was
// the most recently auto-assigned family#k, the index is reclaimed too —
// otherwise auto-names would gap (counter#0 freed but the next object
// named counter#1) and the two registries' numbering would drift apart.
func (o *Observability) unregister(family, name string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.byName, name)
	delete(o.families, name)
	if idx := o.nextIdx[family]; idx > 0 && name == fmt.Sprintf("%s#%d", family, idx-1) {
		o.nextIdx[family] = idx - 1
	}
	for i, n := range o.order {
		if n == name {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
}

// attachFlight links the registry to a flight recorder so Handler and
// MetricsHandler cover it. One recorder per registry.
func (o *Observability) attachFlight(f *FlightRecorder) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.flight != nil && o.flight != f {
		return errors.New("tradeoffs: observability is already linked to a different flight recorder")
	}
	o.flight = f
	return nil
}

// flightRec returns the linked recorder's engine, or nil. Evaluated at
// scrape time so objects constructed after Handler() still show up.
func (o *Observability) flightRec() *flight.Recorder {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.flight == nil {
		return nil
	}
	return o.flight.rec
}

// flightStats snapshots the linked recorder, or nil without one.
func (o *Observability) flightStats() *flight.Stats {
	rec := o.flightRec()
	if rec == nil {
		return nil
	}
	st := rec.Stats()
	return &st
}

// addBoundExemplar records a latched bound-violation exemplar, capped at
// 64 like the flight recorder's violation list.
func (o *Observability) addBoundExemplar(e *bounds.Exemplar) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.exemplars) < 64 {
		o.exemplars = append(o.exemplars, e)
	}
}

// BoundExemplars returns the latched worst-case bound-violation
// exemplars, in capture order. Each is self-contained: Recheck on the
// dump re-derives the instantiated bound and confirms the exceedance.
func (o *Observability) BoundExemplars() []*bounds.Exemplar {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*bounds.Exemplar(nil), o.exemplars...)
}

// gather snapshots every registered object, in registration order.
func (o *Observability) gather() []obs.NamedStats {
	o.mu.Lock()
	names := append([]string(nil), o.order...)
	cols := make([]*obs.Collector, len(names))
	for i, n := range names {
		cols[i] = o.byName[n]
	}
	o.mu.Unlock()

	out := make([]obs.NamedStats, len(names))
	for i := range names {
		out[i] = obs.NamedStats{Object: names[i], Stats: cols[i].Snapshot()}
	}
	return out
}

// MetricsHandler returns the Prometheus-text-format /metrics handler for
// every object registered so far (and later). When a flight recorder is
// linked (WithFlightRecorder alongside WithObservability), the
// exposition includes its tradeoffs_flight_* series.
func (o *Observability) MetricsHandler() http.Handler {
	return expo.HandlerWith(o.gather, o.flightStats)
}

// Handler returns a mux serving a /debug index, /metrics, the
// step-bound conformance view /debug/bounds, plus the standard Go debug
// endpoints /debug/vars (expvar) and /debug/pprof. With a linked flight
// recorder it also serves /debug/history (the recorder's current
// per-object windows as history-dump JSON) and /debug/violations.
func (o *Observability) Handler() http.Handler {
	return expo.DebugMuxWith(o.gather, o.flightRec, o.BoundExemplars)
}

// WithObservability instruments the constructed object into o: its handles
// record into a per-object collector visible through o's handlers. Combine
// with WithName to control the metrics' object label.
func WithObservability(o *Observability) Option {
	return optionFunc(func(c *config) { c.obs = o })
}

// WithName sets the object's name in observability output (default:
// family#index in construction order). Names must be unique within an
// Observability.
func WithName(name string) Option {
	return optionFunc(func(c *config) { c.name = name })
}
