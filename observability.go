package tradeoffs

import (
	"fmt"
	"net/http"
	"sync"

	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/obs/expo"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Observability is a live metrics registry shared by any number of
// objects. Construct one per application, pass it to constructors with
// WithObservability, and serve Handler (or just MetricsHandler) to watch
// the workload run:
//
//	o := tradeoffs.NewObservability()
//	ctr, _ := tradeoffs.NewCounter(
//		tradeoffs.WithObservability(o),
//		tradeoffs.WithName("served"),
//	)
//	go http.ListenAndServe("localhost:8080", o.Handler())
//
// Instrumented objects record, per object: shared-memory events by
// primitive, CAS failures (contention), log2 histograms of steps-per-op
// and latency per operation, and a per-register access heatmap. Recording
// is sharded per process id and merged at scrape time, so the hot path
// pays only uncontended atomic adds. See docs/observability.md.
type Observability struct {
	mu      sync.Mutex
	order   []string
	byName  map[string]*obs.Collector
	nextIdx map[string]int
}

// NewObservability returns an empty registry.
func NewObservability() *Observability {
	return &Observability{
		byName:  make(map[string]*obs.Collector),
		nextIdx: make(map[string]int),
	}
}

// register creates the collector for one newly constructed object. An
// empty name is auto-assigned family#k in construction order.
func (o *Observability) register(family, name string, processes int, pool *primitive.Pool) (*obs.Collector, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("%s#%d", family, o.nextIdx[family])
		o.nextIdx[family]++
	}
	if _, dup := o.byName[name]; dup {
		return nil, fmt.Errorf("tradeoffs: observability object name %q already in use", name)
	}
	col := obs.NewCollector(processes, pool)
	o.byName[name] = col
	o.order = append(o.order, name)
	return col, nil
}

// gather snapshots every registered object, in registration order.
func (o *Observability) gather() []obs.NamedStats {
	o.mu.Lock()
	names := append([]string(nil), o.order...)
	cols := make([]*obs.Collector, len(names))
	for i, n := range names {
		cols[i] = o.byName[n]
	}
	o.mu.Unlock()

	out := make([]obs.NamedStats, len(names))
	for i := range names {
		out[i] = obs.NamedStats{Object: names[i], Stats: cols[i].Snapshot()}
	}
	return out
}

// MetricsHandler returns the Prometheus-text-format /metrics handler for
// every object registered so far (and later).
func (o *Observability) MetricsHandler() http.Handler {
	return expo.Handler(o.gather)
}

// Handler returns a mux serving /metrics plus the standard Go debug
// endpoints /debug/vars (expvar) and /debug/pprof.
func (o *Observability) Handler() http.Handler {
	return expo.DebugMux(o.gather)
}

// WithObservability instruments the constructed object into o: its handles
// record into a per-object collector visible through o's handlers. Combine
// with WithName to control the metrics' object label.
func WithObservability(o *Observability) Option {
	return optionFunc(func(c *config) { c.obs = o })
}

// WithName sets the object's name in observability output (default:
// family#index in construction order). Names must be unique within an
// Observability.
func WithName(name string) Option {
	return optionFunc(func(c *config) { c.name = name })
}
