// Package tradeoffs is a Go library of restricted-use concurrent objects —
// max registers, counters, and single-writer atomic snapshots — reproducing
// "Complexity Tradeoffs for Read and Update Operations" (Hendler & Khait,
// PODC 2014).
//
// The package exposes each object family behind a single constructor with
// an implementation selector, so applications can pick their side of the
// paper's read/update tradeoff:
//
//	reg, err := tradeoffs.NewMaxRegister(
//		tradeoffs.WithProcesses(8),
//		tradeoffs.WithMaxRegisterImpl(tradeoffs.MaxRegisterAlgorithmA),
//	)
//	h := reg.Handle(0)        // process 0's handle (one goroutine at a time)
//	_ = h.Write(42)
//	cur := h.Read()           // 42, in one shared-memory step
//
// Every object is linearizable and (except the CAS-loop variants, which are
// only lock-free) wait-free. Handles are per-process capabilities: process
// ids run from 0 to Processes-1, and a given id must be used by at most one
// goroutine at a time. Handles optionally count shared-memory steps
// (WithStepCounting), which is how the repository's experiments measure the
// paper's complexity claims — see EXPERIMENTS.md.
package tradeoffs

import (
	"errors"
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// MaxRegisterImpl selects a max register implementation.
type MaxRegisterImpl int

// Max register implementations.
const (
	// MaxRegisterAlgorithmA is the paper's Algorithm A: O(1) Read,
	// O(min(log N, log v)) wait-free Write from read/write/CAS.
	MaxRegisterAlgorithmA MaxRegisterImpl = iota + 1

	// MaxRegisterAAC is the Aspnes-Attiya-Censor construction from
	// read/write only: O(log M) Read and Write. Requires a bound.
	MaxRegisterAAC

	// MaxRegisterCAS is a single-word CAS loop: O(1) Read, lock-free (not
	// wait-free) Write.
	MaxRegisterCAS

	// MaxRegisterUnboundedAAC is the unbounded read/write-only register:
	// O(log v) Write and O(log V) Read (V = current maximum), with the
	// switch tree materialized lazily as values grow.
	MaxRegisterUnboundedAAC
)

// CounterImpl selects a counter implementation.
type CounterImpl int

// Counter implementations.
const (
	// CounterFArray is the constant-read counter: O(1) Read, O(log N)
	// wait-free Increment (Jayanti-style f-array over CAS).
	CounterFArray CounterImpl = iota + 1

	// CounterAAC is the Aspnes-Attiya-Censor read/write counter:
	// O(log limit) Read, O(log N * log limit) Increment. Requires a
	// limit (restricted use).
	CounterAAC

	// CounterCAS is a single-word CAS loop: O(1) Read, lock-free (not
	// wait-free) Increment.
	CounterCAS

	// CounterSnapshot is Corollary 1's reduction over the constant-scan
	// snapshot: O(1) Read, O(log N) Increment. Requires a limit.
	CounterSnapshot
)

// SnapshotImpl selects a snapshot implementation.
type SnapshotImpl int

// Snapshot implementations.
const (
	// SnapshotFArray is the constant-scan snapshot: O(1) Scan, O(log N)
	// wait-free Update. Requires a limit (restricted use).
	SnapshotFArray SnapshotImpl = iota + 1

	// SnapshotAfek is the classic wait-free snapshot from read/write:
	// O(N^2) Scan and Update. Requires a limit.
	SnapshotAfek

	// SnapshotDoubleCollect is the textbook obstruction-free snapshot:
	// O(1) Update, Scan unbounded under contention.
	SnapshotDoubleCollect
)

// config collects the options shared by all constructors.
type config struct {
	processes int
	bound     int64
	limit     int64
	counting  bool
	obs       *Observability
	name      string

	maxRegImpl   MaxRegisterImpl
	counterImpl  CounterImpl
	snapshotImpl SnapshotImpl
}

// Option configures a constructor.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithProcesses sets the number of processes sharing the object (default 8).
// Process ids for Handle run in [0, n).
func WithProcesses(n int) Option {
	return optionFunc(func(c *config) { c.processes = n })
}

// WithBound makes a max register M-bounded: Write accepts values in
// [0, bound). MaxRegisterAAC requires it; for Algorithm A a bound <= N also
// shrinks the structure.
func WithBound(bound int64) Option {
	return optionFunc(func(c *config) { c.bound = bound })
}

// WithLimit declares the restricted-use budget: the maximum number of
// Increment (counters) or Update (snapshots) operations. Implementations
// marked "requires a limit" reject configurations without one.
func WithLimit(limit int64) Option {
	return optionFunc(func(c *config) { c.limit = limit })
}

// WithStepCounting makes every handle count its shared-memory events,
// readable via Handle.Steps.
func WithStepCounting() Option {
	return optionFunc(func(c *config) { c.counting = true })
}

// WithMaxRegisterImpl selects the max register implementation (default
// MaxRegisterAlgorithmA).
func WithMaxRegisterImpl(impl MaxRegisterImpl) Option {
	return optionFunc(func(c *config) { c.maxRegImpl = impl })
}

// WithCounterImpl selects the counter implementation (default
// CounterFArray).
func WithCounterImpl(impl CounterImpl) Option {
	return optionFunc(func(c *config) { c.counterImpl = impl })
}

// WithSnapshotImpl selects the snapshot implementation (default
// SnapshotFArray).
func WithSnapshotImpl(impl SnapshotImpl) Option {
	return optionFunc(func(c *config) { c.snapshotImpl = impl })
}

// ErrLimitRequired is returned when a restricted-use implementation is
// selected without WithLimit.
var ErrLimitRequired = errors.New("tradeoffs: implementation requires WithLimit")

// ErrBoundRequired is returned when MaxRegisterAAC is selected without
// WithBound.
var ErrBoundRequired = errors.New("tradeoffs: implementation requires WithBound")

func buildConfig(opts []Option) config {
	c := config{
		processes:    8,
		maxRegImpl:   MaxRegisterAlgorithmA,
		counterImpl:  CounterFArray,
		snapshotImpl: SnapshotFArray,
	}
	for _, o := range opts {
		o.apply(&c)
	}
	return c
}

// registerObs attaches a freshly built object's pool to its Observability
// registry (if any), returning the object's collector or nil.
func registerObs(c config, family string, pool *primitive.Pool) (*obs.Collector, error) {
	if c.obs == nil {
		return nil, nil
	}
	return c.obs.register(family, c.name, c.processes, pool)
}

// handle is the shared per-process plumbing.
type handle struct {
	ctx      primitive.Context
	counting *primitive.Counting
	inst     *obs.Instrumented
}

func newHandle(id int, counting bool, col *obs.Collector) handle {
	h := handle{ctx: primitive.NewDirect(id)}
	if col != nil {
		h.inst = col.Context(id, h.ctx)
		h.ctx = h.inst
	}
	if counting {
		c := primitive.NewCounting(h.ctx)
		h.ctx = c
		h.counting = c
	}
	return h
}

// Steps reports shared-memory events issued through the handle, or 0 if the
// object was built without WithStepCounting.
func (h handle) Steps() int64 {
	if h.counting == nil {
		return 0
	}
	return h.counting.Steps()
}

// MaxRegister is a linearizable max register. Construct with
// NewMaxRegister; access through per-process Handles.
type MaxRegister struct {
	impl      maxreg.MaxRegister
	processes int
	counting  bool
	col       *obs.Collector
}

// NewMaxRegister builds a max register.
func NewMaxRegister(opts ...Option) (*MaxRegister, error) {
	c := buildConfig(opts)
	if c.processes < 1 {
		return nil, fmt.Errorf("tradeoffs: processes must be >= 1, got %d", c.processes)
	}
	pool := primitive.NewPool()
	var (
		impl maxreg.MaxRegister
		err  error
	)
	switch c.maxRegImpl {
	case MaxRegisterAlgorithmA:
		impl, err = core.New(pool, c.processes, c.bound)
	case MaxRegisterAAC:
		if c.bound <= 0 {
			return nil, ErrBoundRequired
		}
		impl, err = maxreg.NewAAC(pool, c.bound)
	case MaxRegisterCAS:
		impl = maxreg.NewCASRegister(pool, c.bound)
	case MaxRegisterUnboundedAAC:
		impl = maxreg.NewUnboundedAAC(pool)
	default:
		return nil, fmt.Errorf("tradeoffs: unknown max register implementation %d", c.maxRegImpl)
	}
	if err != nil {
		return nil, fmt.Errorf("tradeoffs: %w", err)
	}
	col, err := registerObs(c, "maxreg", pool)
	if err != nil {
		return nil, err
	}
	return &MaxRegister{impl: impl, processes: c.processes, counting: c.counting, col: col}, nil
}

// Processes returns the number of process slots.
func (m *MaxRegister) Processes() int { return m.processes }

// Bound returns the exclusive value bound, or 0 if unbounded.
func (m *MaxRegister) Bound() int64 { return m.impl.Bound() }

// Handle returns process id's access handle. A handle must be used by one
// goroutine at a time; different handles may run fully in parallel.
func (m *MaxRegister) Handle(id int) *MaxRegisterHandle {
	h := &MaxRegisterHandle{reg: m.impl, handle: newHandle(id, m.counting, m.col)}
	if m.col != nil {
		h.opRead = m.col.Op("read")
		h.opWrite = m.col.Op("write")
	}
	return h
}

// MaxRegisterHandle is a per-process capability to a MaxRegister.
type MaxRegisterHandle struct {
	handle

	reg             maxreg.MaxRegister
	opRead, opWrite *obs.Op
}

// Read returns the largest value written so far (0 if none).
func (h *MaxRegisterHandle) Read() int64 {
	if h.inst == nil {
		return h.reg.ReadMax(h.ctx)
	}
	sp := h.opRead.Begin(h.inst)
	v := h.reg.ReadMax(h.ctx)
	sp.End()
	return v
}

// Write records v if it exceeds every previously written value.
func (h *MaxRegisterHandle) Write(v int64) error {
	if h.inst == nil {
		return h.reg.WriteMax(h.ctx, v)
	}
	sp := h.opWrite.Begin(h.inst)
	err := h.reg.WriteMax(h.ctx, v)
	sp.End()
	return err
}

// Counter is a linearizable shared counter. Construct with NewCounter.
type Counter struct {
	impl      counter.Counter
	processes int
	counting  bool
	col       *obs.Collector
}

// NewCounter builds a counter.
func NewCounter(opts ...Option) (*Counter, error) {
	c := buildConfig(opts)
	if c.processes < 1 {
		return nil, fmt.Errorf("tradeoffs: processes must be >= 1, got %d", c.processes)
	}
	pool := primitive.NewPool()
	var (
		impl counter.Counter
		err  error
	)
	switch c.counterImpl {
	case CounterFArray:
		impl, err = counter.NewFArray(pool, c.processes)
	case CounterAAC:
		if c.limit <= 0 {
			return nil, ErrLimitRequired
		}
		impl, err = counter.NewAAC(pool, c.processes, c.limit)
	case CounterCAS:
		impl = counter.NewCAS(pool)
	case CounterSnapshot:
		if c.limit <= 0 {
			return nil, ErrLimitRequired
		}
		var snap snapshot.Snapshot
		snap, err = snapshot.NewFArray(pool, c.processes, c.limit)
		if err == nil {
			impl = counter.NewFromSnapshot(snap)
		}
	default:
		return nil, fmt.Errorf("tradeoffs: unknown counter implementation %d", c.counterImpl)
	}
	if err != nil {
		return nil, fmt.Errorf("tradeoffs: %w", err)
	}
	col, err := registerObs(c, "counter", pool)
	if err != nil {
		return nil, err
	}
	return &Counter{impl: impl, processes: c.processes, counting: c.counting, col: col}, nil
}

// Processes returns the number of process slots.
func (c *Counter) Processes() int { return c.processes }

// Handle returns process id's access handle.
func (c *Counter) Handle(id int) *CounterHandle {
	h := &CounterHandle{ctr: c.impl, handle: newHandle(id, c.counting, c.col)}
	if c.col != nil {
		h.opRead = c.col.Op("read")
		h.opInc = c.col.Op("increment")
	}
	return h
}

// CounterHandle is a per-process capability to a Counter.
type CounterHandle struct {
	handle

	ctr           counter.Counter
	opRead, opInc *obs.Op
}

// Read returns the number of increments that linearized before it.
func (h *CounterHandle) Read() int64 {
	if h.inst == nil {
		return h.ctr.Read(h.ctx)
	}
	sp := h.opRead.Begin(h.inst)
	v := h.ctr.Read(h.ctx)
	sp.End()
	return v
}

// Increment adds one to the counter.
func (h *CounterHandle) Increment() error {
	if h.inst == nil {
		return h.ctr.Increment(h.ctx)
	}
	sp := h.opInc.Begin(h.inst)
	err := h.ctr.Increment(h.ctx)
	sp.End()
	return err
}

// Snapshot is a linearizable single-writer atomic snapshot. Construct with
// NewSnapshot.
type Snapshot struct {
	impl      snapshot.Snapshot
	processes int
	counting  bool
	col       *obs.Collector
}

// NewSnapshot builds a snapshot with one segment per process.
func NewSnapshot(opts ...Option) (*Snapshot, error) {
	c := buildConfig(opts)
	if c.processes < 1 {
		return nil, fmt.Errorf("tradeoffs: processes must be >= 1, got %d", c.processes)
	}
	pool := primitive.NewPool()
	var (
		impl snapshot.Snapshot
		err  error
	)
	switch c.snapshotImpl {
	case SnapshotFArray:
		if c.limit <= 0 {
			return nil, ErrLimitRequired
		}
		impl, err = snapshot.NewFArray(pool, c.processes, c.limit)
	case SnapshotAfek:
		if c.limit <= 0 {
			return nil, ErrLimitRequired
		}
		impl, err = snapshot.NewAfek(pool, c.processes, c.limit)
	case SnapshotDoubleCollect:
		impl, err = snapshot.NewDoubleCollect(pool, c.processes)
	default:
		return nil, fmt.Errorf("tradeoffs: unknown snapshot implementation %d", c.snapshotImpl)
	}
	if err != nil {
		return nil, fmt.Errorf("tradeoffs: %w", err)
	}
	col, err := registerObs(c, "snapshot", pool)
	if err != nil {
		return nil, err
	}
	return &Snapshot{impl: impl, processes: c.processes, counting: c.counting, col: col}, nil
}

// Processes returns the number of segments (= process slots).
func (s *Snapshot) Processes() int { return s.processes }

// Handle returns process id's access handle; Update writes segment id.
func (s *Snapshot) Handle(id int) *SnapshotHandle {
	h := &SnapshotHandle{snap: s.impl, handle: newHandle(id, s.counting, s.col)}
	if s.col != nil {
		h.opScan = s.col.Op("scan")
		h.opUpdate = s.col.Op("update")
	}
	return h
}

// SnapshotHandle is a per-process capability to a Snapshot.
type SnapshotHandle struct {
	handle

	snap             snapshot.Snapshot
	opScan, opUpdate *obs.Op
}

// Update atomically sets the handle's segment to v.
func (h *SnapshotHandle) Update(v int64) error {
	if h.inst == nil {
		return h.snap.Update(h.ctx, v)
	}
	sp := h.opUpdate.Begin(h.inst)
	err := h.snap.Update(h.ctx, v)
	sp.End()
	return err
}

// Scan atomically reads all segments.
func (h *SnapshotHandle) Scan() []int64 {
	if h.inst == nil {
		return h.snap.Scan(h.ctx)
	}
	sp := h.opScan.Begin(h.inst)
	v := h.snap.Scan(h.ctx)
	sp.End()
	return v
}
