// Package tradeoffs is a Go library of restricted-use concurrent objects —
// max registers, counters, and single-writer atomic snapshots — reproducing
// "Complexity Tradeoffs for Read and Update Operations" (Hendler & Khait,
// PODC 2014).
//
// The package exposes each object family behind a single constructor with
// an implementation selector, so applications can pick their side of the
// paper's read/update tradeoff:
//
//	reg, err := tradeoffs.NewMaxRegister(
//		tradeoffs.WithProcesses(8),
//		tradeoffs.WithMaxRegisterImpl(tradeoffs.MaxRegisterAlgorithmA),
//	)
//	h := reg.Handle(0)        // process 0's handle (one goroutine at a time)
//	_ = h.Write(42)
//	cur := h.Read()           // 42, in one shared-memory step
//
// Every object is linearizable and (except the CAS-loop variants, which are
// only lock-free) wait-free. Handles are per-process capabilities: process
// ids run from 0 to Processes-1, and a given id must be used by at most one
// goroutine at a time. Handles optionally count shared-memory steps
// (WithStepCounting), which is how the repository's experiments measure the
// paper's complexity claims — see EXPERIMENTS.md.
package tradeoffs

import (
	"errors"
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/counter/sharded"
	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/obs/bounds"
	"github.com/restricteduse/tradeoffs/internal/obs/flight"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// MaxRegisterImpl selects a max register implementation.
type MaxRegisterImpl int

// Max register implementations.
const (
	// MaxRegisterAlgorithmA is the paper's Algorithm A: O(1) Read,
	// O(min(log N, log v)) wait-free Write from read/write/CAS.
	MaxRegisterAlgorithmA MaxRegisterImpl = iota + 1

	// MaxRegisterAAC is the Aspnes-Attiya-Censor construction from
	// read/write only: O(log M) Read and Write. Requires a bound.
	MaxRegisterAAC

	// MaxRegisterCAS is a single-word CAS loop: O(1) Read, lock-free (not
	// wait-free) Write.
	MaxRegisterCAS

	// MaxRegisterUnboundedAAC is the unbounded read/write-only register:
	// O(log v) Write and O(log V) Read (V = current maximum), with the
	// switch tree materialized lazily as values grow.
	MaxRegisterUnboundedAAC
)

// CounterImpl selects a counter implementation.
type CounterImpl int

// Counter implementations.
const (
	// CounterFArray is the constant-read counter: O(1) Read, O(log N)
	// wait-free Increment (Jayanti-style f-array over CAS).
	CounterFArray CounterImpl = iota + 1

	// CounterAAC is the Aspnes-Attiya-Censor read/write counter:
	// O(log limit) Read, O(log N * log limit) Increment. Requires a
	// limit (restricted use).
	CounterAAC

	// CounterCAS is a single-word CAS loop: O(1) Read, lock-free (not
	// wait-free) Increment.
	CounterCAS

	// CounterSnapshot is Corollary 1's reduction over the constant-scan
	// snapshot: O(1) Read, O(log N) Increment. Requires a limit.
	CounterSnapshot

	// CounterSharded is the elastic striped counter: lock-free O(1)
	// Increment that spreads contended retries across cache-line-padded
	// stripes (growing the stripe set on observed CAS-failure rate,
	// collapsing it when contention drops), obstruction-free O(stripes)
	// Read. The update-optimal end of the tradeoff at real-hardware
	// scale; unbounded only (WithLimit is rejected).
	CounterSharded
)

// SnapshotImpl selects a snapshot implementation.
type SnapshotImpl int

// Snapshot implementations.
const (
	// SnapshotFArray is the constant-scan snapshot: O(1) Scan, O(log N)
	// wait-free Update. Requires a limit (restricted use).
	SnapshotFArray SnapshotImpl = iota + 1

	// SnapshotAfek is the classic wait-free snapshot from read/write:
	// O(N^2) Scan and Update. Requires a limit.
	SnapshotAfek

	// SnapshotDoubleCollect is the textbook obstruction-free snapshot:
	// O(1) Update, Scan unbounded under contention.
	SnapshotDoubleCollect
)

// config collects the options shared by all constructors.
type config struct {
	processes int
	bound     int64
	limit     int64
	counting  bool
	batch     int
	obs       *Observability
	flight    *FlightRecorder
	name      string

	maxRegImpl   MaxRegisterImpl
	counterImpl  CounterImpl
	snapshotImpl SnapshotImpl

	// adaptive, when non-nil, resolves the counter implementation (and
	// optionally the batching window) from a BackendObservation at
	// construction time — see WithAdaptiveBackend.
	adaptive AdaptivePolicy

	// boundTable overrides the embedded certified-bound table (see
	// WithBoundTableJSON); boundTableErr defers its parse error to
	// validate so option application stays infallible.
	boundTable    *bounds.Table
	boundTableErr error
}

// validate checks the option values every constructor shares. Negative
// bounds and limits are rejected here so the contract is uniform across
// implementations (including the CAS variants, whose 0 means "unbounded").
func (c config) validate() error {
	if c.processes < 1 {
		return fmt.Errorf("tradeoffs: processes must be >= 1, got %d", c.processes)
	}
	if c.bound < 0 {
		return fmt.Errorf("tradeoffs: negative bound %d", c.bound)
	}
	if c.limit < 0 {
		return fmt.Errorf("tradeoffs: negative limit %d", c.limit)
	}
	if c.batch < 0 {
		return fmt.Errorf("tradeoffs: negative batching window %d", c.batch)
	}
	if c.boundTableErr != nil {
		return fmt.Errorf("tradeoffs: %w", c.boundTableErr)
	}
	return nil
}

// Option configures a constructor.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithProcesses sets the number of processes sharing the object (default 8).
// Process ids for Handle run in [0, n).
func WithProcesses(n int) Option {
	return optionFunc(func(c *config) { c.processes = n })
}

// WithBound makes a max register M-bounded: Write accepts values in
// [0, bound). MaxRegisterAAC requires it; for Algorithm A a bound <= N also
// shrinks the structure.
func WithBound(bound int64) Option {
	return optionFunc(func(c *config) { c.bound = bound })
}

// WithLimit declares the restricted-use budget: the maximum number of
// Increment (counters) or Update (snapshots) operations. Implementations
// marked "requires a limit" reject configurations without one.
func WithLimit(limit int64) Option {
	return optionFunc(func(c *config) { c.limit = limit })
}

// WithStepCounting makes every handle count its shared-memory events,
// readable via Handle.Steps.
func WithStepCounting() Option {
	return optionFunc(func(c *config) { c.counting = true })
}

// WithBatching makes counter handles coalesce their pending deltas: Add and
// Increment buffer locally and propagate once every window calls (or on an
// explicit Flush, or before a Read through the same handle), cutting the
// shared-memory cost of an increment from O(log N) to O(log N / window)
// amortized. Slots are single-writer, so the coalesced delta lands as one
// linearizable update.
//
// The tradeoff is staleness, not correctness: deltas buffered on a handle
// are invisible to other processes until flushed, and a Read through a
// batching handle flushes its own buffer first (read-your-writes). After
// every handle has flushed (quiescence), reads are exact.
//
// window <= 1 disables batching (the default). Counters only; other
// families ignore the option.
func WithBatching(window int) Option {
	return optionFunc(func(c *config) { c.batch = window })
}

// WithMaxRegisterImpl selects the max register implementation (default
// MaxRegisterAlgorithmA).
func WithMaxRegisterImpl(impl MaxRegisterImpl) Option {
	return optionFunc(func(c *config) { c.maxRegImpl = impl })
}

// WithCounterImpl selects the counter implementation (default
// CounterFArray).
func WithCounterImpl(impl CounterImpl) Option {
	return optionFunc(func(c *config) { c.counterImpl = impl })
}

// WithSnapshotImpl selects the snapshot implementation (default
// SnapshotFArray).
func WithSnapshotImpl(impl SnapshotImpl) Option {
	return optionFunc(func(c *config) { c.snapshotImpl = impl })
}

// ErrLimitRequired is returned when a restricted-use implementation is
// selected without WithLimit.
var ErrLimitRequired = errors.New("tradeoffs: implementation requires WithLimit")

// ErrBoundRequired is returned when MaxRegisterAAC is selected without
// WithBound.
var ErrBoundRequired = errors.New("tradeoffs: implementation requires WithBound")

// ErrLimitUnsupported is returned when WithLimit is combined with an
// implementation that cannot enforce a restricted-use budget
// (CounterSharded: checking a limit would cost a full O(stripes) collect
// per update, exactly the read cost sharding exists to avoid).
var ErrLimitUnsupported = errors.New("tradeoffs: implementation does not support WithLimit")

func buildConfig(opts []Option) config {
	c := config{
		processes:    8,
		maxRegImpl:   MaxRegisterAlgorithmA,
		counterImpl:  CounterFArray,
		snapshotImpl: SnapshotFArray,
	}
	for _, o := range opts {
		o.apply(&c)
	}
	return c
}

// registerObs attaches a freshly built object's pool to its Observability
// registry (if any), returning the object's collector (or nil) and its
// resolved name — WithName's value, or the registry-assigned family#k —
// so a flight recorder tap can share the label.
func registerObs(c config, family string, pool *primitive.Pool) (*obs.Collector, string, error) {
	if c.obs == nil {
		return nil, c.name, nil
	}
	return c.obs.register(family, c.name, c.processes, pool)
}

// checkHandleID validates a Handle(id) argument. Out-of-range ids panic —
// uniformly, with or without observability — because a handle is a
// per-process capability: requesting one for a process that does not exist
// is a programming error on par with an out-of-bounds slice index, and
// returning a handle that fails (or worse, silently succeeds) per operation
// would let the bug travel far from its cause. The panic message names the
// family and the valid range.
func checkHandleID(family string, id, processes int) {
	if id < 0 || id >= processes {
		panic(fmt.Sprintf("tradeoffs: %s.Handle(%d): process id out of range [0, %d)", family, id, processes))
	}
}

// handle is the shared per-process plumbing.
//
//tradeoffvet:outofband a handle is itself the per-process capability: it owns exactly one process's context and never crosses goroutines
type handle struct {
	ctx      primitive.Context
	counting *primitive.Counting
	inst     *obs.Instrumented

	// ftap streams the handle's operations to a flight recorder; fid is
	// the process id the tap records them under. Nil when the object was
	// built without WithFlightRecorder.
	ftap *flight.Tap
	fid  int
}

func newHandle(id int, counting bool, col *obs.Collector, ftap *flight.Tap) handle {
	h := handle{ctx: primitive.NewDirect(id), ftap: ftap, fid: id}
	if col != nil {
		h.inst = col.Context(id, h.ctx)
		h.ctx = h.inst
	}
	if counting {
		c := primitive.NewCounting(h.ctx)
		h.ctx = c
		h.counting = c
	}
	return h
}

// Steps reports shared-memory events issued through the handle, or 0 if the
// object was built without WithStepCounting.
func (h handle) Steps() int64 {
	if h.counting == nil {
		return 0
	}
	return h.counting.Steps()
}

// MaxRegister is a linearizable max register. Construct with
// NewMaxRegister; access through per-process Handles.
type MaxRegister struct {
	impl      maxreg.MaxRegister
	processes int
	counting  bool
	col       *obs.Collector
	ftap      *flight.Tap
}

// NewMaxRegister builds a max register.
func NewMaxRegister(opts ...Option) (*MaxRegister, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	pool := primitive.NewPadded()
	var (
		impl maxreg.MaxRegister
		err  error
	)
	switch c.maxRegImpl {
	case MaxRegisterAlgorithmA:
		impl, err = core.New(pool, c.processes, c.bound)
	case MaxRegisterAAC:
		if c.bound <= 0 {
			return nil, ErrBoundRequired
		}
		impl, err = maxreg.NewAAC(pool, c.bound)
	case MaxRegisterCAS:
		impl, err = maxreg.NewCASRegister(pool, c.bound)
	case MaxRegisterUnboundedAAC:
		impl = maxreg.NewUnboundedAAC(pool)
	default:
		return nil, fmt.Errorf("tradeoffs: unknown max register implementation %d", c.maxRegImpl)
	}
	if err != nil {
		return nil, fmt.Errorf("tradeoffs: %w", err)
	}
	col, name, tap, err := registerObsAndFlight(c, "maxreg", pool)
	if err != nil {
		return nil, err
	}
	implKey, params := maxRegBoundKey(impl, c.processes)
	if err := applyOpBounds(c, col, "maxreg", name, implKey, maxRegBoundSpecs, params); err != nil {
		return nil, err
	}
	return &MaxRegister{impl: impl, processes: c.processes, counting: c.counting, col: col, ftap: tap}, nil
}

// Processes returns the number of process slots.
func (m *MaxRegister) Processes() int { return m.processes }

// Bound returns the exclusive value bound, or 0 if unbounded.
func (m *MaxRegister) Bound() int64 { return m.impl.Bound() }

// Handle returns process id's access handle. A handle must be used by one
// goroutine at a time; different handles may run fully in parallel. Handle
// panics if id is outside [0, Processes()) — see checkHandleID for why the
// contract is a panic rather than an error.
func (m *MaxRegister) Handle(id int) *MaxRegisterHandle {
	checkHandleID("MaxRegister", id, m.processes)
	h := &MaxRegisterHandle{reg: m.impl, handle: newHandle(id, m.counting, m.col, m.ftap)}
	if m.col != nil {
		h.opRead = m.col.Op("read")
		h.opWrite = m.col.Op("write")
	}
	return h
}

// MaxRegisterHandle is a per-process capability to a MaxRegister.
type MaxRegisterHandle struct {
	handle

	reg             maxreg.MaxRegister
	opRead, opWrite *obs.Op
}

// Read returns the largest value written so far (0 if none).
func (h *MaxRegisterHandle) Read() int64 {
	tok := h.beginFlight()
	var v int64
	if h.inst == nil {
		v = h.reg.ReadMax(h.ctx)
	} else {
		sp := h.opRead.Begin(h.inst)
		v = h.reg.ReadMax(h.ctx)
		sp.End()
	}
	h.endFlight(tok, history.KindReadMax, 0, v)
	return v
}

// Write records v if it exceeds every previously written value.
func (h *MaxRegisterHandle) Write(v int64) error {
	tok := h.beginFlight()
	var err error
	if h.inst == nil {
		err = h.reg.WriteMax(h.ctx, v)
	} else {
		sp := h.opWrite.Begin(h.inst)
		err = h.reg.WriteMax(h.ctx, v)
		sp.End()
	}
	if err != nil {
		h.abortFlight(tok)
		return err
	}
	h.endFlight(tok, history.KindWriteMax, v, 0)
	return nil
}

// Counter is a linearizable shared counter. Construct with NewCounter.
type Counter struct {
	impl      counter.Counter
	which     CounterImpl
	processes int
	counting  bool
	batch     int
	col       *obs.Collector
	ftap      *flight.Tap
}

// NewCounter builds a counter.
func NewCounter(opts ...Option) (*Counter, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.adaptive != nil {
		// Backend selection is a config-resolution layer: the policy sees
		// the live evidence and rewrites the implementation (and batching
		// window) before construction, so everything downstream — handles,
		// observability, flight taps — composes identically to an explicit
		// WithCounterImpl.
		choice := c.adaptive(c.backendObservation())
		if choice.Impl != 0 {
			c.counterImpl = choice.Impl
		}
		if choice.BatchWindow > 0 {
			c.batch = choice.BatchWindow
		}
	}
	pool := primitive.NewPadded()
	var (
		impl counter.Counter
		err  error
	)
	switch c.counterImpl {
	case CounterFArray:
		impl, err = counter.NewFArray(pool, c.processes)
	case CounterAAC:
		if c.limit <= 0 {
			return nil, ErrLimitRequired
		}
		impl, err = counter.NewAAC(pool, c.processes, c.limit)
	case CounterCAS:
		impl, err = counter.NewCAS(pool, c.limit)
	case CounterSnapshot:
		if c.limit <= 0 {
			return nil, ErrLimitRequired
		}
		var snap snapshot.Snapshot
		snap, err = snapshot.NewFArray(pool, c.processes, c.limit)
		if err == nil {
			impl = counter.NewFromSnapshot(snap)
		}
	case CounterSharded:
		if c.limit > 0 {
			return nil, ErrLimitUnsupported
		}
		impl, err = sharded.New(pool, c.processes, sharded.Config{})
	default:
		return nil, fmt.Errorf("tradeoffs: unknown counter implementation %d", c.counterImpl)
	}
	if err != nil {
		return nil, fmt.Errorf("tradeoffs: %w", err)
	}
	col, name, tap, err := registerObsAndFlight(c, "counter", pool)
	if err != nil {
		return nil, err
	}
	implKey, params := counterBoundKey(impl, c.processes)
	if err := applyOpBounds(c, col, "counter", name, implKey, counterBoundSpecs, params); err != nil {
		return nil, err
	}
	return &Counter{impl: impl, which: c.counterImpl, processes: c.processes, counting: c.counting, batch: c.batch, col: col, ftap: tap}, nil
}

// Processes returns the number of process slots.
func (c *Counter) Processes() int { return c.processes }

// Impl returns the counter implementation actually constructed — the
// WithCounterImpl selection, or whatever WithAdaptiveBackend's policy
// resolved it to.
func (c *Counter) Impl() CounterImpl { return c.which }

// BatchWindow returns the WithBatching window, or 0 if batching is off.
func (c *Counter) BatchWindow() int {
	if c.batch <= 1 {
		return 0
	}
	return c.batch
}

// Handle returns process id's access handle. Handle panics if id is outside
// [0, Processes()) — see checkHandleID.
func (c *Counter) Handle(id int) *CounterHandle {
	checkHandleID("Counter", id, c.processes)
	h := &CounterHandle{ctr: c.impl, window: c.batch, handle: newHandle(id, c.counting, c.col, c.ftap)}
	if c.col != nil {
		h.opRead = c.col.Op("read")
		h.opInc = c.col.Op("increment")
		h.opAdd = c.col.Op("add")
	}
	return h
}

// CounterHandle is a per-process capability to a Counter.
//
// When the counter was built with WithBatching, the handle carries the
// process's coalescing buffer: see Add, Flush, and Pending. A handle is
// owned by one goroutine at a time (like every per-process capability), so
// the buffer needs no synchronization.
type CounterHandle struct {
	handle

	ctr                  counter.Counter
	opRead, opInc, opAdd *obs.Op

	// window is the WithBatching window (<= 1: batching off). pending is
	// the coalesced delta not yet propagated; buffered counts the calls
	// coalesced since the last flush. lastFlushErr remembers the most
	// recent flush attempt's outcome so callers can tell a stuck handle
	// (failed flush, deltas kept) from a merely unflushed one.
	window       int
	pending      int64
	buffered     int
	lastFlushErr error
}

// Read returns the number of increments that linearized before it. On a
// batching handle it first flushes the handle's own pending deltas
// (read-your-writes); deltas buffered on other handles stay invisible until
// those handles flush.
//
// When that implicit flush fails (e.g. a restricted-use LimitError), Read
// keeps its error-free signature and reports the stale propagated count —
// check Pending() > 0 to detect the stuck state and LastFlushErr for its
// cause.
func (h *CounterHandle) Read() int64 {
	if h.pending > 0 {
		// A failed flush keeps the deltas buffered; the error stays
		// visible through Flush/LastFlushErr, while Read reports the
		// propagated count.
		_ = h.Flush()
	}
	tok := h.beginFlight()
	var v int64
	if h.inst == nil {
		v = h.ctr.Read(h.ctx)
	} else {
		sp := h.opRead.Begin(h.inst)
		v = h.ctr.Read(h.ctx)
		sp.End()
	}
	h.endFlight(tok, history.KindCounterRead, 0, v)
	return v
}

// Increment adds one to the counter. On a batching handle it coalesces like
// Add(1).
func (h *CounterHandle) Increment() error {
	if h.window > 1 {
		return h.Add(1)
	}
	tok := h.beginFlight()
	var err error
	if h.inst == nil {
		err = h.ctr.Increment(h.ctx)
	} else {
		sp := h.opInc.Begin(h.inst)
		err = h.ctr.Increment(h.ctx)
		sp.End()
	}
	if err != nil {
		h.abortFlight(tok)
		return err
	}
	h.endFlight(tok, history.KindIncrement, 0, 0)
	return nil
}

// Add atomically adds delta >= 0 to the counter as one update: one leaf
// write plus one propagation regardless of delta, so pre-batched deltas
// cost the same O(log N) steps a single Increment does. On a batching
// handle (WithBatching) the delta is instead coalesced locally and
// propagated once every window calls — see Flush.
func (h *CounterHandle) Add(delta int64) error {
	if h.window > 1 {
		if delta < 0 {
			return &counter.NegativeDeltaError{Delta: delta}
		}
		h.pending += delta
		h.buffered++
		if h.buffered >= h.window {
			return h.Flush()
		}
		return nil
	}
	// Add(0) changes nothing and is not recorded: the weighted counter
	// checker counts every recorded increment with weight max(Arg, 1).
	var tok flight.OpToken
	if delta != 0 {
		tok = h.beginFlight()
	}
	var err error
	if h.inst == nil {
		err = h.ctr.Add(h.ctx, delta)
	} else {
		sp := h.opAdd.Begin(h.inst)
		err = h.ctr.Add(h.ctx, delta)
		sp.End()
	}
	if err != nil {
		h.abortFlight(tok)
		return err
	}
	h.endFlight(tok, history.KindIncrement, delta, 0)
	return nil
}

// Flush propagates the handle's coalesced deltas (if any) as one update.
// On error (e.g. a restricted-use LimitError) the deltas stay buffered so
// nothing is silently lost; the caller may retry. Flush on a non-batching
// handle is a no-op.
func (h *CounterHandle) Flush() error {
	if h.pending == 0 {
		h.buffered = 0
		h.lastFlushErr = nil
		return nil
	}
	// The coalesced delta lands as one update, so the flight recorder
	// sees it as one weighted increment (Arg = delta): deltas buffered on
	// the handle are invisible to other processes and stay unrecorded
	// until this propagation, which is exactly when they linearize.
	delta := h.pending
	tok := h.beginFlight()
	var err error
	if h.inst == nil {
		err = h.ctr.Add(h.ctx, delta)
	} else {
		sp := h.opAdd.Begin(h.inst)
		err = h.ctr.Add(h.ctx, delta)
		sp.End()
	}
	if err != nil {
		h.abortFlight(tok)
		h.lastFlushErr = err
		return err
	}
	h.endFlight(tok, history.KindIncrement, delta, 0)
	h.pending, h.buffered = 0, 0
	h.lastFlushErr = nil
	return nil
}

// Pending returns the delta coalesced on this handle and not yet
// propagated (0 on a non-batching handle). Pending() > 0 after a Read is
// the signal that the handle is stuck: its flush failed and the reported
// count is stale — LastFlushErr says why.
func (h *CounterHandle) Pending() int64 { return h.pending }

// LastFlushErr returns the error from the handle's most recent flush
// attempt — explicit, window-triggered, or read-triggered — or nil if it
// succeeded or none has run. It is the diagnostic companion to Pending:
// Read cannot report flush failures itself, so a handle over its
// restricted-use budget would otherwise look merely unflushed.
func (h *CounterHandle) LastFlushErr() error { return h.lastFlushErr }

// Snapshot is a linearizable single-writer atomic snapshot. Construct with
// NewSnapshot.
type Snapshot struct {
	impl      snapshot.Snapshot
	processes int
	counting  bool
	col       *obs.Collector
	ftap      *flight.Tap

	// local[i] caches the last value process i successfully wrote to its
	// segment, so SnapshotHandle.Add needs no Scan. Single-writer (only
	// the goroutine driving process i touches local[i]) and padded so
	// writers stay off each other's cache lines.
	local []paddedSeg
}

type paddedSeg struct {
	v int64
	_ [7]int64 // pad to a 64-byte cache line
}

// NewSnapshot builds a snapshot with one segment per process.
func NewSnapshot(opts ...Option) (*Snapshot, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	pool := primitive.NewPadded()
	var (
		impl snapshot.Snapshot
		err  error
	)
	switch c.snapshotImpl {
	case SnapshotFArray:
		if c.limit <= 0 {
			return nil, ErrLimitRequired
		}
		impl, err = snapshot.NewFArray(pool, c.processes, c.limit)
	case SnapshotAfek:
		if c.limit <= 0 {
			return nil, ErrLimitRequired
		}
		impl, err = snapshot.NewAfek(pool, c.processes, c.limit)
	case SnapshotDoubleCollect:
		impl, err = snapshot.NewDoubleCollect(pool, c.processes)
	default:
		return nil, fmt.Errorf("tradeoffs: unknown snapshot implementation %d", c.snapshotImpl)
	}
	if err != nil {
		return nil, fmt.Errorf("tradeoffs: %w", err)
	}
	col, name, tap, err := registerObsAndFlight(c, "snapshot", pool)
	if err != nil {
		return nil, err
	}
	implKey, params := snapshotBoundKey(impl, c.processes)
	if err := applyOpBounds(c, col, "snapshot", name, implKey, snapshotBoundSpecs, params); err != nil {
		return nil, err
	}
	return &Snapshot{
		impl:      impl,
		processes: c.processes,
		counting:  c.counting,
		col:       col,
		ftap:      tap,
		local:     make([]paddedSeg, c.processes),
	}, nil
}

// Processes returns the number of segments (= process slots).
func (s *Snapshot) Processes() int { return s.processes }

// Handle returns process id's access handle; Update writes segment id.
// Handle panics if id is outside [0, Processes()) — see checkHandleID.
func (s *Snapshot) Handle(id int) *SnapshotHandle {
	checkHandleID("Snapshot", id, s.processes)
	h := &SnapshotHandle{snap: s.impl, seg: &s.local[id], handle: newHandle(id, s.counting, s.col, s.ftap)}
	if s.col != nil {
		h.opScan = s.col.Op("scan")
		h.opUpdate = s.col.Op("update")
	}
	return h
}

// SnapshotHandle is a per-process capability to a Snapshot.
type SnapshotHandle struct {
	handle

	snap             snapshot.Snapshot
	seg              *paddedSeg
	opScan, opUpdate *obs.Op
}

// Update atomically sets the handle's segment to v.
func (h *SnapshotHandle) Update(v int64) error {
	tok := h.beginFlight()
	var err error
	if h.inst == nil {
		err = h.snap.Update(h.ctx, v)
	} else {
		sp := h.opUpdate.Begin(h.inst)
		err = h.snap.Update(h.ctx, v)
		sp.End()
	}
	if err != nil {
		h.abortFlight(tok)
		return err
	}
	h.seg.v = v
	h.endFlight(tok, history.KindUpdate, v, 0)
	return nil
}

// Add atomically adds delta to the handle's segment and returns the new
// segment value. Segments are single-writer, so the read side is a local
// cache of the last written value (no Scan): the whole operation costs one
// Update. This is the snapshot-side primitive behind Corollary 1's
// counter-from-snapshot reduction.
func (h *SnapshotHandle) Add(delta int64) (int64, error) {
	next := h.seg.v + delta
	if err := h.Update(next); err != nil {
		return h.seg.v, err
	}
	return next, nil
}

// Scan atomically reads all segments.
func (h *SnapshotHandle) Scan() []int64 {
	tok := h.beginFlight()
	var v []int64
	if h.inst == nil {
		v = h.snap.Scan(h.ctx)
	} else {
		sp := h.opScan.Begin(h.inst)
		v = h.snap.Scan(h.ctx)
		sp.End()
	}
	h.endFlightVec(tok, v)
	return v
}
