package tradeoffs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/counter"
)

// --- Handle(id) contract: uniform panic on out-of-range ids ---

// handleFamilies builds one object per family, optionally observed, and
// returns its Handle func erased to func(int). Every family must behave
// identically: valid ids succeed, invalid ids panic at Handle time.
func handleFamilies(t *testing.T, procs int, observed bool) map[string]func(int) {
	t.Helper()
	opts := func(extra ...Option) []Option {
		all := append([]Option{WithProcesses(procs)}, extra...)
		if observed {
			all = append(all, WithObservability(NewObservability()))
		}
		return all
	}
	reg, err := NewMaxRegister(opts()...)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := NewCounter(opts()...)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(opts(WithLimit(64))...)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsensus(opts(WithLimit(16))...)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]func(int){
		"MaxRegister": func(id int) { reg.Handle(id) },
		"Counter":     func(id int) { ctr.Handle(id) },
		"Snapshot":    func(id int) { snap.Handle(id) },
		"Consensus":   func(id int) { cons.Handle(id) },
	}
}

func TestHandleIDValidation(t *testing.T) {
	const procs = 4
	for _, observed := range []bool{false, true} {
		name := "direct"
		if observed {
			name = "observed"
		}
		t.Run(name, func(t *testing.T) {
			for family, handle := range handleFamilies(t, procs, observed) {
				t.Run(family, func(t *testing.T) {
					for _, id := range []int{0, 1, procs - 1} {
						handle(id) // must not panic
					}
					for _, id := range []int{-1, procs, procs + 100} {
						func() {
							defer func() {
								r := recover()
								if r == nil {
									t.Fatalf("%s.Handle(%d) did not panic", family, id)
								}
								msg := fmt.Sprint(r)
								// The message must name the family and the valid
								// range, and come from the facade — not from
								// deep inside obs or an index expression.
								if !strings.Contains(msg, family) ||
									!strings.Contains(msg, fmt.Sprintf("[0, %d)", procs)) ||
									!strings.HasPrefix(msg, "tradeoffs: ") {
									t.Fatalf("%s.Handle(%d) panic = %q", family, id, msg)
								}
							}()
							handle(id)
						}()
					}
				})
			}
		})
	}
}

// --- constructor validation for negative option values ---

func TestNegativeOptionValuesRejected(t *testing.T) {
	if _, err := NewMaxRegister(WithBound(-1)); err == nil {
		t.Error("NewMaxRegister(WithBound(-1)) succeeded")
	}
	if _, err := NewMaxRegister(WithMaxRegisterImpl(MaxRegisterCAS), WithBound(-1)); err == nil {
		t.Error("CAS max register accepted a negative bound")
	}
	if _, err := NewCounter(WithLimit(-1)); err == nil {
		t.Error("NewCounter(WithLimit(-1)) succeeded")
	}
	if _, err := NewCounter(WithCounterImpl(CounterCAS), WithLimit(-1)); err == nil {
		t.Error("CAS counter accepted a negative limit")
	}
	if _, err := NewCounter(WithBatching(-1)); err == nil {
		t.Error("NewCounter(WithBatching(-1)) succeeded")
	}
	if _, err := NewSnapshot(WithLimit(-1)); err == nil {
		t.Error("NewSnapshot(WithLimit(-1)) succeeded")
	}
	if _, err := NewConsensus(WithProcesses(0)); err == nil {
		t.Error("NewConsensus(WithProcesses(0)) succeeded")
	}
}

// --- Add and WithBatching semantics ---

func TestCounterAddDelta(t *testing.T) {
	for name, opts := range map[string][]Option{
		"farray":   {WithCounterImpl(CounterFArray)},
		"cas":      {WithCounterImpl(CounterCAS)},
		"aac":      {WithCounterImpl(CounterAAC), WithLimit(1 << 10)},
		"snapshot": {WithCounterImpl(CounterSnapshot), WithLimit(1 << 10)},
	} {
		t.Run(name, func(t *testing.T) {
			ctr, err := NewCounter(append(opts, WithProcesses(2))...)
			if err != nil {
				t.Fatal(err)
			}
			h := ctr.Handle(0)
			if err := h.Add(5); err != nil {
				t.Fatal(err)
			}
			if err := h.Add(0); err != nil {
				t.Fatal(err)
			}
			if err := h.Increment(); err != nil {
				t.Fatal(err)
			}
			if err := h.Add(-3); err == nil {
				t.Fatal("Add(-3) succeeded")
			}
			if got := h.Read(); got != 6 {
				t.Fatalf("Read = %d, want 6", got)
			}
		})
	}
}

func TestBatchingReadYourWrites(t *testing.T) {
	ctr, err := NewCounter(WithProcesses(2), WithBatching(4))
	if err != nil {
		t.Fatal(err)
	}
	if ctr.BatchWindow() != 4 {
		t.Fatalf("BatchWindow = %d, want 4", ctr.BatchWindow())
	}
	h0, h1 := ctr.Handle(0), ctr.Handle(1)

	// Three adds stay buffered (window 4)...
	for i := 0; i < 3; i++ {
		if err := h0.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	if h0.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", h0.Pending())
	}
	// ...invisible to other handles...
	if got := h1.Read(); got != 0 {
		t.Fatalf("other handle Read = %d, want 0 (deltas still buffered)", got)
	}
	// ...but the owner reads its own writes.
	if got := h0.Read(); got != 3 {
		t.Fatalf("own Read = %d, want 3", got)
	}
	if h0.Pending() != 0 {
		t.Fatalf("Pending after Read = %d, want 0", h0.Pending())
	}
	// The fourth call of a full window flushes automatically.
	for i := 0; i < 4; i++ {
		if err := h0.Increment(); err != nil {
			t.Fatal(err)
		}
	}
	if h0.Pending() != 0 {
		t.Fatalf("Pending after full window = %d, want 0", h0.Pending())
	}
	if got := h1.Read(); got != 7 {
		t.Fatalf("other handle Read = %d, want 7 after flushes", got)
	}
}

func TestBatchingFlushErrorKeepsPending(t *testing.T) {
	// A restricted-use counter whose budget runs out mid-flush must keep
	// the coalesced delta buffered (nothing silently lost).
	ctr, err := NewCounter(WithCounterImpl(CounterAAC), WithLimit(4),
		WithProcesses(1), WithBatching(8))
	if err != nil {
		t.Fatal(err)
	}
	h := ctr.Handle(0)
	for i := 0; i < 6; i++ {
		if err := h.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err == nil {
		t.Fatal("Flush over the limit succeeded")
	}
	if h.Pending() != 6 {
		t.Fatalf("Pending after failed flush = %d, want 6", h.Pending())
	}
	var limitErr *counter.LimitError
	if err := h.Flush(); !errors.As(err, &limitErr) {
		t.Fatalf("retried Flush err = %v, want LimitError", err)
	}
}

func TestBatchingAmortizedSteps(t *testing.T) {
	// The amortization claim behind WithBatching: with window w, n logical
	// increments cost about n/w propagations, so the per-increment step
	// count must drop well below the unbatched counter's.
	const n = 64
	steps := func(window int) int64 {
		t.Helper()
		ctr, err := NewCounter(WithProcesses(8), WithStepCounting(), WithBatching(window))
		if err != nil {
			t.Fatal(err)
		}
		h := ctr.Handle(0)
		for i := 0; i < n; i++ {
			if err := h.Add(1); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.Flush(); err != nil {
			t.Fatal(err)
		}
		return h.Steps()
	}
	unbatched := steps(0)
	batched := steps(8)
	if batched*4 > unbatched {
		t.Fatalf("window-8 batching: %d steps vs %d unbatched — no amortization win", batched, unbatched)
	}
}

func TestBatchingExactUnderQuiescence(t *testing.T) {
	// -race stress: concurrent batched adders; after every handle flushes
	// (quiescence), the count must be exact.
	const (
		procs  = 8
		perOp  = 500
		window = 8
	)
	for name, opts := range map[string][]Option{
		"farray": {WithCounterImpl(CounterFArray)},
		"cas":    {WithCounterImpl(CounterCAS)},
	} {
		t.Run(name, func(t *testing.T) {
			ctr, err := NewCounter(append(opts, WithProcesses(procs), WithBatching(window))...)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for id := 0; id < procs; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := ctr.Handle(id)
					for i := 0; i < perOp; i++ {
						// Mix unit increments and larger deltas.
						var err error
						if i%5 == 0 {
							err = h.Add(3)
						} else {
							err = h.Increment()
						}
						if err != nil {
							t.Error(err)
							return
						}
					}
					if err := h.Flush(); err != nil {
						t.Error(err)
					}
				}(id)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			want := int64(procs) * (perOp + 2*(perOp/5)) // 3 per fifth op, 1 otherwise
			if got := ctr.Handle(0).Read(); got != want {
				t.Fatalf("quiescent Read = %d, want %d", got, want)
			}
		})
	}
}

// --- SnapshotHandle.Add ---

func TestSnapshotHandleAdd(t *testing.T) {
	snap, err := NewSnapshot(WithProcesses(3), WithLimit(64))
	if err != nil {
		t.Fatal(err)
	}
	h := snap.Handle(1)
	for i, want := range []int64{4, 9, 9} {
		var got int64
		var err error
		switch i {
		case 2:
			got, err = h.Add(0)
		default:
			got, err = h.Add(int64(4 + i))
		}
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Add #%d = %d, want %d", i, got, want)
		}
	}
	if view := h.Scan(); view[1] != 9 {
		t.Fatalf("Scan segment 1 = %d, want 9", view[1])
	}
	// Update through the same handle keeps the Add cache coherent.
	if err := h.Update(20); err != nil {
		t.Fatal(err)
	}
	if got, err := h.Add(1); err != nil || got != 21 {
		t.Fatalf("Add after Update = (%d, %v), want (21, nil)", got, err)
	}
}

func TestSnapshotHandleAddErrorLeavesValue(t *testing.T) {
	// The f-array snapshot's update budget is enforced through its view
	// arena (with construction slack), so exhaust it by looping rather
	// than assuming an exact cutoff.
	snap, err := NewSnapshot(WithProcesses(2), WithLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	h := snap.Handle(0)
	var durable int64
	for i := 0; i < 1000; i++ {
		got, err := h.Add(5)
		if err != nil {
			// Budget exhausted: Add must report the last durable value
			// and leave the segment untouched.
			if got != durable {
				t.Fatalf("failed Add returned %d, want last durable %d", got, durable)
			}
			if view := h.Scan(); view[0] != durable {
				t.Fatalf("segment = %d after failed Add, want %d", view[0], durable)
			}
			return
		}
		durable = got
	}
	t.Fatal("update budget never exhausted")
}

// TestBatchingFailedFlushSurfacesStuckState pins the visible state of a
// batching handle stuck over its restricted-use budget: Read keeps its
// error-free signature and reports the stale propagated count, so
// Pending() is the documented stuck signal and LastFlushErr the reason.
func TestBatchingFailedFlushSurfacesStuckState(t *testing.T) {
	ctr, err := NewCounter(WithCounterImpl(CounterAAC), WithLimit(4),
		WithProcesses(1), WithBatching(8))
	if err != nil {
		t.Fatal(err)
	}
	h := ctr.Handle(0)
	if h.LastFlushErr() != nil {
		t.Fatalf("LastFlushErr on a fresh handle = %v, want nil", h.LastFlushErr())
	}
	for i := 0; i < 6; i++ {
		if err := h.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	var limitErr *counter.LimitError
	if err := h.Flush(); !errors.As(err, &limitErr) {
		t.Fatalf("Flush over the limit = %v, want LimitError", err)
	}
	if err := h.LastFlushErr(); !errors.As(err, &limitErr) {
		t.Fatalf("LastFlushErr after failed Flush = %v, want the LimitError", err)
	}

	// Read flushes first (read-your-writes), fails again silently, and
	// reports the propagated count — stale, but flagged through
	// Pending/LastFlushErr rather than lost.
	if got := h.Read(); got != 0 {
		t.Fatalf("Read after failed flush = %d, want 0 (propagated count)", got)
	}
	if h.Pending() != 6 {
		t.Fatalf("Pending after Read = %d, want 6 (deltas kept)", h.Pending())
	}
	if err := h.LastFlushErr(); !errors.As(err, &limitErr) {
		t.Fatalf("LastFlushErr after read-triggered flush = %v, want the LimitError", err)
	}

	// Add keeps buffering (nothing lost, nothing silently dropped).
	if err := h.Add(1); err != nil {
		t.Fatal(err)
	}
	if h.Pending() != 7 {
		t.Fatalf("Pending after Add = %d, want 7", h.Pending())
	}
}

// TestBatchingFlushSuccessClearsLastFlushErr pins the recovery side:
// a flush that goes through resets the stuck signal.
func TestBatchingFlushSuccessClearsLastFlushErr(t *testing.T) {
	ctr, err := NewCounter(WithCounterImpl(CounterAAC), WithLimit(16),
		WithProcesses(1), WithBatching(8))
	if err != nil {
		t.Fatal(err)
	}
	h := ctr.Handle(0)
	for i := 0; i < 3; i++ {
		if err := h.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if h.LastFlushErr() != nil {
		t.Fatalf("LastFlushErr after successful Flush = %v, want nil", h.LastFlushErr())
	}
	if got := h.Read(); got != 3 {
		t.Fatalf("Read = %d, want 3", got)
	}
}
