package tradeoffs

import (
	"errors"
	"sync"
	"testing"
)

func TestMaxRegisterDefaults(t *testing.T) {
	reg, err := NewMaxRegister()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Processes() != 8 || reg.Bound() != 0 {
		t.Fatalf("defaults: %d processes, bound %d", reg.Processes(), reg.Bound())
	}
	h := reg.Handle(0)
	if err := h.Write(42); err != nil {
		t.Fatal(err)
	}
	if err := h.Write(7); err != nil {
		t.Fatal(err)
	}
	if got := h.Read(); got != 42 {
		t.Fatalf("Read = %d", got)
	}
}

func TestMaxRegisterImplementations(t *testing.T) {
	impls := []struct {
		name string
		opts []Option
	}{
		{name: "algorithm-a", opts: []Option{WithMaxRegisterImpl(MaxRegisterAlgorithmA)}},
		{name: "aac", opts: []Option{WithMaxRegisterImpl(MaxRegisterAAC), WithBound(1 << 10)}},
		{name: "cas", opts: []Option{WithMaxRegisterImpl(MaxRegisterCAS)}},
		{name: "unbounded-aac", opts: []Option{WithMaxRegisterImpl(MaxRegisterUnboundedAAC)}},
	}
	for _, tt := range impls {
		t.Run(tt.name, func(t *testing.T) {
			reg, err := NewMaxRegister(append(tt.opts, WithProcesses(4))...)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for id := 0; id < 4; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := reg.Handle(id)
					for v := int64(0); v < 100; v++ {
						if err := h.Write(v*4 + int64(id)); err != nil {
							t.Error(err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if got := reg.Handle(0).Read(); got != 399 {
				t.Fatalf("final Read = %d, want 399", got)
			}
		})
	}
}

func TestMaxRegisterOptionValidation(t *testing.T) {
	if _, err := NewMaxRegister(WithMaxRegisterImpl(MaxRegisterAAC)); !errors.Is(err, ErrBoundRequired) {
		t.Fatalf("AAC without bound: %v", err)
	}
	if _, err := NewMaxRegister(WithProcesses(0)); err == nil {
		t.Fatal("0 processes accepted")
	}
	if _, err := NewMaxRegister(WithMaxRegisterImpl(MaxRegisterImpl(99))); err == nil {
		t.Fatal("unknown impl accepted")
	}
}

func TestCounterImplementations(t *testing.T) {
	impls := []struct {
		name string
		opts []Option
	}{
		{name: "farray", opts: []Option{WithCounterImpl(CounterFArray)}},
		{name: "aac", opts: []Option{WithCounterImpl(CounterAAC), WithLimit(10000)}},
		{name: "cas", opts: []Option{WithCounterImpl(CounterCAS)}},
		{name: "snapshot", opts: []Option{WithCounterImpl(CounterSnapshot), WithLimit(10000)}},
	}
	for _, tt := range impls {
		t.Run(tt.name, func(t *testing.T) {
			ctr, err := NewCounter(append(tt.opts, WithProcesses(4))...)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for id := 0; id < 4; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := ctr.Handle(id)
					for i := 0; i < 500; i++ {
						if err := h.Increment(); err != nil {
							t.Error(err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if got := ctr.Handle(0).Read(); got != 2000 {
				t.Fatalf("final Read = %d, want 2000", got)
			}
		})
	}
}

func TestCounterOptionValidation(t *testing.T) {
	if _, err := NewCounter(WithCounterImpl(CounterAAC)); !errors.Is(err, ErrLimitRequired) {
		t.Fatalf("AAC without limit: %v", err)
	}
	if _, err := NewCounter(WithCounterImpl(CounterSnapshot)); !errors.Is(err, ErrLimitRequired) {
		t.Fatalf("snapshot counter without limit: %v", err)
	}
	if _, err := NewCounter(WithCounterImpl(CounterImpl(99))); err == nil {
		t.Fatal("unknown impl accepted")
	}
}

func TestSnapshotImplementations(t *testing.T) {
	impls := []struct {
		name string
		opts []Option
	}{
		{name: "farray", opts: []Option{WithSnapshotImpl(SnapshotFArray), WithLimit(10000)}},
		{name: "afek", opts: []Option{WithSnapshotImpl(SnapshotAfek), WithLimit(10000)}},
		{name: "doublecollect", opts: []Option{WithSnapshotImpl(SnapshotDoubleCollect)}},
	}
	for _, tt := range impls {
		t.Run(tt.name, func(t *testing.T) {
			snap, err := NewSnapshot(append(tt.opts, WithProcesses(3))...)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Processes() != 3 {
				t.Fatalf("Processes = %d", snap.Processes())
			}
			if err := snap.Handle(1).Update(9); err != nil {
				t.Fatal(err)
			}
			got := snap.Handle(2).Scan()
			if len(got) != 3 || got[1] != 9 || got[0] != 0 {
				t.Fatalf("Scan = %v", got)
			}
		})
	}
}

func TestSnapshotOptionValidation(t *testing.T) {
	if _, err := NewSnapshot(); !errors.Is(err, ErrLimitRequired) {
		t.Fatalf("default f-array snapshot without limit: %v", err)
	}
	if _, err := NewSnapshot(WithSnapshotImpl(SnapshotImpl(99))); err == nil {
		t.Fatal("unknown impl accepted")
	}
}

func TestStepCounting(t *testing.T) {
	reg, err := NewMaxRegister(WithProcesses(2), WithStepCounting())
	if err != nil {
		t.Fatal(err)
	}
	h := reg.Handle(0)
	h.Read()
	if got := h.Steps(); got != 1 {
		t.Fatalf("Steps after one Read = %d (Algorithm A reads are 1 step)", got)
	}
	if err := h.Write(100); err != nil {
		t.Fatal(err)
	}
	if got := h.Steps(); got <= 1 {
		t.Fatalf("Steps after Write = %d", got)
	}

	// Without counting, Steps reports 0.
	plain, err := NewMaxRegister(WithProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	ph := plain.Handle(0)
	ph.Read()
	if got := ph.Steps(); got != 0 {
		t.Fatalf("uncounted Steps = %d", got)
	}
}

func TestTradeoffHeadline(t *testing.T) {
	// The library's reason to exist, visible through the public API:
	// Algorithm A reads in 1 step where AAC pays log M, and AAC writes in
	// log M steps where Algorithm A pays more only up to a constant.
	const bound = 1 << 10
	algA, err := NewMaxRegister(WithProcesses(4), WithBound(bound), WithStepCounting())
	if err != nil {
		t.Fatal(err)
	}
	aac, err := NewMaxRegister(WithProcesses(4), WithBound(bound),
		WithMaxRegisterImpl(MaxRegisterAAC), WithStepCounting())
	if err != nil {
		t.Fatal(err)
	}

	ha, hb := algA.Handle(0), aac.Handle(0)
	if err := ha.Write(bound - 1); err != nil {
		t.Fatal(err)
	}
	if err := hb.Write(bound - 1); err != nil {
		t.Fatal(err)
	}

	readSteps := func(h *MaxRegisterHandle) int64 {
		before := h.Steps()
		h.Read()
		return h.Steps() - before
	}
	a, b := readSteps(ha), readSteps(hb)
	if a != 1 {
		t.Fatalf("Algorithm A read = %d steps", a)
	}
	if b <= a {
		t.Fatalf("AAC read = %d steps; expected > 1", b)
	}
}
