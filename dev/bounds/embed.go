// Package boundsdata embeds the committed certified-bound table
// (tradeoffs/bounds/v1), the machine-readable output of
//
//	go run ./cmd/tradeoffvet -bounds -format json -out dev/bounds/bounds.json ./...
//
// Regenerate with `make bounds-json`; the lint job fails when the file
// is stale relative to the //tradeoffvet:bound annotations in source.
// The runtime conformance layer (internal/obs/bounds) parses this blob
// as its default table, so `WithObservability` picks up certified bounds
// with no configuration.
package boundsdata

import _ "embed"

// JSON is the raw tradeoffs/bounds/v1 document.
//
//go:embed bounds.json
var JSON []byte
