module github.com/restricteduse/tradeoffs

go 1.22
