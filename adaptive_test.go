package tradeoffs

import (
	"errors"
	"sync"
	"testing"
)

func TestCounterShardedFacade(t *testing.T) {
	ctr, err := NewCounter(WithCounterImpl(CounterSharded), WithProcesses(4))
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Impl() != CounterSharded {
		t.Fatalf("Impl = %d, want CounterSharded", ctr.Impl())
	}
	var wg sync.WaitGroup
	const opsPer = 500
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := ctr.Handle(p)
			for i := 0; i < opsPer; i++ {
				if err := h.Increment(); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if got := ctr.Handle(0).Read(); got != 4*opsPer {
		t.Fatalf("Read = %d, want %d", got, 4*opsPer)
	}
}

func TestCounterShardedRejectsLimit(t *testing.T) {
	_, err := NewCounter(WithCounterImpl(CounterSharded), WithLimit(100))
	if !errors.Is(err, ErrLimitUnsupported) {
		t.Fatalf("CounterSharded with WithLimit: err = %v, want ErrLimitUnsupported", err)
	}
}

func TestCounterShardedStepCountingAndBatching(t *testing.T) {
	// The sharded backend must compose with the same seams the flat ones
	// do: step counting and batching ride the handle, not the impl.
	ctr, err := NewCounter(
		WithCounterImpl(CounterSharded),
		WithProcesses(2),
		WithStepCounting(),
		WithBatching(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	h := ctr.Handle(0)
	for i := 0; i < 3; i++ {
		if err := h.Increment(); err != nil {
			t.Fatal(err)
		}
	}
	if h.Steps() != 0 {
		t.Fatalf("buffered increments issued %d steps, want 0", h.Steps())
	}
	if h.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", h.Pending())
	}
	if got := h.Read(); got != 3 {
		t.Fatalf("Read = %d, want 3 (flush-on-read)", got)
	}
	if h.Steps() == 0 {
		t.Fatal("flush + read issued 0 steps")
	}
}

// TestDefaultAdaptivePolicy pins the policy's regimes as a pure function of
// the observation (hardware-independent: the observation is constructed,
// not measured).
func TestDefaultAdaptivePolicy(t *testing.T) {
	cases := []struct {
		name string
		obs  BackendObservation
		want BackendChoice
	}{
		{
			name: "read-heavy stays flat",
			obs:  BackendObservation{Processes: 8, GoMaxProcs: 8, Reads: 900, Updates: 100},
			want: BackendChoice{Impl: CounterCAS},
		},
		{
			name: "measured contention goes sharded",
			obs:  BackendObservation{Processes: 8, GoMaxProcs: 8, CASAttempts: 10000, CASFailures: 2000, Reads: 10, Updates: 990},
			want: BackendChoice{Impl: CounterSharded},
		},
		{
			name: "contention on one core stays flat",
			obs:  BackendObservation{Processes: 8, GoMaxProcs: 1, CASAttempts: 10000, CASFailures: 2000, Reads: 10, Updates: 990},
			want: BackendChoice{Impl: CounterCAS},
		},
		{
			name: "single-process update-heavy batches",
			obs:  BackendObservation{Processes: 1, GoMaxProcs: 8, Reads: 10, Updates: 990},
			want: BackendChoice{Impl: CounterCAS, BatchWindow: 8},
		},
		{
			name: "no history with parallel writers provisions sharded",
			obs:  BackendObservation{Processes: 4, GoMaxProcs: 4},
			want: BackendChoice{Impl: CounterSharded},
		},
		{
			name: "no history on one core stays flat",
			obs:  BackendObservation{Processes: 4, GoMaxProcs: 1},
			want: BackendChoice{Impl: CounterCAS},
		},
		{
			name: "uncontended update-heavy multiprocess stays flat",
			obs:  BackendObservation{Processes: 4, GoMaxProcs: 4, CASAttempts: 10000, CASFailures: 10, Reads: 100, Updates: 900},
			want: BackendChoice{Impl: CounterCAS},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := DefaultAdaptivePolicy(tc.obs); got != tc.want {
				t.Fatalf("DefaultAdaptivePolicy(%+v) = %+v, want %+v", tc.obs, got, tc.want)
			}
		})
	}
}

func TestObservationAccessors(t *testing.T) {
	o := BackendObservation{CASAttempts: 100, CASFailures: 25, Reads: 30, Updates: 10}
	if got := o.CASFailureRate(); got != 0.25 {
		t.Fatalf("CASFailureRate = %v, want 0.25", got)
	}
	if got := o.ReadFraction(); got != 0.75 {
		t.Fatalf("ReadFraction = %v, want 0.75", got)
	}
	if got := o.Samples(); got != 40 {
		t.Fatalf("Samples = %v, want 40", got)
	}
	var zero BackendObservation
	if zero.CASFailureRate() != 0 || zero.ReadFraction() != 0 || zero.Samples() != 0 {
		t.Fatal("zero observation must report zero rates")
	}
}

func TestWithAdaptiveBackendResolvesImpl(t *testing.T) {
	var seen BackendObservation
	policy := func(o BackendObservation) BackendChoice {
		seen = o
		return BackendChoice{Impl: CounterSharded}
	}
	ctr, err := NewCounter(WithAdaptiveBackend(policy), WithProcesses(3))
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Impl() != CounterSharded {
		t.Fatalf("Impl = %d, want CounterSharded", ctr.Impl())
	}
	if seen.Processes != 3 {
		t.Fatalf("policy saw Processes = %d, want 3", seen.Processes)
	}
	if seen.GoMaxProcs < 1 {
		t.Fatalf("policy saw GoMaxProcs = %d, want >= 1", seen.GoMaxProcs)
	}
	if seen.Samples() != 0 {
		t.Fatalf("policy saw %d samples without observability, want 0", seen.Samples())
	}

	// Zero Impl keeps the configured implementation; BatchWindow rewrites
	// the batching window.
	ctr, err = NewCounter(
		WithAdaptiveBackend(func(BackendObservation) BackendChoice {
			return BackendChoice{BatchWindow: 16}
		}),
		WithCounterImpl(CounterCAS),
	)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Impl() != CounterCAS {
		t.Fatalf("Impl = %d, want CounterCAS (zero Impl keeps config)", ctr.Impl())
	}
	if ctr.BatchWindow() != 16 {
		t.Fatalf("BatchWindow = %d, want 16", ctr.BatchWindow())
	}
}

// TestWithAdaptiveBackendSeesLiveUsage drives one counter through a
// read-heavy workload and checks the next construction's policy sees that
// history through the shared registry.
func TestWithAdaptiveBackendSeesLiveUsage(t *testing.T) {
	o := NewObservability()
	first, err := NewCounter(
		WithObservability(o),
		WithCounterImpl(CounterCAS),
		WithProcesses(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	h := first.Handle(0)
	for i := 0; i < 20; i++ {
		if err := h.Increment(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		h.Read()
	}

	var seen BackendObservation
	_, err = NewCounter(
		WithObservability(o),
		WithAdaptiveBackend(func(obs BackendObservation) BackendChoice {
			seen = obs
			return BackendChoice{Impl: CounterCAS}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if seen.Reads != 80 {
		t.Fatalf("policy saw %d reads, want 80", seen.Reads)
	}
	if seen.Updates != 20 {
		t.Fatalf("policy saw %d updates, want 20", seen.Updates)
	}
	if seen.CASAttempts < 20 {
		t.Fatalf("policy saw %d CAS attempts, want >= 20 (one per increment)", seen.CASAttempts)
	}
	if DefaultAdaptivePolicy(seen).Impl != CounterCAS {
		t.Fatalf("default policy on a read-heavy history picked %d, want CounterCAS", DefaultAdaptivePolicy(seen).Impl)
	}

	// A nil policy is the default policy.
	ctr, err := NewCounter(WithObservability(o), WithAdaptiveBackend(nil))
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Impl() != CounterCAS {
		t.Fatalf("nil policy on read-heavy history: Impl = %d, want CounterCAS", ctr.Impl())
	}
}
