package tradeoffs

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/consensus"
	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/obs/flight"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Consensus is an N-process, obstruction-free, restricted-use consensus
// object built from read/write registers (rounds of commit-adopt), with an
// Algorithm A max register publishing the contention level. Construct with
// NewConsensus; access through per-process Handles.
//
// Proposals are positive int64s below 2^61. Every successful Propose
// returns the same value (agreement), which is some caller's proposal
// (validity). Under extreme contention a Propose can exhaust the
// construction-time round budget (WithLimit) and return
// ErrRoundsExhausted; retry with backoff.
type Consensus struct {
	impl      *consensus.Consensus
	processes int
	counting  bool
	col       *obs.Collector
	ftap      *flight.Tap
}

// ErrRoundsExhausted is returned by Propose when contention outlasts the
// round budget.
var ErrRoundsExhausted = consensus.ErrRoundsExhausted

// NewConsensus builds a consensus object. WithLimit sets the round budget
// (default 1024).
func NewConsensus(opts ...Option) (*Consensus, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	rounds := c.limit
	if rounds == 0 {
		rounds = 1024
	}
	pool := primitive.NewPadded()
	impl, err := consensus.NewConsensus(pool, c.processes, int(rounds))
	if err != nil {
		return nil, fmt.Errorf("tradeoffs: %w", err)
	}
	col, name, tap, err := registerObsAndFlight(c, "consensus", pool)
	if err != nil {
		return nil, err
	}
	implKey, params := consensusBoundKey(impl, c.processes)
	if err := applyOpBounds(c, col, "consensus", name, implKey, consensusBoundSpecs, params); err != nil {
		return nil, err
	}
	return &Consensus{impl: impl, processes: c.processes, counting: c.counting, col: col, ftap: tap}, nil
}

// Processes returns the number of process slots.
func (c *Consensus) Processes() int { return c.processes }

// Handle returns process id's access handle. Handle panics if id is outside
// [0, Processes()) — see checkHandleID.
func (c *Consensus) Handle(id int) *ConsensusHandle {
	checkHandleID("Consensus", id, c.processes)
	h := &ConsensusHandle{cons: c.impl, handle: newHandle(id, c.counting, c.col, c.ftap)}
	if c.col != nil {
		h.opPropose = c.col.Op("propose")
	}
	return h
}

// ConsensusHandle is a per-process capability to a Consensus.
type ConsensusHandle struct {
	handle

	cons      *consensus.Consensus
	opPropose *obs.Op
}

// Propose submits v and returns the agreed value.
func (h *ConsensusHandle) Propose(v int64) (int64, error) {
	tok := h.beginFlight()
	var (
		agreed int64
		err    error
	)
	if h.inst == nil {
		agreed, err = h.cons.Propose(h.ctx, v)
	} else {
		sp := h.opPropose.Begin(h.inst)
		agreed, err = h.cons.Propose(h.ctx, v)
		sp.End()
	}
	if err != nil {
		// An exhausted round budget decides nothing: drop the record.
		h.abortFlight(tok)
		return agreed, err
	}
	h.endFlight(tok, history.KindPropose, v, agreed)
	return agreed, nil
}

// Decided returns the agreed value, or 0 if none yet (one step).
func (h *ConsensusHandle) Decided() int64 {
	return h.cons.Decided(h.ctx)
}

// ContentionRounds reports the highest consensus round any process reached
// without committing (one step, via the Algorithm A round tracker).
func (h *ConsensusHandle) ContentionRounds() int64 {
	return h.cons.HighRound(h.ctx)
}
