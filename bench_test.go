package tradeoffs

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/bench"
)

// benchSeed roots every per-process random source, so a benchmark's value
// schedule is identical run to run (the bench-json harness fixes its seed
// the same way). Each process offsets the seed by its id to decorrelate.
const benchSeed int64 = 20260805

// The E1-E5/E7 benchmarks regenerate the EXPERIMENTS.md tables (shapes, not
// wall-clock: the interesting output is the custom metrics). E6 measures
// real multicore throughput of the public API.

func reportTables(b *testing.B, tables []*bench.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
}

func BenchmarkE1CounterTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.E1CounterTradeoff([]int{16, 64})
		reportTables(b, tables, err)
	}
}

func BenchmarkE2SnapshotTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.E2SnapshotTradeoff([]int{16, 64})
		reportTables(b, tables, err)
	}
}

func BenchmarkE3MaxRegAdversary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.E3MaxRegAdversary([]int{128, 256})
		reportTables(b, tables, err)
	}
}

func BenchmarkE4AlgorithmASteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.E4AlgorithmASteps([]int{64, 1024}, 1024,
			[]int64{1, 16, 256, 1023, 1024, 1 << 20})
		reportTables(b, tables, err)
	}
}

func BenchmarkE5Compare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.E5Compare([]int{16, 64})
		reportTables(b, tables, err)
	}
}

func BenchmarkE7Lemma1Growth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.E7Lemma1Growth(64)
		reportTables(b, tables, err)
	}
}

// --- E6: real-goroutine throughput of the public API ---

const benchProcs = 512

func maxRegisterVariants(b *testing.B) map[string]*MaxRegister {
	b.Helper()
	out := make(map[string]*MaxRegister, 3)
	for name, opts := range map[string][]Option{
		"algorithm-a":   {WithMaxRegisterImpl(MaxRegisterAlgorithmA)},
		"aac":           {WithMaxRegisterImpl(MaxRegisterAAC), WithBound(1 << 20)},
		"unbounded-aac": {WithMaxRegisterImpl(MaxRegisterUnboundedAAC)},
		"cas":           {WithMaxRegisterImpl(MaxRegisterCAS)},
	} {
		reg, err := NewMaxRegister(append(opts, WithProcesses(benchProcs))...)
		if err != nil {
			b.Fatal(err)
		}
		out[name] = reg
	}
	return out
}

func BenchmarkE6MaxRegisterRead(b *testing.B) {
	for name, reg := range maxRegisterVariants(b) {
		b.Run(name, func(b *testing.B) {
			if err := reg.Handle(0).Write(12345); err != nil {
				b.Fatal(err)
			}
			var nextID atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				h := reg.Handle(int(nextID.Add(1)) % benchProcs)
				for pb.Next() {
					h.Read()
				}
			})
		})
	}
}

func BenchmarkE6MaxRegisterWrite(b *testing.B) {
	for name, reg := range maxRegisterVariants(b) {
		b.Run(name, func(b *testing.B) {
			var nextID atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				id := int(nextID.Add(1)) % benchProcs
				h := reg.Handle(id)
				rng := rand.New(rand.NewSource(benchSeed + int64(id)))
				for pb.Next() {
					if err := h.Write(rng.Int63n(1 << 20)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkE6MaxRegisterMixed(b *testing.B) {
	// 95% reads / 5% monotone writes: the watermark-tracking workload the
	// paper's O(1)-read side is built for.
	for name, reg := range maxRegisterVariants(b) {
		b.Run(name, func(b *testing.B) {
			var nextID atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				id := int(nextID.Add(1)) % benchProcs
				h := reg.Handle(id)
				rng := rand.New(rand.NewSource(benchSeed + int64(id)))
				for pb.Next() {
					if rng.Intn(20) == 0 {
						if err := h.Write(rng.Int63n(1 << 20)); err != nil {
							b.Fatal(err)
						}
					} else {
						h.Read()
					}
				}
			})
		})
	}
}

// counterVariants builds counters for throughput benchmarking. The AAC
// counter is excluded from the unbounded increment benchmark: it is a
// restricted-use object whose memory is Theta(N * limit) registers, so
// "increment forever" is outside its specification (its exact increment
// step cost is measured in experiment E5 instead). It appears in the read
// benchmark with a small limit.
func counterVariants(b *testing.B, withAAC bool) map[string]*Counter {
	b.Helper()
	opts := map[string][]Option{
		"farray": {WithCounterImpl(CounterFArray)},
		"cas":    {WithCounterImpl(CounterCAS)},
	}
	if withAAC {
		opts["aac"] = []Option{WithCounterImpl(CounterAAC), WithLimit(4096)}
	}
	out := make(map[string]*Counter, len(opts))
	for name, o := range opts {
		ctr, err := NewCounter(append(o, WithProcesses(benchProcs))...)
		if err != nil {
			b.Fatal(err)
		}
		out[name] = ctr
	}
	return out
}

func BenchmarkE6CounterIncrement(b *testing.B) {
	for name, ctr := range counterVariants(b, false /* withAAC */) {
		b.Run(name, func(b *testing.B) {
			var nextID atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				h := ctr.Handle(int(nextID.Add(1)) % benchProcs)
				for pb.Next() {
					if err := h.Increment(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkE6CounterAdd(b *testing.B) {
	// The WithBatching amortization sweep: identical f-array counter and
	// schedule of logical increments, coalescing window varied. w1 is
	// batching off (every Add propagates); larger windows propagate once
	// per window, so ns/op should fall roughly linearly until the local
	// buffering cost dominates.
	for _, window := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("farray-w%d", window), func(b *testing.B) {
			ctr, err := NewCounter(WithCounterImpl(CounterFArray),
				WithProcesses(benchProcs), WithBatching(window))
			if err != nil {
				b.Fatal(err)
			}
			var nextID atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				h := ctr.Handle(int(nextID.Add(1)) % benchProcs)
				for pb.Next() {
					if err := h.Add(1); err != nil {
						b.Fatal(err)
					}
				}
				if err := h.Flush(); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

func BenchmarkE6CounterRead(b *testing.B) {
	for name, ctr := range counterVariants(b, true /* withAAC */) {
		b.Run(name, func(b *testing.B) {
			if err := ctr.Handle(0).Increment(); err != nil {
				b.Fatal(err)
			}
			var nextID atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				h := ctr.Handle(int(nextID.Add(1)) % benchProcs)
				for pb.Next() {
					h.Read()
				}
			})
		})
	}
}

// snapshotOptions lists the snapshot variants; restricted-use budgets are
// sized per benchmark run from b.N (snapshots retain immutable views, so an
// "update forever" benchmark is outside their specification — the budget
// makes the run's memory explicit instead).
const benchSnapSegments = 16

func snapshotOptions() map[string][]Option {
	return map[string][]Option{
		"farray":        {WithSnapshotImpl(SnapshotFArray)},
		"afek":          {WithSnapshotImpl(SnapshotAfek)},
		"doublecollect": {WithSnapshotImpl(SnapshotDoubleCollect)},
	}
}

func newBenchSnapshot(b *testing.B, opts []Option, budget int64) *Snapshot {
	b.Helper()
	snap, err := NewSnapshot(append(opts,
		WithProcesses(benchSnapSegments),
		WithLimit(budget),
	)...)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

func BenchmarkE6SnapshotScan(b *testing.B) {
	for name, opts := range snapshotOptions() {
		b.Run(name, func(b *testing.B) {
			snap := newBenchSnapshot(b, opts, 1024)
			if err := snap.Handle(0).Update(1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var nextID atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				h := snap.Handle(int(nextID.Add(1)) % benchSnapSegments)
				for pb.Next() {
					h.Scan()
				}
			})
		})
	}
}

func BenchmarkE6ConsensusDecidedRead(b *testing.B) {
	// The post-decision fast path: one register read. (A small round
	// budget keeps construction cheap; reads never touch the rounds.)
	c, err := NewConsensus(WithProcesses(benchProcs), WithLimit(8))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Handle(0).Propose(7); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var nextID atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		h := c.Handle(int(nextID.Add(1)) % benchProcs)
		for pb.Next() {
			if h.Decided() != 7 {
				b.Fail()
			}
		}
	})
}

func BenchmarkE6ConsensusPropose(b *testing.B) {
	// Uncontended propose latency on fresh instances (contended propose
	// is inherently unbounded — obstruction freedom). Instance setup is
	// excluded via the timer.
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := NewConsensus(WithProcesses(4), WithLimit(4))
		if err != nil {
			b.Fatal(err)
		}
		h := c.Handle(0)
		b.StartTimer()
		if _, err := h.Propose(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6SnapshotUpdate(b *testing.B) {
	for name, opts := range snapshotOptions() {
		b.Run(name, func(b *testing.B) {
			snap := newBenchSnapshot(b, opts, int64(b.N)+benchSnapSegments+1)
			b.ResetTimer()
			var nextID atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				id := int(nextID.Add(1)) % benchSnapSegments
				h := snap.Handle(id)
				v := int64(0)
				for pb.Next() {
					v++
					if err := h.Update(v); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
