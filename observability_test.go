package tradeoffs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestObservabilityEndToEnd drives instrumented objects concurrently and
// checks the scraped /metrics output reflects the workload.
func TestObservabilityEndToEnd(t *testing.T) {
	o := NewObservability()

	ctr, err := NewCounter(WithProcesses(4), WithObservability(o), WithName("hits"))
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMaxRegister(WithProcesses(2), WithObservability(o)) // auto-named maxreg#0
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := ctr.Handle(p)
			for i := 0; i < 50; i++ {
				if err := h.Increment(); err != nil {
					t.Error(err)
					return
				}
				h.Read()
			}
		}(p)
	}
	wg.Wait()
	if err := mr.Handle(0).Write(9); err != nil {
		t.Fatal(err)
	}
	if v := mr.Handle(1).Read(); v != 9 {
		t.Fatalf("Read = %d, want 9", v)
	}

	rec := httptest.NewRecorder()
	o.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		`tradeoffs_op_steps_count{object="hits",op="increment"} 200`,
		`tradeoffs_op_steps_count{object="hits",op="read"} 200`,
		`tradeoffs_op_steps_count{object="maxreg#0",op="write"} 1`,
		`tradeoffs_op_steps_count{object="maxreg#0",op="read"} 1`,
		`tradeoffs_register_accesses_total{object="hits"`,
		`tradeoffs_op_latency_seconds_bucket{object="hits",op="increment"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// The counter value must be untouched by instrumentation.
	if got := ctr.Handle(0).Read(); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}

func TestObservabilityDuplicateNameRejected(t *testing.T) {
	o := NewObservability()
	if _, err := NewCounter(WithObservability(o), WithName("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSnapshot(WithObservability(o), WithName("x")); err == nil {
		t.Fatal("duplicate object name accepted")
	}
}

func TestWithNameWithoutObservabilityIsHarmless(t *testing.T) {
	ctr, err := NewCounter(WithName("ignored"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctr.Handle(0).Increment(); err != nil {
		t.Fatal(err)
	}
}

// TestObservabilityComposesWithStepCounting checks the instrumented wrapper
// preserves the step-counting facade feature it stacks under.
func TestObservabilityComposesWithStepCounting(t *testing.T) {
	o := NewObservability()
	ctr, err := NewCounter(WithProcesses(2), WithStepCounting(), WithObservability(o))
	if err != nil {
		t.Fatal(err)
	}
	h := ctr.Handle(0)
	if err := h.Increment(); err != nil {
		t.Fatal(err)
	}
	if h.Steps() == 0 {
		t.Fatal("step counting lost under instrumentation")
	}

	rec := httptest.NewRecorder()
	o.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `tradeoffs_op_steps_count{object="counter#0",op="increment"} 1`) {
		t.Fatalf("instrumentation lost under step counting:\n%s", rec.Body.String())
	}
}
