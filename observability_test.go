package tradeoffs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestObservabilityEndToEnd drives instrumented objects concurrently and
// checks the scraped /metrics output reflects the workload.
func TestObservabilityEndToEnd(t *testing.T) {
	o := NewObservability()

	ctr, err := NewCounter(WithProcesses(4), WithObservability(o), WithName("hits"))
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMaxRegister(WithProcesses(2), WithObservability(o)) // auto-named maxreg#0
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := ctr.Handle(p)
			for i := 0; i < 50; i++ {
				if err := h.Increment(); err != nil {
					t.Error(err)
					return
				}
				h.Read()
			}
		}(p)
	}
	wg.Wait()
	if err := mr.Handle(0).Write(9); err != nil {
		t.Fatal(err)
	}
	if v := mr.Handle(1).Read(); v != 9 {
		t.Fatalf("Read = %d, want 9", v)
	}

	rec := httptest.NewRecorder()
	o.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		`tradeoffs_op_steps_count{object="hits",op="increment"} 200`,
		`tradeoffs_op_steps_count{object="hits",op="read"} 200`,
		`tradeoffs_op_steps_count{object="maxreg#0",op="write"} 1`,
		`tradeoffs_op_steps_count{object="maxreg#0",op="read"} 1`,
		`tradeoffs_register_accesses_total{object="hits"`,
		`tradeoffs_op_latency_seconds_bucket{object="hits",op="increment"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// The counter value must be untouched by instrumentation.
	if got := ctr.Handle(0).Read(); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}

func TestObservabilityDuplicateNameRejected(t *testing.T) {
	o := NewObservability()
	if _, err := NewCounter(WithObservability(o), WithName("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSnapshot(WithObservability(o), WithName("x")); err == nil {
		t.Fatal("duplicate object name accepted")
	}
}

func TestWithNameWithoutObservabilityIsHarmless(t *testing.T) {
	ctr, err := NewCounter(WithName("ignored"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctr.Handle(0).Increment(); err != nil {
		t.Fatal(err)
	}
}

// TestObservabilityComposesWithStepCounting checks the instrumented wrapper
// preserves the step-counting facade feature it stacks under.
func TestObservabilityComposesWithStepCounting(t *testing.T) {
	o := NewObservability()
	ctr, err := NewCounter(WithProcesses(2), WithStepCounting(), WithObservability(o))
	if err != nil {
		t.Fatal(err)
	}
	h := ctr.Handle(0)
	if err := h.Increment(); err != nil {
		t.Fatal(err)
	}
	if h.Steps() == 0 {
		t.Fatal("step counting lost under instrumentation")
	}

	rec := httptest.NewRecorder()
	o.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `tradeoffs_op_steps_count{object="counter#0",op="increment"} 1`) {
		t.Fatalf("instrumentation lost under step counting:\n%s", rec.Body.String())
	}
}

// TestObservabilityAutoNameSkipsTakenNames pins the naming rule both
// registries share: an explicitly named object may squat on a family#k
// name, and a later unnamed object must skip past it instead of failing
// construction (the rule FlightRecorder.tap always had).
func TestObservabilityAutoNameSkipsTakenNames(t *testing.T) {
	o := NewObservability()
	if _, err := NewCounter(WithObservability(o), WithName("counter#0")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCounter(WithObservability(o), WithName("counter#1")); err != nil {
		t.Fatal(err)
	}
	// Unnamed: the auto-assigner must skip the two squatted names and
	// land on counter#2, not error out.
	if _, err := NewCounter(WithObservability(o)); err != nil {
		t.Fatalf("unnamed counter construction failed against squatted auto-names: %v", err)
	}
	rec := httptest.NewRecorder()
	o.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, `object="counter#2"`) {
		t.Fatal("metrics lack counter#2: unnamed object did not skip to the next free auto-name")
	}
}

// TestRollbackReclaimsAutoName covers the registerObsAndFlight rollback
// path: a construction whose flight tap fails must leave both registries
// exactly as before — including the auto-name index, so the next unnamed
// object reuses the freed family#k name in both.
func TestRollbackReclaimsAutoName(t *testing.T) {
	o := NewObservability()
	f1 := NewFlightRecorder(FlightConfig{SampleEvery: 1})
	f2 := NewFlightRecorder(FlightConfig{SampleEvery: 1})

	// Link o to f1.
	if _, err := NewCounter(WithObservability(o), WithFlightRecorder(f1), WithName("linked")); err != nil {
		t.Fatal(err)
	}
	// Rolled-back construction: obs registration succeeds (auto-name
	// counter#0), then the tap fails because o is already linked to f1.
	if _, err := NewCounter(WithObservability(o), WithFlightRecorder(f2)); err == nil {
		t.Fatal("construction against a second flight recorder succeeded, want error")
	}
	// The freed name must be reusable by the next unnamed object, in the
	// observability registry and the flight recorder alike.
	if _, err := NewCounter(WithObservability(o), WithFlightRecorder(f1)); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	o.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `object="counter#0"`) {
		t.Fatal("metrics lack counter#0: rollback burned the auto-name index")
	}
	if strings.Contains(body, `object="counter#1"`) {
		t.Fatal("metrics show counter#1: the rolled-back registration left a gap")
	}
	var tapped []string
	for _, tap := range f1.Stats().Taps {
		tapped = append(tapped, tap.Object)
	}
	found := false
	for _, name := range tapped {
		if name == "counter#0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("flight taps %v lack counter#0: the two registries disagree on the reused name", tapped)
	}
}
