package bench

import (
	"os"
	"runtime"
	"strings"
)

// Host identifies the machine a report was measured on, so time-series
// points (dev/bench/data.json) are attributable: a ns/op cliff that
// coincides with a CPU-model change is a hardware event, not a code
// regression. All fields are best-effort — CPUModel is only readable on
// Linux — and the whole block is optional on read, keeping v1 and
// pre-metadata v2 documents valid.
type Host struct {
	// CPUs is runtime.NumCPU at measurement time (logical CPUs visible to
	// the process, which caps real parallelism regardless of -procs).
	CPUs int `json:"cpus"`
	// CPUModel is the first "model name" line of /proc/cpuinfo, empty when
	// unreadable (non-Linux, restricted container).
	CPUModel string `json:"cpu_model,omitempty"`
	// GoMaxProcs is runtime.GOMAXPROCS at measurement time — the parallelism
	// the Go scheduler actually granted, which on cgroup-limited CI runners
	// is often lower than CPUs. The gate warns when parallelism-sensitive
	// suites (explore, contention, dpor) were measured at 1.
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// ReadHost collects the current machine's Host block. It never fails:
// unreadable fields are left zero.
func ReadHost() *Host {
	return &Host{
		CPUs:       runtime.NumCPU(),
		CPUModel:   cpuModel(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// cpuModel extracts the first "model name" entry from /proc/cpuinfo.
// Anywhere that file does not exist (or has another layout) the model is
// simply unknown — the report stays valid without it.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}
