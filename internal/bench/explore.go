package bench

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
)

// labeled runs one exploration row under pprof labels. ExploreParallel
// spawns its worker goroutines inside the labeled region, so they inherit
// the row's labels and a -profile capture attributes samples per row.
func labeled(row string, f func() measurement) measurement {
	var m measurement
	pprof.Do(context.Background(), pprof.Labels("bench_suite", SuiteExplore, "bench_workload", row),
		func(context.Context) { m = f() })
	return m
}

// ParseWorkers parses a comma-separated worker-count list ("1,2,4,8") for
// the -workers flags of cmd/benchjson, cmd/simtrace, and cmd/tradeoff.
// Unlike the experiment sweeps' process counts, a worker count of 1 is
// meaningful (the replay-reuse ablation), so the floor is 1.
func ParseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bench: bad worker count %q (want integers >= 1)", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: empty worker list %q", s)
	}
	return out, nil
}

// This file is the `explore` bench family behind `make explore-bench`: the
// fixed reference configurations whose exhaustive exploration time the E12
// experiment (EXPERIMENTS.md) tracks across worker counts. One "op" is one
// complete execution of the simulated system, so rows report executions/sec
// directly; the seq row is the single-core reference sim.Explore and the
// w1 row is ExploreParallel with one worker — their gap isolates the replay
// reuse (recycled scaffolding + last-branch continuation) from the
// parallelism.

// ExploreConfig parameterizes RunExplore.
type ExploreConfig struct {
	// Procs is the number of simulated processes per workload (default 3).
	// The schedule tree grows factorially in Procs*Steps: keep both small.
	Procs int
	// Steps is the per-process operation count (default 4).
	Steps int
	// Workers lists the ExploreParallel worker counts to sweep
	// (default 1, 2, 4, 8).
	Workers []int
	// Budget caps complete executions per exploration (default 10,000,000).
	Budget int
	// Reduce switches every engine to dynamic partial-order reduction: the
	// seq row becomes sim.ExploreReduced and the wN rows run ExploreParallel
	// with Options.Reduce — the sweep then measures the reduced tree's
	// scaling (cmd/tradeoff -run e12 -dpor). The dedicated dpor suite
	// (RunDpor) measures reduced against unreduced instead.
	Reduce bool
}

// exploreWorkload spawns one reference configuration's programs into s,
// allocating registers from pool. Spawning is deterministic, which both
// engines require.
type exploreWorkload struct {
	name  string
	spawn func(pool *primitive.Pool, s *sim.System, procs, steps int) error
}

var exploreWorkloads = []exploreWorkload{
	// Independent writers: procs processes each writing their own register
	// steps times. No data flow between processes, so the tree is the pure
	// multinomial of interleavings — the scheduler-overhead ceiling.
	{"writers", func(pool *primitive.Pool, s *sim.System, procs, steps int) error {
		for id := 0; id < procs; id++ {
			reg := pool.New(fmt.Sprintf("w%d", id), 0)
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps; i++ {
					ctx.Write(reg, int64(i))
				}
			}); err != nil {
				return err
			}
		}
		return nil
	}},
	// Contended CAS increments on one shared register: schedules diverge on
	// CAS success/failure, so descents have variable length and the CAS
	// columns of the report are populated. Retry branching makes this tree
	// explode much faster than the writers' multinomial (2 procs at 4 steps
	// is already ~830k executions), so both dimensions are clamped.
	{"casinc", func(pool *primitive.Pool, s *sim.System, procs, steps int) error {
		if procs > 2 {
			procs = 2
		}
		if steps > 3 {
			steps = 3
		}
		reg := pool.New("shared", 0)
		for id := 0; id < procs; id++ {
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps; i++ {
					for {
						v := ctx.Read(reg)
						if ctx.CAS(reg, v, v+1) {
							break
						}
					}
				}
			}); err != nil {
				return err
			}
		}
		return nil
	}},
}

// exploreTally accumulates event-log statistics across concurrently checked
// executions.
type exploreTally struct {
	events      atomic.Int64
	casAttempts atomic.Int64
	casFailures atomic.Int64
}

func (t *exploreTally) check(s *sim.System) error {
	evs := s.Events()
	t.events.Add(int64(len(evs)))
	for _, ev := range evs {
		if ev.Kind == sim.OpCAS {
			t.casAttempts.Add(1)
			if !ev.CASOK {
				t.casFailures.Add(1)
			}
		}
	}
	return nil
}

// exploreResult folds one exploration run into a Result row.
func (t *exploreTally) result(name string, procs, execs int, m measurement) Result {
	r := Result{
		Name:        name,
		Procs:       procs,
		Ops:         int64(execs),
		NsPerOp:     float64(m.elapsed.Nanoseconds()) / float64(execs),
		StepsPerOp:  float64(t.events.Load()) / float64(execs),
		CASAttempts: t.casAttempts.Load(),
		CASFailures: t.casFailures.Load(),
		AllocsPerOp: float64(m.allocs) / float64(execs),
		BytesPerOp:  float64(m.bytes) / float64(execs),
		WallClockMS: float64(m.elapsed.Nanoseconds()) / 1e6,
		ExecsPerSec: float64(execs) / m.elapsed.Seconds(),
	}
	if r.CASAttempts > 0 {
		r.CASFailureRate = float64(r.CASFailures) / float64(r.CASAttempts)
	}
	return r
}

// RunExplore measures exhaustive schedule exploration over the reference
// workloads: one sequential sim.Explore row per workload, then one
// ExploreParallel row per requested worker count. Every row of a workload
// must visit the identical number of complete executions — a mismatch is an
// engine bug and fails the run rather than producing a silently wrong
// report.
func RunExplore(cfg ExploreConfig) (*Report, error) {
	if cfg.Procs <= 0 {
		cfg.Procs = 3
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 4
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 8}
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 10_000_000
	}

	rep := &Report{
		Schema:     ReportSchema,
		Suite:      SuiteExplore,
		Seed:       1, // explorations are exhaustive; no randomness involved
		Procs:      cfg.Procs,
		OpsPerProc: cfg.Steps,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Host:       ReadHost(),
	}

	for _, wl := range exploreWorkloads {
		wl := wl
		seqBuild := func() (*sim.System, error) {
			pool := primitive.NewPool()
			s := sim.NewSystem()
			if err := wl.spawn(pool, s, cfg.Procs, cfg.Steps); err != nil {
				return nil, err
			}
			return s, nil
		}
		parBuild := func(rec *sim.Recycler) (*sim.System, error) {
			pool := rec.Pool()
			s := rec.NewSystem()
			if err := wl.spawn(pool, s, cfg.Procs, cfg.Steps); err != nil {
				return nil, err
			}
			return s, nil
		}

		tally := new(exploreTally)
		var seqExecs int
		var runErr error
		m := labeled("explore/"+wl.name+"/seq", func() measurement {
			return measure(func() {
				if cfg.Reduce {
					seqExecs, runErr = sim.ExploreReduced(seqBuild, tally.check, cfg.Budget)
				} else {
					seqExecs, runErr = sim.Explore(seqBuild, tally.check, cfg.Budget)
				}
			})
		})
		if runErr != nil {
			return nil, fmt.Errorf("bench: explore/%s/seq: %w", wl.name, runErr)
		}
		rep.Results = append(rep.Results,
			tally.result("explore/"+wl.name+"/seq", cfg.Procs, seqExecs, m))

		for _, workers := range cfg.Workers {
			tally = new(exploreTally)
			var execs int
			m := labeled(fmt.Sprintf("explore/%s/w%d", wl.name, workers), func() measurement {
				return measure(func() {
					execs, runErr = sim.ExploreParallel(parBuild, tally.check,
						sim.Options{Workers: workers, Budget: cfg.Budget, Reduce: cfg.Reduce})
				})
			})
			if runErr != nil {
				return nil, fmt.Errorf("bench: explore/%s/w%d: %w", wl.name, workers, runErr)
			}
			if execs != seqExecs {
				return nil, fmt.Errorf("bench: explore/%s/w%d visited %d executions, sequential visited %d",
					wl.name, workers, execs, seqExecs)
			}
			rep.Results = append(rep.Results,
				tally.result(fmt.Sprintf("explore/%s/w%d", wl.name, workers), cfg.Procs, execs, m))
		}
	}

	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}

// E12ExploreScaling renders RunExplore as the E12 experiment table
// (EXPERIMENTS.md): one row per engine per workload with the speedup over
// the sequential reference. The seq-vs-w1 rows are the replay-reuse
// ablation; w1-vs-wN the parallel scaling.
func E12ExploreScaling(cfg ExploreConfig) ([]*Table, error) {
	rep, err := RunExplore(cfg)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("exhaustive exploration scaling (procs=%d steps=%d)", rep.Procs, rep.OpsPerProc)
	if cfg.Reduce {
		title = fmt.Sprintf("reduced exploration scaling (procs=%d steps=%d, sleep-set DPOR)", rep.Procs, rep.OpsPerProc)
	}
	t := &Table{
		ID:      "E12",
		Title:   title,
		Columns: []string{"workload", "engine", "executions", "wall_ms", "execs_per_sec", "speedup_vs_seq", "allocs_per_exec"},
		Notes: []string{
			"seq is the single-core reference sim.Explore; wN is ExploreParallel with N workers",
			"the seq->w1 gap isolates replay reuse (recycled scaffolding + last-branch continuation) from parallelism",
			fmt.Sprintf("measured at GOMAXPROCS=%d; on a single-core host the wN rows collapse onto w1 and the speedup is the replay-reuse ablation alone", rep.GoMaxProcs),
		},
	}
	if cfg.Reduce {
		t.Notes[0] = "seq is the single-core reduced reference sim.ExploreReduced; wN is ExploreParallel with N workers and Options.Reduce"
		t.Notes = append(t.Notes, "every engine visits the sleep-set-pruned tree (one representative per Mazurkiewicz trace class); E14 measures reduced against unreduced")
	}
	seqWall := make(map[string]float64)
	for _, r := range rep.Results {
		parts := strings.Split(r.Name, "/") // explore/<workload>/<engine>
		if len(parts) != 3 {
			continue
		}
		wl, engine := parts[1], parts[2]
		if engine == "seq" {
			seqWall[wl] = r.WallClockMS
		}
		speedup := "-"
		if base := seqWall[wl]; base > 0 {
			speedup = fmt.Sprintf("%.2fx", base/r.WallClockMS)
		}
		t.AddRow(wl, engine, r.Ops,
			fmt.Sprintf("%.1f", r.WallClockMS),
			fmt.Sprintf("%.0f", r.ExecsPerSec),
			speedup,
			fmt.Sprintf("%.1f", r.AllocsPerOp))
	}
	return []*Table{t}, nil
}
