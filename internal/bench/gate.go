package bench

import (
	"fmt"
	"io"
	"sort"
)

// This file is the thresholded regression gate behind `benchjson -gate`:
// it replaces the old informational-only CI diff with a machine-readable
// delta document and a pass/fail verdict. The philosophy mirrors the
// paper's own cost model — steps/op is the deterministic algorithmic
// signal and gets a tight default threshold, while wall-clock metrics get
// loose ones sized to the noise of the machine pair being compared (CI
// overrides them looser still; see docs/benchmarking.md).

// DeltaSchema identifies the gate's delta JSON layout; bump on
// incompatible change.
const DeltaSchema = "tradeoffs/bench-delta/v1"

// Thresholds bounds how far a fresh report may drift from its baseline
// before the gate fails. Relative fields are fractions: 0.5 allows +50%.
// A negative value disables that metric's check entirely (CI uses this for
// wall-clock metrics too noisy to gate on shared runners); zero means "no
// regression allowed".
type Thresholds struct {
	// MaxNsRegress bounds ns_per_op growth per row.
	MaxNsRegress float64 `json:"max_ns_regress"`
	// MaxStepsRegress bounds steps_per_op growth per row. Steps are the
	// paper's own cost model and are deterministic for a fixed seed and
	// GOMAXPROCS=1, so the default is tight.
	MaxStepsRegress float64 `json:"max_steps_regress"`
	// MaxAllocsRegress bounds allocs_per_op growth per row; AllocsSlack is
	// an absolute allowance on top (rows with ~0 allocs/op would otherwise
	// trip on a single stray allocation).
	MaxAllocsRegress float64 `json:"max_allocs_regress"`
	AllocsSlack      float64 `json:"allocs_slack"`
	// MinExecsRatio is the floor on execs_per_sec as a fraction of the
	// baseline (explore rows only): 0.5 fails when throughput halves.
	// Disabled when <= 0 (a ratio floor of 0 gates nothing).
	MinExecsRatio float64 `json:"min_execs_ratio"`
	// MaxFlightOverhead bounds the flight recorder's sampled-mode tax,
	// measured *within* the fresh report (flight-sampled ns/op over
	// flight-off ns/op, minus 1) — the two rows share one run and one
	// machine, so this check is meaningful even when the baseline came
	// from different hardware.
	MaxFlightOverhead float64 `json:"max_flight_overhead"`
	// MaxBoundsOverhead bounds the bound-conformance scoring tax the same
	// way: bounds-margin ns/op over bounds-off ns/op, minus 1, within the
	// fresh report.
	MaxBoundsOverhead float64 `json:"max_bounds_overhead"`
}

// DefaultThresholds is sized for like-for-like comparisons: same machine,
// same config, run-to-run wall-clock noise only.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxNsRegress:      0.50,
		MaxStepsRegress:   0.05,
		MaxAllocsRegress:  0.25,
		AllocsSlack:       0.5,
		MinExecsRatio:     0.50,
		MaxFlightOverhead: 0.25,
		MaxBoundsOverhead: 0.25,
	}
}

// MetricDelta is one gated measurement: the baseline value, the fresh
// value, the absolute limit the fresh value was held to, and the verdict.
type MetricDelta struct {
	Metric    string  `json:"metric"`
	Base      float64 `json:"base"`
	Cur       float64 `json:"cur"`
	Limit     float64 `json:"limit"`
	Regressed bool    `json:"regressed"`
}

// RowDelta is one result row's gated metrics.
type RowDelta struct {
	Name      string        `json:"name"`
	Metrics   []MetricDelta `json:"metrics"`
	Regressed bool          `json:"regressed"`
}

// Delta is the machine-readable gate verdict (`benchjson -gate -delta`).
type Delta struct {
	Schema string `json:"schema"`
	Suite  string `json:"suite,omitempty"`
	// BaseCommit/CurCommit are carried from the reports when present.
	BaseCommit string     `json:"base_commit,omitempty"`
	CurCommit  string     `json:"cur_commit,omitempty"`
	Thresholds Thresholds `json:"thresholds"`
	Rows       []RowDelta `json:"rows"`
	// Added rows are informational; Removed rows are regressions — a row
	// disappearing means the suite silently lost coverage.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
	// FlightOverhead is the fresh report's sampled-recorder tax check,
	// present when the report carries the flight-off/flight-sampled pair.
	FlightOverhead *MetricDelta `json:"flight_overhead,omitempty"`
	// BoundsOverhead is the bound-conformance scoring tax check, present
	// when the report carries the bounds-off/bounds-margin pair.
	BoundsOverhead *MetricDelta `json:"bounds_overhead,omitempty"`
	// ConfigMismatch is set (with ConfigNote explaining) when the two
	// reports measured different workload dimensions — such a comparison
	// is apples to oranges and fails the gate outright.
	ConfigMismatch bool   `json:"config_mismatch,omitempty"`
	ConfigNote     string `json:"config_note,omitempty"`
	// Warnings flag measurement conditions that weaken the verdict without
	// invalidating it — e.g. a parallelism-sensitive suite gated from a
	// single-core host. Warnings never count as regressions.
	Warnings    []string `json:"warnings,omitempty"`
	Regressions int      `json:"regressions"`
	Pass        bool     `json:"pass"`
}

// Flight-recorder row pair gated by MaxFlightOverhead.
const (
	flightOffRow     = "counter/farray/increment/flight-off"
	flightSampledRow = "counter/farray/increment/flight-sampled"
)

// Bound-conformance row pair gated by MaxBoundsOverhead.
const (
	boundsOffRow    = "counter/farray/increment/bounds-off"
	boundsMarginRow = "counter/farray/increment/bounds-margin"
)

// Gate compares cur against base under th and returns the full verdict.
// It never errors: malformed inputs belong to Report.Validate, which both
// reports are assumed to have passed.
func Gate(base, cur *Report, th Thresholds) *Delta {
	d := &Delta{
		Schema:     DeltaSchema,
		Suite:      cur.Suite,
		BaseCommit: base.Commit,
		CurCommit:  cur.Commit,
		Thresholds: th,
	}
	if note := configMismatch(base, cur); note != "" {
		d.ConfigMismatch = true
		d.ConfigNote = note
		d.Regressions++
	}
	if w := hostParallelismWarning(cur); w != "" {
		d.Warnings = append(d.Warnings, w)
	}

	baseRows := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseRows[r.Name] = r
	}
	baseV2 := base.Schema == ReportSchema
	for _, r := range cur.Results {
		b, ok := baseRows[r.Name]
		if !ok {
			d.Added = append(d.Added, r.Name)
			continue
		}
		delete(baseRows, r.Name)
		row := RowDelta{Name: r.Name}
		row.add(ceiling("ns_per_op", b.NsPerOp, r.NsPerOp, th.MaxNsRegress, 0))
		row.add(ceiling("steps_per_op", b.StepsPerOp, r.StepsPerOp, th.MaxStepsRegress, 0))
		if baseV2 {
			// v1 baselines predate the allocation columns; comparing
			// against their zero values would trip every row.
			row.add(ceiling("allocs_per_op", b.AllocsPerOp, r.AllocsPerOp, th.MaxAllocsRegress, th.AllocsSlack))
		}
		if b.ExecsPerSec > 0 && r.ExecsPerSec > 0 {
			row.add(floor("execs_per_sec", b.ExecsPerSec, r.ExecsPerSec, th.MinExecsRatio))
		}
		if row.Regressed {
			d.Regressions++
		}
		d.Rows = append(d.Rows, row)
	}
	for name := range baseRows {
		d.Removed = append(d.Removed, name)
	}
	sort.Strings(d.Removed)
	d.Regressions += len(d.Removed)

	if fo := overheadDelta(base, cur, "flight_sampled_overhead", flightOffRow, flightSampledRow, th.MaxFlightOverhead); fo != nil {
		d.FlightOverhead = fo
		if fo.Regressed {
			d.Regressions++
		}
	}
	if bo := overheadDelta(base, cur, "bounds_margin_overhead", boundsOffRow, boundsMarginRow, th.MaxBoundsOverhead); bo != nil {
		d.BoundsOverhead = bo
		if bo.Regressed {
			d.Regressions++
		}
	}

	d.Pass = d.Regressions == 0
	return d
}

// ceiling gates a grow-is-bad metric: cur must stay at or below
// base*(1+rel)+abs. rel < 0 disables the check.
func ceiling(metric string, base, cur, rel, abs float64) MetricDelta {
	m := MetricDelta{Metric: metric, Base: base, Cur: cur}
	if rel < 0 {
		return m
	}
	m.Limit = base*(1+rel) + abs
	m.Regressed = cur > m.Limit
	return m
}

// floor gates a shrink-is-bad metric: cur must stay at or above
// base*ratio. ratio <= 0 disables the check.
func floor(metric string, base, cur, ratio float64) MetricDelta {
	m := MetricDelta{Metric: metric, Base: base, Cur: cur}
	if ratio <= 0 {
		return m
	}
	m.Limit = base * ratio
	m.Regressed = cur < m.Limit
	return m
}

func (r *RowDelta) add(m MetricDelta) {
	r.Metrics = append(r.Metrics, m)
	if m.Regressed {
		r.Regressed = true
	}
}

// configMismatch describes any workload-dimension difference between the
// reports ("" when comparable). Machine attributes (gomaxprocs, host, go
// version) intentionally do not count: comparing machines is what the
// thresholds are for.
func configMismatch(base, cur *Report) string {
	if base.Suite != "" && cur.Suite != "" && base.Suite != cur.Suite {
		return fmt.Sprintf("suite %q vs %q", base.Suite, cur.Suite)
	}
	if base.Procs != cur.Procs {
		return fmt.Sprintf("procs %d vs %d", base.Procs, cur.Procs)
	}
	if base.OpsPerProc != cur.OpsPerProc {
		return fmt.Sprintf("ops_per_proc %d vs %d", base.OpsPerProc, cur.OpsPerProc)
	}
	if base.Seed != cur.Seed {
		return fmt.Sprintf("seed %d vs %d", base.Seed, cur.Seed)
	}
	return ""
}

// hostParallelismWarning flags parallelism-sensitive suites measured
// without parallelism: contention rows exist to show scaling across
// workers, and explore/dpor worker-count ablations degenerate when every
// worker shares one core. The comparison stays valid (same-machine noise
// bounds still apply), so this is a warning, never a failure — but a
// human reading the verdict should know the parallel rows measured
// time-slicing, not concurrency. Empty when the condition does not hold
// or the report predates host metadata.
func hostParallelismWarning(cur *Report) string {
	switch cur.Suite {
	case SuiteExplore, SuiteContention, SuiteDpor:
	default:
		return ""
	}
	h := cur.Host
	if h == nil {
		return ""
	}
	if h.CPUs == 1 {
		return fmt.Sprintf("suite %q gated from a single-core host (cpus=1): parallel rows measured time-slicing, not concurrency", cur.Suite)
	}
	if h.GoMaxProcs == 1 {
		return fmt.Sprintf("suite %q gated with GOMAXPROCS=1 (cpus=%d): parallel rows measured time-slicing, not concurrency", cur.Suite, h.CPUs)
	}
	return ""
}

// overheadDelta computes an on-over-off tax inside cur (and the
// baseline's own tax for reference): the ratio of onRow's ns/op over
// offRow's, the two rows sharing one run and one machine. Nil when cur
// lacks the row pair (the explore suite, trimmed runs). rel < 0 disables
// the verdict.
func overheadDelta(base, cur *Report, metric, offRow, onRow string, rel float64) *MetricDelta {
	ratio := func(rep *Report) float64 {
		var off, on float64
		for _, r := range rep.Results {
			switch r.Name {
			case offRow:
				off = r.NsPerOp
			case onRow:
				on = r.NsPerOp
			}
		}
		if off <= 0 || on <= 0 {
			return 0
		}
		return on / off
	}
	cr := ratio(cur)
	if cr == 0 {
		return nil
	}
	m := &MetricDelta{Metric: metric, Base: ratio(base), Cur: cr}
	if rel >= 0 {
		m.Limit = 1 + rel
		m.Regressed = cr > m.Limit
	}
	return m
}

// Summary renders the verdict for humans on w (the delta JSON is the
// machine-readable artifact; this is what the CI log shows).
func (d *Delta) Summary(w io.Writer) {
	verdict := "PASS"
	if !d.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "benchjson: gate %s (%d regression(s))\n", verdict, d.Regressions)
	for _, warn := range d.Warnings {
		fmt.Fprintf(w, "  ~ warning: %s\n", warn)
	}
	if d.ConfigMismatch {
		fmt.Fprintf(w, "  ! config mismatch: %s (baseline and report measure different workloads)\n", d.ConfigNote)
	}
	for _, row := range d.Rows {
		for _, m := range row.Metrics {
			if m.Regressed {
				fmt.Fprintf(w, "  ! %s: %s %.4g -> %.4g (limit %.4g)\n",
					row.Name, m.Metric, m.Base, m.Cur, m.Limit)
			}
		}
	}
	for _, name := range d.Removed {
		fmt.Fprintf(w, "  ! %s: row removed (suite lost coverage)\n", name)
	}
	for _, name := range d.Added {
		fmt.Fprintf(w, "  + %s (new row, not gated)\n", name)
	}
	if fo := d.FlightOverhead; fo != nil {
		mark := "  "
		if fo.Regressed {
			mark = "  ! "
		}
		fmt.Fprintf(w, "%sflight sampled overhead: %.3fx off (baseline %.3fx, limit %.3fx)\n",
			mark, fo.Cur, fo.Base, fo.Limit)
	}
	if bo := d.BoundsOverhead; bo != nil {
		mark := "  "
		if bo.Regressed {
			mark = "  ! "
		}
		fmt.Fprintf(w, "%sbounds margin overhead: %.3fx off (baseline %.3fx, limit %.3fx)\n",
			mark, bo.Cur, bo.Base, bo.Limit)
	}
}
