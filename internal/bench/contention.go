package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"

	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/counter/sharded"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// This file is the E13 contention sweep: the flat CAS counter against the
// elastic sharded counter across a writer-count × read-mix grid, locating
// the flat↔sharded crossover empirically. It is the real-hardware mirror
// of the paper's asymptotic claim — the flat counter is read-optimal and
// serializes writers on one cache line; the striped counter buys update
// scalability with O(stripes) reads — so the interesting output is where
// the ns/op curves cross as writers grow, and what the extra read cost is
// at each point.

// ContentionConfig parameterizes RunContention.
type ContentionConfig struct {
	// Writers lists the writer counts to sweep (default: powers of two
	// from 1 through max(8, 2*GOMAXPROCS) — past GOMAXPROCS the writers
	// oversubscribe, which still exercises preemption-driven CAS
	// interleaving on small hosts).
	Writers []int
	// OpsPerWriter is the per-writer operation count (default 20000).
	OpsPerWriter int
	// Seed feeds every per-process rand.Source (default 1).
	Seed int64
}

// DefaultContentionWriters returns the default sweep axis.
func DefaultContentionWriters() []int {
	max := 2 * runtime.GOMAXPROCS(0)
	if max < 8 {
		max = 8
	}
	var ws []int
	for w := 1; w <= max; w *= 2 {
		ws = append(ws, w)
	}
	return ws
}

// contentionImpls builds the two counters under comparison on fresh
// padded pools.
func contentionImpls(writers int) (map[string]counter.Counter, error) {
	flat, err := counter.NewCAS(primitive.NewPadded(), 0)
	if err != nil {
		return nil, err
	}
	// One extra slot: reads in the mixed workload come from the writers
	// themselves, but the sharded elasticity state is per-process, so the
	// constructor needs the exact process count.
	striped, err := sharded.New(primitive.NewPadded(), writers, sharded.Config{})
	if err != nil {
		return nil, err
	}
	return map[string]counter.Counter{"cas": flat, "sharded": striped}, nil
}

// RunContention executes the sweep and returns its report. Row names are
// contention/<impl>/w<writers>/<mix>: mix "update" is pure increments,
// mix "read1in8" interleaves one Read per eight operations on every
// writer. Report.Procs records the largest writer count (the sweep's
// ceiling); each row's Procs is its own writer count.
func RunContention(cfg ContentionConfig) (*Report, error) {
	if len(cfg.Writers) == 0 {
		cfg.Writers = DefaultContentionWriters()
	}
	if cfg.OpsPerWriter <= 0 {
		cfg.OpsPerWriter = 20000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	maxWriters := 0
	for _, w := range cfg.Writers {
		if w < 1 {
			return nil, fmt.Errorf("bench: contention writer count %d < 1", w)
		}
		if w > maxWriters {
			maxWriters = w
		}
	}

	rep := &Report{
		Schema:     ReportSchema,
		Suite:      SuiteContention,
		Seed:       cfg.Seed,
		Procs:      maxWriters,
		OpsPerProc: cfg.OpsPerWriter,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Host:       ReadHost(),
	}
	ops := int64(cfg.OpsPerWriter)

	for _, writers := range cfg.Writers {
		impls, err := contentionImpls(writers)
		if err != nil {
			return nil, err
		}
		for _, implName := range []string{"cas", "sharded"} {
			c := impls[implName]
			for _, mix := range []struct {
				name  string
				every int64 // one Read per this many ops; 0 = never
			}{
				{"update", 0},
				{"read1in8", 8},
			} {
				name := fmt.Sprintf("contention/%s/w%d/%s", implName, writers, mix.name)
				every := mix.every
				m, err := runParallelIn(SuiteContention, name, writers, ops, cfg.Seed, nil,
					func(ctx primitive.Context, _ int, _ *rand.Rand, i int64) error {
						if every > 0 && i%every == 0 {
							c.Read(ctx)
							return nil
						}
						return c.Increment(ctx)
					})
				if err != nil {
					return nil, err
				}
				rep.Results = append(rep.Results, result(name, writers, ops*int64(writers), m))
			}
		}
	}

	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}

// Crossover scans a contention report for the smallest writer count at
// which the sharded counter's pure-update ns/op beats the flat CAS
// counter's, returning 0 if it never does. The EXPERIMENTS.md E13 table
// and the dashboard annotation both read it.
func Crossover(rep *Report) int {
	type pair struct{ cas, sharded float64 }
	byWriters := make(map[int]*pair)
	var order []int
	at := func(w int) *pair {
		if byWriters[w] == nil {
			byWriters[w] = &pair{}
			order = append(order, w)
		}
		return byWriters[w]
	}
	for _, r := range rep.Results {
		var w int
		if _, err := fmt.Sscanf(r.Name, "contention/cas/w%d/update", &w); err == nil {
			at(w).cas = r.NsPerOp
		} else if _, err := fmt.Sscanf(r.Name, "contention/sharded/w%d/update", &w); err == nil {
			at(w).sharded = r.NsPerOp
		}
	}
	crossover := 0
	for _, w := range order {
		p := byWriters[w]
		if p.cas > 0 && p.sharded > 0 && p.sharded < p.cas {
			if crossover == 0 || w < crossover {
				crossover = w
			}
		}
	}
	return crossover
}

// runParallelIn is runParallel with an explicit pprof bench_suite label
// (runParallel itself predates multi-suite labeling and pins
// SuiteThroughput). pool may be nil when no register heatmap is wanted.
func runParallelIn(suite, name string, procs int, ops, seed int64, pool *primitive.Pool,
	op func(ctx primitive.Context, id int, rng *rand.Rand, i int64) error) (measurement, error) {

	col := obs.NewCollector(procs, pool)
	ctxs := make([]*obs.Instrumented, procs)
	for id := range ctxs {
		ctxs[id] = col.Context(id, primitive.NewDirect(id))
	}

	var (
		start = make(chan struct{})
		first error
		m     measurement
	)
	pprof.Do(context.Background(), pprof.Labels("bench_suite", suite, "bench_workload", name),
		func(context.Context) {
			done := make(chan error, procs)
			for id := 0; id < procs; id++ {
				go func(id int) {
					rng := rand.New(rand.NewSource(seed + int64(id)))
					ctx := ctxs[id]
					<-start
					for i := int64(0); i < ops; i++ {
						if err := op(ctx, id, rng, i); err != nil {
							done <- fmt.Errorf("process %d op %d: %w", id, i, err)
							return
						}
					}
					done <- nil
				}(id)
			}
			m = measure(func() {
				close(start)
				for i := 0; i < procs; i++ {
					if err := <-done; err != nil && first == nil {
						first = err
					}
				}
			})
		})
	m.stats = col.Snapshot()
	return m, first
}
