package bench

import (
	"strings"
	"testing"
)

func TestRunDporProducesValidReport(t *testing.T) {
	rep, err := RunDpor(DporConfig{Procs: 2, Steps: 2, Workers: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Suite != SuiteDpor {
		t.Fatalf("suite %q, want %q", rep.Suite, SuiteDpor)
	}
	if rep.Host == nil || rep.Host.GoMaxProcs < 1 {
		t.Fatalf("host block missing gomaxprocs: %+v", rep.Host)
	}
	res := indexResults(rep)
	for _, wl := range []string{"writers", "casinc", "mixed"} {
		full, ok := res["dpor/"+wl+"/full"]
		if !ok {
			t.Fatalf("missing row dpor/%s/full", wl)
		}
		reduced, ok := res["dpor/"+wl+"/reduced"]
		if !ok {
			t.Fatalf("missing row dpor/%s/reduced", wl)
		}
		if reduced.Ops > full.Ops {
			t.Errorf("%s: reduced visited %d executions, full visited %d", wl, reduced.Ops, full.Ops)
		}
		for _, w := range []string{"rw1", "rw2"} {
			par, ok := res["dpor/"+wl+"/"+w]
			if !ok {
				t.Fatalf("missing row dpor/%s/%s", wl, w)
			}
			if par.Ops != reduced.Ops {
				t.Errorf("%s/%s: parallel reduced visited %d executions, sequential reduced %d",
					wl, w, par.Ops, reduced.Ops)
			}
		}
	}
	// Independent writers collapse to a single representative execution.
	if got := res["dpor/writers/reduced"].Ops; got != 1 {
		t.Errorf("writers reduced to %d executions, want 1", got)
	}
	if res["dpor/writers/full"].Ops != 6 { // C(4,2) interleavings of 2x2 writes
		t.Errorf("writers full = %d executions, want 6", res["dpor/writers/full"].Ops)
	}
}

func TestE14DporReductionTable(t *testing.T) {
	tables, err := E14DporReduction(DporConfig{Procs: 2, Steps: 2, Workers: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "E14" {
		t.Fatalf("tables %+v, want one E14 table", tables)
	}
	tab := tables[0]
	// 3 workloads x (full + reduced + rw1).
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows, want 9", len(tab.Rows))
	}
	var sawCollapse bool
	for _, row := range tab.Rows {
		if row[0] == "writers" && row[1] == "reduced" {
			if !strings.HasSuffix(row[3], "x") {
				t.Fatalf("writers/reduced reduction column %v not a factor", row[3])
			}
			if row[3] != "6.0x" {
				t.Fatalf("writers/reduced reduction = %v, want 6.0x", row[3])
			}
			sawCollapse = true
		}
	}
	if !sawCollapse {
		t.Fatal("no writers/reduced row in E14 table")
	}
}
