package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// synthRow builds a schema-valid v2 result row.
func synthRow(name string, ns, steps, allocs float64) Result {
	return Result{
		Name:        name,
		Procs:       2,
		Ops:         100,
		NsPerOp:     ns,
		StepsPerOp:  steps,
		AllocsPerOp: allocs,
		BytesPerOp:  allocs * 16,
		WallClockMS: ns * 100 / 1e6,
	}
}

// synthReport builds a schema-valid v2 throughput report with the
// flight-overhead row pair, the raw material of the gate and series tests.
func synthReport(commit string, mutate func(*Report)) *Report {
	rep := &Report{
		Schema:     ReportSchema,
		Suite:      SuiteThroughput,
		Seed:       7,
		Procs:      2,
		OpsPerProc: 50,
		GoMaxProcs: 1,
		GoVersion:  "go1.24.0",
		Commit:     commit,
		Host:       &Host{CPUs: 1, OS: "linux", Arch: "amd64"},
		Results: []Result{
			synthRow("counter/cas/increment", 100, 4, 0),
			synthRow(flightOffRow, 400, 26, 0.1),
			synthRow(flightSampledRow, 440, 26, 0.2),
		},
	}
	if mutate != nil {
		mutate(rep)
	}
	return rep
}

func mustAppend(t *testing.T, s *Series, e SeriesEntry) {
	t.Helper()
	if err := s.Append(e); err != nil {
		t.Fatalf("Append(%s/%s): %v", e.Commit, e.Suite, err)
	}
}

func entry(commit, ts, suite string) SeriesEntry {
	rep := synthReport(commit, func(r *Report) { r.Suite = suite })
	if suite == SuiteExplore {
		// Explore reports have no flight rows but do have execs/sec.
		rep.Results = rep.Results[:1]
		rep.Results[0].ExecsPerSec = 1000
	}
	return SeriesEntry{Commit: commit, Timestamp: ts, Suite: suite, Report: rep}
}

func TestSeriesAppendOrderingAndIdempotence(t *testing.T) {
	s := NewSeries()
	// Out-of-timestamp-order appends land in chronological order.
	mustAppend(t, s, entry("bbb", "2026-08-02T00:00:00Z", SuiteThroughput))
	mustAppend(t, s, entry("aaa", "2026-08-01T00:00:00Z", SuiteThroughput))
	mustAppend(t, s, entry("ccc", "2026-08-03T00:00:00Z", SuiteExplore))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(s.Entries))
	for i, e := range s.Entries {
		got[i] = e.Commit
	}
	if strings.Join(got, ",") != "aaa,bbb,ccc" {
		t.Fatalf("order = %v", got)
	}

	// Appending the same (commit, suite) twice replaces, not duplicates,
	// and the encoded document is byte-identical afterwards.
	before, err := EncodeSeries(s)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, entry("bbb", "2026-08-02T00:00:00Z", SuiteThroughput))
	after, err := EncodeSeries(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("append-twice changed the document:\n%s\nvs\n%s", before, after)
	}

	// Replacement with fresher data keeps one entry per (commit, suite)
	// and re-sorts by the new timestamp.
	e := entry("bbb", "2026-08-04T00:00:00Z", SuiteThroughput)
	mustAppend(t, s, e)
	if len(s.Entries) != 3 {
		t.Fatalf("%d entries after replacement, want 3", len(s.Entries))
	}
	if last := s.Entries[len(s.Entries)-1]; last.Commit != "bbb" || last.Timestamp != e.Timestamp {
		t.Fatalf("replaced entry not re-sorted to the end: %+v", last)
	}

	// Same commit under the other suite is a distinct point.
	mustAppend(t, s, entry("bbb", "2026-08-05T00:00:00Z", SuiteExplore))
	if len(s.Entries) != 4 {
		t.Fatalf("%d entries, want 4 (same commit, different suite)", len(s.Entries))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAppendRejectsBadEntries(t *testing.T) {
	s := NewSeries()
	good := entry("aaa", "2026-08-01T00:00:00Z", SuiteThroughput)

	e := good
	e.Commit = ""
	if err := s.Append(e); err == nil {
		t.Error("accepted empty commit")
	}
	e = good
	e.Suite = "nope"
	if err := s.Append(e); err == nil {
		t.Error("accepted unknown suite")
	}
	e = good
	e.Timestamp = "yesterday"
	if err := s.Append(e); err == nil {
		t.Error("accepted non-RFC3339 timestamp")
	}
	e = good
	e.Report = nil
	if err := s.Append(e); err == nil {
		t.Error("accepted nil report")
	}
	e = good
	e.Report = synthReport("aaa", func(r *Report) { r.Results = nil })
	if err := s.Append(e); err == nil {
		t.Error("accepted invalid report")
	}
	if len(s.Entries) != 0 {
		t.Fatalf("rejected appends mutated the series: %d entries", len(s.Entries))
	}
}

func TestSeriesValidateRejectsCorruptDocuments(t *testing.T) {
	mk := func() *Series {
		s := NewSeries()
		mustAppend(t, s, entry("aaa", "2026-08-01T00:00:00Z", SuiteThroughput))
		mustAppend(t, s, entry("bbb", "2026-08-02T00:00:00Z", SuiteThroughput))
		return s
	}

	s := mk()
	s.Schema = "nope"
	if err := s.Validate(); err == nil {
		t.Error("accepted wrong schema")
	}
	s = mk()
	s.Entries[0], s.Entries[1] = s.Entries[1], s.Entries[0]
	if err := s.Validate(); err == nil {
		t.Error("accepted out-of-order entries")
	}
	s = mk()
	s.Entries[1].Commit = "aaa"
	s.Entries[1].Timestamp = s.Entries[0].Timestamp
	if err := s.Validate(); err == nil {
		t.Error("accepted duplicate (commit, suite)")
	}
}

func TestSeriesReadWriteRoundTripAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.json")

	// Missing file bootstraps an empty series.
	s, err := ReadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 0 || s.Schema != SeriesSchema {
		t.Fatalf("missing file read as %+v", s)
	}

	mustAppend(t, s, entry("aaa", "2026-08-01T00:00:00Z", SuiteThroughput))
	mustAppend(t, s, entry("bbb", "2026-08-02T00:00:00Z", SuiteExplore))
	if err := WriteSeries(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 {
		t.Fatalf("round trip lost entries: %d", len(back.Entries))
	}
	if got := back.Latest(SuiteThroughput); got == nil || got.Commit != "aaa" {
		t.Fatalf("Latest(throughput) = %+v", got)
	}
	if got := back.Latest(SuiteExplore); got == nil || got.Commit != "bbb" {
		t.Fatalf("Latest(explore) = %+v", got)
	}
	if got := back.Latest("nope"); got != nil {
		t.Fatalf("Latest(nope) = %+v", got)
	}
}
