package flightlive

import "testing"

// TestRunCleanWorkload runs a small live workload and asserts the monitor
// clears the repo's own implementations: one row per object family, no
// violations, and a drop rate inside the smoke bound.
func TestRunCleanWorkload(t *testing.T) {
	tables, err := Run(Config{Procs: 4, OpsPerProc: 1000, SampleEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tab := tables[0]
	if tab.ID != "FLIGHT" {
		t.Fatalf("table ID = %q", tab.ID)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows, want one per family:\n%s", len(tab.Rows), tab.Text())
	}
	families := map[string]bool{}
	for _, row := range tab.Rows {
		families[row[1]] = true
		if violated := row[len(row)-1]; violated != "false" {
			t.Fatalf("row %v reports a violation on a correct implementation", row)
		}
	}
	for _, want := range []string{"maxreg", "counter", "snapshot", "consensus"} {
		if !families[want] {
			t.Fatalf("no row for family %q:\n%s", want, tab.Text())
		}
	}
}

// TestRunExactMode exercises SampleEvery == 1: recording every operation
// of a full-speed workload is the designed overload case, so drops must
// not fail the run — they degrade checking instead.
func TestRunExactMode(t *testing.T) {
	if _, err := Run(Config{Procs: 4, OpsPerProc: 2000, SampleEvery: 1, Window: 256}); err != nil {
		t.Fatal(err)
	}
}
