// Package flightlive holds the live monitored experiment behind
// `tradeoff -flight` and `make flight-smoke`. It lives outside
// internal/bench because it drives the public facade: the root package's
// in-package benchmarks import internal/bench, so an experiment that
// imports the root package must sit in its own leaf to keep the test
// build graph acyclic.
package flightlive

import (
	"fmt"
	"math/rand"
	"sync"

	tradeoffs "github.com/restricteduse/tradeoffs"
	"github.com/restricteduse/tradeoffs/internal/bench"
)

// Config parameterizes Run.
type Config struct {
	// Procs is the process count per object (default 8).
	Procs int
	// OpsPerProc is the per-process operation count (default 20000).
	OpsPerProc int
	// SampleEvery is the recorder's sampling rate (default 64; 1 records
	// everything and enables exact-mode checking).
	SampleEvery int
	// Window is the per-(object, process) ring capacity (default 1024).
	Window int
	// Seed feeds every per-process RNG (default 1).
	Seed int64
	// MaxDropRate bounds dropped/(recorded+dropped); exceeding it fails
	// the run (default 0.25). At the default sampling rate drops mean the
	// monitor cannot keep up, so the smoke run treats a high rate as a
	// regression in the recorder itself. The bound is not enforced when
	// SampleEvery is 1: recording every operation of a full-speed
	// workload is the designed overload case, where the ring drops old
	// records and degrades checking rather than stalling the workload.
	MaxDropRate float64
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 8
	}
	if c.OpsPerProc <= 0 {
		c.OpsPerProc = 20000
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxDropRate <= 0 {
		c.MaxDropRate = 0.25
	}
	return c
}

// Run is the live monitored experiment behind `tradeoff -flight`
// and `make flight-smoke`: it drives all four object families through
// the public facade with a flight recorder attached, then tabulates the
// recorder's verdict. A detected linearizability violation — on the
// repository's own, correct implementations — or a drop rate above
// MaxDropRate fails the run.
func Run(cfg Config) ([]*bench.Table, error) {
	cfg = cfg.withDefaults()
	fr := tradeoffs.NewFlightRecorder(tradeoffs.FlightConfig{
		SampleEvery: cfg.SampleEvery,
		Window:      cfg.Window,
	})

	procs := cfg.Procs
	limit := int64(procs) * int64(cfg.OpsPerProc)
	reg, err := tradeoffs.NewMaxRegister(tradeoffs.WithFlightRecorder(fr), tradeoffs.WithProcesses(procs))
	if err != nil {
		return nil, err
	}
	ctr, err := tradeoffs.NewCounter(tradeoffs.WithFlightRecorder(fr), tradeoffs.WithProcesses(procs))
	if err != nil {
		return nil, err
	}
	snap, err := tradeoffs.NewSnapshot(tradeoffs.WithFlightRecorder(fr), tradeoffs.WithProcesses(procs), tradeoffs.WithLimit(limit))
	if err != nil {
		return nil, err
	}
	cons, err := tradeoffs.NewConsensus(tradeoffs.WithFlightRecorder(fr), tradeoffs.WithProcesses(procs))
	if err != nil {
		return nil, err
	}
	fr.Start()
	defer fr.Stop()

	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)))
			rh, ch, sh, nh := reg.Handle(p), ctr.Handle(p), snap.Handle(p), cons.Handle(p)
			if _, err := nh.Propose(int64(p) + 1); err != nil {
				fail(fmt.Errorf("flight: propose: %w", err))
				return
			}
			for i := 0; i < cfg.OpsPerProc; i++ {
				var err error
				switch rng.Intn(6) {
				case 0:
					err = rh.Write(rng.Int63n(1 << 20))
				case 1:
					rh.Read()
				case 2:
					err = ch.Add(rng.Int63n(4) + 1)
				case 3:
					ch.Read()
				case 4:
					err = sh.Update(int64(p*cfg.OpsPerProc+i) + 1)
				case 5:
					sh.Scan()
				}
				if err != nil {
					fail(fmt.Errorf("flight: process %d op %d: %w", p, i, err))
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	fr.Sync()

	st := fr.Stats()
	t := &bench.Table{
		ID:      "FLIGHT",
		Title:   fmt.Sprintf("Live flight recorder, %d procs x %d ops, sample 1/%d", procs, cfg.OpsPerProc, st.SampleEvery),
		Columns: []string{"object", "family", "recorded", "dropped", "pending", "relaxed", "violated"},
		Notes: []string{
			"recorded = operation records admitted to the online linearizability monitor",
			"relaxed = only the subset-sound checker conditions ran (sampling < 1/1 or ring drops)",
			"a violated row on these implementations would be a bug; the run fails on it",
		},
	}
	for _, tap := range st.Taps {
		t.AddRow(tap.Object, tap.Family, tap.Recorded, tap.Dropped, tap.Pending, tap.Relaxed, tap.Violated)
	}

	if st.Violations != 0 {
		vs := fr.Violations()
		return []*bench.Table{t}, fmt.Errorf("flight: monitor reported %d violation(s); first: %s: %s",
			st.Violations, vs[0].Object, vs[0].Detail)
	}
	if total := st.Recorded + st.Dropped; total > 0 && cfg.SampleEvery > 1 {
		if rate := float64(st.Dropped) / float64(total); rate > cfg.MaxDropRate {
			return []*bench.Table{t}, fmt.Errorf("flight: drop rate %.2f exceeds %.2f (monitor cannot keep up)",
				rate, cfg.MaxDropRate)
		}
	}
	return []*bench.Table{t}, nil
}
