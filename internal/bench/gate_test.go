package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func gateOne(t *testing.T, base, cur *Report, th Thresholds) *Delta {
	t.Helper()
	for _, rep := range []*Report{base, cur} {
		if err := rep.Validate(); err != nil {
			t.Fatalf("synthetic report invalid: %v", err)
		}
	}
	return Gate(base, cur, th)
}

func TestGateIdenticalReportsPass(t *testing.T) {
	base := synthReport("aaa", nil)
	cur := synthReport("bbb", nil)
	d := gateOne(t, base, cur, DefaultThresholds())
	if !d.Pass || d.Regressions != 0 {
		var buf bytes.Buffer
		d.Summary(&buf)
		t.Fatalf("identical reports failed the gate:\n%s", buf.String())
	}
	if d.BaseCommit != "aaa" || d.CurCommit != "bbb" || d.Suite != SuiteThroughput {
		t.Fatalf("delta header wrong: %+v", d)
	}
	if d.FlightOverhead == nil || d.FlightOverhead.Regressed {
		t.Fatalf("flight overhead check missing or tripped: %+v", d.FlightOverhead)
	}
}

func TestGateWarnsOnSingleCoreParallelSuite(t *testing.T) {
	// A parallelism-sensitive suite gated from a single-core host (or with
	// GOMAXPROCS forced to 1) warns without failing; throughput and reports
	// lacking host metadata stay silent.
	cases := []struct {
		name   string
		mutate func(*Report)
		warn   bool
	}{
		{"explore single core", func(r *Report) {
			r.Suite = SuiteExplore
			r.Host = &Host{CPUs: 1, GoMaxProcs: 1, OS: "linux", Arch: "amd64"}
		}, true},
		{"dpor gomaxprocs 1", func(r *Report) {
			r.Suite = SuiteDpor
			r.Host = &Host{CPUs: 8, GoMaxProcs: 1, OS: "linux", Arch: "amd64"}
		}, true},
		{"contention multicore", func(r *Report) {
			r.Suite = SuiteContention
			r.Host = &Host{CPUs: 8, GoMaxProcs: 8, OS: "linux", Arch: "amd64"}
		}, false},
		{"throughput single core", func(r *Report) {
			r.Host = &Host{CPUs: 1, GoMaxProcs: 1, OS: "linux", Arch: "amd64"}
		}, false},
		{"explore no host block", func(r *Report) {
			r.Suite = SuiteExplore
			r.Host = nil
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := synthReport("aaa", tc.mutate)
			cur := synthReport("bbb", tc.mutate)
			d := gateOne(t, base, cur, DefaultThresholds())
			if !d.Pass {
				var buf bytes.Buffer
				d.Summary(&buf)
				t.Fatalf("warning condition must never fail the gate:\n%s", buf.String())
			}
			if got := len(d.Warnings) > 0; got != tc.warn {
				t.Fatalf("warnings = %v, want warn=%v", d.Warnings, tc.warn)
			}
			var buf bytes.Buffer
			d.Summary(&buf)
			if printed := bytes.Contains(buf.Bytes(), []byte("~ warning")); printed != tc.warn {
				t.Fatalf("summary warning line = %v, want %v:\n%s", printed, tc.warn, buf.String())
			}
		})
	}
}

// findMetric returns the named metric of the named row, failing if absent.
func findMetric(t *testing.T, d *Delta, row, metric string) MetricDelta {
	t.Helper()
	for _, r := range d.Rows {
		if r.Name != row {
			continue
		}
		for _, m := range r.Metrics {
			if m.Metric == metric {
				return m
			}
		}
	}
	t.Fatalf("metric %s/%s not in delta", row, metric)
	return MetricDelta{}
}

func TestGateTripsPerMetric(t *testing.T) {
	th := DefaultThresholds()
	base := synthReport("base", nil)

	cases := []struct {
		name   string
		mutate func(*Report)
		row    string
		metric string
	}{
		{"ns regress", func(r *Report) { r.Results[0].NsPerOp = 160 }, "counter/cas/increment", "ns_per_op"},
		{"steps regress", func(r *Report) { r.Results[0].StepsPerOp = 4.5 }, "counter/cas/increment", "steps_per_op"},
		{"allocs regress", func(r *Report) { r.Results[0].AllocsPerOp = 0.7 }, "counter/cas/increment", "allocs_per_op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := synthReport("cur", tc.mutate)
			d := gateOne(t, base, cur, th)
			if d.Pass || d.Regressions != 1 {
				t.Fatalf("pass=%v regressions=%d, want a single trip", d.Pass, d.Regressions)
			}
			if m := findMetric(t, d, tc.row, tc.metric); !m.Regressed {
				t.Fatalf("%s not marked regressed: %+v", tc.metric, m)
			}
		})
	}

	// Just inside every threshold: no trip. ns +50% exactly, steps +5%
	// exactly, allocs within the absolute slack from a zero base.
	cur := synthReport("cur", func(r *Report) {
		r.Results[0].NsPerOp = 150
		r.Results[0].StepsPerOp = 4.2
		r.Results[0].AllocsPerOp = 0.4
	})
	if d := gateOne(t, base, cur, th); !d.Pass {
		var buf bytes.Buffer
		d.Summary(&buf)
		t.Fatalf("within-threshold report failed:\n%s", buf.String())
	}
}

func TestGateFlightOverheadTrip(t *testing.T) {
	base := synthReport("base", nil)
	// Sampled row drifts to 1.35x off — past the default 1.25x limit —
	// while staying inside the generic per-row ns threshold (+50%).
	cur := synthReport("cur", func(r *Report) {
		r.Results[2].NsPerOp = 540
	})
	d := gateOne(t, base, cur, DefaultThresholds())
	if d.Pass || d.FlightOverhead == nil || !d.FlightOverhead.Regressed {
		t.Fatalf("flight overhead 1.35x passed a 1.25x limit: %+v", d.FlightOverhead)
	}

	// The explore suite has no flight rows: check absent, not tripped.
	noFlight := synthReport("x", func(r *Report) { r.Results = r.Results[:1] })
	if d := gateOne(t, noFlight, noFlight, DefaultThresholds()); d.FlightOverhead != nil {
		t.Fatalf("flight overhead fabricated without the row pair: %+v", d.FlightOverhead)
	}
}

func TestGateRowChurn(t *testing.T) {
	base := synthReport("base", nil)
	cur := synthReport("cur", func(r *Report) {
		r.Results = append(r.Results[:1:1], synthRow("counter/new/increment", 50, 2, 0))
	})
	d := gateOne(t, base, cur, DefaultThresholds())
	// flight-off and flight-sampled disappeared: coverage loss fails the
	// gate; the new row is informational.
	if d.Pass || len(d.Removed) != 2 || d.Regressions != 2 {
		t.Fatalf("removed rows did not fail: pass=%v removed=%v regressions=%d",
			d.Pass, d.Removed, d.Regressions)
	}
	if len(d.Added) != 1 || d.Added[0] != "counter/new/increment" {
		t.Fatalf("added rows = %v", d.Added)
	}
}

func TestGateConfigMismatchFails(t *testing.T) {
	base := synthReport("base", nil)
	cur := synthReport("cur", func(r *Report) { r.Procs = 4; r.OpsPerProc = 25 })
	for i := range cur.Results {
		cur.Results[i].Procs = 4
	}
	d := gateOne(t, base, cur, DefaultThresholds())
	if d.Pass || !d.ConfigMismatch || d.ConfigNote == "" {
		t.Fatalf("procs mismatch passed: %+v", d)
	}

	// Suite mismatch likewise; legacy reports without a suite tag are
	// given the benefit of the doubt.
	exp := synthReport("cur", func(r *Report) { r.Suite = SuiteExplore })
	if d := gateOne(t, base, exp, DefaultThresholds()); !d.ConfigMismatch {
		t.Fatal("suite mismatch not flagged")
	}
	legacy := synthReport("base", func(r *Report) { r.Suite = "" })
	if d := gateOne(t, legacy, synthReport("cur", nil), DefaultThresholds()); d.ConfigMismatch {
		t.Fatal("legacy untagged baseline flagged as suite mismatch")
	}
}

func TestGateV1BaselineVsV2Fresh(t *testing.T) {
	// A v1 baseline (no allocation columns) still gates ns and steps, and
	// must not trip on the columns it never measured.
	base := synthReport("old", func(r *Report) {
		r.Schema = ReportSchemaV1
		r.Suite = ""
		r.Host = nil
		for i := range r.Results {
			r.Results[i].AllocsPerOp = 0
			r.Results[i].BytesPerOp = 0
			r.Results[i].WallClockMS = 0
		}
	})
	cur := synthReport("new", func(r *Report) {
		for i := range r.Results {
			r.Results[i].AllocsPerOp = 100 // would trip against a 0 baseline
		}
	})
	d := gateOne(t, base, cur, DefaultThresholds())
	if !d.Pass {
		var buf bytes.Buffer
		d.Summary(&buf)
		t.Fatalf("v1 baseline vs v2 fresh failed:\n%s", buf.String())
	}
	for _, r := range d.Rows {
		for _, m := range r.Metrics {
			if m.Metric == "allocs_per_op" {
				t.Fatalf("allocs gated against a v1 baseline: %+v", m)
			}
		}
	}

	// The same v2 fresh report against a v2 baseline does trip.
	if d := gateOne(t, synthReport("old", nil), cur, DefaultThresholds()); d.Pass {
		t.Fatal("allocs regression passed against a v2 baseline")
	}
}

func TestGateDisabledThresholds(t *testing.T) {
	th := Thresholds{
		MaxNsRegress:      -1,
		MaxStepsRegress:   -1,
		MaxAllocsRegress:  -1,
		MinExecsRatio:     -1,
		MaxFlightOverhead: -1,
	}
	base := synthReport("base", nil)
	cur := synthReport("cur", func(r *Report) {
		for i := range r.Results {
			r.Results[i].NsPerOp *= 100
			r.Results[i].StepsPerOp *= 100
			r.Results[i].AllocsPerOp += 100
		}
	})
	if d := gateOne(t, base, cur, th); !d.Pass {
		t.Fatal("fully disabled thresholds still tripped")
	}
}

func TestGateExecsFloor(t *testing.T) {
	mk := func(execs float64) *Report {
		return synthReport("x", func(r *Report) {
			r.Suite = SuiteExplore
			r.Results = r.Results[:1]
			r.Results[0].ExecsPerSec = execs
		})
	}
	d := gateOne(t, mk(1000), mk(400), DefaultThresholds())
	if d.Pass {
		t.Fatal("execs/sec at 0.4x baseline passed a 0.5x floor")
	}
	if m := findMetric(t, d, "counter/cas/increment", "execs_per_sec"); !m.Regressed {
		t.Fatalf("execs metric not regressed: %+v", m)
	}
	if d := gateOne(t, mk(1000), mk(600), DefaultThresholds()); !d.Pass {
		t.Fatal("execs/sec at 0.6x baseline failed a 0.5x floor")
	}
}

// TestDeltaGolden pins the delta JSON document byte for byte: the gate's
// output is a machine-readable artifact other tooling parses, so schema
// drift must be a deliberate, reviewed change. Regenerate with
// `go test ./internal/bench -run TestDeltaGolden -update-golden`.
func TestDeltaGolden(t *testing.T) {
	base := synthReport("baseline-sha", nil)
	cur := synthReport("current-sha", func(r *Report) {
		r.Results[0].NsPerOp = 170                                         // ns trip
		r.Results[2].NsPerOp = 540                                         // flight overhead trip
		r.Results = append(r.Results, synthRow("maxreg/new/row", 9, 3, 0)) // added
	})
	d := gateOne(t, base, cur, DefaultThresholds())
	got, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "delta_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("delta JSON drifted from golden (rerun with -update-golden if deliberate):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The golden document must also round-trip as a valid delta.
	var back Delta
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != DeltaSchema || back.Pass || back.Regressions != 2 {
		t.Fatalf("golden delta header: %+v", back)
	}
}
