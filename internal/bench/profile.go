package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles begins a CPU profile and a runtime execution trace for one
// suite run, writing <dir>/<suite>.cpu.pprof and <dir>/<suite>.trace
// (`benchjson -profile dir/`). Together with the pprof labels runParallel
// and the explore rows set, a tripped regression gate then ships an
// attribution artifact — which workload burned the time, per goroutine —
// the same way the flight recorder ships violation repros.
//
// The returned stop must be called exactly once; it flushes and closes
// both files and reports the first error.
func StartProfiles(dir, suite string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("-profile: %w", err)
	}
	cpuPath := filepath.Join(dir, suite+".cpu.pprof")
	cpuF, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("-profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, fmt.Errorf("-profile: %s: %w", cpuPath, err)
	}
	tracePath := filepath.Join(dir, suite+".trace")
	traceF, err := os.Create(tracePath)
	if err != nil {
		pprof.StopCPUProfile()
		cpuF.Close()
		return nil, fmt.Errorf("-profile: %w", err)
	}
	if err := trace.Start(traceF); err != nil {
		pprof.StopCPUProfile()
		cpuF.Close()
		traceF.Close()
		return nil, fmt.Errorf("-profile: %s: %w", tracePath, err)
	}
	return func() error {
		trace.Stop()
		pprof.StopCPUProfile()
		var first error
		if err := traceF.Close(); err != nil {
			first = err
		}
		if err := cpuF.Close(); err != nil && first == nil {
			first = err
		}
		return first
	}, nil
}
