package bench

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:      "T1",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tb.AddRow(1, "x")
	tb.AddRow(22, "yy")

	text := tb.Text()
	for _, want := range []string{"T1: demo", "a", "bb", "22", "yy", "note: a note"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text missing %q:\n%s", want, text)
		}
	}
	md := tb.Markdown()
	for _, want := range []string{"### T1: demo", "| a | bb |", "| 22 | yy |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown missing %q:\n%s", want, md)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") || !strings.Contains(csv, "22,yy") {
		t.Fatalf("CSV malformed:\n%s", csv)
	}
}

func TestE1SmallSweep(t *testing.T) {
	tables, err := E1CounterTradeoff([]int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables", len(tables))
	}
	if got := len(tables[0].Rows); got != 6 {
		t.Fatalf("%d rows, want 6 (3 impls x 2 sizes)", got)
	}
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("tradeoff floor violated in row %v", row)
		}
	}
}

func TestE2SmallSweep(t *testing.T) {
	tables, err := E2SnapshotTradeoff([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	// The f-array snapshot must show constant Scan.
	found := false
	for _, row := range tables[0].Rows {
		if strings.HasPrefix(row[0], "farray") && row[2] == "1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("f-array constant scan missing:\n%s", tables[0].Text())
	}
}

func TestE3SmallSweep(t *testing.T) {
	tables, err := E3MaxRegAdversary([]int{64, 128})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tables[0].Rows); got != 6 {
		t.Fatalf("%d rows", got)
	}
}

func TestE4Sweep(t *testing.T) {
	tables, err := E4AlgorithmASteps([]int{16, 64}, 256, []int64{1, 8, 255, 256, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	// Algorithm A reads exactly 1 step at every N.
	for _, row := range tables[0].Rows {
		if row[1] != "1" {
			t.Fatalf("non-constant ReadMax: %v", row)
		}
	}
	// Plateau: v=256 and v=2^20 rows have the same step count at N=256.
	rows := tables[1].Rows
	if rows[len(rows)-1][2] != rows[len(rows)-2][2] {
		t.Fatalf("no plateau beyond N: %v vs %v", rows[len(rows)-2], rows[len(rows)-1])
	}
}

func TestE5Compare(t *testing.T) {
	tables, err := E5Compare([]int{8})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 11 (4 maxregs + 4 counters + 3 snapshots)", len(rows))
	}
}

func TestE7Growth(t *testing.T) {
	tables, err := E7Lemma1Growth(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[3] != "true" {
			t.Fatalf("3^j ceiling violated: %v", row)
		}
	}
}

func TestE9Ablations(t *testing.T) {
	tables, err := E9Ablations(256, []int64{1, 16, 255, 256})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Balanced TL must not vary with v (columns: v, paper, balanced, single).
	if rows[0][2] != rows[1][2] {
		t.Fatalf("balanced TL varies with v: %v vs %v", rows[0], rows[1])
	}
}

func TestE10Amortized(t *testing.T) {
	tables, err := E10AmortizedWrites(256)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (3 impls x 2 workloads)", len(rows))
	}
	for _, row := range rows {
		if row[2] == "0" {
			t.Fatalf("zero total steps in %v", row)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 7 {
		t.Fatalf("only %d tables", len(tables))
	}
	ids := make(map[string]bool)
	for _, tb := range tables {
		if ids[tb.ID] {
			t.Fatalf("duplicate table id %s", tb.ID)
		}
		ids[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Fatalf("table %s is empty", tb.ID)
		}
	}
}
