package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// This file is the committed bench time-series behind `benchjson -append`
// and the dev/bench dashboard: every tracked run becomes one SeriesEntry
// (report + commit + timestamp) in dev/bench/data.json, the
// buildpacks/pack dev/bench pattern adapted to the bench v2 schema. The
// series is the long-lived record the regression gate and the dashboard
// both read — a report shows one run, the series shows the trend.

// SeriesSchema identifies the time-series JSON layout; bump on
// incompatible change.
const SeriesSchema = "tradeoffs/bench-series/v1"

// SeriesEntry is one tracked run. Commit and Timestamp are duplicated out
// of the report (and override whatever the report carries) so the series
// stays scannable without descending into every report, and so entries
// built from pre-metadata reports can still be attributed.
type SeriesEntry struct {
	// Commit is the revision the run measured (full or abbreviated SHA;
	// "unknown" when untracked).
	Commit string `json:"commit"`
	// Timestamp is the run instant, RFC 3339. It orders the series.
	Timestamp string `json:"timestamp"`
	// Suite is the generator ("throughput" or "explore"); one series file
	// holds both, panels split on it.
	Suite  string  `json:"suite"`
	Report *Report `json:"report"`
}

// Series is the dev/bench/data.json document.
type Series struct {
	Schema  string        `json:"schema"`
	Entries []SeriesEntry `json:"entries"`
}

// NewSeries returns an empty series.
func NewSeries() *Series {
	return &Series{Schema: SeriesSchema}
}

// ReadSeries loads and validates a series file. A missing file yields an
// empty series — the first -append bootstraps it.
func ReadSeries(path string) (*Series, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewSeries(), nil
	}
	if err != nil {
		return nil, err
	}
	var s Series
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// Validate checks the series document: schema id, per-entry completeness
// (commit, parseable timestamp, known suite, valid report), chronological
// order, and at most one entry per (commit, suite) — the invariants Append
// maintains and readers (the dashboard, the gate's latest-entry lookup)
// rely on.
func (s *Series) Validate() error {
	if s.Schema != SeriesSchema {
		return fmt.Errorf("bench: series schema %q, want %q", s.Schema, SeriesSchema)
	}
	seen := make(map[[2]string]bool, len(s.Entries))
	var prev time.Time
	for i, e := range s.Entries {
		if e.Commit == "" {
			return fmt.Errorf("bench: series entry %d has no commit", i)
		}
		if e.Suite != SuiteThroughput && e.Suite != SuiteExplore &&
			e.Suite != SuiteContention && e.Suite != SuiteDpor {
			return fmt.Errorf("bench: series entry %d: unknown suite %q", i, e.Suite)
		}
		ts, err := time.Parse(time.RFC3339, e.Timestamp)
		if err != nil {
			return fmt.Errorf("bench: series entry %d: timestamp %q is not RFC 3339: %w", i, e.Timestamp, err)
		}
		if i > 0 && ts.Before(prev) {
			return fmt.Errorf("bench: series entry %d (%s) out of order: %s before %s",
				i, e.Commit, e.Timestamp, s.Entries[i-1].Timestamp)
		}
		prev = ts
		key := [2]string{e.Commit, e.Suite}
		if seen[key] {
			return fmt.Errorf("bench: duplicate series entry for commit %s suite %s", e.Commit, e.Suite)
		}
		seen[key] = true
		if e.Report == nil {
			return fmt.Errorf("bench: series entry %d (%s) has no report", i, e.Commit)
		}
		if err := e.Report.Validate(); err != nil {
			return fmt.Errorf("bench: series entry %d (%s): %w", i, e.Commit, err)
		}
	}
	return nil
}

// Append inserts an entry, keeping the series valid: re-appending the same
// (commit, suite) replaces the old entry rather than duplicating it (so
// re-running CI on a rebuilt commit is idempotent), and entries stay
// ordered by timestamp (ties break on commit then suite, so appends
// commute).
func (s *Series) Append(e SeriesEntry) error {
	if e.Commit == "" {
		return fmt.Errorf("bench: series entry needs a commit (use \"unknown\" to track anyway)")
	}
	if e.Suite != SuiteThroughput && e.Suite != SuiteExplore &&
		e.Suite != SuiteContention && e.Suite != SuiteDpor {
		return fmt.Errorf("bench: series entry: unknown suite %q", e.Suite)
	}
	ts, err := time.Parse(time.RFC3339, e.Timestamp)
	if err != nil {
		return fmt.Errorf("bench: series entry: timestamp %q is not RFC 3339: %w", e.Timestamp, err)
	}
	if e.Report == nil {
		return fmt.Errorf("bench: series entry has no report")
	}
	if err := e.Report.Validate(); err != nil {
		return err
	}
	out := s.Entries[:0:0]
	inserted := false
	for _, old := range s.Entries {
		if old.Commit == e.Commit && old.Suite == e.Suite {
			continue // replaced by e
		}
		if !inserted && entryAfter(old, ts, e) {
			out = append(out, e)
			inserted = true
		}
		out = append(out, old)
	}
	if !inserted {
		out = append(out, e)
	}
	s.Entries = out
	return nil
}

// entryAfter reports whether old sorts strictly after a new entry e at
// timestamp ts.
func entryAfter(old SeriesEntry, ts time.Time, e SeriesEntry) bool {
	ots, err := time.Parse(time.RFC3339, old.Timestamp)
	if err != nil {
		return false // unreachable on a validated series; keep old first
	}
	if !ots.Equal(ts) {
		return ots.After(ts)
	}
	if old.Commit != e.Commit {
		return old.Commit > e.Commit
	}
	return old.Suite > e.Suite
}

// Latest returns the newest entry for suite, or nil.
func (s *Series) Latest(suite string) *SeriesEntry {
	for i := len(s.Entries) - 1; i >= 0; i-- {
		if s.Entries[i].Suite == suite {
			return &s.Entries[i]
		}
	}
	return nil
}

// EncodeSeries renders the series as the canonical committed form:
// indented, trailing newline. Both data.json and the -check mode of
// cmd/benchdash go through this, so "regenerate and byte-compare" works.
func EncodeSeries(s *Series) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteSeries validates and writes the series to path, creating parent
// directories so the first -append can bootstrap dev/bench/.
func WriteSeries(path string, s *Series) error {
	enc, err := EncodeSeries(s)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, enc, 0o644)
}
