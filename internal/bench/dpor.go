package bench

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
)

// This file is the `dpor` bench family behind `make dpor-bench`: the same
// reference configurations the explore suite sweeps, measured under dynamic
// partial-order reduction (sim.ExploreReduced / sim.Options.Reduce) against
// the unreduced sim.Explore baseline. One "op" is one complete execution, so
// the full-vs-reduced Ops gap IS the reduction factor the E14 experiment
// (EXPERIMENTS.md) tracks. Every run cross-checks that the parallel reduced
// engine visits exactly the sequential reduced engine's execution count — a
// mismatch is an engine bug and fails the run.

// labeledDpor runs one dpor row under pprof labels (see labeled).
func labeledDpor(row string, f func() measurement) measurement {
	var m measurement
	pprof.Do(context.Background(), pprof.Labels("bench_suite", SuiteDpor, "bench_workload", row),
		func(context.Context) { m = f() })
	return m
}

// DporConfig parameterizes RunDpor.
type DporConfig struct {
	// Procs is the number of simulated processes per workload (default 3).
	Procs int
	// Steps is the per-process operation count (default 3). The unreduced
	// baseline still enumerates the full tree, so the explore suite's
	// factorial-growth warning applies unchanged.
	Steps int
	// Workers lists worker counts for the parallel reduced rows (default
	// 1, 2, 4).
	Workers []int
	// Budget caps complete executions per exploration (default 10,000,000).
	Budget int
}

// dporWorkloads extends the explore reference workloads with a partially
// independent one: fully independent (writers) and fully contended (casinc)
// bracket the reduction spectrum, mixed sits between.
var dporWorkloads = append(exploreWorkloads[:len(exploreWorkloads):len(exploreWorkloads)],
	// Mixed sharing: each process writes its own register steps-1 times and
	// then reads one shared register. The writes all commute, the reads
	// commute with each other but order against nothing — most of the tree
	// collapses, a sliver survives.
	exploreWorkload{"mixed", func(pool *primitive.Pool, s *sim.System, procs, steps int) error {
		shared := pool.New("shared", 0)
		for id := 0; id < procs; id++ {
			reg := pool.New(fmt.Sprintf("m%d", id), 0)
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps-1; i++ {
					ctx.Write(reg, int64(i))
				}
				ctx.Read(shared)
			}); err != nil {
				return err
			}
		}
		return nil
	}},
)

// RunDpor measures dynamic partial-order reduction over the reference
// workloads: per workload, one unreduced sim.Explore row (`full`), one
// sequential sim.ExploreReduced row (`reduced`), and one parallel reduced
// row (`rw<N>`) per requested worker count. The full row is the denominator
// of the reduction factor; the reduced rows must agree with each other
// exactly (parallel DPOR visits the identical sleep-set-pruned tree) and
// must not exceed the full row.
func RunDpor(cfg DporConfig) (*Report, error) {
	if cfg.Procs <= 0 {
		cfg.Procs = 3
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 3
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4}
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 10_000_000
	}

	rep := &Report{
		Schema:     ReportSchema,
		Suite:      SuiteDpor,
		Seed:       1, // explorations are exhaustive; no randomness involved
		Procs:      cfg.Procs,
		OpsPerProc: cfg.Steps,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Host:       ReadHost(),
	}

	for _, wl := range dporWorkloads {
		wl := wl
		seqBuild := func() (*sim.System, error) {
			pool := primitive.NewPool()
			s := sim.NewSystem()
			if err := wl.spawn(pool, s, cfg.Procs, cfg.Steps); err != nil {
				return nil, err
			}
			return s, nil
		}
		parBuild := func(rec *sim.Recycler) (*sim.System, error) {
			pool := rec.Pool()
			s := rec.NewSystem()
			if err := wl.spawn(pool, s, cfg.Procs, cfg.Steps); err != nil {
				return nil, err
			}
			return s, nil
		}

		tally := new(exploreTally)
		var fullExecs int
		var runErr error
		m := labeledDpor("dpor/"+wl.name+"/full", func() measurement {
			return measure(func() {
				fullExecs, runErr = sim.Explore(seqBuild, tally.check, cfg.Budget)
			})
		})
		if runErr != nil {
			return nil, fmt.Errorf("bench: dpor/%s/full: %w", wl.name, runErr)
		}
		rep.Results = append(rep.Results,
			tally.result("dpor/"+wl.name+"/full", cfg.Procs, fullExecs, m))

		tally = new(exploreTally)
		var reducedExecs int
		m = labeledDpor("dpor/"+wl.name+"/reduced", func() measurement {
			return measure(func() {
				reducedExecs, runErr = sim.ExploreReduced(seqBuild, tally.check, cfg.Budget)
			})
		})
		if runErr != nil {
			return nil, fmt.Errorf("bench: dpor/%s/reduced: %w", wl.name, runErr)
		}
		if reducedExecs > fullExecs {
			return nil, fmt.Errorf("bench: dpor/%s: reduced visited %d executions, full visited %d",
				wl.name, reducedExecs, fullExecs)
		}
		rep.Results = append(rep.Results,
			tally.result("dpor/"+wl.name+"/reduced", cfg.Procs, reducedExecs, m))

		for _, workers := range cfg.Workers {
			tally = new(exploreTally)
			var execs int
			row := fmt.Sprintf("dpor/%s/rw%d", wl.name, workers)
			m := labeledDpor(row, func() measurement {
				return measure(func() {
					execs, runErr = sim.ExploreParallel(parBuild, tally.check,
						sim.Options{Workers: workers, Budget: cfg.Budget, Reduce: true})
				})
			})
			if runErr != nil {
				return nil, fmt.Errorf("bench: %s: %w", row, runErr)
			}
			if execs != reducedExecs {
				return nil, fmt.Errorf("bench: %s visited %d executions, sequential reduced visited %d",
					row, execs, reducedExecs)
			}
			rep.Results = append(rep.Results, tally.result(row, cfg.Procs, execs, m))
		}
	}

	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}

// E14DporReduction renders RunDpor as the E14 experiment table
// (EXPERIMENTS.md): per workload, the execution counts and wall clock of
// the full, reduced, and parallel-reduced engines, with the reduction
// factor (full executions over that row's executions).
func E14DporReduction(cfg DporConfig) ([]*Table, error) {
	rep, err := RunDpor(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E14",
		Title:   fmt.Sprintf("dynamic partial-order reduction (procs=%d steps=%d)", rep.Procs, rep.OpsPerProc),
		Columns: []string{"workload", "engine", "executions", "reduction_vs_full", "wall_ms", "execs_per_sec", "speedup_vs_full"},
		Notes: []string{
			"full is the unreduced sim.Explore baseline; reduced is sleep-set DPOR (sim.ExploreReduced); rwN is ExploreParallel with N workers and Options.Reduce",
			"reduction_vs_full counts executions pruned as trace-equivalent; speedup_vs_full is the resulting wall-clock win",
			"every reduced row visits the identical sleep-set-pruned tree; RunDpor fails on any count mismatch",
			"sim.CrossCheckReduction separately verifies the pruned tree still covers every Mazurkiewicz trace class (make race-sim)",
		},
	}
	fullExecs := make(map[string]int64)
	fullWall := make(map[string]float64)
	for _, r := range rep.Results {
		parts := strings.Split(r.Name, "/") // dpor/<workload>/<engine>
		if len(parts) != 3 {
			continue
		}
		wl, engine := parts[1], parts[2]
		if engine == "full" {
			fullExecs[wl] = r.Ops
			fullWall[wl] = r.WallClockMS
		}
		reduction, speedup := "-", "-"
		if base := fullExecs[wl]; base > 0 && r.Ops > 0 {
			reduction = fmt.Sprintf("%.1fx", float64(base)/float64(r.Ops))
		}
		if base := fullWall[wl]; base > 0 && r.WallClockMS > 0 {
			speedup = fmt.Sprintf("%.2fx", base/r.WallClockMS)
		}
		t.AddRow(wl, engine, r.Ops, reduction,
			fmt.Sprintf("%.1f", r.WallClockMS),
			fmt.Sprintf("%.0f", r.ExecsPerSec),
			speedup)
	}
	return []*Table{t}, nil
}
