package bench

import (
	"strings"
	"testing"
)

// smallCfg keeps the suite to a fraction of a second in tests.
var smallCfg = ThroughputConfig{Procs: 4, OpsPerProc: 200, Seed: 7}

func TestRunThroughputProducesValidReport(t *testing.T) {
	rep, err := RunThroughput(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 7 || rep.Procs != 4 || rep.OpsPerProc != 200 {
		t.Fatalf("config not echoed: %+v", rep)
	}
	want := []string{
		"counter/farray/increment/unpadded",
		"counter/farray/increment/padded",
		"counter/farray/add/batched-w8",
		"counter/cas/increment",
		"counter/aac/increment",
		"counter/snapshot/increment",
		"maxreg/algorithmA/writemax",
		"maxreg/aac/writemax",
		"maxreg/cas/writemax",
		"snapshot/farray/update",
	}
	got := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		got[r.Name] = r
	}
	for _, name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("missing workload %q", name)
		}
	}
}

func TestThroughputStepsAreDeterministic(t *testing.T) {
	// The schedule is seed-determined, so steps/op and CAS totals for the
	// CAS-free workloads must be bit-identical across runs. (CAS-loop
	// workloads retry under real contention, so only their floor is fixed.)
	a, err := RunThroughput(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunThroughput(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	resA := indexResults(a)
	resB := indexResults(b)
	for name, ra := range resA {
		rb, ok := resB[name]
		if !ok {
			t.Fatalf("second run missing %q", name)
		}
		if ra.Ops != rb.Ops {
			t.Errorf("%s: ops %d vs %d across runs", name, ra.Ops, rb.Ops)
		}
		// The f-array paths issue a fixed number of events per operation
		// (double refresh counts attempts, not successes), so their
		// steps/op is bit-identical across runs regardless of goroutine
		// interleaving. AAC and the CAS loops early-exit or retry based on
		// concurrently observed values, so only their totals' floor is
		// fixed — skip those.
		if strings.HasPrefix(name, "counter/farray/") ||
			name == "counter/snapshot/increment" ||
			name == "snapshot/farray/update" {
			if ra.StepsPerOp != rb.StepsPerOp {
				t.Errorf("%s: steps/op %g vs %g across runs", name, ra.StepsPerOp, rb.StepsPerOp)
			}
		}
	}
}

func TestThroughputBatchedAddAmortizes(t *testing.T) {
	// The acceptance bar for WithBatching: at window 8, the amortized
	// shared-memory cost per increment must be well below the unbatched
	// f-array increment (each coalesced propagation is one leaf write +
	// one O(log N) refresh for 8 logical increments).
	rep, err := RunThroughput(ThroughputConfig{Procs: 4, OpsPerProc: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := indexResults(rep)
	plain := res["counter/farray/increment/padded"]
	batched := res["counter/farray/add/batched-w8"]
	if batched.StepsPerOp >= plain.StepsPerOp/2 {
		t.Fatalf("batched add steps/op = %.2f, want < half of unbatched %.2f",
			batched.StepsPerOp, plain.StepsPerOp)
	}
}

func TestValidateRejectsBadReports(t *testing.T) {
	good, err := RunThroughput(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(r *Report){
		"wrong schema":   func(r *Report) { r.Schema = "tradeoffs/bench/v0" },
		"no results":     func(r *Report) { r.Results = nil },
		"unnamed result": func(r *Report) { r.Results[0].Name = "" },
		"duplicate name": func(r *Report) { r.Results[1].Name = r.Results[0].Name },
		"zero ops":       func(r *Report) { r.Results[0].Ops = 0 },
		"negative ns/op": func(r *Report) { r.Results[0].NsPerOp = -1 },
		"failures > attempts": func(r *Report) {
			r.Results[0].CASAttempts = 1
			r.Results[0].CASFailures = 2
		},
		"rate out of range": func(r *Report) { r.Results[0].CASFailureRate = 1.5 },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			bad := *good
			bad.Results = append([]Result(nil), good.Results...)
			mutate(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatal("Validate accepted a corrupted report")
			}
		})
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected the pristine report: %v", err)
	}
}

func indexResults(rep *Report) map[string]Result {
	m := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		m[r.Name] = r
	}
	return m
}
