package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesLoadableArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "profiles") // exercises MkdirAll
	stop, err := StartProfiles(dir, SuiteThroughput)
	if err != nil {
		t.Fatal(err)
	}
	// A real (tiny) suite run inside the capture, so the profile has the
	// labeled workload goroutines in it.
	if _, err := RunThroughput(ThroughputConfig{Procs: 2, OpsPerProc: 200, Seed: 5}); err != nil {
		stop()
		t.Fatal(err)
	}
	// A second capture cannot start while this one is running: CPU
	// profiling is process-exclusive, and the error must surface rather
	// than silently truncating the live capture.
	if stop2, err := StartProfiles(dir, SuiteExplore); err == nil {
		stop2()
		stop()
		t.Fatal("nested StartProfiles succeeded; CPU profiling should be exclusive")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	cpu, err := os.ReadFile(filepath.Join(dir, "throughput.cpu.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	// pprof CPU profiles are gzip-wrapped protobuf; the magic is the
	// cheap loadability check without importing a profile parser.
	if len(cpu) < 2 || cpu[0] != 0x1f || cpu[1] != 0x8b {
		t.Fatalf("cpu profile is not gzip data (len %d, head % x)", len(cpu), cpu[:min(len(cpu), 2)])
	}

	tr, err := os.ReadFile(filepath.Join(dir, "throughput.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(tr, []byte("go 1.")) {
		t.Fatalf("trace missing runtime/trace header (head %q)", tr[:min(len(tr), 16)])
	}

	// Sequential captures work.
	stop4, err := StartProfiles(dir, SuiteExplore)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop4(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "explore.cpu.pprof")); err != nil {
		t.Fatal(err)
	}
}
