package bench

import (
	"testing"
)

func TestRunContentionProducesValidReport(t *testing.T) {
	rep, err := RunContention(ContentionConfig{Writers: []int{1, 2}, OpsPerWriter: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Suite != SuiteContention {
		t.Fatalf("suite %q, want %q", rep.Suite, SuiteContention)
	}
	if rep.Procs != 2 {
		t.Fatalf("report procs %d, want max writer count 2", rep.Procs)
	}
	res := indexResults(rep)
	for _, name := range []string{
		"contention/cas/w1/update", "contention/cas/w1/read1in8",
		"contention/cas/w2/update", "contention/cas/w2/read1in8",
		"contention/sharded/w1/update", "contention/sharded/w1/read1in8",
		"contention/sharded/w2/update", "contention/sharded/w2/read1in8",
	} {
		r, ok := res[name]
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		if r.NsPerOp <= 0 || r.WallClockMS <= 0 {
			t.Errorf("%s: ns/op=%g wall=%gms, want positive", name, r.NsPerOp, r.WallClockMS)
		}
	}
	// Every row runs writers*ops operations; the w2 rows double the w1 rows.
	if got := res["contention/cas/w2/update"].Ops; got != 400 {
		t.Errorf("w2 row ran %d ops, want 400", got)
	}
	// The pure-update rows on the flat counter are all CAS; the sharded rows
	// spread attempts across stripes but still go through CAS.
	if res["contention/cas/w2/update"].CASAttempts == 0 {
		t.Error("flat update row recorded no CAS attempts")
	}
	if res["contention/sharded/w2/update"].CASAttempts == 0 {
		t.Error("sharded update row recorded no CAS attempts")
	}
}

func TestRunContentionRejectsBadWriters(t *testing.T) {
	if _, err := RunContention(ContentionConfig{Writers: []int{0}}); err == nil {
		t.Fatal("RunContention accepted a zero writer count")
	}
}

func TestDefaultContentionWriters(t *testing.T) {
	ws := DefaultContentionWriters()
	if len(ws) == 0 || ws[0] != 1 {
		t.Fatalf("default writers %v must start at 1", ws)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] != 2*ws[i-1] {
			t.Fatalf("default writers %v must double", ws)
		}
	}
	if last := ws[len(ws)-1]; last < 8 {
		t.Fatalf("default writers %v must reach at least 8", ws)
	}
}

func TestCrossover(t *testing.T) {
	mk := func(rows map[string]float64) *Report {
		rep := &Report{}
		for name, ns := range rows {
			rep.Results = append(rep.Results, Result{Name: name, NsPerOp: ns})
		}
		return rep
	}
	cases := []struct {
		name string
		rows map[string]float64
		want int
	}{
		{"sharded wins from w4", map[string]float64{
			"contention/cas/w1/update": 10, "contention/sharded/w1/update": 15,
			"contention/cas/w2/update": 20, "contention/sharded/w2/update": 25,
			"contention/cas/w4/update": 40, "contention/sharded/w4/update": 30,
		}, 4},
		{"never crosses", map[string]float64{
			"contention/cas/w1/update": 10, "contention/sharded/w1/update": 15,
			"contention/cas/w8/update": 20, "contention/sharded/w8/update": 25,
		}, 0},
		{"read rows ignored", map[string]float64{
			"contention/cas/w1/read1in8": 50, "contention/sharded/w1/read1in8": 1,
			"contention/cas/w1/update": 10, "contention/sharded/w1/update": 15,
		}, 0},
		{"empty report", nil, 0},
	}
	for _, tc := range cases {
		if got := Crossover(mk(tc.rows)); got != tc.want {
			t.Errorf("%s: Crossover = %d, want %d", tc.name, got, tc.want)
		}
	}
}
