package bench

import (
	"strings"
	"testing"
)

// smallExploreCfg keeps the exhaustive trees tiny so the suite stays fast.
var smallExploreCfg = ExploreConfig{Procs: 2, Steps: 2, Workers: []int{1, 2}, Budget: 100000}

func TestRunExploreProducesValidReport(t *testing.T) {
	rep, err := RunExplore(smallExploreCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	res := indexResults(rep)
	for _, name := range []string{
		"explore/writers/seq", "explore/writers/w1", "explore/writers/w2",
		"explore/casinc/seq", "explore/casinc/w1", "explore/casinc/w2",
	} {
		r, ok := res[name]
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		if r.ExecsPerSec <= 0 || r.WallClockMS <= 0 {
			t.Errorf("%s: execs/sec=%g wall=%gms, want positive", name, r.ExecsPerSec, r.WallClockMS)
		}
	}
	// Two independent 2-step writers: C(4,2) = 6 executions, on every row.
	for name, r := range res {
		if strings.HasPrefix(name, "explore/writers/") && r.Ops != 6 {
			t.Errorf("%s visited %d executions, want 6", name, r.Ops)
		}
	}
	// The CAS workload must populate the contention columns.
	if res["explore/casinc/seq"].CASAttempts == 0 {
		t.Error("explore/casinc/seq recorded no CAS attempts")
	}
}

func TestValidateAcceptsLegacyV1Reports(t *testing.T) {
	// A v1 document has no allocs/bytes/wall-clock columns; Validate must
	// not demand them.
	rep := &Report{
		Schema:     ReportSchemaV1,
		Seed:       1,
		Procs:      2,
		OpsPerProc: 10,
		Results: []Result{{
			Name:       "counter/cas/increment",
			Procs:      2,
			Ops:        20,
			NsPerOp:    12.5,
			StepsPerOp: 3,
		}},
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate rejected a well-formed v1 report: %v", err)
	}
	// The same missing columns in a v2 document are a hard error.
	rep.Schema = ReportSchema
	if err := rep.Validate(); err == nil {
		t.Fatal("Validate accepted a v2 report without wall-clock data")
	}
}

func TestValidateChecksV2Columns(t *testing.T) {
	rep, err := RunExplore(ExploreConfig{Procs: 2, Steps: 1, Workers: []int{1}, Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rep.Results[0].AllocsPerOp = -1
	if err := rep.Validate(); err == nil {
		t.Fatal("Validate accepted negative allocs/op")
	}
}
