package bench

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/adversary"
	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// Default sweep parameters, kept moderate so `tradeoff all` finishes in
// seconds; the CLI can override them.
var (
	DefaultCounterNs = []int{8, 16, 32, 64, 128}
	// Theorem 3's Lemma 4 needs |E^e| >= 81 to make progress, so the K
	// sweep starts above it.
	DefaultMaxRegKs  = []int{128, 256, 512, 1024}
	DefaultCompareNs = []int{16, 64, 256}
)

const maxAdversaryRounds = 100000

// --- step-measurement helpers (single process, exact event counts) ---

func counterSteps(build func(pool *primitive.Pool) (counter.Counter, error), n, incs int) (readSteps, incMax int64, err error) {
	pool := primitive.NewPool()
	c, err := build(pool)
	if err != nil {
		return 0, 0, err
	}
	ctxs := make([]*primitive.Counting, n)
	for i := range ctxs {
		ctxs[i] = primitive.NewCounting(primitive.NewDirect(i))
	}
	for i := 0; i < incs; i++ {
		ctx := ctxs[i%n]
		var incErr error
		steps := ctx.Measure(func() { incErr = c.Increment(ctx) })
		if incErr != nil {
			return 0, 0, incErr
		}
		if steps > incMax {
			incMax = steps
		}
	}
	readSteps = ctxs[0].Measure(func() { c.Read(ctxs[0]) })
	return readSteps, incMax, nil
}

func snapshotSteps(build func(pool *primitive.Pool) (snapshot.Snapshot, error), n, updates int) (scanSteps, updMax int64, err error) {
	pool := primitive.NewPool()
	s, err := build(pool)
	if err != nil {
		return 0, 0, err
	}
	ctxs := make([]*primitive.Counting, n)
	for i := range ctxs {
		ctxs[i] = primitive.NewCounting(primitive.NewDirect(i))
	}
	for i := 0; i < updates; i++ {
		ctx := ctxs[i%n]
		var updErr error
		steps := ctx.Measure(func() { updErr = s.Update(ctx, int64(i+1)) })
		if updErr != nil {
			return 0, 0, updErr
		}
		if steps > updMax {
			updMax = steps
		}
	}
	scanSteps = ctxs[0].Measure(func() { s.Scan(ctxs[0]) })
	return scanSteps, updMax, nil
}

func maxRegSteps(build func(pool *primitive.Pool) (maxreg.MaxRegister, error), writes []int64) (readSteps, writeMax int64, err error) {
	pool := primitive.NewPool()
	m, err := build(pool)
	if err != nil {
		return 0, 0, err
	}
	ctx := primitive.NewCounting(primitive.NewDirect(0))
	for _, v := range writes {
		var wErr error
		steps := ctx.Measure(func() { wErr = m.WriteMax(ctx, v) })
		if wErr != nil {
			return 0, 0, wErr
		}
		if steps > writeMax {
			writeMax = steps
		}
	}
	readSteps = ctx.Measure(func() { m.ReadMax(ctx) })
	return readSteps, writeMax, nil
}

// --- E1: counter tradeoff (Theorems 1-2) ---

// E1CounterTradeoff runs the Theorem 1 adversary against every counter
// implementation and tabulates the forced increment rounds against the
// paper's log3((N-1)/f(N)) floor.
func E1CounterTradeoff(ns []int) ([]*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Counter read/increment tradeoff under the Theorem 1 adversary",
		Columns: []string{"impl", "N", "f(N)=read steps", "forced rounds r", "floor log3((N-1)/f)", "r>=floor"},
		Notes: []string{
			"rounds = Lemma 1 rounds until all N-1 increments completed; each unfinished process takes 1 step per round",
			"cas is lock-free, not wait-free: the adversary serializes it to ~2(N-1) rounds",
		},
	}
	impls := []struct {
		name    string
		factory adversary.CounterFactory
	}{
		{name: "aac (read/write)", factory: func(pool *primitive.Pool, n int) (counter.Counter, error) {
			return counter.NewAAC(pool, n, int64(n))
		}},
		{name: "farray (O(1) read)", factory: func(pool *primitive.Pool, n int) (counter.Counter, error) {
			return counter.NewFArray(pool, n)
		}},
		{name: "cas (single word)", factory: func(pool *primitive.Pool, n int) (counter.Counter, error) {
			return counter.NewCAS(pool, 0)
		}},
	}
	for _, impl := range impls {
		for _, n := range ns {
			res, err := adversary.RunCounterConstruction(impl.factory, n, maxAdversaryRounds)
			if err != nil {
				return nil, fmt.Errorf("E1 %s n=%d: %w", impl.name, n, err)
			}
			t.AddRow(impl.name, n, res.ReadSteps, res.Rounds, res.TheoremBound, res.Rounds >= res.TheoremBound)
		}
	}
	return []*Table{t}, nil
}

// --- E2: snapshot tradeoff (Corollary 1) ---

// E2SnapshotTradeoff measures Scan/Update step complexity for every
// snapshot implementation and runs the Theorem 1 adversary through the
// counter-from-snapshot reduction.
func E2SnapshotTradeoff(ns []int) ([]*Table, error) {
	steps := &Table{
		ID:      "E2a",
		Title:   "Snapshot Scan/Update step complexity (sequential, exact)",
		Columns: []string{"impl", "N", "Scan steps", "max Update steps"},
		Notes:   []string{"doublecollect Scan shown uncontended (2N); it is unbounded under contention"},
	}
	adv := &Table{
		ID:      "E2b",
		Title:   "Corollary 1: forced rounds for counters built from snapshots",
		Columns: []string{"impl", "N", "f(N)=read steps", "forced rounds r", "floor log3((N-1)/f)", "r>=floor"},
	}

	impls := []struct {
		name  string
		build func(pool *primitive.Pool, n int) (snapshot.Snapshot, error)
	}{
		{name: "doublecollect", build: func(pool *primitive.Pool, n int) (snapshot.Snapshot, error) {
			return snapshot.NewDoubleCollect(pool, n)
		}},
		{name: "afek", build: func(pool *primitive.Pool, n int) (snapshot.Snapshot, error) {
			return snapshot.NewAfek(pool, n, 1<<20)
		}},
		{name: "farray (O(1) scan)", build: func(pool *primitive.Pool, n int) (snapshot.Snapshot, error) {
			return snapshot.NewFArray(pool, n, 1<<20)
		}},
	}
	for _, impl := range impls {
		impl := impl
		for _, n := range ns {
			scan, upd, err := snapshotSteps(func(pool *primitive.Pool) (snapshot.Snapshot, error) {
				return impl.build(pool, n)
			}, n, 4*n)
			if err != nil {
				return nil, fmt.Errorf("E2 %s n=%d: %w", impl.name, n, err)
			}
			steps.AddRow(impl.name, n, scan, upd)

			res, err := adversary.RunCounterConstruction(func(pool *primitive.Pool, n int) (counter.Counter, error) {
				s, err := impl.build(pool, n)
				if err != nil {
					return nil, err
				}
				return counter.NewFromSnapshot(s), nil
			}, n, maxAdversaryRounds)
			if err != nil {
				return nil, fmt.Errorf("E2 adversary %s n=%d: %w", impl.name, n, err)
			}
			adv.AddRow(impl.name, n, res.ReadSteps, res.Rounds, res.TheoremBound, res.Rounds >= res.TheoremBound)
		}
	}
	return []*Table{steps, adv}, nil
}

// --- E3: max register adversary (Theorems 3-4, Figures 1-3) ---

// E3MaxRegAdversary runs the Theorem 3 essential-set construction against
// the max register implementations.
func E3MaxRegAdversary(ks []int) ([]*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Max register adversary (Theorem 3): forced WriteMax steps i*",
		Columns: []string{"impl", "K", "f(K)", "i*", "|E_i*|", "halted", "stop", "floor log3(log2 K/(2 log2 f+2))"},
		Notes: []string{
			"i* = steps each essential process was forced to spend inside one WriteMax",
			"cas register is not wait-free: iterations capped (the adversary can continue forever)",
		},
	}
	impls := []struct {
		name    string
		factory adversary.MaxRegFactory
		maxIter int
	}{
		{name: "algorithm-a (O(1) read)", factory: func(pool *primitive.Pool, k int) (maxreg.MaxRegister, error) {
			return core.New(pool, k, int64(k))
		}, maxIter: 200},
		{name: "aac (O(log K) read)", factory: func(pool *primitive.Pool, k int) (maxreg.MaxRegister, error) {
			return maxreg.NewAAC(pool, int64(k))
		}, maxIter: 200},
		{name: "cas (single word)", factory: func(pool *primitive.Pool, k int) (maxreg.MaxRegister, error) {
			return maxreg.NewCASRegister(pool, int64(k))
		}, maxIter: 40},
	}
	for _, impl := range impls {
		for _, k := range ks {
			res, err := adversary.RunMaxRegConstruction(impl.factory, k, 0, impl.maxIter)
			if err != nil {
				return nil, fmt.Errorf("E3 %s k=%d: %w", impl.name, k, err)
			}
			t.AddRow(impl.name, k, res.FK, res.IStar, len(res.FinalEssential),
				res.HaltedCount, res.StopReason, res.TheoremBound)
		}
	}
	return []*Table{t}, nil
}

// --- E4: Algorithm A step complexity (Theorems 5-6, Figure 4) ---

// E4AlgorithmASteps measures Algorithm A's defining step complexities: a
// constant ReadMax across N, and a WriteMax(v) that grows with log v until
// it plateaus at log N (the crossover the B1/complete tree split creates).
func E4AlgorithmASteps(ns []int, writeN int, vs []int64) ([]*Table, error) {
	readTable := &Table{
		ID:    "E4a",
		Title: "Algorithm A vs AAC vs unbounded-AAC: ReadMax / WriteMax(N-1) steps across N (M = N)",
		Columns: []string{
			"N",
			"algorithm-a Read", "aac Read", "unbounded Read",
			"algorithm-a Write(N-1)", "aac Write(N-1)", "unbounded Write(N-1)",
		},
	}
	for _, n := range ns {
		n := n
		values := []int64{1, int64(n) / 2, int64(n) - 1}
		aRead, aWrite, err := maxRegSteps(func(pool *primitive.Pool) (maxreg.MaxRegister, error) {
			return core.New(pool, n, int64(n))
		}, values)
		if err != nil {
			return nil, fmt.Errorf("E4 algorithm-a n=%d: %w", n, err)
		}
		bRead, bWrite, err := maxRegSteps(func(pool *primitive.Pool) (maxreg.MaxRegister, error) {
			return maxreg.NewAAC(pool, int64(n))
		}, values)
		if err != nil {
			return nil, fmt.Errorf("E4 aac n=%d: %w", n, err)
		}
		uRead, uWrite, err := maxRegSteps(func(pool *primitive.Pool) (maxreg.MaxRegister, error) {
			return maxreg.NewUnboundedAAC(pool), nil
		}, values)
		if err != nil {
			return nil, fmt.Errorf("E4 unbounded n=%d: %w", n, err)
		}
		readTable.AddRow(n, aRead, bRead, uRead, aWrite, bWrite, uWrite)
	}

	writeTable := &Table{
		ID:      "E4b",
		Title:   fmt.Sprintf("Algorithm A: WriteMax(v) steps at N = %d (log v growth, plateau at log N)", writeN),
		Columns: []string{"v", "leaf depth", "WriteMax steps", "budget 2+8*depth"},
		Notes:   []string{"values v >= N use the writer's complete-tree leaf: the plateau"},
	}
	pool := primitive.NewPool()
	m, err := core.New(pool, writeN, 0)
	if err != nil {
		return nil, err
	}
	for _, v := range vs {
		ctx := primitive.NewCounting(primitive.NewDirect(0))
		var wErr error
		steps := ctx.Measure(func() { wErr = m.WriteMax(ctx, v) })
		if wErr != nil {
			return nil, fmt.Errorf("E4 WriteMax(%d): %w", v, wErr)
		}
		depth := m.WriteDepth(0, v)
		writeTable.AddRow(v, depth, steps, 2+8*depth)
	}
	return []*Table{readTable, writeTable}, nil
}

// --- E5: cross-implementation comparison ---

// E5Compare tabulates read and update step complexity for every object
// implementation in the repository: the paper's implicit "who pays what"
// table.
func E5Compare(ns []int) ([]*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "All implementations: exact read/update steps (worst over a sequential fill)",
		Columns: []string{"object", "impl", "N", "read steps", "max update steps"},
		Notes: []string{
			"max registers: bound M = N^2, writes sweep [0, M); counters: limit N^2",
			"cas rows are best-case (no contention); they are not wait-free",
		},
	}
	for _, n := range ns {
		n := n
		bound := int64(n) * int64(n)
		writes := make([]int64, 0, 2*n)
		for v := int64(0); v < bound; v += bound/int64(2*n) + 1 {
			writes = append(writes, v)
		}
		writes = append(writes, bound-1)

		type mr struct {
			name  string
			build func(pool *primitive.Pool) (maxreg.MaxRegister, error)
		}
		for _, impl := range []mr{
			{name: "algorithm-a", build: func(pool *primitive.Pool) (maxreg.MaxRegister, error) { return core.New(pool, n, bound) }},
			{name: "aac", build: func(pool *primitive.Pool) (maxreg.MaxRegister, error) { return maxreg.NewAAC(pool, bound) }},
			{name: "unbounded-aac", build: func(pool *primitive.Pool) (maxreg.MaxRegister, error) { return maxreg.NewUnboundedAAC(pool), nil }},
			{name: "cas", build: func(pool *primitive.Pool) (maxreg.MaxRegister, error) { return maxreg.NewCASRegister(pool, bound) }},
		} {
			read, write, err := maxRegSteps(impl.build, writes)
			if err != nil {
				return nil, fmt.Errorf("E5 maxreg %s n=%d: %w", impl.name, n, err)
			}
			t.AddRow("max-register", impl.name, n, read, write)
		}

		// The AAC counter keeps one (limit+1)-bounded max register per
		// internal node; 8N increments is plenty for the 4N-op sweep and
		// keeps construction linear.
		ctrLimit := int64(8 * n)
		type ctr struct {
			name  string
			build func(pool *primitive.Pool) (counter.Counter, error)
		}
		for _, impl := range []ctr{
			{name: "aac", build: func(pool *primitive.Pool) (counter.Counter, error) { return counter.NewAAC(pool, n, ctrLimit) }},
			{name: "farray", build: func(pool *primitive.Pool) (counter.Counter, error) { return counter.NewFArray(pool, n) }},
			{name: "cas", build: func(pool *primitive.Pool) (counter.Counter, error) { return counter.NewCAS(pool, 0) }},
			{name: "snapshot-reduction", build: func(pool *primitive.Pool) (counter.Counter, error) {
				s, err := snapshot.NewFArray(pool, n, bound)
				if err != nil {
					return nil, err
				}
				return counter.NewFromSnapshot(s), nil
			}},
		} {
			read, inc, err := counterSteps(impl.build, n, 4*n)
			if err != nil {
				return nil, fmt.Errorf("E5 counter %s n=%d: %w", impl.name, n, err)
			}
			t.AddRow("counter", impl.name, n, read, inc)
		}

		type snap struct {
			name  string
			build func(pool *primitive.Pool) (snapshot.Snapshot, error)
		}
		for _, impl := range []snap{
			{name: "doublecollect", build: func(pool *primitive.Pool) (snapshot.Snapshot, error) { return snapshot.NewDoubleCollect(pool, n) }},
			{name: "afek", build: func(pool *primitive.Pool) (snapshot.Snapshot, error) { return snapshot.NewAfek(pool, n, bound) }},
			{name: "farray", build: func(pool *primitive.Pool) (snapshot.Snapshot, error) { return snapshot.NewFArray(pool, n, bound) }},
		} {
			scan, upd, err := snapshotSteps(impl.build, n, 4*n)
			if err != nil {
				return nil, fmt.Errorf("E5 snapshot %s n=%d: %w", impl.name, n, err)
			}
			t.AddRow("snapshot", impl.name, n, scan, upd)
		}
	}
	return []*Table{t}, nil
}

// --- E7: Lemma 1 information-flow growth ---

// E7Lemma1Growth tabulates max familiarity-set size per Lemma 1 round
// during the counter construction, against the 3^j ceiling.
func E7Lemma1Growth(n int) ([]*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("Lemma 1: information-flow growth per round (f-array counter, N = %d)", n),
		Columns: []string{"round j", "max |F(o,E_j)|", "ceiling 3^j", "within"},
		Notes:   []string{"the ceiling is why log-many rounds are unavoidable: awareness grows at most 3x per round"},
	}
	res, err := adversary.RunCounterConstruction(func(pool *primitive.Pool, n int) (counter.Counter, error) {
		return counter.NewFArray(pool, n)
	}, n, maxAdversaryRounds)
	if err != nil {
		return nil, err
	}
	ceiling := 1
	for j, fam := range res.MaxFamiliarityPerRound {
		if ceiling < 1<<40 {
			ceiling *= 3
		}
		cell := fmt.Sprint(ceiling)
		if ceiling >= 1<<40 {
			cell = ">10^12"
		}
		t.AddRow(j+1, fam, cell, fam <= ceiling)
	}
	return []*Table{t}, nil
}

// --- E9: ablations of Algorithm A's design choices ---

// E9Ablations quantifies the two load-bearing choices in Algorithm A: the
// B1-shaped left subtree (vs. a balanced one) and the double refresh (whose
// necessity is demonstrated by construction in internal/core's ablation
// tests — here we tabulate its step cost, which is what the second refresh
// buys linearizability for).
func E9Ablations(n int, vs []int64) ([]*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: fmt.Sprintf("Ablations of Algorithm A at N = %d: WriteMax(v) steps", n),
		Columns: []string{
			"v", "paper (B1 + 2 refreshes)", "balanced TL (2 refreshes)", "B1 + 1 refresh (NOT linearizable)",
		},
		Notes: []string{
			"balanced TL: small values lose their O(log v) discount and pay O(log N) like everything else",
			"single refresh: ~half the write steps, but loses completed updates under contention (see TestAblationSingleRefreshLosesUpdate)",
		},
	}

	variants := []func(pool *primitive.Pool) (*core.MaxRegister, error){
		func(pool *primitive.Pool) (*core.MaxRegister, error) { return core.New(pool, n, 0) },
		func(pool *primitive.Pool) (*core.MaxRegister, error) { return core.NewBalancedTL(pool, n, 0) },
		func(pool *primitive.Pool) (*core.MaxRegister, error) { return core.NewSingleRefresh(pool, n, 0) },
	}
	regs := make([]*core.MaxRegister, len(variants))
	for i, build := range variants {
		reg, err := build(primitive.NewPool())
		if err != nil {
			return nil, fmt.Errorf("E9 variant %d: %w", i, err)
		}
		regs[i] = reg
	}
	for _, v := range vs {
		row := make([]any, 0, 4)
		row = append(row, v)
		for _, reg := range regs {
			ctx := primitive.NewCounting(primitive.NewDirect(0))
			var wErr error
			steps := ctx.Measure(func() { wErr = reg.WriteMax(ctx, v) })
			if wErr != nil {
				return nil, fmt.Errorf("E9 WriteMax(%d): %w", v, wErr)
			}
			row = append(row, steps)
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// --- E10: amortized write cost over whole workloads ---

// E10AmortizedWrites measures total steps for writing an entire ascending
// sequence 0..M-1 (the worst case for per-op bounds: every write is a new
// maximum) and a seeded random sequence, reporting the amortized per-write
// cost. This complements E4's worst-case single-op numbers: in real
// workloads most random writes are obsolete after one leaf read, so the
// amortized costs sit far below the worst case.
func E10AmortizedWrites(m int64) ([]*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("Amortized WriteMax cost over %d-value workloads", m),
		Columns: []string{"impl", "workload", "total steps", "amortized steps/write"},
		Notes: []string{
			"ascending = every write is a fresh maximum (worst case); random = uniform values",
			"AAC's descent aborts at the first raised switch, so obsolete random writes cost ~2 steps amortized;",
			"Algorithm A only short-circuits on its leaf (the paper's line 16), so fresh-but-small values still propagate — the price of the O(1) read",
		},
	}
	n := int(m)
	impls := []struct {
		name  string
		build func(pool *primitive.Pool) (maxreg.MaxRegister, error)
	}{
		{name: "algorithm-a", build: func(pool *primitive.Pool) (maxreg.MaxRegister, error) { return core.New(pool, n, m) }},
		{name: "aac", build: func(pool *primitive.Pool) (maxreg.MaxRegister, error) { return maxreg.NewAAC(pool, m) }},
		{name: "unbounded-aac", build: func(pool *primitive.Pool) (maxreg.MaxRegister, error) { return maxreg.NewUnboundedAAC(pool), nil }},
	}
	workloads := []struct {
		name   string
		values func() []int64
	}{
		{name: "ascending", values: func() []int64 {
			out := make([]int64, m)
			for i := range out {
				out[i] = int64(i)
			}
			return out
		}},
		{name: "random", values: func() []int64 {
			out := make([]int64, m)
			state := uint64(0x9E3779B97F4A7C15)
			for i := range out {
				// SplitMix64: deterministic without package-level rand.
				state += 0x9E3779B97F4A7C15
				z := state
				z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
				z = (z ^ (z >> 27)) * 0x94D049BB133111EB
				out[i] = int64((z ^ (z >> 31)) % uint64(m))
			}
			return out
		}},
	}
	for _, impl := range impls {
		for _, wl := range workloads {
			pool := primitive.NewPool()
			reg, err := impl.build(pool)
			if err != nil {
				return nil, fmt.Errorf("E10 %s: %w", impl.name, err)
			}
			ctx := primitive.NewCounting(primitive.NewDirect(0))
			for _, v := range wl.values() {
				if err := reg.WriteMax(ctx, v); err != nil {
					return nil, fmt.Errorf("E10 %s WriteMax(%d): %w", impl.name, v, err)
				}
			}
			total := ctx.Steps()
			t.AddRow(impl.name, wl.name, total, fmt.Sprintf("%.2f", float64(total)/float64(m)))
		}
	}
	return []*Table{t}, nil
}

// All runs every experiment with default parameters.
func All() ([]*Table, error) {
	var out []*Table
	runs := []func() ([]*Table, error){
		func() ([]*Table, error) { return E1CounterTradeoff(DefaultCounterNs) },
		func() ([]*Table, error) { return E2SnapshotTradeoff(DefaultCounterNs) },
		func() ([]*Table, error) { return E3MaxRegAdversary(DefaultMaxRegKs) },
		func() ([]*Table, error) {
			return E4AlgorithmASteps([]int{16, 64, 256, 1024, 4096}, 4096,
				[]int64{0, 1, 2, 4, 8, 16, 64, 256, 1024, 4095, 4096, 8192, 1 << 20, 1 << 40})
		},
		func() ([]*Table, error) { return E5Compare(DefaultCompareNs) },
		func() ([]*Table, error) { return E7Lemma1Growth(64) },
		func() ([]*Table, error) {
			return E9Ablations(4096, []int64{1, 4, 16, 256, 4095, 4096, 1 << 20})
		},
		func() ([]*Table, error) { return E10AmortizedWrites(1 << 12) },
	}
	for _, run := range runs {
		tables, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, tables...)
	}
	return out, nil
}
