package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/obs/bounds"
	"github.com/restricteduse/tradeoffs/internal/obs/flight"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// This file is the bench-regression harness behind `make bench-json`: a
// fixed-seed throughput suite over the E6 workloads, emitting one JSON
// report (Report) that CI can diff run over run. Unlike the Go benchmarks in
// bench_test.go (which let the testing package pick iteration counts), every
// run here executes an identical, seed-determined schedule, so ns/op noise
// is the only run-to-run variance — steps/op and CAS-failure rates are
// exactly reproducible.

// ReportSchema identifies the JSON layout; bump on incompatible change.
// v2 added allocs_per_op, bytes_per_op, and wall_clock_ms to every result
// row. v1 documents are a strict field subset, so readers (Validate, the
// -check and -diff modes of cmd/benchjson) still accept them.
const ReportSchema = "tradeoffs/bench/v2"

// ReportSchemaV1 is the previous layout, accepted on read.
const ReportSchemaV1 = "tradeoffs/bench/v1"

// ThroughputConfig parameterizes RunThroughput.
type ThroughputConfig struct {
	// Procs is the number of concurrent processes per workload (default 8).
	Procs int
	// OpsPerProc is the per-process operation count (default 20000).
	// Restricted-use workloads cap it further to respect their limits.
	OpsPerProc int
	// Seed feeds every per-process rand.Source (default 1).
	Seed int64
}

// Result is one workload's measurements.
type Result struct {
	// Name is family/impl/workload[/variant], e.g.
	// "counter/farray/increment/padded".
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Ops is the total logical operations across all processes.
	Ops int64 `json:"ops"`
	// NsPerOp is wall-clock elapsed divided by Ops (the only field that
	// varies run to run).
	NsPerOp float64 `json:"ns_per_op"`
	// StepsPerOp is shared-memory events (reads+writes+CAS attempts) per
	// logical operation, measured by obs.Collector.
	StepsPerOp float64 `json:"steps_per_op"`
	// CASFailureRate is failed/attempted CAS, the paper's contention
	// signal; 0 when the workload issues no CAS.
	CASAttempts    int64   `json:"cas_attempts"`
	CASFailures    int64   `json:"cas_failures"`
	CASFailureRate float64 `json:"cas_failure_rate"`
	// AllocsPerOp and BytesPerOp are heap allocations (count and bytes)
	// per logical operation, from runtime.MemStats deltas around the
	// measured region (schema v2). They include every goroutine of the
	// process, so runs must not overlap.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// WallClockMS is the measured region's total elapsed time (schema v2):
	// the scaling signal for rows whose Ops differ, e.g. the explore
	// family's worker sweep.
	WallClockMS float64 `json:"wall_clock_ms"`
	// ExecsPerSec is complete executions per second; only the explore
	// family sets it (its "op" is one complete execution of the simulated
	// system, so the throughput reading deserves its natural unit).
	ExecsPerSec float64 `json:"execs_per_sec,omitempty"`
}

// Suite names, recorded in Report.Suite and used as the time-series axis
// (dev/bench/data.json groups entries per suite).
const (
	SuiteThroughput = "throughput"
	SuiteExplore    = "explore"
	SuiteContention = "contention"
	SuiteDpor       = "dpor"
)

// Report is the bench-json document.
type Report struct {
	Schema string `json:"schema"`
	// Suite names the generator ("throughput" or "explore"). Optional on
	// read: pre-metadata v2 and all v1 documents lack it.
	Suite      string `json:"suite,omitempty"`
	Seed       int64  `json:"seed"`
	Procs      int    `json:"procs"`
	OpsPerProc int    `json:"ops_per_proc"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// Commit and Timestamp attribute the run to a revision and an instant.
	// They are never set by the suite runners — no time.Now in the schema's
	// default path, keeping fixed-seed runs byte-reproducible — only by
	// cmd/benchjson's -commit/-timestamp flags (or its -append stamping).
	// Timestamp, when present, is RFC 3339.
	Commit    string `json:"commit,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`
	// Host is the measuring machine, filled by the suite runners via
	// ReadHost; optional on read for pre-metadata documents.
	Host    *Host    `json:"host,omitempty"`
	Results []Result `json:"results"`
}

// Validate checks the report is schema-complete: CI fails the bench step on
// any error here rather than uploading a half-written artifact.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema && r.Schema != ReportSchemaV1 {
		return fmt.Errorf("bench: schema %q, want %q (or legacy %q)", r.Schema, ReportSchema, ReportSchemaV1)
	}
	if r.Suite != "" && r.Suite != SuiteThroughput && r.Suite != SuiteExplore &&
		r.Suite != SuiteContention && r.Suite != SuiteDpor {
		return fmt.Errorf("bench: unknown suite %q (want %q, %q, %q, or %q)",
			r.Suite, SuiteThroughput, SuiteExplore, SuiteContention, SuiteDpor)
	}
	if r.Timestamp != "" {
		if _, err := time.Parse(time.RFC3339, r.Timestamp); err != nil {
			return fmt.Errorf("bench: timestamp %q is not RFC 3339: %w", r.Timestamp, err)
		}
	}
	if r.Host != nil && r.Host.CPUs < 1 {
		return fmt.Errorf("bench: host block present but cpus=%d", r.Host.CPUs)
	}
	if r.Procs < 1 || r.OpsPerProc < 1 {
		return fmt.Errorf("bench: bad dimensions procs=%d ops_per_proc=%d", r.Procs, r.OpsPerProc)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("bench: no results")
	}
	seen := make(map[string]bool, len(r.Results))
	for i, res := range r.Results {
		if res.Name == "" {
			return fmt.Errorf("bench: result %d has no name", i)
		}
		if seen[res.Name] {
			return fmt.Errorf("bench: duplicate result %q", res.Name)
		}
		seen[res.Name] = true
		if res.Procs < 1 || res.Ops < 1 {
			return fmt.Errorf("bench: %s: bad dimensions procs=%d ops=%d", res.Name, res.Procs, res.Ops)
		}
		if res.NsPerOp <= 0 || res.StepsPerOp <= 0 {
			return fmt.Errorf("bench: %s: non-positive measurements ns/op=%g steps/op=%g",
				res.Name, res.NsPerOp, res.StepsPerOp)
		}
		if res.CASFailures < 0 || res.CASFailures > res.CASAttempts {
			return fmt.Errorf("bench: %s: CAS failures %d out of range [0, %d]",
				res.Name, res.CASFailures, res.CASAttempts)
		}
		if res.CASFailureRate < 0 || res.CASFailureRate > 1 {
			return fmt.Errorf("bench: %s: CAS failure rate %g outside [0,1]", res.Name, res.CASFailureRate)
		}
		// v1 rows predate the allocation and wall-clock columns; only v2
		// documents promise them.
		if r.Schema == ReportSchema {
			if res.AllocsPerOp < 0 || res.BytesPerOp < 0 {
				return fmt.Errorf("bench: %s: negative allocation measurements allocs/op=%g bytes/op=%g",
					res.Name, res.AllocsPerOp, res.BytesPerOp)
			}
			if res.WallClockMS <= 0 {
				return fmt.Errorf("bench: %s: non-positive wall clock %gms", res.Name, res.WallClockMS)
			}
		}
	}
	return nil
}

// measurement is the raw output of one measured region: wall time, merged
// obs stats, and the process-wide heap-allocation deltas. Mallocs and
// TotalAlloc are cumulative and monotone, so the deltas are GC-independent;
// they do cover every goroutine in the process, which is why measured
// regions never overlap.
type measurement struct {
	elapsed time.Duration
	stats   obs.Stats
	allocs  uint64
	bytes   uint64
}

// measure brackets run with MemStats readings and a wall clock.
func measure(run func()) measurement {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	began := time.Now()
	run()
	elapsed := time.Since(began)
	runtime.ReadMemStats(&after)
	return measurement{
		elapsed: elapsed,
		allocs:  after.Mallocs - before.Mallocs,
		bytes:   after.TotalAlloc - before.TotalAlloc,
	}
}

// runParallel drives procs goroutines through ops calls of op each (after a
// common start barrier) and returns the region's measurement (wall time,
// merged obs stats, allocation deltas). op receives an instrumented context
// (so every shared-memory event is counted), the process id, and a
// process-seeded RNG. The workload goroutines run under pprof labels
// (bench_suite, bench_workload), so a -profile capture attributes samples
// to the row that tripped the regression gate.
func runParallel(name string, procs int, ops int64, seed int64, pool *primitive.Pool,
	op func(ctx primitive.Context, id int, rng *rand.Rand, i int64) error) (measurement, error) {
	return runParallelCol(obs.NewCollector(procs, pool), name, procs, ops, seed, op)
}

// runParallelCol is runParallel with a caller-supplied collector, for
// rows that pre-arm it (bound conformance) or inspect it afterwards.
func runParallelCol(col *obs.Collector, name string, procs int, ops int64, seed int64,
	op func(ctx primitive.Context, id int, rng *rand.Rand, i int64) error) (measurement, error) {

	ctxs := make([]*obs.Instrumented, procs)
	for id := range ctxs {
		ctxs[id] = col.Context(id, primitive.NewDirect(id))
	}

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		errMu sync.Mutex
		first error
		m     measurement
	)
	// Goroutines inherit the creator's label set, so spawning inside the
	// labeled region tags every workload goroutine; the labels are a no-op
	// unless a CPU profile is being captured.
	pprof.Do(context.Background(), pprof.Labels("bench_suite", SuiteThroughput, "bench_workload", name),
		func(context.Context) {
			for id := 0; id < procs; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(id)))
					ctx := ctxs[id]
					<-start
					for i := int64(0); i < ops; i++ {
						if err := op(ctx, id, rng, i); err != nil {
							errMu.Lock()
							if first == nil {
								first = fmt.Errorf("process %d op %d: %w", id, i, err)
							}
							errMu.Unlock()
							return
						}
					}
				}(id)
			}
			m = measure(func() {
				close(start)
				wg.Wait()
			})
		})
	m.stats = col.Snapshot()
	return m, first
}

// result folds a run's raw numbers into a Result row. logicalOps is the
// operation count ns/op and steps/op are normalized by (it can differ from
// the call count, e.g. batched adds count the coalesced increments).
func result(name string, procs int, logicalOps int64, m measurement) Result {
	st := m.stats
	steps := st.Reads + st.Writes + st.CASAttempts
	r := Result{
		Name:        name,
		Procs:       procs,
		Ops:         logicalOps,
		NsPerOp:     float64(m.elapsed.Nanoseconds()) / float64(logicalOps),
		StepsPerOp:  float64(steps) / float64(logicalOps),
		CASAttempts: st.CASAttempts,
		CASFailures: st.CASFailures,
		AllocsPerOp: float64(m.allocs) / float64(logicalOps),
		BytesPerOp:  float64(m.bytes) / float64(logicalOps),
		WallClockMS: float64(m.elapsed.Nanoseconds()) / 1e6,
	}
	if st.CASAttempts > 0 {
		r.CASFailureRate = float64(st.CASFailures) / float64(st.CASAttempts)
	}
	return r
}

// capOps bounds a restricted-use workload's per-process count so the total
// stays within limit.
func capOps(opsPerProc, procs int, limit int64) int64 {
	ops := int64(opsPerProc)
	if max := limit / int64(procs); ops > max {
		ops = max
	}
	if ops < 1 {
		ops = 1
	}
	return ops
}

// RunThroughput executes the full fixed-seed suite and returns its report.
func RunThroughput(cfg ThroughputConfig) (*Report, error) {
	if cfg.Procs <= 0 {
		cfg.Procs = 8
	}
	if cfg.OpsPerProc <= 0 {
		cfg.OpsPerProc = 20000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	procs := cfg.Procs
	ops := int64(cfg.OpsPerProc)

	rep := &Report{
		Schema:     ReportSchema,
		Suite:      SuiteThroughput,
		Seed:       cfg.Seed,
		Procs:      procs,
		OpsPerProc: cfg.OpsPerProc,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Host:       ReadHost(),
	}
	add := func(r Result, err error) error {
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, r)
		return nil
	}

	// --- counters: contended increment, every implementation ---

	// The padded/unpadded pair is the false-sharing experiment: identical
	// algorithm and schedule, only the register allocator differs.
	for _, variant := range []struct {
		name string
		pool *primitive.Pool
	}{
		{"counter/farray/increment/unpadded", primitive.NewPool()},
		{"counter/farray/increment/padded", primitive.NewPadded()},
	} {
		c, err := counter.NewFArray(variant.pool, procs)
		if err != nil {
			return nil, err
		}
		m, err := runParallel(variant.name, procs, ops, cfg.Seed, variant.pool,
			func(ctx primitive.Context, _ int, _ *rand.Rand, _ int64) error {
				return c.Increment(ctx)
			})
		if err = add(result(variant.name, procs, ops*int64(procs), m), err); err != nil {
			return nil, err
		}
	}

	// Batched add over the same padded f-array: window deltas coalesce
	// locally and land as one Add, amortizing the O(log N) propagation.
	// Normalized per logical increment so the row compares directly with
	// the increment rows above.
	{
		const window = 8
		pool := primitive.NewPadded()
		c, err := counter.NewFArray(pool, procs)
		if err != nil {
			return nil, err
		}
		pending := make([]struct {
			n int64
			_ [7]int64
		}, procs)
		name := fmt.Sprintf("counter/farray/add/batched-w%d", window)
		m, err := runParallel(name, procs, ops, cfg.Seed, pool,
			func(ctx primitive.Context, id int, _ *rand.Rand, i int64) error {
				pending[id].n++
				if pending[id].n < window && i != ops-1 {
					return nil
				}
				err := c.Add(ctx, pending[id].n)
				pending[id].n = 0
				return err
			})
		if err = add(result(name, procs, ops*int64(procs), m), err); err != nil {
			return nil, err
		}
	}

	// Flight recorder overhead: the padded f-array increment schedule again,
	// with a recorder tap on the hot path. The three rows share one
	// schedule, so ns/op deltas isolate the tap cost — recorder-off is the
	// baseline, sampled is the default 1-in-64 production setting (the
	// acceptance bar: < 10% over off), exact records every operation. Each
	// recorded run doubles as an end-to-end check: the online monitor must
	// stay silent on a correct counter.
	for _, variant := range []struct {
		name   string
		attach bool
		sample int
	}{
		{"counter/farray/increment/flight-off", false, 0},
		{"counter/farray/increment/flight-sampled", true, 64},
		{"counter/farray/increment/flight-exact", true, 1},
	} {
		pool := primitive.NewPadded()
		c, err := counter.NewFArray(pool, procs)
		if err != nil {
			return nil, err
		}
		var (
			rec *flight.Recorder
			tap *flight.Tap
		)
		if variant.attach {
			rec = flight.New(flight.Config{SampleEvery: variant.sample, WindowPerProc: 1 << 12})
			tap = rec.Tap("counter", "bench", procs)
			rec.Start()
		}
		m, err := runParallel(variant.name, procs, ops, cfg.Seed, pool,
			func(ctx primitive.Context, id int, _ *rand.Rand, _ int64) error {
				if tap == nil {
					return c.Increment(ctx)
				}
				tok := tap.Begin(id)
				err := c.Increment(ctx)
				tap.End(id, tok, history.KindIncrement, 0, 0)
				return err
			})
		if rec != nil {
			rec.Stop()
			if vs := rec.Violations(); len(vs) > 0 {
				return nil, fmt.Errorf("bench: flight monitor flagged a correct counter: %v", vs[0].Err)
			}
		}
		if err = add(result(variant.name, procs, ops*int64(procs), m), err); err != nil {
			return nil, err
		}
	}

	// Bound-conformance overhead: the padded f-array increment schedule a
	// third time, with obs spans on every operation. bounds-off is the
	// baseline (spans but no armed budget), bounds-margin adds the scoring
	// against the certified 8logn+2 bound, bounds-full stacks a sampled
	// flight tap on top — the "everything on" production configuration.
	// Each armed run doubles as a live certification: it must finish with
	// zero unexplained exceedances and zero worst-case violations.
	for _, variant := range []struct {
		name   string
		arm    bool
		attach bool
	}{
		{"counter/farray/increment/bounds-off", false, false},
		{"counter/farray/increment/bounds-margin", true, false},
		{"counter/farray/increment/bounds-full", true, true},
	} {
		pool := primitive.NewPadded()
		c, err := counter.NewFArray(pool, procs)
		if err != nil {
			return nil, err
		}
		col := obs.NewCollector(procs, pool)
		inc := col.Op("increment")
		if variant.arm {
			b, err := bounds.Default().StepBound("counter.FArray", "Increment",
				bounds.Params{N: int64(procs), LogN: int64(c.Depth())})
			if err != nil {
				return nil, fmt.Errorf("bench: %w", err)
			}
			if !b.Declared() {
				return nil, fmt.Errorf("bench: no certified bound for counter.FArray.Increment")
			}
			col.SetOpBound("increment", obs.OpBoundConfig{
				Worst:           b.Worst,
				Uncontended:     b.Uncontended,
				WorstExpr:       b.WorstExpr,
				UncontendedExpr: b.UncontendedExpr,
			})
		}
		var (
			rec *flight.Recorder
			tap *flight.Tap
		)
		if variant.attach {
			rec = flight.New(flight.Config{SampleEvery: 64, WindowPerProc: 1 << 12})
			tap = rec.Tap("counter", "bench-bounds", procs)
			rec.Start()
		}
		m, err := runParallelCol(col, variant.name, procs, ops, cfg.Seed,
			func(ctx primitive.Context, id int, _ *rand.Rand, _ int64) error {
				inst := ctx.(*obs.Instrumented)
				if tap == nil {
					sp := inc.Begin(inst)
					err := c.Increment(ctx)
					sp.End()
					return err
				}
				tok := tap.Begin(id)
				sp := inc.Begin(inst)
				err := c.Increment(ctx)
				sp.End()
				tap.End(id, tok, history.KindIncrement, 0, 0)
				return err
			})
		if rec != nil {
			rec.Stop()
			if vs := rec.Violations(); len(vs) > 0 {
				return nil, fmt.Errorf("bench: flight monitor flagged a correct counter: %v", vs[0].Err)
			}
		}
		if variant.arm && err == nil {
			for _, op := range m.stats.Ops {
				if op.Name != "increment" {
					continue
				}
				if op.Bound.ExceedUnexplained > 0 || op.Bound.Violations > 0 {
					return nil, fmt.Errorf("bench: %s: bound conformance failed: %d unexplained exceedances, %d violations of steps<=%d",
						variant.name, op.Bound.ExceedUnexplained, op.Bound.Violations, op.Bound.Worst)
				}
			}
		}
		if err = add(result(variant.name, procs, ops*int64(procs), m), err); err != nil {
			return nil, err
		}
	}

	{
		pool := primitive.NewPadded()
		c, err := counter.NewCAS(pool, 0)
		if err != nil {
			return nil, err
		}
		m, err := runParallel("counter/cas/increment", procs, ops, cfg.Seed, pool,
			func(ctx primitive.Context, _ int, _ *rand.Rand, _ int64) error {
				return c.Increment(ctx)
			})
		if err = add(result("counter/cas/increment", procs, ops*int64(procs), m), err); err != nil {
			return nil, err
		}
	}

	// AAC's limit fixes the total increment budget; keep it modest so the
	// O(log N * log limit) tree stays comparable across -ops settings.
	{
		const aacLimit = 1 << 16
		aacOps := capOps(cfg.OpsPerProc, procs, aacLimit)
		pool := primitive.NewPadded()
		c, err := counter.NewAAC(pool, procs, aacLimit)
		if err != nil {
			return nil, err
		}
		m, err := runParallel("counter/aac/increment", procs, aacOps, cfg.Seed, pool,
			func(ctx primitive.Context, _ int, _ *rand.Rand, _ int64) error {
				return c.Increment(ctx)
			})
		if err = add(result("counter/aac/increment", procs, aacOps*int64(procs), m), err); err != nil {
			return nil, err
		}
	}

	// Corollary 1 reduction. The f-array snapshot's view arena grows with
	// its update limit, so cap the op count to keep memory flat.
	{
		snapOps := capOps(cfg.OpsPerProc, procs, 1<<17)
		pool := primitive.NewPadded()
		snap, err := snapshot.NewFArray(pool, procs, snapOps*int64(procs))
		if err != nil {
			return nil, err
		}
		c := counter.NewFromSnapshot(snap)
		m, err := runParallel("counter/snapshot/increment", procs, snapOps, cfg.Seed, pool,
			func(ctx primitive.Context, _ int, _ *rand.Rand, _ int64) error {
				return c.Increment(ctx)
			})
		if err = add(result("counter/snapshot/increment", procs, snapOps*int64(procs), m), err); err != nil {
			return nil, err
		}
	}

	// --- max registers: contended WriteMax of seeded random values ---

	maxregs := []struct {
		name  string
		bound int64
		build func(pool *primitive.Pool) (maxreg.MaxRegister, error)
	}{
		{"maxreg/algorithmA/writemax", 1 << 20, func(pool *primitive.Pool) (maxreg.MaxRegister, error) {
			return core.New(pool, procs, 1<<20)
		}},
		{"maxreg/aac/writemax", 1 << 12, func(pool *primitive.Pool) (maxreg.MaxRegister, error) {
			return maxreg.NewAAC(pool, 1<<12)
		}},
		{"maxreg/cas/writemax", 1 << 20, func(pool *primitive.Pool) (maxreg.MaxRegister, error) {
			return maxreg.NewCASRegister(pool, 1<<20)
		}},
	}
	for _, mr := range maxregs {
		pool := primitive.NewPadded()
		m, err := mr.build(pool)
		if err != nil {
			return nil, err
		}
		bound := mr.bound
		meas, err := runParallel(mr.name, procs, ops, cfg.Seed, pool,
			func(ctx primitive.Context, _ int, rng *rand.Rand, _ int64) error {
				return m.WriteMax(ctx, rng.Int63n(bound))
			})
		if err = add(result(mr.name, procs, ops*int64(procs), meas), err); err != nil {
			return nil, err
		}
	}

	// --- snapshot: contended single-writer Update ---

	{
		snapOps := capOps(cfg.OpsPerProc, procs, 1<<17)
		pool := primitive.NewPadded()
		s, err := snapshot.NewFArray(pool, procs, snapOps*int64(procs))
		if err != nil {
			return nil, err
		}
		m, err := runParallel("snapshot/farray/update", procs, snapOps, cfg.Seed, pool,
			func(ctx primitive.Context, _ int, _ *rand.Rand, i int64) error {
				return s.Update(ctx, i+1)
			})
		if err = add(result("snapshot/farray/update", procs, snapOps*int64(procs), m), err); err != nil {
			return nil, err
		}
	}

	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}
