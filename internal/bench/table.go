// Package bench is the experiment harness behind EXPERIMENTS.md: it runs
// the experiments defined in DESIGN.md (E1-E5, E7, E9, E10) —
// step-complexity sweeps, adversarial lower-bound constructions, ablations,
// and cross-implementation comparisons — and renders their results as
// tables. (E6, wall-clock throughput, lives in the repository root's
// bench_test.go; E8 is realized as test assertions inside the adversary
// constructions.)
//
// Wall-clock throughput (experiment E6) lives in the repository root's
// bench_test.go, since it uses testing.B.
package bench

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result (one table or figure-equivalent
// of the paper).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Text renders the table with aligned columns for terminals.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	b.WriteString("|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells are simple
// identifiers and numbers; no quoting needed).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(&b, strings.Join(row, ","))
	}
	return b.String()
}
