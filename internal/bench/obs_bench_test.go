package bench

import (
	"testing"

	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// benchSink keeps read results live so the compiler cannot elide the
// measured loop body.
var benchSink int64

// BenchmarkObsOverhead compares the bare Direct context against the
// obs.Instrumented context (with op spans, as the facade wires it) on
// Algorithm A's read and write hot paths. The measured ratios are recorded
// in docs/observability.md; re-run with:
//
//	go test -bench BenchmarkObsOverhead -benchmem ./internal/bench
func BenchmarkObsOverhead(b *testing.B) {
	const n = 64

	build := func(b *testing.B) (*core.MaxRegister, *primitive.Pool) {
		b.Helper()
		pool := primitive.NewPool()
		m, err := core.New(pool, n, 0)
		if err != nil {
			b.Fatal(err)
		}
		return m, pool
	}

	b.Run("direct/read", func(b *testing.B) {
		m, _ := build(b)
		ctx := primitive.NewDirect(0)
		if err := m.WriteMax(ctx, 42); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := m.ReadMax(ctx)
			benchSink += v
		}
	})

	b.Run("instrumented/read", func(b *testing.B) {
		m, pool := build(b)
		col := obs.NewCollector(1, pool)
		ctx := col.Context(0, primitive.NewDirect(0))
		op := col.Op("read")
		if err := m.WriteMax(ctx, 42); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := op.Begin(ctx)
			v := m.ReadMax(ctx)
			sp.End()
			benchSink += v
		}
	})

	b.Run("direct/write", func(b *testing.B) {
		m, _ := build(b)
		ctx := primitive.NewDirect(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.WriteMax(ctx, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("instrumented/write", func(b *testing.B) {
		m, pool := build(b)
		col := obs.NewCollector(1, pool)
		ctx := col.Context(0, primitive.NewDirect(0))
		op := col.Op("write")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := op.Begin(ctx)
			err := m.WriteMax(ctx, int64(i))
			sp.End()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
