package snapshot

import (
	"sync/atomic" //tradeoffvet:outofband arena plumbing models the literature's big-register assumption; indices published through model registers carry the ordering
)

// arena is an append-only, fixed-capacity store of immutable values.
// Registers hold arena indices instead of the values themselves: this
// models the literature's big-register assumption with word-sized base
// objects. Indices are handed out once and never reused, so a CAS on an
// index register can never suffer ABA — it behaves like LL/SC.
//
// Storage is chunked and allocated lazily, so a large declared capacity
// (the restricted-use budget) costs memory only as it is consumed.
//
// Publication safety: a writer fully populates slot idx before publishing
// idx through an atomic register operation, and readers obtain idx from an
// atomic read, so the slot contents are visible by release/acquire
// ordering. An allocated-but-never-published slot (failed CAS) is simply
// garbage.
//
//tradeoffvet:outofband slot storage behind the big-register abstraction: allocation and retrieval are not shared-memory steps, only the index registers are
type arena[T any] struct {
	chunks   []atomic.Pointer[arenaChunk[T]]
	next     atomic.Int64
	capLimit int64
}

const arenaChunkBits = 13 // 8192 slots per chunk

// arenaChunk is one lazily-allocated block of slots.
//
//tradeoffvet:outofband slot storage behind the big-register abstraction (see arena)
type arenaChunk[T any] struct {
	slots [1 << arenaChunkBits]atomic.Pointer[T]
}

// newArena sizes the chunk directory for capacity slots.
//
//tradeoffvet:outofband slot storage behind the big-register abstraction (see arena)
func newArena[T any](capacity int64) *arena[T] {
	chunkCount := (capacity + (1 << arenaChunkBits) - 1) >> arenaChunkBits
	return &arena[T]{
		chunks:   make([]atomic.Pointer[arenaChunk[T]], chunkCount),
		capLimit: capacity,
	}
}

// alloc stores v in a fresh slot and returns its index, or false if the
// arena is exhausted.
func (a *arena[T]) alloc(v *T) (int64, bool) {
	idx := a.next.Add(1) - 1
	if idx >= a.capLimit {
		return 0, false
	}
	chunk := a.chunk(idx >> arenaChunkBits)
	chunk.slots[idx&(1<<arenaChunkBits-1)].Store(v)
	return idx, true
}

// chunk returns chunk ci, creating it on first use. Racing creators are
// reconciled with a CAS; the loser's chunk is garbage-collected.
func (a *arena[T]) chunk(ci int64) *arenaChunk[T] {
	if c := a.chunks[ci].Load(); c != nil {
		return c
	}
	fresh := &arenaChunk[T]{}
	if a.chunks[ci].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return a.chunks[ci].Load()
}

// get returns the value stored at idx.
func (a *arena[T]) get(idx int64) *T {
	return a.chunks[idx>>arenaChunkBits].Load().slots[idx&(1<<arenaChunkBits-1)].Load()
}

// used reports how many slots have been allocated.
func (a *arena[T]) used() int64 {
	n := a.next.Load()
	if n > a.capLimit {
		return a.capLimit
	}
	return n
}

// capacity reports the total number of slots.
func (a *arena[T]) capacity() int64 { return a.capLimit }
