package snapshot

import (
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// maxDCValue is the largest segment value DoubleCollect can encode: values
// share a word with the per-segment sequence number (31 bits value, 32 bits
// sequence).
const maxDCValue = 1<<31 - 1

// DoubleCollect is the textbook snapshot from read/write registers: each
// segment is a (sequence, value) pair packed into one word, and Scan
// repeatedly collects all segments until two consecutive collects are
// identical (a "clean double collect", which must be a consistent cut).
//
// Scan is obstruction-free, not wait-free: concurrent updaters can starve
// it forever. Update is O(1) (one read, one write). This is the
// update-optimal extreme of Corollary 1's tradeoff — and its Scan is O(N)
// per collect with an unbounded number of collects, illustrating why the
// wait-free constant-Scan alternatives in this package must pay O(log N)
// updates.
type DoubleCollect struct {
	n    int
	segs []*primitive.Register //tradeoffvet:param n one single-writer segment per process

	// scratch[i] is process i's private collect buffers, reused across
	// Scans so the hot path stays allocation-free. The single-writer
	// process-id discipline (one goroutine per id) makes the indexing
	// race-free; scanners with ids outside [0, n) fall back to allocating.
	scratch []dcScratch
}

// dcScratch is one process's reusable collect storage.
type dcScratch struct {
	prev, cur, view []int64
}

var _ Snapshot = (*DoubleCollect)(nil)
var _ Viewer = (*DoubleCollect)(nil)

// NewDoubleCollect builds a double-collect snapshot with n >= 1 segments,
// all initially 0.
func NewDoubleCollect(pool *primitive.Pool, n int) (*DoubleCollect, error) {
	if n < 1 {
		return nil, &ValueError{Value: int64(n), Max: 0}
	}
	s := &DoubleCollect{n: n, segs: pool.NewSlice("dc.seg", n, 0), scratch: make([]dcScratch, n)}
	for i := range s.scratch {
		s.scratch[i] = dcScratch{
			prev: make([]int64, n),
			cur:  make([]int64, n),
			view: make([]int64, n),
		}
	}
	return s, nil
}

// Components implements Snapshot.
func (s *DoubleCollect) Components() int { return s.n }

// Update implements Snapshot in exactly 2 steps. Values must be in
// [0, 2^31).
//
//tradeoffvet:bound steps<=2 reads<=1 writes<=1
func (s *DoubleCollect) Update(ctx primitive.Context, v int64) error {
	id, err := checkID(ctx, s.n)
	if err != nil {
		return err
	}
	if v < 0 || v > maxDCValue {
		return &ValueError{Value: v, Max: maxDCValue}
	}
	// Single-writer segment: read own sequence number, bump it.
	old := ctx.Read(s.segs[id])
	seq := old >> 31
	ctx.Write(s.segs[id], (seq+1)<<31|v)
	return nil
}

// Scan implements Snapshot: collect until two consecutive collects agree.
// The returned slice is freshly allocated (caller-owned, per the Snapshot
// contract); the collects themselves reuse per-process scratch. Use
// ScanInto or ScanView for a fully allocation-free read.
//
//tradeoffvet:bound steps<=2n reads<=2n uncontended
func (s *DoubleCollect) Scan(ctx primitive.Context) []int64 {
	out := make([]int64, 0, s.n)
	return s.ScanInto(ctx, out)
}

// ScanInto is Scan appending into dst (reset to length zero): with a
// caller-reused dst of capacity >= Components(), the whole read is
// allocation-free. It returns the filled slice (reallocated only if dst was
// too small).
//
//tradeoffvet:bound steps<=2n reads<=2n uncontended
func (s *DoubleCollect) ScanInto(ctx primitive.Context, dst []int64) []int64 {
	dst = dst[:0]
	for _, w := range s.scanWords(ctx) {
		dst = append(dst, w&maxDCValue)
	}
	return dst
}

// ScanView implements Viewer: the view is the process's scratch buffer,
// valid only until its next Scan/ScanInto/ScanView and never to be
// modified. Scanners with ids outside [0, Components()) allocate instead.
//
//tradeoffvet:bound steps<=2n reads<=2n uncontended
func (s *DoubleCollect) ScanView(ctx primitive.Context) []int64 {
	words := s.scanWords(ctx)
	// Decode into a third buffer: words doubles as the next collect's
	// storage, so the view must not alias it.
	var view []int64
	if id := ctx.ID(); id >= 0 && id < len(s.scratch) {
		view = s.scratch[id].view
	} else {
		view = make([]int64, s.n)
	}
	for i, w := range words {
		view[i] = w & maxDCValue
	}
	return view
}

// scanWords runs the double collect and returns the agreed packed words —
// a scratch buffer, consumed before the process's next collect.
func (s *DoubleCollect) scanWords(ctx primitive.Context) []int64 {
	var prev, cur []int64
	if id := ctx.ID(); id >= 0 && id < len(s.scratch) {
		prev, cur = s.scratch[id].prev, s.scratch[id].cur
	} else {
		prev, cur = make([]int64, s.n), make([]int64, s.n)
	}
	s.collectInto(ctx, prev)
	//tradeoffvet:casretry deliberately obstruction-free: concurrent updaters can starve the scanner forever, which is the baseline the wait-free alternatives in this package are measured against
	for {
		s.collectInto(ctx, cur)
		if equalWords(prev, cur) {
			return cur
		}
		prev, cur = cur, prev
	}
}

func (s *DoubleCollect) collectInto(ctx primitive.Context, words []int64) {
	for i, seg := range s.segs {
		words[i] = ctx.Read(seg)
	}
}

func equalWords(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
