package snapshot

import (
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// maxDCValue is the largest segment value DoubleCollect can encode: values
// share a word with the per-segment sequence number (31 bits value, 32 bits
// sequence).
const maxDCValue = 1<<31 - 1

// DoubleCollect is the textbook snapshot from read/write registers: each
// segment is a (sequence, value) pair packed into one word, and Scan
// repeatedly collects all segments until two consecutive collects are
// identical (a "clean double collect", which must be a consistent cut).
//
// Scan is obstruction-free, not wait-free: concurrent updaters can starve
// it forever. Update is O(1) (one read, one write). This is the
// update-optimal extreme of Corollary 1's tradeoff — and its Scan is O(N)
// per collect with an unbounded number of collects, illustrating why the
// wait-free constant-Scan alternatives in this package must pay O(log N)
// updates.
type DoubleCollect struct {
	n    int
	segs []*primitive.Register
}

var _ Snapshot = (*DoubleCollect)(nil)

// NewDoubleCollect builds a double-collect snapshot with n >= 1 segments,
// all initially 0.
func NewDoubleCollect(pool *primitive.Pool, n int) (*DoubleCollect, error) {
	if n < 1 {
		return nil, &ValueError{Value: int64(n), Max: 0}
	}
	return &DoubleCollect{n: n, segs: pool.NewSlice("dc.seg", n, 0)}, nil
}

// Components implements Snapshot.
func (s *DoubleCollect) Components() int { return s.n }

// Update implements Snapshot in exactly 2 steps. Values must be in
// [0, 2^31).
func (s *DoubleCollect) Update(ctx primitive.Context, v int64) error {
	id, err := checkID(ctx, s.n)
	if err != nil {
		return err
	}
	if v < 0 || v > maxDCValue {
		return &ValueError{Value: v, Max: maxDCValue}
	}
	// Single-writer segment: read own sequence number, bump it.
	old := ctx.Read(s.segs[id])
	seq := old >> 31
	ctx.Write(s.segs[id], (seq+1)<<31|v)
	return nil
}

// Scan implements Snapshot: collect until two consecutive collects agree.
func (s *DoubleCollect) Scan(ctx primitive.Context) []int64 {
	prev := s.collect(ctx)
	//tradeoffvet:casretry deliberately obstruction-free: concurrent updaters can starve the scanner forever, which is the baseline the wait-free alternatives in this package are measured against
	for {
		cur := s.collect(ctx)
		if equalWords(prev, cur) {
			out := make([]int64, s.n)
			for i, w := range cur {
				out[i] = w & maxDCValue
			}
			return out
		}
		prev = cur
	}
}

func (s *DoubleCollect) collect(ctx primitive.Context) []int64 {
	words := make([]int64, s.n)
	for i, seg := range s.segs {
		words[i] = ctx.Read(seg)
	}
	return words
}

func equalWords(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
