package snapshot

import (
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// allocSink defeats dead-code elimination inside AllocsPerRun closures.
var allocSink int64

// The contexts are built once, outside the measured closures: converting the
// value-type Direct to the Context interface boxes it, and that one-time
// allocation must not be charged to the scan under test.

func seedFArray(t *testing.T, n int) (*FArray, []primitive.Context) {
	t.Helper()
	fa, err := NewFArray(primitive.NewPool(), n, 64)
	if err != nil {
		t.Fatalf("NewFArray: %v", err)
	}
	ctxs := make([]primitive.Context, n)
	for id := 0; id < n; id++ {
		ctxs[id] = primitive.NewDirect(id)
		if err := fa.Update(ctxs[id], int64(10+id)); err != nil {
			t.Fatalf("Update(%d): %v", id, err)
		}
	}
	return fa, ctxs
}

func seedDoubleCollect(t *testing.T, n int) (*DoubleCollect, []primitive.Context) {
	t.Helper()
	dc, err := NewDoubleCollect(primitive.NewPool(), n)
	if err != nil {
		t.Fatalf("NewDoubleCollect: %v", err)
	}
	ctxs := make([]primitive.Context, n)
	for id := 0; id < n; id++ {
		ctxs[id] = primitive.NewDirect(id)
		if err := dc.Update(ctxs[id], int64(10+id)); err != nil {
			t.Fatalf("Update(%d): %v", id, err)
		}
	}
	return dc, ctxs
}

func TestFArrayScanViewZeroAlloc(t *testing.T) {
	fa, ctxs := seedFArray(t, 4)
	ctx := ctxs[0]
	avg := testing.AllocsPerRun(200, func() {
		view := fa.ScanView(ctx)
		allocSink = view[len(view)-1]
	})
	if avg != 0 {
		t.Errorf("FArray.ScanView allocates %v objects per call, want 0", avg)
	}
}

func TestFArrayScanIntoZeroAlloc(t *testing.T) {
	fa, ctxs := seedFArray(t, 4)
	ctx := ctxs[1]
	dst := make([]int64, 0, fa.Components())
	avg := testing.AllocsPerRun(200, func() {
		dst = fa.ScanInto(ctx, dst)
		allocSink = dst[0]
	})
	if avg != 0 {
		t.Errorf("FArray.ScanInto allocates %v objects per call, want 0", avg)
	}
}

func TestFArraySingleLeafScanIntoZeroAlloc(t *testing.T) {
	// The degenerate one-leaf tree has no arena view: ScanView must
	// synthesize a slice (and so allocates), but ScanInto stays free.
	fa, ctxs := seedFArray(t, 1)
	ctx := ctxs[0]
	dst := make([]int64, 0, 1)
	avg := testing.AllocsPerRun(200, func() {
		dst = fa.ScanInto(ctx, dst)
		allocSink = dst[0]
	})
	if avg != 0 {
		t.Errorf("single-leaf FArray.ScanInto allocates %v objects per call, want 0", avg)
	}
	if got := fa.ScanView(ctx); len(got) != 1 || got[0] != 10 {
		t.Errorf("single-leaf ScanView = %v, want [10]", got)
	}
}

func TestDoubleCollectScanIntoZeroAlloc(t *testing.T) {
	dc, ctxs := seedDoubleCollect(t, 4)
	ctx := ctxs[0]
	dst := make([]int64, 0, dc.Components())
	avg := testing.AllocsPerRun(200, func() {
		dst = dc.ScanInto(ctx, dst)
		allocSink = dst[0]
	})
	if avg != 0 {
		t.Errorf("DoubleCollect.ScanInto allocates %v objects per call, want 0", avg)
	}
}

func TestDoubleCollectScanViewZeroAlloc(t *testing.T) {
	dc, ctxs := seedDoubleCollect(t, 4)
	ctx := ctxs[2]
	avg := testing.AllocsPerRun(200, func() {
		view := dc.ScanView(ctx)
		allocSink = view[len(view)-1]
	})
	if avg != 0 {
		t.Errorf("DoubleCollect.ScanView allocates %v objects per call, want 0", avg)
	}
}

func TestDoubleCollectOutOfRangeScannerFallsBack(t *testing.T) {
	// Scanner ids outside [0, n) have no scratch: the read still works (it
	// allocates fresh buffers), preserving the pre-sweep any-id contract.
	dc, _ := seedDoubleCollect(t, 3)
	var outside primitive.Context = primitive.NewDirect(7)
	want := []int64{10, 11, 12}
	for name, got := range map[string][]int64{
		"Scan":     dc.Scan(outside),
		"ScanView": dc.ScanView(outside),
		"ScanInto": dc.ScanInto(outside, nil),
	} {
		if len(got) != len(want) {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s = %v, want %v", name, got, want)
				break
			}
		}
	}
}

func TestViewPathsMatchScan(t *testing.T) {
	for name, seed := range map[string]func(*testing.T, int) (Snapshot, []primitive.Context){
		"farray": func(t *testing.T, n int) (Snapshot, []primitive.Context) {
			s, c := seedFArray(t, n)
			return s, c
		},
		"doublecollect": func(t *testing.T, n int) (Snapshot, []primitive.Context) {
			s, c := seedDoubleCollect(t, n)
			return s, c
		},
	} {
		t.Run(name, func(t *testing.T) {
			const n = 5
			s, ctxs := seed(t, n)
			v, ok := s.(Viewer)
			if !ok {
				t.Fatalf("%T does not implement Viewer", s)
			}
			type scanInto interface {
				ScanInto(primitive.Context, []int64) []int64
			}
			for round := 0; round < 3; round++ {
				for id := 0; id < n; id++ {
					if err := s.Update(ctxs[id], int64(100*round+id)); err != nil {
						t.Fatalf("Update: %v", err)
					}
				}
				ctx := ctxs[round%n]
				want := s.Scan(ctx)
				view := v.ScanView(ctx)
				into := s.(scanInto).ScanInto(ctx, make([]int64, 0, n))
				for i := range want {
					if view[i] != want[i] || into[i] != want[i] {
						t.Fatalf("round %d: Scan=%v ScanView=%v ScanInto=%v", round, want, view, into)
					}
				}
			}
		})
	}
}
