package snapshot_test

import (
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// TestAfekScannerBorrowsEmbeddedView drives the exact interleaving where
// the Afek scanner never gets a clean double collect and must return a
// borrowed embedded view: updater u changes its segment twice during the
// scan, and the second update's embedded view (collected entirely inside
// the scan's interval) is what the scanner returns.
//
// With 2 segments: the scanner's collects are 2 reads each; the updater's
// Update is an internal scan (4 reads, clean solo) + own-segment read +
// write = 6 steps.
func TestAfekScannerBorrowsEmbeddedView(t *testing.T) {
	pool := primitive.NewPool()
	snap, err := snapshot.NewAfek(pool, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewSystem()
	defer s.Shutdown()

	// Updater (process 0): two updates to segment 0.
	if err := s.Spawn(0, func(ctx primitive.Context) {
		for _, v := range []int64{7, 9} {
			if err := snap.Update(ctx, v); err != nil {
				panic(err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Scanner (process 1): one scan.
	var view []int64
	if err := s.Spawn(1, func(ctx primitive.Context) {
		view = snap.Scan(ctx)
	}); err != nil {
		t.Fatal(err)
	}

	schedule := []int{
		1, 1, // scanner: first collect (sees initial cells)
		0, 0, 0, 0, 0, 0, // updater: full Update(7)
		1, 1, // scanner: second collect (segment 0 moved once -> dirty)
		0, 0, 0, 0, 0, 0, // updater: full Update(9)
		1, 1, // scanner: third collect (segment 0 moved twice -> borrow)
	}
	if err := s.Run(schedule); err != nil {
		t.Fatal(err)
	}
	if !s.Done(1) {
		t.Fatalf("scanner still active after %d steps (took %d)", len(schedule), s.StepsOf(1))
	}
	if !s.Done(0) {
		t.Fatal("updater still active")
	}

	// The borrowed view is Update(9)'s embedded scan, which ran entirely
	// after Update(7) completed: [7, 0].
	if len(view) != 2 || view[0] != 7 || view[1] != 0 {
		t.Fatalf("borrowed view = %v, want [7 0]", view)
	}
	// And the scanner spent exactly three collects: 6 steps.
	if got := s.StepsOf(1); got != 6 {
		t.Fatalf("scanner steps = %d, want 6", got)
	}
}
