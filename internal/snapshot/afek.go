package snapshot

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Afek is the wait-free single-writer snapshot of Afek, Attiya, Dolev,
// Gafni, Merritt and Shavit (JACM 1993), the standard read/write wait-free
// baseline. Each Update embeds a full view (obtained by an internal scan)
// alongside its value; a scanner that fails to get a clean double collect
// watches for a segment that changes twice and borrows that updater's
// embedded view, which is guaranteed to have been taken inside the
// scanner's interval.
//
// Both Scan and Update are O(N^2) steps worst case (O(N) when
// uncontended). Update capacity is restricted by the view arena (the
// object is built for a declared number of updates), in the same spirit as
// the paper's restricted-use objects.
type Afek struct {
	n     int
	segs  []*primitive.Register // arena indices
	cells *arena[afekCell]
	limit int64
}

type afekCell struct {
	value int64
	seq   int64
	view  []int64 // immutable once published
}

var _ Snapshot = (*Afek)(nil)

// NewAfek builds a wait-free snapshot with n >= 1 segments supporting at
// most maxUpdates Update operations in total.
func NewAfek(pool *primitive.Pool, n int, maxUpdates int64) (*Afek, error) {
	if n < 1 {
		return nil, fmt.Errorf("snapshot: need n >= 1 segments, got %d", n)
	}
	if maxUpdates < 0 {
		return nil, fmt.Errorf("snapshot: negative update limit %d", maxUpdates)
	}
	s := &Afek{
		n:     n,
		cells: newArena[afekCell](1 + maxUpdates),
		limit: maxUpdates,
	}
	zero := &afekCell{view: make([]int64, n)}
	if _, ok := s.cells.alloc(zero); !ok {
		return nil, fmt.Errorf("snapshot: arena capacity too small")
	}
	s.segs = pool.NewSlice("afek.seg", n, 0) // all point at the zero cell
	return s, nil
}

// Components implements Snapshot.
func (s *Afek) Components() int { return s.n }

// Update implements Snapshot: an embedded scan, one read of the writer's
// own segment, and one write.
func (s *Afek) Update(ctx primitive.Context, v int64) error {
	id, err := checkID(ctx, s.n)
	if err != nil {
		return err
	}
	view := s.scan(ctx)
	old := s.cells.get(ctx.Read(s.segs[id]))
	idx, ok := s.cells.alloc(&afekCell{value: v, seq: old.seq + 1, view: view})
	if !ok {
		return &CapacityError{Object: "afek snapshot", Limit: s.limit}
	}
	ctx.Write(s.segs[id], idx)
	return nil
}

// Scan implements Snapshot.
func (s *Afek) Scan(ctx primitive.Context) []int64 {
	return s.scan(ctx)
}

// scan returns a fresh, consistent view. It terminates within 2n+1
// collects: every dirty collect pair charges a move to some segment, and a
// segment observed moving twice donates its embedded view.
func (s *Afek) scan(ctx primitive.Context) []int64 {
	moved := make([]int, s.n)
	prev := s.collect(ctx)
	//tradeoffvet:casretry bounded but not visibly so: every dirty collect pair charges a move to some segment and a segment moving twice donates its view, so at most 2n+1 collects run (see the doc comment)
	for {
		cur := s.collect(ctx)
		dirty := false
		for i := range cur {
			if cur[i] == prev[i] {
				continue
			}
			dirty = true
			moved[i]++
			if moved[i] >= 2 {
				// Segment i moved twice during this scan: the second
				// cell's embedded view was collected entirely within
				// our interval.
				borrowed := s.cells.get(cur[i]).view
				out := make([]int64, s.n)
				copy(out, borrowed)
				return out
			}
		}
		if !dirty {
			out := make([]int64, s.n)
			for i, idx := range cur {
				out[i] = s.cells.get(idx).value
			}
			return out
		}
		prev = cur
	}
}

func (s *Afek) collect(ctx primitive.Context) []int64 {
	idxs := make([]int64, s.n)
	for i, seg := range s.segs {
		idxs[i] = ctx.Read(seg)
	}
	return idxs
}

// UpdatesRemaining reports how many more Update operations the arena can
// accommodate.
func (s *Afek) UpdatesRemaining() int64 {
	return s.cells.capacity() - s.cells.used()
}
