package snapshot

import (
	"errors"
	"math/bits"
	"math/rand"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

func implementations(t *testing.T, n int) map[string]Snapshot {
	t.Helper()
	dc, err := NewDoubleCollect(primitive.NewPool(), n)
	if err != nil {
		t.Fatal(err)
	}
	af, err := NewAfek(primitive.NewPool(), n, 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := NewFArray(primitive.NewPool(), n, 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Snapshot{"doublecollect": dc, "afek": af, "farray": fa}
}

func TestSequentialSemantics(t *testing.T) {
	const n = 4
	for name, s := range implementations(t, n) {
		t.Run(name, func(t *testing.T) {
			if s.Components() != n {
				t.Fatalf("Components = %d", s.Components())
			}
			got := s.Scan(primitive.NewDirect(0))
			for i, v := range got {
				if v != 0 {
					t.Fatalf("initial Scan[%d] = %d", i, v)
				}
			}

			model := make([]int64, n)
			rng := rand.New(rand.NewSource(5))
			for step := 0; step < 2000; step++ {
				id := rng.Intn(n)
				v := rng.Int63n(1 << 20)
				if err := s.Update(primitive.NewDirect(id), v); err != nil {
					t.Fatalf("step %d: Update: %v", step, err)
				}
				model[id] = v
				if step%7 != 0 {
					continue
				}
				got := s.Scan(primitive.NewDirect(rng.Intn(n)))
				for i := range model {
					if got[i] != model[i] {
						t.Fatalf("step %d: Scan = %v, want %v", step, got, model)
					}
				}
			}
		})
	}
}

func TestSingleSegment(t *testing.T) {
	for name, s := range implementations(t, 1) {
		t.Run(name, func(t *testing.T) {
			ctx := primitive.NewDirect(0)
			if err := s.Update(ctx, 9); err != nil {
				t.Fatal(err)
			}
			if got := s.Scan(ctx); len(got) != 1 || got[0] != 9 {
				t.Fatalf("Scan = %v", got)
			}
		})
	}
}

func TestIDValidation(t *testing.T) {
	for name, s := range implementations(t, 2) {
		t.Run(name, func(t *testing.T) {
			if err := s.Update(primitive.NewDirect(2), 1); err == nil {
				t.Fatal("out-of-range id accepted")
			}
			if err := s.Update(primitive.NewDirect(-1), 1); err == nil {
				t.Fatal("negative id accepted")
			}
		})
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewDoubleCollect(primitive.NewPool(), 0); err == nil {
		t.Fatal("NewDoubleCollect(0) succeeded")
	}
	if _, err := NewAfek(primitive.NewPool(), 0, 10); err == nil {
		t.Fatal("NewAfek(0) succeeded")
	}
	if _, err := NewAfek(primitive.NewPool(), 2, -1); err == nil {
		t.Fatal("NewAfek negative budget succeeded")
	}
	if _, err := NewFArray(primitive.NewPool(), 0, 10); err == nil {
		t.Fatal("NewFArray(0) succeeded")
	}
	if _, err := NewFArray(primitive.NewPool(), 2, -1); err == nil {
		t.Fatal("NewFArray negative budget succeeded")
	}
}

func TestDoubleCollectValueRange(t *testing.T) {
	s, err := NewDoubleCollect(primitive.NewPool(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	var valErr *ValueError
	if err := s.Update(ctx, -1); !errors.As(err, &valErr) {
		t.Fatalf("Update(-1): %v", err)
	}
	if err := s.Update(ctx, 1<<31); !errors.As(err, &valErr) {
		t.Fatalf("Update(2^31): %v", err)
	}
	if err := s.Update(ctx, 1<<31-1); err != nil {
		t.Fatalf("Update(max): %v", err)
	}
	if got := s.Scan(ctx)[0]; got != 1<<31-1 {
		t.Fatalf("Scan[0] = %d", got)
	}
}

func TestAfekCapacityExhaustion(t *testing.T) {
	s, err := NewAfek(primitive.NewPool(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	for i := 0; i < 3; i++ {
		if err := s.Update(ctx, int64(i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	var capErr *CapacityError
	if err := s.Update(ctx, 99); !errors.As(err, &capErr) {
		t.Fatalf("over-budget update err = %v", err)
	}
	if capErr.Error() == "" {
		t.Fatal("empty capacity error")
	}
	// State must still be readable and reflect the last good update.
	if got := s.Scan(ctx)[0]; got != 2 {
		t.Fatalf("Scan after exhaustion = %d, want 2", got)
	}
}

func TestFArrayCapacityExhaustion(t *testing.T) {
	s, err := NewFArray(primitive.NewPool(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	var capErr *CapacityError
	sawError := false
	for i := 0; i < 100; i++ {
		if err := s.Update(ctx, int64(i)); err != nil {
			if !errors.As(err, &capErr) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawError = true
			break
		}
	}
	if !sawError {
		t.Fatal("restricted-use budget never enforced")
	}
}

func TestScanStepComplexity(t *testing.T) {
	// The E2/E5 headline: FArray scans in 1 step; DoubleCollect scans in
	// 2N steps uncontended; Afek in 2N (clean first double collect).
	for _, n := range []int{2, 8, 33} {
		impls := implementations(t, n)
		steps := func(s Snapshot) int64 {
			ctx := primitive.NewCounting(primitive.NewDirect(0))
			return ctx.Measure(func() { s.Scan(ctx) })
		}
		if got := steps(impls["farray"]); got != 1 {
			t.Fatalf("n=%d: farray Scan = %d steps", n, got)
		}
		if got := steps(impls["doublecollect"]); got != int64(2*n) {
			t.Fatalf("n=%d: doublecollect Scan = %d steps, want %d", n, got, 2*n)
		}
		if got := steps(impls["afek"]); got != int64(2*n) {
			t.Fatalf("n=%d: afek Scan = %d steps, want %d", n, got, 2*n)
		}
	}
}

func TestUpdateStepComplexity(t *testing.T) {
	for _, n := range []int{2, 8, 33} {
		impls := implementations(t, n)
		steps := func(s Snapshot) int64 {
			ctx := primitive.NewCounting(primitive.NewDirect(0))
			var err error
			got := ctx.Measure(func() { err = s.Update(ctx, 7) })
			if err != nil {
				t.Fatal(err)
			}
			return got
		}
		if got := steps(impls["doublecollect"]); got != 2 {
			t.Fatalf("n=%d: doublecollect Update = %d steps, want 2", n, got)
		}
		// FArray update: 1 leaf write + per level (1 read + 2 child reads + 1 CAS) * 2.
		depth := int64(bits.Len(uint(n - 1)))
		if got, budget := steps(impls["farray"]), 1+8*depth; got > budget {
			t.Fatalf("n=%d: farray Update = %d steps > %d", n, got, budget)
		}
		// Afek update embeds a scan: 2n + own read + write, uncontended.
		if got, budget := steps(impls["afek"]), int64(2*n+2); got > budget {
			t.Fatalf("n=%d: afek Update = %d steps > %d", n, got, budget)
		}
	}
}

// TestConcurrentRegularity drives writers that publish strictly increasing
// values and checks every scan is component-wise sandwiched between the
// values known-written before the scan started and the values possibly
// in flight. With monotone per-segment values, component-wise monotonicity
// of a single scanner's scan sequence is also required.
func TestConcurrentRegularity(t *testing.T) {
	const (
		writers = 4
		perG    = 1500
	)
	for name, s := range implementations(t, writers+1) {
		t.Run(name, func(t *testing.T) {
			var writerWG sync.WaitGroup
			for id := 0; id < writers; id++ {
				writerWG.Add(1)
				go func(id int) {
					defer writerWG.Done()
					ctx := primitive.NewDirect(id)
					for i := 1; i <= perG; i++ {
						if err := s.Update(ctx, int64(i)); err != nil {
							t.Error(err)
							return
						}
					}
				}(id)
			}

			var (
				stop       = make(chan struct{})
				scannerEnd = make(chan struct{})
				scanErr    = make(chan error, 1)
			)
			go func() {
				defer close(scannerEnd)
				ctx := primitive.NewDirect(writers)
				prev := make([]int64, writers+1)
				for {
					select {
					case <-stop:
						return
					default:
					}
					got := s.Scan(ctx)
					for i := range got {
						if got[i] < prev[i] {
							scanErr <- errors.New("segment regressed")
							return
						}
						if got[i] > perG {
							scanErr <- errors.New("segment overshot")
							return
						}
						prev[i] = got[i]
					}
				}
			}()

			writerWG.Wait()
			close(stop)
			<-scannerEnd

			select {
			case err := <-scanErr:
				t.Fatal(err)
			default:
			}
			if t.Failed() {
				return
			}

			final := s.Scan(primitive.NewDirect(writers))
			for i := 0; i < writers; i++ {
				if final[i] != perG {
					t.Fatalf("final Scan[%d] = %d, want %d", i, final[i], perG)
				}
			}
		})
	}
}

func TestScanReturnsFreshSlice(t *testing.T) {
	// Mutating a returned scan must not corrupt the object.
	for name, s := range implementations(t, 3) {
		t.Run(name, func(t *testing.T) {
			ctx := primitive.NewDirect(0)
			if err := s.Update(ctx, 5); err != nil {
				t.Fatal(err)
			}
			v := s.Scan(ctx)
			v[0] = 12345
			if got := s.Scan(ctx)[0]; got != 5 {
				t.Fatalf("aliasing: second Scan[0] = %d", got)
			}
		})
	}
}

func TestArenaExhaustionAndReuse(t *testing.T) {
	a := newArena[int64](2)
	one, two := int64(1), int64(2)
	i1, ok := a.alloc(&one)
	if !ok || i1 != 0 {
		t.Fatalf("first alloc = %d, %v", i1, ok)
	}
	i2, ok := a.alloc(&two)
	if !ok || i2 != 1 {
		t.Fatalf("second alloc = %d, %v", i2, ok)
	}
	if _, ok := a.alloc(&one); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if got := *a.get(i1); got != 1 {
		t.Fatalf("get(0) = %d", got)
	}
	if a.used() != 2 || a.capacity() != 2 {
		t.Fatalf("used/capacity = %d/%d", a.used(), a.capacity())
	}
}
