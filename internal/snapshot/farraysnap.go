package snapshot

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/b1tree"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// FArray is the constant-Scan snapshot: a Jayanti-style f-array (PODC
// 2002) whose aggregate is view concatenation. Leaves hold raw segment
// values; every internal node holds (an arena index of) the concatenated
// view of its subtree, refreshed twice per level on each update's
// leaf-to-root path, so the root always holds a linearizable full view.
//
//	Scan:   1 step (read the root's view index; dereference is local).
//	Update: O(log N) steps (leaf write + 8 per level).
//
// Corollary 1 of the paper proves this update cost is asymptotically
// optimal for any snapshot with O(1) — indeed any o(log N)-competitive —
// Scan from read/write/CAS. The E2 experiment measures both sides.
//
// The object is restricted-use: a construction-time update budget sizes the
// view arena (each update consumes at most two views per tree level).
type FArray struct {
	n     int
	tree  *b1tree.Tree
	regs  []*primitive.Register
	views *arena[[]int64]
	limit int64
}

var _ Snapshot = (*FArray)(nil)
var _ Viewer = (*FArray)(nil)

// NewFArray builds a constant-Scan snapshot with n >= 1 segments
// supporting at most maxUpdates Update operations in total.
func NewFArray(pool *primitive.Pool, n int, maxUpdates int64) (*FArray, error) {
	if n < 1 {
		return nil, fmt.Errorf("snapshot: need n >= 1 segments, got %d", n)
	}
	if maxUpdates < 0 {
		return nil, fmt.Errorf("snapshot: negative update limit %d", maxUpdates)
	}
	tree, err := b1tree.NewComplete(n)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}

	depth := int64(tree.LeafDepth(0))
	capacity := int64(len(tree.Nodes)) + 2*depth*maxUpdates + 4
	s := &FArray{
		n:     n,
		tree:  tree,
		views: newArena[[]int64](capacity),
		limit: maxUpdates,
	}

	s.regs = make([]*primitive.Register, len(tree.Nodes))
	for k, node := range tree.Nodes {
		if node.IsLeaf() {
			s.regs[k] = pool.New("fsnap.leaf", 0)
			continue
		}
		zero := make([]int64, subtreeWidth(node))
		idx, ok := s.views.alloc(&zero)
		if !ok {
			return nil, fmt.Errorf("snapshot: arena capacity too small")
		}
		s.regs[k] = pool.New("fsnap.node", idx)
	}
	return s, nil
}

// Components implements Snapshot.
func (s *FArray) Components() int { return s.n }

// Depth returns the complete tree's leaf depth — the "logn" symbol of
// the certified Update bound (steps <= 8logn+1).
func (s *FArray) Depth() int { return s.tree.LeafDepth(0) }

// Scan implements Snapshot in exactly one shared-memory step. The returned
// slice is a fresh copy (caller-owned, per the Snapshot contract); ScanView
// reads the same cut without copying.
//
//tradeoffvet:bound steps<=1 reads<=1
func (s *FArray) Scan(ctx primitive.Context) []int64 {
	view := s.ScanView(ctx)
	out := make([]int64, len(view))
	copy(out, view)
	return out
}

// ScanView implements Viewer in the same single shared-memory step as Scan,
// returning the immutable arena view directly: zero-copy and, for trees
// with at least two leaves, allocation-free. Views are append-only arena
// slots that are never modified after publication, so the slice may be
// retained — but must never be written. (The degenerate single-leaf tree
// has no arena view and synthesizes a one-element slice.)
//
//tradeoffvet:bound steps<=1 reads<=1
func (s *FArray) ScanView(ctx primitive.Context) []int64 {
	root := s.tree.Root
	if root.IsLeaf() {
		return []int64{ctx.Read(s.regs[root.Index])}
	}
	return *s.views.get(ctx.Read(s.regs[root.Index]))
}

// ScanInto is Scan appending into dst (reset to length zero): with a
// caller-reused dst of capacity >= Components(), the whole read is
// allocation-free even for single-leaf trees.
//
//tradeoffvet:bound steps<=1 reads<=1
func (s *FArray) ScanInto(ctx primitive.Context, dst []int64) []int64 {
	dst = dst[:0]
	root := s.tree.Root
	if root.IsLeaf() {
		return append(dst, ctx.Read(s.regs[root.Index]))
	}
	return append(dst, *s.views.get(ctx.Read(s.regs[root.Index]))...)
}

// Update implements Snapshot in O(log N) steps: one leaf write plus two
// read-merge-CAS refreshes per level, each merge reading both children.
//
//tradeoffvet:bound steps<=8logn+1 reads<=6logn writes<=1 cas<=2logn
func (s *FArray) Update(ctx primitive.Context, v int64) error {
	id, err := checkID(ctx, s.n)
	if err != nil {
		return err
	}
	leaf := s.tree.Leaves[id]
	ctx.Write(s.regs[leaf.Index], v)

	//tradeoffvet:loopbound logn leaf-to-root walk: one iteration per tree level
	for node := leaf.Parent; node != nil; node = node.Parent {
		cell := s.regs[node.Index]
		for attempt := 0; attempt < 2; attempt++ {
			oldIdx := ctx.Read(cell)
			merged := make([]int64, 0, subtreeWidth(node))
			merged = s.appendChild(ctx, merged, node.Left)
			merged = s.appendChild(ctx, merged, node.Right)
			newIdx, ok := s.views.alloc(&merged)
			if !ok {
				return &CapacityError{Object: "farray snapshot", Limit: s.limit}
			}
			ctx.CAS(cell, oldIdx, newIdx)
		}
	}
	return nil
}

// appendChild appends the child's current view (or leaf value) to dst in
// one shared-memory step.
func (s *FArray) appendChild(ctx primitive.Context, dst []int64, child *b1tree.Node) []int64 {
	if child.IsLeaf() {
		return append(dst, ctx.Read(s.regs[child.Index]))
	}
	view := *s.views.get(ctx.Read(s.regs[child.Index]))
	return append(dst, view...)
}

// UpdatesRemaining estimates how many more updates the arena can absorb in
// the worst case (two view allocations per level each).
func (s *FArray) UpdatesRemaining() int64 {
	depth := int64(s.tree.LeafDepth(0))
	if depth == 0 {
		return 1 << 62 // single leaf: updates never allocate
	}
	return (s.views.capacity() - s.views.used()) / (2 * depth)
}

// subtreeWidth counts the leaves under node.
func subtreeWidth(node *b1tree.Node) int {
	if node.IsLeaf() {
		return 1
	}
	return subtreeWidth(node.Left) + subtreeWidth(node.Right)
}
