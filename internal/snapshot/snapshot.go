// Package snapshot provides single-writer atomic snapshot objects: an array
// of N segments where process i atomically overwrites segment i (Update)
// and any process atomically reads all segments (Scan). See Hendler &
// Khait, PODC 2014, Section 2, and Corollary 1 for the Scan/Update
// step-complexity tradeoff these implementations bracket.
//
// Implementations:
//
//   - DoubleCollect: the textbook obstruction-free snapshot from read/write
//     registers. Scan is O(N) per collect but can be starved by concurrent
//     updaters; Update is O(1).
//   - Afek: the Afek-Attiya-Dolev-Gafni-Merritt-Shavit wait-free snapshot.
//     Scan and Update are O(N^2) worst case; updates embed a full view so
//     starved scanners can borrow one.
//   - FArray: the Jayanti-style constant-Scan snapshot (a tree of partial
//     views refreshed with CAS). Scan is O(1) steps, Update is O(log N) —
//     the configuration Corollary 1 proves update-optimal for any
//     constant-Scan implementation.
//
// Step accounting counts shared-memory events only. The Afek and FArray
// implementations model the literature's "big register" assumption by
// storing immutable views in a side arena and CASing word-sized arena
// indices; dereferencing an index is local computation (no step), and
// indices are never reused, so index-CAS has LL/SC semantics (no ABA).
package snapshot

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Snapshot is the single-writer atomic snapshot interface.
//
// The process-id discipline is the usual one: segment i is written only
// through contexts with ID() == i, and at most one goroutine uses a given
// process id at a time.
type Snapshot interface {
	// Update atomically sets segment ctx.ID() to v.
	Update(ctx primitive.Context, v int64) error

	// Scan atomically reads all segments. The returned slice is owned by
	// the caller.
	Scan(ctx primitive.Context) []int64

	// Components returns the number of segments.
	Components() int
}

// Viewer is the allocation-free read path some snapshots offer alongside
// Scan. Readers on hot paths (counter.FromSnapshot.Read, the bench
// harness) type-assert for it and fall back to Scan.
type Viewer interface {
	// ScanView atomically reads all segments like Scan but without copying:
	// the returned slice is implementation-owned and must never be
	// modified. How long it stays valid is implementation-defined — FArray
	// views are immutable forever, DoubleCollect views only until the same
	// process's next scan — so callers that outlive the current operation
	// must copy.
	ScanView(ctx primitive.Context) []int64
}

// CapacityError reports that a restricted-use implementation ran out of its
// pre-declared update budget.
type CapacityError struct {
	Object string
	Limit  int64
}

// Error implements error.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("snapshot: %s exhausted its restricted-use capacity of %d updates", e.Object, e.Limit)
}

// ValueError reports a segment value outside an implementation's encodable
// range.
type ValueError struct {
	Value int64
	Max   int64
}

// Error implements error.
func (e *ValueError) Error() string {
	return fmt.Sprintf("snapshot: value %d outside encodable range [0, %d]", e.Value, e.Max)
}

func checkID(ctx primitive.Context, n int) (int, error) {
	id := ctx.ID()
	if id < 0 || id >= n {
		return 0, fmt.Errorf("snapshot: process id %d out of range [0,%d)", id, n)
	}
	return id, nil
}
