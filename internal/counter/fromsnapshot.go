package counter

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// FromSnapshot is Corollary 1's reduction: a counter built from any
// single-writer snapshot object. Process i increments by Updating segment i
// with its private increment count; readers Scan and sum the segments.
//
// The reduction transfers the snapshot tradeoff to counters: if Scan is
// O(f(N)) then CounterRead is O(f(N)), and CounterIncrement is exactly one
// Update (plus one local addition), so the counter lower bound of Theorem 1
// forces Update to be Omega(log(N/f(N))) — which is how the paper proves
// Corollary 1.
type FromSnapshot struct {
	snap snapshot.Snapshot

	// local[i] is process i's private increment count. Single-writer:
	// only the goroutine driving process i touches local[i].pad, and the
	// padding keeps writers off each other's cache lines.
	local []paddedCount
}

type paddedCount struct {
	count int64
	_     [7]int64 // pad to a 64-byte cache line
}

var _ Counter = (*FromSnapshot)(nil)

// NewFromSnapshot wraps snap as a counter. Each of snap's segments belongs
// to the same-index process.
func NewFromSnapshot(snap snapshot.Snapshot) *FromSnapshot {
	return &FromSnapshot{
		snap:  snap,
		local: make([]paddedCount, snap.Components()),
	}
}

// Limit implements Counter: the underlying snapshot's restrictions apply
// but are not statically known here, so FromSnapshot reports unbounded and
// surfaces the snapshot's CapacityError from Increment when it hits.
func (c *FromSnapshot) Limit() int64 { return 0 }

// Read implements Counter: one Scan plus a local sum. Snapshots exposing
// the zero-copy Viewer path (FArray, DoubleCollect) are summed without
// allocating; the view is consumed before Read returns, within every
// implementation's validity window.
func (c *FromSnapshot) Read(ctx primitive.Context) int64 {
	var total int64
	if v, ok := c.snap.(snapshot.Viewer); ok {
		for _, x := range v.ScanView(ctx) {
			total += x
		}
		return total
	}
	for _, v := range c.snap.Scan(ctx) {
		total += v
	}
	return total
}

// Increment implements Counter: exactly one Update.
func (c *FromSnapshot) Increment(ctx primitive.Context) error {
	return c.Add(ctx, 1)
}

// Add implements Counter: the whole delta is exactly one Update of the
// process's segment, so batching transfers Corollary 1's amortization to
// any snapshot backend.
func (c *FromSnapshot) Add(ctx primitive.Context, delta int64) error {
	if delta < 0 {
		return &NegativeDeltaError{Delta: delta}
	}
	if delta == 0 {
		return nil
	}
	id := ctx.ID()
	if id < 0 || id >= len(c.local) {
		return fmt.Errorf("counter: process id %d out of range [0,%d)", id, len(c.local))
	}
	next := c.local[id].count + delta
	if err := c.snap.Update(ctx, next); err != nil {
		return fmt.Errorf("counter: %w", err)
	}
	c.local[id].count = next
	return nil
}
