package counter

import (
	"errors"
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/b1tree"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// AAC is the Aspnes-Attiya-Censor restricted-use counter from read/write
// registers only (J. ACM 2012; reference [2] of the paper): a balanced
// binary tree whose i-th leaf is process i's private increment count and
// whose internal nodes are (limit+1)-bounded max registers caching the sum
// of their subtrees. Subtree sums only grow, so writing a stale sum through
// WriteMax is harmless — the max register keeps the freshest one.
//
//	CounterRead:      ReadMax on the root = O(log limit) = O(log N) steps
//	                  for polynomially many increments.
//	CounterIncrement: 2 leaf steps + on each of the O(log N) path levels
//	                  two child readings and one WriteMax =
//	                  O(log N * log limit) = O(log^2 N).
//
// Theorem 2 of the paper proves the increment cost of any such read-optimal
// read/write counter is Omega(log N); this implementation is a log N factor
// above that floor, and nothing from read/write/CAS can close the gap to
// sub-logarithmic (Theorem 1).
type AAC struct {
	n     int
	limit int64
	tree  *b1tree.Tree

	// leafRegs[i] is process i's count register; nodeRegs[k] is the max
	// register of internal node k (nil for leaves).
	leafRegs []*primitive.Register
	nodeRegs []*maxreg.AAC
}

var _ Counter = (*AAC)(nil)

// NewAAC builds an AAC counter for n >= 1 processes supporting at most
// limit >= 1 increments in total.
func NewAAC(pool *primitive.Pool, n int, limit int64) (*AAC, error) {
	if n < 1 {
		return nil, fmt.Errorf("counter: need n >= 1 processes, got %d", n)
	}
	if limit < 1 {
		return nil, fmt.Errorf("counter: AAC needs a restricted-use limit >= 1, got %d", limit)
	}
	tree, err := b1tree.NewComplete(n)
	if err != nil {
		return nil, fmt.Errorf("counter: %w", err)
	}

	c := &AAC{
		n:        n,
		limit:    limit,
		tree:     tree,
		leafRegs: make([]*primitive.Register, n),
		nodeRegs: make([]*maxreg.AAC, len(tree.Nodes)),
	}
	for k, node := range tree.Nodes {
		if node.IsLeaf() {
			c.leafRegs[node.Leaf] = pool.New("aacctr.leaf", 0)
			continue
		}
		mr, err := maxreg.NewAAC(pool, limit+1)
		if err != nil {
			return nil, fmt.Errorf("counter: node max register: %w", err)
		}
		c.nodeRegs[k] = mr
	}
	return c, nil
}

// Limit implements Counter.
func (c *AAC) Limit() int64 { return c.limit }

// Read implements Counter in O(log limit) steps.
func (c *AAC) Read(ctx primitive.Context) int64 {
	return c.readNode(ctx, c.tree.Root)
}

// Increment implements Counter in O(log N * log limit) steps.
func (c *AAC) Increment(ctx primitive.Context) error {
	return c.Add(ctx, 1)
}

// Add implements Counter: the whole delta lands with one leaf write and one
// leaf-to-root propagation — the same O(log N * log limit) steps a single
// Increment costs — consuming delta units of the restricted-use budget.
func (c *AAC) Add(ctx primitive.Context, delta int64) error {
	if delta < 0 {
		return &NegativeDeltaError{Delta: delta}
	}
	if delta == 0 {
		return nil
	}
	id := ctx.ID()
	if id < 0 || id >= c.n {
		return fmt.Errorf("counter: process id %d out of range [0,%d)", id, c.n)
	}
	leaf := c.tree.Leaves[id]

	// Single-writer count: read-then-write is not a lost-update race.
	cur := ctx.Read(c.leafRegs[id])
	if cur+delta > c.limit {
		return &LimitError{Limit: c.limit}
	}
	ctx.Write(c.leafRegs[id], cur+delta)

	for node := leaf.Parent; node != nil; node = node.Parent {
		sum := c.readNode(ctx, node.Left) + c.readNode(ctx, node.Right)
		if err := c.nodeRegs[node.Index].WriteMax(ctx, sum); err != nil {
			var rangeErr *maxreg.RangeError
			if errors.As(err, &rangeErr) {
				return &LimitError{Limit: c.limit}
			}
			return fmt.Errorf("counter: propagate: %w", err)
		}
	}
	return nil
}

// readNode reads a subtree's cached sum: the leaf register directly, or the
// internal node's max register.
func (c *AAC) readNode(ctx primitive.Context, node *b1tree.Node) int64 {
	if node.IsLeaf() {
		return ctx.Read(c.leafRegs[node.Leaf])
	}
	return c.nodeRegs[node.Index].ReadMax(ctx)
}
