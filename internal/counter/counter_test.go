package counter

import (
	"errors"
	"math/bits"
	"sync"
	"testing"
	"testing/quick"

	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// mustCAS unwraps NewCAS in tests that construct with known-valid limits.
func mustCAS(c *CAS, err error) *CAS {
	if err != nil {
		panic(err)
	}
	return c
}

// implementations builds every counter in the package (including the
// Corollary 1 reductions over each snapshot type) for n processes with the
// given restricted-use limit where one is required.
func implementations(t *testing.T, n int, limit int64) map[string]Counter {
	t.Helper()
	aac, err := NewAAC(primitive.NewPool(), n, limit)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := NewFArray(primitive.NewPool(), n)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := snapshot.NewDoubleCollect(primitive.NewPool(), n)
	if err != nil {
		t.Fatal(err)
	}
	af, err := snapshot.NewAfek(primitive.NewPool(), n, limit+1)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := snapshot.NewFArray(primitive.NewPool(), n, limit+1)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Counter{
		"aac":          aac,
		"farray":       fa,
		"cas":          mustCAS(NewCAS(primitive.NewPool(), 0)),
		"snap/collect": NewFromSnapshot(dc),
		"snap/afek":    NewFromSnapshot(af),
		"snap/farray":  NewFromSnapshot(fs),
	}
}

func TestSequentialExactness(t *testing.T) {
	const n, limit = 4, 4096
	for name, c := range implementations(t, n, limit) {
		t.Run(name, func(t *testing.T) {
			ctxs := make([]primitive.Context, n)
			for i := range ctxs {
				ctxs[i] = primitive.NewDirect(i)
			}
			if got := c.Read(ctxs[0]); got != 0 {
				t.Fatalf("initial Read = %d", got)
			}
			var model int64
			for i := 0; i < 1000; i++ {
				id := i % n
				if err := c.Increment(ctxs[id]); err != nil {
					t.Fatalf("increment %d: %v", i, err)
				}
				model++
				if i%5 == 0 {
					if got := c.Read(ctxs[(id+1)%n]); got != model {
						t.Fatalf("after %d increments: Read = %d", model, got)
					}
				}
			}
		})
	}
}

func TestIDValidation(t *testing.T) {
	for name, c := range implementations(t, 2, 64) {
		if name == "cas" {
			continue // the CAS counter is id-agnostic by design
		}
		t.Run(name, func(t *testing.T) {
			if err := c.Increment(primitive.NewDirect(5)); err == nil {
				t.Fatal("out-of-range id accepted")
			}
			if err := c.Increment(primitive.NewDirect(-1)); err == nil {
				t.Fatal("negative id accepted")
			}
		})
	}
}

func TestAACLimitEnforced(t *testing.T) {
	// Per-process counts share one global limit; driving one process past
	// it must fail with LimitError.
	c, err := NewAAC(primitive.NewPool(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	for i := 0; i < 5; i++ {
		if err := c.Increment(ctx); err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
	}
	var limitErr *LimitError
	if err := c.Increment(ctx); !errors.As(err, &limitErr) {
		t.Fatalf("over-limit increment err = %v", err)
	}
	if limitErr.Limit != 5 || limitErr.Error() == "" {
		t.Fatalf("LimitError = %+v", limitErr)
	}
	if got := c.Read(ctx); got != 5 {
		t.Fatalf("Read after rejection = %d", got)
	}
	if c.Limit() != 5 {
		t.Fatalf("Limit = %d", c.Limit())
	}
}

func TestAACTotalLimitAcrossProcesses(t *testing.T) {
	// The max registers bound the TOTAL count: pushing the global sum past
	// the limit from different processes must also fail.
	c, err := NewAAC(primitive.NewPool(), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	for i := 0; i < 8; i++ {
		if err := c.Increment(primitive.NewDirect(i % 4)); err != nil {
			var limitErr *LimitError
			if !errors.As(err, &limitErr) {
				t.Fatalf("unexpected error: %v", err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("8 increments against limit 6 all succeeded")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewAAC(primitive.NewPool(), 0, 10); err == nil {
		t.Fatal("NewAAC(0 procs) succeeded")
	}
	if _, err := NewAAC(primitive.NewPool(), 2, 0); err == nil {
		t.Fatal("NewAAC(limit 0) succeeded")
	}
	if _, err := NewFArray(primitive.NewPool(), 0); err == nil {
		t.Fatal("NewFArray(0) succeeded")
	}
	if _, err := NewCAS(primitive.NewPool(), -1); err == nil {
		t.Fatal("NewCAS(limit -1) succeeded")
	}
	if _, err := NewCAS(primitive.NewPool(), 0); err != nil {
		t.Fatalf("NewCAS(limit 0): %v", err)
	}
}

func TestAddExactness(t *testing.T) {
	// Batched deltas must land exactly, interleaved with single increments
	// and reads, on every implementation.
	const n, limit = 4, 1 << 14
	for name, c := range implementations(t, n, limit) {
		t.Run(name, func(t *testing.T) {
			ctxs := make([]primitive.Context, n)
			for i := range ctxs {
				ctxs[i] = primitive.NewDirect(i)
			}
			var model int64
			for i := 0; i < 400; i++ {
				id := i % n
				switch i % 3 {
				case 0:
					if err := c.Increment(ctxs[id]); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					model++
				case 1:
					delta := int64(i%7) * 3 // includes delta == 0 no-ops
					if err := c.Add(ctxs[id], delta); err != nil {
						t.Fatalf("op %d: Add(%d): %v", i, delta, err)
					}
					model += delta
				default:
					if got := c.Read(ctxs[(id+1)%n]); got != model {
						t.Fatalf("op %d: Read = %d, want %d", i, got, model)
					}
				}
			}
			if got := c.Read(ctxs[0]); got != model {
				t.Fatalf("final Read = %d, want %d", got, model)
			}
		})
	}
}

func TestAddRejectsNegativeDelta(t *testing.T) {
	for name, c := range implementations(t, 2, 64) {
		t.Run(name, func(t *testing.T) {
			ctx := primitive.NewDirect(0)
			var negErr *NegativeDeltaError
			if err := c.Add(ctx, -3); !errors.As(err, &negErr) {
				t.Fatalf("Add(-3) err = %v, want NegativeDeltaError", err)
			}
			if negErr.Delta != -3 || negErr.Error() == "" {
				t.Fatalf("NegativeDeltaError = %+v", negErr)
			}
			if got := c.Read(ctx); got != 0 {
				t.Fatalf("rejected Add perturbed the count: %d", got)
			}
		})
	}
}

func TestAddConsumesLimit(t *testing.T) {
	// A delta must consume delta units of the restricted-use budget, and an
	// over-budget delta must be rejected without partial effect.
	builds := map[string]func() (Counter, error){
		"aac": func() (Counter, error) { return NewAAC(primitive.NewPool(), 2, 10) },
		"cas": func() (Counter, error) { return NewCAS(primitive.NewPool(), 10) },
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			c, err := build()
			if err != nil {
				t.Fatal(err)
			}
			ctx := primitive.NewDirect(0)
			if err := c.Add(ctx, 7); err != nil {
				t.Fatalf("Add(7): %v", err)
			}
			var limitErr *LimitError
			if err := c.Add(ctx, 4); !errors.As(err, &limitErr) {
				t.Fatalf("Add(4) past limit err = %v, want LimitError", err)
			}
			if got := c.Read(ctx); got != 7 {
				t.Fatalf("rejected Add partially applied: Read = %d, want 7", got)
			}
			if err := c.Add(ctx, 3); err != nil {
				t.Fatalf("Add(3) filling the budget exactly: %v", err)
			}
			if got := c.Read(ctx); got != 10 {
				t.Fatalf("final Read = %d, want 10", got)
			}
		})
	}
}

func TestAddSingleUpdateCost(t *testing.T) {
	// The amortization claim: Add(delta) costs one propagation, the same as
	// a single Increment, independent of delta.
	for _, n := range []int{2, 8, 32} {
		impls := implementations(t, n, 1<<12)
		for _, name := range []string{"farray", "aac", "cas", "snap/farray"} {
			c := impls[name]
			ctx := primitive.NewCounting(primitive.NewDirect(0))
			var err error
			one := ctx.Measure(func() { err = c.Increment(ctx) })
			if err != nil {
				t.Fatal(err)
			}
			batched := ctx.Measure(func() { err = c.Add(ctx, 64) })
			if err != nil {
				t.Fatal(err)
			}
			// The batched update may pay a handful of extra steps (e.g. AAC
			// max-register writes scale with log of the stored value) but
			// must stay within a small constant of one increment — never
			// 64x.
			if batched > 2*one+8 {
				t.Fatalf("n=%d %s: Add(64) = %d steps vs Increment = %d", n, name, batched, one)
			}
		}
	}
}

func TestSingleProcess(t *testing.T) {
	for name, c := range implementations(t, 1, 100) {
		t.Run(name, func(t *testing.T) {
			ctx := primitive.NewDirect(0)
			for i := 0; i < 10; i++ {
				if err := c.Increment(ctx); err != nil {
					t.Fatal(err)
				}
			}
			if got := c.Read(ctx); got != 10 {
				t.Fatalf("Read = %d", got)
			}
		})
	}
}

func TestReadStepComplexity(t *testing.T) {
	for _, n := range []int{2, 8, 32} {
		impls := implementations(t, n, 1<<12)
		steps := func(c Counter) int64 {
			ctx := primitive.NewCounting(primitive.NewDirect(0))
			return ctx.Measure(func() { c.Read(ctx) })
		}
		// Constant-read implementations: exactly 1 step.
		if got := steps(impls["farray"]); got != 1 {
			t.Fatalf("n=%d: farray Read = %d steps", n, got)
		}
		if got := steps(impls["cas"]); got != 1 {
			t.Fatalf("n=%d: cas Read = %d steps", n, got)
		}
		if got := steps(impls["snap/farray"]); got != 1 {
			t.Fatalf("n=%d: snap/farray Read = %d steps", n, got)
		}
		// AAC read = one root ReadMax = ceil(log2(limit+1)) steps, N-free.
		logM := int64(bits.Len64(uint64(1 << 12)))
		if got := steps(impls["aac"]); got > logM {
			t.Fatalf("n=%d: aac Read = %d steps > %d", n, got, logM)
		}
		// Snapshot-reduction reads cost one Scan: 2N for the collects.
		if got := steps(impls["snap/collect"]); got != int64(2*n) {
			t.Fatalf("n=%d: snap/collect Read = %d steps, want %d", n, got, 2*n)
		}
	}
}

func TestIncrementStepComplexity(t *testing.T) {
	for _, n := range []int{2, 8, 32} {
		impls := implementations(t, n, 1<<12)
		depth := int64(bits.Len(uint(n - 1)))
		logM := int64(bits.Len64(uint64(1 << 12)))

		steps := func(c Counter) int64 {
			ctx := primitive.NewCounting(primitive.NewDirect(0))
			var err error
			got := ctx.Measure(func() { err = c.Increment(ctx) })
			if err != nil {
				t.Fatal(err)
			}
			return got
		}
		// AAC: 2 leaf steps + per level two child readings (each <= logM)
		// and one WriteMax (<= logM).
		if got, budget := steps(impls["aac"]), 2+depth*3*logM; got > budget {
			t.Fatalf("n=%d: aac Increment = %d steps > %d", n, got, budget)
		}
		// f-array: 2 leaf steps + 8 per level.
		if got, budget := steps(impls["farray"]), 2+8*depth; got > budget {
			t.Fatalf("n=%d: farray Increment = %d steps > %d", n, got, budget)
		}
		// CAS uncontended: read + CAS.
		if got := steps(impls["cas"]); got != 2 {
			t.Fatalf("n=%d: cas Increment = %d steps, want 2", n, got)
		}
		// Corollary 1: increment = exactly one Update.
		if got := steps(impls["snap/collect"]); got != 2 {
			t.Fatalf("n=%d: snap/collect Increment = %d steps, want 2", n, got)
		}
		if got, budget := steps(impls["snap/farray"]), 1+8*depth; got > budget {
			t.Fatalf("n=%d: snap/farray Increment = %d steps > %d", n, got, budget)
		}
	}
}

func TestAACReadIsNFree(t *testing.T) {
	// The defining read-optimality property: AAC's read cost depends on the
	// increment limit, not on N.
	limit := int64(1 << 10)
	stepsAt := func(n int) int64 {
		c, err := NewAAC(primitive.NewPool(), n, limit)
		if err != nil {
			t.Fatal(err)
		}
		ctx := primitive.NewCounting(primitive.NewDirect(0))
		return ctx.Measure(func() { c.Read(ctx) })
	}
	if a, b := stepsAt(2), stepsAt(256); a != b {
		t.Fatalf("AAC read costs %d steps at N=2 but %d at N=256", a, b)
	}
}

func TestConcurrentExactTotal(t *testing.T) {
	const (
		n    = 8
		perG = 1000
	)
	for name, c := range implementations(t, n, n*perG+1) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for id := 0; id < n; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					ctx := primitive.NewDirect(id)
					for i := 0; i < perG; i++ {
						if err := c.Increment(ctx); err != nil {
							t.Error(err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if got := c.Read(primitive.NewDirect(0)); got != n*perG {
				t.Fatalf("final Read = %d, want %d", got, n*perG)
			}
		})
	}
}

func TestConcurrentMonotoneBoundedReads(t *testing.T) {
	const (
		writers = 4
		perG    = 800
	)
	for name, c := range implementations(t, writers+1, writers*perG+1) {
		t.Run(name, func(t *testing.T) {
			var writerWG sync.WaitGroup
			for id := 0; id < writers; id++ {
				writerWG.Add(1)
				go func(id int) {
					defer writerWG.Done()
					ctx := primitive.NewDirect(id)
					for i := 0; i < perG; i++ {
						if err := c.Increment(ctx); err != nil {
							t.Error(err)
							return
						}
					}
				}(id)
			}

			stop := make(chan struct{})
			readerDone := make(chan struct{})
			go func() {
				defer close(readerDone)
				ctx := primitive.NewDirect(writers)
				var prev int64
				for {
					select {
					case <-stop:
						return
					default:
					}
					got := c.Read(ctx)
					if got < prev {
						t.Errorf("count regressed %d -> %d", prev, got)
						return
					}
					if got > writers*perG {
						t.Errorf("count overshot: %d", got)
						return
					}
					prev = got
				}
			}()
			writerWG.Wait()
			close(stop)
			<-readerDone
		})
	}
}

func TestQuickExactness(t *testing.T) {
	f := func(ops []bool) bool {
		c, err := NewFArray(primitive.NewPool(), 3)
		if err != nil {
			return false
		}
		var model int64
		for k, inc := range ops {
			ctx := primitive.NewDirect(k % 3)
			if inc {
				if err := c.Increment(ctx); err != nil {
					return false
				}
				model++
			} else if c.Read(ctx) != model {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
