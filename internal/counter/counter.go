// Package counter provides shared counters: objects supporting
// CounterIncrement and CounterRead, where CounterRead returns the number of
// increments that linearized before it (Hendler & Khait, PODC 2014,
// Section 2).
//
// The implementations bracket the paper's Theorem 1 tradeoff
// (read O(f(N)) implies increment Omega(log(N/f(N)))):
//
//   - AAC: the Aspnes-Attiya-Censor counter from read/write only — a
//     balanced tree over per-process counts whose internal nodes are
//     M-bounded max registers. Read is O(log M) (read-optimal for
//     polynomially many increments); Increment is O(log N * log M).
//   - FArray: the Jayanti-style counter — O(1) Read, O(log N) Increment
//     using CAS. Theorem 1 with f(N) = O(1) proves the log N update cost
//     optimal.
//   - CAS: a single fetch-and-add-style CAS loop — O(1) Read, lock-free
//     (not wait-free) Increment.
//   - FromSnapshot: Corollary 1's reduction — one Update per Increment,
//     one Scan (plus a local sum) per Read, over any snapshot object.
package counter

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Counter is the shared counter interface. All implementations are
// linearizable; increments are restricted-use when Limit() > 0.
type Counter interface {
	// Increment adds one to the counter.
	Increment(ctx primitive.Context) error

	// Add atomically applies delta >= 0 increments as one update: a
	// single leaf write plus one propagation, so batching k increments
	// into one Add costs one update instead of k (the Write-and-f-array
	// amortization). A delta of 0 is a no-op. Against a restricted-use
	// counter, Add consumes delta units of the increment budget.
	Add(ctx primitive.Context, delta int64) error

	// Read returns the number of increments linearized before it.
	Read(ctx primitive.Context) int64

	// Limit returns the declared maximum number of increments (the
	// "restricted use" bound), or 0 if unbounded.
	Limit() int64
}

// NegativeDeltaError reports an Add with delta < 0: counters are monotone,
// so negative deltas are a contract violation.
type NegativeDeltaError struct {
	Delta int64
}

// Error implements error.
func (e *NegativeDeltaError) Error() string {
	return fmt.Sprintf("counter: negative Add delta %d", e.Delta)
}

// LimitError reports an Increment beyond a counter's restricted-use bound.
type LimitError struct {
	Limit int64
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("counter: exceeded restricted-use limit of %d increments", e.Limit)
}
