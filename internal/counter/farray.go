package counter

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/farray"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// FArray is the constant-read counter: a sum f-array over per-process
// counts (Jayanti, PODC 2002, ported to CAS — see internal/farray).
//
//	CounterRead:      1 step.
//	CounterIncrement: O(log N) steps.
//
// Theorem 1 of the paper (with f(N) = O(1)) proves the O(log N) increment
// is asymptotically optimal for any constant-read counter from
// read/write/CAS, so this implementation sits exactly on the tradeoff
// curve's other extreme from AAC.
type FArray struct {
	fa *farray.FArray
}

var _ Counter = (*FArray)(nil)

// NewFArray builds a constant-read counter for n >= 1 processes.
func NewFArray(pool *primitive.Pool, n int) (*FArray, error) {
	fa, err := farray.New(pool, n, farray.Sum)
	if err != nil {
		return nil, fmt.Errorf("counter: %w", err)
	}
	return &FArray{fa: fa}, nil
}

// Depth returns the f-array's leaf depth — the "logn" symbol of the
// certified Increment/Add bound (steps <= 8logn+2).
func (c *FArray) Depth() int { return c.fa.Depth() }

// Limit implements Counter (unbounded).
func (c *FArray) Limit() int64 { return 0 }

// Read implements Counter in exactly one step.
//
//tradeoffvet:bound steps<=1 reads<=1
func (c *FArray) Read(ctx primitive.Context) int64 {
	return c.fa.Read(ctx)
}

// Increment implements Counter in O(log N) steps.
//
//tradeoffvet:bound steps<=8logn+2 updates<=2logn+1
func (c *FArray) Increment(ctx primitive.Context) error {
	return c.Add(ctx, 1)
}

// Add implements Counter: delta increments land as one O(log N) update
// (the f-array's slot write plus a single leaf-to-root refresh), which is
// what makes batched increments amortize to O(log N / window) steps each.
//
//tradeoffvet:bound steps<=8logn+2 updates<=2logn+1
func (c *FArray) Add(ctx primitive.Context, delta int64) error {
	if delta < 0 {
		return &NegativeDeltaError{Delta: delta}
	}
	if delta == 0 {
		return nil
	}
	if _, err := c.fa.Add(ctx, delta); err != nil {
		return fmt.Errorf("counter: %w", err)
	}
	return nil
}

// CAS is the single-word counter: one register incremented with a CAS
// retry loop.
//
//	CounterRead:      1 step.
//	CounterIncrement: lock-free, 2 steps uncontended, unbounded under
//	                  contention (NOT wait-free).
//
// It seemingly beats Theorem 1's tradeoff (constant read, constant
// uncontended increment) — but Theorem 1 speaks about worst-case
// obstruction-free step complexity, and the CAS loop's worst case is
// unbounded. The E1 experiment shows the adversary driving its increments
// past any wait-free implementation's cost.
type CAS struct {
	cell  *primitive.Register
	limit int64
}

var _ Counter = (*CAS)(nil)

// NewCAS builds a single-word CAS-loop counter. limit > 0 makes it
// restricted-use (increments beyond limit return a LimitError); limit == 0
// makes it unbounded. A negative limit is rejected, matching the validation
// every other counter constructor performs.
func NewCAS(pool *primitive.Pool, limit int64) (*CAS, error) {
	if limit < 0 {
		return nil, fmt.Errorf("counter: negative restricted-use limit %d", limit)
	}
	return &CAS{cell: pool.New("casctr.cell", 0), limit: limit}, nil
}

// Limit implements Counter.
func (c *CAS) Limit() int64 { return c.limit }

// Read implements Counter in exactly one step.
//
//tradeoffvet:bound steps<=1 reads<=1
func (c *CAS) Read(ctx primitive.Context) int64 {
	return ctx.Read(c.cell)
}

// Increment implements Counter with a CAS retry loop.
//
//tradeoffvet:bound steps<=2 uncontended
func (c *CAS) Increment(ctx primitive.Context) error {
	return c.Add(ctx, 1)
}

// Add implements Counter: one CAS applies the whole delta, so a batched
// delta costs the same 2 uncontended steps as a single increment.
//
//tradeoffvet:bound steps<=2 uncontended
func (c *CAS) Add(ctx primitive.Context, delta int64) error {
	if delta < 0 {
		return &NegativeDeltaError{Delta: delta}
	}
	if delta == 0 {
		return nil
	}
	//tradeoffvet:casretry deliberately lock-free: a failed CAS means another increment landed (lock-freedom); the unbounded contended case is the E1 experiment's whole point
	for {
		cur := ctx.Read(c.cell)
		if c.limit > 0 && cur+delta > c.limit {
			return &LimitError{Limit: c.limit}
		}
		if ctx.CAS(c.cell, cur, cur+delta) {
			return nil
		}
	}
}
