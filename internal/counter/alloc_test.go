package counter

import (
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

var allocSink int64

// TestFromSnapshotReadZeroAlloc proves Corollary 1's read path stays off the
// heap when the backing snapshot exposes the Viewer fast path: Read over an
// FArray is a single register read plus a local sum over the arena view.
func TestFromSnapshotReadZeroAlloc(t *testing.T) {
	snap, err := snapshot.NewFArray(primitive.NewPool(), 4, 64)
	if err != nil {
		t.Fatalf("NewFArray: %v", err)
	}
	c := NewFromSnapshot(snap)
	for id := 0; id < 4; id++ {
		if err := c.Add(primitive.NewDirect(id), int64(id+1)); err != nil {
			t.Fatalf("Add(%d): %v", id, err)
		}
	}
	// Box the context once, outside the measured closure.
	var ctx primitive.Context = primitive.NewDirect(0)
	if got := c.Read(ctx); got != 1+2+3+4 {
		t.Fatalf("Read = %d, want 10", got)
	}
	avg := testing.AllocsPerRun(200, func() {
		allocSink = c.Read(ctx)
	})
	if avg != 0 {
		t.Errorf("FromSnapshot.Read over FArray allocates %v objects per call, want 0", avg)
	}
}
