// Package sharded provides elastic striped ("sharded") counters and max
// registers: the production-scale instance of the paper's read/update
// tradeoff (Hendler & Khait, PODC 2014).
//
// A flat CAS counter pays O(1) uncontended steps per update but serializes
// every writer on one cache line; under contention its retry loop is
// unbounded. A striped counter splits the value across S cache-line-padded
// stripes (primitive.NewPadded arenas): updates CAS one stripe —
// O(1)-contention, writers on distinct stripes never conflict — and reads
// collect all stripes, paying O(S). That is exactly Theorem 1's curve with
// the roles reversed: the flat counter sits at the read-optimal extreme,
// the striped counter buys update scalability with read cost.
//
// The stripe count is *elastic*, in the LongAdder style (Doug Lea,
// java.util.concurrent.atomic):
//
//   - each process tracks the CAS-failure rate it observes (a failed CAS is
//     the paper's contention signal: a retry some other process forced);
//   - when the rate crosses Config.GrowRate — or a single operation fails
//     Config.GrowFailures times — the active stripe set doubles, up to
//     Config.MaxStripes;
//   - after Config.CollapseWindows consecutive windows with no failures the
//     active set halves, restoring locality (and flat-counter behavior at
//     one stripe) when contention drops.
//
// Collapse only narrows where new updates land. Stripes that ever held a
// value keep it (moving it concurrently would make reads miss in-transit
// counts), so the read cost latches at the high-water stripe count: reads
// scan [0, high) where high is the largest stripe set ever activated. An
// object that never sees contention never grows and keeps ~O(1) reads.
//
// Progress: updates are lock-free (CAS retry, like counter.CAS — NOT
// wait-free); reads are obstruction-free (double collect, like the
// double-collect snapshot). Reads are linearizable by the double-collect
// argument: stripes are monotone (counters grow, maxes rise), so two
// identical consecutive collects pin an instant at which every collected
// stripe simultaneously held its collected value, and the high watermark is
// raised strictly before any stripe beyond it is written, so a stable high
// bounds the nonzero stripes at that instant.
package sharded

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Config tunes the elasticity policy. The zero value of any field selects
// the default noted on it.
type Config struct {
	// MaxStripes caps the active stripe set (rounded up to a power of
	// two). Default: the smallest power of two >= the process count —
	// more stripes than writers never reduces contention.
	MaxStripes int

	// GrowFailures is the in-operation trigger: an update that fails this
	// many CASes doubles the active set immediately (default 3).
	GrowFailures int

	// Window is how many operations a process accumulates before acting
	// on its observed CAS-failure rate (default 64).
	Window int

	// GrowRate is the failure-rate threshold (failures/ops within a
	// window) that doubles the active set (default 0.125).
	GrowRate float64

	// CollapseWindows is how many consecutive failure-free windows a
	// process must observe before it halves the active set (default 4).
	CollapseWindows int
}

// defaults fills unset fields; procs sizes the stripe cap.
func (c Config) defaults(procs int) Config {
	if c.MaxStripes <= 0 {
		c.MaxStripes = procs
	}
	c.MaxStripes = ceilPow2(c.MaxStripes)
	if c.GrowFailures <= 0 {
		c.GrowFailures = 3
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.GrowRate <= 0 {
		c.GrowRate = 0.125
	}
	if c.CollapseWindows <= 0 {
		c.CollapseWindows = 4
	}
	return c
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// slot is one process's private elasticity state: the stripe probe, the
// contention window, and the double-collect scratch buffers. A slot is
// touched only by the goroutine driving its process id (the same
// single-writer contract every per-process handle carries), so the fields
// need no synchronization; the pad keeps neighboring slots off each
// other's cache lines.
type slot struct {
	probe uint64 // current stripe preference, rehashed on CAS failure
	ops   int    // operations in the current contention window
	fails int    // contended operations in the current window
	calm  int    // consecutive failure-free windows

	// act caches the active stripe count so the uncontended update path
	// pays no read of the shared active register (2 steps, matching the
	// flat CAS counter). It is refreshed on the first CAS failure of an
	// operation, after a grow, and at every window boundary. A stale
	// cache is safe: act never exceeds the high watermark (active <= high
	// always, and high never decreases), so a stale-targeted stripe is
	// still inside every reader's collect range — staleness costs only
	// locality, never counts.
	act int64

	// curr/prev are the double-collect scratch (capacity MaxStripes), so
	// reads allocate nothing.
	curr, prev []int64

	_ [32]byte
}

// rehash advances the probe with an xorshift step so a process that keeps
// colliding walks to a different stripe instead of retrying the same line.
func (s *slot) rehash() {
	x := s.probe
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.probe = x
}

// elastic is the machinery shared by Counter and MaxRegister: the stripe
// arena, the active/high stripe-set registers, and the per-process policy
// state.
type elastic struct {
	cfg     Config
	stripes []*primitive.Register

	// active is the stripe count new updates target: it doubles on
	// observed contention and halves when contention drops, always a
	// power of two in [1, cfg.MaxStripes].
	active *primitive.Register

	// high is the read watermark: the largest stripe set ever activated.
	// It is raised strictly before active (so a reader that sees high=h
	// knows stripes >= h have never been written) and never lowered
	// (dormant stripes keep their residual values).
	high *primitive.Register

	slots []slot
}

func newElastic(pool *primitive.Pool, name string, procs int, cfg Config) (*elastic, error) {
	if pool == nil {
		return nil, fmt.Errorf("sharded: nil pool")
	}
	if procs < 1 {
		return nil, fmt.Errorf("sharded: processes must be >= 1, got %d", procs)
	}
	cfg = cfg.defaults(procs)
	e := &elastic{
		cfg:     cfg,
		stripes: pool.NewSlice(name+".stripe", cfg.MaxStripes, 0),
		active:  pool.New(name+".active", 1),
		high:    pool.New(name+".high", 1),
		slots:   make([]slot, procs),
	}
	for i := range e.slots {
		e.slots[i].probe = uint64(i)*0x9e3779b97f4a7c15 + 1
		e.slots[i].act = 1
		e.slots[i].curr = make([]int64, cfg.MaxStripes)
		e.slots[i].prev = make([]int64, cfg.MaxStripes)
	}
	return e, nil
}

// grow doubles the active stripe set (from the active value a the caller
// observed), raising the high watermark first so readers never miss a
// stripe: a reader that collects high=h twice knows no stripe >= h had
// been written by the second read of high.
func (e *elastic) grow(ctx primitive.Context, a int64) {
	na := a * 2
	if na > int64(e.cfg.MaxStripes) {
		return
	}
	//tradeoffvet:casretry monotone raise of the high watermark: each failed CAS means another process raised it, so the loop runs at most log2(MaxStripes) times
	for {
		h := ctx.Read(e.high)
		if h >= na {
			break
		}
		ctx.CAS(e.high, h, na)
	}
	// A failed CAS here means another process already grew (or a collapse
	// raced in); the next contended operation re-reads active and retries.
	ctx.CAS(e.active, a, na)
}

// collapse halves the active stripe set. high stays: dormant stripes keep
// their residual values, so only the write-side targeting narrows.
func (e *elastic) collapse(ctx primitive.Context) {
	a := ctx.Read(e.active)
	if a > 1 {
		ctx.CAS(e.active, a, a/2)
	}
}

// window folds one finished operation into the process's contention window
// and acts on the observed CAS-failure rate at window boundaries.
func (e *elastic) window(ctx primitive.Context, s *slot, contended bool) {
	s.ops++
	if contended {
		s.fails++
	}
	if s.ops < e.cfg.Window {
		return
	}
	switch {
	case s.fails == 0:
		s.calm++
		if s.calm >= e.cfg.CollapseWindows {
			e.collapse(ctx)
			s.calm = 0
		}
	default:
		s.calm = 0
		if float64(s.fails) >= e.cfg.GrowRate*float64(s.ops) {
			e.grow(ctx, ctx.Read(e.active))
		}
	}
	s.act = ctx.Read(e.active) // refresh the per-window cache
	s.ops, s.fails = 0, 0
}

// collect reads the high watermark and then every stripe below it into
// buf, returning the watermark. Reading high first is what makes a stable
// pair of collects sound: high is raised before any stripe beyond the old
// value is written, so two equal reads of high bracket an interval in
// which stripes >= high were never touched.
func (e *elastic) collect(ctx primitive.Context, buf []int64) int64 {
	h := ctx.Read(e.high)
	//tradeoffvet:loopbound k high-water stripe count: the read-side collect range
	for i := int64(0); i < h; i++ {
		buf[i] = ctx.Read(e.stripes[i])
	}
	return h
}

// stableCollect repeats collect until two consecutive collects agree on
// the watermark and every stripe value, returning the stable vector. Each
// stripe is monotone, so agreement pins an instant at which all collected
// stripes simultaneously held the collected values (the double-collect
// argument); the retry is obstruction-free, like the double-collect
// snapshot's Scan.
func (e *elastic) stableCollect(ctx primitive.Context, s *slot) []int64 {
	curr, prev := s.curr, s.prev
	h := e.collect(ctx, prev)
	//tradeoffvet:casretry double collect: terminates as soon as no concurrent update lands between two collects (obstruction-free, the same progress condition as snapshot.DoubleCollect.Scan)
	for {
		nh := e.collect(ctx, curr)
		if nh == h && equalPrefix(curr, prev, nh) {
			return curr[:nh]
		}
		curr, prev = prev, curr
		h = nh
	}
}

func equalPrefix(a, b []int64, n int64) bool {
	for i := int64(0); i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ActiveStripes reports the stripe count new updates currently target.
//
//tradeoffvet:outofband monitoring accessor for tests and benchmarks; reads memory outside any process's step accounting
func (e *elastic) ActiveStripes() int64 { return e.active.Load() }

// HighStripes reports the read watermark: the largest stripe set ever
// activated, which is the per-read collect cost.
//
//tradeoffvet:outofband monitoring accessor for tests and benchmarks; reads memory outside any process's step accounting
func (e *elastic) HighStripes() int64 { return e.high.Load() }

// Counter is the elastic striped counter.
//
//	CounterRead:      obstruction-free, 2(high+1) steps when no update
//	                  races the collect (high = peak stripe count, 1 until
//	                  the first growth).
//	CounterIncrement: lock-free (NOT wait-free), 2 steps uncontended (the
//	                  active stripe set is cached per process and refreshed
//	                  once per window, so the fast path matches counter.CAS);
//	                  a failed CAS rehashes to another stripe and feeds the
//	                  elasticity policy.
//
// Like counter.CAS it trades the paper's wait-free worst case away; unlike
// counter.CAS its contended retries spread across stripes instead of
// re-serializing, which is the whole point of the E13 contention sweep.
type Counter struct {
	e *elastic
}

var _ counter.Counter = (*Counter)(nil)

// New builds an elastic striped counter for procs processes. Sharded
// counters are unbounded: restricted-use limits would make every update
// pay a full O(stripes) collect to check the budget, exactly the read
// cost sharding exists to avoid, so there is no limit parameter (the
// facade rejects WithLimit for this implementation).
func New(pool *primitive.Pool, procs int, cfg Config) (*Counter, error) {
	e, err := newElastic(pool, "shardedctr", procs, cfg)
	if err != nil {
		return nil, err
	}
	return &Counter{e: e}, nil
}

// MaxStripes returns the configured stripe cap — the "k" symbol of the
// certified uncontended Read bound (steps <= 2k+2): a reader collects
// at most the high watermark, which never exceeds MaxStripes.
func (c *Counter) MaxStripes() int { return c.e.cfg.MaxStripes }

// Limit implements counter.Counter (always unbounded).
func (c *Counter) Limit() int64 { return 0 }

// Read implements counter.Counter: a stable double collect over the
// stripes, summed.
//
//tradeoffvet:bound steps<=2k+2 reads<=2k+2 uncontended
func (c *Counter) Read(ctx primitive.Context) int64 {
	vec := c.e.stableCollect(ctx, &c.e.slots[ctx.ID()])
	var sum int64
	for _, v := range vec {
		sum += v
	}
	return sum
}

// Increment implements counter.Counter. Amortized like Add: the
// elasticity window it delegates to pays its maintenance once per
// Window operations.
//
//tradeoffvet:bound steps<=2 uncontended amortized
func (c *Counter) Increment(ctx primitive.Context) error {
	return c.Add(ctx, 1)
}

// Add implements counter.Counter: the whole delta lands in one stripe
// with one CAS, so batched deltas cost the same as single increments. On
// CAS failure the process rehashes to another stripe; repeated failures
// grow the active set.
//
//tradeoffvet:bound steps<=2 uncontended
func (c *Counter) Add(ctx primitive.Context, delta int64) error {
	if delta < 0 {
		return &counter.NegativeDeltaError{Delta: delta}
	}
	if delta == 0 {
		return nil
	}
	e := c.e
	s := &e.slots[ctx.ID()]
	a := s.act
	idx := int(s.probe & uint64(a-1))
	fails, contended := 0, false
	//tradeoffvet:casretry deliberately lock-free, like counter.CAS: a failed CAS means another update landed; unlike the flat counter the retry rehashes to a different stripe and doubles the active set on repeated failure
	for {
		cur := ctx.Read(e.stripes[idx])
		if ctx.CAS(e.stripes[idx], cur, cur+delta) {
			break
		}
		fails++
		if !contended {
			contended = true
			a = ctx.Read(e.active) // contention: drop the cached stripe set
		}
		s.rehash()
		if fails >= e.cfg.GrowFailures {
			e.grow(ctx, a)
			a = ctx.Read(e.active)
			fails = 0
		}
		idx = int(s.probe & uint64(a-1))
	}
	s.act = a
	//tradeoffvet:cost 0 amortized: the elasticity policy touches shared memory once per Window operations
	e.window(ctx, s, contended)
	return nil
}
