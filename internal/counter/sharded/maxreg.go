package sharded

import (
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// MaxRegister is the elastic striped max register: WriteMax CASes one
// stripe up to v (writers on distinct stripes never conflict), ReadMax
// takes the maximum over a stable double collect.
//
//	ReadMax:  obstruction-free, 2(high+1) steps when no write races the
//	          collect.
//	WriteMax: lock-free (NOT wait-free), 2 steps uncontended (the active
//	          stripe set is cached per process, as in Counter.Add); a CAS
//	          that finds its stripe already >= v finishes immediately
//	          (some write of a larger value already covers v).
//
// The same elasticity policy as Counter applies: the active stripe set
// doubles on observed CAS-failure rate and halves when contention drops,
// and reads scan the high-water stripe count (dormant stripes may hold the
// current maximum, so collapse never narrows the read range).
type MaxRegister struct {
	e     *elastic
	bound int64
}

var _ maxreg.MaxRegister = (*MaxRegister)(nil)

// NewMax builds an elastic striped max register for procs processes.
// bound > 0 makes it M-bounded (WriteMax accepts values in [0, bound));
// bound == 0 leaves it unbounded.
func NewMax(pool *primitive.Pool, procs int, bound int64, cfg Config) (*MaxRegister, error) {
	e, err := newElastic(pool, "shardedmax", procs, cfg)
	if err != nil {
		return nil, err
	}
	return &MaxRegister{e: e, bound: bound}, nil
}

// Bound implements maxreg.MaxRegister.
func (m *MaxRegister) Bound() int64 { return m.bound }

// ReadMax implements maxreg.MaxRegister: the maximum over a stable double
// collect (0 if nothing has been written).
//
//tradeoffvet:bound steps<=2k+2 reads<=2k+2 uncontended
func (m *MaxRegister) ReadMax(ctx primitive.Context) int64 {
	vec := m.e.stableCollect(ctx, &m.e.slots[ctx.ID()])
	var max int64
	for _, v := range vec {
		if v > max {
			max = v
		}
	}
	return max
}

// WriteMax implements maxreg.MaxRegister: CAS one stripe up to v. The
// global maximum is the maximum over stripes, so raising any single
// stripe to v (or finding one already past it) makes v covered.
//
//tradeoffvet:bound steps<=2 uncontended
func (m *MaxRegister) WriteMax(ctx primitive.Context, v int64) error {
	if v < 0 || (m.bound > 0 && v >= m.bound) {
		return &maxreg.RangeError{Value: v, Bound: m.bound}
	}
	e := m.e
	s := &e.slots[ctx.ID()]
	a := s.act
	idx := int(s.probe & uint64(a-1))
	fails, contended := 0, false
	//tradeoffvet:casretry deliberately lock-free, like maxreg.CASRegister: a failed CAS means the stripe moved; the retry re-reads it (finishing if it now covers v), rehashes, and doubles the active set on repeated failure
	for {
		cur := ctx.Read(e.stripes[idx])
		if cur >= v {
			break
		}
		if ctx.CAS(e.stripes[idx], cur, v) {
			break
		}
		fails++
		if !contended {
			contended = true
			a = ctx.Read(e.active) // contention: drop the cached stripe set
		}
		s.rehash()
		if fails >= e.cfg.GrowFailures {
			e.grow(ctx, a)
			a = ctx.Read(e.active)
			fails = 0
		}
		idx = int(s.probe & uint64(a-1))
	}
	s.act = a
	//tradeoffvet:cost 0 amortized: the elasticity policy touches shared memory once per Window operations
	e.window(ctx, s, contended)
	return nil
}

// ActiveStripes reports the stripe count new writes currently target.
func (m *MaxRegister) ActiveStripes() int64 { return m.e.ActiveStripes() }

// HighStripes reports the read watermark (the per-read collect cost).
func (m *MaxRegister) HighStripes() int64 { return m.e.HighStripes() }

// ActiveStripes reports the stripe count new updates currently target.
func (c *Counter) ActiveStripes() int64 { return c.e.ActiveStripes() }

// HighStripes reports the read watermark (the per-read collect cost).
func (c *Counter) HighStripes() int64 { return c.e.HighStripes() }
