package sharded

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// flakyCAS wraps Direct so tests can force the next *fails CAS calls to
// fail, driving the elasticity policy deterministically on any hardware
// (real CAS contention is not reproducible on a small CI box).
type flakyCAS struct {
	primitive.Direct
	fails *int
}

func (f flakyCAS) CAS(r *primitive.Register, old, new int64) bool {
	if *f.fails > 0 {
		*f.fails--
		return false
	}
	return f.Direct.CAS(r, old, new)
}

func TestShardedCounterSequential(t *testing.T) {
	c, err := New(primitive.NewPadded(), 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	if got := c.Read(ctx); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	var want int64
	for i := 1; i <= 100; i++ {
		if i%3 == 0 {
			if err := c.Add(ctx, int64(i)); err != nil {
				t.Fatal(err)
			}
			want += int64(i)
		} else {
			if err := c.Increment(ctx); err != nil {
				t.Fatal(err)
			}
			want++
		}
		if got := c.Read(ctx); got != want {
			t.Fatalf("after op %d: Read = %d, want %d", i, got, want)
		}
	}
	if c.Limit() != 0 {
		t.Fatalf("Limit = %d, want 0 (unbounded)", c.Limit())
	}
}

func TestShardedCounterRejectsNegativeDelta(t *testing.T) {
	c, err := New(primitive.NewPadded(), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	err = c.Add(ctx, -1)
	var negErr *counter.NegativeDeltaError
	if !errors.As(err, &negErr) {
		t.Fatalf("Add(-1) = %v, want NegativeDeltaError", err)
	}
	if err := c.Add(ctx, 0); err != nil {
		t.Fatalf("Add(0) = %v, want nil", err)
	}
	if got := c.Read(ctx); got != 0 {
		t.Fatalf("Read after rejected deltas = %d, want 0", got)
	}
}

func TestShardedConstructorErrors(t *testing.T) {
	if _, err := New(nil, 1, Config{}); err == nil {
		t.Fatal("New(nil pool) succeeded, want error")
	}
	if _, err := New(primitive.NewPadded(), 0, Config{}); err == nil {
		t.Fatal("New(procs=0) succeeded, want error")
	}
	if _, err := NewMax(nil, 1, 0, Config{}); err == nil {
		t.Fatal("NewMax(nil pool) succeeded, want error")
	}
}

// TestShardedGrowOnFailures forces GrowFailures consecutive CAS failures
// through a flaky context and checks the active set doubles, with the high
// watermark raised at least as far (the reader-soundness invariant).
func TestShardedGrowOnFailures(t *testing.T) {
	c, err := New(primitive.NewPadded(), 2, Config{MaxStripes: 8, GrowFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	fails := 2
	ctx := flakyCAS{Direct: primitive.NewDirect(0), fails: &fails}
	if err := c.Add(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.ActiveStripes(); got != 2 {
		t.Fatalf("ActiveStripes after forced failures = %d, want 2", got)
	}
	if got := c.HighStripes(); got < c.ActiveStripes() {
		t.Fatalf("HighStripes %d < ActiveStripes %d: readers could miss stripes", got, c.ActiveStripes())
	}
	if got := c.Read(primitive.NewDirect(0)); got != 5 {
		t.Fatalf("Read after growth = %d, want 5", got)
	}
}

// TestShardedGrowCapped checks growth saturates at MaxStripes.
func TestShardedGrowCapped(t *testing.T) {
	c, err := New(primitive.NewPadded(), 2, Config{MaxStripes: 2, GrowFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 10; i++ {
		fails := 1
		ctx := flakyCAS{Direct: primitive.NewDirect(0), fails: &fails}
		if err := c.Add(ctx, 1); err != nil {
			t.Fatal(err)
		}
		want++
	}
	if got := c.ActiveStripes(); got != 2 {
		t.Fatalf("ActiveStripes = %d, want cap 2", got)
	}
	if got := c.HighStripes(); got != 2 {
		t.Fatalf("HighStripes = %d, want cap 2", got)
	}
	if got := c.Read(primitive.NewDirect(0)); got != want {
		t.Fatalf("Read = %d, want %d", got, want)
	}
}

// TestShardedCollapseOnCalm grows the active set, then runs enough
// failure-free windows to trigger collapse. The active set must shrink
// while the high watermark (and the count) stay put.
func TestShardedCollapseOnCalm(t *testing.T) {
	// GrowRate 1 disarms the window-rate trigger (a single forced failure
	// would otherwise re-grow the set at the first window boundary).
	cfg := Config{MaxStripes: 4, GrowFailures: 1, Window: 4, GrowRate: 1, CollapseWindows: 2}
	c, err := New(primitive.NewPadded(), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)

	fails := 1
	if err := c.Add(flakyCAS{Direct: primitive.NewDirect(0), fails: &fails}, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.ActiveStripes(); got != 2 {
		t.Fatalf("ActiveStripes after growth = %d, want 2", got)
	}

	// The growth op above already opened a contended window; finish it and
	// run CollapseWindows clean windows on top.
	var want int64 = 1
	for i := 0; i < cfg.Window*(cfg.CollapseWindows+1); i++ {
		if err := c.Increment(ctx); err != nil {
			t.Fatal(err)
		}
		want++
	}
	if got := c.ActiveStripes(); got != 1 {
		t.Fatalf("ActiveStripes after calm = %d, want 1 (collapse)", got)
	}
	if got := c.HighStripes(); got != 2 {
		t.Fatalf("HighStripes after collapse = %d, want 2 (never lowered)", got)
	}
	if got := c.Read(ctx); got != want {
		t.Fatalf("Read after collapse = %d, want %d (residual stripes must stay counted)", got, want)
	}
}

// TestShardedCounterConcurrent hammers the counter from procs goroutines
// (one per process id, the single-writer contract) with a concurrent reader
// checking monotonicity — the observable consequence of linearizability for
// a monotone counter.
func TestShardedCounterConcurrent(t *testing.T) {
	const procs, opsPer = 8, 2000
	c, err := New(primitive.NewPadded(), procs+1, Config{MaxStripes: 8, GrowFailures: 2, Window: 16})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	total := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ctx := primitive.NewDirect(p)
			rng := rand.New(rand.NewSource(int64(p) + 1))
			for i := 0; i < opsPer; i++ {
				delta := int64(rng.Intn(3) + 1)
				if err := c.Add(ctx, delta); err != nil {
					t.Error(err)
					return
				}
				total[p] += delta
			}
		}(p)
	}

	stop := make(chan struct{})
	readerErr := make(chan error, 1)
	go func() {
		ctx := primitive.NewDirect(procs)
		var last int64
		for {
			select {
			case <-stop:
				readerErr <- nil
				return
			default:
			}
			got := c.Read(ctx)
			if got < last {
				readerErr <- fmt.Errorf("non-monotone reads: %d after %d", got, last)
				return
			}
			last = got
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}

	var want int64
	for _, v := range total {
		want += v
	}
	if got := c.Read(primitive.NewDirect(procs)); got != want {
		t.Fatalf("final Read = %d, want %d", got, want)
	}
}

func TestShardedReadZeroAlloc(t *testing.T) {
	c, err := New(primitive.NewPadded(), 2, Config{MaxStripes: 8, GrowFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	fails := 1
	if err := c.Add(flakyCAS{Direct: primitive.NewDirect(0), fails: &fails}, 7); err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	allocs := testing.AllocsPerRun(100, func() {
		if got := c.Read(ctx); got != 7 {
			t.Fatalf("Read = %d, want 7", got)
		}
	})
	if allocs != 0 {
		t.Fatalf("Read allocates %.1f objects/op, want 0", allocs)
	}
}

func TestShardedMaxSequential(t *testing.T) {
	m, err := NewMax(primitive.NewPadded(), 4, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	if got := m.ReadMax(ctx); got != 0 {
		t.Fatalf("initial ReadMax = %d, want 0", got)
	}
	if m.Bound() != 1000 {
		t.Fatalf("Bound = %d, want 1000", m.Bound())
	}
	writes := []int64{5, 3, 17, 17, 2, 999}
	var want int64
	for _, v := range writes {
		if err := m.WriteMax(ctx, v); err != nil {
			t.Fatal(err)
		}
		if v > want {
			want = v
		}
		if got := m.ReadMax(ctx); got != want {
			t.Fatalf("after WriteMax(%d): ReadMax = %d, want %d", v, got, want)
		}
	}
}

func TestShardedMaxRangeErrors(t *testing.T) {
	m, err := NewMax(primitive.NewPadded(), 1, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewDirect(0)
	var rangeErr *maxreg.RangeError
	if err := m.WriteMax(ctx, -1); !errors.As(err, &rangeErr) {
		t.Fatalf("WriteMax(-1) = %v, want RangeError", err)
	}
	if err := m.WriteMax(ctx, 10); !errors.As(err, &rangeErr) {
		t.Fatalf("WriteMax(10) on bound 10 = %v, want RangeError", err)
	}
	if err := m.WriteMax(ctx, 9); err != nil {
		t.Fatalf("WriteMax(9) = %v, want nil", err)
	}

	unbounded, err := NewMax(primitive.NewPadded(), 1, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := unbounded.WriteMax(ctx, 1<<40); err != nil {
		t.Fatalf("unbounded WriteMax(2^40) = %v, want nil", err)
	}
}

// TestShardedMaxGrowAndCoveredWrite checks the forced-growth path and the
// early exit: a WriteMax that finds its stripe already past v must finish
// without a CAS.
func TestShardedMaxGrowAndCoveredWrite(t *testing.T) {
	m, err := NewMax(primitive.NewPadded(), 2, 0, Config{MaxStripes: 4, GrowFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	fails := 2
	if err := m.WriteMax(flakyCAS{Direct: primitive.NewDirect(0), fails: &fails}, 50); err != nil {
		t.Fatal(err)
	}
	if got := m.ActiveStripes(); got != 2 {
		t.Fatalf("ActiveStripes after forced failures = %d, want 2", got)
	}
	if got := m.HighStripes(); got < m.ActiveStripes() {
		t.Fatalf("HighStripes %d < ActiveStripes %d", got, m.ActiveStripes())
	}
	ctx := primitive.NewDirect(0)
	if got := m.ReadMax(ctx); got != 50 {
		t.Fatalf("ReadMax after growth = %d, want 50", got)
	}
	// Smaller write: covered, must not lower anything.
	if err := m.WriteMax(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadMax(ctx); got != 50 {
		t.Fatalf("ReadMax after covered write = %d, want 50", got)
	}
}

// TestShardedMaxConcurrent runs concurrent writers with a monotone reader;
// the final max must be the largest value written anywhere.
func TestShardedMaxConcurrent(t *testing.T) {
	const procs, opsPer = 8, 2000
	m, err := NewMax(primitive.NewPadded(), procs+1, 0, Config{MaxStripes: 8, GrowFailures: 2, Window: 16})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	peak := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ctx := primitive.NewDirect(p)
			rng := rand.New(rand.NewSource(int64(p) + 100))
			for i := 0; i < opsPer; i++ {
				v := int64(rng.Intn(1 << 20))
				if err := m.WriteMax(ctx, v); err != nil {
					t.Error(err)
					return
				}
				if v > peak[p] {
					peak[p] = v
				}
			}
		}(p)
	}

	stop := make(chan struct{})
	readerErr := make(chan error, 1)
	go func() {
		ctx := primitive.NewDirect(procs)
		var last int64
		for {
			select {
			case <-stop:
				readerErr <- nil
				return
			default:
			}
			got := m.ReadMax(ctx)
			if got < last {
				readerErr <- fmt.Errorf("non-monotone ReadMax: %d after %d", got, last)
				return
			}
			last = got
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}

	var want int64
	for _, v := range peak {
		if v > want {
			want = v
		}
	}
	if got := m.ReadMax(primitive.NewDirect(procs)); got != want {
		t.Fatalf("final ReadMax = %d, want %d", got, want)
	}
}

// TestShardedGrowCollapseStress churns growth and collapse concurrently
// with reads: tiny windows make the policy flip constantly while the
// monotone reader and the final sum check linearizability held throughout.
// This is the -race grow/collapse stress from the issue checklist.
func TestShardedGrowCollapseStress(t *testing.T) {
	const procs, opsPer = 4, 4000
	cfg := Config{MaxStripes: 8, GrowFailures: 1, Window: 8, GrowRate: 0.01, CollapseWindows: 1}
	c, err := New(primitive.NewPadded(), procs+1, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	total := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Every 64th op runs through a flaky context to force a
			// growth no matter how the scheduler interleaves; calm
			// stretches in between drive collapses.
			direct := primitive.NewDirect(p)
			for i := 0; i < opsPer; i++ {
				var ctx primitive.Context = direct
				if i%64 == 0 {
					fails := cfg.GrowFailures
					ctx = flakyCAS{Direct: direct, fails: &fails}
				}
				if err := c.Add(ctx, 1); err != nil {
					t.Error(err)
					return
				}
				total[p]++
			}
		}(p)
	}

	stop := make(chan struct{})
	readerErr := make(chan error, 1)
	go func() {
		ctx := primitive.NewDirect(procs)
		var last int64
		for {
			select {
			case <-stop:
				readerErr <- nil
				return
			default:
			}
			got := c.Read(ctx)
			if got < last {
				readerErr <- fmt.Errorf("non-monotone reads under churn: %d after %d", got, last)
				return
			}
			last = got
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}

	var want int64
	for _, v := range total {
		want += v
	}
	if got := c.Read(primitive.NewDirect(procs)); got != want {
		t.Fatalf("final Read = %d, want %d", got, want)
	}
	if a, h := c.ActiveStripes(), c.HighStripes(); a > h {
		t.Fatalf("ActiveStripes %d > HighStripes %d after churn", a, h)
	}
}
