package history

import (
	"testing"
)

// decodeHistory turns fuzz bytes into a small history with distinct,
// well-formed timestamps (the recorder invariant).
func decodeHistory(data []byte, kinds []Kind) []Op {
	var ops []Op
	clock := int64(1)
	for i := 0; i+2 < len(data) && len(ops) < 10; i += 3 {
		kind := kinds[int(data[i])%len(kinds)]
		val := int64(data[i+1] % 4)
		span := int64(data[i+2]%6) + 1

		// Invocations land on even stamps and responses on odd stamps, so
		// endpoints never collide; when the drafts tie, the pair overlaps,
		// which is how both checkers treat ambiguity.
		op := Op{Kind: kind, Inv: 2 * clock, Res: 2*(clock+span) + 1}
		clock += 2
		switch kind {
		case KindWriteMax:
			op.Arg = val
		case KindReadMax, KindCounterRead:
			op.Ret = val
		}
		ops = append(ops, op)
	}
	return ops
}

// FuzzMaxRegisterCheckerSoundness cross-validates the interval max register
// checker against the exact one on fuzz-generated histories: whenever the
// exact checker accepts, the interval checker must.
func FuzzMaxRegisterCheckerSoundness(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 1, 2, 0, 2, 1})
	f.Add([]byte{1, 3, 1, 0, 3, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeHistory(data, []Kind{KindWriteMax, KindReadMax})
		exactErr := CheckLinearizable(ops, MaxRegisterSpec{})
		fastErr := CheckMaxRegister(ops)
		if exactErr == nil && fastErr != nil {
			t.Fatalf("exact accepts but interval rejects: %v\nops: %+v", fastErr, ops)
		}
	})
}

// FuzzCounterCheckerSoundness does the same for the counter checker.
func FuzzCounterCheckerSoundness(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 1, 2, 1, 2, 3})
	f.Add([]byte{1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeHistory(data, []Kind{KindIncrement, KindCounterRead})
		exactErr := CheckLinearizable(ops, CounterSpec{})
		fastErr := CheckCounter(ops)
		if exactErr == nil && fastErr != nil {
			t.Fatalf("exact accepts but interval rejects: %v\nops: %+v", fastErr, ops)
		}
	})
}
