package history

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// DumpSchema identifies the flight-recorder history dump format. Bump it
// when the JSON shape changes incompatibly.
const DumpSchema = "tradeoffs/flight/v1"

// Dump is a self-contained history window: what the flight recorder writes
// to /debug/history, and what it attaches to a violation artifact so the
// offending window can be re-checked or rendered offline
// (cmd/simtrace -from-history). Timestamps in Ops are the recorder's
// hybrid clock: strictly monotone logical stamps that track wall-clock
// nanoseconds, so Inv/Res are both precedence-exact and plottable.
type Dump struct {
	Schema string `json:"schema"`
	// Name is the object instance name (Observability registry name).
	Name string `json:"name"`
	// Family is the checker family: maxreg, counter, snapshot, consensus.
	Family string `json:"family"`
	// ClockUnit documents the timestamp unit ("ns-hybrid").
	ClockUnit string `json:"clock_unit"`
	// SampleEvery is the recorder's sampling period (1 = every operation).
	SampleEvery int64 `json:"sample_every"`
	// Dropped counts ring-buffer records overwritten before the monitor
	// consumed them. Nonzero means Ops is a gapped sub-history.
	Dropped int64 `json:"dropped"`
	// Summary is the monitor's evicted-prefix summary at dump time.
	Summary *PrefixSummary `json:"summary,omitempty"`
	// Violation is set when this dump is a violation repro artifact.
	Violation *ViolationError `json:"violation,omitempty"`
	// Ops is the window, sorted by invocation time.
	Ops []Op `json:"ops"`
}

// WriteDump serializes d as indented JSON, sorting Ops by invocation time
// first so artifacts are diff-stable.
func WriteDump(w io.Writer, d *Dump) error {
	d.Schema = DumpSchema
	sort.SliceStable(d.Ops, func(i, j int) bool { return d.Ops[i].Inv < d.Ops[j].Inv })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDump parses and validates a history dump.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("history: parsing dump: %w", err)
	}
	if d.Schema != DumpSchema {
		return nil, fmt.Errorf("history: dump schema %q, want %q", d.Schema, DumpSchema)
	}
	for i, op := range d.Ops {
		if op.Inv >= op.Res {
			return nil, fmt.Errorf("history: dump op %d: inv %d >= res %d", i, op.Inv, op.Res)
		}
	}
	sort.SliceStable(d.Ops, func(i, j int) bool { return d.Ops[i].Inv < d.Ops[j].Inv })
	return &d, nil
}

// CheckerFor returns the batch interval checker for a dump family, used to
// re-verify an artifact offline. Unknown families return nil.
func CheckerFor(family string) func([]Op) error {
	switch family {
	case "maxreg":
		return CheckMaxRegister
	case "counter":
		return CheckCounter
	case "snapshot":
		return CheckSnapshot
	case "consensus":
		return CheckConsensus
	default:
		return nil
	}
}

// NewIncremental returns a fresh incremental checker for a family, or nil
// for unknown families.
func NewIncremental(family string, relaxed bool) Incremental {
	switch family {
	case "maxreg":
		return NewIncrementalMaxRegister(relaxed)
	case "counter":
		return NewIncrementalCounter(relaxed)
	case "snapshot":
		return NewIncrementalSnapshot(relaxed)
	case "consensus":
		return NewIncrementalConsensus(relaxed)
	default:
		return nil
	}
}
