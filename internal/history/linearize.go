package history

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is a sequential object specification for the exact checker. States
// are encoded as strings so they can key the memoization table.
type Spec interface {
	// Initial returns the encoded initial state.
	Initial() string

	// Apply runs op against state, returning the successor state and
	// whether the op's recorded result is legal in that state.
	Apply(state string, op Op) (next string, ok bool)
}

// ErrTooLarge is returned by CheckLinearizable for histories beyond its
// exponential-search budget.
var ErrTooLarge = fmt.Errorf("history: exact checker supports at most %d operations", maxExactOps)

const maxExactOps = 24

// CheckLinearizable searches for an explicit linearization of ops under
// spec (Wing & Gong's algorithm with memoization on (completed-set,
// state)). nil means a linearization exists. Exponential worst case: use
// only on small histories.
func CheckLinearizable(ops []Op, spec Spec) error {
	n := len(ops)
	if n > maxExactOps {
		return ErrTooLarge
	}
	if n == 0 {
		return nil
	}

	type memoKey struct {
		mask  uint32
		state string
	}
	visited := make(map[memoKey]bool)

	var dfs func(mask uint32, state string) bool
	dfs = func(mask uint32, state string) bool {
		if mask == uint32(1)<<n-1 {
			return true
		}
		key := memoKey{mask: mask, state: state}
		if visited[key] {
			return false
		}
		visited[key] = true

		// minRes over pending ops: an op may linearize next only if no
		// pending op completed before it was invoked.
		minRes := int64(1) << 62
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && ops[i].Res < minRes {
				minRes = ops[i].Res
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 || ops[i].Inv > minRes {
				continue
			}
			next, ok := spec.Apply(state, ops[i])
			if !ok {
				continue
			}
			if dfs(mask|1<<i, next) {
				return true
			}
		}
		return false
	}

	if !dfs(0, spec.Initial()) {
		return fmt.Errorf("history: no linearization exists for %d-op history", n)
	}
	return nil
}

// MaxRegisterSpec is the sequential max register: state is the running
// maximum, WriteMax raises it, ReadMax must return it.
type MaxRegisterSpec struct{}

var _ Spec = MaxRegisterSpec{}

// Initial implements Spec.
func (MaxRegisterSpec) Initial() string { return "0" }

// Apply implements Spec.
func (MaxRegisterSpec) Apply(state string, op Op) (string, bool) {
	cur, err := strconv.ParseInt(state, 10, 64)
	if err != nil {
		return "", false
	}
	switch op.Kind {
	case KindWriteMax:
		if op.Arg > cur {
			return strconv.FormatInt(op.Arg, 10), true
		}
		return state, true
	case KindReadMax:
		return state, op.Ret == cur
	default:
		return "", false
	}
}

// CounterSpec is the sequential counter.
type CounterSpec struct{}

var _ Spec = CounterSpec{}

// Initial implements Spec.
func (CounterSpec) Initial() string { return "0" }

// Apply implements Spec.
func (CounterSpec) Apply(state string, op Op) (string, bool) {
	cur, err := strconv.ParseInt(state, 10, 64)
	if err != nil {
		return "", false
	}
	switch op.Kind {
	case KindIncrement:
		return strconv.FormatInt(cur+1, 10), true
	case KindCounterRead:
		return state, op.Ret == cur
	default:
		return "", false
	}
}

// SnapshotSpec is the sequential N-segment single-writer snapshot.
type SnapshotSpec struct {
	N int
}

var _ Spec = SnapshotSpec{}

// Initial implements Spec.
func (s SnapshotSpec) Initial() string {
	return strings.TrimSuffix(strings.Repeat("0,", s.N), ",")
}

// Apply implements Spec.
func (s SnapshotSpec) Apply(state string, op Op) (string, bool) {
	parts := strings.Split(state, ",")
	if len(parts) != s.N {
		return "", false
	}
	switch op.Kind {
	case KindUpdate:
		if op.Proc < 0 || op.Proc >= s.N {
			return "", false
		}
		parts[op.Proc] = strconv.FormatInt(op.Arg, 10)
		return strings.Join(parts, ","), true
	case KindScan:
		if len(op.RetVec) != s.N {
			return "", false
		}
		for i, v := range op.RetVec {
			if parts[i] != strconv.FormatInt(v, 10) {
				return state, false
			}
		}
		return state, true
	default:
		return "", false
	}
}
