package history

import (
	"math/rand"
	"sort"
	"testing"
)

// sealAll is a watermark beyond every generated timestamp.
const sealAll = int64(1) << 60

// runStream replays ops through a Stream the way the flight monitor does:
// arrivals in response order, watermark = least invocation still in
// flight. Returns the latched verdict.
func runStream(inc Incremental, ops []Op) *ViolationError {
	byRes := append([]Op(nil), ops...)
	sort.Slice(byRes, func(i, j int) bool { return byRes[i].Res < byRes[j].Res })
	st := NewStream(inc)
	for i, op := range byRes {
		st.Add(op)
		// Everything after index i is still in flight; the watermark may
		// not pass its invocation.
		w := sealAll
		for _, rest := range byRes[i+1:] {
			if rest.Inv < w {
				w = rest.Inv
			}
		}
		if v := st.Advance(w); v != nil {
			return v
		}
	}
	return st.Advance(sealAll)
}

// genMaxRegOps generates random overlapping max register histories. With
// legal=true each result is the value at the op's invocation point, so
// generation order is an explicit linearization witness; with legal=false
// results are random and the batch checker is the reference verdict.
func genMaxRegOps(r *rand.Rand, n int, legal bool) []Op {
	clock := int64(1)
	ops := make([]Op, 0, n)
	cur := int64(0)
	for i := 0; i < n; i++ {
		op := Op{Proc: r.Intn(4), Inv: 2 * clock, Res: 2*(clock+int64(r.Intn(6))+1) + 1}
		clock += 2
		if r.Intn(2) == 0 {
			op.Kind = KindWriteMax
			op.Arg = int64(r.Intn(5))
			if op.Arg > cur {
				cur = op.Arg
			}
		} else {
			op.Kind = KindReadMax
			if legal {
				op.Ret = cur
			} else {
				op.Ret = int64(r.Intn(5))
			}
		}
		ops = append(ops, op)
	}
	return ops
}

func genCounterOps(r *rand.Rand, n int, legal bool) []Op {
	clock := int64(1)
	ops := make([]Op, 0, n)
	started := int64(0)
	for i := 0; i < n; i++ {
		op := Op{Proc: r.Intn(4), Inv: 2 * clock, Res: 2*(clock+int64(r.Intn(6))+1) + 1}
		clock += 2
		if r.Intn(2) == 0 {
			op.Kind = KindIncrement
			if r.Intn(4) == 0 {
				op.Arg = int64(r.Intn(3)) + 2 // weighted Add delta
			}
			started += IncWeight(op)
		} else {
			op.Kind = KindCounterRead
			if legal {
				op.Ret = started
			} else {
				op.Ret = r.Int63n(started + 2)
			}
		}
		ops = append(ops, op)
	}
	return ops
}

func genSnapshotOps(r *rand.Rand, n, segCount int, legal bool) []Op {
	clock := int64(1)
	ops := make([]Op, 0, n)
	written := make([]int, segCount) // updates issued per segment
	segVal := func(seg, idx int) int64 { return int64(seg*1000 + idx) }
	for i := 0; i < n; i++ {
		if r.Intn(3) > 0 {
			seg := r.Intn(segCount)
			written[seg]++
			ops = append(ops, Op{
				Proc: seg, Kind: KindUpdate, Arg: segVal(seg, written[seg]),
				Inv: 2 * clock, Res: 2*clock + 1, // sequential: no self-overlap
			})
			clock++
			continue
		}
		vec := make([]int64, segCount)
		for seg := range vec {
			idx := written[seg]
			if !legal {
				// Mostly plausible indices; occasionally off the end
				// (never-written) to exercise rejection parity.
				idx = r.Intn(written[seg] + 2)
			}
			if idx > 0 {
				vec[seg] = segVal(seg, idx)
			}
		}
		ops = append(ops, Op{
			Proc: segCount + r.Intn(2), Kind: KindScan, RetVec: vec,
			Inv: 2 * clock, Res: 2*(clock+int64(r.Intn(4))) + 1,
		})
		clock++
	}
	return ops
}

func genConsensusOps(r *rand.Rand, n int, legal bool) []Op {
	clock := int64(1)
	ops := make([]Op, 0, n)
	decided := int64(r.Intn(3)) + 1
	for i := 0; i < n; i++ {
		op := Op{
			Proc: r.Intn(4), Kind: KindPropose,
			Arg: int64(r.Intn(3)) + 1, Ret: decided,
			Inv: 2 * clock, Res: 2*(clock+int64(r.Intn(6))+1) + 1,
		}
		if i == 0 && legal {
			op.Arg = decided // the decided value has a proposer
		}
		if !legal && r.Intn(8) == 0 {
			op.Ret = int64(r.Intn(4)) + 1 // sometimes disagree / decide phantom
		}
		clock += 2
		ops = append(ops, op)
	}
	return ops
}

// TestIncrementalParity cross-validates every incremental checker against
// its batch counterpart on random histories: identical accept/reject
// verdicts regardless of arrival order and watermark schedule.
func TestIncrementalParity(t *testing.T) {
	families := []struct {
		name  string
		gen   func(r *rand.Rand) []Op
		batch func([]Op) error
	}{
		{"maxreg", func(r *rand.Rand) []Op { return genMaxRegOps(r, 3+r.Intn(40), false) }, CheckMaxRegister},
		{"counter", func(r *rand.Rand) []Op { return genCounterOps(r, 3+r.Intn(40), false) }, CheckCounter},
		{"snapshot", func(r *rand.Rand) []Op { return genSnapshotOps(r, 3+r.Intn(40), 3, false) }, CheckSnapshot},
		{"consensus", func(r *rand.Rand) []Op { return genConsensusOps(r, 3+r.Intn(20), false) }, CheckConsensus},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			accepts, rejects := 0, 0
			for seed := int64(0); seed < 400; seed++ {
				r := rand.New(rand.NewSource(seed))
				ops := fam.gen(r)
				batchErr := fam.batch(ops)
				incErr := runStream(NewIncremental(fam.name, false), ops)
				if (batchErr == nil) != (incErr == nil) {
					t.Fatalf("seed %d: batch=%v incremental=%v\nops: %+v", seed, batchErr, incErr, ops)
				}
				if batchErr == nil {
					accepts++
				} else {
					rejects++
				}
			}
			if accepts == 0 || rejects == 0 {
				t.Fatalf("generator not exercising both verdicts: %d accepts, %d rejects", accepts, rejects)
			}
		})
	}
}

// TestIncrementalRelaxedSubsetSound verifies the sampled-mode contract: on
// any sub-history of a batch-accepted history, the relaxed checker must
// accept (sampling may hide violations but never invent them).
func TestIncrementalRelaxedSubsetSound(t *testing.T) {
	families := []struct {
		name  string
		gen   func(r *rand.Rand) []Op
		batch func([]Op) error
	}{
		{"maxreg", func(r *rand.Rand) []Op { return genMaxRegOps(r, 3+r.Intn(40), true) }, CheckMaxRegister},
		{"counter", func(r *rand.Rand) []Op { return genCounterOps(r, 3+r.Intn(40), true) }, CheckCounter},
		{"snapshot", func(r *rand.Rand) []Op { return genSnapshotOps(r, 3+r.Intn(40), 3, true) }, CheckSnapshot},
		{"consensus", func(r *rand.Rand) []Op { return genConsensusOps(r, 3+r.Intn(20), true) }, CheckConsensus},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			checked := 0
			for seed := int64(0); seed < 600 && checked < 120; seed++ {
				r := rand.New(rand.NewSource(seed))
				ops := fam.gen(r)
				if fam.batch(ops) != nil {
					continue // only legal full histories induce the contract
				}
				checked++
				var sample []Op
				for _, op := range ops {
					if r.Intn(3) > 0 {
						sample = append(sample, op)
					}
				}
				if v := runStream(NewIncremental(fam.name, true), sample); v != nil {
					t.Fatalf("seed %d: relaxed checker rejected a sub-history of a legal history: %v\nfull: %+v\nsample: %+v",
						seed, v, ops, sample)
				}
			}
			if checked < 20 {
				t.Fatalf("too few legal histories generated: %d", checked)
			}
		})
	}
}

// TestIncrementalExactViolations pins concrete violations through the
// streaming path with partial watermarks.
func TestIncrementalExactViolations(t *testing.T) {
	t.Run("maxreg lower bound at admit", func(t *testing.T) {
		ops := []Op{
			{Kind: KindWriteMax, Arg: 7, Inv: 1, Res: 2},
			{Kind: KindReadMax, Ret: 0, Inv: 10, Res: 11}, // missed completed 7
		}
		v := runStream(NewIncrementalMaxRegister(false), ops)
		if v == nil || v.Checker != "maxreg" {
			t.Fatalf("want maxreg violation, got %v", v)
		}
	})
	t.Run("maxreg phantom read at seal", func(t *testing.T) {
		ops := []Op{
			{Kind: KindWriteMax, Arg: 3, Inv: 1, Res: 2},
			{Kind: KindReadMax, Ret: 9, Inv: 10, Res: 11}, // 9 never written
		}
		st := NewStream(NewIncrementalMaxRegister(false))
		for _, op := range ops {
			st.Add(op)
		}
		if v := st.Advance(11); v != nil {
			t.Fatalf("phantom read must not fire before its response is sealed, got %v", v)
		}
		if v := st.Advance(12); v == nil {
			t.Fatal("phantom read not detected after sealing past its response")
		}
	})
	t.Run("counter upper bound at seal", func(t *testing.T) {
		ops := []Op{
			{Kind: KindIncrement, Inv: 1, Res: 2},
			{Kind: KindCounterRead, Ret: 5, Inv: 3, Res: 4}, // only 1 started
		}
		v := runStream(NewIncrementalCounter(false), ops)
		if v == nil || v.Checker != "counter" {
			t.Fatalf("want counter violation, got %v", v)
		}
	})
	t.Run("counter weighted add", func(t *testing.T) {
		ops := []Op{
			{Kind: KindIncrement, Arg: 8, Inv: 1, Res: 2}, // Add(8)
			{Kind: KindCounterRead, Ret: 8, Inv: 3, Res: 4},
			{Kind: KindCounterRead, Ret: 7, Inv: 5, Res: 6}, // non-monotone
		}
		v := runStream(NewIncrementalCounter(false), ops)
		if v == nil || v.Checker != "counter" {
			t.Fatalf("want monotonicity violation, got %v", v)
		}
	})
	t.Run("snapshot stale view", func(t *testing.T) {
		ops := []Op{
			{Proc: 0, Kind: KindUpdate, Arg: 11, Inv: 1, Res: 2},
			{Proc: 1, Kind: KindScan, RetVec: []int64{11, 0}, Inv: 3, Res: 4},
			{Proc: 1, Kind: KindScan, RetVec: []int64{0, 0}, Inv: 5, Res: 6}, // went backwards
		}
		v := runStream(NewIncrementalSnapshot(false), ops)
		if v == nil || v.Checker != "snapshot" {
			t.Fatalf("want snapshot violation, got %v", v)
		}
	})
	t.Run("consensus disagreement", func(t *testing.T) {
		ops := []Op{
			{Proc: 0, Kind: KindPropose, Arg: 1, Ret: 1, Inv: 1, Res: 2},
			{Proc: 1, Kind: KindPropose, Arg: 2, Ret: 2, Inv: 3, Res: 4},
		}
		v := runStream(NewIncrementalConsensus(false), ops)
		if v == nil || v.Checker != "consensus" {
			t.Fatalf("want consensus violation, got %v", v)
		}
	})
}

// TestIncrementalRelaxedSnapshotZeroScan pins the relaxed-mode soundness
// fix for scanned zeros: an unsampled update may legitimately have
// written 0, so a relaxed checker must never pin a scanned 0 to the
// initial value and alarm on "scan saw update #0 but #N had completed".
func TestIncrementalRelaxedSnapshotZeroScan(t *testing.T) {
	ops := []Op{
		{Proc: 0, Kind: KindUpdate, Arg: 5, Inv: 1, Res: 2},
		// Linearizable iff some Update(0) overwrote the 5 — which a sampled
		// history cannot rule out.
		{Proc: 1, Kind: KindScan, RetVec: []int64{0, 0}, Inv: 10, Res: 11},
	}
	if v := runStream(NewIncrementalSnapshot(true), ops); v != nil {
		t.Fatalf("relaxed checker rejected a scan whose 0 could be an unobserved update: %v", v)
	}
	// Exact mode observes the whole history, so the same scan is a genuine
	// lost-update violation.
	if v := runStream(NewIncrementalSnapshot(false), ops); v == nil {
		t.Fatal("exact checker missed the lost-update violation")
	}
}

// TestIncrementalConsensusDecidesZero pins the decided-0 coverage fix:
// a first propose deciding 0 must count as a decision, so a later
// propose deciding differently is an agreement violation.
func TestIncrementalConsensusDecidesZero(t *testing.T) {
	ops := []Op{
		{Proc: 0, Kind: KindPropose, Arg: 0, Ret: 0, Inv: 1, Res: 2},
		{Proc: 1, Kind: KindPropose, Arg: 5, Ret: 5, Inv: 3, Res: 4},
	}
	v := runStream(NewIncrementalConsensus(false), ops)
	if v == nil || v.Checker != "consensus" {
		t.Fatalf("want agreement violation after deciding 0, got %v", v)
	}
	if err := CheckConsensus(ops); err == nil {
		t.Fatal("batch checker missed the 0-vs-5 agreement violation")
	}
	// All-zero agreement stays legal in both checkers.
	legal := []Op{
		{Proc: 0, Kind: KindPropose, Arg: 0, Ret: 0, Inv: 1, Res: 2},
		{Proc: 1, Kind: KindPropose, Arg: 7, Ret: 0, Inv: 3, Res: 4},
	}
	if v := runStream(NewIncrementalConsensus(false), legal); v != nil {
		t.Fatalf("unanimous decision of 0 rejected: %v", v)
	}
	if err := CheckConsensus(legal); err != nil {
		t.Fatalf("batch checker rejected unanimous decision of 0: %v", err)
	}
}

// TestIncrementalValueCapDegradesGracefully verifies the bounded-memory
// escape hatch: past maxTrackedValues the checker stops reporting
// provenance violations (which could be false) but keeps the rest.
func TestIncrementalValueCapDegradesGracefully(t *testing.T) {
	old := maxTrackedValues
	maxTrackedValues = 2
	defer func() { maxTrackedValues = old }()

	ops := []Op{
		{Kind: KindWriteMax, Arg: 1, Inv: 1, Res: 2},
		{Kind: KindWriteMax, Arg: 2, Inv: 3, Res: 4},
		{Kind: KindWriteMax, Arg: 3, Inv: 5, Res: 6}, // over cap: untracked
		{Kind: KindReadMax, Ret: 3, Inv: 7, Res: 8},  // legal, must not alarm
		{Kind: KindReadMax, Ret: 9, Inv: 9, Res: 10}, // phantom, but unprovable now
	}
	if v := runStream(NewIncrementalMaxRegister(false), ops); v != nil {
		t.Fatalf("over-cap checker reported a provenance violation it cannot prove: %v", v)
	}

	// Lower bound still enforced past the cap.
	ops = append(ops, Op{Kind: KindReadMax, Ret: 0, Inv: 11, Res: 12})
	if v := runStream(NewIncrementalMaxRegister(false), ops); v == nil {
		t.Fatal("lower-bound violation missed after value-cap overflow")
	}
}

// TestStreamLatchesAndSummaries covers the Stream wrapper contract.
func TestStreamLatchesAndSummaries(t *testing.T) {
	st := NewStream(NewIncrementalCounter(false))
	st.Add(Op{Kind: KindIncrement, Inv: 1, Res: 2})
	st.Add(Op{Kind: KindCounterRead, Ret: 0, Inv: 3, Res: 4}) // missed completed inc
	first := st.Advance(sealAll)
	if first == nil {
		t.Fatal("expected violation")
	}
	if got := st.Advance(sealAll); got != first {
		t.Fatalf("violation did not latch: %v vs %v", got, first)
	}
	st.Add(Op{Kind: KindIncrement, Inv: 5, Res: 6}) // ignored after latch
	if st.Pending() != 0 {
		t.Fatalf("latched stream buffered new ops: %d pending", st.Pending())
	}
	sum := st.Summary()
	if sum.Checker != "counter" || sum.Admitted != 2 || sum.CompletedWeight != 1 {
		t.Fatalf("unexpected summary: %+v", sum)
	}
}

// TestIncrementalAdmitOrderPanics pins the programming-error contract.
func TestIncrementalAdmitOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Admit did not panic")
		}
	}()
	c := NewIncrementalMaxRegister(false)
	c.Admit(Op{Kind: KindWriteMax, Arg: 1, Inv: 10, Res: 11})
	c.Admit(Op{Kind: KindWriteMax, Arg: 2, Inv: 5, Res: 6})
}

// TestIncrementalFoldedStateStaysSmall checks the eviction claim directly:
// a long legal run keeps heap/slice state bounded by the overlap degree,
// not the history length.
func TestIncrementalFoldedStateStaysSmall(t *testing.T) {
	c := NewIncrementalCounter(false)
	st := NewStream(c)
	clock := int64(1)
	total := int64(0)
	for i := 0; i < 20000; i++ {
		inc := Op{Kind: KindIncrement, Inv: clock, Res: clock + 1}
		clock += 2
		total++
		read := Op{Kind: KindCounterRead, Ret: total, Inv: clock, Res: clock + 1}
		clock += 2
		st.Add(inc)
		st.Add(read)
		if v := st.Advance(clock); v != nil {
			t.Fatalf("legal run rejected at op %d: %v", i, v)
		}
	}
	if len(c.incInvs)-c.incLo > 64 {
		t.Fatalf("incInvs not pruned: %d live entries after 20k sealed ops", len(c.incInvs)-c.incLo)
	}
	if c.incsByRes.Len() > 4 || c.readsByRes.Len() > 4 || c.deferred.Len() > 4 {
		t.Fatalf("heaps not folded: incs=%d reads=%d deferred=%d",
			c.incsByRes.Len(), c.readsByRes.Len(), c.deferred.Len())
	}
	sum := c.Summary()
	if sum.CompletedWeight == 0 || sum.StartedWeight != total {
		t.Fatalf("summary did not fold: %+v", sum)
	}
}
