package history_test

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// These tests record real concurrent executions of every implementation and
// validate them with the interval checkers: the repository's end-to-end
// linearizability evidence under true parallelism. (The simulator-based
// exhaustive interleaving tests in internal/sim complement these with
// determinism.)

const (
	integProcs  = 6
	integOpsPer = 400
)

func maxRegisters(t *testing.T) map[string]maxreg.MaxRegister {
	t.Helper()
	algA, err := core.New(primitive.NewPool(), integProcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	aac, err := maxreg.NewAAC(primitive.NewPool(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	casReg, err := maxreg.NewCASRegister(primitive.NewPool(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]maxreg.MaxRegister{
		"core/algorithm-a": algA,
		"maxreg/aac":       aac,
		"maxreg/cas":       casReg,
		"maxreg/unbounded": maxreg.NewUnboundedAAC(primitive.NewPool()),
	}
}

func TestMaxRegisterLinearizability(t *testing.T) {
	for name, m := range maxRegisters(t) {
		t.Run(name, func(t *testing.T) {
			rec := history.NewRecorder()
			var wg sync.WaitGroup
			for p := 0; p < integProcs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					ctx := primitive.NewDirect(p)
					rng := rand.New(rand.NewSource(int64(p + 100)))
					for i := 0; i < integOpsPer; i++ {
						if rng.Intn(2) == 0 {
							v := rng.Int63n(1 << 16)
							inv := rec.Invoke()
							if err := m.WriteMax(ctx, v); err != nil {
								t.Error(err)
								return
							}
							rec.Record(history.Op{Proc: p, Kind: history.KindWriteMax, Arg: v}, inv)
						} else {
							inv := rec.Invoke()
							got := m.ReadMax(ctx)
							rec.Record(history.Op{Proc: p, Kind: history.KindReadMax, Ret: got}, inv)
						}
					}
				}(p)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if err := history.CheckMaxRegister(rec.Ops()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func counters(t *testing.T) map[string]counter.Counter {
	t.Helper()
	limit := int64(integProcs*integOpsPer + 1)
	aac, err := counter.NewAAC(primitive.NewPool(), integProcs, limit)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := counter.NewFArray(primitive.NewPool(), integProcs)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := snapshot.NewFArray(primitive.NewPool(), integProcs, limit)
	if err != nil {
		t.Fatal(err)
	}
	casCtr, err := counter.NewCAS(primitive.NewPool(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]counter.Counter{
		"counter/aac":    aac,
		"counter/farray": fa,
		"counter/cas":    casCtr,
		"counter/snap":   counter.NewFromSnapshot(fs),
	}
}

func TestCounterLinearizability(t *testing.T) {
	for name, c := range counters(t) {
		t.Run(name, func(t *testing.T) {
			rec := history.NewRecorder()
			var wg sync.WaitGroup
			for p := 0; p < integProcs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					ctx := primitive.NewDirect(p)
					rng := rand.New(rand.NewSource(int64(p + 17)))
					for i := 0; i < integOpsPer; i++ {
						if rng.Intn(2) == 0 {
							inv := rec.Invoke()
							if err := c.Increment(ctx); err != nil {
								t.Error(err)
								return
							}
							rec.Record(history.Op{Proc: p, Kind: history.KindIncrement}, inv)
						} else {
							inv := rec.Invoke()
							got := c.Read(ctx)
							rec.Record(history.Op{Proc: p, Kind: history.KindCounterRead, Ret: got}, inv)
						}
					}
				}(p)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if err := history.CheckCounter(rec.Ops()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func snapshots(t *testing.T) map[string]snapshot.Snapshot {
	t.Helper()
	limit := int64(integProcs*integOpsPer + 1)
	dc, err := snapshot.NewDoubleCollect(primitive.NewPool(), integProcs)
	if err != nil {
		t.Fatal(err)
	}
	af, err := snapshot.NewAfek(primitive.NewPool(), integProcs, limit)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := snapshot.NewFArray(primitive.NewPool(), integProcs, limit)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]snapshot.Snapshot{
		"snapshot/doublecollect": dc,
		"snapshot/afek":          af,
		"snapshot/farray":        fa,
	}
}

func TestSnapshotLinearizability(t *testing.T) {
	for name, s := range snapshots(t) {
		t.Run(name, func(t *testing.T) {
			rec := history.NewRecorder()
			var wg sync.WaitGroup
			for p := 0; p < integProcs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					ctx := primitive.NewDirect(p)
					rng := rand.New(rand.NewSource(int64(p + 55)))
					// Distinct nonzero per-segment values: p's k-th update
					// writes k (strictly increasing per segment).
					seq := int64(0)
					for i := 0; i < integOpsPer; i++ {
						if rng.Intn(2) == 0 {
							seq++
							inv := rec.Invoke()
							if err := s.Update(ctx, seq); err != nil {
								t.Error(err)
								return
							}
							rec.Record(history.Op{Proc: p, Kind: history.KindUpdate, Arg: seq}, inv)
						} else {
							inv := rec.Invoke()
							got := s.Scan(ctx)
							rec.Record(history.Op{Proc: p, Kind: history.KindScan, RetVec: got}, inv)
						}
					}
				}(p)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if err := history.CheckSnapshot(rec.Ops()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
