package history

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpRoundTrip(t *testing.T) {
	in := &Dump{
		Name:        "maxreg#0",
		Family:      "maxreg",
		ClockUnit:   "ns-hybrid",
		SampleEvery: 4,
		Dropped:     7,
		Summary:     &PrefixSummary{Checker: "maxreg", Admitted: 3, SealedTo: 99, MaxCompletedWrite: 5},
		Violation: &ViolationError{
			Checker: "maxreg",
			Detail:  "read returned a never-written value",
			Op:      Op{Proc: 2, Kind: KindReadMax, Ret: 9, Inv: 40, Res: 41},
		},
		Ops: []Op{
			{Proc: 1, Kind: KindReadMax, Ret: 5, Inv: 30, Res: 31}, // deliberately unsorted
			{Proc: 0, Kind: KindWriteMax, Arg: 5, Inv: 10, Res: 11},
		},
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, in); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	out, err := ReadDump(&buf)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if out.Schema != DumpSchema || out.Name != in.Name || out.Family != in.Family {
		t.Fatalf("header mismatch: %+v", out)
	}
	if out.SampleEvery != 4 || out.Dropped != 7 {
		t.Fatalf("recorder fields mismatch: %+v", out)
	}
	if out.Summary == nil || out.Summary.MaxCompletedWrite != 5 {
		t.Fatalf("summary mismatch: %+v", out.Summary)
	}
	if out.Violation == nil || out.Violation.Op.Ret != 9 {
		t.Fatalf("violation mismatch: %+v", out.Violation)
	}
	if len(out.Ops) != 2 || out.Ops[0].Kind != KindWriteMax {
		t.Fatalf("ops not sorted by invocation: %+v", out.Ops)
	}
}

func TestReadDumpRejectsBadInput(t *testing.T) {
	if _, err := ReadDump(strings.NewReader(`{"schema":"nope","ops":[]}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadDump(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	bad := `{"schema":"` + DumpSchema + `","ops":[{"proc":0,"kind":1,"inv":5,"res":5}]}`
	if _, err := ReadDump(strings.NewReader(bad)); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestFamilyRegistries(t *testing.T) {
	for _, fam := range []string{"maxreg", "counter", "snapshot", "consensus"} {
		if CheckerFor(fam) == nil {
			t.Fatalf("no batch checker for %s", fam)
		}
		if NewIncremental(fam, false) == nil {
			t.Fatalf("no incremental checker for %s", fam)
		}
	}
	if CheckerFor("queue") != nil || NewIncremental("queue", false) != nil {
		t.Fatal("unknown family did not return nil")
	}
}

// TestDumpRecheckable verifies the repro-artifact promise: a dumped window
// re-checks offline with the batch checker for its family.
func TestDumpRecheckable(t *testing.T) {
	d := &Dump{
		Name:   "counter#0",
		Family: "counter",
		Ops: []Op{
			{Kind: KindIncrement, Inv: 1, Res: 2},
			{Kind: KindCounterRead, Ret: 0, Inv: 3, Res: 4}, // violation
		},
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	out, err := ReadDump(&buf)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if err := CheckerFor(out.Family)(out.Ops); err == nil {
		t.Fatal("re-check of violating window passed")
	}
}
