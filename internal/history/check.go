package history

import (
	"fmt"
	"sort"
)

// CheckMaxRegister verifies the interval conditions every linearizable max
// register history must satisfy:
//
//  1. A ReadMax returning v > 0 requires some WriteMax(v) invoked before
//     the read responded.
//  2. A ReadMax must return at least the largest value whose write
//     completed before the read was invoked.
//  3. ReadMax results are monotone along real-time order: a read that
//     finished before another started cannot have returned more.
//
// The conditions are necessary for linearizability, so a non-nil result is
// always a genuine violation.
func CheckMaxRegister(ops []Op) error {
	var writes, reads []Op
	for _, op := range ops {
		switch op.Kind {
		case KindWriteMax:
			writes = append(writes, op)
		case KindReadMax:
			reads = append(reads, op)
		}
	}

	// minInvByValue[v] = earliest invocation of a WriteMax(v).
	minInvByValue := make(map[int64]int64, len(writes))
	for _, w := range writes {
		if inv, ok := minInvByValue[w.Arg]; !ok || w.Inv < inv {
			minInvByValue[w.Arg] = w.Inv
		}
	}

	// Prefix maxima of write values ordered by response time, for
	// condition 2 via binary search.
	byRes := make([]Op, len(writes))
	copy(byRes, writes)
	sort.Slice(byRes, func(i, j int) bool { return byRes[i].Res < byRes[j].Res })
	resTimes := make([]int64, len(byRes))
	prefixMax := make([]int64, len(byRes))
	runningMax := int64(0)
	for i, w := range byRes {
		resTimes[i] = w.Res
		if w.Arg > runningMax {
			runningMax = w.Arg
		}
		prefixMax[i] = runningMax
	}
	maxCompletedBefore := func(t int64) int64 {
		// Largest write value whose Res < t.
		k := sort.Search(len(resTimes), func(i int) bool { return resTimes[i] >= t })
		if k == 0 {
			return 0
		}
		return prefixMax[k-1]
	}

	for _, r := range reads {
		if r.Ret != 0 {
			inv, ok := minInvByValue[r.Ret]
			if !ok {
				return &ViolationError{Checker: "maxreg", Detail: "read returned a never-written value", Op: r}
			}
			if inv >= r.Res {
				return &ViolationError{Checker: "maxreg", Detail: "read returned a value written only after the read responded", Op: r}
			}
		}
		if floor := maxCompletedBefore(r.Inv); r.Ret < floor {
			return &ViolationError{
				Checker: "maxreg",
				Detail:  fmt.Sprintf("read missed completed write of %d", floor),
				Op:      r,
			}
		}
	}
	return checkMonotoneReads("maxreg", reads)
}

// IncWeight is the number of unit increments an increment operation
// represents: Op.Arg when positive, 1 otherwise. Plain Increments record no
// argument (weight 1); coalesced deltas (CounterHandle.Add, batching
// flushes) record the delta so checkers can account for them as one
// linearizable multi-increment.
func IncWeight(op Op) int64 {
	if op.Arg > 0 {
		return op.Arg
	}
	return 1
}

// CheckCounter verifies the interval conditions for counter histories:
// every read is sandwiched between the total weight (IncWeight) of
// increments completed before it began and the total weight started before
// it ended, and non-overlapping reads are monotone.
func CheckCounter(ops []Op) error {
	type inc struct{ t, w int64 }
	var byInv, byRes []inc
	var reads []Op
	for _, op := range ops {
		switch op.Kind {
		case KindIncrement:
			w := IncWeight(op)
			byInv = append(byInv, inc{op.Inv, w})
			byRes = append(byRes, inc{op.Res, w})
		case KindCounterRead:
			reads = append(reads, op)
		}
	}
	sort.Slice(byInv, func(i, j int) bool { return byInv[i].t < byInv[j].t })
	sort.Slice(byRes, func(i, j int) bool { return byRes[i].t < byRes[j].t })
	prefix := func(incs []inc) []int64 {
		sums := make([]int64, len(incs)+1)
		for i, e := range incs {
			sums[i+1] = sums[i] + e.w
		}
		return sums
	}
	invSums, resSums := prefix(byInv), prefix(byRes)

	weightBefore := func(incs []inc, sums []int64, t int64) int64 {
		return sums[sort.Search(len(incs), func(i int) bool { return incs[i].t >= t })]
	}
	for _, r := range reads {
		completed := weightBefore(byRes, resSums, r.Inv)
		started := weightBefore(byInv, invSums, r.Res)
		if r.Ret < completed {
			return &ViolationError{
				Checker: "counter",
				Detail:  fmt.Sprintf("read %d but increments totaling %d had completed", r.Ret, completed),
				Op:      r,
			}
		}
		if r.Ret > started {
			return &ViolationError{
				Checker: "counter",
				Detail:  fmt.Sprintf("read %d but only increments totaling %d had started", r.Ret, started),
				Op:      r,
			}
		}
	}
	return checkMonotoneReads("counter", reads)
}

// CheckConsensus verifies the interval conditions every linearizable
// consensus history must satisfy: all Propose operations return the same
// decided value (agreement), and the decided value is some operation's
// proposal, invoked before the deciding operation responded (validity).
func CheckConsensus(ops []Op) error {
	var proposes []Op
	minInvByValue := make(map[int64]int64)
	for _, op := range ops {
		if op.Kind != KindPropose {
			continue
		}
		proposes = append(proposes, op)
		if inv, ok := minInvByValue[op.Arg]; !ok || op.Inv < inv {
			minInvByValue[op.Arg] = op.Inv
		}
	}
	var decided int64
	var first Op
	decidedSet := false // a decision of 0 is legal, so 0 cannot be the sentinel
	for _, p := range proposes {
		if !decidedSet {
			decided, first, decidedSet = p.Ret, p, true
		} else if p.Ret != decided {
			return &ViolationError{
				Checker: "consensus",
				Detail:  fmt.Sprintf("decided %d but an earlier propose decided %d", p.Ret, first.Ret),
				Op:      p,
			}
		}
		inv, ok := minInvByValue[p.Ret]
		if !ok {
			return &ViolationError{Checker: "consensus", Detail: "decided a never-proposed value", Op: p}
		}
		if inv >= p.Res {
			return &ViolationError{Checker: "consensus", Detail: "decided a value proposed only after the propose responded", Op: p}
		}
	}
	return nil
}

// checkMonotoneReads verifies that reads are monotone along real-time
// precedence: r1.Res < r2.Inv implies r1.Ret <= r2.Ret.
func checkMonotoneReads(checker string, reads []Op) error {
	byInv := make([]Op, len(reads))
	copy(byInv, reads)
	sort.Slice(byInv, func(i, j int) bool { return byInv[i].Inv < byInv[j].Inv })
	byRes := make([]Op, len(reads))
	copy(byRes, reads)
	sort.Slice(byRes, func(i, j int) bool { return byRes[i].Res < byRes[j].Res })

	var (
		maxEnded int64 // max Ret among reads with Res < current Inv
		k        int
	)
	for _, r := range byInv {
		for k < len(byRes) && byRes[k].Res < r.Inv {
			if byRes[k].Ret > maxEnded {
				maxEnded = byRes[k].Ret
			}
			k++
		}
		if r.Ret < maxEnded {
			return &ViolationError{
				Checker: checker,
				Detail:  fmt.Sprintf("read %d after an earlier read already returned %d", r.Ret, maxEnded),
				Op:      r,
			}
		}
	}
	return nil
}

// CheckSnapshot verifies the interval conditions for single-writer snapshot
// histories. It requires the test-friendly discipline that per-segment
// update values are distinct and nonzero (so a scanned value identifies a
// unique update); it rejects histories violating that precondition.
//
// Conditions:
//
//  1. Per process, updates must be sequential (single-writer discipline).
//  2. Every scanned segment value resolves to an update index within the
//     [completed-before-scan, started-before-scan] window.
//  3. Scan index vectors form a chain under pointwise order (overlapping
//     scans must still be mutually orderable).
//  4. The chain respects real time: a scan that finished before another
//     started cannot have a pointwise-larger vector.
func CheckSnapshot(ops []Op) error {
	perSeg := make(map[int][]Op)
	var scans []Op
	for _, op := range ops {
		switch op.Kind {
		case KindUpdate:
			perSeg[op.Proc] = append(perSeg[op.Proc], op)
		case KindScan:
			scans = append(scans, op)
		}
	}

	type segInfo struct {
		invs, ress []int64
		indexOf    map[int64]int // value -> 1-based update index
	}
	segs := make(map[int]*segInfo, len(perSeg))
	for seg, updates := range perSeg {
		sort.Slice(updates, func(i, j int) bool { return updates[i].Inv < updates[j].Inv })
		info := &segInfo{indexOf: make(map[int64]int, len(updates))}
		for i, u := range updates {
			if i > 0 && updates[i-1].Res > u.Inv {
				return &ViolationError{Checker: "snapshot", Detail: "single-writer updates overlap", Op: u}
			}
			if u.Arg == 0 {
				return &ViolationError{Checker: "snapshot", Detail: "checker precondition: zero update value", Op: u}
			}
			if _, dup := info.indexOf[u.Arg]; dup {
				return &ViolationError{Checker: "snapshot", Detail: "checker precondition: duplicate update value in segment", Op: u}
			}
			info.indexOf[u.Arg] = i + 1
			info.invs = append(info.invs, u.Inv)
			info.ress = append(info.ress, u.Res)
		}
		segs[seg] = info
	}

	countBefore := func(times []int64, t int64) int {
		return sort.Search(len(times), func(i int) bool { return times[i] >= t })
	}

	// Resolve each scan to an index vector and check windows.
	type scanVec struct {
		op  Op
		vec []int
		sum int
	}
	vecs := make([]scanVec, 0, len(scans))
	for _, s := range scans {
		vec := make([]int, len(s.RetVec))
		sum := 0
		for seg, v := range s.RetVec {
			info := segs[seg]
			idx := 0
			if v != 0 {
				if info == nil {
					return &ViolationError{Checker: "snapshot", Detail: "scan returned value for never-updated segment", Op: s}
				}
				var ok bool
				idx, ok = info.indexOf[v]
				if !ok {
					return &ViolationError{Checker: "snapshot", Detail: "scan returned a never-written segment value", Op: s}
				}
			}
			var completed, started int
			if info != nil {
				completed = countBefore(info.ress, s.Inv)
				started = countBefore(info.invs, s.Res)
			}
			if idx < completed {
				return &ViolationError{
					Checker: "snapshot",
					Detail:  fmt.Sprintf("segment %d: scan saw update #%d but #%d had completed", seg, idx, completed),
					Op:      s,
				}
			}
			if idx > started {
				return &ViolationError{
					Checker: "snapshot",
					Detail:  fmt.Sprintf("segment %d: scan saw update #%d but only %d had started", seg, idx, started),
					Op:      s,
				}
			}
			vec[seg] = idx
			sum += idx
		}
		vecs = append(vecs, scanVec{op: s, vec: vec, sum: sum})
	}

	// Chain condition: sum-sort, then consecutive vectors must be
	// pointwise ordered.
	bySum := make([]scanVec, len(vecs))
	copy(bySum, vecs)
	sort.Slice(bySum, func(i, j int) bool { return bySum[i].sum < bySum[j].sum })
	for i := 1; i < len(bySum); i++ {
		if !pointwiseLE(bySum[i-1].vec, bySum[i].vec) {
			return &ViolationError{
				Checker: "snapshot",
				Detail:  fmt.Sprintf("incomparable scan views %v and %v", bySum[i-1].vec, bySum[i].vec),
				Op:      bySum[i].op,
			}
		}
	}

	// Real-time condition: sweep scans by Inv, tracking the pointwise max
	// vector among scans that already responded.
	byInv := make([]scanVec, len(vecs))
	copy(byInv, vecs)
	sort.Slice(byInv, func(i, j int) bool { return byInv[i].op.Inv < byInv[j].op.Inv })
	byRes := make([]scanVec, len(vecs))
	copy(byRes, vecs)
	sort.Slice(byRes, func(i, j int) bool { return byRes[i].op.Res < byRes[j].op.Res })

	var runningMax []int
	k := 0
	for _, sv := range byInv {
		for k < len(byRes) && byRes[k].op.Res < sv.op.Inv {
			if runningMax == nil {
				runningMax = make([]int, len(byRes[k].vec))
			}
			for i, v := range byRes[k].vec {
				if v > runningMax[i] {
					runningMax[i] = v
				}
			}
			k++
		}
		if runningMax != nil && !pointwiseLE(runningMax, sv.vec) {
			return &ViolationError{
				Checker: "snapshot",
				Detail:  fmt.Sprintf("scan view %v older than a preceding scan's %v", sv.vec, runningMax),
				Op:      sv.op,
			}
		}
	}
	return nil
}

func pointwiseLE(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}
