package history

import (
	"fmt"
	"sort"
)

// This file is the incremental (streaming) counterpart of the batch interval
// checkers in check.go, built for the flight recorder's online monitor
// (internal/obs/flight): operations arrive while the workload runs, the
// monitor's ring buffer evicts old records, and the checkers must keep their
// verdicts sound — never rejecting a linearizable history — on bounded
// memory.
//
// # API shape
//
// An Incremental checker consumes a history in two motions:
//
//   - Admit(op) feeds one completed operation. Calls must arrive in
//     nondecreasing invocation order; Stream (below) reorders the
//     recorder's arrival order (≈ response order) into invocation order
//     using a watermark.
//   - Seal(upTo) promises that every operation with Inv < upTo has been
//     admitted. Sealing is what makes response-side checks possible: a
//     read's upper bound ("the read saw at most what had started before it
//     responded") quantifies over operations invoked before the read's
//     response, and those are only all known once the watermark passes the
//     response time.
//
// Both return the first *ViolationError found, or nil.
//
// # Eviction soundness
//
// The batch checkers hold the whole history; the incremental ones
// continuously fold what they no longer need into a compact
// evicted-prefix summary (PrefixSummary) and drop the rest:
//
//   - Admits arrive in invocation order, so any state keyed by "operations
//     that responded before some future invocation" can be folded into a
//     scalar the moment its response time drops below the admit frontier.
//     The max register's completed-write floor and the read-monotonicity
//     frontier (the "last read frontier") fold this way, exactly — no
//     precision is lost, because every future query uses a threshold at
//     least as large as the current frontier.
//   - Value-provenance state ("was this value ever written?") cannot be
//     folded exactly. It is capped (maxTrackedValues); at the cap the
//     checker stops creating entries and stops reporting
//     "never-written value" violations for unknown values, because a
//     dropped entry could make a legal read look like a phantom. Entries
//     that do exist keep exact minimum-invocation times, so their
//     violations stay genuine.
//
// The result is one-sided: a reported violation is always real, while some
// exotic violations may go unreported after folding — the same contract the
// batch interval checkers already have with respect to linearizability.
//
// # Sampled (relaxed) mode
//
// When the recorder samples (records only 1 in k operations), the observed
// history is a sub-history. Lower-bound and monotonicity conditions survive
// restriction to any subset — a read must still return at least every
// *sampled* completed increment, and non-overlapping sampled reads must
// still be monotone. Upper-bound and provenance conditions do NOT: an
// unsampled increment can legitimately raise a read above the sampled
// started-count, and an unsampled write can legitimize a "never-written"
// value. Constructing a checker with relaxed=true disables exactly the
// subset-unsound conditions; the monitor also switches a stream to relaxed
// permanently after a ring-buffer gap, for the same reason (the lost
// records are an unsampled sub-history).

// Incremental is a streaming linearizability checker for one object.
// See the file comment for the Admit/Seal contract. Implementations are
// not safe for concurrent use; the flight monitor drives each from a
// single goroutine.
type Incremental interface {
	// Admit feeds one completed operation. Operations must be admitted in
	// nondecreasing invocation order.
	Admit(op Op) *ViolationError

	// Seal declares that every operation with Inv < upTo has been
	// admitted, and runs the deferred response-side checks for admitted
	// operations with Res < upTo.
	Seal(upTo int64) *ViolationError

	// Summary returns the compact evicted-prefix summary.
	Summary() PrefixSummary
}

// PrefixSummary is the compact summary of everything an incremental
// checker has folded out of its bounded in-memory state. It is embedded in
// violation artifacts (Dump) so a reader knows what the evicted prefix
// contributed to the verdict. Fields are family-specific; unused ones are
// omitted from JSON.
type PrefixSummary struct {
	// Checker names the family: maxreg, counter, snapshot, or consensus.
	Checker string `json:"checker"`
	// Admitted counts operations admitted so far.
	Admitted int64 `json:"admitted"`
	// SealedTo is the highest Seal watermark applied.
	SealedTo int64 `json:"sealed_to"`
	// Relaxed reports sampled mode (subset-unsound checks disabled).
	Relaxed bool `json:"relaxed,omitempty"`

	// MaxCompletedWrite is the max register's folded floor: the largest
	// value whose write completed before the admit frontier.
	MaxCompletedWrite int64 `json:"max_completed_write,omitempty"`
	// ReadFrontier is the largest value returned by a read that completed
	// before the admit frontier (max register and counter monotonicity).
	ReadFrontier int64 `json:"read_frontier,omitempty"`

	// CompletedWeight is the counter's folded lower bound: total increment
	// weight completed before the admit frontier.
	CompletedWeight int64 `json:"completed_weight,omitempty"`
	// StartedWeight is the total increment weight admitted.
	StartedWeight int64 `json:"started_weight,omitempty"`

	// ScanFrontier is the snapshot's folded pointwise-max view over scans
	// that completed before the admit frontier.
	ScanFrontier []int `json:"scan_frontier,omitempty"`

	// Decided is the consensus decision observed (0 if none).
	Decided int64 `json:"decided,omitempty"`
}

// maxTrackedValues caps the value-provenance maps (written values for max
// registers, proposed values for consensus, per-segment update values for
// snapshots). Past the cap the checker degrades gracefully: it stops
// reporting provenance violations for untracked values instead of risking
// a false positive. Var, not const, so tests can shrink it.
var maxTrackedValues = 1 << 16

// minHeap is a small binary min-heap ordered by less.
type minHeap[T any] struct {
	items []T
	less  func(a, b T) bool
}

func newMinHeap[T any](less func(a, b T) bool) *minHeap[T] {
	return &minHeap[T]{less: less}
}

func (h *minHeap[T]) Len() int { return len(h.items) }

func (h *minHeap[T]) Peek() T { return h.items[0] }

func (h *minHeap[T]) Push(x T) {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *minHeap[T]) Pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// pair is a (timestamp, value) heap entry.
type pair struct{ t, v int64 }

func pairLess(a, b pair) bool { return a.t < b.t }

func opResLess(a, b Op) bool { return a.Res < b.Res }

// admitOrdered enforces the nondecreasing-invocation contract.
func admitOrdered(checker string, last *int64, op Op) {
	if op.Inv < *last {
		panic(fmt.Sprintf("history: %s: Admit out of order: inv %d after %d (use Stream to reorder arrivals)",
			checker, op.Inv, *last))
	}
	*last = op.Inv
}

// IncrementalMaxRegister is the streaming CheckMaxRegister. Construct with
// NewIncrementalMaxRegister.
type IncrementalMaxRegister struct {
	relaxed  bool
	admitted int64
	lastInv  int64
	sealedTo int64

	// floorMax folds writes whose response dropped below the admit
	// frontier; writesByRes holds the rest as (Res, Arg).
	floorMax    int64
	writesByRes *minHeap[pair]

	// readFrontier folds completed reads (monotonicity); readsByRes holds
	// reads still overlapping the frontier as (Res, Ret).
	readFrontier int64
	readsByRes   *minHeap[pair]

	// minInvByValue tracks the earliest write invocation per value for the
	// provenance check; capped by maxTrackedValues (valuesOverflowed
	// disables absent-entry verdicts past the cap).
	minInvByValue    map[int64]int64
	valuesOverflowed bool

	// deferred holds reads awaiting their provenance check, by Res.
	deferred *minHeap[Op]
}

// NewIncrementalMaxRegister returns an empty streaming max register
// checker. relaxed disables the subset-unsound provenance conditions (use
// it when the observed history is a sample of the real one).
func NewIncrementalMaxRegister(relaxed bool) *IncrementalMaxRegister {
	return &IncrementalMaxRegister{
		relaxed:       relaxed,
		writesByRes:   newMinHeap(pairLess),
		readsByRes:    newMinHeap(pairLess),
		minInvByValue: make(map[int64]int64),
		deferred:      newMinHeap(opResLess),
	}
}

// fold retires state whose response time dropped below the admit frontier.
func (c *IncrementalMaxRegister) fold(t int64) {
	for c.writesByRes.Len() > 0 && c.writesByRes.Peek().t < t {
		p := c.writesByRes.Pop()
		if p.v > c.floorMax {
			c.floorMax = p.v
		}
	}
	for c.readsByRes.Len() > 0 && c.readsByRes.Peek().t < t {
		p := c.readsByRes.Pop()
		if p.v > c.readFrontier {
			c.readFrontier = p.v
		}
	}
}

// Admit implements Incremental.
func (c *IncrementalMaxRegister) Admit(op Op) *ViolationError {
	admitOrdered("maxreg", &c.lastInv, op)
	c.admitted++
	c.fold(op.Inv)
	switch op.Kind {
	case KindWriteMax:
		if prev, ok := c.minInvByValue[op.Arg]; ok {
			if op.Inv < prev {
				c.minInvByValue[op.Arg] = op.Inv
			}
		} else if len(c.minInvByValue) < maxTrackedValues {
			c.minInvByValue[op.Arg] = op.Inv
		} else {
			c.valuesOverflowed = true
		}
		c.writesByRes.Push(pair{op.Res, op.Arg})
	case KindReadMax:
		if op.Ret < c.floorMax {
			return &ViolationError{
				Checker: "maxreg",
				Detail:  fmt.Sprintf("read missed completed write of %d", c.floorMax),
				Op:      op,
			}
		}
		if op.Ret < c.readFrontier {
			return &ViolationError{
				Checker: "maxreg",
				Detail:  fmt.Sprintf("read %d after an earlier read already returned %d", op.Ret, c.readFrontier),
				Op:      op,
			}
		}
		c.readsByRes.Push(pair{op.Res, op.Ret})
		if op.Ret != 0 && !c.relaxed {
			c.deferred.Push(op)
		}
	}
	return nil
}

// Seal implements Incremental.
func (c *IncrementalMaxRegister) Seal(upTo int64) *ViolationError {
	if upTo > c.sealedTo {
		c.sealedTo = upTo
	}
	for c.deferred.Len() > 0 && c.deferred.Peek().Res < upTo {
		r := c.deferred.Pop()
		inv, ok := c.minInvByValue[r.Ret]
		if !ok {
			if c.valuesOverflowed {
				continue
			}
			return &ViolationError{Checker: "maxreg", Detail: "read returned a never-written value", Op: r}
		}
		if inv >= r.Res {
			return &ViolationError{Checker: "maxreg", Detail: "read returned a value written only after the read responded", Op: r}
		}
	}
	return nil
}

// Summary implements Incremental.
func (c *IncrementalMaxRegister) Summary() PrefixSummary {
	return PrefixSummary{
		Checker:           "maxreg",
		Admitted:          c.admitted,
		SealedTo:          c.sealedTo,
		Relaxed:           c.relaxed,
		MaxCompletedWrite: c.floorMax,
		ReadFrontier:      c.readFrontier,
	}
}

// IncrementalCounter is the streaming CheckCounter. Construct with
// NewIncrementalCounter.
type IncrementalCounter struct {
	relaxed  bool
	admitted int64
	lastInv  int64
	sealedTo int64

	// completedWeight folds increments whose response dropped below the
	// admit frontier; incsByRes holds the rest as (Res, weight).
	completedWeight int64
	incsByRes       *minHeap[pair]

	// startedWeight totals every admitted increment's weight. incInvs
	// holds (Inv, cumulative weight) in admit order for the deferred
	// upper-bound check; incLo is the prune pointer (queries arrive in
	// nondecreasing Res order, so retired prefixes drop off).
	startedWeight int64
	incInvs       []pair
	incLo         int

	readFrontier int64
	readsByRes   *minHeap[pair]

	deferred *minHeap[Op]
}

// NewIncrementalCounter returns an empty streaming counter checker.
// relaxed disables the subset-unsound upper-bound condition.
func NewIncrementalCounter(relaxed bool) *IncrementalCounter {
	return &IncrementalCounter{
		relaxed:    relaxed,
		incsByRes:  newMinHeap(pairLess),
		readsByRes: newMinHeap(pairLess),
		deferred:   newMinHeap(opResLess),
	}
}

func (c *IncrementalCounter) fold(t int64) {
	for c.incsByRes.Len() > 0 && c.incsByRes.Peek().t < t {
		c.completedWeight += c.incsByRes.Pop().v
	}
	for c.readsByRes.Len() > 0 && c.readsByRes.Peek().t < t {
		p := c.readsByRes.Pop()
		if p.v > c.readFrontier {
			c.readFrontier = p.v
		}
	}
}

// startedBefore returns the total weight of increments invoked before t.
// Exact only once the watermark passed t (Seal's precondition).
func (c *IncrementalCounter) startedBefore(t int64) int64 {
	tail := c.incInvs[c.incLo:]
	k := sort.Search(len(tail), func(i int) bool { return tail[i].t >= t })
	if c.incLo+k == 0 {
		return 0
	}
	return c.incInvs[c.incLo+k-1].v
}

// prune retires incInvs entries no future query can reach. Queries arrive
// in nondecreasing Res order from the deferred heap, so everything before
// the last entry below t is dead.
func (c *IncrementalCounter) prune(t int64) {
	tail := c.incInvs[c.incLo:]
	k := sort.Search(len(tail), func(i int) bool { return tail[i].t >= t })
	if k > 0 {
		c.incLo += k - 1 // keep the last entry below t: it carries the cumulative weight
	}
	if c.incLo > len(c.incInvs)/2 && c.incLo > 64 {
		c.incInvs = append(c.incInvs[:0:0], c.incInvs[c.incLo:]...)
		c.incLo = 0
	}
}

// Admit implements Incremental.
func (c *IncrementalCounter) Admit(op Op) *ViolationError {
	admitOrdered("counter", &c.lastInv, op)
	c.admitted++
	c.fold(op.Inv)
	switch op.Kind {
	case KindIncrement:
		w := IncWeight(op)
		c.startedWeight += w
		c.incsByRes.Push(pair{op.Res, w})
		if !c.relaxed {
			c.incInvs = append(c.incInvs, pair{op.Inv, c.startedWeight})
		}
	case KindCounterRead:
		if op.Ret < c.completedWeight {
			return &ViolationError{
				Checker: "counter",
				Detail:  fmt.Sprintf("read %d but increments totaling %d had completed", op.Ret, c.completedWeight),
				Op:      op,
			}
		}
		if op.Ret < c.readFrontier {
			return &ViolationError{
				Checker: "counter",
				Detail:  fmt.Sprintf("read %d after an earlier read already returned %d", op.Ret, c.readFrontier),
				Op:      op,
			}
		}
		c.readsByRes.Push(pair{op.Res, op.Ret})
		if !c.relaxed {
			c.deferred.Push(op)
		}
	}
	return nil
}

// Seal implements Incremental.
func (c *IncrementalCounter) Seal(upTo int64) *ViolationError {
	if upTo > c.sealedTo {
		c.sealedTo = upTo
	}
	for c.deferred.Len() > 0 && c.deferred.Peek().Res < upTo {
		r := c.deferred.Pop()
		if started := c.startedBefore(r.Res); r.Ret > started {
			return &ViolationError{
				Checker: "counter",
				Detail:  fmt.Sprintf("read %d but only increments totaling %d had started", r.Ret, started),
				Op:      r,
			}
		}
		c.prune(r.Res)
	}
	return nil
}

// Summary implements Incremental.
func (c *IncrementalCounter) Summary() PrefixSummary {
	return PrefixSummary{
		Checker:         "counter",
		Admitted:        c.admitted,
		SealedTo:        c.sealedTo,
		Relaxed:         c.relaxed,
		CompletedWeight: c.completedWeight,
		StartedWeight:   c.startedWeight,
		ReadFrontier:    c.readFrontier,
	}
}

// IncrementalConsensus is the streaming CheckConsensus. Construct with
// NewIncrementalConsensus.
type IncrementalConsensus struct {
	relaxed  bool
	admitted int64
	lastInv  int64
	sealedTo int64

	// decided is the observed decision; decidedSet distinguishes "no
	// propose admitted yet" from a legitimate decision of 0.
	decided    int64
	decidedSet bool

	minInvByValue    map[int64]int64
	valuesOverflowed bool
	deferred         *minHeap[Op]
}

// NewIncrementalConsensus returns an empty streaming consensus checker.
// relaxed disables the subset-unsound validity condition; agreement is
// checked in every mode (any two sampled decisions must still agree).
func NewIncrementalConsensus(relaxed bool) *IncrementalConsensus {
	return &IncrementalConsensus{
		relaxed:       relaxed,
		minInvByValue: make(map[int64]int64),
		deferred:      newMinHeap(opResLess),
	}
}

// Admit implements Incremental.
func (c *IncrementalConsensus) Admit(op Op) *ViolationError {
	admitOrdered("consensus", &c.lastInv, op)
	if op.Kind != KindPropose {
		return nil
	}
	c.admitted++
	if prev, ok := c.minInvByValue[op.Arg]; ok {
		if op.Inv < prev {
			c.minInvByValue[op.Arg] = op.Inv
		}
	} else if len(c.minInvByValue) < maxTrackedValues {
		c.minInvByValue[op.Arg] = op.Inv
	} else {
		c.valuesOverflowed = true
	}
	if !c.decidedSet {
		c.decided, c.decidedSet = op.Ret, true
	} else if op.Ret != c.decided {
		return &ViolationError{
			Checker: "consensus",
			Detail:  fmt.Sprintf("decided %d but an earlier propose decided %d", op.Ret, c.decided),
			Op:      op,
		}
	}
	if !c.relaxed {
		c.deferred.Push(op)
	}
	return nil
}

// Seal implements Incremental.
func (c *IncrementalConsensus) Seal(upTo int64) *ViolationError {
	if upTo > c.sealedTo {
		c.sealedTo = upTo
	}
	for c.deferred.Len() > 0 && c.deferred.Peek().Res < upTo {
		p := c.deferred.Pop()
		inv, ok := c.minInvByValue[p.Ret]
		if !ok {
			if c.valuesOverflowed {
				continue
			}
			return &ViolationError{Checker: "consensus", Detail: "decided a never-proposed value", Op: p}
		}
		if inv >= p.Res {
			return &ViolationError{Checker: "consensus", Detail: "decided a value proposed only after the propose responded", Op: p}
		}
	}
	return nil
}

// Summary implements Incremental.
func (c *IncrementalConsensus) Summary() PrefixSummary {
	return PrefixSummary{
		Checker:  "consensus",
		Admitted: c.admitted,
		SealedTo: c.sealedTo,
		Relaxed:  c.relaxed,
		Decided:  c.decided,
	}
}

// Stream adapts a recorder's arrival order (≈ response order) to the
// Admit/Seal contract: Add buffers operations in any order, and Advance(w)
// admits everything invoked before the watermark w in invocation order,
// then seals to w. The first violation latches: the checker's state past a
// violation is unreliable, so Advance stops feeding it and keeps returning
// the same error.
type Stream struct {
	inc       Incremental
	pending   *minHeap[Op]
	violation *ViolationError
}

// NewStream wraps an incremental checker.
func NewStream(inc Incremental) *Stream {
	return &Stream{
		inc:     inc,
		pending: newMinHeap(func(a, b Op) bool { return a.Inv < b.Inv }),
	}
}

// Add buffers one completed operation.
func (s *Stream) Add(op Op) {
	if s.violation != nil {
		return
	}
	s.pending.Push(op)
}

// Advance admits every buffered operation invoked before w, seals to w,
// and returns the latched violation (nil if none).
func (s *Stream) Advance(w int64) *ViolationError {
	if s.violation != nil {
		return s.violation
	}
	for s.pending.Len() > 0 && s.pending.Peek().Inv < w {
		if v := s.inc.Admit(s.pending.Pop()); v != nil {
			s.violation = v
			return v
		}
	}
	if v := s.inc.Seal(w); v != nil {
		s.violation = v
	}
	return s.violation
}

// Violation returns the latched violation, if any.
func (s *Stream) Violation() *ViolationError { return s.violation }

// Pending reports how many buffered operations await admission.
func (s *Stream) Pending() int { return s.pending.Len() }

// Summary exposes the wrapped checker's prefix summary.
func (s *Stream) Summary() PrefixSummary { return s.inc.Summary() }
