// Package history records concurrent operation histories and checks them
// for linearizability (Herlihy & Wing, TOPLAS 1990 — reference [12] of the
// paper), which is the correctness condition all objects in this repository
// claim.
//
// Two kinds of checkers are provided:
//
//   - Specialized interval checkers for max registers, counters, and
//     single-writer snapshots (CheckMaxRegister, CheckCounter,
//     CheckSnapshot). They verify necessary linearizability conditions in
//     near-linear time and scale to histories with millions of operations.
//     They can in principle accept a non-linearizable history in exotic
//     corner cases, but they never reject a linearizable one, which makes
//     them sound as test oracles.
//   - An exact checker (CheckLinearizable) that searches for an explicit
//     linearization with memoized DFS. Exponential worst case; intended for
//     histories of up to ~20 operations, where it cross-validates the
//     interval checkers.
//
// Timestamps come from a shared logical clock, so "op A finished before op
// B started" is exact, not wall-clock-approximate.
package history

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind identifies an operation type.
type Kind int

// Operation kinds for the three object families.
const (
	KindReadMax Kind = iota + 1
	KindWriteMax
	KindCounterRead
	KindIncrement
	KindScan
	KindUpdate
	KindPropose
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindReadMax:
		return "ReadMax"
	case KindWriteMax:
		return "WriteMax"
	case KindCounterRead:
		return "CounterRead"
	case KindIncrement:
		return "Increment"
	case KindScan:
		return "Scan"
	case KindUpdate:
		return "Update"
	case KindPropose:
		return "Propose"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one completed operation instance. The JSON field names are part of
// the history-dump schema (see Dump); keep them stable.
type Op struct {
	Proc int   `json:"proc"`          // process id that issued the operation
	Kind Kind  `json:"kind"`          // operation type
	Arg  int64 `json:"arg,omitempty"` // WriteMax/Update/Propose argument, Increment/Add weight
	Ret  int64 `json:"ret,omitempty"` // ReadMax/CounterRead/Propose result (unused otherwise)

	// RetVec is the Scan result (unused otherwise).
	RetVec []int64 `json:"retvec,omitempty"`

	// Inv and Res are logical invocation/response timestamps: Inv < Res,
	// and op A precedes op B iff A.Res < B.Inv.
	Inv int64 `json:"inv"`
	Res int64 `json:"res"`
}

// Recorder collects a concurrent history. All methods are safe for
// concurrent use; the typical pattern is
//
//	inv := rec.Invoke()
//	ret := object.ReadMax(ctx)
//	rec.Record(history.Op{Proc: id, Kind: history.KindReadMax, Ret: ret}, inv)
type Recorder struct {
	clock atomic.Int64

	mu  sync.Mutex
	ops []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Invoke stamps and returns an invocation time. Call it immediately before
// issuing the operation being recorded.
func (r *Recorder) Invoke() int64 { return r.clock.Add(1) }

// Record stamps the response time and appends the completed operation.
func (r *Recorder) Record(op Op, inv int64) {
	op.Inv = inv
	op.Res = r.clock.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// PendingRes is the response timestamp RecordPending assigns: effectively
// "never responded".
const PendingRes = int64(1) << 62

// RecordPending appends an operation that was invoked but never completed
// (its issuer crashed mid-flight). Linearizability lets such an operation
// take effect or not, which is exactly what an infinite response time
// encodes for the interval checkers: its value is readable, but nothing is
// ever owed to it. (CheckLinearizable, by contrast, insists on placing
// every operation, so feed it complete histories only.)
func (r *Recorder) RecordPending(op Op, inv int64) {
	op.Inv = inv
	op.Res = PendingRes
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// Ops returns the recorded history, sorted by invocation time. It must be
// called after all recording goroutines have been joined.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	sort.Slice(out, func(i, j int) bool { return out[i].Inv < out[j].Inv })
	return out
}

// Len reports the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// ViolationError describes a linearizability violation found by a checker.
// It marshals to JSON as part of the violation-artifact schema (see Dump).
type ViolationError struct {
	Checker string `json:"checker"` // which checker found it
	Detail  string `json:"detail"`  // human-readable description
	Op      Op     `json:"op"`      // the offending operation
}

// Error implements error.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("history: %s: %s (op %s by p%d ret=%d inv=%d res=%d)",
		e.Checker, e.Detail, e.Op.Kind, e.Op.Proc, e.Op.Ret, e.Op.Inv, e.Op.Res)
}
