package history

import (
	"fmt"
	"sort"
)

// IncrementalSnapshot is the streaming CheckSnapshot. Construct with
// NewIncrementalSnapshot.
//
// It follows the same interval conditions as the batch checker (sequential
// single-writer updates, scanned values inside the
// [completed-before, started-before] window, mutually comparable views,
// real-time monotone views), with two deliberate divergences for live
// histories:
//
//   - CheckSnapshot rejects zero or duplicate per-segment update values as
//     precondition violations, because offline tests control their inputs.
//     A live workload may legitimately write anything, so the incremental
//     checker instead marks such values unresolvable and skips the checks
//     that would need them — never a false alarm, at the cost of reduced
//     coverage on degenerate value patterns.
//   - Scan resolution is deferred to Seal: a scan may return a value whose
//     update is invoked after the scan's own invocation, so the update is
//     only guaranteed admitted once the watermark passes the scan's
//     response.
type IncrementalSnapshot struct {
	relaxed  bool
	admitted int64
	lastInv  int64
	sealedTo int64

	segs map[int]*snapSeg

	// frontier is the pointwise max over resolved scans whose response
	// dropped below the seal sweep; open holds resolved scans still
	// overlapping it, appended in response order.
	frontier []int
	open     []resolvedScan

	// deferred holds admitted scans awaiting resolution at Seal, by Res.
	deferred *minHeap[Op]
}

// snapSeg is per-segment update state. Updates in one segment are
// sequential (enforced), so invs and ress are both ascending.
type snapSeg struct {
	lastRes int64
	count   int

	indexOf    map[int64]int // value -> 1-based update index; -1 = duplicate
	overflowed bool          // indexOf hit maxTrackedValues
	sawZero    bool          // some update wrote 0 (scan's 0 becomes ambiguous)

	invs, ress       []int64 // admitted update stamps, ascending
	invBase, resBase int     // counts pruned off the front
}

// resolvedScan is a sealed scan's index vector; -1 marks a component that
// could not be resolved (unknown values never cause or mask a violation).
type resolvedScan struct {
	inv, res int64
	vec      []int
}

const unknownIdx = -1

// NewIncrementalSnapshot returns an empty streaming snapshot checker.
// relaxed additionally treats values missing from the sampled sub-history
// as unresolvable instead of never-written violations — including a
// scanned 0, which an unobserved update may legitimately have written.
func NewIncrementalSnapshot(relaxed bool) *IncrementalSnapshot {
	return &IncrementalSnapshot{
		relaxed:  relaxed,
		segs:     make(map[int]*snapSeg),
		deferred: newMinHeap(opResLess),
	}
}

// Admit implements Incremental.
func (c *IncrementalSnapshot) Admit(op Op) *ViolationError {
	admitOrdered("snapshot", &c.lastInv, op)
	c.admitted++
	switch op.Kind {
	case KindUpdate:
		seg := c.segs[op.Proc]
		if seg == nil {
			seg = &snapSeg{indexOf: make(map[int64]int)}
			c.segs[op.Proc] = seg
		}
		if op.Inv < seg.lastRes {
			return &ViolationError{Checker: "snapshot", Detail: "single-writer updates overlap", Op: op}
		}
		seg.lastRes = op.Res
		seg.count++
		switch {
		case op.Arg == 0:
			seg.sawZero = true
		default:
			if _, dup := seg.indexOf[op.Arg]; dup {
				seg.indexOf[op.Arg] = unknownIdx
			} else if len(seg.indexOf) < maxTrackedValues {
				seg.indexOf[op.Arg] = seg.count
			} else {
				seg.overflowed = true
			}
		}
		seg.invs = append(seg.invs, op.Inv)
		seg.ress = append(seg.ress, op.Res)
	case KindScan:
		c.deferred.Push(op)
	}
	return nil
}

func (s *snapSeg) completedBefore(t int64) int {
	return s.resBase + sort.Search(len(s.ress), func(i int) bool { return s.ress[i] >= t })
}

func (s *snapSeg) startedBefore(t int64) int {
	return s.invBase + sort.Search(len(s.invs), func(i int) bool { return s.invs[i] >= t })
}

// prune retires update stamps below t. Callers pass a lower bound on every
// future query (min invocation over scans not yet sealed).
func (s *snapSeg) prune(t int64) {
	k := sort.Search(len(s.invs), func(i int) bool { return s.invs[i] >= t })
	if k > 0 {
		s.invBase += k
		s.invs = append(s.invs[:0:0], s.invs[k:]...)
	}
	k = sort.Search(len(s.ress), func(i int) bool { return s.ress[i] >= t })
	if k > 0 {
		s.resBase += k
		s.ress = append(s.ress[:0:0], s.ress[k:]...)
	}
}

// minPendingInv lower-bounds every future window query: scans still
// deferred plus anything yet to be admitted (Inv >= lastInv).
func (c *IncrementalSnapshot) minPendingInv() int64 {
	t := c.lastInv
	for _, op := range c.deferred.items {
		if op.Inv < t {
			t = op.Inv
		}
	}
	return t
}

// resolve maps a scan's value vector to update indices; unknownIdx marks
// components that cannot be pinned to a unique admitted update.
func (c *IncrementalSnapshot) resolve(s Op) ([]int, *ViolationError) {
	vec := make([]int, len(s.RetVec))
	for seg, v := range s.RetVec {
		info := c.segs[seg]
		idx := 0
		switch {
		case v == 0:
			// A scanned 0 is the initial value only if no update wrote 0.
			// In relaxed mode the observed history is a sub-history, so an
			// unobserved update may have written 0 — the component is never
			// resolvable; in exact mode only an admitted Update(0) makes it
			// ambiguous.
			if c.relaxed || (info != nil && info.sawZero) {
				idx = unknownIdx
			}
		case info == nil:
			if !c.relaxed {
				return nil, &ViolationError{Checker: "snapshot", Detail: "scan returned value for never-updated segment", Op: s}
			}
			idx = unknownIdx
		default:
			got, ok := info.indexOf[v]
			switch {
			case ok:
				idx = got // may itself be unknownIdx (duplicate value)
			case c.relaxed || info.overflowed:
				idx = unknownIdx
			default:
				return nil, &ViolationError{Checker: "snapshot", Detail: "scan returned a never-written segment value", Op: s}
			}
		}
		if idx != unknownIdx && info != nil {
			completed := info.completedBefore(s.Inv)
			started := info.startedBefore(s.Res)
			if idx < completed {
				return nil, &ViolationError{
					Checker: "snapshot",
					Detail:  fmt.Sprintf("segment %d: scan saw update #%d but #%d had completed", seg, idx, completed),
					Op:      s,
				}
			}
			if idx > started {
				return nil, &ViolationError{
					Checker: "snapshot",
					Detail:  fmt.Sprintf("segment %d: scan saw update #%d but only %d had started", seg, idx, started),
					Op:      s,
				}
			}
		}
		vec[seg] = idx
	}
	return vec, nil
}

// comparable reports whether two index vectors are ordered one way or the
// other, ignoring unknown components and length mismatches (ambiguous, so
// never a violation).
func vecsComparable(a, b []int) bool {
	if len(a) != len(b) {
		return true
	}
	le, ge := true, true
	for i := range a {
		if a[i] == unknownIdx || b[i] == unknownIdx {
			continue
		}
		if a[i] > b[i] {
			le = false
		}
		if a[i] < b[i] {
			ge = false
		}
	}
	return le || ge
}

// foldInto raises the frontier to the vector's known components.
func foldInto(frontier []int, vec []int) []int {
	for len(frontier) < len(vec) {
		frontier = append(frontier, 0)
	}
	for i, v := range vec {
		if v != unknownIdx && v > frontier[i] {
			frontier[i] = v
		}
	}
	return frontier
}

// Seal implements Incremental. Scans are resolved and checked in response
// order: by the time a scan's response drops below the watermark, every
// update it could have seen (invoked before its response) is admitted.
func (c *IncrementalSnapshot) Seal(upTo int64) *ViolationError {
	if upTo > c.sealedTo {
		c.sealedTo = upTo
	}
	for c.deferred.Len() > 0 && c.deferred.Peek().Res < upTo {
		s := c.deferred.Pop()
		vec, verr := c.resolve(s)
		if verr != nil {
			return verr
		}

		// Retire open scans that ended before this one began: their views
		// become the real-time floor.
		keep := c.open[:0]
		for _, o := range c.open {
			if o.res < s.Inv {
				c.frontier = foldInto(c.frontier, o.vec)
			} else {
				keep = append(keep, o)
			}
		}
		c.open = keep

		// Real-time condition: this view must dominate the floor.
		if len(c.frontier) == len(vec) {
			for i, f := range c.frontier {
				if vec[i] != unknownIdx && vec[i] < f {
					return &ViolationError{
						Checker: "snapshot",
						Detail:  fmt.Sprintf("scan view %v older than a preceding scan's %v", vec, c.frontier),
						Op:      s,
					}
				}
			}
		}

		// Chain condition: overlapping views must still be comparable.
		for _, o := range c.open {
			if !vecsComparable(o.vec, vec) {
				return &ViolationError{
					Checker: "snapshot",
					Detail:  fmt.Sprintf("incomparable scan views %v and %v", o.vec, vec),
					Op:      s,
				}
			}
		}
		c.open = append(c.open, resolvedScan{inv: s.Inv, res: s.Res, vec: vec})
	}

	// Bounded memory: drop update stamps no future scan can query.
	for _, seg := range c.segs {
		if len(seg.invs) > 1024 || len(seg.ress) > 1024 {
			seg.prune(c.minPendingInv())
		}
	}
	return nil
}

// Summary implements Incremental.
func (c *IncrementalSnapshot) Summary() PrefixSummary {
	frontier := append([]int(nil), c.frontier...)
	return PrefixSummary{
		Checker:      "snapshot",
		Admitted:     c.admitted,
		SealedTo:     c.sealedTo,
		Relaxed:      c.relaxed,
		ScanFrontier: frontier,
	}
}
