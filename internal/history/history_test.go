package history

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestRecorderTimestamps(t *testing.T) {
	r := NewRecorder()
	inv1 := r.Invoke()
	r.Record(Op{Proc: 0, Kind: KindWriteMax, Arg: 5}, inv1)
	inv2 := r.Invoke()
	r.Record(Op{Proc: 1, Kind: KindReadMax, Ret: 5}, inv2)

	ops := r.Ops()
	if len(ops) != 2 || r.Len() != 2 {
		t.Fatalf("recorded %d ops", len(ops))
	}
	if ops[0].Inv >= ops[0].Res {
		t.Fatal("Inv >= Res")
	}
	if ops[0].Res >= ops[1].Inv {
		t.Fatal("sequential ops overlap")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				inv := r.Invoke()
				r.Record(Op{Proc: p, Kind: KindIncrement}, inv)
			}
		}(p)
	}
	wg.Wait()
	ops := r.Ops()
	if len(ops) != 8*500 {
		t.Fatalf("recorded %d ops", len(ops))
	}
	for i, op := range ops {
		if op.Inv >= op.Res {
			t.Fatalf("op %d: Inv %d >= Res %d", i, op.Inv, op.Res)
		}
		if i > 0 && ops[i-1].Inv > op.Inv {
			t.Fatal("Ops() not sorted by Inv")
		}
	}
}

// --- max register checker ---

func TestMaxRegisterCheckerAcceptsValid(t *testing.T) {
	histories := map[string][]Op{
		"empty": nil,
		"sequential": {
			{Kind: KindWriteMax, Arg: 3, Inv: 1, Res: 2},
			{Kind: KindReadMax, Ret: 3, Inv: 3, Res: 4},
			{Kind: KindWriteMax, Arg: 1, Inv: 5, Res: 6},
			{Kind: KindReadMax, Ret: 3, Inv: 7, Res: 8},
		},
		"overlapping write observed early": {
			{Kind: KindWriteMax, Arg: 9, Inv: 1, Res: 10},
			{Kind: KindReadMax, Ret: 9, Inv: 2, Res: 3},
		},
		"overlapping write not yet observed": {
			{Kind: KindWriteMax, Arg: 9, Inv: 1, Res: 10},
			{Kind: KindReadMax, Ret: 0, Inv: 2, Res: 3},
		},
		"initial zero": {
			{Kind: KindReadMax, Ret: 0, Inv: 1, Res: 2},
		},
	}
	for name, h := range histories {
		if err := CheckMaxRegister(h); err != nil {
			t.Errorf("%s: unexpected violation: %v", name, err)
		}
	}
}

func TestMaxRegisterCheckerRejectsViolations(t *testing.T) {
	histories := map[string][]Op{
		"never written value": {
			{Kind: KindWriteMax, Arg: 3, Inv: 1, Res: 2},
			{Kind: KindReadMax, Ret: 4, Inv: 3, Res: 4},
		},
		"value from the future": {
			{Kind: KindReadMax, Ret: 7, Inv: 1, Res: 2},
			{Kind: KindWriteMax, Arg: 7, Inv: 3, Res: 4},
		},
		"missed completed write": {
			{Kind: KindWriteMax, Arg: 5, Inv: 1, Res: 2},
			{Kind: KindReadMax, Ret: 0, Inv: 3, Res: 4},
		},
		"non-monotone reads": {
			{Kind: KindWriteMax, Arg: 5, Inv: 1, Res: 2},
			{Kind: KindWriteMax, Arg: 8, Inv: 3, Res: 4},
			{Kind: KindReadMax, Ret: 8, Inv: 5, Res: 6},
			{Kind: KindReadMax, Ret: 5, Inv: 7, Res: 8},
		},
	}
	for name, h := range histories {
		err := CheckMaxRegister(h)
		if err == nil {
			t.Errorf("%s: violation not detected", name)
			continue
		}
		var v *ViolationError
		if !errors.As(err, &v) {
			t.Errorf("%s: wrong error type %T", name, err)
		}
		if v.Error() == "" {
			t.Errorf("%s: empty violation message", name)
		}
	}
}

// --- counter checker ---

func TestCounterCheckerAcceptsValid(t *testing.T) {
	histories := map[string][]Op{
		"sequential": {
			{Kind: KindIncrement, Inv: 1, Res: 2},
			{Kind: KindCounterRead, Ret: 1, Inv: 3, Res: 4},
			{Kind: KindIncrement, Inv: 5, Res: 6},
			{Kind: KindCounterRead, Ret: 2, Inv: 7, Res: 8},
		},
		"in-flight increment may or may not be counted (counted)": {
			{Kind: KindIncrement, Inv: 1, Res: 10},
			{Kind: KindCounterRead, Ret: 1, Inv: 2, Res: 3},
		},
		"in-flight increment may or may not be counted (not counted)": {
			{Kind: KindIncrement, Inv: 1, Res: 10},
			{Kind: KindCounterRead, Ret: 0, Inv: 2, Res: 3},
		},
	}
	for name, h := range histories {
		if err := CheckCounter(h); err != nil {
			t.Errorf("%s: unexpected violation: %v", name, err)
		}
	}
}

func TestCounterCheckerRejectsViolations(t *testing.T) {
	histories := map[string][]Op{
		"overcount": {
			{Kind: KindIncrement, Inv: 1, Res: 2},
			{Kind: KindCounterRead, Ret: 2, Inv: 3, Res: 4},
		},
		"undercount": {
			{Kind: KindIncrement, Inv: 1, Res: 2},
			{Kind: KindIncrement, Inv: 3, Res: 4},
			{Kind: KindCounterRead, Ret: 1, Inv: 5, Res: 6},
		},
		"non-monotone reads": {
			{Kind: KindIncrement, Inv: 1, Res: 2},
			{Kind: KindCounterRead, Ret: 1, Inv: 3, Res: 4},
			{Kind: KindCounterRead, Ret: 0, Inv: 5, Res: 6},
		},
	}
	for name, h := range histories {
		if CheckCounter(h) == nil {
			t.Errorf("%s: violation not detected", name)
		}
	}
}

// --- snapshot checker ---

func TestSnapshotCheckerAcceptsValid(t *testing.T) {
	h := []Op{
		{Kind: KindUpdate, Proc: 0, Arg: 1, Inv: 1, Res: 2},
		{Kind: KindUpdate, Proc: 1, Arg: 7, Inv: 3, Res: 4},
		{Kind: KindScan, RetVec: []int64{1, 7}, Inv: 5, Res: 6},
		{Kind: KindUpdate, Proc: 0, Arg: 2, Inv: 7, Res: 12},
		// Scan overlapping the second update on segment 0: either view ok.
		{Kind: KindScan, RetVec: []int64{2, 7}, Inv: 8, Res: 9},
	}
	if err := CheckSnapshot(h); err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestSnapshotCheckerRejectsViolations(t *testing.T) {
	histories := map[string][]Op{
		"stale segment": {
			{Kind: KindUpdate, Proc: 0, Arg: 1, Inv: 1, Res: 2},
			{Kind: KindScan, RetVec: []int64{0}, Inv: 3, Res: 4},
		},
		"future segment": {
			{Kind: KindScan, RetVec: []int64{5}, Inv: 1, Res: 2},
			{Kind: KindUpdate, Proc: 0, Arg: 5, Inv: 3, Res: 4},
		},
		"never written": {
			{Kind: KindUpdate, Proc: 0, Arg: 5, Inv: 1, Res: 2},
			{Kind: KindScan, RetVec: []int64{6}, Inv: 3, Res: 4},
		},
		"incomparable overlapping scans": {
			{Kind: KindUpdate, Proc: 0, Arg: 1, Inv: 1, Res: 20},
			{Kind: KindUpdate, Proc: 1, Arg: 2, Inv: 2, Res: 19},
			{Kind: KindScan, RetVec: []int64{1, 0}, Inv: 3, Res: 4},
			{Kind: KindScan, RetVec: []int64{0, 2}, Inv: 5, Res: 6},
		},
		"regressing sequential scans": {
			{Kind: KindUpdate, Proc: 0, Arg: 1, Inv: 1, Res: 10},
			{Kind: KindScan, RetVec: []int64{1}, Inv: 2, Res: 3},
			{Kind: KindScan, RetVec: []int64{0}, Inv: 4, Res: 5},
		},
		"overlapping same-writer updates": {
			{Kind: KindUpdate, Proc: 0, Arg: 1, Inv: 1, Res: 5},
			{Kind: KindUpdate, Proc: 0, Arg: 2, Inv: 2, Res: 6},
		},
		"duplicate value precondition": {
			{Kind: KindUpdate, Proc: 0, Arg: 1, Inv: 1, Res: 2},
			{Kind: KindUpdate, Proc: 0, Arg: 1, Inv: 3, Res: 4},
		},
		"zero value precondition": {
			{Kind: KindUpdate, Proc: 0, Arg: 0, Inv: 1, Res: 2},
		},
	}
	for name, h := range histories {
		if CheckSnapshot(h) == nil {
			t.Errorf("%s: violation not detected", name)
		}
	}
}

// --- exact checker ---

func TestExactCheckerMaxRegister(t *testing.T) {
	good := []Op{
		{Kind: KindWriteMax, Arg: 9, Inv: 1, Res: 10},
		{Kind: KindReadMax, Ret: 9, Inv: 2, Res: 3},
		{Kind: KindReadMax, Ret: 9, Inv: 4, Res: 5},
	}
	if err := CheckLinearizable(good, MaxRegisterSpec{}); err != nil {
		t.Fatalf("good history rejected: %v", err)
	}
	bad := []Op{
		{Kind: KindWriteMax, Arg: 9, Inv: 1, Res: 10},
		{Kind: KindReadMax, Ret: 9, Inv: 2, Res: 3},
		{Kind: KindReadMax, Ret: 0, Inv: 4, Res: 5}, // regression
	}
	if err := CheckLinearizable(bad, MaxRegisterSpec{}); err == nil {
		t.Fatal("bad history accepted")
	}
}

func TestExactCheckerCounter(t *testing.T) {
	good := []Op{
		{Kind: KindIncrement, Inv: 1, Res: 6},
		{Kind: KindIncrement, Inv: 2, Res: 5},
		{Kind: KindCounterRead, Ret: 2, Inv: 3, Res: 4},
	}
	if err := CheckLinearizable(good, CounterSpec{}); err != nil {
		t.Fatalf("good history rejected: %v", err)
	}
	bad := []Op{
		{Kind: KindIncrement, Inv: 1, Res: 2},
		{Kind: KindCounterRead, Ret: 0, Inv: 3, Res: 4},
	}
	if err := CheckLinearizable(bad, CounterSpec{}); err == nil {
		t.Fatal("bad history accepted")
	}
}

func TestExactCheckerSnapshot(t *testing.T) {
	good := []Op{
		{Kind: KindUpdate, Proc: 0, Arg: 5, Inv: 1, Res: 4},
		{Kind: KindScan, RetVec: []int64{5, 0}, Inv: 2, Res: 3},
	}
	if err := CheckLinearizable(good, SnapshotSpec{N: 2}); err != nil {
		t.Fatalf("good history rejected: %v", err)
	}
	bad := []Op{
		{Kind: KindUpdate, Proc: 0, Arg: 5, Inv: 1, Res: 2},
		{Kind: KindScan, RetVec: []int64{0, 0}, Inv: 3, Res: 4},
	}
	if err := CheckLinearizable(bad, SnapshotSpec{N: 2}); err == nil {
		t.Fatal("bad history accepted")
	}
}

func TestExactCheckerTooLarge(t *testing.T) {
	ops := make([]Op, maxExactOps+1)
	for i := range ops {
		ops[i] = Op{Kind: KindIncrement, Inv: int64(2*i + 1), Res: int64(2*i + 2)}
	}
	if err := CheckLinearizable(ops, CounterSpec{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestExactCheckerEmpty(t *testing.T) {
	if err := CheckLinearizable(nil, CounterSpec{}); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalCheckerSoundness cross-validates the fast max register
// checker against the exact one on random small histories: whenever the
// exact checker finds a linearization, the interval checker must accept.
func TestIntervalCheckerSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	agree, exactOK := 0, 0
	for trial := 0; trial < 400; trial++ {
		ops := randomMaxRegHistory(rng)
		exactErr := CheckLinearizable(ops, MaxRegisterSpec{})
		fastErr := CheckMaxRegister(ops)
		if exactErr == nil {
			exactOK++
			if fastErr != nil {
				t.Fatalf("trial %d: exact accepts but interval checker rejects: %v\nops: %+v", trial, fastErr, ops)
			}
		}
		if (exactErr == nil) == (fastErr == nil) {
			agree++
		}
	}
	if exactOK == 0 {
		t.Fatal("random generator produced no linearizable histories; test is vacuous")
	}
	t.Logf("exact-OK=%d/400, checkers agree on %d/400", exactOK, agree)
}

// TestCounterCheckerSoundness does the same for counters.
func TestCounterCheckerSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	exactOK := 0
	for trial := 0; trial < 400; trial++ {
		ops := randomCounterHistory(rng)
		exactErr := CheckLinearizable(ops, CounterSpec{})
		fastErr := CheckCounter(ops)
		if exactErr == nil {
			exactOK++
			if fastErr != nil {
				t.Fatalf("trial %d: exact accepts but interval checker rejects: %v\nops: %+v", trial, fastErr, ops)
			}
		}
	}
	if exactOK == 0 {
		t.Fatal("random generator produced no linearizable histories; test is vacuous")
	}
}

// randomIntervals returns count intervals with globally distinct endpoints
// (matching what a real Recorder produces — its logical clock never ties).
func randomIntervals(rng *rand.Rand, count int) [][2]int64 {
	times := rng.Perm(4 * count)
	points := times[:2*count]
	out := make([][2]int64, count)
	for i := range out {
		a, b := int64(points[2*i]+1), int64(points[2*i+1]+1)
		if a > b {
			a, b = b, a
		}
		out[i] = [2]int64{a, b}
	}
	return out
}

func randomMaxRegHistory(rng *rand.Rand) []Op {
	count := 2 + rng.Intn(6)
	ops := make([]Op, 0, count)
	for _, iv := range randomIntervals(rng, count) {
		if rng.Intn(2) == 0 {
			ops = append(ops, Op{Kind: KindWriteMax, Arg: int64(rng.Intn(4)), Inv: iv[0], Res: iv[1]})
		} else {
			ops = append(ops, Op{Kind: KindReadMax, Ret: int64(rng.Intn(4)), Inv: iv[0], Res: iv[1]})
		}
	}
	return ops
}

func randomCounterHistory(rng *rand.Rand) []Op {
	count := 2 + rng.Intn(6)
	ops := make([]Op, 0, count)
	for _, iv := range randomIntervals(rng, count) {
		if rng.Intn(2) == 0 {
			ops = append(ops, Op{Kind: KindIncrement, Inv: iv[0], Res: iv[1]})
		} else {
			ops = append(ops, Op{Kind: KindCounterRead, Ret: int64(rng.Intn(4)), Inv: iv[0], Res: iv[1]})
		}
	}
	return ops
}

func TestRecordPending(t *testing.T) {
	r := NewRecorder()

	// A completed small write, then a pending large write (crashed), then
	// two reads that disagree about whether the pending write took effect
	// — both must be accepted.
	inv := r.Invoke()
	r.Record(Op{Proc: 0, Kind: KindWriteMax, Arg: 2}, inv)
	r.RecordPending(Op{Proc: 1, Kind: KindWriteMax, Arg: 9}, r.Invoke())

	inv = r.Invoke()
	r.Record(Op{Proc: 2, Kind: KindReadMax, Ret: 2}, inv)
	if err := CheckMaxRegister(r.Ops()); err != nil {
		t.Fatalf("pending write treated as owed: %v", err)
	}

	inv = r.Invoke()
	r.Record(Op{Proc: 2, Kind: KindReadMax, Ret: 9}, inv)
	if err := CheckMaxRegister(r.Ops()); err != nil {
		t.Fatalf("pending write's value rejected: %v", err)
	}

	// But the monotone-read rule still applies: having observed 9, a later
	// read cannot fall back to 2.
	inv = r.Invoke()
	r.Record(Op{Proc: 2, Kind: KindReadMax, Ret: 2}, inv)
	if err := CheckMaxRegister(r.Ops()); err == nil {
		t.Fatal("regressing read accepted")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindReadMax, KindWriteMax, KindCounterRead, KindIncrement, KindScan, KindUpdate, Kind(0)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty String for %d", int(k))
		}
	}
}

func TestSnapshotSpecInitial(t *testing.T) {
	s := SnapshotSpec{N: 3}
	if got := s.Initial(); got != "0,0,0" {
		t.Fatalf("Initial = %q", got)
	}
	if !strings.Contains(SnapshotSpec{N: 1}.Initial(), "0") {
		t.Fatal("single-segment initial broken")
	}
}
