package b1tree

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// validate checks structural invariants shared by every tree this package
// builds: full binary shape, consistent parent links, dense node indices,
// correct depths, and a bijection between Leaves and leaf nodes.
func validate(t *testing.T, tr *Tree, wantLeaves int) {
	t.Helper()

	if tr.Root == nil {
		t.Fatal("nil root")
	}
	if tr.Root.Parent != nil {
		t.Fatal("root has a parent")
	}
	if len(tr.Leaves) != wantLeaves {
		t.Fatalf("len(Leaves) = %d, want %d", len(tr.Leaves), wantLeaves)
	}

	seenLeaves := 0
	for k, n := range tr.Nodes {
		if n.Index != k {
			t.Fatalf("Nodes[%d].Index = %d", k, n.Index)
		}
		switch {
		case n.IsLeaf():
			if n.Left != nil || n.Right != nil {
				t.Fatalf("leaf %d has children", n.Leaf)
			}
			if tr.Leaves[n.Leaf] != n {
				t.Fatalf("Leaves[%d] does not point back at leaf node", n.Leaf)
			}
			seenLeaves++
		default:
			if n.Left == nil || n.Right == nil {
				t.Fatalf("internal node %d is not full", n.Index)
			}
			if n.Left.Parent != n || n.Right.Parent != n {
				t.Fatalf("child of node %d has wrong parent", n.Index)
			}
			if n.Left.Depth != n.Depth+1 || n.Right.Depth != n.Depth+1 {
				t.Fatalf("child depth of node %d inconsistent", n.Index)
			}
		}
	}
	if seenLeaves != wantLeaves {
		t.Fatalf("found %d leaf nodes, want %d", seenLeaves, wantLeaves)
	}
	// A full binary tree with L leaves has exactly 2L-1 nodes.
	if want := 2*wantLeaves - 1; len(tr.Nodes) != want {
		t.Fatalf("node count = %d, want %d", len(tr.Nodes), want)
	}
}

func TestCompleteShape(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100} {
		tr, err := NewComplete(n)
		if err != nil {
			t.Fatalf("NewComplete(%d): %v", n, err)
		}
		validate(t, tr, n)

		wantDepth := bits.Len(uint(n - 1)) // ceil(log2 n)
		if n == 1 {
			wantDepth = 0
		}
		for i := 0; i < n; i++ {
			d := tr.LeafDepth(i)
			if d > wantDepth || d < wantDepth-1 {
				t.Fatalf("n=%d leaf %d depth %d, want %d or %d-1", n, i, d, wantDepth, wantDepth)
			}
		}
	}
}

func TestCompleteRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := NewComplete(n); err == nil {
			t.Fatalf("NewComplete(%d) succeeded", n)
		}
		if _, err := NewB1(n); err == nil {
			t.Fatalf("NewB1(%d) succeeded", n)
		}
	}
}

func TestB1Shape(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16, 17, 64, 100, 1000} {
		tr, err := NewB1(n)
		if err != nil {
			t.Fatalf("NewB1(%d): %v", n, err)
		}
		validate(t, tr, n)
	}
}

func TestB1DepthBound(t *testing.T) {
	// The defining property of the B1 tree: leaf i at depth O(log i),
	// concretely <= B1DepthBound(i) for every leaf, at every tree size.
	for _, n := range []int{1, 2, 3, 5, 16, 17, 100, 1024, 4097} {
		tr, err := NewB1(n)
		if err != nil {
			t.Fatalf("NewB1(%d): %v", n, err)
		}
		for i := 0; i < n; i++ {
			if d, bound := tr.LeafDepth(i), B1DepthBound(i); d > bound {
				t.Fatalf("n=%d: leaf %d at depth %d > bound %d", n, i, d, bound)
			}
		}
	}
}

func TestB1EarlyLeavesAreShallow(t *testing.T) {
	// Small values must be cheap regardless of how large the tree is:
	// that is the whole point of using a B1 tree in Algorithm A.
	tr, err := NewB1(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.LeafDepth(0); d > 1 {
		t.Fatalf("leaf 0 depth %d, want <= 1", d)
	}
	if d := tr.LeafDepth(1); d > 2 {
		t.Fatalf("leaf 1 depth %d, want <= 2", d)
	}
	if d := tr.LeafDepth(7); d > B1DepthBound(7) {
		t.Fatalf("leaf 7 depth %d > %d", d, B1DepthBound(7))
	}
	// And the deepest leaves are still only logarithmic.
	if d := tr.LeafDepth(1<<16 - 1); d > 2*17 {
		t.Fatalf("last leaf depth %d, want O(log n)", d)
	}
}

func TestPathToRoot(t *testing.T) {
	tr, err := NewB1(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		path := tr.PathToRoot(i)
		if path[0] != tr.Leaves[i] {
			t.Fatalf("leaf %d: path does not start at leaf", i)
		}
		if path[len(path)-1] != tr.Root {
			t.Fatalf("leaf %d: path does not end at root", i)
		}
		if len(path) != tr.LeafDepth(i)+1 {
			t.Fatalf("leaf %d: path length %d, depth %d", i, len(path), tr.LeafDepth(i))
		}
		for j := 0; j+1 < len(path); j++ {
			if path[j].Parent != path[j+1] {
				t.Fatalf("leaf %d: path link broken at %d", i, j)
			}
		}
	}
}

func TestJoin(t *testing.T) {
	left, err := NewB1(5)
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewComplete(4)
	if err != nil {
		t.Fatal(err)
	}
	tr := Join(left, right)
	validate(t, tr, 9)

	// Left leaves come first and keep their order; right leaves follow.
	for i := 0; i < 9; i++ {
		if tr.Leaves[i].Leaf != i {
			t.Fatalf("leaf %d has Leaf=%d after Join", i, tr.Leaves[i].Leaf)
		}
	}
	if tr.Root.Left != left.Root || tr.Root.Right != right.Root {
		t.Fatal("Join root children wrong")
	}
	// Depths shifted by one.
	if tr.Leaves[0].Depth != left.Leaves[0].Depth {
		// After Join, finish() recomputed depths relative to the new root,
		// so the old subtree depth plus one edge.
		t.Logf("left leaf depth now %d", tr.Leaves[0].Depth)
	}
	if tr.Root.Depth != 0 {
		t.Fatalf("joined root depth = %d", tr.Root.Depth)
	}
}

func TestB1DepthBoundProperty(t *testing.T) {
	tr, err := NewB1(2048)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		i := int(raw) % 2048
		return tr.LeafDepth(i) <= B1DepthBound(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteLeafOrderIsLeftToRight(t *testing.T) {
	tr, err := NewComplete(6)
	if err != nil {
		t.Fatal(err)
	}
	// In-order traversal must visit leaves 0..5 in order.
	var order []int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			order = append(order, n.Leaf)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tr.Root)
	for i, leaf := range order {
		if leaf != i {
			t.Fatalf("in-order leaf sequence %v", order)
		}
	}
}
