// Package b1tree builds the binary tree shapes used by Algorithm A of
// Hendler & Khait (PODC 2014, Section 5):
//
//   - B1 trees (Bentley & Yao, "An almost optimal algorithm for unbounded
//     searching", 1975): an unbalanced binary tree over leaves 0..n-1 in
//     which leaf i sits at depth O(log i). Algorithm A uses a B1 tree as its
//     left subtree so that WriteMax(v) with v < N costs O(log v) steps.
//   - Complete (balanced) binary trees, used as Algorithm A's right subtree
//     so that WriteMax(v) with v >= N costs O(log N) steps.
//
// The package deals only in tree *shape*: nodes carry parent/child links and
// stable indices, and callers attach whatever per-node payload they need
// (internal/core attaches one shared register per node).
package b1tree

import (
	"fmt"
	"math/bits"
)

// Node is one vertex of a tree. Leaf nodes have Leaf >= 0 and nil children;
// internal nodes have Leaf == -1 and both children set (all trees built by
// this package are full binary trees).
type Node struct {
	Parent *Node
	Left   *Node
	Right  *Node

	// Leaf is the leaf's index in [0, n), or -1 for internal nodes.
	Leaf int

	// Index is the node's position in Tree.Nodes: a dense identifier
	// callers use to attach payloads (e.g. one register per node).
	Index int

	// Depth is the number of edges from the root (root has Depth 0).
	Depth int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Leaf >= 0 }

// Tree is a full binary tree with parent links.
type Tree struct {
	Root *Node

	// Leaves[i] is the leaf with Leaf == i.
	Leaves []*Node

	// Nodes lists every node; Nodes[k].Index == k.
	Nodes []*Node
}

// NewComplete builds a balanced binary tree with n >= 1 leaves. Every leaf
// is at depth ceil(log2 n) or ceil(log2 n) - 1.
func NewComplete(n int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("b1tree: complete tree needs n >= 1 leaves, got %d", n)
	}

	t := &Tree{Leaves: make([]*Node, n)}
	t.Root = t.buildComplete(0, n)
	t.finish()
	return t, nil
}

// NewB1 builds a Bentley-Yao B1 tree with n >= 1 leaves: leaf i is at depth
// O(log i) (leaf 0 and leaf 1 at O(1) depth). Concretely, leaves are grouped
// into blocks {0}, {1}, [2,4), [4,8), ... and hung off a right-leaning
// spine, each block as a balanced subtree; leaf i in block b(i) = O(log i)
// sits at spine depth b(i) plus balanced-subtree depth O(log i), for a total
// of at most 2*floor(log2 i) + 2 edges (verified by TestB1DepthBound).
func NewB1(n int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("b1tree: B1 tree needs n >= 1 leaves, got %d", n)
	}

	t := &Tree{Leaves: make([]*Node, n)}

	// Block k covers leaves [start_k, end_k):
	//   block 0 = {0}, block 1 = {1}, block k = [2^(k-1), 2^k) for k >= 2,
	// truncated at n.
	type span struct{ start, end int }
	var blocks []span
	for start := 0; start < n; {
		var end int
		switch start {
		case 0:
			end = 1
		case 1:
			end = 2
		default:
			end = start * 2
		}
		if end > n {
			end = n
		}
		blocks = append(blocks, span{start: start, end: end})
		start = end
	}

	if len(blocks) == 1 {
		t.Root = t.buildComplete(blocks[0].start, blocks[0].end)
		t.finish()
		return t, nil
	}

	// Right-leaning spine: spine node k has the balanced tree over block k
	// as its left child; the last spine node takes the final block as its
	// right child.
	last := len(blocks) - 1
	spine := make([]*Node, last)
	for k := range spine {
		spine[k] = &Node{Leaf: -1}
	}
	for k := 0; k < last; k++ {
		left := t.buildComplete(blocks[k].start, blocks[k].end)
		spine[k].Left = left
		left.Parent = spine[k]

		var right *Node
		if k+1 < last {
			right = spine[k+1]
		} else {
			right = t.buildComplete(blocks[last].start, blocks[last].end)
		}
		spine[k].Right = right
		right.Parent = spine[k]
	}
	t.Root = spine[0]
	t.finish()
	return t, nil
}

// Join combines two trees under a fresh root (left becomes the root's left
// child). The input trees are absorbed: their nodes are re-indexed into the
// combined tree, and the combined tree's leaf i is left's leaf i for
// i < len(left.Leaves), then right's leaves.
func Join(left, right *Tree) *Tree {
	root := &Node{Leaf: -1, Left: left.Root, Right: right.Root}
	left.Root.Parent = root
	right.Root.Parent = root

	t := &Tree{
		Root:   root,
		Leaves: make([]*Node, 0, len(left.Leaves)+len(right.Leaves)),
	}
	t.Leaves = append(t.Leaves, left.Leaves...)
	t.Leaves = append(t.Leaves, right.Leaves...)
	t.finish()

	// Leaf indices were assigned within each subtree; rewrite them to be
	// dense in the combined tree.
	for i, leaf := range t.Leaves {
		leaf.Leaf = i
	}
	return t
}

// LeafDepth returns the depth (edges from root) of leaf i.
func (t *Tree) LeafDepth(i int) int { return t.Leaves[i].Depth }

// PathToRoot returns the nodes from leaf i to the root, inclusive.
func (t *Tree) PathToRoot(i int) []*Node {
	var path []*Node
	for n := t.Leaves[i]; n != nil; n = n.Parent {
		path = append(path, n)
	}
	return path
}

// buildComplete builds a balanced subtree over leaves [start, end) and
// registers them in t.Leaves.
func (t *Tree) buildComplete(start, end int) *Node {
	if end-start == 1 {
		leaf := &Node{Leaf: start}
		t.Leaves[start] = leaf
		return leaf
	}
	mid := start + (end-start+1)/2
	n := &Node{Leaf: -1}
	n.Left = t.buildComplete(start, mid)
	n.Right = t.buildComplete(mid, end)
	n.Left.Parent = n
	n.Right.Parent = n
	return n
}

// finish assigns Index and Depth to every node via a preorder walk.
func (t *Tree) finish() {
	t.Nodes = t.Nodes[:0]
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		n.Index = len(t.Nodes)
		n.Depth = depth
		t.Nodes = append(t.Nodes, n)
		if n.Left != nil {
			walk(n.Left, depth+1)
		}
		if n.Right != nil {
			walk(n.Right, depth+1)
		}
	}
	walk(t.Root, 0)
}

// B1DepthBound returns the proven upper bound on the depth of leaf i in a
// B1 tree: 2*floor(log2 i) + 2 for i >= 1, and 1 for i == 0. Tests assert
// NewB1 respects it for every leaf.
func B1DepthBound(i int) int {
	if i == 0 {
		return 1
	}
	return 2 * bits.Len(uint(i)) // == 2*(floor(log2 i)+1) = 2*floor(log2 i)+2
}
