package obs

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/history"
)

// HistoryTrace converts a flight-recorder history dump into a Chrome
// trace file: one process track per recording process with one slice per
// operation spanning [invocation, response], plus a violation marker when
// the dump is a repro artifact.
//
// Dump timestamps are hybrid-clock nanoseconds (strictly monotone,
// wall-clock approximate); Chrome traces use microseconds, so stamps are
// rebased to the window's first invocation and divided by 1e3. Durations
// are clamped to at least 1µs so short operations stay visible. The
// output opens directly in https://ui.perfetto.dev; unlike ChromeTrace
// (simulated event logs, one event per execution position), this renders
// real wall-clock concurrency.
func HistoryTrace(d *history.Dump) *TraceFile {
	tf := &TraceFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"source":       "tradeoffs flight recorder window",
			"schema":       d.Schema,
			"object":       d.Name,
			"family":       d.Family,
			"sample_every": d.SampleEvery,
			"dropped":      d.Dropped,
			"ops":          len(d.Ops),
		},
	}

	base := int64(0)
	maxProc := -1
	for _, op := range d.Ops {
		if base == 0 || op.Inv < base {
			base = op.Inv
		}
		if op.Proc > maxProc {
			maxProc = op.Proc
		}
	}
	toUS := func(t int64) int64 { return (t - base) / 1e3 }

	for p := 0; p <= maxProc; p++ {
		tf.TraceEvents = append(tf.TraceEvents,
			TraceEvent{Name: "process_name", Ph: "M", Pid: p, Tid: p,
				Args: map[string]any{"name": fmt.Sprintf("p%d", p)}},
			TraceEvent{Name: "thread_name", Ph: "M", Pid: p, Tid: p,
				Args: map[string]any{"name": d.Name + " operations"}},
		)
	}

	for _, op := range d.Ops {
		args := map[string]any{
			"inv": op.Inv,
			"res": op.Res,
		}
		name := op.Kind.String()
		switch op.Kind {
		case history.KindWriteMax, history.KindUpdate:
			args["arg"] = op.Arg
			name = fmt.Sprintf("%s(%d)", op.Kind, op.Arg)
		case history.KindPropose:
			args["arg"] = op.Arg
			args["ret"] = op.Ret
			name = fmt.Sprintf("%s(%d)=%d", op.Kind, op.Arg, op.Ret)
		case history.KindReadMax, history.KindCounterRead:
			args["ret"] = op.Ret
			name = fmt.Sprintf("%s=%d", op.Kind, op.Ret)
		case history.KindScan:
			args["retvec"] = op.RetVec
		case history.KindIncrement:
			if op.Arg > 0 {
				args["delta"] = op.Arg
				name = fmt.Sprintf("Add(%d)", op.Arg)
			}
		}
		dur := toUS(op.Res) - toUS(op.Inv)
		if dur < 1 {
			dur = 1
		}
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: name,
			Ph:   "X",
			Ts:   toUS(op.Inv),
			Dur:  dur,
			Pid:  op.Proc,
			Tid:  op.Proc,
			Args: args,
		})
	}

	if v := d.Violation; v != nil {
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: fmt.Sprintf("VIOLATION: %s", v.Detail),
			Ph:   "I",
			Ts:   toUS(v.Op.Res),
			Pid:  v.Op.Proc,
			Tid:  v.Op.Proc,
			Args: map[string]any{
				"checker": v.Checker,
				"detail":  v.Detail,
				"op":      v.Op.Kind.String(),
			},
		})
		tf.OtherData["violation"] = v.Detail
	}
	return tf
}
