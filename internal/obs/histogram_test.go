package obs

import (
	"math"
	"testing"
)

func TestBucketBound(t *testing.T) {
	cases := []struct {
		i    int
		want int64
	}{
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 7},
		{10, 1023},
		{62, 1<<62 - 1},
		{63, math.MaxInt64},
		{64, math.MaxInt64},
		{100, math.MaxInt64},
	}
	for _, c := range cases {
		if got := BucketBound(c.i); got != c.want {
			t.Errorf("BucketBound(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Every positive observation must satisfy BucketBound(i-1) < v <=
// BucketBound(i) for its bucket i — the invariant the cumulative `le`
// rendering in obs/expo depends on.
func TestBucketIndexConsistentWithBounds(t *testing.T) {
	for _, v := range []int64{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1 << 20, 1<<62 - 1, 1 << 62, math.MaxInt64} {
		i := bucketIndex(v)
		if v > BucketBound(i) {
			t.Errorf("v=%d lands in bucket %d with bound %d (< v)", v, i, BucketBound(i))
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Errorf("v=%d lands in bucket %d but already fits bucket %d (bound %d)", v, i, i-1, BucketBound(i-1))
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 4, 1024, -5} {
		h.Observe(v)
	}
	var s HistogramSnapshot
	h.snapshotInto(&s)

	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	// -5 is clamped to 0 before summing.
	if want := int64(0 + 1 + 1 + 3 + 4 + 1024 + 0); s.Sum != want {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
	wantBuckets := map[int]int64{0: 2, 1: 2, 2: 1, 3: 1, 11: 1}
	for i, n := range s.Buckets {
		if n != wantBuckets[i] {
			t.Errorf("Buckets[%d] = %d, want %d", i, n, wantBuckets[i])
		}
	}
	if got := s.MaxBucket(); got != 11 {
		t.Fatalf("MaxBucket = %d, want 11", got)
	}
}

func TestHistogramSnapshotMerges(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(100)
	b.Observe(1)

	var s HistogramSnapshot
	a.snapshotInto(&s)
	b.snapshotInto(&s)
	if s.Count != 3 || s.Sum != 102 {
		t.Fatalf("merged Count=%d Sum=%d, want 3, 102", s.Count, s.Sum)
	}
	if s.Buckets[1] != 2 {
		t.Fatalf("merged Buckets[1] = %d, want 2", s.Buckets[1])
	}
}

func TestEmptyHistogramMaxBucket(t *testing.T) {
	var s HistogramSnapshot
	if got := s.MaxBucket(); got != -1 {
		t.Fatalf("empty MaxBucket = %d, want -1", got)
	}
}
