package obs

import (
	"math/bits"
	"sync/atomic"
)

// numBuckets is the number of log2 buckets in a Histogram: bucket i counts
// observations v with bits.Len64(v) == i, so bucket 0 holds v == 0 and
// bucket i (i >= 1) holds v in [2^(i-1), 2^i - 1]. Values of any int64
// magnitude fit (negative observations are clamped to 0).
const numBuckets = 64

// Histogram is a fixed-shape, log2-bucketed histogram safe for one
// concurrent writer and any number of concurrent readers (all fields are
// atomics). The shape is fixed so per-shard histograms merge by summing
// buckets; bucket i's inclusive upper bound is BucketBound(i).
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// BucketBound returns the inclusive upper bound of bucket i: 2^i - 1.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// snapshotInto adds the histogram's current contents to dst.
func (h *Histogram) snapshotInto(dst *HistogramSnapshot) {
	for i := range h.buckets {
		dst.Buckets[i] += h.buckets[i].Load()
	}
	dst.Count += h.count.Load()
	dst.Sum += h.sum.Load()
}

// HistogramSnapshot is a merged, immutable view of one or more Histograms.
// Buckets[i] is the raw (non-cumulative) count of observations in bucket i;
// the bucket's inclusive upper bound is BucketBound(i).
type HistogramSnapshot struct {
	Buckets [numBuckets]int64
	Count   int64
	Sum     int64
}

// Quantile returns the inclusive upper bound of the bucket holding the
// q-quantile (0 < q <= 1) observation, or 0 for an empty histogram. With
// log2 buckets this is an upper estimate, tight to within 2x.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(numBuckets - 1)
}

// MaxBucket returns the index of the highest non-empty bucket, or -1 if the
// histogram is empty.
func (s *HistogramSnapshot) MaxBucket() int {
	for i := numBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return i
		}
	}
	return -1
}
