package bounds

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/restricteduse/tradeoffs/internal/history"
)

// ExemplarSchema versions the violation-exemplar dump format.
const ExemplarSchema = "tradeoffs/bound-exemplar/v1"

// An Exemplar is the latched repro artifact of a worst-case bound
// violation: the operation that exceeded its certified budget, the
// symbolic bound and the exact parameters it was instantiated with, and
// (when a flight recorder was attached) the recorder window around the
// violation. The record is self-contained: Recheck re-parses the
// expression and re-derives the budget, so a dump can be verified long
// after the process that produced it is gone.
type Exemplar struct {
	Schema  string `json:"schema"`
	Object  string `json:"object"` // Observability registry name
	Family  string `json:"family"`
	Op      string `json:"op"`
	Process int    `json:"process"`
	// Observed is the exact step count of the violating operation;
	// Bound the instantiated worst-case budget it exceeded.
	Observed int64            `json:"observed_steps"`
	Expr     string           `json:"bound_expr"`
	Params   map[string]int64 `json:"params"`
	Bound    int64            `json:"bound"`
	Time     time.Time        `json:"time"`
	// Dump is the flight-recorder window at violation time, nil when no
	// recorder was attached to the object.
	Dump          *history.Dump `json:"dump,omitempty"`
	ArtifactPaths []string      `json:"artifact_paths,omitempty"`
}

// Recheck verifies the exemplar from first principles: the symbolic
// expression must parse, its instantiation at the recorded parameters
// must reproduce the recorded budget, and the observed step count must
// genuinely exceed it. A nil error means the dump certifies a real
// bound exceedance.
func (e *Exemplar) Recheck() error {
	if e.Schema != ExemplarSchema {
		return fmt.Errorf("exemplar schema %q, want %q", e.Schema, ExemplarSchema)
	}
	expr, err := Parse(e.Expr)
	if err != nil {
		return fmt.Errorf("exemplar bound expression: %w", err)
	}
	bound, err := expr.Eval(e.Params)
	if err != nil {
		return fmt.Errorf("exemplar bound instantiation: %w", err)
	}
	if bound != e.Bound {
		return fmt.Errorf("exemplar bound %d does not reproduce: %s at %v = %d", e.Bound, e.Expr, e.Params, bound)
	}
	if e.Observed <= bound {
		return fmt.Errorf("observed %d steps within bound %d: not an exceedance", e.Observed, bound)
	}
	return nil
}

// WriteExemplar writes the exemplar as indented JSON.
func WriteExemplar(w io.Writer, e *Exemplar) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ReadExemplar parses an exemplar dump.
func ReadExemplar(r io.Reader) (*Exemplar, error) {
	var e Exemplar
	dec := json.NewDecoder(r)
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("bound exemplar: %w", err)
	}
	return &e, nil
}

// WriteFile persists the exemplar at path and records it in
// ArtifactPaths on success.
func (e *Exemplar) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteExemplar(f, e)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		e.ArtifactPaths = append(e.ArtifactPaths, path)
	}
	return err
}
