// Package bounds evaluates the certified step-bound algebra at runtime.
//
// tradeoffvet -bounds certifies, statically, that every annotated
// operation's derived step cost stays inside its declared polynomial
// bound ("8logn+2", "r*(2n+4rf*logn+4)+1", ...). This package closes the
// loop at runtime: it loads the machine-readable bound table
// (tradeoffs/bounds/v1, committed as dev/bounds/bounds.json),
// instantiates each expression with an object's concrete parameters
// (n, logn, k, r, rf), and hands the resulting integer budgets to the
// obs layer, which compares them against the exact observed step count
// of every completed operation. A worst-case exceedance is latched as a
// re-checkable Exemplar.
//
// The expression grammar is the same whitespace-free algebra parsed by
// internal/analysis/cost.go; the two parsers are deliberately kept in
// sync (obs must not depend on go/ast, so the grammar is mirrored here
// rather than imported):
//
//	expr   := term { "+" term }
//	term   := factor { "*" factor }
//	factor := INT [ SYMBOL ] | SYMBOL | "(" expr ")" | "inf"
package bounds

import (
	"fmt"
	"sort"
	"strings"
)

// An Expr is a parsed bound expression: a polynomial with non-negative
// integer coefficients over named size parameters, or the distinguished
// unbounded value. Monomials are keyed by their sorted symbol product
// ("" for the constant term, "logn*rf" for a product).
type Expr struct {
	terms     map[string]int64
	unbounded bool
}

// Parse parses a whitespace-free bound expression such as "8logn+2".
func Parse(s string) (Expr, error) {
	p := &exprParser{src: s}
	e, err := p.parseExpr()
	if err != nil {
		return Expr{}, err
	}
	if p.pos != len(p.src) {
		return Expr{}, fmt.Errorf("unexpected %q in bound expression %q", p.src[p.pos:], s)
	}
	return e, nil
}

// Unbounded reports the distinguished "inf" value.
func (e Expr) Unbounded() bool { return e.unbounded }

// Symbols returns the sorted free symbols of the expression.
func (e Expr) Symbols() []string {
	set := map[string]bool{}
	for k := range e.terms {
		if k == "" {
			continue
		}
		for _, s := range strings.Split(k, "*") {
			set[s] = true
		}
	}
	syms := make([]string, 0, len(set))
	for s := range set {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	return syms
}

// Eval instantiates the expression with concrete symbol values. It
// errors on a free symbol missing from env and on the unbounded value —
// an unbounded declaration has no finite budget to enforce.
func (e Expr) Eval(env map[string]int64) (int64, error) {
	if e.unbounded {
		return 0, fmt.Errorf("cannot instantiate an unbounded expression")
	}
	var total int64
	for k, coeff := range e.terms {
		v := coeff
		if k != "" {
			for _, sym := range strings.Split(k, "*") {
				sv, ok := env[sym]
				if !ok {
					return 0, fmt.Errorf("no value for symbol %q", sym)
				}
				v *= sv
			}
		}
		total += v
	}
	return total, nil
}

// String renders the polynomial in the same normal form as the static
// analyzer: monomials by descending degree then lexicographically.
func (e Expr) String() string {
	if e.unbounded {
		return "inf"
	}
	if len(e.terms) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(e.terms))
	for k, v := range e.terms {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "0"
	}
	sort.Slice(keys, func(i, j int) bool {
		di := strings.Count(keys[i], "*")
		dj := strings.Count(keys[j], "*")
		if keys[i] == "" {
			di = -1
		}
		if keys[j] == "" {
			dj = -1
		}
		if di != dj {
			return di > dj
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" + ")
		}
		v := e.terms[k]
		switch {
		case k == "":
			fmt.Fprintf(&b, "%d", v)
		case v == 1:
			b.WriteString(k)
		default:
			fmt.Fprintf(&b, "%d%s", v, k)
		}
	}
	return b.String()
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) parseExpr() (Expr, error) {
	e, err := p.parseTerm()
	if err != nil {
		return Expr{}, err
	}
	for p.peek() == '+' {
		p.pos++
		t, err := p.parseTerm()
		if err != nil {
			return Expr{}, err
		}
		e = addExpr(e, t)
	}
	return e, nil
}

func (p *exprParser) parseTerm() (Expr, error) {
	e, err := p.parseFactor()
	if err != nil {
		return Expr{}, err
	}
	for p.peek() == '*' {
		p.pos++
		f, err := p.parseFactor()
		if err != nil {
			return Expr{}, err
		}
		e = mulExpr(e, f)
	}
	return e, nil
}

func (p *exprParser) parseFactor() (Expr, error) {
	switch ch := p.peek(); {
	case ch == '(':
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return Expr{}, err
		}
		if p.peek() != ')' {
			return Expr{}, fmt.Errorf("missing ) in bound expression %q", p.src)
		}
		p.pos++
		return e, nil
	case ch >= '0' && ch <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		var n int64
		if _, err := fmt.Sscanf(p.src[start:p.pos], "%d", &n); err != nil {
			return Expr{}, fmt.Errorf("bad integer in bound expression %q", p.src)
		}
		e := constExpr(n)
		if sym := p.trySymbol(); sym != "" {
			e = mulExpr(e, symbolExpr(sym))
		}
		return e, nil
	case ch >= 'a' && ch <= 'z':
		sym := p.trySymbol()
		if sym == "inf" {
			return Expr{unbounded: true}, nil
		}
		return symbolExpr(sym), nil
	default:
		return Expr{}, fmt.Errorf("unexpected character %q in bound expression %q", string(ch), p.src)
	}
}

func (p *exprParser) trySymbol() string {
	start := p.pos
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		if (ch >= 'a' && ch <= 'z') || (p.pos > start && ch >= '0' && ch <= '9') {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *exprParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func constExpr(c int64) Expr {
	if c == 0 {
		return Expr{}
	}
	return Expr{terms: map[string]int64{"": c}}
}

func symbolExpr(sym string) Expr {
	return Expr{terms: map[string]int64{sym: 1}}
}

func addExpr(a, b Expr) Expr {
	if a.unbounded || b.unbounded {
		return Expr{unbounded: true}
	}
	out := Expr{terms: map[string]int64{}}
	for k, v := range a.terms {
		out.terms[k] = v
	}
	for k, v := range b.terms {
		out.terms[k] += v
	}
	return out
}

func mulExpr(a, b Expr) Expr {
	if len(a.terms) == 0 && !a.unbounded || len(b.terms) == 0 && !b.unbounded {
		return Expr{}
	}
	if a.unbounded || b.unbounded {
		return Expr{unbounded: true}
	}
	out := Expr{terms: map[string]int64{}}
	for ka, va := range a.terms {
		for kb, vb := range b.terms {
			out.terms[mulMonomial(ka, kb)] += va * vb
		}
	}
	return out
}

func mulMonomial(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	syms := append(strings.Split(a, "*"), strings.Split(b, "*")...)
	sort.Strings(syms)
	return strings.Join(syms, "*")
}
