package bounds

import (
	"encoding/json"
	"fmt"
	"sync"

	boundsdata "github.com/restricteduse/tradeoffs/dev/bounds"
)

// Schema is the certified-bound table format this loader accepts — the
// JSON emitted by `tradeoffvet -bounds -format json`.
const Schema = "tradeoffs/bounds/v1"

// A Row is one certified bound clause: family is the implementing type
// in "pkg.Recv" form ("counter.FArray"), Op the method, Mode
// "worst-case" or "uncontended", Class the step class, and Declared the
// symbolic budget over the free Symbols.
type Row struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Func     string   `json:"func"`
	Family   string   `json:"family"`
	Op       string   `json:"op"`
	Mode     string   `json:"mode"`
	Class    string   `json:"class"`
	Declared string   `json:"declared"`
	Derived  string   `json:"derived"`
	Symbols  []string `json:"symbols,omitempty"`
	OK       bool     `json:"ok"`

	// Amortized marks a bound that holds per operation only on average:
	// the certified function defers maintenance work (an amortized cost
	// override), so an individual execution may exceed the budget by the
	// deferred cost without falsifying the certification.
	Amortized bool `json:"amortized,omitempty"`
}

// A Table is a loaded certified-bound table, indexed for the runtime
// conformance layer: family+method -> the "steps"-class rows.
type Table struct {
	rows []Row
	// steps[family+"."+method] -> worst-case and uncontended clauses.
	steps map[string]stepRows
}

type stepRows struct {
	worst, uncontended *Row
}

// ParseTable loads a tradeoffs/bounds/v1 document.
func ParseTable(data []byte) (*Table, error) {
	var f struct {
		Schema string `json:"schema"`
		Rows   []Row  `json:"rows"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bounds table: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("bounds table: schema %q, want %q", f.Schema, Schema)
	}
	t := &Table{rows: f.Rows, steps: map[string]stepRows{}}
	for i := range f.Rows {
		r := &f.Rows[i]
		if r.Class != "steps" {
			continue
		}
		k := r.Family + "." + r.Op
		sr := t.steps[k]
		switch r.Mode {
		case "worst-case":
			sr.worst = r
		case "uncontended":
			sr.uncontended = r
		}
		t.steps[k] = sr
	}
	return t, nil
}

// Rows returns every loaded clause, in table order.
func (t *Table) Rows() []Row { return t.rows }

// Len reports the number of loaded clauses.
func (t *Table) Len() int { return len(t.rows) }

var (
	defaultOnce  sync.Once
	defaultTable *Table
	defaultErr   error
)

// Default returns the table embedded from dev/bounds/bounds.json. A
// parse failure (impossible while the lint freshness check holds)
// yields an empty table, so callers degrade to no bound checking rather
// than failing construction.
func Default() *Table {
	defaultOnce.Do(func() {
		defaultTable, defaultErr = ParseTable(boundsdata.JSON)
		if defaultErr != nil {
			defaultTable = &Table{steps: map[string]stepRows{}}
		}
	})
	return defaultTable
}

// DefaultErr reports whether the embedded table failed to parse.
func DefaultErr() error {
	Default()
	return defaultErr
}

// Params are the concrete values of the conventional size symbols used
// by the repo's bound annotations: n (processes or components), logn
// (instantiated tree depth), k (stripe budget), r (round budget), rf
// (refresh rounds). All five are always in scope — a zero value is a
// legitimate instantiation (a depth-0 tree), not an absence.
type Params struct {
	N, LogN, K, R, RF int64
}

// Env is the symbol environment Eval consumes.
func (p Params) Env() map[string]int64 {
	return map[string]int64{"n": p.N, "logn": p.LogN, "k": p.K, "r": p.R, "rf": p.RF}
}

// An OpBound is the instantiated step budget of one operation: the
// worst-case and/or uncontended bound evaluated at concrete Params. A
// zero value means that mode was not declared for the operation.
type OpBound struct {
	Op              string // facade operation name ("increment", "scan", ...)
	WorstExpr       string // symbolic form, "" when not declared
	UncontendedExpr string
	Worst           int64 // instantiated budget, 0 when not declared
	Uncontended     int64
	// WorstAmortized / UncontendedAmortized carry the clauses' Amortized
	// flags: an amortized budget may be exceeded by an individual
	// execution paying deferred maintenance.
	WorstAmortized       bool
	UncontendedAmortized bool
	Params               Params
}

// Declared reports whether any steps-class bound exists for the op.
func (b OpBound) Declared() bool { return b.Worst > 0 || b.Uncontended > 0 }

// StepBound instantiates the steps-class bounds declared on
// family.method (e.g. "counter.FArray", "Increment") at the given
// parameters. Methods certifying the same facade operation (Scan /
// ScanView / ScanInto) can be folded by calling it per method and
// merging with Max. The zero OpBound is returned when the table has no
// steps clause for the method.
func (t *Table) StepBound(family, method string, p Params) (OpBound, error) {
	sr, ok := t.steps[family+"."+method]
	if !ok {
		return OpBound{}, nil
	}
	out := OpBound{Params: p}
	env := p.Env()
	if sr.worst != nil {
		e, err := Parse(sr.worst.Declared)
		if err != nil {
			return OpBound{}, fmt.Errorf("%s.%s worst-case bound %q: %w", family, method, sr.worst.Declared, err)
		}
		v, err := e.Eval(env)
		if err != nil {
			return OpBound{}, fmt.Errorf("%s.%s worst-case bound %q: %w", family, method, sr.worst.Declared, err)
		}
		out.WorstExpr, out.Worst = sr.worst.Declared, v
		out.WorstAmortized = sr.worst.Amortized
	}
	if sr.uncontended != nil {
		e, err := Parse(sr.uncontended.Declared)
		if err != nil {
			return OpBound{}, fmt.Errorf("%s.%s uncontended bound %q: %w", family, method, sr.uncontended.Declared, err)
		}
		v, err := e.Eval(env)
		if err != nil {
			return OpBound{}, fmt.Errorf("%s.%s uncontended bound %q: %w", family, method, sr.uncontended.Declared, err)
		}
		out.UncontendedExpr, out.Uncontended = sr.uncontended.Declared, v
		out.UncontendedAmortized = sr.uncontended.Amortized
	}
	return out, nil
}

// Max folds two instantiated bounds of the same operation, keeping the
// looser budget per mode — the sound choice when several certified
// methods back one facade op.
func (b OpBound) Max(o OpBound) OpBound {
	out := b
	if o.Worst > out.Worst {
		out.Worst, out.WorstExpr, out.WorstAmortized = o.Worst, o.WorstExpr, o.WorstAmortized
	}
	if o.Uncontended > out.Uncontended {
		out.Uncontended, out.UncontendedExpr, out.UncontendedAmortized = o.Uncontended, o.UncontendedExpr, o.UncontendedAmortized
	}
	return out
}
