package bounds

import (
	"strings"
	"testing"
)

func TestParseEval(t *testing.T) {
	env := map[string]int64{"n": 4, "logn": 3, "k": 8, "r": 8, "rf": 2}
	cases := []struct {
		expr string
		want int64
	}{
		{"1", 1},
		{"2", 2},
		{"8logn+2", 26},
		{"2n+2", 10},
		{"2k+2", 18},
		{"4rf*logn+2", 26},
		{"r*(2n+4rf*logn+4)+1", 8*(8+24+4) + 1},
		{"2logn+1", 7},
	}
	for _, c := range cases {
		e, err := Parse(c.expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.expr, err)
		}
		got, err := e.Eval(env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.expr, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestParseUnbounded(t *testing.T) {
	e, err := Parse("inf")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Unbounded() {
		t.Fatal("inf should be unbounded")
	}
	if _, err := e.Eval(map[string]int64{}); err == nil {
		t.Fatal("Eval(inf) should fail")
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "2+", "2n+", "(2n", "2N", "foo bar", "n^2"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
	e, err := Parse("3m+1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(Params{N: 4}.Env()); err == nil || !strings.Contains(err.Error(), `"m"`) {
		t.Fatalf("Eval with unknown symbol: err = %v", err)
	}
}

func TestSymbols(t *testing.T) {
	e, err := Parse("r*(2n+4rf*logn+4)+1")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(e.Symbols(), ",")
	if got != "logn,n,r,rf" {
		t.Fatalf("Symbols = %q", got)
	}
}

const testTable = `{
  "schema": "tradeoffs/bounds/v1",
  "rows": [
    {"func": "counter.FArray.Increment", "family": "counter.FArray", "op": "Increment",
     "mode": "worst-case", "class": "steps", "declared": "8logn+2", "derived": "8logn + 2",
     "symbols": ["logn"], "ok": true},
    {"func": "counter.FArray.Increment", "family": "counter.FArray", "op": "Increment",
     "mode": "worst-case", "class": "updates", "declared": "2logn+1", "derived": "2logn + 1",
     "symbols": ["logn"], "ok": true},
    {"func": "counter.CAS.Increment", "family": "counter.CAS", "op": "Increment",
     "mode": "uncontended", "class": "steps", "declared": "2", "derived": "2", "ok": true}
  ]
}`

func TestParseTableStepBound(t *testing.T) {
	tab, err := ParseTable([]byte(testTable))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	b, err := tab.StepBound("counter.FArray", "Increment", Params{N: 8, LogN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Worst != 34 || b.WorstExpr != "8logn+2" || b.Uncontended != 0 {
		t.Fatalf("FArray Increment bound = %+v", b)
	}
	b, err = tab.StepBound("counter.CAS", "Increment", Params{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if b.Worst != 0 || b.Uncontended != 2 {
		t.Fatalf("CAS Increment bound = %+v", b)
	}
	b, err = tab.StepBound("counter.AAC", "Increment", Params{N: 8})
	if err != nil || b.Declared() {
		t.Fatalf("unknown op: %+v, %v", b, err)
	}
}

func TestParseTableRejectsSchema(t *testing.T) {
	if _, err := ParseTable([]byte(`{"schema": "tradeoffs/bounds/v0", "rows": []}`)); err == nil {
		t.Fatal("wrong schema should fail")
	}
}

func TestOpBoundMax(t *testing.T) {
	a := OpBound{Worst: 10, WorstExpr: "10"}
	b := OpBound{Worst: 2, WorstExpr: "2", Uncontended: 5, UncontendedExpr: "5"}
	m := a.Max(b)
	if m.Worst != 10 || m.WorstExpr != "10" || m.Uncontended != 5 || m.UncontendedExpr != "5" {
		t.Fatalf("Max = %+v", m)
	}
}

func TestDefaultTable(t *testing.T) {
	if err := DefaultErr(); err != nil {
		t.Fatalf("embedded table: %v", err)
	}
	tab := Default()
	if tab.Len() == 0 {
		t.Fatal("embedded table is empty")
	}
	// Every family the facade wires must resolve from the committed table.
	for _, probe := range []struct {
		family, method string
	}{
		{"counter.FArray", "Increment"},
		{"counter.CAS", "Increment"},
		{"sharded.Counter", "Increment"},
		{"core.MaxRegister", "WriteMax"},
		{"maxreg.CASRegister", "WriteMax"},
		{"sharded.MaxRegister", "WriteMax"},
		{"snapshot.FArray", "Update"},
		{"snapshot.DoubleCollect", "Scan"},
		{"consensus.Consensus", "Propose"},
	} {
		b, err := tab.StepBound(probe.family, probe.method, Params{N: 8, LogN: 4, K: 8, R: 16, RF: 2})
		if err != nil {
			t.Fatalf("%s.%s: %v", probe.family, probe.method, err)
		}
		if !b.Declared() {
			t.Errorf("%s.%s: no steps bound in the committed table", probe.family, probe.method)
		}
	}
}

func TestExemplarRecheck(t *testing.T) {
	e := &Exemplar{
		Schema:   ExemplarSchema,
		Object:   "counter#0",
		Family:   "counter",
		Op:       "increment",
		Observed: 40,
		Expr:     "8logn+2",
		Params:   map[string]int64{"n": 8, "logn": 4, "k": 0, "r": 0, "rf": 0},
		Bound:    34,
	}
	if err := e.Recheck(); err != nil {
		t.Fatalf("genuine exemplar rejected: %v", err)
	}
	bad := *e
	bad.Observed = 30
	if err := bad.Recheck(); err == nil {
		t.Fatal("within-bound exemplar should fail Recheck")
	}
	tampered := *e
	tampered.Bound = 50
	if err := tampered.Recheck(); err == nil {
		t.Fatal("tampered bound should fail Recheck")
	}
	noschema := *e
	noschema.Schema = ""
	if err := noschema.Recheck(); err == nil {
		t.Fatal("missing schema should fail Recheck")
	}
}

func TestExemplarRoundTrip(t *testing.T) {
	e := &Exemplar{
		Schema: ExemplarSchema, Object: "c", Op: "increment",
		Observed: 3, Expr: "1", Params: map[string]int64{}, Bound: 1,
	}
	var b strings.Builder
	if err := WriteExemplar(&b, e); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExemplar(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Recheck(); err != nil {
		t.Fatalf("round-tripped exemplar: %v", err)
	}
}
