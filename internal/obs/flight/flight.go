// Package flight is an always-on flight recorder and online
// linearizability monitor for live (non-simulated) runs.
//
// Live operations on the four object families stream
// invocation/response records into per-process lock-free ring buffers; a
// single background goroutine drains the rings and drives the incremental
// interval checkers from internal/history over a sliding window. The hot
// path is designed to disappear at the default sampling rate: an
// unsampled operation costs one local counter increment and a branch, and
// a sampled one costs two hybrid-clock stamps plus a handful of atomic
// stores into a preallocated slot.
//
// # Timestamps
//
// Record stamps come from a hybrid clock (Recorder.stamp): a CAS loop
// over max(wall-clock nanoseconds, last+1). Stamps are strictly monotone
// across all processes — so "A responded before B was invoked" is exact,
// which is what the interval checkers need — while staying close enough
// to wall-clock nanoseconds to plot (obs.HistoryTrace divides by 1e3 for
// Chrome-trace microseconds).
//
// # Ring design
//
// Each (object, process) pair owns one single-producer/single-consumer
// ring. The producer is the process goroutine (facade handles are
// per-process by contract), the consumer is the monitor. Slots use
// per-field atomics with a seqlock-style sequence word: the writer marks
// the slot busy (seq=0), stores the fields, publishes seq=pos+1, then
// publishes the new head. The reader validates seq before and after
// copying; a mismatch means the writer lapped the reader, and the record
// counts as dropped. Producers therefore never block and never take a
// lock; a slow monitor loses old records instead of stalling the
// workload.
//
// # Watermarks and soundness after drops
//
// The monitor admits records into a history.Stream only once the
// watermark — min(recorder clock, earliest in-flight invocation for the
// object) — has passed them, which is the admission contract the
// incremental checkers require. Begin publishes a provisional lower
// bound into the in-flight slot before stamping, and End appends the
// record to the ring before clearing the slot, so the watermark can
// never race past an operation it has not yet seen.
//
// Sampling (SampleEvery > 1) and ring drops both turn the observed
// history into a sub-history of the real one, so the monitor runs the
// checkers in relaxed mode — the subset-sound conditions only (see the
// soundness discussion in internal/history). A recorder running with
// SampleEvery == 1 starts in exact mode and degrades an object's stream
// to relaxed permanently the first time one of its rings drops a record.
package flight

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/restricteduse/tradeoffs/internal/history"
)

// Config tunes a Recorder. The zero value picks the defaults below.
type Config struct {
	// SampleEvery records one in N operations per process (default 64).
	// 1 records everything and enables exact-mode checking.
	SampleEvery int

	// WindowPerProc is the ring capacity, in records, for each
	// (object, process) pair; rounded up to a power of two (default 1024).
	WindowPerProc int

	// ArtifactWindow is how many admitted records per object are retained
	// for /debug/history dumps and violation artifacts (default 512).
	ArtifactWindow int

	// Poll is the monitor's drain interval (default 2ms).
	Poll time.Duration

	// ArtifactDir, when set, is where violation artifacts are written as
	// <object>-violation.history.json and .trace.json files.
	ArtifactDir string

	// OnViolation, when set, is called on the monitor goroutine for each
	// detected violation (after the artifact is built).
	OnViolation func(*Violation)
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.WindowPerProc <= 0 {
		c.WindowPerProc = 1024
	}
	if c.ArtifactWindow <= 0 {
		c.ArtifactWindow = 512
	}
	if c.Poll <= 0 {
		c.Poll = 2 * time.Millisecond
	}
	return c
}

// Recorder owns the clock, the taps, and the monitor goroutine. Create
// with New, register taps before Start, and Stop before discarding.
type Recorder struct {
	cfg   Config
	clock atomic.Int64

	mu      sync.Mutex
	taps    []*Tap
	started bool
	stopped bool

	stop    chan struct{}
	kick    chan chan struct{}
	done    chan struct{}
	dumpsCh chan dumpReq

	violMu     sync.Mutex
	violations []*Violation
}

// New returns a Recorder with the given configuration.
func New(cfg Config) *Recorder {
	return &Recorder{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		kick: make(chan chan struct{}),
		done: make(chan struct{}),
	}
}

// stamp returns the next hybrid-clock value: strictly greater than every
// previous stamp, and at least the current wall clock in nanoseconds.
func (r *Recorder) stamp() int64 {
	now := time.Now().UnixNano()
	for {
		last := r.clock.Load()
		t := now
		if t <= last {
			t = last + 1
		}
		if r.clock.CompareAndSwap(last, t) {
			return t
		}
	}
}

// Tap records one object's operations. Obtain with Recorder.Tap; methods
// on a given process index must be called from that process's goroutine
// only (the facade Handle contract).
type Tap struct {
	rec    *Recorder
	family string
	name   string
	sample int64
	procs  []tapProc

	// Gauges the stats/HTTP path reads while the monitor runs.
	recorded    atomic.Int64 // records drained from the rings
	dropped     atomic.Int64 // records lost to ring overwrites
	pending     atomic.Int64 // records buffered awaiting the watermark
	sealedTo    atomic.Int64 // last applied watermark
	relaxedFlag atomic.Bool
	violatedBit atomic.Bool

	// Monitor-owned state (single goroutine, never locked).
	stream   *history.Stream
	relaxed  bool
	recent   []history.Op // circular artifact/debug window
	recentN  int64        // total appended; next slot = recentN % cap
	violated bool
}

// tapProc is the per-process producer state, padded to keep neighboring
// processes off each other's cache lines.
type tapProc struct {
	n        int64 // sampling counter (producer-owned)
	ring     ring
	inflight atomic.Int64 // provisional/actual invocation stamp; 0 = idle
	_        [4]int64
}

// OpToken carries a sampled operation's invocation stamp from Begin to
// End. The zero token means "not sampled" and makes End a no-op.
type OpToken struct {
	inv int64
}

// Sampled reports whether this operation is being recorded.
func (t OpToken) Sampled() bool { return t.inv != 0 }

// Tap registers a recording tap for one object. family selects the
// checker (maxreg, counter, snapshot, consensus — see
// history.NewIncremental); name is the object's registry name; procs is
// its process count. Must be called before Start.
func (r *Recorder) Tap(family, name string, procs int) *Tap {
	if history.NewIncremental(family, false) == nil {
		panic(fmt.Sprintf("flight: unknown checker family %q", family))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic("flight: Tap after Start")
	}
	t := &Tap{
		rec:     r,
		family:  family,
		name:    name,
		sample:  int64(r.cfg.SampleEvery),
		procs:   make([]tapProc, procs),
		relaxed: r.cfg.SampleEvery > 1,
	}
	t.relaxedFlag.Store(t.relaxed)
	for i := range t.procs {
		t.procs[i].ring.init(r.cfg.WindowPerProc)
	}
	t.stream = history.NewStream(history.NewIncremental(family, t.relaxed))
	t.recent = make([]history.Op, 0, r.cfg.ArtifactWindow)
	r.taps = append(r.taps, t)
	return t
}

// Begin starts recording one operation for process proc. Call the
// matching End (or EndVec) with the returned token. Unsampled calls cost
// one increment and a branch.
func (t *Tap) Begin(proc int) OpToken {
	p := &t.procs[proc]
	p.n++
	if p.n%t.sample != 0 {
		return OpToken{}
	}
	// Publish a provisional lower bound before stamping so the monitor's
	// watermark can never pass an invocation it has not observed.
	p.inflight.Store(t.rec.clock.Load() + 1)
	inv := t.rec.stamp()
	p.inflight.Store(inv)
	return OpToken{inv: inv}
}

// End completes a scalar operation (everything except Scan).
func (t *Tap) End(proc int, tok OpToken, kind history.Kind, arg, ret int64) {
	if tok.inv == 0 {
		return
	}
	p := &t.procs[proc]
	res := t.rec.stamp()
	p.ring.push(kind, arg, ret, nil, tok.inv, res)
	p.inflight.Store(0) // after the push: the record is visible before the watermark may move
}

// Abort discards a sampled operation that failed without taking effect
// (e.g. a rejected out-of-bound write): nothing is recorded, and the
// in-flight stamp is cleared so the watermark can advance past it.
func (t *Tap) Abort(proc int, tok OpToken) {
	if tok.inv == 0 {
		return
	}
	t.procs[proc].inflight.Store(0)
}

// EndVec completes a Scan, recording its result vector.
func (t *Tap) EndVec(proc int, tok OpToken, vec []int64) {
	if tok.inv == 0 {
		return
	}
	p := &t.procs[proc]
	res := t.rec.stamp()
	p.ring.push(history.KindScan, 0, 0, vec, tok.inv, res)
	p.inflight.Store(0)
}

// watermark computes the admission bound for this tap: every record with
// an invocation below it has either been pushed to a ring already or
// will never exist. Must be called before draining the rings (the
// soundness argument in the package comment depends on the order).
func (t *Tap) watermark() int64 {
	w := t.rec.clock.Load() + 1
	for i := range t.procs {
		if v := t.procs[i].inflight.Load(); v != 0 && v < w {
			w = v
		}
	}
	return w
}

// ring is the single-producer/single-consumer seqlock ring described in
// the package comment.
type ring struct {
	slots []slot
	mask  int64
	head  atomic.Int64
	tail  int64 // consumer-owned
}

type slot struct {
	seq  atomic.Int64 // pos+1 when holding record pos; 0 mid-write
	kind atomic.Int32
	arg  atomic.Int64
	ret  atomic.Int64
	inv  atomic.Int64
	res  atomic.Int64
	vec  atomic.Pointer[[]int64]
}

func (g *ring) init(capacity int) {
	size := 1
	for size < capacity {
		size <<= 1
	}
	g.slots = make([]slot, size)
	g.mask = int64(size - 1)
}

// push publishes one record. Producer-only.
func (g *ring) push(kind history.Kind, arg, ret int64, vec []int64, inv, res int64) {
	pos := g.head.Load()
	s := &g.slots[pos&g.mask]
	s.seq.Store(0)
	s.kind.Store(int32(kind))
	s.arg.Store(arg)
	s.ret.Store(ret)
	s.inv.Store(inv)
	s.res.Store(res)
	if vec != nil {
		v := append([]int64(nil), vec...)
		s.vec.Store(&v)
	} else {
		s.vec.Store(nil)
	}
	s.seq.Store(pos + 1)
	g.head.Store(pos + 1)
}

// drain consumes every published record, invoking emit for each.
// Consumer-only. Returns how many records were lost to overwrites.
func (g *ring) drain(proc int, emit func(history.Op)) (drops int64) {
	head := g.head.Load()
	if lag := head - g.tail; lag > int64(len(g.slots)) {
		drops += lag - int64(len(g.slots))
		g.tail = head - int64(len(g.slots))
	}
	for g.tail < head {
		s := &g.slots[g.tail&g.mask]
		want := g.tail + 1
		if s.seq.Load() != want {
			drops++
			g.tail++
			continue
		}
		op := history.Op{
			Proc: proc,
			Kind: history.Kind(s.kind.Load()),
			Arg:  s.arg.Load(),
			Ret:  s.ret.Load(),
			Inv:  s.inv.Load(),
			Res:  s.res.Load(),
		}
		if v := s.vec.Load(); v != nil {
			op.RetVec = *v
		}
		if s.seq.Load() != want {
			// The producer lapped us mid-copy; the copy may be torn.
			drops++
			g.tail++
			continue
		}
		emit(op)
		g.tail++
	}
	return drops
}

// sortedTaps gives stats and dumps a stable order.
func (r *Recorder) sortedTaps() []*Tap {
	r.mu.Lock()
	taps := append([]*Tap(nil), r.taps...)
	r.mu.Unlock()
	sort.Slice(taps, func(i, j int) bool { return taps[i].name < taps[j].name })
	return taps
}
