package flight

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/history"
)

// brokenMax "loses" writes: reads return a stale zero even after a write
// completed — a genuine linearizability violation the monitor must catch.
func TestFaultInjectionProducesArtifact(t *testing.T) {
	dir := t.TempDir()
	got := make(chan *Violation, 1)
	rec := New(Config{
		SampleEvery: 1,
		ArtifactDir: dir,
		OnViolation: func(v *Violation) {
			select {
			case got <- v:
			default:
			}
		},
	})
	tap := rec.Tap("maxreg", "maxreg#0", 2)
	rec.Start()
	defer rec.Stop()

	// A write completes...
	tok := tap.Begin(0)
	tap.End(0, tok, history.KindWriteMax, 42, 0)
	// ...and a later read misses it.
	tok = tap.Begin(1)
	tap.End(1, tok, history.KindReadMax, 0, 0)
	rec.Sync()

	vs := rec.Violations()
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
	v := vs[0]
	if v.Family != "maxreg" || v.Err == nil || v.Err.Checker != "maxreg" {
		t.Fatalf("bad violation: %+v", v)
	}
	select {
	case <-got:
	default:
		t.Fatal("OnViolation callback not invoked")
	}

	// The embedded dump must re-check to the same verdict offline.
	if v.Dump == nil || v.Dump.Violation == nil {
		t.Fatalf("violation lacks dump: %+v", v)
	}
	if err := history.CheckerFor(v.Dump.Family)(v.Dump.Ops); err == nil {
		t.Fatal("dumped window re-checks clean; artifact is not a repro")
	}

	// Artifacts on disk: parseable history dump + valid trace JSON.
	if len(v.ArtifactPaths) != 2 {
		t.Fatalf("want 2 artifact files, got %v", v.ArtifactPaths)
	}
	hf, err := os.Open(v.ArtifactPaths[0])
	if err != nil {
		t.Fatalf("open history artifact: %v", err)
	}
	defer hf.Close()
	d, err := history.ReadDump(hf)
	if err != nil {
		t.Fatalf("parse history artifact: %v", err)
	}
	if d.Family != "maxreg" || d.Violation == nil || len(d.Ops) != 2 {
		t.Fatalf("bad history artifact: %+v", d)
	}

	raw, err := os.ReadFile(v.ArtifactPaths[1])
	if err != nil {
		t.Fatalf("read trace artifact: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace artifact is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace artifact has no events")
	}

	if base := filepath.Base(v.ArtifactPaths[0]); base != "maxreg_0-violation.history.json" {
		t.Fatalf("unexpected artifact name: %s", base)
	}
}

// TestViolationLatchesPerTap asserts one violation per object, even when
// the object keeps misbehaving.
func TestViolationLatchesPerTap(t *testing.T) {
	rec := New(Config{SampleEvery: 1})
	tap := rec.Tap("counter", "counter#0", 1)
	for i := 0; i < 10; i++ {
		tok := tap.Begin(0)
		tap.End(0, tok, history.KindCounterRead, 0, int64(100+i)) // nothing ever started
	}
	rec.Sync()
	rec.Sync()
	if n := len(rec.Violations()); n != 1 {
		t.Fatalf("violation did not latch: %d reports", n)
	}
	if !rec.Stats().Taps[0].Violated {
		t.Fatal("tap stats missing violated flag")
	}
}

// TestConsensusAgreementViolation covers the fourth family end to end.
func TestConsensusAgreementViolation(t *testing.T) {
	rec := New(Config{SampleEvery: 1})
	tap := rec.Tap("consensus", "consensus#0", 2)
	tok := tap.Begin(0)
	tap.End(0, tok, history.KindPropose, 1, 1)
	tok = tap.Begin(1)
	tap.End(1, tok, history.KindPropose, 2, 2) // disagrees
	rec.Sync()
	vs := rec.Violations()
	if len(vs) != 1 || vs[0].Err.Checker != "consensus" {
		t.Fatalf("want consensus violation, got %+v", vs)
	}
}

// TestConcurrentStatsAndDumpsDuringWorkload hammers the observer paths
// while producers run; meaningful under -race.
func TestConcurrentStatsAndDumpsDuringWorkload(t *testing.T) {
	rec := New(Config{SampleEvery: 2, WindowPerProc: 256})
	const procs = 4
	tap := rec.Tap("counter", "counter#0", procs)
	rec.Start()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tok := tap.Begin(p)
				tap.End(p, tok, history.KindIncrement, 0, 0)
			}
		}(p)
	}
	stopObs := make(chan struct{})
	var owg sync.WaitGroup
	for o := 0; o < 2; o++ {
		owg.Add(1)
		go func() {
			defer owg.Done()
			for {
				select {
				case <-stopObs:
					return
				default:
					_ = rec.Stats()
					_ = rec.Dumps()
				}
			}
		}()
	}
	wg.Wait()
	close(stopObs)
	owg.Wait()
	rec.Sync()
	rec.Stop()

	st := rec.Stats()
	if st.Recorded == 0 {
		t.Fatal("nothing recorded")
	}
	if st.Violations != 0 {
		t.Fatalf("false violation: %+v", rec.Violations())
	}
	// Stats and Dumps still work after Stop.
	if len(rec.Dumps()) != 1 {
		t.Fatal("dumps unavailable after Stop")
	}
}

// TestStopConcurrentWithObservers pins the shutdown ownership boundary:
// until the monitor goroutine has exited, Dumps and Sync must route
// through it (or wait for r.done) rather than touching checker state the
// final drain pass is still writing. Meaningful under -race.
func TestStopConcurrentWithObservers(t *testing.T) {
	for i := 0; i < 50; i++ {
		rec := New(Config{SampleEvery: 1, WindowPerProc: 64})
		tap := rec.Tap("counter", "counter#0", 1)
		rec.Start()
		for j := 0; j < 200; j++ {
			tok := tap.Begin(0)
			tap.End(0, tok, history.KindIncrement, 0, 0)
		}
		var wg sync.WaitGroup
		for o := 0; o < 2; o++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = rec.Dumps()
				rec.Sync()
				_ = rec.Dumps()
			}()
		}
		rec.Stop()
		wg.Wait()
		if st := rec.Stats(); st.Violations != 0 {
			t.Fatalf("false violation during shutdown: %+v", rec.Violations())
		}
	}
}

// TestStopIsIdempotent covers shutdown edges.
func TestStopIsIdempotent(t *testing.T) {
	rec := New(Config{})
	rec.Tap("maxreg", "m", 1)
	rec.Start()
	rec.Stop()
	rec.Stop()
	rec.Start() // no-op after Stop
	if len(rec.Dumps()) != 1 {
		t.Fatal("dump after stop")
	}
}
