package flight

import (
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/history"
)

// liveMax is a trivially linearizable max register for driving taps.
type liveMax struct {
	mu sync.Mutex
	v  int64
}

func (m *liveMax) write(x int64) {
	m.mu.Lock()
	if x > m.v {
		m.v = x
	}
	m.mu.Unlock()
}

func (m *liveMax) read() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v
}

// TestExactModeCleanRun drives a correct object from many goroutines with
// SampleEvery=1 and asserts the monitor admits everything and stays
// quiet.
func TestExactModeCleanRun(t *testing.T) {
	rec := New(Config{SampleEvery: 1, WindowPerProc: 1 << 12})
	const procs, opsPer = 8, 400
	tap := rec.Tap("maxreg", "maxreg#0", procs)
	rec.Start()
	defer rec.Stop()

	obj := &liveMax{}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if i%3 == 0 {
					v := int64(p*opsPer + i + 1)
					tok := tap.Begin(p)
					obj.write(v)
					tap.End(p, tok, history.KindWriteMax, v, 0)
				} else {
					tok := tap.Begin(p)
					v := obj.read()
					tap.End(p, tok, history.KindReadMax, 0, v)
				}
			}
		}(p)
	}
	wg.Wait()
	rec.Sync()

	st := rec.Stats()
	if st.Recorded != procs*opsPer {
		t.Fatalf("recorded %d, want %d", st.Recorded, procs*opsPer)
	}
	if st.Dropped != 0 {
		t.Fatalf("unexpected drops: %d", st.Dropped)
	}
	if st.Violations != 0 {
		t.Fatalf("false violation on a correct object: %+v", rec.Violations())
	}
	if len(st.Taps) != 1 || st.Taps[0].Relaxed {
		t.Fatalf("exact-mode tap reported relaxed: %+v", st.Taps)
	}
	if st.Taps[0].Pending != 0 {
		t.Fatalf("records still pending after Sync with no ops in flight: %d", st.Taps[0].Pending)
	}

	dumps := rec.Dumps()
	if len(dumps) != 1 || dumps[0].Family != "maxreg" || len(dumps[0].Ops) == 0 {
		t.Fatalf("bad dump: %+v", dumps)
	}
	if sum := dumps[0].Summary; sum == nil || sum.Admitted != procs*opsPer {
		t.Fatalf("summary did not account for all ops: %+v", dumps[0].Summary)
	}
}

// TestSamplingRecordsSubset checks the 1-in-N contract and that sampled
// taps start relaxed.
func TestSamplingRecordsSubset(t *testing.T) {
	rec := New(Config{SampleEvery: 4})
	tap := rec.Tap("counter", "counter#0", 1)
	obj := int64(0)
	for i := 0; i < 400; i++ {
		tok := tap.Begin(0)
		obj++
		tap.End(0, tok, history.KindIncrement, 0, 0)
	}
	rec.Sync() // not started: runs the drain inline
	st := rec.Stats()
	if st.Recorded != 100 {
		t.Fatalf("sampled %d of 400 ops, want 100", st.Recorded)
	}
	if !st.Taps[0].Relaxed {
		t.Fatal("sampling tap must run relaxed checkers")
	}
	if st.Violations != 0 {
		t.Fatalf("unexpected violations: %+v", rec.Violations())
	}
}

// TestRingOverwriteCountsDropsAndRelaxes floods a tiny ring without a
// running monitor: old records must be dropped, counted, and the
// exact-mode stream degraded to relaxed — with no false violation.
func TestRingOverwriteCountsDropsAndRelaxes(t *testing.T) {
	rec := New(Config{SampleEvery: 1, WindowPerProc: 64})
	tap := rec.Tap("counter", "counter#0", 1)
	total := int64(0)
	for i := 0; i < 1000; i++ {
		tok := tap.Begin(0)
		total++
		tap.End(0, tok, history.KindCounterRead, 0, total-1) // reads its own pre-increment... value
	}
	rec.Sync()
	st := rec.Stats()
	if st.Dropped != 1000-64 {
		t.Fatalf("dropped %d, want %d", st.Dropped, 1000-64)
	}
	if !st.Taps[0].Relaxed {
		t.Fatal("gap did not relax the stream")
	}
	if st.Violations != 0 {
		t.Fatalf("gap produced a false violation: %+v", rec.Violations())
	}
	if dumps := rec.Dumps(); dumps[0].Dropped != 1000-64 {
		t.Fatalf("dump dropped=%d, want %d", dumps[0].Dropped, 1000-64)
	}
}

// TestWatermarkBlocksOnInflightOp pins the admission ordering: a record
// whose process has an operation still in flight must stay pending until
// the operation completes.
func TestWatermarkBlocksOnInflightOp(t *testing.T) {
	rec := New(Config{SampleEvery: 1})
	tap := rec.Tap("maxreg", "maxreg#0", 2)

	tok0 := tap.Begin(0)
	tap.End(0, tok0, history.KindWriteMax, 5, 0)

	tokStuck := tap.Begin(1) // in flight: holds the watermark
	rec.Sync()
	if got := rec.Stats().Taps[0].Pending; got == 0 {
		// The write began before the stuck op, so it may be admitted; but
		// sealing must not pass the stuck invocation.
		if sealed := rec.Stats().Taps[0].SealedTo; sealed > tokStuck.inv {
			t.Fatalf("sealed to %d past in-flight invocation %d", sealed, tokStuck.inv)
		}
	}

	tap.End(1, tokStuck, history.KindReadMax, 0, 5)
	rec.Sync()
	st := rec.Stats().Taps[0]
	if st.Pending != 0 || st.Recorded != 2 {
		t.Fatalf("after completion: pending=%d recorded=%d", st.Pending, st.Recorded)
	}
	if st.SealedTo <= tokStuck.inv {
		t.Fatalf("watermark did not advance past completed op: %d", st.SealedTo)
	}
}

// TestUnknownFamilyPanics pins the registration contract.
func TestUnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown family did not panic")
		}
	}()
	New(Config{}).Tap("queue", "queue#0", 1)
}

// TestScanVecRoundTrip pushes a Scan through the ring and checks the
// vector survives.
func TestScanVecRoundTrip(t *testing.T) {
	rec := New(Config{SampleEvery: 1})
	tap := rec.Tap("snapshot", "snap#0", 2)
	tok := tap.Begin(0)
	tap.End(0, tok, history.KindUpdate, 7, 0)
	tok = tap.Begin(1)
	tap.EndVec(1, tok, []int64{7, 0})
	rec.Sync()
	dumps := rec.Dumps()
	var scan *history.Op
	for i := range dumps[0].Ops {
		if dumps[0].Ops[i].Kind == history.KindScan {
			scan = &dumps[0].Ops[i]
		}
	}
	if scan == nil || len(scan.RetVec) != 2 || scan.RetVec[0] != 7 {
		t.Fatalf("scan vector lost: %+v", dumps[0].Ops)
	}
	if rec.Stats().Violations != 0 {
		t.Fatalf("legal snapshot flagged: %+v", rec.Violations())
	}
}
