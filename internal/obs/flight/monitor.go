package flight

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/obs"
)

// Violation is one detected linearizability violation, with the window
// that exhibits it packaged as a self-contained repro artifact.
type Violation struct {
	Object string                  `json:"object"`
	Family string                  `json:"family"`
	Time   time.Time               `json:"time"`
	Err    *history.ViolationError `json:"violation"`
	// Dump is the offending window; re-check it offline with the batch
	// checkers or render it with cmd/simtrace -from-history.
	Dump *history.Dump `json:"dump"`
	// ArtifactPaths lists files written under Config.ArtifactDir, if any.
	ArtifactPaths []string `json:"artifacts,omitempty"`
}

type dumpReq struct{ reply chan []*history.Dump }

// Start launches the monitor goroutine. Register all taps first.
func (r *Recorder) Start() {
	r.mu.Lock()
	if r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.dumpsCh = make(chan dumpReq)
	r.mu.Unlock()
	go r.run()
}

// Stop halts the monitor after one final drain-and-check pass. It is safe
// to call once the workload's operations have completed; records from
// operations still in flight at Stop are not checked.
func (r *Recorder) Stop() {
	r.mu.Lock()
	if !r.started || r.stopped {
		r.stopped = true
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
}

// Sync forces a full drain-and-check pass and returns once it completes.
// Intended for tests and shutdown paths.
//
// Once Start has been called, the monitor goroutine owns the checker
// state until r.done closes — the stopped flag flips before the final
// drain pass runs, so Sync (and Dumps) must not use it to decide direct
// access; they wait on r.done instead.
func (r *Recorder) Sync() {
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if !started {
		r.cycleAll()
		return
	}
	ack := make(chan struct{})
	select {
	case r.kick <- ack:
		<-ack
	case <-r.done:
		r.cycleAll()
	}
}

func (r *Recorder) run() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			r.cycleAll()
			return
		case ack := <-r.kick:
			r.cycleAll()
			close(ack)
		case req := <-r.dumpsCh:
			req.reply <- r.buildDumps()
		case <-tick.C:
			r.cycleAll()
		}
	}
}

// cycleAll runs one drain-and-check pass over every tap. Taps cannot be
// registered after Start, so reading r.taps without the lock is safe
// here.
func (r *Recorder) cycleAll() {
	for _, t := range r.taps {
		r.cycle(t)
	}
}

// cycle is the per-tap monitor step. Order matters for soundness: the
// watermark is computed before the rings are drained, so every record it
// covers is already visible (see the package comment).
func (r *Recorder) cycle(t *Tap) {
	w := t.watermark()
	var drops int64
	var batch []history.Op
	for i := range t.procs {
		drops += t.procs[i].ring.drain(i, func(op history.Op) {
			batch = append(batch, op)
			t.appendRecent(op)
			t.recorded.Add(1)
		})
	}
	if drops > 0 {
		// Relax before admitting this batch so the records drained
		// alongside the gap land in the rebuilt stream.
		t.dropped.Add(drops)
		r.relaxTap(t)
	}
	for _, op := range batch {
		t.stream.Add(op)
	}
	v := t.stream.Advance(w)
	t.sealedTo.Store(w)
	t.pending.Store(int64(t.stream.Pending()))
	if v != nil && !t.violated {
		t.violated = true
		t.violatedBit.Store(true)
		r.report(t, v)
	}
}

// relaxTap degrades an exact-mode stream to relaxed after a ring gap: the
// surviving records are an arbitrary sub-history, so only the subset-sound
// conditions remain valid. The stream restarts empty — everything the old
// checker knew about the gap's neighborhood is suspect.
func (r *Recorder) relaxTap(t *Tap) {
	if t.relaxed {
		return // relaxed streams tolerate gaps natively
	}
	t.relaxed = true
	t.relaxedFlag.Store(true)
	t.stream = history.NewStream(history.NewIncremental(t.family, true))
}

func (t *Tap) appendRecent(op history.Op) {
	if cap(t.recent) == 0 {
		return
	}
	if len(t.recent) < cap(t.recent) {
		t.recent = append(t.recent, op)
	} else {
		t.recent[t.recentN%int64(cap(t.recent))] = op
	}
	t.recentN++
}

// recentOps copies the artifact window, oldest first.
func (t *Tap) recentOps() []history.Op {
	out := make([]history.Op, 0, len(t.recent))
	if len(t.recent) < cap(t.recent) {
		out = append(out, t.recent...)
		return out
	}
	start := t.recentN % int64(cap(t.recent))
	out = append(out, t.recent[start:]...)
	out = append(out, t.recent[:start]...)
	return out
}

// dump builds the tap's current window dump. Monitor goroutine (or
// post-Stop) only.
func (t *Tap) dump() *history.Dump {
	sum := t.stream.Summary()
	return &history.Dump{
		Schema:      history.DumpSchema,
		Name:        t.name,
		Family:      t.family,
		ClockUnit:   "ns-hybrid",
		SampleEvery: t.sample,
		Dropped:     t.dropped.Load(),
		Summary:     &sum,
		Violation:   t.stream.Violation(),
		Ops:         t.recentOps(),
	}
}

func (r *Recorder) buildDumps() []*history.Dump {
	taps := r.sortedTaps()
	out := make([]*history.Dump, 0, len(taps))
	for _, t := range taps {
		out = append(out, t.dump())
	}
	return out
}

// Dumps returns one window dump per tap. While the monitor runs, the
// request is serviced on the monitor goroutine so the windows are
// consistent; once the goroutine has exited (r.done closed) it reads
// directly. See Sync for why r.done, not the stopped flag, is the
// ownership boundary.
func (r *Recorder) Dumps() []*history.Dump {
	r.mu.Lock()
	started := r.started
	ch := r.dumpsCh
	r.mu.Unlock()
	if started {
		req := dumpReq{reply: make(chan []*history.Dump, 1)}
		select {
		case ch <- req:
			return <-req.reply
		case <-r.done:
		}
	}
	return r.buildDumps()
}

// report packages a violation and its repro artifact.
func (r *Recorder) report(t *Tap, verr *history.ViolationError) {
	v := &Violation{
		Object: t.name,
		Family: t.family,
		Time:   time.Now(),
		Err:    verr,
		Dump:   t.dump(),
	}
	if r.cfg.ArtifactDir != "" {
		v.ArtifactPaths = r.writeArtifacts(v)
	}
	r.violMu.Lock()
	if len(r.violations) < 64 {
		r.violations = append(r.violations, v)
	}
	r.violMu.Unlock()
	if r.cfg.OnViolation != nil {
		r.cfg.OnViolation(v)
	}
}

// writeArtifacts persists the violation window as history JSON plus
// Chrome-trace JSON. Failures are reported inside the artifact list
// rather than aborting the monitor.
func (r *Recorder) writeArtifacts(v *Violation) []string {
	base := filepath.Join(r.cfg.ArtifactDir, sanitize(v.Object)+"-violation")
	var paths []string

	histPath := base + ".history.json"
	hf, err := os.Create(histPath)
	if err == nil {
		err = history.WriteDump(hf, v.Dump)
		if cerr := hf.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		paths = append(paths, histPath)
	}

	tracePath := base + ".trace.json"
	tf, err := os.Create(tracePath)
	if err == nil {
		enc := json.NewEncoder(tf)
		enc.SetIndent("", "  ")
		err = enc.Encode(obs.HistoryTrace(v.Dump))
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		paths = append(paths, tracePath)
	}
	return paths
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// ArtifactDir returns the configured violation-artifact directory, ""
// when artifact writing is disabled.
func (r *Recorder) ArtifactDir() string { return r.cfg.ArtifactDir }

// SanitizeName maps an object name to the filesystem-safe form used in
// artifact file names.
func SanitizeName(name string) string { return sanitize(name) }

// Violations returns the detected violations so far.
func (r *Recorder) Violations() []*Violation {
	r.violMu.Lock()
	defer r.violMu.Unlock()
	return append([]*Violation(nil), r.violations...)
}

// TapStats is one tap's live counters.
type TapStats struct {
	Name     string `json:"name"`
	Family   string `json:"family"`
	Procs    int    `json:"procs"`
	Recorded int64  `json:"recorded"`
	Dropped  int64  `json:"dropped"`
	Pending  int64  `json:"pending"`
	SealedTo int64  `json:"sealed_to"`
	Relaxed  bool   `json:"relaxed"`
	Violated bool   `json:"violated"`
}

// Stats is a recorder-wide snapshot for the exposition layer.
type Stats struct {
	SampleEvery int        `json:"sample_every"`
	Recorded    int64      `json:"recorded"`
	Dropped     int64      `json:"dropped"`
	Pending     int64      `json:"pending"`
	Violations  int64      `json:"violations"`
	Taps        []TapStats `json:"taps"`
}

// Stats snapshots the recorder's counters. Safe to call from any
// goroutine at any time.
func (r *Recorder) Stats() Stats {
	st := Stats{SampleEvery: r.cfg.SampleEvery}
	for _, t := range r.sortedTaps() {
		ts := TapStats{
			Name:     t.name,
			Family:   t.family,
			Procs:    len(t.procs),
			Recorded: t.recorded.Load(),
			Dropped:  t.dropped.Load(),
			Pending:  t.pending.Load(),
			SealedTo: t.sealedTo.Load(),
			Relaxed:  t.relaxedFlag.Load(),
			Violated: t.violatedBit.Load(),
		}
		st.Recorded += ts.Recorded
		st.Dropped += ts.Dropped
		st.Pending += ts.Pending
		st.Taps = append(st.Taps, ts)
	}
	r.violMu.Lock()
	st.Violations = int64(len(r.violations))
	r.violMu.Unlock()
	return st
}
