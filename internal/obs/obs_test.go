package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

func TestInstrumentedCountsExactly(t *testing.T) {
	pool := primitive.NewPool()
	a := pool.New("a", 0)
	b := pool.New("b", 0)

	col := NewCollector(2, pool)
	ctx := col.Context(0, primitive.NewDirect(0))

	if got := ctx.ID(); got != 0 {
		t.Fatalf("ID = %d, want 0", got)
	}

	ctx.Write(a, 7)
	if v := ctx.Read(a); v != 7 {
		t.Fatalf("Read(a) = %d, want 7", v)
	}
	ctx.Read(b)
	if !ctx.CAS(a, 7, 8) {
		t.Fatal("CAS(a, 7, 8) failed")
	}
	if ctx.CAS(a, 7, 9) {
		t.Fatal("stale CAS succeeded")
	}

	if got := ctx.Steps(); got != 5 {
		t.Fatalf("Steps = %d, want 5", got)
	}

	st := col.Snapshot()
	if st.Reads != 2 || st.Writes != 1 || st.CASAttempts != 2 || st.CASFailures != 1 {
		t.Fatalf("Snapshot counters = %+v", st)
	}
	if len(st.Registers) != 2 {
		t.Fatalf("Registers = %+v, want 2 entries", st.Registers)
	}
	// a: 1 write + 1 read + 2 CAS attempts = 4; b: 1 read.
	if st.Registers[0].ID != a.ID() || st.Registers[0].Accesses != 4 {
		t.Fatalf("heatmap[a] = %+v, want 4 accesses", st.Registers[0])
	}
	if st.Registers[1].ID != b.ID() || st.Registers[1].Accesses != 1 {
		t.Fatalf("heatmap[b] = %+v, want 1 access", st.Registers[1])
	}
	if !strings.Contains(st.Registers[0].Name, "a") {
		t.Fatalf("heatmap[a].Name = %q, want the pool name", st.Registers[0].Name)
	}
	if st.HeatOverflow != 0 {
		t.Fatalf("HeatOverflow = %d, want 0", st.HeatOverflow)
	}
}

func TestLateRegistersLandInOverflow(t *testing.T) {
	pool := primitive.NewPool()
	early := pool.New("early", 0)

	col := NewCollector(1, pool)
	ctx := col.Context(0, primitive.NewDirect(0))

	late := pool.New("late", 0) // allocated after the collector sized its heatmap
	ctx.Read(early)
	ctx.Read(late)
	ctx.Write(late, 1)

	st := col.Snapshot()
	if st.HeatOverflow != 2 {
		t.Fatalf("HeatOverflow = %d, want 2", st.HeatOverflow)
	}
	if len(st.Registers) != 1 || st.Registers[0].Accesses != 1 {
		t.Fatalf("Registers = %+v, want only %q with 1 access", st.Registers, early.Name())
	}
}

// TestShardedMergeUnderRace spins one goroutine per process shard, all
// recording concurrently with scrapers, and checks the merged totals are
// exact. Run with -race to exercise the safety claim.
func TestShardedMergeUnderRace(t *testing.T) {
	const (
		procs   = 8
		perProc = 2000
	)
	pool := primitive.NewPool()
	regs := pool.NewSlice("r", 4, 0)
	col := NewCollector(procs, pool)
	op := col.Op("mixed")

	var scrapers, writers sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 3; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					col.Snapshot()
				}
			}
		}()
	}

	for p := 0; p < procs; p++ {
		writers.Add(1)
		go func(p int) {
			defer writers.Done()
			ctx := col.Context(p, primitive.NewDirect(p))
			for i := 0; i < perProc; i++ {
				sp := op.Begin(ctx)
				r := regs[i%len(regs)]
				ctx.Write(r, int64(i))
				ctx.Read(r)
				ctx.CAS(r, int64(i), int64(i+1))
				sp.End()
			}
		}(p)
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()

	st := col.Snapshot()
	total := int64(procs * perProc)
	if st.Writes != total || st.Reads != total || st.CASAttempts != total {
		t.Fatalf("merged counters = reads %d writes %d cas %d, want %d each",
			st.Reads, st.Writes, st.CASAttempts, total)
	}
	var heat int64
	for _, r := range st.Registers {
		heat += r.Accesses
	}
	if heat != 3*total {
		t.Fatalf("heatmap total = %d, want %d", heat, 3*total)
	}
	if len(st.Ops) != 1 || st.Ops[0].Name != "mixed" {
		t.Fatalf("Ops = %+v, want one op named mixed", st.Ops)
	}
	if st.Ops[0].Steps.Count != total {
		t.Fatalf("op count = %d, want %d", st.Ops[0].Steps.Count, total)
	}
	// Every span covered exactly 3 steps: bucket index of 3 is 2.
	if st.Ops[0].Steps.Buckets[2] != total {
		t.Fatalf("steps bucket[2] = %d, want %d", st.Ops[0].Steps.Buckets[2], total)
	}
	if st.Ops[0].LatencyNS.Count != total {
		t.Fatalf("latency count = %d, want %d", st.Ops[0].LatencyNS.Count, total)
	}
}

func TestOpSpanRecordsSteps(t *testing.T) {
	pool := primitive.NewPool()
	r := pool.New("r", 0)
	col := NewCollector(1, pool)
	// Freeze the clock so the latency histogram is deterministic too.
	fixed := time.Unix(0, 0)
	col.now = func() time.Time { return fixed }

	ctx := col.Context(0, primitive.NewDirect(0))
	op := col.Op("probe")

	sp := op.Begin(ctx)
	ctx.Read(r)
	ctx.Read(r)
	sp.End()

	st := col.Snapshot()
	if len(st.Ops) != 1 {
		t.Fatalf("Ops = %+v", st.Ops)
	}
	probe := st.Ops[0]
	if probe.Steps.Count != 1 || probe.Steps.Sum != 2 {
		t.Fatalf("Steps = %+v, want one observation of 2", probe.Steps)
	}
	if probe.LatencyNS.Count != 1 || probe.LatencyNS.Sum != 0 {
		t.Fatalf("LatencyNS = %+v, want one zero observation", probe.LatencyNS)
	}
}

func TestOpIsIdempotent(t *testing.T) {
	col := NewCollector(1, nil)
	if col.Op("x") != col.Op("x") {
		t.Fatal("Op returned distinct recorders for the same name")
	}
	if col.Op("x") == col.Op("y") {
		t.Fatal("distinct names share a recorder")
	}
}

func TestNewCollectorRejectsBadProcessCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCollector(0, nil) did not panic")
		}
	}()
	NewCollector(0, nil)
}

func TestContextRejectsBadID(t *testing.T) {
	col := NewCollector(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Context(2) did not panic")
		}
	}()
	col.Context(2, primitive.NewDirect(2))
}
