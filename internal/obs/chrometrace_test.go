package obs_test

import (
	"encoding/json"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/adversary"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
)

// theorem1Events runs the Theorem 1 adversary construction against the
// f-array counter and returns its event log.
func theorem1Events(t *testing.T, n int) []sim.Event {
	t.Helper()
	factory := adversary.CounterFactory(func(pool *primitive.Pool, n int) (counter.Counter, error) {
		return counter.NewFArray(pool, n)
	})
	res, err := adversary.RunCounterConstruction(factory, n, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("adversary run produced no events")
	}
	return res.Events
}

// TestChromeTraceTheorem1SchemaValid renders a real Theorem 1 adversary run
// and checks the output is valid Chrome-trace-event JSON: parseable, with
// every event carrying a known phase, microsecond timestamps matching the
// execution order, and the awareness counter tracks present.
func TestChromeTraceTheorem1SchemaValid(t *testing.T) {
	const n = 6
	events := theorem1Events(t, n)

	raw, err := obs.ChromeTrace(events, n)
	if err != nil {
		t.Fatal(err)
	}

	// Decode generically and validate the fields the viewers require.
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayTime string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}

	var slices, counters, meta int
	seenAW := map[string]bool{}
	seenME := false
	for i, ev := range tf.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok {
			t.Fatalf("event %d has no ph: %v", i, ev)
		}
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d has no numeric pid: %v", i, ev)
		}
		switch ph {
		case "M":
			meta++
		case "X":
			slices++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("slice %d has no numeric ts: %v", i, ev)
			}
			if dur, ok := ev["dur"].(float64); !ok || dur <= 0 {
				t.Fatalf("slice %d has no positive dur: %v", i, ev)
			}
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Fatalf("slice %d has no args: %v", i, ev)
			}
			for _, key := range []string{"seq", "proc", "reg", "before", "after"} {
				if _, ok := args[key]; !ok {
					t.Fatalf("slice %d args missing %q: %v", i, key, args)
				}
			}
		case "C":
			counters++
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Fatalf("counter %d has no args: %v", i, ev)
			}
			if _, ok := args["size"].(float64); !ok {
				t.Fatalf("counter %d args missing numeric size: %v", i, args)
			}
			if name == "M(E)" {
				seenME = true
			} else {
				seenAW[name] = true
			}
		default:
			t.Fatalf("event %d has unknown phase %q", i, ev["ph"])
		}
	}

	if slices != len(events) {
		t.Fatalf("emitted %d slices for %d sim events", slices, len(events))
	}
	if meta < n+1 {
		t.Fatalf("only %d metadata events for %d processes", meta, n)
	}
	if !seenME {
		t.Fatal("no M(E) counter track")
	}
	// The Lemma 1 rounds grow writer awareness, so at least one per-process
	// awareness track must have moved.
	if len(seenAW) == 0 {
		t.Fatal("no |AW(p)| counter samples")
	}
	if counters == 0 {
		t.Fatal("no counter events at all")
	}
}

// TestChromeTraceSliceOrder checks slices keep the execution order: ts
// equals the event's sequence number.
func TestChromeTraceSliceOrder(t *testing.T) {
	pool := primitive.NewPool()
	r := pool.New("r", 0)
	s := sim.NewSystem()
	defer s.Shutdown()
	if err := s.Spawn(0, func(ctx primitive.Context) { ctx.Write(r, 1); ctx.Read(r) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Spawn(1, func(ctx primitive.Context) { ctx.Read(r) }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}

	raw, err := obs.ChromeTrace(s.Events(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatal(err)
	}
	wantSeq := int64(0)
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts != wantSeq {
			t.Fatalf("slice ts = %d, want %d", ev.Ts, wantSeq)
		}
		wantSeq++
	}
	if wantSeq != int64(len(s.Events())) {
		t.Fatalf("saw %d slices, want %d", wantSeq, len(s.Events()))
	}
}

// TestChromeTraceInfersProcessCount checks n is raised to cover every
// process id in the log, so awareness replay cannot index out of range.
func TestChromeTraceInfersProcessCount(t *testing.T) {
	pool := primitive.NewPool()
	r := pool.New("r", 0)
	s := sim.NewSystem()
	defer s.Shutdown()
	if err := s.Spawn(2, func(ctx primitive.Context) { ctx.Write(r, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}

	// Deliberately pass n too small.
	raw, err := obs.ChromeTrace(s.Events(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Pid == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no metadata track for process 2")
	}
}

func TestChromeTraceRejectsEmptyLog(t *testing.T) {
	if _, err := obs.ChromeTrace(nil, 0); err == nil {
		t.Fatal("empty log with n=0 accepted")
	}
	// An empty log with an explicit process count is fine: just tracks.
	raw, err := obs.ChromeTrace(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatal(err)
	}
}
