// Package obs is the repository's live observability layer: a cheap,
// race-safe instrument for concurrent workloads running against the public
// objects, and exporters that make its measurements visible — Prometheus
// text exposition (obs/expo) and Chrome-trace-event JSON for simulated
// executions (ChromeTrace).
//
// Where primitive.Counting gives exact offline step accounting for a single
// process, obs.Collector observes a *running* multi-process workload: every
// process writes to its own shard (plain atomic adds on uncontended cache
// lines), and readers merge the shards on demand, so scraping never stalls
// the hot path. Recorded per object:
//
//   - per-primitive event counters (reads, writes, CAS attempts);
//   - CAS failure counters — the paper's contention signal: a failed CAS is
//     a retry some other process forced;
//   - log2-bucketed histograms of steps-per-operation and latency, keyed by
//     operation name (Read, WriteMax, Increment, Scan, ...);
//   - a per-register access heatmap keyed by primitive.Pool ids, which
//     shows exactly which base objects a workload hammers (for Algorithm A:
//     the root switch vs. the leaf registers).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// shard holds one process's counters. A shard has exactly one writer (the
// process owning the id) and any number of concurrent readers, so all
// fields are atomics; the trailing pad keeps adjacent heap allocations from
// false-sharing the hot counters.
type shard struct {
	reads        atomic.Int64
	writes       atomic.Int64
	casAttempts  atomic.Int64
	casFailures  atomic.Int64
	heatOverflow atomic.Int64

	heat []atomic.Int64 // per-register access counts, indexed by register id

	_ [24]byte
}

// steps returns the shard's total shared-memory events.
func (s *shard) steps() int64 {
	return s.reads.Load() + s.writes.Load() + s.casAttempts.Load()
}

// touch bumps the register's heatmap cell (or the overflow counter for ids
// allocated after the collector was built, e.g. by lazily-growing objects).
func (s *shard) touch(id int) {
	if id >= 0 && id < len(s.heat) {
		s.heat[id].Add(1)
	} else {
		s.heatOverflow.Add(1)
	}
}

// Collector aggregates observations for one shared object (one
// primitive.Pool). It is immutable after construction except through its
// per-process Instrumented contexts, so Snapshot may run concurrently with
// any number of writers.
type Collector struct {
	processes int
	pool      *primitive.Pool
	shards    []*shard

	mu  sync.Mutex
	ops map[string]*Op

	now func() time.Time // test hook; time.Now in production
}

// NewCollector builds a collector for process ids in [0, processes). The
// pool, if non-nil, fixes the heatmap size to the registers allocated so
// far and supplies register names at snapshot time; accesses to registers
// allocated later land in the overflow cell.
func NewCollector(processes int, pool *primitive.Pool) *Collector {
	if processes < 1 {
		panic(fmt.Sprintf("obs: NewCollector: processes must be >= 1, got %d", processes))
	}
	heatCap := 0
	if pool != nil {
		heatCap = pool.Len()
	}
	c := &Collector{
		processes: processes,
		pool:      pool,
		shards:    make([]*shard, processes),
		ops:       make(map[string]*Op),
		now:       time.Now,
	}
	for i := range c.shards {
		c.shards[i] = &shard{heat: make([]atomic.Int64, heatCap)}
	}
	return c
}

// Processes returns the number of process slots.
func (c *Collector) Processes() int { return c.processes }

// Context wraps inner in an Instrumented context writing to process id's
// shard. Like every primitive.Context, the result must be used by one
// goroutine at a time.
func (c *Collector) Context(id int, inner primitive.Context) *Instrumented {
	if id < 0 || id >= c.processes {
		panic(fmt.Sprintf("obs: Collector.Context(%d): process id out of range [0, %d)", id, c.processes))
	}
	return &Instrumented{inner: inner, col: c, sh: c.shards[id], idx: id}
}

// Op returns the named operation's recorder, creating it on first use. Op
// is safe for concurrent callers; the returned *Op should be cached (by a
// handle) rather than looked up per operation.
func (c *Collector) Op(name string) *Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := c.ops[name]
	if op == nil {
		op = &Op{
			name:    name,
			steps:   make([]Histogram, c.processes),
			latency: make([]Histogram, c.processes),
			margin:  make([]Histogram, c.processes),
			exceed:  make([]exceedShard, c.processes),
		}
		c.ops[name] = op
	}
	return op
}

// Snapshot merges every shard into one consistent-enough view (each counter
// is read atomically; the set as a whole is not a linearizable cut, which
// is fine for monitoring).
func (c *Collector) Snapshot() Stats {
	st := Stats{}
	heatCap := 0
	if len(c.shards) > 0 {
		heatCap = len(c.shards[0].heat)
	}
	heat := make([]int64, heatCap)
	for _, sh := range c.shards {
		st.Reads += sh.reads.Load()
		st.Writes += sh.writes.Load()
		st.CASAttempts += sh.casAttempts.Load()
		st.CASFailures += sh.casFailures.Load()
		st.HeatOverflow += sh.heatOverflow.Load()
		for i := range sh.heat {
			heat[i] += sh.heat[i].Load()
		}
	}

	var names []string
	if c.pool != nil {
		for _, r := range c.pool.Registers() {
			names = append(names, r.String())
		}
	}
	for id, n := range heat {
		if n == 0 {
			continue
		}
		reg := RegisterStats{ID: id, Name: fmt.Sprintf("reg#%d", id), Accesses: n}
		if id < len(names) {
			reg.Name = names[id]
		}
		st.Registers = append(st.Registers, reg)
	}

	c.mu.Lock()
	ops := make([]*Op, 0, len(c.ops))
	for _, op := range c.ops {
		ops = append(ops, op)
	}
	c.mu.Unlock()
	sort.Slice(ops, func(i, j int) bool { return ops[i].name < ops[j].name })
	for _, op := range ops {
		os := OpStats{Name: op.name}
		for i := range op.steps {
			op.steps[i].snapshotInto(&os.Steps)
			op.latency[i].snapshotInto(&os.LatencyNS)
		}
		op.boundStatsInto(&os)
		st.Ops = append(st.Ops, os)
	}
	return st
}

// Op records one named operation's steps-per-op and latency histograms,
// sharded per process like the counters, plus — when a certified step
// budget is armed via Collector.SetOpBound — the bound-conformance
// margin histograms and exceedance counters (see bound.go).
type Op struct {
	name    string
	steps   []Histogram
	latency []Histogram

	bound     atomic.Pointer[OpBoundConfig]
	margin    []Histogram
	exceed    []exceedShard
	violLatch atomic.Bool
}

// Name returns the operation name.
func (o *Op) Name() string { return o.name }

// Begin opens a span for one operation issued through ctx. The returned
// Span must be Ended by the same goroutine.
func (o *Op) Begin(ctx *Instrumented) Span {
	sp := Span{op: o, ctx: ctx, startSteps: ctx.sh.steps(), start: ctx.col.now()}
	if o.bound.Load() != nil {
		sp.startCASFails = ctx.sh.casFailures.Load()
	}
	return sp
}

// Span is an in-flight operation measurement.
type Span struct {
	op            *Op
	ctx           *Instrumented
	startSteps    int64
	startCASFails int64
	start         time.Time
}

// End closes the span, recording the operation's step count and latency,
// and scoring the step count against the armed bound, if any.
func (s Span) End() {
	idx := s.ctx.idx
	steps := s.ctx.sh.steps() - s.startSteps
	s.op.steps[idx].Observe(steps)
	s.op.latency[idx].Observe(s.ctx.col.now().Sub(s.start).Nanoseconds())
	if cfg := s.op.bound.Load(); cfg != nil {
		s.op.observeBound(cfg, idx, steps, s.ctx.sh.casFailures.Load()-s.startCASFails)
	}
}

// Instrumented is a primitive.Context that records every shared-memory
// event into its process's shard before delegating to the wrapped context.
// Overhead per event is a handful of uncontended atomic adds.
//
//tradeoffvet:outofband Instrumented is itself a per-process context: the wrapped inner context shares its process identity and call frames
type Instrumented struct {
	inner primitive.Context
	col   *Collector
	sh    *shard
	idx   int
}

var _ primitive.Context = (*Instrumented)(nil)

// ID implements primitive.Context.
func (c *Instrumented) ID() int { return c.inner.ID() }

// Read implements primitive.Context.
func (c *Instrumented) Read(r *primitive.Register) int64 {
	c.sh.reads.Add(1)
	c.sh.touch(r.ID())
	return c.inner.Read(r)
}

// Write implements primitive.Context.
func (c *Instrumented) Write(r *primitive.Register, v int64) {
	c.sh.writes.Add(1)
	c.sh.touch(r.ID())
	c.inner.Write(r, v)
}

// CAS implements primitive.Context. A false return is counted as a CAS
// failure: the register moved under the caller, i.e. contention.
func (c *Instrumented) CAS(r *primitive.Register, old, new int64) bool {
	c.sh.casAttempts.Add(1)
	c.sh.touch(r.ID())
	ok := c.inner.CAS(r, old, new)
	if !ok {
		c.sh.casFailures.Add(1)
	}
	return ok
}

// Steps returns the total shared-memory events recorded on this context's
// shard (all handles sharing the process id included).
func (c *Instrumented) Steps() int64 { return c.sh.steps() }

// Stats is a merged view of a Collector.
type Stats struct {
	Reads       int64
	Writes      int64
	CASAttempts int64
	CASFailures int64

	// Ops holds per-operation histograms, sorted by name.
	Ops []OpStats

	// Registers holds the access heatmap, sorted by register id; registers
	// never touched are omitted. HeatOverflow counts accesses to registers
	// allocated after the collector was built.
	Registers    []RegisterStats
	HeatOverflow int64
}

// OpStats is one operation's merged histograms.
type OpStats struct {
	Name      string
	Steps     HistogramSnapshot
	LatencyNS HistogramSnapshot

	// Bound is the bound-conformance view; Bound.Declared is false for
	// operations with no armed step budget.
	Bound OpBoundStats
}

// RegisterStats is one heatmap cell.
type RegisterStats struct {
	ID       int
	Name     string
	Accesses int64
}

// NamedStats pairs an object's name with its merged stats; it is the unit
// the exposition package renders.
type NamedStats struct {
	Object string
	Stats  Stats
}
