package obs

import (
	"encoding/json"
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/aware"
	"github.com/restricteduse/tradeoffs/internal/sim"
)

// TraceEvent is one entry of the Chrome trace-event format (the JSON
// consumed by Perfetto and chrome://tracing). Only the fields the exporter
// uses are modeled.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON-object form of a Chrome trace.
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// awarenessPid is the synthetic pid carrying the global M(E) counter track.
const awarenessPid = 1_000_000

// ChromeTrace converts a simulated execution's event log into Chrome
// trace-event JSON: one process track per simulated process with one slice
// per shared-memory event (1 µs of virtual time per execution position),
// plus counter tracks for the paper's information-flow measures — each
// process's awareness-set size |AW(p)| and the global maximum set size
// M(E) — recomputed incrementally with aware.Tracker as the log replays.
//
// n is the process-universe size for the awareness computation; pass 0 to
// infer it from the largest process id in the log. The output opens
// directly in https://ui.perfetto.dev.
func ChromeTrace(events []sim.Event, n int) ([]byte, error) {
	for _, ev := range events {
		if ev.Proc >= n {
			n = ev.Proc + 1
		}
	}
	if n <= 0 {
		return nil, fmt.Errorf("obs: ChromeTrace: empty event log and no process count")
	}

	tf := TraceFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"source": "tradeoffs internal/sim execution log",
			"events": len(events),
			"n":      n,
		},
		TraceEvents: make([]TraceEvent, 0, 3*len(events)+2*n+2),
	}

	for p := 0; p < n; p++ {
		tf.TraceEvents = append(tf.TraceEvents,
			TraceEvent{Name: "process_name", Ph: "M", Pid: p, Tid: p,
				Args: map[string]any{"name": fmt.Sprintf("p%d", p)}},
			TraceEvent{Name: "thread_name", Ph: "M", Pid: p, Tid: p,
				Args: map[string]any{"name": "shared-memory events"}},
		)
	}
	tf.TraceEvents = append(tf.TraceEvents,
		TraceEvent{Name: "process_name", Ph: "M", Pid: awarenessPid, Tid: 0,
			Args: map[string]any{"name": "information flow"}})

	tr := aware.NewTracker(n)
	lastAW := make([]int, n)
	for p := range lastAW {
		lastAW[p] = 1 // every process starts aware of itself
	}
	lastM := 0
	for _, ev := range events {
		ts := int64(ev.Seq)
		args := map[string]any{
			"seq":    ev.Seq,
			"proc":   ev.Proc,
			"reg":    ev.Reg.String(),
			"before": ev.Before,
			"after":  ev.After,
		}
		switch ev.Kind {
		case sim.OpWrite:
			args["value"] = ev.Value
		case sim.OpCAS:
			args["old"] = ev.Old
			args["new"] = ev.New
			args["ok"] = ev.CASOK
		}
		if ev.Changed {
			args["visible-change"] = true
		}
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: fmt.Sprintf("%s %s", ev.Kind, ev.Reg),
			Ph:   "X",
			Ts:   ts,
			Dur:  1,
			Pid:  ev.Proc,
			Tid:  ev.Proc,
			Args: args,
		})

		tr.Apply(ev)
		// Counter samples only when a value moves, to keep traces small.
		if ev.Proc < n {
			if aw := tr.AwarenessCount(ev.Proc); aw != lastAW[ev.Proc] {
				lastAW[ev.Proc] = aw
				tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
					Name: fmt.Sprintf("|AW(p%d)|", ev.Proc),
					Ph:   "C",
					Ts:   ts + 1,
					Pid:  ev.Proc,
					Tid:  ev.Proc,
					Args: map[string]any{"size": aw},
				})
			}
		}
		if m := tr.MaxSetSize(); m != lastM {
			lastM = m
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: "M(E)",
				Ph:   "C",
				Ts:   ts + 1,
				Pid:  awarenessPid,
				Args: map[string]any{"size": m},
			})
		}
	}

	return json.MarshalIndent(tf, "", " ")
}
