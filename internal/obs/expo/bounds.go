package expo

import (
	"fmt"
	"io"
	"net/http"

	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/obs/bounds"
)

// ExemplarSource returns the latched bound-violation exemplars at
// request time, or nil when bound conformance is not wired. Evaluated
// per request, like FlightSource.
type ExemplarSource func() []*bounds.Exemplar

// Bound-conformance metric names, shared with the golden test.
const (
	metricBoundSteps      = "tradeoffs_bound_steps"
	metricBoundMargin     = "tradeoffs_bound_margin"
	metricBoundExceed     = "tradeoffs_bound_exceedances_total"
	metricBoundViolations = "tradeoffs_bound_violations_total"
)

// anyBounds reports whether any operation carries an armed step budget;
// the bound series are omitted entirely otherwise.
func anyBounds(all []obs.NamedStats) bool {
	for _, ns := range all {
		for _, op := range ns.Stats.Ops {
			if op.Bound.Declared {
				return true
			}
		}
	}
	return false
}

// writeBoundMetrics renders the bound-conformance series: the
// instantiated budgets as gauges, the margin histogram
// (observed/bound, le rendered as a ratio), the uncontended-exceedance
// split, and the worst-case violation counter.
func writeBoundMetrics(w io.Writer, all []obs.NamedStats) {
	if !anyBounds(all) {
		return
	}

	fmt.Fprintf(w, "# HELP %s Instantiated certified step budget per operation.\n", metricBoundSteps)
	fmt.Fprintf(w, "# TYPE %s gauge\n", metricBoundSteps)
	for _, ns := range all {
		obj := escapeLabel(ns.Object)
		for _, op := range ns.Stats.Ops {
			if !op.Bound.Declared {
				continue
			}
			if op.Bound.Worst > 0 {
				fmt.Fprintf(w, "%s{object=\"%s\",op=\"%s\",mode=\"worst-case\"} %d\n",
					metricBoundSteps, obj, escapeLabel(op.Name), op.Bound.Worst)
			}
			if op.Bound.Uncontended > 0 {
				fmt.Fprintf(w, "%s{object=\"%s\",op=\"%s\",mode=\"uncontended\"} %d\n",
					metricBoundSteps, obj, escapeLabel(op.Name), op.Bound.Uncontended)
			}
		}
	}

	fmt.Fprintf(w, "# HELP %s Observed steps as a fraction of the certified budget (1 = at the bound).\n", metricBoundMargin)
	fmt.Fprintf(w, "# TYPE %s histogram\n", metricBoundMargin)
	for _, ns := range all {
		for _, op := range ns.Stats.Ops {
			if op.Bound.Declared {
				writeHistogram(w, metricBoundMargin, ns.Object, op.Name, &op.Bound.Margin, marginBound)
			}
		}
	}

	fmt.Fprintf(w, "# HELP %s Operations exceeding their uncontended budget, by cause.\n", metricBoundExceed)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricBoundExceed)
	for _, ns := range all {
		obj := escapeLabel(ns.Object)
		for _, op := range ns.Stats.Ops {
			if !op.Bound.Declared {
				continue
			}
			fmt.Fprintf(w, "%s{object=\"%s\",op=\"%s\",cause=\"cas-retries\"} %d\n",
				metricBoundExceed, obj, escapeLabel(op.Name), op.Bound.ExceedExplained)
			fmt.Fprintf(w, "%s{object=\"%s\",op=\"%s\",cause=\"amortized\"} %d\n",
				metricBoundExceed, obj, escapeLabel(op.Name), op.Bound.ExceedAmortized)
			fmt.Fprintf(w, "%s{object=\"%s\",op=\"%s\",cause=\"unexplained\"} %d\n",
				metricBoundExceed, obj, escapeLabel(op.Name), op.Bound.ExceedUnexplained)
		}
	}

	fmt.Fprintf(w, "# HELP %s Operations exceeding their worst-case certified bound (each one falsifies the certification).\n", metricBoundViolations)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricBoundViolations)
	for _, ns := range all {
		obj := escapeLabel(ns.Object)
		for _, op := range ns.Stats.Ops {
			if !op.Bound.Declared {
				continue
			}
			fmt.Fprintf(w, "%s{object=\"%s\",op=\"%s\"} %d\n",
				metricBoundViolations, obj, escapeLabel(op.Name), op.Bound.Violations)
		}
	}
}

// marginBound renders a margin histogram's le bound: the log2 bucket
// bound rescaled from MarginScale fixed-point to a ratio.
func marginBound(i int) string {
	return fmt.Sprintf("%g", float64(obs.BucketBound(i))/obs.MarginScale)
}

// WriteBoundsTable renders the /debug/bounds text view: one row per
// bounded operation with its instantiated budgets, live p99 step count,
// p99 margin, exceedance split and violation count, followed by the
// latched violation exemplars.
func WriteBoundsTable(w io.Writer, all []obs.NamedStats, exemplars []*bounds.Exemplar) {
	fmt.Fprintf(w, "%-24s %-12s %8s %8s %10s %8s %12s %6s %12s %6s\n",
		"OBJECT", "OP", "WORST", "UNCONT", "P99STEPS", "P99MARG", "EXCEED(CAS)", "AMORT", "UNEXPLAINED", "VIOL")
	rows := 0
	for _, ns := range all {
		for _, op := range ns.Stats.Ops {
			b := op.Bound
			if !b.Declared {
				continue
			}
			rows++
			fmt.Fprintf(w, "%-24s %-12s %8s %8s %10d %8.3f %12d %6d %12d %6d\n",
				ns.Object, op.Name, orDash(b.Worst), orDash(b.Uncontended),
				op.Steps.Quantile(0.99),
				float64(b.Margin.Quantile(0.99))/obs.MarginScale,
				b.ExceedExplained, b.ExceedAmortized, b.ExceedUnexplained, b.Violations)
		}
	}
	if rows == 0 {
		fmt.Fprintf(w, "(no operations with certified bounds)\n")
	}
	fmt.Fprintf(w, "\nbound expressions:\n")
	for _, ns := range all {
		for _, op := range ns.Stats.Ops {
			b := op.Bound
			if !b.Declared {
				continue
			}
			if b.WorstExpr != "" {
				fmt.Fprintf(w, "  %s %s worst-case: steps <= %s = %d\n", ns.Object, op.Name, b.WorstExpr, b.Worst)
			}
			if b.UncontendedExpr != "" {
				fmt.Fprintf(w, "  %s %s uncontended: steps <= %s = %d\n", ns.Object, op.Name, b.UncontendedExpr, b.Uncontended)
			}
		}
	}
	fmt.Fprintf(w, "\nviolation exemplars: %d\n", len(exemplars))
	for _, e := range exemplars {
		fmt.Fprintf(w, "  %s %s: observed %d steps > bound %d (%s); dump: GET /debug/bounds?exemplars=1\n",
			e.Object, e.Op, e.Observed, e.Bound, e.Expr)
	}
}

func orDash(v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// boundsHandler serves /debug/bounds: the text table by default, or the
// latched exemplars as re-checkable JSON with ?exemplars=1.
func boundsHandler(gather Gatherer, ex ExemplarSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var exs []*bounds.Exemplar
		if ex != nil {
			exs = ex()
		}
		if r.URL.Query().Get("exemplars") != "" {
			w.Header().Set("Content-Type", "application/json")
			if exs == nil {
				io.WriteString(w, "[]\n")
				return
			}
			writeExemplarsJSON(w, exs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteBoundsTable(w, gather(), exs)
	}
}

func writeExemplarsJSON(w http.ResponseWriter, exs []*bounds.Exemplar) {
	io.WriteString(w, "[")
	for i, e := range exs {
		if i > 0 {
			io.WriteString(w, ",")
		}
		io.WriteString(w, "\n")
		if err := bounds.WriteExemplar(w, e); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	io.WriteString(w, "]\n")
}

// debugEndpoints is the /debug index: every endpoint DebugMuxWith
// mounts, with a one-line description.
var debugEndpoints = []struct{ Path, Doc string }{
	{"/metrics", "Prometheus text exposition (objects, ops, bounds, flight recorder)"},
	{"/debug/bounds", "certified step-bound conformance: budgets, margins, exceedances, exemplars"},
	{"/debug/history", "flight-recorder windows as re-checkable history dumps (JSON)"},
	{"/debug/violations", "latched linearizability violations (JSON)"},
	{"/debug/vars", "expvar JSON"},
	{"/debug/pprof/", "runtime profiling index"},
}

// debugIndex serves a minimal HTML index of the mounted endpoints so
// operators can discover them from the mux root.
func debugIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, "<!doctype html>\n<title>tradeoffs debug</title>\n<h1>tradeoffs debug endpoints</h1>\n<ul>\n")
	for _, ep := range debugEndpoints {
		fmt.Fprintf(w, "<li><a href=\"%s\">%s</a> — %s</li>\n", ep.Path, ep.Path, ep.Doc)
	}
	io.WriteString(w, "</ul>\n")
}
