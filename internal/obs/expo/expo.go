// Package expo exposes obs measurements over HTTP using only the standard
// library: Prometheus-text-format exposition on /metrics, expvar on
// /debug/vars, and runtime profiling on /debug/pprof. A workload wires it
// up with one line:
//
//	http.ListenAndServe(addr, expo.DebugMux(gather))
//
// where gather returns the current []obs.NamedStats (one entry per
// observed object). The text format follows the Prometheus exposition
// format v0.0.4; histogram buckets are the log2 buckets of obs.Histogram
// rendered cumulatively with `le` labels.
package expo

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/restricteduse/tradeoffs/internal/obs"
)

// Gatherer returns the current stats of every observed object. It is
// called once per scrape and may be invoked concurrently.
type Gatherer func() []obs.NamedStats

// Handler returns an http.Handler serving the Prometheus text exposition
// of gather's objects.
func Handler(gather Gatherer) http.Handler {
	return HandlerWith(gather, nil)
}

// DebugMux returns a mux serving a /debug index, /metrics (Prometheus
// text), /debug/bounds (step-bound conformance), /debug/vars (expvar
// JSON), and the /debug/pprof profiling endpoints. See DebugMuxWith to
// add a flight recorder's endpoints and a bound-exemplar source.
func DebugMux(gather Gatherer) *http.ServeMux {
	return DebugMuxWith(gather, nil, nil)
}

// metric name constants, shared with the golden test.
const (
	metricPrimitiveOps     = "tradeoffs_primitive_ops_total"
	metricCASFailures      = "tradeoffs_cas_failures_total"
	metricOpSteps          = "tradeoffs_op_steps"
	metricOpLatency        = "tradeoffs_op_latency_seconds"
	metricRegisterAccesses = "tradeoffs_register_accesses_total"
	metricHeatOverflow     = "tradeoffs_register_access_overflow_total"
)

// WriteMetrics renders the full exposition to w. Output is deterministic
// for a given input: objects appear in the order given, operations and
// registers in their (already sorted) Stats order.
func WriteMetrics(w io.Writer, all []obs.NamedStats) {
	fmt.Fprintf(w, "# HELP %s Shared-memory events by primitive (CAS counts attempts).\n", metricPrimitiveOps)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricPrimitiveOps)
	for _, ns := range all {
		obj := escapeLabel(ns.Object)
		fmt.Fprintf(w, "%s{object=\"%s\",primitive=\"read\"} %d\n", metricPrimitiveOps, obj, ns.Stats.Reads)
		fmt.Fprintf(w, "%s{object=\"%s\",primitive=\"write\"} %d\n", metricPrimitiveOps, obj, ns.Stats.Writes)
		fmt.Fprintf(w, "%s{object=\"%s\",primitive=\"cas\"} %d\n", metricPrimitiveOps, obj, ns.Stats.CASAttempts)
	}

	fmt.Fprintf(w, "# HELP %s Failed CAS attempts: another process moved the register first (contention).\n", metricCASFailures)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricCASFailures)
	for _, ns := range all {
		fmt.Fprintf(w, "%s{object=\"%s\"} %d\n", metricCASFailures, escapeLabel(ns.Object), ns.Stats.CASFailures)
	}

	fmt.Fprintf(w, "# HELP %s Shared-memory steps per operation.\n", metricOpSteps)
	fmt.Fprintf(w, "# TYPE %s histogram\n", metricOpSteps)
	for _, ns := range all {
		for _, op := range ns.Stats.Ops {
			writeHistogram(w, metricOpSteps, ns.Object, op.Name, &op.Steps, stepsBound)
		}
	}

	fmt.Fprintf(w, "# HELP %s Operation latency.\n", metricOpLatency)
	fmt.Fprintf(w, "# TYPE %s histogram\n", metricOpLatency)
	for _, ns := range all {
		for _, op := range ns.Stats.Ops {
			writeHistogram(w, metricOpLatency, ns.Object, op.Name, &op.LatencyNS, secondsBound)
		}
	}

	writeBoundMetrics(w, all)

	fmt.Fprintf(w, "# HELP %s Accesses per base register (heatmap).\n", metricRegisterAccesses)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricRegisterAccesses)
	for _, ns := range all {
		obj := escapeLabel(ns.Object)
		for _, reg := range ns.Stats.Registers {
			fmt.Fprintf(w, "%s{object=\"%s\",register=\"%s\"} %d\n",
				metricRegisterAccesses, obj, escapeLabel(reg.Name), reg.Accesses)
		}
	}

	fmt.Fprintf(w, "# HELP %s Accesses to registers allocated after instrumentation was attached.\n", metricHeatOverflow)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricHeatOverflow)
	for _, ns := range all {
		fmt.Fprintf(w, "%s{object=\"%s\"} %d\n", metricHeatOverflow, escapeLabel(ns.Object), ns.Stats.HeatOverflow)
	}
}

// stepsBound renders a step histogram's le bound: the integer BucketBound.
func stepsBound(i int) string {
	return fmt.Sprintf("%d", obs.BucketBound(i))
}

// secondsBound renders a latency bound: BucketBound nanoseconds, in seconds.
func secondsBound(i int) string {
	return fmt.Sprintf("%g", float64(obs.BucketBound(i))/1e9)
}

// writeHistogram renders one (metric, object, op) histogram with cumulative
// le buckets, up to the highest non-empty bucket, then +Inf, sum, count.
// The latency sum is in the bound's unit only for steps; for latency the
// sum is converted from nanoseconds by the bound function's unit — callers
// pass the matching bound renderer and WriteMetrics converts the sum below.
func writeHistogram(w io.Writer, metric, object, op string, h *obs.HistogramSnapshot, bound func(int) string) {
	obj := escapeLabel(object)
	opl := escapeLabel(op)
	cum := int64(0)
	for i := 0; i <= h.MaxBucket(); i++ {
		cum += h.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{object=\"%s\",op=\"%s\",le=\"%s\"} %d\n", metric, obj, opl, bound(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{object=\"%s\",op=\"%s\",le=\"+Inf\"} %d\n", metric, obj, opl, h.Count)
	if metric == metricOpLatency {
		fmt.Fprintf(w, "%s_sum{object=\"%s\",op=\"%s\"} %g\n", metric, obj, opl, float64(h.Sum)/1e9)
	} else {
		fmt.Fprintf(w, "%s_sum{object=\"%s\",op=\"%s\"} %d\n", metric, obj, opl, h.Sum)
	}
	fmt.Fprintf(w, "%s_count{object=\"%s\",op=\"%s\"} %d\n", metric, obj, opl, h.Count)
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}
