package expo

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/obs"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// goldenStats builds a fixed []obs.NamedStats by hand, so the exposition is
// byte-for-byte deterministic (a live Collector's latency histogram is not).
func goldenStats() []obs.NamedStats {
	var steps obs.HistogramSnapshot
	steps.Buckets[0] = 1 // one op took 0 steps
	steps.Buckets[2] = 2 // two ops took 2-3 steps
	steps.Count = 3
	steps.Sum = 6

	var latency obs.HistogramSnapshot
	latency.Buckets[1] = 3 // three ops took 1 ns
	latency.Count = 3
	latency.Sum = 3

	return []obs.NamedStats{
		{
			Object: "served",
			Stats: obs.Stats{
				Reads:        10,
				Writes:       5,
				CASAttempts:  7,
				CASFailures:  2,
				Ops:          []obs.OpStats{{Name: "increment", Steps: steps, LatencyNS: latency}},
				Registers:    []obs.RegisterStats{{ID: 0, Name: "root", Accesses: 12}},
				HeatOverflow: 1,
			},
		},
		// Second object: zero stats plus a label value needing escaping.
		{Object: `q"x`},
	}
}

const golden = `# HELP tradeoffs_primitive_ops_total Shared-memory events by primitive (CAS counts attempts).
# TYPE tradeoffs_primitive_ops_total counter
tradeoffs_primitive_ops_total{object="served",primitive="read"} 10
tradeoffs_primitive_ops_total{object="served",primitive="write"} 5
tradeoffs_primitive_ops_total{object="served",primitive="cas"} 7
tradeoffs_primitive_ops_total{object="q\"x",primitive="read"} 0
tradeoffs_primitive_ops_total{object="q\"x",primitive="write"} 0
tradeoffs_primitive_ops_total{object="q\"x",primitive="cas"} 0
# HELP tradeoffs_cas_failures_total Failed CAS attempts: another process moved the register first (contention).
# TYPE tradeoffs_cas_failures_total counter
tradeoffs_cas_failures_total{object="served"} 2
tradeoffs_cas_failures_total{object="q\"x"} 0
# HELP tradeoffs_op_steps Shared-memory steps per operation.
# TYPE tradeoffs_op_steps histogram
tradeoffs_op_steps_bucket{object="served",op="increment",le="0"} 1
tradeoffs_op_steps_bucket{object="served",op="increment",le="1"} 1
tradeoffs_op_steps_bucket{object="served",op="increment",le="3"} 3
tradeoffs_op_steps_bucket{object="served",op="increment",le="+Inf"} 3
tradeoffs_op_steps_sum{object="served",op="increment"} 6
tradeoffs_op_steps_count{object="served",op="increment"} 3
# HELP tradeoffs_op_latency_seconds Operation latency.
# TYPE tradeoffs_op_latency_seconds histogram
tradeoffs_op_latency_seconds_bucket{object="served",op="increment",le="0"} 0
tradeoffs_op_latency_seconds_bucket{object="served",op="increment",le="1e-09"} 3
tradeoffs_op_latency_seconds_bucket{object="served",op="increment",le="+Inf"} 3
tradeoffs_op_latency_seconds_sum{object="served",op="increment"} 3e-09
tradeoffs_op_latency_seconds_count{object="served",op="increment"} 3
# HELP tradeoffs_register_accesses_total Accesses per base register (heatmap).
# TYPE tradeoffs_register_accesses_total counter
tradeoffs_register_accesses_total{object="served",register="root"} 12
# HELP tradeoffs_register_access_overflow_total Accesses to registers allocated after instrumentation was attached.
# TYPE tradeoffs_register_access_overflow_total counter
tradeoffs_register_access_overflow_total{object="served"} 1
tradeoffs_register_access_overflow_total{object="q\"x"} 0
`

func TestWriteMetricsGolden(t *testing.T) {
	var buf strings.Builder
	WriteMetrics(&buf, goldenStats())
	if got := buf.String(); got != golden {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

func TestHandlerContentTypeAndBody(t *testing.T) {
	h := Handler(func() []obs.NamedStats { return goldenStats() })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if rec.Body.String() != golden {
		t.Fatalf("handler body diverges from WriteMetrics output:\n%s", rec.Body.String())
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	mux := DebugMux(func() []obs.NamedStats { return nil })
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}

// TestExpositionFromLiveCollector renders a real instrumented workload and
// checks the structural pieces a Prometheus scraper relies on, without
// pinning timing-dependent bytes.
func TestExpositionFromLiveCollector(t *testing.T) {
	pool := primitive.NewPool()
	r := pool.New("cell", 0)
	col := obs.NewCollector(1, pool)
	ctx := col.Context(0, primitive.NewDirect(0))
	op := col.Op("write")
	for i := 0; i < 4; i++ {
		sp := op.Begin(ctx)
		ctx.Write(r, int64(i))
		sp.End()
	}
	ctx.CAS(r, -1, 0) // guaranteed failure

	var buf strings.Builder
	WriteMetrics(&buf, []obs.NamedStats{{Object: "live", Stats: col.Snapshot()}})
	text := buf.String()
	for _, want := range []string{
		`tradeoffs_primitive_ops_total{object="live",primitive="write"} 4`,
		`tradeoffs_cas_failures_total{object="live"} 1`,
		`tradeoffs_op_steps_bucket{object="live",op="write",le="1"} 4`,
		`tradeoffs_op_steps_count{object="live",op="write"} 4`,
		`tradeoffs_op_latency_seconds_count{object="live",op="write"} 4`,
		`register="` + r.String() + `"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("escapeLabel = %q", got)
	}
}
