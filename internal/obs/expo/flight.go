package expo

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/obs/flight"
)

// FlightStatsSource returns the flight recorder's stats at scrape time,
// or nil when no recorder is attached.
type FlightStatsSource func() *flight.Stats

// FlightSource returns the attached flight recorder, or nil. Evaluated
// per request so a recorder linked after mux construction still shows.
type FlightSource func() *flight.Recorder

// Flight recorder metric names, shared with the golden test.
const (
	metricFlightSample     = "tradeoffs_flight_sample_every"
	metricFlightRecorded   = "tradeoffs_flight_recorded_total"
	metricFlightDropped    = "tradeoffs_flight_dropped_total"
	metricFlightPending    = "tradeoffs_flight_pending_records"
	metricFlightRelaxed    = "tradeoffs_flight_relaxed"
	metricFlightViolations = "tradeoffs_flight_violations_total"
)

// WriteFlightMetrics renders the flight recorder's exposition: per-tap
// record/drop counters, the monitor's lag (records buffered awaiting
// the watermark), the relaxed-mode flag, and the per-object violation
// latch.
func WriteFlightMetrics(w io.Writer, st flight.Stats) {
	fmt.Fprintf(w, "# HELP %s One in how many operations per process the flight recorder records.\n", metricFlightSample)
	fmt.Fprintf(w, "# TYPE %s gauge\n", metricFlightSample)
	fmt.Fprintf(w, "%s %d\n", metricFlightSample, st.SampleEvery)

	fmt.Fprintf(w, "# HELP %s Operation records drained from the flight recorder rings.\n", metricFlightRecorded)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricFlightRecorded)
	for _, t := range st.Taps {
		fmt.Fprintf(w, "%s{object=\"%s\"} %d\n", metricFlightRecorded, escapeLabel(t.Name), t.Recorded)
	}

	fmt.Fprintf(w, "# HELP %s Records lost to ring overwrites (a drop degrades checking to the subset-sound conditions).\n", metricFlightDropped)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricFlightDropped)
	for _, t := range st.Taps {
		fmt.Fprintf(w, "%s{object=\"%s\"} %d\n", metricFlightDropped, escapeLabel(t.Name), t.Dropped)
	}

	fmt.Fprintf(w, "# HELP %s Records buffered awaiting the admission watermark (monitor lag).\n", metricFlightPending)
	fmt.Fprintf(w, "# TYPE %s gauge\n", metricFlightPending)
	for _, t := range st.Taps {
		fmt.Fprintf(w, "%s{object=\"%s\"} %d\n", metricFlightPending, escapeLabel(t.Name), t.Pending)
	}

	fmt.Fprintf(w, "# HELP %s 1 when the object's checker runs the subset-sound conditions only (sampling or drops).\n", metricFlightRelaxed)
	fmt.Fprintf(w, "# TYPE %s gauge\n", metricFlightRelaxed)
	for _, t := range st.Taps {
		fmt.Fprintf(w, "%s{object=\"%s\"} %d\n", metricFlightRelaxed, escapeLabel(t.Name), b2i(t.Relaxed))
	}

	fmt.Fprintf(w, "# HELP %s Linearizability violations detected (latched: at most 1 per object).\n", metricFlightViolations)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricFlightViolations)
	for _, t := range st.Taps {
		fmt.Fprintf(w, "%s{object=\"%s\"} %d\n", metricFlightViolations, escapeLabel(t.Name), b2i(t.Violated))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// HandlerWith returns the /metrics handler covering gather's objects
// plus, when fstats yields a non-nil snapshot, the flight recorder
// series.
func HandlerWith(gather Gatherer, fstats FlightStatsSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, gather())
		if fstats != nil {
			if st := fstats(); st != nil {
				WriteFlightMetrics(w, *st)
			}
		}
	})
}

// DebugMuxWith is DebugMux plus the flight recorder and bound-
// conformance endpoints: /debug/history serves the recorder's current
// per-object windows as a JSON array of history dumps (each
// re-checkable offline and renderable with cmd/simtrace
// -from-history), /debug/violations the detected linearizability
// violations, and /debug/bounds the certified step-bound conformance
// table (with the latched violation exemplars as re-checkable JSON
// under ?exemplars=1). Without a recorder the flight endpoints serve an
// empty array; ex may be nil. A root /debug index links everything.
func DebugMuxWith(gather Gatherer, src FlightSource, ex ExemplarSource) *http.ServeMux {
	mux := http.NewServeMux()
	var fstats FlightStatsSource
	if src != nil {
		fstats = func() *flight.Stats {
			rec := src()
			if rec == nil {
				return nil
			}
			st := rec.Stats()
			return &st
		}
	}
	mux.Handle("/metrics", HandlerWith(gather, fstats))
	mux.HandleFunc("/debug", debugIndex)
	mux.HandleFunc("/debug/{$}", debugIndex)
	mux.Handle("/debug/bounds", boundsHandler(gather, ex))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Nil slices render as an empty array, not null: scrapers treat both
	// endpoints as always-a-list.
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		serveFlightJSON(w, src, func(rec *flight.Recorder) any {
			if d := rec.Dumps(); d != nil {
				return d
			}
			return []*history.Dump{}
		})
	})
	mux.HandleFunc("/debug/violations", func(w http.ResponseWriter, r *http.Request) {
		serveFlightJSON(w, src, func(rec *flight.Recorder) any {
			if v := rec.Violations(); v != nil {
				return v
			}
			return []*flight.Violation{}
		})
	})
	return mux
}

// serveFlightJSON writes payload(rec) as indented JSON, or [] when no
// recorder is attached.
func serveFlightJSON(w http.ResponseWriter, src FlightSource, payload func(*flight.Recorder) any) {
	w.Header().Set("Content-Type", "application/json")
	var rec *flight.Recorder
	if src != nil {
		rec = src()
	}
	if rec == nil {
		io.WriteString(w, "[]\n")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload(rec)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
