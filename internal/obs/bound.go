package obs

import "sync/atomic"

// Bound conformance: an Op can carry the operation's certified step
// budgets (instantiated by internal/obs/bounds from the tradeoffvet
// bound table) and then scores every completed span against them:
//
//   - a bound-margin histogram of observed*MarginScale/bound — the
//     live distribution of how much of the certified budget each
//     operation actually used (sharded per process like every other
//     collector, so recording never contends);
//   - an uncontended-exceedance counter, split into exceedances
//     explained by CAS retries (the span saw at least one failed CAS,
//     i.e. real contention) vs unexplained (a model discrepancy);
//   - a worst-case violation counter plus a one-shot latched callback,
//     which the facade uses to capture a re-checkable exemplar. A
//     worst-case bound is unconditional, so a single violation is
//     evidence against the certification — one exemplar suffices and
//     keeps the capture cost off the steady-state hot path.

// MarginScale is the fixed-point scale of the bound-margin histogram:
// an observation of MarginScale means the operation used exactly its
// certified budget; MarginScale/2 means half of it.
const MarginScale = 1024

// OpBoundConfig carries one operation's instantiated step budgets. A
// zero Worst (or Uncontended) means that mode was not certified. The
// expressions are the symbolic forms the budgets were instantiated
// from, carried for exposition.
type OpBoundConfig struct {
	Worst           int64
	Uncontended     int64
	WorstExpr       string
	UncontendedExpr string
	// Amortized marks the exceedance threshold (the uncontended budget,
	// or the worst-case one when no uncontended bound exists) as an
	// amortized bound: the certified function defers maintenance, so a
	// span may exceed the budget without CAS failures and without
	// contradicting the certification. Such exceedances are counted
	// under their own cause instead of "unexplained".
	Amortized bool
	// OnViolation, if set, fires at most once per Op — on the first
	// observed worst-case bound violation, from the violating
	// process's goroutine.
	OnViolation func(BoundViolation)
}

// BoundViolation describes the first worst-case bound violation
// observed on an operation.
type BoundViolation struct {
	Op       string
	Process  int
	Observed int64 // exact step count of the violating span
	Bound    int64 // instantiated worst-case budget it exceeded
}

// exceedShard is one process's exceedance counters; padded like shard
// so adjacent entries do not false-share.
type exceedShard struct {
	explained   atomic.Int64
	amortized   atomic.Int64
	unexplained atomic.Int64
	violations  atomic.Int64
	_           [32]byte
}

// SetOpBound arms bound conformance for the named operation. It may be
// called at any time — the configuration is published atomically and
// spans pick it up on their next End — but budgets are meant to be set
// once at object construction, before the workload runs.
func (c *Collector) SetOpBound(name string, cfg OpBoundConfig) {
	if cfg.Worst == 0 && cfg.Uncontended == 0 {
		return
	}
	op := c.Op(name)
	op.bound.Store(&cfg)
}

// observeBound scores one completed span against the armed budgets.
// steps is the span's exact step count, casFails the CAS failures the
// span's process recorded while the span was open.
func (o *Op) observeBound(cfg *OpBoundConfig, idx int, steps, casFails int64) {
	// Margin is measured against the tightest unconditional budget we
	// have: the worst-case bound, or the uncontended bound for
	// operations (CAS retry loops) whose worst case is unbounded.
	ref := cfg.Worst
	if ref == 0 {
		ref = cfg.Uncontended
	}
	o.margin[idx].Observe(steps * MarginScale / ref)

	ub := cfg.Uncontended
	if ub == 0 {
		ub = cfg.Worst
	}
	if steps > ub {
		switch {
		case casFails > 0:
			o.exceed[idx].explained.Add(1)
		case cfg.Amortized:
			o.exceed[idx].amortized.Add(1)
		default:
			o.exceed[idx].unexplained.Add(1)
		}
	}

	if cfg.Worst > 0 && steps > cfg.Worst {
		o.exceed[idx].violations.Add(1)
		if cfg.OnViolation != nil && o.violLatch.CompareAndSwap(false, true) {
			cfg.OnViolation(BoundViolation{Op: o.name, Process: idx, Observed: steps, Bound: cfg.Worst})
		}
	}
}

// OpBoundStats is the merged bound-conformance view of one operation.
type OpBoundStats struct {
	// Declared reports whether a budget was armed; the remaining
	// fields are zero when it is false.
	Declared        bool
	Worst           int64
	Uncontended     int64
	WorstExpr       string
	UncontendedExpr string
	// Margin holds observed*MarginScale/bound per completed span.
	Margin HistogramSnapshot
	// Exceedances of the uncontended budget, split by cause: the span
	// observed a failed CAS (contention explains the extra steps), the
	// budget is amortized and the span paid deferred maintenance, or
	// neither (a model discrepancy).
	ExceedExplained   int64
	ExceedAmortized   int64
	ExceedUnexplained int64
	// Violations counts spans exceeding the worst-case budget.
	Violations int64
}

func (o *Op) boundStatsInto(os *OpStats) {
	cfg := o.bound.Load()
	if cfg == nil {
		return
	}
	os.Bound.Declared = true
	os.Bound.Worst = cfg.Worst
	os.Bound.Uncontended = cfg.Uncontended
	os.Bound.WorstExpr = cfg.WorstExpr
	os.Bound.UncontendedExpr = cfg.UncontendedExpr
	for i := range o.margin {
		o.margin[i].snapshotInto(&os.Bound.Margin)
		os.Bound.ExceedExplained += o.exceed[i].explained.Load()
		os.Bound.ExceedAmortized += o.exceed[i].amortized.Load()
		os.Bound.ExceedUnexplained += o.exceed[i].unexplained.Load()
		os.Bound.Violations += o.exceed[i].violations.Load()
	}
}
