package farray

import (
	"errors"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

func TestMinSequential(t *testing.T) {
	const high = 1 << 20
	f, err := NewWithInitial(primitive.NewPool(), 4, Min, high)
	if err != nil {
		t.Fatal(err)
	}
	ctx0 := primitive.NewDirect(0)
	ctx3 := primitive.NewDirect(3)

	if got := f.Read(ctx0); got != high {
		t.Fatalf("initial Read = %d, want %d", got, high)
	}
	if err := f.Update(ctx0, 500); err != nil {
		t.Fatal(err)
	}
	if got := f.Read(ctx3); got != 500 {
		t.Fatalf("Read = %d, want 500", got)
	}
	if err := f.Update(ctx3, 200); err != nil {
		t.Fatal(err)
	}
	if got := f.Read(ctx0); got != 200 {
		t.Fatalf("Read = %d, want 200", got)
	}
	// Raising a Min slot is a monotonicity violation.
	var mono *MonotonicityError
	if err := f.Update(ctx0, 900); !errors.As(err, &mono) {
		t.Fatalf("increasing Min slot: %v", err)
	}
	// Add is undefined for Min.
	if _, err := f.Add(ctx0, 1); err == nil {
		t.Fatal("Add accepted on Min aggregate")
	}
	if f.AggregateKind() != Min {
		t.Fatal("AggregateKind broken")
	}
}

func TestMinConcurrentLowWatermark(t *testing.T) {
	// Each process lowers its slot toward a per-process floor; the root
	// must end at the global minimum and never increase mid-flight.
	const n, high = 6, 1 << 20
	f, err := NewWithInitial(primitive.NewPool(), n, Min, high)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := primitive.NewDirect(id)
			cur := int64(high)
			for cur > int64(id+1)*100 {
				cur -= int64(id*37 + 1001)
				if cur < int64(id+1)*100 {
					cur = int64(id+1) * 100
				}
				if err := f.Update(ctx, cur); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := f.Read(primitive.NewDirect(0)); got != 100 {
		t.Fatalf("final Read = %d, want 100 (p0's floor)", got)
	}
}

func TestSumRejectsNonZeroInitial(t *testing.T) {
	if _, err := NewWithInitial(primitive.NewPool(), 4, Sum, 5); err == nil {
		t.Fatal("Sum with non-zero initial accepted")
	}
	// n = 1 has no internal nodes, but the restriction should still hold
	// uniformly... single leaf IS the root, so a non-zero initial is
	// exact; accept it.
	f, err := NewWithInitial(primitive.NewPool(), 1, Sum, 5)
	if err == nil {
		ctx := primitive.NewDirect(0)
		if got := f.Read(ctx); got != 5 {
			t.Fatalf("single-slot Sum initial = %d", got)
		}
	}
}

func TestMinReadIsOneStep(t *testing.T) {
	f, err := NewWithInitial(primitive.NewPool(), 16, Min, 999)
	if err != nil {
		t.Fatal(err)
	}
	ctx := primitive.NewCounting(primitive.NewDirect(0))
	if got := ctx.Measure(func() { f.Read(ctx) }); got != 1 {
		t.Fatalf("Min Read took %d steps", got)
	}
}
