// Package farray implements Jayanti-style f-arrays over word-sized
// registers ("f-arrays: implementation and applications", PODC 2002;
// reference [14] of Hendler & Khait, PODC 2014).
//
// An f-array maintains n single-writer slots and lets any process read
// f(slot_0, ..., slot_{n-1}) in O(1) shared-memory steps, while slot
// updates cost O(log n) steps: slots are the leaves of a complete binary
// tree whose internal nodes cache the aggregate of their subtrees, and an
// update refreshes each node on its leaf-to-root path twice
// (read-children/compute/CAS), the same helping pattern as Algorithm A's
// Propagate.
//
// Jayanti's construction uses LL/SC; as the paper notes (Section 3), it
// "can be made to work also using CAS". The port is sound here because the
// package restricts aggregates to ones that are monotone under the allowed
// slot updates (Sum and Max over non-decreasing slots, Min over
// non-increasing ones), which rules out the ABA problem: a register's value
// never returns to a previously CASed-away value, so a successful CAS
// implies the register was unchanged since the matching read, exactly the
// LL/SC guarantee.
//
// The paper's Section 3 remark — constant-read counters and snapshots with
// logarithmic updates exist from CAS — is this package; Theorems 1-2 prove
// its update cost is optimal for any constant-read implementation.
package farray

import (
	"fmt"

	"github.com/restricteduse/tradeoffs/internal/b1tree"
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Aggregate identifies the function an FArray maintains over its slots.
type Aggregate int

const (
	// Sum maintains slot_0 + ... + slot_{n-1}. Slots must be updated
	// non-decreasingly (the counter use case).
	Sum Aggregate = iota + 1

	// Max maintains max(slot_0, ..., slot_{n-1}). Slots must be updated
	// non-decreasingly (the max-register use case).
	Max

	// Min maintains min(slot_0, ..., slot_{n-1}). Slots must be updated
	// non-INCREASINGLY (e.g. low-watermark tracking); use NewWithInitial
	// to start slots high.
	Min
)

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	switch a {
	case Sum:
		return "sum"
	case Max:
		return "max"
	case Min:
		return "min"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

func (a Aggregate) combine(x, y int64) int64 {
	switch a {
	case Sum:
		return x + y
	case Min:
		if y < x {
			return y
		}
		return x
	default: // Max
		if y > x {
			return y
		}
		return x
	}
}

// allows reports whether the aggregate's monotonicity direction permits
// replacing cur with next.
func (a Aggregate) allows(cur, next int64) bool {
	if a == Min {
		return next <= cur
	}
	return next >= cur
}

// MonotonicityError reports an Update against the aggregate's monotone
// direction (decreasing a Sum/Max slot, increasing a Min slot), which the
// CAS-based refresh cannot support (see the package comment on ABA).
type MonotonicityError struct {
	Slot     int
	Current  int64
	Proposed int64
}

// Error implements error.
func (e *MonotonicityError) Error() string {
	return fmt.Sprintf("farray: slot %d update %d -> %d violates the aggregate's monotone direction",
		e.Slot, e.Current, e.Proposed)
}

// FArray is a fixed-fan-in aggregate tree. Construct it with New.
type FArray struct {
	n      int
	agg    Aggregate
	tree   *b1tree.Tree
	values []*primitive.Register // one per tree node
}

// New builds an f-array with n >= 1 single-writer slots (slot i belongs to
// process i) maintaining the given aggregate, with all slots initially 0.
func New(pool *primitive.Pool, n int, agg Aggregate) (*FArray, error) {
	return NewWithInitial(pool, n, agg, 0)
}

// NewWithInitial builds an f-array whose slots all start at initial —
// typically a high value for Min aggregates.
func NewWithInitial(pool *primitive.Pool, n int, agg Aggregate, initial int64) (*FArray, error) {
	if n < 1 {
		return nil, fmt.Errorf("farray: need n >= 1 slots, got %d", n)
	}
	if agg != Sum && agg != Max && agg != Min {
		return nil, fmt.Errorf("farray: unknown aggregate %v", agg)
	}
	tree, err := b1tree.NewComplete(n)
	if err != nil {
		return nil, fmt.Errorf("farray: %w", err)
	}
	f := &FArray{n: n, agg: agg, tree: tree}
	f.values = make([]*primitive.Register, len(tree.Nodes))
	for k, node := range tree.Nodes {
		init := initial
		if !node.IsLeaf() && agg == Sum {
			// Internal sums start at initial * leaves-below; keep the
			// simple (and overwhelmingly common) initial == 0 exact and
			// reject anything else for Sum.
			if initial != 0 {
				return nil, fmt.Errorf("farray: Sum supports only a zero initial value")
			}
			init = 0
		}
		f.values[k] = pool.New("farray.node", init)
	}
	return f, nil
}

// Slots returns the number of slots.
func (f *FArray) Slots() int { return f.n }

// AggregateKind returns the maintained aggregate.
func (f *FArray) AggregateKind() Aggregate { return f.agg }

// Read returns the aggregate over all slots in exactly one step.
//
//tradeoffvet:bound steps<=1 reads<=1
func (f *FArray) Read(ctx primitive.Context) int64 {
	return ctx.Read(f.values[f.tree.Root.Index])
}

// ReadSlot returns the current value of slot i in one step.
//
//tradeoffvet:bound steps<=1 reads<=1
func (f *FArray) ReadSlot(ctx primitive.Context, i int) (int64, error) {
	if i < 0 || i >= f.n {
		return 0, fmt.Errorf("farray: slot %d out of range [0,%d)", i, f.n)
	}
	return ctx.Read(f.values[f.tree.Leaves[i].Index]), nil
}

// Update sets the calling process's slot (slot ctx.ID()) to v and refreshes
// the aggregates on the slot's root path. It takes O(log n) steps: one leaf
// read, one leaf write, and 8 steps per level.
//
// v must respect the aggregate's monotone direction (>= the slot's current
// value for Sum/Max, <= for Min); Update is single-writer, so the owning
// process always knows the current value and well-behaved callers never
// trip the MonotonicityError.
//
//tradeoffvet:bound steps<=8logn+2 reads<=6logn+1 writes<=1 cas<=2logn
func (f *FArray) Update(ctx primitive.Context, v int64) error {
	i := ctx.ID()
	if i < 0 || i >= f.n {
		return fmt.Errorf("farray: process id %d out of range [0,%d)", i, f.n)
	}
	leaf := f.tree.Leaves[i]
	cell := f.values[leaf.Index]

	cur := ctx.Read(cell)
	if !f.agg.allows(cur, v) {
		return &MonotonicityError{Slot: i, Current: cur, Proposed: v}
	}
	if v != cur {
		ctx.Write(cell, v)
	}
	f.refreshPath(ctx, leaf)
	return nil
}

// Add increases the calling process's slot by delta >= 0 and returns the
// slot's new value. O(log n) steps. Sum and Max aggregates only.
//
//tradeoffvet:bound steps<=8logn+2 reads<=6logn+1 writes<=1 cas<=2logn
func (f *FArray) Add(ctx primitive.Context, delta int64) (int64, error) {
	if delta < 0 {
		return 0, fmt.Errorf("farray: negative delta %d", delta)
	}
	if f.agg == Min {
		return 0, fmt.Errorf("farray: Add is not defined for Min aggregates")
	}
	i := ctx.ID()
	if i < 0 || i >= f.n {
		return 0, fmt.Errorf("farray: process id %d out of range [0,%d)", i, f.n)
	}
	leaf := f.tree.Leaves[i]
	cell := f.values[leaf.Index]

	// Single-writer slot: the read-then-write is not a lost-update race.
	next := ctx.Read(cell) + delta
	ctx.Write(cell, next)
	f.refreshPath(ctx, leaf)
	return next, nil
}

// refreshPath applies the double refresh at every ancestor of leaf.
func (f *FArray) refreshPath(ctx primitive.Context, leaf *b1tree.Node) {
	//tradeoffvet:loopbound logn leaf-to-root walk: one iteration per tree level
	for node := leaf.Parent; node != nil; node = node.Parent {
		cell := f.values[node.Index]
		left := f.values[node.Left.Index]
		right := f.values[node.Right.Index]
		for attempt := 0; attempt < 2; attempt++ {
			old := ctx.Read(cell)
			fresh := f.agg.combine(ctx.Read(left), ctx.Read(right))
			ctx.CAS(cell, old, fresh)
		}
	}
}

// Depth returns the tree height (update cost is 2 + 8*Depth steps).
func (f *FArray) Depth() int { return f.tree.LeafDepth(0) }
