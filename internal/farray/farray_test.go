package farray

import (
	"errors"
	"math/bits"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

func newF(t *testing.T, n int, agg Aggregate) *FArray {
	t.Helper()
	f, err := New(primitive.NewPool(), n, agg)
	if err != nil {
		t.Fatalf("New(%d, %v): %v", n, agg, err)
	}
	return f
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(primitive.NewPool(), 0, Sum); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(primitive.NewPool(), 4, Aggregate(0)); err == nil {
		t.Fatal("New with invalid aggregate succeeded")
	}
	if _, err := New(primitive.NewPool(), 1, Max); err != nil {
		t.Fatalf("single-slot array: %v", err)
	}
}

func TestSumSequential(t *testing.T) {
	f := newF(t, 4, Sum)
	ctxs := make([]primitive.Context, 4)
	for i := range ctxs {
		ctxs[i] = primitive.NewDirect(i)
	}

	if got := f.Read(ctxs[0]); got != 0 {
		t.Fatalf("initial Read = %d", got)
	}
	if err := f.Update(ctxs[0], 5); err != nil {
		t.Fatal(err)
	}
	if err := f.Update(ctxs[2], 3); err != nil {
		t.Fatal(err)
	}
	if got := f.Read(ctxs[1]); got != 8 {
		t.Fatalf("Read = %d, want 8", got)
	}
	if v, err := f.Add(ctxs[2], 4); err != nil || v != 7 {
		t.Fatalf("Add = %d, %v; want 7, nil", v, err)
	}
	if got := f.Read(ctxs[3]); got != 12 {
		t.Fatalf("Read = %d, want 12", got)
	}
	if v, err := f.ReadSlot(ctxs[0], 2); err != nil || v != 7 {
		t.Fatalf("ReadSlot(2) = %d, %v", v, err)
	}
}

func TestMaxSequential(t *testing.T) {
	f := newF(t, 3, Max)
	ctx0 := primitive.NewDirect(0)
	ctx2 := primitive.NewDirect(2)

	if err := f.Update(ctx0, 10); err != nil {
		t.Fatal(err)
	}
	if err := f.Update(ctx2, 7); err != nil {
		t.Fatal(err)
	}
	if got := f.Read(ctx0); got != 10 {
		t.Fatalf("Read = %d, want 10", got)
	}
	if err := f.Update(ctx2, 99); err != nil {
		t.Fatal(err)
	}
	if got := f.Read(ctx0); got != 99 {
		t.Fatalf("Read = %d, want 99", got)
	}
}

func TestMonotonicityEnforced(t *testing.T) {
	f := newF(t, 2, Sum)
	ctx := primitive.NewDirect(0)
	if err := f.Update(ctx, 5); err != nil {
		t.Fatal(err)
	}
	var mono *MonotonicityError
	if err := f.Update(ctx, 4); !errors.As(err, &mono) {
		t.Fatalf("decreasing update err = %v", err)
	}
	if mono.Slot != 0 || mono.Current != 5 || mono.Proposed != 4 {
		t.Fatalf("MonotonicityError fields: %+v", mono)
	}
	if mono.Error() == "" {
		t.Fatal("empty error message")
	}
	// Same value is allowed (no-op refresh).
	if err := f.Update(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add(ctx, -1); err == nil {
		t.Fatal("negative Add succeeded")
	}
}

func TestIDValidation(t *testing.T) {
	f := newF(t, 2, Sum)
	if err := f.Update(primitive.NewDirect(2), 1); err == nil {
		t.Fatal("out-of-range id Update succeeded")
	}
	if err := f.Update(primitive.NewDirect(-1), 1); err == nil {
		t.Fatal("negative id Update succeeded")
	}
	if _, err := f.Add(primitive.NewDirect(5), 1); err == nil {
		t.Fatal("out-of-range id Add succeeded")
	}
	if _, err := f.ReadSlot(primitive.NewDirect(0), 9); err == nil {
		t.Fatal("out-of-range ReadSlot succeeded")
	}
}

func TestReadIsOneStep(t *testing.T) {
	for _, n := range []int{1, 2, 13, 256} {
		f := newF(t, n, Sum)
		ctx := primitive.NewCounting(primitive.NewDirect(0))
		if got := ctx.Measure(func() { f.Read(ctx) }); got != 1 {
			t.Fatalf("n=%d: Read took %d steps", n, got)
		}
	}
}

func TestUpdateStepBound(t *testing.T) {
	// Update is O(log n): 2 leaf steps + 8 per level.
	for _, n := range []int{1, 2, 3, 8, 9, 64, 500} {
		f := newF(t, n, Sum)
		depth := int64(bits.Len(uint(n - 1))) // ceil(log2 n)
		budget := 2 + 8*(depth)
		for id := 0; id < n; id += 1 + n/7 {
			ctx := primitive.NewCounting(primitive.NewDirect(id))
			if _, err := f.Add(ctx, 1); err != nil {
				t.Fatal(err)
			}
			if got := ctx.Steps(); got > budget {
				t.Fatalf("n=%d id=%d: Add took %d steps > %d", n, id, got, budget)
			}
		}
	}
}

func TestAggregateString(t *testing.T) {
	if Sum.String() != "sum" || Max.String() != "max" {
		t.Fatal("Aggregate.String broken")
	}
	if Aggregate(9).String() == "" {
		t.Fatal("unknown aggregate String empty")
	}
}

func TestConcurrentSumExact(t *testing.T) {
	// After all updaters finish, the root must hold the exact total.
	const n, perG = 8, 5000
	f := newF(t, n, Sum)

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := primitive.NewDirect(id)
			for i := 0; i < perG; i++ {
				if _, err := f.Add(ctx, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := f.Read(primitive.NewDirect(0)); got != n*perG {
		t.Fatalf("final Read = %d, want %d", got, n*perG)
	}
}

func TestConcurrentReadsNeverExceedTruth(t *testing.T) {
	// A Sum f-array read must never exceed the number of Add calls started,
	// and never trail the number completed before the read began by the
	// time it returns... the cheap safe check: reads are non-decreasing and
	// bounded by the eventual total.
	const n, perG = 4, 3000
	f := newF(t, n+1, Sum)

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := primitive.NewDirect(id)
			for i := 0; i < perG; i++ {
				if _, err := f.Add(ctx, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := primitive.NewDirect(n)
		prev := int64(0)
		for i := 0; i < perG; i++ {
			got := f.Read(ctx)
			if got < prev {
				t.Errorf("sum regressed %d -> %d", prev, got)
				return
			}
			if got > n*perG {
				t.Errorf("sum overshot: %d > %d", got, n*perG)
				return
			}
			prev = got
		}
	}()
	wg.Wait()
}

func TestConcurrentMaxExact(t *testing.T) {
	const n = 6
	f := newF(t, n, Max)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := primitive.NewDirect(id)
			rng := rand.New(rand.NewSource(int64(id)))
			cur := int64(0)
			for i := 0; i < 2000; i++ {
				cur += rng.Int63n(5)
				if err := f.Update(ctx, cur); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Final root = max over final slots.
	ctx := primitive.NewDirect(0)
	want := int64(0)
	for i := 0; i < n; i++ {
		v, err := f.ReadSlot(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if v > want {
			want = v
		}
	}
	if got := f.Read(ctx); got != want {
		t.Fatalf("final Read = %d, want %d", got, want)
	}
}

func TestQuickSumMatchesModel(t *testing.T) {
	f := func(deltas []uint8) bool {
		fa, err := New(primitive.NewPool(), 3, Sum)
		if err != nil {
			return false
		}
		var model int64
		for k, d := range deltas {
			ctx := primitive.NewDirect(k % 3)
			if _, err := fa.Add(ctx, int64(d)); err != nil {
				return false
			}
			model += int64(d)
			if fa.Read(ctx) != model {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
