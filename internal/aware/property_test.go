package aware

import (
	"math/rand"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
)

// Property tests over random executions: structural laws the paper's
// definitions imply, checked on arbitrary programs and schedules.

// randomExecution builds n processes running random register programs and
// drives them with a seeded random scheduler, returning the event log.
func randomExecution(t *testing.T, seed int64, n, regs, opsPer int) []sim.Event {
	t.Helper()
	pool := primitive.NewPool()
	file := pool.NewSlice("r", regs, 0)
	s := sim.NewSystem()
	defer s.Shutdown()

	for id := 0; id < n; id++ {
		rng := rand.New(rand.NewSource(seed*10007 + int64(id)))
		ops := make([]func(ctx primitive.Context), opsPer)
		for i := range ops {
			reg := file[rng.Intn(regs)]
			switch rng.Intn(3) {
			case 0:
				ops[i] = func(ctx primitive.Context) { ctx.Read(reg) }
			case 1:
				v := rng.Int63n(4)
				ops[i] = func(ctx primitive.Context) { ctx.Write(reg, v) }
			default:
				old, newV := rng.Int63n(4), rng.Int63n(4)
				ops[i] = func(ctx primitive.Context) { ctx.CAS(reg, old, newV) }
			}
		}
		if err := s.Spawn(id, func(ctx primitive.Context) {
			for _, op := range ops {
				op(ctx)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for {
		active := s.Active()
		if len(active) == 0 {
			return append([]sim.Event(nil), s.Events()...)
		}
		if _, err := s.Step(active[rng.Intn(len(active))]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAwarenessSetsOnlyGrow(t *testing.T) {
	const n = 8
	for seed := int64(0); seed < 15; seed++ {
		events := randomExecution(t, seed, n, 4, 10)
		tr := NewTracker(n)

		prev := make([]Set, n)
		for p := range prev {
			prev[p] = tr.Awareness(p)
		}
		for _, ev := range events {
			tr.Apply(ev)
			for p := 0; p < n; p++ {
				cur := tr.Awareness(p)
				for _, member := range prev[p].Members() {
					if !cur.Has(member) {
						t.Fatalf("seed %d: AW(p%d) lost member %d after event %d", seed, p, member, ev.Seq)
					}
				}
				prev[p] = cur
			}
		}
	}
}

func TestAwarenessAlwaysIncludesSelf(t *testing.T) {
	const n = 6
	for seed := int64(20); seed < 30; seed++ {
		events := randomExecution(t, seed, n, 3, 8)
		tr := NewTracker(n)
		tr.ApplyAll(events)
		for p := 0; p < n; p++ {
			if !tr.Awareness(p).Has(p) {
				t.Fatalf("seed %d: p%d lost self-awareness", seed, p)
			}
		}
	}
}

func TestFamiliarityMembersAreAwareOfThemselves(t *testing.T) {
	// F(o) contains only processes that some contributor was aware of;
	// in particular every member q of F(o) must have issued an event or be
	// the contributor itself — structurally, every member of F(o) must be
	// a member of SOME awareness set (its own at minimum).
	const n = 6
	for seed := int64(40); seed < 50; seed++ {
		events := randomExecution(t, seed, n, 3, 8)
		tr := NewTracker(n)
		tr.ApplyAll(events)
		for _, regID := range tr.ObjectIDs() {
			for _, q := range tr.Familiarity(regID).Members() {
				if q < 0 || q >= n {
					t.Fatalf("seed %d: familiarity member %d out of range", seed, q)
				}
			}
		}
	}
}

func TestMaxSetSizeIsMaxOfSets(t *testing.T) {
	const n = 8
	for seed := int64(60); seed < 70; seed++ {
		events := randomExecution(t, seed, n, 4, 10)
		tr := NewTracker(n)
		tr.ApplyAll(events)

		want := 0
		for p := 0; p < n; p++ {
			if c := tr.AwarenessCount(p); c > want {
				want = c
			}
		}
		for _, regID := range tr.ObjectIDs() {
			if c := tr.FamiliarityCount(regID); c > want {
				want = c
			}
		}
		if got := tr.MaxSetSize(); got != want {
			t.Fatalf("seed %d: MaxSetSize = %d, want %d", seed, got, want)
		}
	}
}

func TestHiddenProcessErasureIsInvisible(t *testing.T) {
	// The operational meaning of "hidden" (Claim 1): remove a hidden
	// process's steps from the schedule, re-run, and every other process
	// observes identical responses. This is the soundness property all of
	// Theorem 3's surgery rests on, tested here on random executions.
	const n = 6
	for seed := int64(80); seed < 95; seed++ {
		seed := seed

		// Build and run the original.
		runIt := func(schedule []int, skip int) ([]sim.Event, []int, []int) {
			pool := primitive.NewPool()
			file := pool.NewSlice("r", 3, 0)
			s := sim.NewSystem()
			defer s.Shutdown()
			for id := 0; id < n; id++ {
				rng := rand.New(rand.NewSource(seed*999 + int64(id)))
				ops := make([]func(ctx primitive.Context), 6)
				for i := range ops {
					reg := file[rng.Intn(3)]
					switch rng.Intn(3) {
					case 0:
						ops[i] = func(ctx primitive.Context) { ctx.Read(reg) }
					case 1:
						v := rng.Int63n(3)
						ops[i] = func(ctx primitive.Context) { ctx.Write(reg, v) }
					default:
						old, newV := rng.Int63n(3), rng.Int63n(3)
						ops[i] = func(ctx primitive.Context) { ctx.CAS(reg, old, newV) }
					}
				}
				if id == skip {
					continue
				}
				if err := s.Spawn(id, func(ctx primitive.Context) {
					for _, op := range ops {
						op(ctx)
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			if schedule == nil {
				rng := rand.New(rand.NewSource(seed))
				for {
					active := s.Active()
					if len(active) == 0 {
						break
					}
					if _, err := s.Step(active[rng.Intn(len(active))]); err != nil {
						t.Fatal(err)
					}
				}
			} else if err := s.Run(schedule); err != nil {
				t.Fatal(err)
			}
			return append([]sim.Event(nil), s.Events()...), append([]int(nil), s.Schedule()...), s.Active()
		}

		events, schedule, _ := runIt(nil, -1)
		tr := NewTracker(n)
		tr.ApplyAll(events)

		for victim := 0; victim < n; victim++ {
			if !tr.Hidden(victim) {
				continue
			}
			var filtered []int
			for _, id := range schedule {
				if id != victim {
					filtered = append(filtered, id)
				}
			}
			replayed, _, _ := runIt(filtered, victim)

			// Compare survivors' responses.
			type key struct{ proc, idx int }
			responses := func(evs []sim.Event) map[key]sim.Event {
				count := make(map[int]int)
				out := make(map[key]sim.Event)
				for _, ev := range evs {
					k := key{proc: ev.Proc, idx: count[ev.Proc]}
					count[ev.Proc]++
					out[k] = ev
				}
				return out
			}
			orig := responses(events)
			repl := responses(replayed)
			for k, rv := range repl {
				ov, ok := orig[k]
				if !ok {
					t.Fatalf("seed %d victim %d: extra event %+v", seed, victim, rv)
				}
				// Only what the issuing process can observe must match:
				// its own request (kind, register, operands) and the
				// response (read value; CAS success). A write returns
				// nothing, so its Before may legitimately differ.
				same := ov.Kind == rv.Kind && ov.Reg.ID() == rv.Reg.ID() &&
					ov.Value == rv.Value && ov.Old == rv.Old && ov.New == rv.New
				switch ov.Kind {
				case sim.OpRead:
					same = same && ov.Before == rv.Before
				case sim.OpCAS:
					same = same && ov.CASOK == rv.CASOK
				}
				if !same {
					t.Fatalf("seed %d: erasing hidden p%d changed p%d's event %d:\n%+v\n%+v",
						seed, victim, k.proc, k.idx, ov, rv)
				}
			}
		}
	}
}
