// Package aware computes the information-flow structures of Hendler &
// Khait (PODC 2014, Section 3) over simulated executions:
//
//   - visibility of events (Definition 1): an event is invisible iff it
//     does not change its object's value, or the next access to the object
//     is a write and the event's issuer takes no step in between;
//   - awareness sets AW(p, E) (Definitions 2-3): the processes p has
//     (transitively) observed through visible writes/CASes;
//   - familiarity sets F(o, E) (Definition 4): the processes whose
//     existence is recorded on object o by events visible in E.
//
// The Tracker consumes a sim.System's event log incrementally and exposes
// the sets after any prefix. The paper's adversary (internal/adversary)
// uses them to schedule rounds (Lemma 1), prove forced step counts
// (Theorem 1) and maintain hidden essential sets (Theorem 3).
//
// Incremental computation: per object the tracker holds the accumulated
// familiarity set plus at most one "pending" contribution — the most recent
// value-changing event, whose visibility is still undecided (it becomes
// invisible only if the very next access to the object is a write issued
// while the event's issuer has taken no further step; anything else
// confirms it). Reads and CASes fold the object's familiarity set into the
// issuer's awareness set; value-changing events snapshot the issuer's
// awareness set as their contribution.
package aware

import (
	"math/bits"
	"sort"

	"github.com/restricteduse/tradeoffs/internal/sim"
)

// Set is a bitset over process ids.
type Set []uint64

// NewSet returns an empty set sized for ids in [0, n).
func NewSet(n int) Set { return make(Set, (n+63)/64) }

// Has reports membership.
func (s Set) Has(id int) bool {
	w := id / 64
	if w >= len(s) {
		return false
	}
	return s[w]&(1<<(id%64)) != 0
}

// Add inserts id.
func (s Set) Add(id int) { s[id/64] |= 1 << (id % 64) }

// Union folds other into s (same length required).
func (s Set) Union(other Set) {
	for i, w := range other {
		s[i] |= w
	}
}

// Count returns the cardinality.
func (s Set) Count() int {
	total := 0
	for _, w := range s {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Members lists the ids in ascending order.
func (s Set) Members() []int {
	var out []int
	for w, word := range s {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &^= 1 << b
		}
	}
	return out
}

// Intersects reports whether s and other share an element.
func (s Set) Intersects(other Set) bool {
	for i := range s {
		if i < len(other) && s[i]&other[i] != 0 {
			return true
		}
	}
	return false
}

// pendingInfo is a value-changing event whose visibility is undecided.
type pendingInfo struct {
	proc    int
	procSeq int   // issuer's event Seq at the time (to detect later steps)
	contrib Set   // AW(issuer) snapshot, including the issuer
	value   int64 // the visible value this event establishes if confirmed
}

// objState is the per-object familiarity bookkeeping.
type objState struct {
	fam     Set
	pending *pendingInfo

	// visValue is the object's value with all invisible events erased:
	// the value established by the last *confirmed-visible* event (or the
	// initial value). A write that re-asserts a value only an invisible
	// event left in place is raw-trivial but vis-changing: in the erased
	// execution the proofs reason about (Lemma 2) it changes the value,
	// so it must be treated as visible or information would flow through
	// it without awareness accounting, breaking Lemma 3. (Raw-changing
	// writes are visible regardless, per Definition 1 — see Apply.)
	visValue int64
}

// Tracker incrementally maintains awareness and familiarity sets.
type Tracker struct {
	n       int
	aw      []Set             // per process
	objects map[int]*objState // keyed by register id
	lastSeq map[int]int       // per process: Seq of its latest event
}

// NewTracker returns a tracker for process ids in [0, n).
func NewTracker(n int) *Tracker {
	t := &Tracker{
		n:       n,
		aw:      make([]Set, n),
		objects: make(map[int]*objState),
		lastSeq: make(map[int]int),
	}
	for p := range t.aw {
		t.aw[p] = NewSet(n)
		t.aw[p].Add(p) // every process is aware of itself
	}
	return t
}

// Apply folds one applied event into the sets. Events must be fed in
// execution order.
func (t *Tracker) Apply(ev sim.Event) {
	obj := t.objects[ev.Reg.ID()]
	if obj == nil {
		obj = &objState{fam: NewSet(t.n), visValue: ev.Before}
		t.objects[ev.Reg.ID()] = obj
	}

	// Resolve the object's pending event (Definition 1): the arriving
	// event hides it only if it is a write and the pending issuer took no
	// step since; otherwise the pending event is confirmed visible.
	if p := obj.pending; p != nil {
		if ev.Kind == sim.OpWrite && t.lastSeq[p.proc] == p.procSeq {
			// Overwritten while the issuer slept: invisible forever, and
			// the visible value it would have established is discarded.
		} else {
			obj.fam.Union(p.contrib)
			obj.visValue = p.value
		}
		obj.pending = nil
	}

	// Reads and CASes observe the object (Definition 2 case 1 plus
	// transitivity): the issuer learns everything the object is familiar
	// with.
	if ev.Kind == sim.OpRead || ev.Kind == sim.OpCAS {
		t.aw[ev.Proc].Union(obj.fam)
	}

	t.lastSeq[ev.Proc] = ev.Seq

	// Value-changing events contribute AW(issuer) — evaluated after the
	// event itself (Definition 4 uses AW(r, E1·e)) — once they are
	// confirmed visible. A write counts as changing if it changes the RAW
	// value (the paper's Definition 1) or the VISIBLE value (see
	// objState.visValue): the union is what keeps both directions sound —
	// raw-changing writes are observable through CAS outcomes even when
	// they restore the visible value, and vis-changing writes carry
	// information even when the raw value already matched.
	changed := ev.Changed
	if ev.Kind == sim.OpWrite && ev.Value != obj.visValue {
		changed = true
	}
	if changed {
		obj.pending = &pendingInfo{
			proc:    ev.Proc,
			procSeq: ev.Seq,
			contrib: t.aw[ev.Proc].Clone(),
			value:   ev.After,
		}
	}
}

// ApplyAll feeds a slice of events in order.
func (t *Tracker) ApplyAll(events []sim.Event) {
	for _, ev := range events {
		t.Apply(ev)
	}
}

// Awareness returns AW(p, E) for the execution prefix consumed so far.
// A pending event on some object never affects awareness (only familiarity),
// so no finalization is needed.
func (t *Tracker) Awareness(p int) Set { return t.aw[p].Clone() }

// AwarenessCount returns |AW(p, E)|.
func (t *Tracker) AwarenessCount(p int) int { return t.aw[p].Count() }

// Familiarity returns F(o, E) for the register with the given id, treating
// the prefix consumed so far as the whole execution (a pending last event
// on the object is visible, since nothing follows it).
func (t *Tracker) Familiarity(regID int) Set {
	obj := t.objects[regID]
	if obj == nil {
		return NewSet(t.n)
	}
	out := obj.fam.Clone()
	if obj.pending != nil {
		out.Union(obj.pending.contrib)
	}
	return out
}

// FamiliarityCount returns |F(o, E)|.
func (t *Tracker) FamiliarityCount(regID int) int {
	return t.Familiarity(regID).Count()
}

// MaxSetSize returns M(E): the maximum cardinality over all awareness and
// familiarity sets (Lemma 1's growth measure).
func (t *Tracker) MaxSetSize() int {
	m := 0
	for p := range t.aw {
		if c := t.aw[p].Count(); c > m {
			m = c
		}
	}
	for id := range t.objects {
		if c := t.FamiliarityCount(id); c > m {
			m = c
		}
	}
	return m
}

// MaxFamiliarity returns max over objects of |F(o, E)|.
func (t *Tracker) MaxFamiliarity() int {
	m := 0
	for id := range t.objects {
		if c := t.FamiliarityCount(id); c > m {
			m = c
		}
	}
	return m
}

// ObjectIDs lists the ids of objects touched so far, in ascending order.
func (t *Tracker) ObjectIDs() []int {
	out := make([]int, 0, len(t.objects))
	for id := range t.objects {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Processes returns the tracker's process-universe size.
func (t *Tracker) Processes() int { return t.n }
