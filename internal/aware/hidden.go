package aware

// Hidden reports whether process p is hidden after the consumed prefix
// (Definition 5): no process other than p is aware of p.
func (t *Tracker) Hidden(p int) bool {
	for q := range t.aw {
		if q != p && t.aw[q].Has(p) {
			return false
		}
	}
	return true
}

// HiddenSet reports whether the given processes form a hidden set
// (Definition 5): each is hidden, and no object is familiar with more than
// one of them.
func (t *Tracker) HiddenSet(ids []int) bool {
	for _, id := range ids {
		if !t.Hidden(id) {
			return false
		}
	}
	for regID := range t.objects {
		fam := t.Familiarity(regID)
		inSet := 0
		for _, id := range ids {
			if fam.Has(id) {
				inSet++
				if inSet > 1 {
					return false
				}
			}
		}
	}
	return true
}

// FamiliarObjects returns the register ids whose familiarity set contains p.
func (t *Tracker) FamiliarObjects(p int) []int {
	var out []int
	for regID := range t.objects {
		if t.Familiarity(regID).Has(p) {
			out = append(out, regID)
		}
	}
	return out
}
