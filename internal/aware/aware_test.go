package aware

import (
	"testing"
	"testing/quick"

	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
)

// scenario drives programs under a fixed schedule and returns the tracker.
func scenario(t *testing.T, n int, build func(pool *primitive.Pool) []sim.Program, schedule []int) *Tracker {
	t.Helper()
	pool := primitive.NewPool()
	programs := build(pool)
	s := sim.NewSystem()
	defer s.Shutdown()
	for id, p := range programs {
		if err := s.Spawn(id, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(schedule); err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(n)
	tr.ApplyAll(s.Events())
	return tr
}

func writeOnce(reg *primitive.Register, v int64) sim.Program {
	return func(ctx primitive.Context) { ctx.Write(reg, v) }
}

func readOnce(reg *primitive.Register) sim.Program {
	return func(ctx primitive.Context) { ctx.Read(reg) }
}

func TestInitialAwareness(t *testing.T) {
	tr := NewTracker(4)
	for p := 0; p < 4; p++ {
		if got := tr.AwarenessCount(p); got != 1 {
			t.Fatalf("initial |AW(p%d)| = %d", p, got)
		}
		if !tr.Awareness(p).Has(p) {
			t.Fatalf("p%d not aware of itself", p)
		}
		if !tr.Hidden(p) {
			t.Fatalf("p%d not hidden initially", p)
		}
	}
	if tr.MaxSetSize() != 1 {
		t.Fatalf("initial M(E) = %d", tr.MaxSetSize())
	}
}

func TestReaderLearnsVisibleWriter(t *testing.T) {
	var o *primitive.Register
	tr := scenario(t, 2, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		return []sim.Program{writeOnce(o, 1), readOnce(o)}
	}, []int{0, 1})

	if !tr.Awareness(1).Has(0) {
		t.Fatal("reader unaware of writer")
	}
	if tr.Awareness(0).Has(1) {
		t.Fatal("writer aware of reader")
	}
	if !tr.Familiarity(o.ID()).Has(0) {
		t.Fatal("object unfamiliar with writer")
	}
	if tr.Hidden(0) {
		t.Fatal("observed writer still hidden")
	}
	if !tr.Hidden(1) {
		t.Fatal("reader should be hidden")
	}
}

func TestOverwrittenWriteIsInvisible(t *testing.T) {
	// p0 writes, p1 overwrites while p0 sleeps, p2 reads: only p1 leaks.
	var o *primitive.Register
	tr := scenario(t, 3, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		return []sim.Program{writeOnce(o, 1), writeOnce(o, 2), readOnce(o)}
	}, []int{0, 1, 2})

	aw := tr.Awareness(2)
	if aw.Has(0) {
		t.Fatal("reader learned the invisible writer")
	}
	if !aw.Has(1) {
		t.Fatal("reader missed the visible writer")
	}
	if tr.Familiarity(o.ID()).Has(0) {
		t.Fatal("object familiar with invisible writer")
	}
	if !tr.Hidden(0) {
		t.Fatal("invisible writer must stay hidden")
	}
}

func TestWriterStepElsewhereConfirmsVisibility(t *testing.T) {
	// p0 writes o then steps on another object before p1 overwrites o:
	// Definition 1 makes p0's write visible.
	var o *primitive.Register
	tr := scenario(t, 3, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		other := pool.New("other", 0)
		return []sim.Program{
			func(ctx primitive.Context) {
				ctx.Write(o, 1)
				ctx.Read(other)
			},
			writeOnce(o, 2),
			readOnce(o),
		}
	}, []int{0, 0, 1, 2})

	if !tr.Awareness(2).Has(0) {
		t.Fatal("reader missed the visible (stepped-after) writer")
	}
	if !tr.Awareness(2).Has(1) {
		t.Fatal("reader missed the last writer")
	}
}

func TestInterveningReadConfirmsVisibility(t *testing.T) {
	// p2 reads o between p0's write and p1's overwrite: p0's write is
	// visible in that prefix, so p2 learns p0 (and a later reader learns
	// only p1).
	var o *primitive.Register
	tr := scenario(t, 4, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		return []sim.Program{writeOnce(o, 1), writeOnce(o, 2), readOnce(o), readOnce(o)}
	}, []int{0, 2, 1, 3})

	if !tr.Awareness(2).Has(0) {
		t.Fatal("early reader missed p0")
	}
	if !tr.Awareness(3).Has(1) {
		t.Fatal("late reader missed p1")
	}
	// p0's write was confirmed visible by the intervening read, so the
	// object stays familiar with p0 even after the overwrite.
	if !tr.Familiarity(o.ID()).Has(0) {
		t.Fatal("confirmed-visible writer dropped from familiarity")
	}
}

func TestRepeatedWriteHidesPredecessorButStaysVisible(t *testing.T) {
	// p0 writes 1; p1 writes 1 while p0 sleeps. p0's write becomes
	// invisible — and with it the value it established, so p1's
	// raw-trivial write is, in the erased execution the proofs reason
	// about, a value-changing (hence visible) write. A reader must learn
	// p1 and only p1 (this is the visValue rule; judging triviality
	// against the raw value would leak the value with no awareness at
	// all, contradicting Lemma 3).
	var o *primitive.Register
	tr := scenario(t, 3, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		return []sim.Program{writeOnce(o, 1), writeOnce(o, 1), readOnce(o)}
	}, []int{0, 1, 2})

	aw := tr.Awareness(2)
	if aw.Has(0) {
		t.Fatalf("reader learned the invisible writer: %v", aw.Members())
	}
	if !aw.Has(1) {
		t.Fatalf("reader missed the effective writer: %v", aw.Members())
	}
	if got := tr.FamiliarityCount(o.ID()); got != 1 {
		t.Fatalf("|F(o)| = %d, want 1", got)
	}
}

func TestRestoringWriteIsInvisible(t *testing.T) {
	// p0 writes 5 but p0's write stays pending; p1 overwrites with 5's
	// opposite... scenario: p0 writes 5 (visible after p2 reads), p1
	// writes 5 again: p1's write re-asserts the VISIBLE value, so it is
	// trivial and contributes nothing.
	var o *primitive.Register
	tr := scenario(t, 4, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		return []sim.Program{writeOnce(o, 5), writeOnce(o, 5), readOnce(o), readOnce(o)}
	}, []int{0, 2, 1, 3})

	// p2's read confirmed p0's write visible; p1's identical write is
	// then genuinely trivial. The late reader p3 learns p0 only.
	aw := tr.Awareness(3)
	if !aw.Has(0) {
		t.Fatalf("late reader missed the visible writer: %v", aw.Members())
	}
	if aw.Has(1) {
		t.Fatalf("late reader learned a trivial writer: %v", aw.Members())
	}
}

func TestFailedCASStillObserves(t *testing.T) {
	// p0's CAS changes o; p1's CAS fails (trivial) but, being a CAS,
	// observes the object and learns p0.
	var o *primitive.Register
	tr := scenario(t, 2, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		return []sim.Program{
			func(ctx primitive.Context) { ctx.CAS(o, 0, 1) },
			func(ctx primitive.Context) { ctx.CAS(o, 0, 2) },
		}
	}, []int{0, 1})

	if !tr.Awareness(1).Has(0) {
		t.Fatal("failed CAS did not observe prior writer")
	}
	if tr.Awareness(0).Has(1) {
		t.Fatal("first CASer learned the later one")
	}
}

func TestTransitiveAwareness(t *testing.T) {
	// p0 -> a -> p1 -> b -> p2: p2 must know p0 without touching a.
	var a, b *primitive.Register
	tr := scenario(t, 3, func(pool *primitive.Pool) []sim.Program {
		a = pool.New("a", 0)
		b = pool.New("b", 0)
		return []sim.Program{
			writeOnce(a, 1),
			func(ctx primitive.Context) {
				ctx.Read(a)
				ctx.Write(b, 1)
			},
			readOnce(b),
		}
	}, []int{0, 1, 1, 2})

	aw := tr.Awareness(2)
	if !aw.Has(0) || !aw.Has(1) {
		t.Fatalf("transitive flow broken: AW(p2) = %v", aw.Members())
	}
	if !tr.Familiarity(b.ID()).Has(0) {
		t.Fatal("b not familiar with p0 through p1's write")
	}
}

func TestCASContributionIncludesOwnObservation(t *testing.T) {
	// Definition 4 uses AW(r, E1·e): a CAS's contribution includes the
	// awareness it gains from the object it CASes.
	var a, b *primitive.Register
	tr := scenario(t, 3, func(pool *primitive.Pool) []sim.Program {
		a = pool.New("a", 0)
		b = pool.New("b", 0)
		return []sim.Program{
			writeOnce(a, 1), // p0 makes a familiar with p0
			func(ctx primitive.Context) {
				ctx.Read(a)      // p1 learns p0
				ctx.CAS(b, 0, 5) // contributes {p0, p1} to b
			},
			readOnce(b),
		}
	}, []int{0, 1, 1, 2})

	aw := tr.Awareness(2)
	if !aw.Has(0) {
		t.Fatal("CAS contribution lost transitive awareness")
	}
}

func TestHiddenSet(t *testing.T) {
	// Two writers to distinct objects, unread: both hidden, and the pair
	// is a hidden set.
	tr := scenario(t, 2, func(pool *primitive.Pool) []sim.Program {
		a := pool.New("a", 0)
		b := pool.New("b", 0)
		return []sim.Program{writeOnce(a, 1), writeOnce(b, 1)}
	}, []int{0, 1})

	if !tr.HiddenSet([]int{0, 1}) {
		t.Fatal("disjoint silent writers should form a hidden set")
	}
}

func TestHiddenSetRejectsSharedFamiliarity(t *testing.T) {
	// Both writers stay hidden (nobody reads), but both writes to o are
	// visible (p0 steps elsewhere before p1 overwrites), so o is familiar
	// with both: {p0,p1} is hidden individually yet NOT a hidden set.
	var o *primitive.Register
	tr := scenario(t, 2, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		other := pool.New("other", 0)
		return []sim.Program{
			func(ctx primitive.Context) {
				ctx.Write(o, 1)
				ctx.Read(other)
			},
			writeOnce(o, 2),
		}
	}, []int{0, 0, 1})

	fam := tr.Familiarity(o.ID())
	if !fam.Has(0) || !fam.Has(1) {
		t.Fatalf("setup broken: F(o) = %v", fam.Members())
	}
	if !tr.Hidden(0) || !tr.Hidden(1) {
		t.Fatal("setup broken: writers should be individually hidden")
	}
	if tr.HiddenSet([]int{0, 1}) {
		t.Fatal("shared familiarity not detected")
	}
	if objs := tr.FamiliarObjects(0); len(objs) != 1 || objs[0] != o.ID() {
		t.Fatalf("FamiliarObjects(0) = %v", objs)
	}
}

func TestMaxSetSizeTracksGrowth(t *testing.T) {
	var o *primitive.Register
	tr := scenario(t, 4, func(pool *primitive.Pool) []sim.Program {
		o = pool.New("o", 0)
		return []sim.Program{
			writeOnce(o, 1),
			func(ctx primitive.Context) {
				ctx.Read(o)
				ctx.Write(o, 2)
			},
			func(ctx primitive.Context) {
				ctx.Read(o)
				ctx.Write(o, 3)
			},
			readOnce(o),
		}
	}, []int{0, 1, 1, 2, 2, 3})

	// p3 read o after p2's write, whose contribution includes p0, p1, p2.
	if got := tr.AwarenessCount(3); got != 4 {
		t.Fatalf("|AW(p3)| = %d, want 4", got)
	}
	if got := tr.MaxSetSize(); got != 4 {
		t.Fatalf("M(E) = %d, want 4", got)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) || s.Has(200) {
		t.Fatal("Has broken")
	}
	if got := s.Count(); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	members := s.Members()
	if len(members) != 3 || members[0] != 0 || members[1] != 64 || members[2] != 129 {
		t.Fatalf("Members = %v", members)
	}

	other := NewSet(130)
	other.Add(5)
	if s.Intersects(other) {
		t.Fatal("phantom intersection")
	}
	other.Add(64)
	if !s.Intersects(other) {
		t.Fatal("missed intersection")
	}

	clone := s.Clone()
	clone.Add(7)
	if s.Has(7) {
		t.Fatal("Clone aliases storage")
	}
	s.Union(other)
	if !s.Has(5) {
		t.Fatal("Union broken")
	}
}

func TestSetQuickUnionCount(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewSet(1 << 16)
		seen := make(map[int]bool)
		for _, r := range raw {
			s.Add(int(r))
			seen[int(r)] = true
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
