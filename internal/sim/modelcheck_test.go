package sim_test

import (
	"math/rand"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
)

// These tests model-check the implementations: programs run under the
// deterministic simulator, the scheduler explores many interleavings
// (random sampling plus exhaustive enumeration for small configurations),
// and every resulting history must pass the exact linearizability checker.
// Unlike the -race stress tests, a failure here comes with the exact
// schedule that produced it.

// buildFn constructs programs plus the recorder capturing their history.
type buildFn func(pool *primitive.Pool) ([]sim.Program, *history.Recorder)

// runSchedule builds a fresh system and drives it with choose until all
// processes finish; returns the recorded history.
func runSchedule(t *testing.T, build buildFn, choose func(active []int) int) []history.Op {
	t.Helper()
	pool := primitive.NewPool()
	programs, rec := build(pool)
	s := sim.NewSystem()
	defer s.Shutdown()
	for id, p := range programs {
		if err := s.Spawn(id, p); err != nil {
			t.Fatal(err)
		}
	}
	for {
		active := s.Active()
		if len(active) == 0 {
			return rec.Ops()
		}
		if _, err := s.Step(choose(active)); err != nil {
			t.Fatal(err)
		}
	}
}

// checkRandomSchedules samples seeded random schedules and verifies every
// history against spec.
func checkRandomSchedules(t *testing.T, build buildFn, spec history.Spec, trials int) {
	t.Helper()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		ops := runSchedule(t, build, func(active []int) int {
			return active[rng.Intn(len(active))]
		})
		if err := history.CheckLinearizable(ops, spec); err != nil {
			t.Fatalf("trial %d: %v\nhistory: %+v", trial, err, ops)
		}
	}
}

// checkExhaustive enumerates EVERY schedule of the given programs via
// sim.Explore and verifies every resulting history against spec. budget
// caps the number of complete executions to keep mistakes from hanging the
// suite.
func checkExhaustive(t *testing.T, build buildFn, spec history.Spec, budget int) int {
	t.Helper()
	var rec *history.Recorder
	buildSystem := func() (*sim.System, error) {
		pool := primitive.NewPool()
		programs, r := build(pool)
		rec = r
		s := sim.NewSystem()
		for id, p := range programs {
			if err := s.Spawn(id, p); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	execs, err := sim.Explore(buildSystem, func(*sim.System) error {
		return history.CheckLinearizable(rec.Ops(), spec)
	}, budget)
	if err != nil {
		t.Fatal(err)
	}
	return execs
}

// --- builders ---

func maxRegProgram(m maxreg.MaxRegister, rec *history.Recorder, ops []history.Op) sim.Program {
	return func(ctx primitive.Context) {
		for _, op := range ops {
			switch op.Kind {
			case history.KindWriteMax:
				inv := rec.Invoke()
				if err := m.WriteMax(ctx, op.Arg); err != nil {
					panic(err) // deterministic test setup bug
				}
				rec.Record(history.Op{Proc: ctx.ID(), Kind: op.Kind, Arg: op.Arg}, inv)
			case history.KindReadMax:
				inv := rec.Invoke()
				got := m.ReadMax(ctx)
				rec.Record(history.Op{Proc: ctx.ID(), Kind: op.Kind, Ret: got}, inv)
			}
		}
	}
}

func buildMaxRegWorkload(newReg func(pool *primitive.Pool) maxreg.MaxRegister, seed int64) buildFn {
	return func(pool *primitive.Pool) ([]sim.Program, *history.Recorder) {
		rec := history.NewRecorder()
		m := newReg(pool)
		rng := rand.New(rand.NewSource(seed))
		programs := make([]sim.Program, 3)
		for p := range programs {
			script := make([]history.Op, 3)
			for i := range script {
				if rng.Intn(2) == 0 {
					script[i] = history.Op{Kind: history.KindWriteMax, Arg: rng.Int63n(6)}
				} else {
					script[i] = history.Op{Kind: history.KindReadMax}
				}
			}
			programs[p] = maxRegProgram(m, rec, script)
		}
		return programs, rec
	}
}

func TestRandomSchedulesAlgorithmA(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		build := buildMaxRegWorkload(func(pool *primitive.Pool) maxreg.MaxRegister {
			m, err := core.New(pool, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}, seed)
		checkRandomSchedules(t, build, history.MaxRegisterSpec{}, 60)
	}
}

func TestRandomSchedulesAACMaxReg(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		build := buildMaxRegWorkload(func(pool *primitive.Pool) maxreg.MaxRegister {
			m, err := maxreg.NewAAC(pool, 8)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}, seed)
		checkRandomSchedules(t, build, history.MaxRegisterSpec{}, 60)
	}
}

func TestRandomSchedulesUnboundedAAC(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		build := buildMaxRegWorkload(func(pool *primitive.Pool) maxreg.MaxRegister {
			return maxreg.NewUnboundedAAC(pool)
		}, seed)
		checkRandomSchedules(t, build, history.MaxRegisterSpec{}, 60)
	}
}

func TestExhaustiveUnboundedAAC(t *testing.T) {
	// Every interleaving of two writes and a double read over the lazy
	// unbounded register (small values keep descents short enough to
	// exhaust).
	build := func(pool *primitive.Pool) ([]sim.Program, *history.Recorder) {
		rec := history.NewRecorder()
		m := maxreg.NewUnboundedAAC(pool)
		return []sim.Program{
			maxRegProgram(m, rec, []history.Op{{Kind: history.KindWriteMax, Arg: 3}}),
			maxRegProgram(m, rec, []history.Op{{Kind: history.KindWriteMax, Arg: 1}}),
			maxRegProgram(m, rec, []history.Op{{Kind: history.KindReadMax}, {Kind: history.KindReadMax}}),
		}, rec
	}
	execs := checkExhaustive(t, build, history.MaxRegisterSpec{}, 2_000_000)
	t.Logf("explored %d complete executions", execs)
	if execs < 10 {
		t.Fatalf("exploration degenerate: only %d executions", execs)
	}
}

func counterProgram(c counter.Counter, rec *history.Recorder, script []history.Kind) sim.Program {
	return func(ctx primitive.Context) {
		for _, kind := range script {
			switch kind {
			case history.KindIncrement:
				inv := rec.Invoke()
				if err := c.Increment(ctx); err != nil {
					panic(err)
				}
				rec.Record(history.Op{Proc: ctx.ID(), Kind: kind}, inv)
			case history.KindCounterRead:
				inv := rec.Invoke()
				got := c.Read(ctx)
				rec.Record(history.Op{Proc: ctx.ID(), Kind: kind, Ret: got}, inv)
			}
		}
	}
}

func buildCounterWorkload(newCtr func(pool *primitive.Pool) counter.Counter, seed int64) buildFn {
	return func(pool *primitive.Pool) ([]sim.Program, *history.Recorder) {
		rec := history.NewRecorder()
		c := newCtr(pool)
		rng := rand.New(rand.NewSource(seed))
		programs := make([]sim.Program, 3)
		for p := range programs {
			script := make([]history.Kind, 3)
			for i := range script {
				if rng.Intn(2) == 0 {
					script[i] = history.KindIncrement
				} else {
					script[i] = history.KindCounterRead
				}
			}
			programs[p] = counterProgram(c, rec, script)
		}
		return programs, rec
	}
}

func TestRandomSchedulesFArrayCounter(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		build := buildCounterWorkload(func(pool *primitive.Pool) counter.Counter {
			c, err := counter.NewFArray(pool, 3)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}, seed)
		checkRandomSchedules(t, build, history.CounterSpec{}, 60)
	}
}

func TestRandomSchedulesAACCounter(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		build := buildCounterWorkload(func(pool *primitive.Pool) counter.Counter {
			c, err := counter.NewAAC(pool, 3, 64)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}, seed)
		checkRandomSchedules(t, build, history.CounterSpec{}, 60)
	}
}

func TestExhaustiveAACMaxReg(t *testing.T) {
	// Every interleaving of WriteMax(3), WriteMax(1), and a double ReadMax
	// over the 4-bounded AAC register.
	build := func(pool *primitive.Pool) ([]sim.Program, *history.Recorder) {
		rec := history.NewRecorder()
		m, err := maxreg.NewAAC(pool, 4)
		if err != nil {
			t.Fatal(err)
		}
		return []sim.Program{
			maxRegProgram(m, rec, []history.Op{{Kind: history.KindWriteMax, Arg: 3}}),
			maxRegProgram(m, rec, []history.Op{{Kind: history.KindWriteMax, Arg: 1}}),
			maxRegProgram(m, rec, []history.Op{{Kind: history.KindReadMax}, {Kind: history.KindReadMax}}),
		}, rec
	}
	execs := checkExhaustive(t, build, history.MaxRegisterSpec{}, 100000)
	t.Logf("explored %d complete executions", execs)
	if execs < 10 {
		t.Fatalf("exploration degenerate: only %d executions", execs)
	}
}

func TestExhaustiveCASCounter(t *testing.T) {
	// Every interleaving of two CAS increments and a read.
	build := func(pool *primitive.Pool) ([]sim.Program, *history.Recorder) {
		rec := history.NewRecorder()
		c, err := counter.NewCAS(pool, 0)
		if err != nil {
			panic(err)
		}
		return []sim.Program{
			counterProgram(c, rec, []history.Kind{history.KindIncrement}),
			counterProgram(c, rec, []history.Kind{history.KindIncrement}),
			counterProgram(c, rec, []history.Kind{history.KindCounterRead}),
		}, rec
	}
	execs := checkExhaustive(t, build, history.CounterSpec{}, 100000)
	t.Logf("explored %d complete executions", execs)
	if execs < 10 {
		t.Fatalf("exploration degenerate: only %d executions", execs)
	}
}

func TestExhaustiveAlgorithmATinyConfig(t *testing.T) {
	// Algorithm A with bound 2 collapses to a 3-node tree; a write is 10
	// steps. Exhaust one writer against a two-read reader.
	build := func(pool *primitive.Pool) ([]sim.Program, *history.Recorder) {
		rec := history.NewRecorder()
		m, err := core.New(pool, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		return []sim.Program{
			maxRegProgram(m, rec, []history.Op{{Kind: history.KindWriteMax, Arg: 1}}),
			maxRegProgram(m, rec, []history.Op{{Kind: history.KindReadMax}, {Kind: history.KindReadMax}}),
		}, rec
	}
	execs := checkExhaustive(t, build, history.MaxRegisterSpec{}, 100000)
	t.Logf("explored %d complete executions", execs)
	if execs < 10 {
		t.Fatalf("exploration degenerate: only %d executions", execs)
	}
}
