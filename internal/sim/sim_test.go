package sim

import (
	"errors"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// incProgram CAS-increments reg n times.
func incProgram(reg *primitive.Register, n int) Program {
	return func(ctx primitive.Context) {
		for i := 0; i < n; i++ {
			for {
				cur := ctx.Read(reg)
				if ctx.CAS(reg, cur, cur+1) {
					break
				}
			}
		}
	}
}

func TestBasicStepping(t *testing.T) {
	pool := primitive.NewPool()
	reg := pool.New("r", 0)
	s := NewSystem()
	defer s.Shutdown()

	if err := s.Spawn(0, incProgram(reg, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Spawn(1, incProgram(reg, 1)); err != nil {
		t.Fatal(err)
	}

	// Both processes have their first read enabled.
	enabled := s.Enabled()
	if len(enabled) != 2 {
		t.Fatalf("enabled = %d events", len(enabled))
	}
	for _, pd := range enabled {
		if pd.Kind != OpRead || pd.Reg != reg {
			t.Fatalf("unexpected enabled event %+v", pd)
		}
	}

	// p0 reads, p1 reads, p0 CASes (succeeds), p1 CASes (fails: stale).
	for _, id := range []int{0, 1} {
		ev, err := s.Step(id)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != OpRead || ev.Before != 0 || ev.Changed {
			t.Fatalf("read event %+v", ev)
		}
	}
	ev, err := s.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != OpCAS || !ev.CASOK || !ev.Changed || ev.After != 1 {
		t.Fatalf("p0 CAS event %+v", ev)
	}
	ev, err = s.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != OpCAS || ev.CASOK || ev.Changed {
		t.Fatalf("p1 CAS event %+v", ev)
	}
	// p0 finished; p1 retries.
	if !s.Done(0) {
		t.Fatal("p0 not done")
	}
	if s.Done(1) {
		t.Fatal("p1 done after failed CAS")
	}
	if err := s.Run([]int{1, 1}); err != nil { // re-read + successful CAS
		t.Fatal(err)
	}
	if !s.Done(1) {
		t.Fatal("p1 not done")
	}
	if got := reg.Load(); got != 2 {
		t.Fatalf("final value %d", got)
	}
	if got := len(s.Events()); got != 6 {
		t.Fatalf("%d events", got)
	}
	if got := s.StepsOf(1); got != 4 {
		t.Fatalf("p1 steps = %d", got)
	}
}

func TestStepErrors(t *testing.T) {
	pool := primitive.NewPool()
	reg := pool.New("r", 0)
	s := NewSystem()
	defer s.Shutdown()

	if _, err := s.Step(9); err == nil {
		t.Fatal("stepping unknown process succeeded")
	}
	if err := s.Spawn(0, incProgram(reg, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Spawn(0, incProgram(reg, 1)); err == nil {
		t.Fatal("duplicate spawn succeeded")
	}
	if err := s.Run([]int{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(0); !errors.Is(err, ErrFinished) {
		t.Fatalf("step finished proc: %v", err)
	}
}

func TestEmptyProgram(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	if err := s.Spawn(3, func(ctx primitive.Context) {}); err != nil {
		t.Fatal(err)
	}
	if !s.Done(3) {
		t.Fatal("empty program not done after spawn")
	}
	if len(s.Active()) != 0 {
		t.Fatal("active list not empty")
	}
	if _, ok := s.EnabledOf(3); ok {
		t.Fatal("finished proc has enabled event")
	}
}

func TestContextID(t *testing.T) {
	s := NewSystem()
	defer s.Shutdown()
	pool := primitive.NewPool()
	reg := pool.New("r", 0)

	got := make(chan int, 1)
	if err := s.Spawn(7, func(ctx primitive.Context) {
		got <- ctx.ID()
		ctx.Read(reg)
	}); err != nil {
		t.Fatal(err)
	}
	if id := <-got; id != 7 {
		t.Fatalf("ctx.ID() = %d", id)
	}
	if _, err := s.Step(7); err != nil {
		t.Fatal(err)
	}
}

func TestWouldChange(t *testing.T) {
	pool := primitive.NewPool()
	reg := pool.New("r", 5)
	tests := []struct {
		name string
		pd   Pending
		want bool
	}{
		{name: "read", pd: Pending{Kind: OpRead, Reg: reg}, want: false},
		{name: "same write", pd: Pending{Kind: OpWrite, Reg: reg, Value: 5}, want: false},
		{name: "changing write", pd: Pending{Kind: OpWrite, Reg: reg, Value: 6}, want: true},
		{name: "matching cas", pd: Pending{Kind: OpCAS, Reg: reg, Old: 5, New: 9}, want: true},
		{name: "stale cas", pd: Pending{Kind: OpCAS, Reg: reg, Old: 4, New: 9}, want: false},
		{name: "no-op cas", pd: Pending{Kind: OpCAS, Reg: reg, Old: 5, New: 5}, want: false},
	}
	for _, tt := range tests {
		if got := WouldChange(tt.pd); got != tt.want {
			t.Errorf("%s: WouldChange = %v", tt.name, got)
		}
	}
}

func TestRunToCompletion(t *testing.T) {
	pool := primitive.NewPool()
	reg := pool.New("r", 0)
	s := NewSystem()
	defer s.Shutdown()
	for id := 0; id < 4; id++ {
		if err := s.Spawn(id, incProgram(reg, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunToCompletion(10000); err != nil {
		t.Fatal(err)
	}
	if got := reg.Load(); got != 12 {
		t.Fatalf("final value %d, want 12", got)
	}
}

func TestRunToCompletionBudget(t *testing.T) {
	pool := primitive.NewPool()
	reg := pool.New("r", 0)
	s := NewSystem()
	defer s.Shutdown()
	if err := s.Spawn(0, incProgram(reg, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(10); err == nil {
		t.Fatal("budget overrun not reported")
	}
}

func TestShutdownUnblocksProcesses(t *testing.T) {
	pool := primitive.NewPool()
	reg := pool.New("r", 0)
	s := NewSystem()
	for id := 0; id < 8; id++ {
		if err := s.Spawn(id, incProgram(reg, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Take a few steps, then abandon mid-flight. Shutdown must return
	// (deadlock here fails the test by timeout).
	if err := s.Run([]int{0, 1, 2, 0}); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	s.Shutdown() // idempotent
}

// runOnce executes the given programs under the given scheduling function
// and returns the event log.
func runOnce(t *testing.T, build func(pool *primitive.Pool) []Program, schedule func(s *System) []int) []Event {
	t.Helper()
	pool := primitive.NewPool()
	programs := build(pool)
	s := NewSystem()
	defer s.Shutdown()
	for id, p := range programs {
		if err := s.Spawn(id, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(schedule(s)); err != nil {
		t.Fatal(err)
	}
	return s.Events()
}

func TestDeterministicReplay(t *testing.T) {
	build := func(pool *primitive.Pool) []Program {
		a := pool.New("a", 0)
		b := pool.New("b", 0)
		return []Program{
			func(ctx primitive.Context) {
				v := ctx.Read(a)
				ctx.Write(b, v+10)
				ctx.CAS(a, v, v+1)
			},
			incProgram(a, 2),
			func(ctx primitive.Context) {
				ctx.Write(a, 7)
				ctx.Read(b)
			},
		}
	}
	fixed := []int{0, 1, 2, 1, 0, 2, 1, 0, 1, 1, 1}

	// Two fresh runs of the same programs under the same schedule must
	// produce identical event logs.
	first := runOnce(t, build, func(*System) []int { return fixed })
	second := runOnce(t, build, func(*System) []int { return fixed })
	if len(first) != len(second) {
		t.Fatalf("event counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.Proc != b.Proc || a.Kind != b.Kind || a.Before != b.Before ||
			a.After != b.After || a.CASOK != b.CASOK || a.Reg.ID() != b.Reg.ID() {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestOpKindString(t *testing.T) {
	for _, k := range []OpKind{OpRead, OpWrite, OpCAS, OpKind(0)} {
		if k.String() == "" {
			t.Fatalf("empty String for %d", int(k))
		}
	}
}
