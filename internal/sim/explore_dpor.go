package sim

import (
	"fmt"
	"sort"
)

// This file is the dynamic partial-order reduction (DPOR) layer of the
// exploration engine. Exhaustive exploration (Explore, ExploreParallel)
// enumerates every interleaving, but most interleavings are redundant:
// schedules that differ only by swapping adjacent *independent* steps —
// steps on different registers, or read-only steps on the same register —
// produce literally the same events, responses, and final memory. Such
// schedules form one Mazurkiewicz trace equivalence class, and a checker
// that inspects only the execution (events, responses, final state) cannot
// distinguish its members, so visiting one representative per class finds
// exactly the same bugs at a fraction of the cost. This is the
// equivalence-class structure of read/write executions that the immediate
// snapshot protocol-complex literature formalizes; operationally we follow
// Godefroid's sleep sets, which prune a sibling branch exactly when the
// commuted interleaving through an earlier sibling has already been
// explored.
//
// Soundness is enforced mechanically rather than by trust:
// CrossCheckReduction runs reduced and unreduced exploration over the same
// configuration and verifies — via canonical-trace hashing over the
// recorded access footprints — that the reduced run covers every
// equivalence class the full run visits. make race-sim runs it at smoke
// size on every push; the dpor bench suite records the reduction factors.

// Footprint is one step's shared-memory access: the register index, the
// primitive, and whether the step wrote (a write, or a CAS counted by
// Wrote). Pending.Footprint sets Wrote conservatively for CAS (success
// unknown before execution); Event.Footprint records the actual outcome, so
// a failed CAS — which changed nothing — counts as a read.
type Footprint struct {
	Reg   int
	Kind  OpKind
	Wrote bool
}

// Independent reports whether two steps with these footprints commute: they
// access different registers, or neither writes. Independent steps can be
// swapped in a schedule without changing either step's response, any later
// step, or the final memory — the Mazurkiewicz independence relation the
// sleep sets prune by and the trace canonicalization groups by.
//
// The relation is sound for both footprint flavors, in the required
// direction: exploration decides against Pending footprints (CAS
// conservatively Wrote, never pruning a schedule that could differ), while
// TraceHash groups Event footprints (failed CAS refined to a read, so the
// classes exploration preserves are never split apart by the cross-check).
func Independent(a, b Footprint) bool {
	if a.Reg != b.Reg {
		return true
	}
	return !a.Wrote && !b.Wrote
}

// ExploreReduced enumerates at least one representative of EVERY
// Mazurkiewicz trace equivalence class of the system produced by build —
// instead of every interleaving, as Explore does — invoking check on each
// visited execution and returning how many executions it visited.
//
// The reduction is Godefroid-style sleep sets over the independence
// relation of Independent. Each search node carries a sleep set: processes
// whose pending step already had its subtree explored through an earlier
// sibling of some ancestor, in an order this branch merely commutes. A
// sleeping process is not scheduled at the node; entering a child via
// process p, a process q stays asleep only while its pending step is
// independent of p's (a dependent step wakes it, because the orderings now
// differ observably). The invariants, with the soundness argument, are
// spelled out in docs/exploration.md.
//
// For fully independent programs the schedule tree collapses to a single
// execution; for fully conflicting ones (every step a write to one shared
// register) there is no reduction and the visit set equals Explore's.
// check sees only complete executions, exactly as with Explore, and any
// property of the execution log/final state (linearizability of the
// recorded history, final memory assertions, step counts) is preserved
// class-wide, so checking representatives has identical bug-finding power.
//
// build must be deterministic, and budget behaves exactly as in Explore:
// the returned count equals the number of check calls, and reaching an
// execution beyond the cap returns a *BudgetError.
func ExploreReduced(build func() (*System, error), check func(*System) error, budget int) (int, error) {
	executions := 0

	var explore func(prefix, sleep []int) error
	explore = func(prefix, sleep []int) error {
		s, err := build()
		if err != nil {
			return fmt.Errorf("sim: explore build: %w", err)
		}
		defer s.Shutdown()
		if err := s.Run(prefix); err != nil {
			return fmt.Errorf("sim: explore replay: %w", err)
		}
		active := s.Active()
		if len(active) == 0 {
			if executions >= budget {
				return &BudgetError{Budget: budget, Prefix: append([]int(nil), prefix...)}
			}
			executions++
			if err := check(s); err != nil {
				return fmt.Errorf("sim: schedule %v: %w", prefix, err)
			}
			return nil
		}

		fps := pendingFootprints(s, active)
		asleep := make(map[int]bool, len(sleep))
		for _, id := range sleep {
			asleep[id] = true
		}
		// Explore the non-sleeping processes in ascending id order (the
		// deterministic sibling order ExploreParallel's reduced mode
		// reproduces). Once a sibling's subtree is done it joins the sleep
		// set of the later siblings: any schedule starting with a later,
		// independent first move was already visited modulo commutation.
		var explored []int
		for _, id := range active {
			if asleep[id] {
				continue
			}
			childSleep := sleepAfter(sleep, explored, fps, id)
			// Re-slice with a hard cap so sibling branches cannot alias
			// one another's prefix storage.
			if err := explore(append(prefix[:len(prefix):len(prefix)], id), childSleep); err != nil {
				return err
			}
			explored = append(explored, id)
		}
		// A node whose enabled processes are all asleep is fully redundant:
		// every continuation commutes into an already-explored subtree.
		return nil
	}
	if err := explore(nil, nil); err != nil {
		return executions, err
	}
	return executions, nil
}

// pendingFootprints collects the pending-step footprint of every active
// process at the current node.
func pendingFootprints(s *System, active []int) map[int]Footprint {
	fps := make(map[int]Footprint, len(active))
	for _, id := range active {
		pd, ok := s.EnabledOf(id)
		if !ok {
			continue // unreachable: active processes have pending events
		}
		fps[id] = pd.Footprint()
	}
	return fps
}

// sleepAfter builds the sleep set of the child entered by scheduling next:
// every process from the parent's sleep set or its already-explored earlier
// siblings whose pending step is independent of next's. A dependent step
// wakes the process — reordering it against next is observable, so its
// subtree must be explored again on this side.
func sleepAfter(sleep, explored []int, fps map[int]Footprint, next int) []int {
	out := make([]int, 0, len(sleep)+len(explored))
	for _, q := range sleep {
		if Independent(fps[q], fps[next]) {
			out = append(out, q)
		}
	}
	for _, q := range explored {
		if Independent(fps[q], fps[next]) {
			out = append(out, q)
		}
	}
	return out
}

// removeSleeping returns the active processes not in the (ascending) sleep
// set, preserving order.
func removeSleeping(active, sleep []int) []int {
	if len(sleep) == 0 {
		return active
	}
	asleep := make(map[int]bool, len(sleep))
	for _, id := range sleep {
		asleep[id] = true
	}
	out := make([]int, 0, len(active))
	for _, id := range active {
		if !asleep[id] {
			out = append(out, id)
		}
	}
	return out
}

// TraceHash returns a canonical 64-bit hash of the execution's Mazurkiewicz
// trace: two executions of the same deterministic programs hash equal if
// and only if (modulo hash collision) one can be transformed into the other
// by swapping adjacent independent events. It is computed from the Foata
// normal form of the event log's dependence order — each event's level is
// one past the deepest earlier event it depends on (same process, or
// dependent footprints per Independent over *recorded* Event footprints, so
// a failed CAS commutes like the read it effectively was) — with each level
// sorted by process id. Same-process events are totally ordered, so a
// process appears at most once per level and the (level, proc) sort is a
// true canonical form, not just a heuristic.
func TraceHash(events []Event) uint64 {
	n := len(events)
	depth := make([]int, n)
	fps := make([]Footprint, n)
	for i, ev := range events {
		fps[i] = ev.Footprint()
	}
	for i := 0; i < n; i++ {
		d := 0
		for j := 0; j < i; j++ {
			if events[j].Proc == events[i].Proc || !Independent(fps[j], fps[i]) {
				if depth[j] > d {
					d = depth[j]
				}
			}
		}
		depth[i] = d + 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if depth[i] != depth[j] {
			return depth[i] < depth[j]
		}
		return events[i].Proc < events[j].Proc
	})

	// FNV-1a over the canonical sequence. Every field hashed is invariant
	// under independent-adjacent swaps (Seq is not, and is excluded).
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, i := range order {
		ev := &events[i]
		mix(uint64(depth[i]))
		mix(uint64(ev.Proc))
		mix(uint64(ev.RegID))
		mix(uint64(ev.Kind))
		var ok uint64
		if ev.CASOK {
			ok = 1
		}
		mix(ok)
		mix(uint64(ev.Value))
		mix(uint64(ev.Old))
		mix(uint64(ev.New))
		mix(uint64(ev.Before))
		mix(uint64(ev.After))
	}
	return h
}

// ReductionStats reports one CrossCheckReduction run: the exhaustive and
// reduced execution counts, the number of distinct trace equivalence
// classes the full run visited, and the resulting reduction factor.
type ReductionStats struct {
	FullExecs    int
	ReducedExecs int
	Classes      int
	// Factor is FullExecs / ReducedExecs — the headline cut. ≥ 1 whenever
	// the cross-check passes.
	Factor float64
}

// String renders the stats as the one-line summary the smoke targets print.
func (r ReductionStats) String() string {
	return fmt.Sprintf("full=%d reduced=%d classes=%d reduction=%.1fx",
		r.FullExecs, r.ReducedExecs, r.Classes, r.Factor)
}

// CrossCheckReduction is the mechanical soundness check of the DPOR layer:
// it explores the configuration exhaustively AND reduced, canonicalizes
// every visited execution with TraceHash, and fails unless the reduced run
// covers every trace equivalence class the full run visits (and visits no
// class the full run does not — which would indicate a broken
// canonicalization or a nondeterministic build). budget bounds each run
// independently, exactly as in Explore.
func CrossCheckReduction(build func() (*System, error), budget int) (ReductionStats, error) {
	var stats ReductionStats

	full := make(map[uint64][]int) // class hash -> first schedule seen
	fullExecs, err := Explore(build, func(s *System) error {
		h := TraceHash(s.Events())
		if _, seen := full[h]; !seen {
			full[h] = append([]int(nil), s.Schedule()...)
		}
		return nil
	}, budget)
	if err != nil {
		return stats, fmt.Errorf("sim: crosscheck full exploration: %w", err)
	}

	reduced := make(map[uint64]bool)
	reducedExecs, err := ExploreReduced(build, func(s *System) error {
		reduced[TraceHash(s.Events())] = true
		return nil
	}, budget)
	if err != nil {
		return stats, fmt.Errorf("sim: crosscheck reduced exploration: %w", err)
	}

	stats = ReductionStats{
		FullExecs:    fullExecs,
		ReducedExecs: reducedExecs,
		Classes:      len(full),
	}
	if reducedExecs > 0 {
		stats.Factor = float64(fullExecs) / float64(reducedExecs)
	}

	var missing [][]int
	for h, sched := range full {
		if !reduced[h] {
			missing = append(missing, sched)
		}
	}
	if len(missing) > 0 {
		sortSchedulesLex(missing)
		return stats, fmt.Errorf(
			"sim: DPOR unsound on this configuration: reduced exploration missed %d of %d trace equivalence classes (e.g. the class of schedule %v)",
			len(missing), len(full), missing[0])
	}
	for h := range reduced {
		if _, ok := full[h]; !ok {
			return stats, fmt.Errorf(
				"sim: crosscheck inconsistency: reduced exploration visited a trace class the full exploration never produced (nondeterministic build, or a TraceHash bug)")
		}
	}
	return stats, nil
}

// sortSchedulesLex orders schedules lexicographically so error messages are
// deterministic.
func sortSchedulesLex(schedules [][]int) {
	sort.Slice(schedules, func(i, j int) bool {
		a, b := schedules[i], schedules[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
