// Package sim is a deterministic shared-memory execution simulator
// implementing the model of Hendler & Khait (PODC 2014, Section 2).
//
// Simulated processes are goroutines running ordinary algorithm code
// against a primitive.Context; before every shared-memory event the process
// publishes the event it is about to apply (object, primitive, operands)
// and blocks until a scheduler grants it. The scheduler therefore sees the
// full set of *enabled events* — exactly the information the paper's
// adversary constructions (Lemma 1, Theorems 1 and 3) act on — and executes
// events one at a time, producing a totally ordered execution with a
// complete event log.
//
// Executions are deterministic: the same programs driven by the same
// schedule (sequence of process ids) produce the same events and responses.
// That is what makes the paper's "erase a set of processes" surgery
// (Lemma 2, Claim 1) operational — internal/adversary replays a filtered
// schedule on a fresh system and checks the survivors cannot tell.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// OpKind identifies a shared-memory primitive.
type OpKind int

// The three primitives of the paper's model.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpCAS
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Pending is an enabled event: the shared-memory event a process will apply
// the next time it is scheduled.
type Pending struct {
	Proc  int
	Kind  OpKind
	Reg   *primitive.Register
	Value int64 // write operand
	Old   int64 // CAS expected value
	New   int64 // CAS new value
}

// Event is an applied shared-memory event.
type Event struct {
	Seq     int // position in the execution (0-based)
	Proc    int // issuing process
	Kind    OpKind
	Reg     *primitive.Register
	RegID   int   // pool identifier of Reg, recorded at Step time (the access footprint's register index)
	Value   int64 // write operand
	Old     int64 // CAS expected value
	New     int64 // CAS new value
	Before  int64 // register value before the event
	After   int64 // register value after the event
	Changed bool  // After != Before (the paper's "non-trivial")
	CASOK   bool  // CAS success (meaningless for read/write)
}

// Footprint is the shared-memory access a step performed: the register
// index, the primitive applied, and — for CAS — whether it succeeded. It is
// the per-step record the dynamic partial-order reduction machinery
// (explore_dpor.go) computes independence from: a failed CAS did not write,
// so the trace-equivalence relation may treat it as a read.
func (e Event) Footprint() Footprint {
	return Footprint{Reg: e.RegID, Kind: e.Kind, Wrote: e.Kind == OpWrite || (e.Kind == OpCAS && e.CASOK)}
}

// Footprint returns the access the pending event will apply. Whether a
// pending CAS will succeed depends on memory it has not read yet, so its
// footprint conservatively counts as a write (Wrote true) — the sound
// direction for pruning decisions taken before the step executes.
func (p Pending) Footprint() Footprint {
	return Footprint{Reg: p.Reg.ID(), Kind: p.Kind, Wrote: p.Kind != OpRead}
}

// Program is the code a simulated process runs. It must be deterministic
// and must touch shared memory only through the provided context.
type Program func(ctx primitive.Context)

type procResp struct {
	value int64
	ok    bool
}

type proc struct {
	id      int
	reqCh   chan Pending
	respCh  chan procResp
	pending *Pending
	done    bool
	steps   int
}

// System owns a set of simulated processes and the execution they build.
// Not safe for concurrent use: one goroutine (the "adversary") drives it.
type System struct {
	procs    map[int]*proc
	order    []int
	events   []Event
	schedule []int
	observer func(Event)
	kill     chan struct{}
	killOnce sync.Once
	wg       sync.WaitGroup

	// rec, when non-nil, is the Recycler this system draws cached process
	// shells from (see Recycler.NewSystem); plain NewSystem leaves it nil.
	rec *Recycler
}

// errKilled unwinds process goroutines at shutdown.
var errKilled = errors.New("sim: system shut down")

// ErrFinished is returned by Step for processes whose program has returned.
var ErrFinished = errors.New("sim: process has finished")

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{
		procs: make(map[int]*proc),
		kill:  make(chan struct{}),
	}
}

// Spawn starts a process with the given id running program, and blocks
// until its first enabled event is published (or the program returns
// without issuing any event).
func (s *System) Spawn(id int, program Program) error {
	if _, dup := s.procs[id]; dup {
		return fmt.Errorf("sim: process %d already spawned", id)
	}
	var p *proc
	if s.rec != nil {
		p = s.rec.getProc()
	}
	if p == nil {
		p = &proc{respCh: make(chan procResp)}
	}
	p.id = id
	// The request channel cannot be recycled: the process goroutine closes
	// it when its program returns.
	p.reqCh = make(chan Pending)
	s.procs[id] = p
	s.order = append(s.order, id)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(p.reqCh)
		defer func() {
			if r := recover(); r != nil && r != errKilled { //nolint:errorlint // sentinel identity
				panic(r)
			}
		}()
		program(simCtx{p: p, sys: s})
	}()

	s.pump(p)
	return nil
}

// pump receives the process's next enabled event (blocking until the
// process publishes one or its program returns).
func (s *System) pump(p *proc) {
	req, ok := <-p.reqCh
	if !ok {
		p.done = true
		p.pending = nil
		return
	}
	req.Proc = p.id
	p.pending = &req
}

// Enabled returns the enabled events of all active processes, ordered by
// process id (deterministic).
func (s *System) Enabled() []Pending {
	ids := s.Active()
	out := make([]Pending, 0, len(ids))
	for _, id := range ids {
		out = append(out, *s.procs[id].pending)
	}
	return out
}

// EnabledOf returns process id's enabled event, or false if the process is
// finished or unknown.
func (s *System) EnabledOf(id int) (Pending, bool) {
	p, ok := s.procs[id]
	if !ok || p.done {
		return Pending{}, false
	}
	return *p.pending, true
}

// Active returns the ids of spawned, unfinished processes in ascending
// order.
func (s *System) Active() []int {
	var ids []int
	for _, id := range s.order {
		if !s.procs[id].done {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Done reports whether process id has finished its program.
func (s *System) Done(id int) bool {
	p, ok := s.procs[id]
	return ok && p.done
}

// StepsOf reports how many events process id has applied.
func (s *System) StepsOf(id int) int {
	p, ok := s.procs[id]
	if !ok {
		return 0
	}
	return p.steps
}

// WouldChange reports whether applying the pending event right now would
// change its register's value — the paper's trivial/non-trivial
// classification, evaluated against current memory.
//
//tradeoffvet:outofband the scheduler peeks at memory to classify events; this inspection is the adversary's, not a process step
func WouldChange(p Pending) bool {
	cur := p.Reg.Load()
	switch p.Kind {
	case OpWrite:
		return p.Value != cur
	case OpCAS:
		return cur == p.Old && p.Old != p.New
	default:
		return false
	}
}

// Step applies process id's enabled event, appends it to the execution, and
// blocks until the process publishes its next event (or finishes).
//
//tradeoffvet:outofband the scheduler IS the shared memory here: it applies each event with direct register access and accounts the step itself
func (s *System) Step(id int) (Event, error) {
	p, ok := s.procs[id]
	if !ok {
		return Event{}, fmt.Errorf("sim: unknown process %d", id)
	}
	if p.done {
		return Event{}, fmt.Errorf("sim: step process %d: %w", id, ErrFinished)
	}

	pd := *p.pending
	before := pd.Reg.Load()
	var (
		after = before
		casOK bool
		resp  procResp
	)
	switch pd.Kind {
	case OpRead:
		resp = procResp{value: before}
	case OpWrite:
		pd.Reg.Store(pd.Value)
		after = pd.Value
	case OpCAS:
		casOK = pd.Reg.CompareAndSwap(pd.Old, pd.New)
		after = pd.Reg.Load()
		resp = procResp{ok: casOK}
	default:
		return Event{}, fmt.Errorf("sim: process %d has invalid pending op %v", id, pd.Kind)
	}

	ev := Event{
		Seq:     len(s.events),
		Proc:    id,
		Kind:    pd.Kind,
		Reg:     pd.Reg,
		RegID:   pd.Reg.ID(),
		Value:   pd.Value,
		Old:     pd.Old,
		New:     pd.New,
		Before:  before,
		After:   after,
		Changed: after != before,
		CASOK:   casOK,
	}
	s.events = append(s.events, ev)
	s.schedule = append(s.schedule, id)
	p.steps++
	if s.observer != nil {
		s.observer(ev)
	}

	p.respCh <- resp
	s.pump(p)
	return ev, nil
}

// Run applies a whole schedule (sequence of process ids), stopping at the
// first error.
func (s *System) Run(schedule []int) error {
	for i, id := range schedule {
		if _, err := s.Step(id); err != nil {
			return fmt.Errorf("sim: schedule position %d: %w", i, err)
		}
	}
	return nil
}

// RunToCompletion steps the active processes round-robin until all finish
// or maxEvents is exceeded.
func (s *System) RunToCompletion(maxEvents int) error {
	for len(s.events) < maxEvents {
		ids := s.Active()
		if len(ids) == 0 {
			return nil
		}
		for _, id := range ids {
			if s.Done(id) {
				continue
			}
			if _, err := s.Step(id); err != nil {
				return err
			}
		}
	}
	if len(s.Active()) > 0 {
		return fmt.Errorf("sim: execution exceeded %d events", maxEvents)
	}
	return nil
}

// SetObserver installs a callback invoked synchronously from Step after
// each event is applied and logged — the hook live exporters and trackers
// (internal/aware, obs.ChromeTrace streaming) consume events through
// without waiting for the execution to finish. Pass nil to remove it. The
// callback runs on the scheduler's goroutine and must not re-enter the
// System.
func (s *System) SetObserver(fn func(Event)) { s.observer = fn }

// Events returns the execution's event log (shared slice: callers must not
// modify it).
func (s *System) Events() []Event { return s.events }

// Schedule returns the executed schedule so far (shared slice: callers must
// not modify it).
func (s *System) Schedule() []int { return s.schedule }

// Shutdown terminates all process goroutines and waits for them to exit.
// The system must not be used afterwards.
func (s *System) Shutdown() {
	s.killOnce.Do(func() { close(s.kill) })
	s.wg.Wait()
}

// simCtx adapts the scheduler rendezvous to primitive.Context.
type simCtx struct {
	p   *proc
	sys *System
}

var _ primitive.Context = simCtx{}

// ID implements primitive.Context.
func (c simCtx) ID() int { return c.p.id }

// Read implements primitive.Context.
func (c simCtx) Read(r *primitive.Register) int64 {
	return c.issue(Pending{Kind: OpRead, Reg: r}).value
}

// Write implements primitive.Context.
func (c simCtx) Write(r *primitive.Register, v int64) {
	c.issue(Pending{Kind: OpWrite, Reg: r, Value: v})
}

// CAS implements primitive.Context.
func (c simCtx) CAS(r *primitive.Register, old, new int64) bool {
	return c.issue(Pending{Kind: OpCAS, Reg: r, Old: old, New: new}).ok
}

func (c simCtx) issue(pd Pending) procResp {
	select {
	case c.p.reqCh <- pd:
	case <-c.sys.kill:
		panic(errKilled)
	}
	select {
	case resp := <-c.p.respCh:
		return resp
	case <-c.sys.kill:
		panic(errKilled)
	}
}
