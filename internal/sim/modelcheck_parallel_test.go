package sim_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
)

// Parallel counterparts of the exhaustive model-check tests: the same
// builders explored through sim.ExploreParallel across several worker
// counts, with the recorder for each in-flight system tracked through a
// sync.Map (workers hold distinct systems concurrently, so the sequential
// helper's single captured recorder variable would race).

// checkExhaustiveParallel enumerates every schedule of build's programs via
// ExploreParallel and verifies each history against spec. Registers come
// from the worker's recycled pool and systems from its recycled
// scaffolding, so this also exercises the replay-reuse path under the exact
// linearizability oracle.
func checkExhaustiveParallel(t *testing.T, build buildFn, spec history.Spec, workers, budget int) int {
	t.Helper()
	var recorders sync.Map // *sim.System -> *history.Recorder
	buildSystem := func(rec *sim.Recycler) (*sim.System, error) {
		pool := rec.Pool()
		programs, r := build(pool)
		s := rec.NewSystem()
		for id, p := range programs {
			if err := s.Spawn(id, p); err != nil {
				return nil, err
			}
		}
		recorders.Store(s, r)
		return s, nil
	}
	execs, err := sim.ExploreParallel(buildSystem, func(s *sim.System) error {
		r, ok := recorders.LoadAndDelete(s)
		if !ok {
			return fmt.Errorf("no recorder bound to system %p", s)
		}
		return history.CheckLinearizable(r.(*history.Recorder).Ops(), spec)
	}, sim.Options{Workers: workers, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	return execs
}

func buildExhaustiveAACMaxReg(pool *primitive.Pool) ([]sim.Program, *history.Recorder) {
	rec := history.NewRecorder()
	m, err := maxreg.NewAAC(pool, 4)
	if err != nil {
		panic(err)
	}
	return []sim.Program{
		maxRegProgram(m, rec, []history.Op{{Kind: history.KindWriteMax, Arg: 3}}),
		maxRegProgram(m, rec, []history.Op{{Kind: history.KindWriteMax, Arg: 1}}),
		maxRegProgram(m, rec, []history.Op{{Kind: history.KindReadMax}, {Kind: history.KindReadMax}}),
	}, rec
}

func buildExhaustiveCASCounter(pool *primitive.Pool) ([]sim.Program, *history.Recorder) {
	rec := history.NewRecorder()
	c, err := counter.NewCAS(pool, 0)
	if err != nil {
		panic(err)
	}
	return []sim.Program{
		counterProgram(c, rec, []history.Kind{history.KindIncrement}),
		counterProgram(c, rec, []history.Kind{history.KindIncrement}),
		counterProgram(c, rec, []history.Kind{history.KindCounterRead}),
	}, rec
}

func TestExhaustiveParallelAACMaxReg(t *testing.T) {
	seq := checkExhaustive(t, buildExhaustiveAACMaxReg, history.MaxRegisterSpec{}, 100000)
	for _, workers := range []int{1, 4} {
		execs := checkExhaustiveParallel(t, buildExhaustiveAACMaxReg, history.MaxRegisterSpec{}, workers, 100000)
		if execs != seq {
			t.Fatalf("workers=%d explored %d executions, sequential explored %d", workers, execs, seq)
		}
	}
	t.Logf("explored %d complete executions per engine", seq)
}

func TestExhaustiveParallelCASCounter(t *testing.T) {
	seq := checkExhaustive(t, buildExhaustiveCASCounter, history.CounterSpec{}, 100000)
	for _, workers := range []int{1, 4} {
		execs := checkExhaustiveParallel(t, buildExhaustiveCASCounter, history.CounterSpec{}, workers, 100000)
		if execs != seq {
			t.Fatalf("workers=%d explored %d executions, sequential explored %d", workers, execs, seq)
		}
	}
	t.Logf("explored %d complete executions per engine", seq)
}

// TestCrashScenariosParallelSeeds runs the max-register crash workload's
// seeds concurrently — a smoke test that independent Systems on real
// goroutines do not interfere (each seed owns its pool, recorder, and
// system; failures are collected, not raised off the test goroutine).
func TestCrashScenariosParallelSeeds(t *testing.T) {
	const seeds = 12
	errs := make(chan error, seeds)
	var wg sync.WaitGroup
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- runCrashSeed(seed)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// runCrashSeed is one self-contained crash scenario: 6 writers on the AAC
// max register, two crashed mid-operation, survivors and a late reader
// checked for linearizability. It mirrors the "aac" case of
// TestCrashedWritersDoNotWedgeMaxRegisters but reports instead of
// t.Fatal-ing so it can run off the test goroutine.
func runCrashSeed(seed int64) error {
	pool := primitive.NewPool()
	m, err := maxreg.NewAAC(pool, 1<<10)
	if err != nil {
		return err
	}
	rec := history.NewRecorder()
	inflight := newInflightLog()
	crashed := map[int]int{0: 3, 1: 7}

	s := sim.NewSystem()
	defer s.Shutdown()
	for p := 0; p < 6; p++ {
		p := p
		if err := s.Spawn(p, func(ctx primitive.Context) {
			for i := 1; i <= 3; i++ {
				op := history.Op{Proc: p, Kind: history.KindWriteMax, Arg: int64(p*10 + i)}
				inv := inflight.begin(rec, op)
				if err := m.WriteMax(ctx, op.Arg); err != nil {
					panic(err)
				}
				inflight.commit(rec, op, inv)
			}
		}); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for {
		var runnable []int
		for _, id := range s.Active() {
			if limit, isCrashed := crashed[id]; !isCrashed || s.StepsOf(id) < limit {
				runnable = append(runnable, id)
			}
		}
		if len(runnable) == 0 {
			break
		}
		if _, err := s.Step(runnable[rng.Intn(len(runnable))]); err != nil {
			return err
		}
	}
	inflight.flushCrashed(rec, crashed)

	var got int64
	if err := s.Spawn(10, func(ctx primitive.Context) {
		inv := rec.Invoke()
		got = m.ReadMax(ctx)
		rec.Record(history.Op{Proc: 10, Kind: history.KindReadMax, Ret: got}, inv)
	}); err != nil {
		return err
	}
	for !s.Done(10) {
		if _, err := s.Step(10); err != nil {
			return err
		}
	}
	if got < 53 {
		return fmt.Errorf("seed %d: read %d after p5 completed WriteMax(53)", seed, got)
	}
	if err := history.CheckMaxRegister(rec.Ops()); err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	return nil
}
