package sim

import (
	"fmt"
)

// BudgetError reports that an exploration reached more complete executions
// than its budget allows. Prefix is the full schedule of the first
// over-budget execution — the witness callers need to shrink a
// configuration or raise the budget deliberately instead of guessing.
//
// The over-budget execution itself is neither counted nor checked: every
// engine (Explore, ExploreReduced, ExploreParallel) guarantees that the
// returned execution count equals the number of executions check ran on, so
// the execution landing exactly on the budget boundary is always checked
// before the error surfaces.
type BudgetError struct {
	Budget int
	Prefix []int
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: exploration exceeded budget of %d executions (first over-budget schedule %v)", e.Budget, e.Prefix)
}

// Explore enumerates EVERY schedule of the system produced by build,
// invoking check on each completed execution, and returns how many
// executions it visited.
//
// Goroutine state cannot be forked, so exploration replays prefixes: for
// each tree node the system is rebuilt from scratch and driven down the
// prefix. build must therefore be deterministic (same programs, same
// registers) — the same requirement the adversary's erase-and-replay
// surgery imposes.
//
// budget caps the number of complete executions; reaching another one
// beyond the cap returns a *BudgetError carrying the offending schedule
// (exhaustive exploration grows combinatorially, so configurations must be
// chosen small). The execution that lands exactly on the budget boundary is
// still checked and counted before the error can surface — the returned
// count always equals the number of check calls, matching ExploreParallel.
//
// Explore is the single-core reference implementation; ExploreParallel
// visits the identical execution set across a work-stealing worker pool
// with replay reuse, and ExploreReduced visits one representative per
// Mazurkiewicz trace equivalence class instead of every interleaving.
func Explore(build func() (*System, error), check func(*System) error, budget int) (int, error) {
	executions := 0

	// runPrefix rebuilds, replays prefix, and returns the active set (nil
	// means the execution is complete and check has run).
	runPrefix := func(prefix []int) ([]int, error) {
		s, err := build()
		if err != nil {
			return nil, fmt.Errorf("sim: explore build: %w", err)
		}
		defer s.Shutdown()
		if err := s.Run(prefix); err != nil {
			return nil, fmt.Errorf("sim: explore replay: %w", err)
		}
		if active := s.Active(); len(active) != 0 {
			return active, nil
		}
		// Budget test BEFORE counting: the first over-budget execution is
		// the error witness, not a visited execution — it is neither counted
		// nor checked, so the boundary execution (number == budget) always
		// had check run on it before the error returns.
		if executions >= budget {
			return nil, &BudgetError{Budget: budget, Prefix: append([]int(nil), prefix...)}
		}
		executions++
		if err := check(s); err != nil {
			return nil, fmt.Errorf("sim: schedule %v: %w", prefix, err)
		}
		return nil, nil
	}

	var explore func(prefix []int) error
	explore = func(prefix []int) error {
		active, err := runPrefix(prefix)
		if err != nil {
			return err
		}
		for _, id := range active {
			// Re-slice with a hard cap so sibling branches cannot alias
			// one another's prefix storage.
			if err := explore(append(prefix[:len(prefix):len(prefix)], id)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := explore(nil); err != nil {
		return executions, err
	}
	return executions, nil
}
