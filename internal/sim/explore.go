package sim

import (
	"fmt"
)

// BudgetError reports that an exploration visited more complete executions
// than its budget allows. Prefix is the full schedule of the first
// over-budget execution — the witness callers need to shrink a
// configuration or raise the budget deliberately instead of guessing.
type BudgetError struct {
	Budget int
	Prefix []int
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: exploration exceeded budget of %d executions (first over-budget schedule %v)", e.Budget, e.Prefix)
}

// Explore enumerates EVERY schedule of the system produced by build,
// invoking check on each completed execution, and returns how many
// executions it visited.
//
// Goroutine state cannot be forked, so exploration replays prefixes: for
// each tree node the system is rebuilt from scratch and driven down the
// prefix. build must therefore be deterministic (same programs, same
// registers) — the same requirement the adversary's erase-and-replay
// surgery imposes.
//
// budget caps the number of complete executions; exceeding it returns a
// *BudgetError carrying the offending schedule (exhaustive exploration
// grows combinatorially, so configurations must be chosen small).
//
// Explore is the single-core reference implementation; ExploreParallel
// visits the identical execution set across a work-stealing worker pool
// with replay reuse.
func Explore(build func() (*System, error), check func(*System) error, budget int) (int, error) {
	executions := 0

	// runPrefix rebuilds, replays prefix, and returns the active set (nil
	// means the execution is complete and check has run).
	runPrefix := func(prefix []int) ([]int, error) {
		s, err := build()
		if err != nil {
			return nil, fmt.Errorf("sim: explore build: %w", err)
		}
		defer s.Shutdown()
		if err := s.Run(prefix); err != nil {
			return nil, fmt.Errorf("sim: explore replay: %w", err)
		}
		if active := s.Active(); len(active) != 0 {
			return active, nil
		}
		executions++
		if executions > budget {
			return nil, &BudgetError{Budget: budget, Prefix: append([]int(nil), prefix...)}
		}
		if err := check(s); err != nil {
			return nil, fmt.Errorf("sim: schedule %v: %w", prefix, err)
		}
		return nil, nil
	}

	var explore func(prefix []int) error
	explore = func(prefix []int) error {
		active, err := runPrefix(prefix)
		if err != nil {
			return err
		}
		for _, id := range active {
			// Re-slice with a hard cap so sibling branches cannot alias
			// one another's prefix storage.
			if err := explore(append(prefix[:len(prefix):len(prefix)], id)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := explore(nil); err != nil {
		return executions, err
	}
	return executions, nil
}
