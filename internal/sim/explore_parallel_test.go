package sim

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// buildTwoWritersRecycled is buildTwoWriters through the worker's recycler:
// registers from the reset pool, the system from recycled scaffolding.
func buildTwoWritersRecycled(steps int) Build {
	return func(rec *Recycler) (*System, error) {
		pool := rec.Pool()
		a := pool.New("a", 0)
		b := pool.New("b", 0)
		s := rec.NewSystem()
		for id, reg := range []*primitive.Register{a, b} {
			reg := reg
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps; i++ {
					ctx.Write(reg, int64(i))
				}
			}); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

// ignoreRecycler adapts an Explore-style builder: correct, just reuse-free.
func ignoreRecycler(build func() (*System, error)) Build {
	return func(*Recycler) (*System, error) { return build() }
}

func TestExploreParallelCountsInterleavings(t *testing.T) {
	// Two independent 3-step processes: C(6,3) = 20 schedules, regardless
	// of worker count and regardless of whether the build recycles.
	builds := map[string]Build{
		"recycled": buildTwoWritersRecycled(3),
		"plain":    ignoreRecycler(buildTwoWriters(3)),
	}
	for name, build := range builds {
		for _, workers := range []int{1, 2, 4, 8} {
			var checked atomic64
			execs, err := ExploreParallel(build, func(s *System) error {
				checked.inc()
				if len(s.Events()) != 6 {
					return errors.New("incomplete execution passed to check")
				}
				return nil
			}, Options{Workers: workers, Budget: 100})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if execs != 20 || checked.load() != 20 {
				t.Fatalf("%s workers=%d: execs=%d checked=%d, want 20", name, workers, execs, checked.load())
			}
		}
	}
}

// atomic64 is a tiny test-local counter safe for concurrent check calls.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) inc() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// collectSchedules runs an exploration and returns the multiset of complete
// schedules it visited, sorted lexicographically for comparison.
func sortSchedules(schedules [][]int) {
	sort.Slice(schedules, func(i, j int) bool {
		a, b := schedules[i], schedules[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

func TestExploreParallelMatchesSequentialScheduleSet(t *testing.T) {
	// The determinism cross-check of the engine: sequential Explore and
	// ExploreParallel must visit the identical execution multiset — same
	// count, same schedules — for every worker count.
	steps := 3
	if testing.Short() {
		steps = 2
	}

	var seq [][]int
	seqExecs, err := Explore(buildTwoWriters(steps), func(s *System) error {
		seq = append(seq, append([]int(nil), s.Schedule()...))
		return nil
	}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sortSchedules(seq)

	for _, workers := range []int{1, 2, 4, 8} {
		var mu sync.Mutex
		var par [][]int
		parExecs, err := ExploreParallel(buildTwoWritersRecycled(steps), func(s *System) error {
			cp := append([]int(nil), s.Schedule()...)
			mu.Lock()
			par = append(par, cp)
			mu.Unlock()
			return nil
		}, Options{Workers: workers, Budget: 1_000_000})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if parExecs != seqExecs {
			t.Fatalf("workers=%d: %d executions, sequential visited %d", workers, parExecs, seqExecs)
		}
		sortSchedules(par)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d schedules, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if len(par[i]) != len(seq[i]) {
				t.Fatalf("workers=%d: schedule %d is %v, want %v", workers, i, par[i], seq[i])
			}
			for k := range seq[i] {
				if par[i][k] != seq[i][k] {
					t.Fatalf("workers=%d: schedule %d is %v, want %v", workers, i, par[i], seq[i])
				}
			}
		}
	}
}

func TestExploreParallelBudget(t *testing.T) {
	_, err := ExploreParallel(buildTwoWritersRecycled(4), func(*System) error { return nil },
		Options{Workers: 4, Budget: 10})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget overrun not reported as *BudgetError: %v", err)
	}
	if be.Budget != 10 {
		t.Fatalf("BudgetError.Budget = %d, want 10", be.Budget)
	}
	// The witness is a complete execution of the two 4-step writers.
	if len(be.Prefix) != 8 {
		t.Fatalf("BudgetError.Prefix = %v, want a complete 8-event schedule", be.Prefix)
	}
}

func TestExploreParallelBudgetErrorShutdown(t *testing.T) {
	// A budget overrun mid-exploration must (a) surface as the typed
	// *BudgetError whose Prefix is a real, replayable complete schedule,
	// (b) keep the count == checks invariant despite workers racing toward
	// the cap, and (c) shut every worker and simulated-process goroutine
	// down — no leaks for the race detector to chase.
	before := runtime.NumGoroutine()

	var checked atomic64
	execs, err := ExploreParallel(buildTwoWritersRecycled(4), func(*System) error {
		checked.inc()
		return nil
	}, Options{Workers: 8, Budget: 10})

	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget overrun not reported as *BudgetError: %v", err)
	}
	if be.Budget != 10 {
		t.Fatalf("BudgetError.Budget = %d, want 10", be.Budget)
	}
	if int64(execs) != checked.load() {
		t.Fatalf("count %d != %d check calls — over-budget executions must be neither counted nor checked",
			execs, checked.load())
	}
	if execs > 10 {
		t.Fatalf("count %d exceeds the budget of 10", execs)
	}

	// The witness prefix must replay to a complete execution on a fresh
	// system — a valid offending schedule, not a torn snapshot.
	s, err := buildTwoWriters(4)()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if err := s.Run(be.Prefix); err != nil {
		t.Fatalf("BudgetError.Prefix %v does not replay: %v", be.Prefix, err)
	}
	if len(s.Active()) != 0 || len(s.Events()) != 8 {
		t.Fatalf("BudgetError.Prefix %v replayed to %d events with active %v, want a complete 8-event execution",
			be.Prefix, len(s.Events()), s.Active())
	}

	// Worker pool and simulated processes must all have exited. Goroutine
	// teardown is asynchronous after Shutdown returns the channels, so poll
	// briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after budget shutdown: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestExploreBudgetErrorReportsPrefix(t *testing.T) {
	// The sequential reference must carry the same typed witness.
	_, err := Explore(buildTwoWriters(4), func(*System) error { return nil }, 10)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget overrun not reported as *BudgetError: %v", err)
	}
	if be.Budget != 10 || len(be.Prefix) != 8 {
		t.Fatalf("BudgetError = %+v, want budget 10 and a complete 8-event schedule", be)
	}
}

func TestExploreParallelPropagatesCheckError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := ExploreParallel(buildTwoWritersRecycled(1), func(*System) error { return sentinel },
		Options{Workers: 4, Budget: 100})
	if !errors.Is(err, sentinel) {
		t.Fatalf("check error lost: %v", err)
	}
}

func TestExploreParallelPropagatesBuildError(t *testing.T) {
	sentinel := errors.New("cannot build")
	_, err := ExploreParallel(func(*Recycler) (*System, error) { return nil, sentinel },
		func(*System) error { return nil }, Options{Workers: 4, Budget: 10})
	if !errors.Is(err, sentinel) {
		t.Fatalf("build error lost: %v", err)
	}
}

func TestRecyclerReusesRegistersAndScaffolding(t *testing.T) {
	rec := NewRecycler()

	build := buildTwoWritersRecycled(2)
	s1, err := build(rec)
	if err != nil {
		t.Fatal(err)
	}
	regs1 := rec.pool.Registers()
	rec.Release(s1)

	s2, err := build(rec)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Release(s2)
	regs2 := rec.pool.Registers()

	if len(regs1) != 2 || len(regs2) != 2 {
		t.Fatalf("pool sizes %d, %d, want 2 each", len(regs1), len(regs2))
	}
	for i := range regs1 {
		if regs1[i] != regs2[i] {
			t.Fatalf("register %d reallocated instead of reused", i)
		}
		if regs2[i].ID() != i {
			t.Fatalf("register %d has id %d after reuse", i, regs2[i].ID())
		}
	}

	// The recycled system must behave exactly like a fresh one.
	if err := s2.Run([]int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if len(s2.Events()) != 4 || len(s2.Active()) != 0 {
		t.Fatalf("recycled system misbehaved: %d events, active %v", len(s2.Events()), s2.Active())
	}
}

func TestPoolResetReissuesIdenticalRegisters(t *testing.T) {
	pool := primitive.NewPool()
	a := pool.New("a", 7)
	b := pool.New("b", 9)
	if a.ID() != 0 || b.ID() != 1 || pool.Len() != 2 {
		t.Fatalf("fresh pool ids %d,%d len %d", a.ID(), b.ID(), pool.Len())
	}
	a.Store(100) // dirty the register across the cycle boundary

	pool.Reset()
	if pool.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", pool.Len())
	}
	a2 := pool.New("a2", 3)
	if a2 != a {
		t.Fatal("Reset pool allocated fresh storage instead of reusing")
	}
	if a2.ID() != 0 || a2.Name() != "a2" || a2.Load() != 3 {
		t.Fatalf("reissued register id=%d name=%q val=%d, want 0/a2/3", a2.ID(), a2.Name(), a2.Load())
	}
	// Growth past the previous cycle's size still works.
	c := pool.New("c", 0)
	d := pool.New("d", 0)
	if c != b || d == a || d == b {
		t.Fatal("reuse-then-grow sequence broken")
	}
	if d.ID() != 2 || pool.Len() != 3 {
		t.Fatalf("grown pool id=%d len=%d, want 2/3", d.ID(), pool.Len())
	}
}
