package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures ExploreParallel.
type Options struct {
	// Workers is the number of worker goroutines partitioning the schedule
	// tree; <= 0 means runtime.GOMAXPROCS(0). Workers == 1 still benefits
	// from replay reuse (recycled scaffolding, last-branch continuation),
	// which is the ablation `make explore-bench` records against the
	// sequential Explore.
	Workers int

	// Budget caps the number of complete executions, exactly like Explore's
	// budget argument: reaching one beyond the cap aborts the exploration
	// with a *BudgetError. Workers race toward the cap, so executions beyond
	// Budget may transiently be reached, but — matching the sequential
	// engines — over-budget executions are neither counted nor checked: the
	// returned count equals the number of check calls.
	Budget int

	// Reduce switches the engine to dynamic partial-order reduction: the
	// work-stealing deques carry per-node sleep sets and the visited
	// execution set shrinks from every interleaving to (at least) one
	// representative per Mazurkiewicz trace equivalence class — the same
	// set ExploreReduced visits sequentially. See ExploreReduced and
	// docs/exploration.md; CrossCheckReduction verifies class coverage
	// mechanically. With Reduce set, the execution count is compared
	// against ExploreReduced, not Explore.
	Reduce bool
}

// Build constructs one replay instance for parallel exploration. It must be
// deterministic: every call must produce the same programs over the same
// registers, in the same order — the requirement Explore already imposes,
// now per worker.
//
// The worker's Recycler is offered for replay reuse: builders that allocate
// registers from rec.Pool() and systems from rec.NewSystem() recycle
// storage across the worker's thousands of rebuilds. Ignoring rec and
// calling primitive.NewPool/NewSystem directly is always correct, just
// slower.
type Build func(rec *Recycler) (*System, error)

// ExploreParallel enumerates EVERY schedule of the system produced by
// build, like Explore, but partitions the schedule tree across a
// work-stealing worker pool: each worker owns a deque of frontier prefixes
// (LIFO for the owner, so exploration stays depth-first and prefixes stay
// short; FIFO for thieves, so idle workers steal the shallowest — largest —
// subtrees). It returns how many complete executions were visited.
//
// Two forms of replay reuse cut the per-node rebuild cost. Each worker
// recycles System scaffolding and its register pool through its Recycler
// (see Build). And each rebuild is driven all the way to a leaf: at every
// interior node the worker pushes all children but the last onto its deque
// and *steps the live system* into the last child instead of rebuilding —
// so the number of rebuilds equals the number of complete executions, not
// the number of tree nodes.
//
// The visited execution set is identical to Explore's (the tree is a
// property of the programs, not of the workers) — or, with Options.Reduce,
// to ExploreReduced's: the sleep-set-pruned tree is likewise fixed by the
// programs and the ascending sibling order, so reduction and work stealing
// compose without changing what is visited. Only the visit order differs,
// so check must be order-insensitive. check runs concurrently on
// different workers (each call receives a different *System) and must not
// retain the system, its events, or its schedule beyond the call — the
// worker recycles them immediately after.
//
// The first error (build, replay, over-budget, or check) cancels all
// workers and is returned alongside the number of executions counted so
// far.
//
// The worker pool is scheduler-side concurrency: real goroutines exploring
// simulated schedules, outside the paper's step accounting.
func ExploreParallel(build Build, check func(*System) error, opts Options) (int, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &exploreEngine{
		build:  build,
		check:  check,
		budget: opts.Budget,
		reduce: opts.Reduce,
		pool:   make([]*exploreWorker, workers),
	}
	for i := range e.pool {
		e.pool[i] = &exploreWorker{rec: NewRecycler()}
	}

	// Seed worker 0 with the root node (the empty schedule, empty sleep set).
	e.outstanding.Store(1)
	e.pool[0].push(frontierNode{})

	var wg sync.WaitGroup
	for i := range e.pool {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			e.run(idx)
		}(i)
	}
	wg.Wait()

	execs := int(e.execs.Load())
	e.errMu.Lock()
	err := e.err
	e.errMu.Unlock()
	return execs, err
}

// exploreEngine is the state shared by all workers of one ExploreParallel
// call.
type exploreEngine struct {
	build  Build
	check  func(*System) error
	budget int
	reduce bool // sleep-set DPOR (Options.Reduce)

	pool        []*exploreWorker
	execs       atomic.Int64 // complete executions visited (and checked)
	outstanding atomic.Int64 // frontier nodes queued or in flight
	stop        atomic.Bool  // first-error (or budget) cancellation

	errMu sync.Mutex
	err   error
}

// frontierNode is one queued subtree root: the schedule prefix reaching it
// and — in reduced mode — the sleep set it was entered with (ascending
// process ids; always nil when the engine is not reducing).
type frontierNode struct {
	prefix []int
	sleep  []int
}

// exploreWorker owns one deque of frontier nodes and one recycler. The
// deque is mutex-guarded: the owner touches it once per interior node and
// thieves only when idle, so contention is negligible next to the channel
// rendezvous of replaying a prefix.
type exploreWorker struct {
	mu    sync.Mutex
	deque []frontierNode
	rec   *Recycler
}

// push appends a node at the owner's (tail) end.
func (w *exploreWorker) push(node frontierNode) {
	w.mu.Lock()
	w.deque = append(w.deque, node)
	w.mu.Unlock()
}

// pop removes the most recently pushed node (tail: depth-first).
func (w *exploreWorker) pop() (frontierNode, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.deque)
	if n == 0 {
		return frontierNode{}, false
	}
	p := w.deque[n-1]
	w.deque[n-1] = frontierNode{}
	w.deque = w.deque[:n-1]
	return p, true
}

// stealFrom removes the oldest node (head: the shallowest subtree, so a
// thief walks away with as much work as one handoff can carry).
func (w *exploreWorker) stealFrom() (frontierNode, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.deque) == 0 {
		return frontierNode{}, false
	}
	p := w.deque[0]
	w.deque[0] = frontierNode{}
	w.deque = w.deque[1:]
	return p, true
}

// run is one worker's loop: drain own deque, steal when empty, exit when
// the frontier is globally exhausted or the engine is cancelled.
func (e *exploreEngine) run(idx int) {
	w := e.pool[idx]
	for {
		if e.stop.Load() {
			return
		}
		node, ok := w.pop()
		if !ok {
			node, ok = e.steal(idx)
		}
		if !ok {
			if e.outstanding.Load() == 0 {
				return
			}
			// Another worker holds the remaining frontier in flight; yield
			// rather than spin so the simulated process goroutines get the
			// cores.
			time.Sleep(10 * time.Microsecond)
			continue
		}
		e.descend(w, node)
		e.outstanding.Add(-1)
	}
}

// steal scans the other workers round-robin for a node to take.
func (e *exploreEngine) steal(idx int) (frontierNode, bool) {
	for i := 1; i < len(e.pool); i++ {
		victim := e.pool[(idx+i)%len(e.pool)]
		if p, ok := victim.stealFrom(); ok {
			return p, ok
		}
	}
	return frontierNode{}, false
}

// descend rebuilds a system, replays the node's prefix, and drives the live
// system all the way to a complete execution, pushing every non-final child
// encountered on the way down as new frontier nodes (last-branch
// continuation: one rebuild per leaf, not per node). In reduced mode the
// children are the non-sleeping processes and each pushed node carries the
// sleep set it must be entered with; which child the worker continues into
// does not matter, because a child's sleep set depends only on the fixed
// ascending sibling order, never on exploration order — that is what makes
// sleep sets safe to partition across thieves.
func (e *exploreEngine) descend(w *exploreWorker, node frontierNode) {
	s, err := e.build(w.rec)
	if err != nil {
		e.fail(fmt.Errorf("sim: explore build: %w", err))
		return
	}
	defer w.rec.Release(s)
	if err := s.Run(node.prefix); err != nil {
		e.fail(fmt.Errorf("sim: explore replay: %w", err))
		return
	}
	sleep := node.sleep

	for {
		if e.stop.Load() {
			return
		}
		active := s.Active()
		if len(active) == 0 {
			// Budget test mirroring the sequential engines: the execution
			// that would exceed the cap is un-counted again and reported,
			// so the final count equals the number of check calls.
			execs := e.execs.Add(1)
			if execs > int64(e.budget) {
				e.execs.Add(-1)
				e.fail(&BudgetError{Budget: e.budget, Prefix: append([]int(nil), s.Schedule()...)})
				return
			}
			if err := e.check(s); err != nil {
				e.fail(fmt.Errorf("sim: schedule %v: %w", append([]int(nil), s.Schedule()...), err))
			}
			return
		}

		next := active
		var fps map[int]Footprint
		if e.reduce {
			next = removeSleeping(active, sleep)
			if len(next) == 0 {
				// Sleep-set blocked: every continuation commutes into an
				// already-explored subtree. Not an execution; abandon.
				return
			}
			fps = pendingFootprints(s, active)
		}
		if len(next) > 1 {
			cur := s.Schedule()
			for i, id := range next[:len(next)-1] {
				child := make([]int, len(cur)+1)
				copy(child, cur)
				child[len(cur)] = id
				var childSleep []int
				if e.reduce {
					childSleep = sleepAfter(sleep, next[:i], fps, id)
				}
				e.outstanding.Add(1)
				w.push(frontierNode{prefix: child, sleep: childSleep})
			}
		}
		last := next[len(next)-1]
		if e.reduce {
			sleep = sleepAfter(sleep, next[:len(next)-1], fps, last)
		}
		if _, err := s.Step(last); err != nil {
			e.fail(fmt.Errorf("sim: explore step: %w", err))
			return
		}
	}
}

// fail records the first error and cancels every worker.
func (e *exploreEngine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.stop.Store(true)
}
