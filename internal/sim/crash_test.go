package sim_test

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/core"
	"github.com/restricteduse/tradeoffs/internal/counter"
	"github.com/restricteduse/tradeoffs/internal/farray"
	"github.com/restricteduse/tradeoffs/internal/history"
	"github.com/restricteduse/tradeoffs/internal/maxreg"
	"github.com/restricteduse/tradeoffs/internal/primitive"
	"github.com/restricteduse/tradeoffs/internal/sim"
	"github.com/restricteduse/tradeoffs/internal/snapshot"
)

// Crash tolerance: in an asynchronous wait-free system a crashed process is
// indistinguishable from a very slow one, so abandoning processes at
// arbitrary points mid-operation must leave every object fully usable and
// linearizable for the survivors. The simulator makes "crash" precise: we
// simply stop scheduling a process forever. A crashed process's in-flight
// operation may or may not have taken effect; it is recorded as pending
// (invoked, never responded), which is exactly how the interval checkers
// treat that freedom.

// inflightLog tracks each process's currently-executing update-type
// operation so a crash can surface it as pending.
type inflightLog struct {
	mu   sync.Mutex
	ops  map[int]history.Op
	invs map[int]int64
}

func newInflightLog() *inflightLog {
	return &inflightLog{ops: make(map[int]history.Op), invs: make(map[int]int64)}
}

func (l *inflightLog) begin(rec *history.Recorder, op history.Op) int64 {
	inv := rec.Invoke()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ops[op.Proc] = op
	l.invs[op.Proc] = inv
	return inv
}

func (l *inflightLog) commit(rec *history.Recorder, op history.Op, inv int64) {
	rec.Record(op, inv)
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.ops, op.Proc)
	delete(l.invs, op.Proc)
}

// flushCrashed records the in-flight op of every crashed process as
// pending.
func (l *inflightLog) flushCrashed(rec *history.Recorder, crashed map[int]int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for p := range crashed {
		if op, ok := l.ops[p]; ok {
			rec.RecordPending(op, l.invs[p])
		}
	}
}

// crashScenario drives the system with a seeded random scheduler, never
// scheduling process id beyond crashed[id] steps; survivors run to
// completion.
func crashScenario(t *testing.T, seed int64, s *sim.System, crashed map[int]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for {
		var runnable []int
		for _, id := range s.Active() {
			if limit, isCrashed := crashed[id]; !isCrashed || s.StepsOf(id) < limit {
				runnable = append(runnable, id)
			}
		}
		if len(runnable) == 0 {
			return
		}
		if _, err := s.Step(runnable[rng.Intn(len(runnable))]); err != nil {
			t.Fatal(err)
		}
	}
}

func runSolo(t *testing.T, s *sim.System, id int, program sim.Program) {
	t.Helper()
	if err := s.Spawn(id, program); err != nil {
		t.Fatal(err)
	}
	for !s.Done(id) {
		if _, err := s.Step(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashedWritersDoNotWedgeMaxRegisters(t *testing.T) {
	builders := map[string]func(pool *primitive.Pool) maxreg.MaxRegister{
		"algorithm-a": func(pool *primitive.Pool) maxreg.MaxRegister {
			m, err := core.New(pool, 6, 0)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"aac": func(pool *primitive.Pool) maxreg.MaxRegister {
			m, err := maxreg.NewAAC(pool, 1<<10)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"unbounded-aac": func(pool *primitive.Pool) maxreg.MaxRegister {
			return maxreg.NewUnboundedAAC(pool)
		},
	}
	crashed := map[int]int{0: 3, 1: 7}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				pool := primitive.NewPool()
				m := build(pool)
				rec := history.NewRecorder()
				inflight := newInflightLog()

				s := sim.NewSystem()
				for p := 0; p < 6; p++ {
					p := p
					if err := s.Spawn(p, func(ctx primitive.Context) {
						for i := 1; i <= 3; i++ {
							op := history.Op{Proc: p, Kind: history.KindWriteMax, Arg: int64(p*10 + i)}
							inv := inflight.begin(rec, op)
							if err := m.WriteMax(ctx, op.Arg); err != nil {
								panic(err)
							}
							inflight.commit(rec, op, inv)
						}
					}); err != nil {
						t.Fatal(err)
					}
				}
				crashScenario(t, seed, s, crashed)
				inflight.flushCrashed(rec, crashed)

				// The register must still serve correct reads: p5
				// completed WriteMax(53).
				var got int64
				runSolo(t, s, 10, func(ctx primitive.Context) {
					inv := rec.Invoke()
					got = m.ReadMax(ctx)
					rec.Record(history.Op{Proc: 10, Kind: history.KindReadMax, Ret: got}, inv)
				})
				s.Shutdown()
				if got < 53 {
					t.Fatalf("seed %d: read %d after p5 completed WriteMax(53)", seed, got)
				}
				if err := history.CheckMaxRegister(rec.Ops()); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestCrashedIncrementersDoNotWedgeCounters(t *testing.T) {
	crashed := map[int]int{2: 1, 3: 12}
	for seed := int64(0); seed < 20; seed++ {
		pool := primitive.NewPool()
		c, err := counter.NewFArray(pool, 6)
		if err != nil {
			t.Fatal(err)
		}
		rec := history.NewRecorder()
		inflight := newInflightLog()

		s := sim.NewSystem()
		for p := 0; p < 6; p++ {
			p := p
			if err := s.Spawn(p, func(ctx primitive.Context) {
				for i := 0; i < 4; i++ {
					op := history.Op{Proc: p, Kind: history.KindIncrement}
					inv := inflight.begin(rec, op)
					if err := c.Increment(ctx); err != nil {
						panic(err)
					}
					inflight.commit(rec, op, inv)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		crashScenario(t, seed, s, crashed)
		inflight.flushCrashed(rec, crashed)

		var got int64
		runSolo(t, s, 10, func(ctx primitive.Context) {
			inv := rec.Invoke()
			got = c.Read(ctx)
			rec.Record(history.Op{Proc: 10, Kind: history.KindCounterRead, Ret: got}, inv)
		})
		s.Shutdown()

		// 4 survivors completed 16 increments; the crashed pair
		// contributed between 0 and 5 (p2 crashed in its 1st, p3 in its
		// 2nd-4th).
		if got < 16 || got > 21 {
			t.Fatalf("seed %d: read %d, want within [16,21]", seed, got)
		}
		if err := history.CheckCounter(rec.Ops()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCrashedUpdatersDoNotWedgeSnapshots(t *testing.T) {
	crashed := map[int]int{1: 5}
	for seed := int64(0); seed < 20; seed++ {
		pool := primitive.NewPool()
		snap, err := snapshot.NewFArray(pool, 5, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		rec := history.NewRecorder()
		inflight := newInflightLog()

		s := sim.NewSystem()
		for p := 0; p < 5; p++ {
			p := p
			if err := s.Spawn(p, func(ctx primitive.Context) {
				for i := 1; i <= 3; i++ {
					op := history.Op{Proc: p, Kind: history.KindUpdate, Arg: int64(i)}
					inv := inflight.begin(rec, op)
					if err := snap.Update(ctx, op.Arg); err != nil {
						panic(err)
					}
					inflight.commit(rec, op, inv)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		crashScenario(t, seed, s, crashed)
		inflight.flushCrashed(rec, crashed)

		var view []int64
		runSolo(t, s, 10, func(ctx primitive.Context) {
			inv := rec.Invoke()
			view = snap.Scan(ctx)
			rec.Record(history.Op{Proc: 10, Kind: history.KindScan, RetVec: view}, inv)
		})
		s.Shutdown()

		for i, v := range view {
			if i == 1 {
				continue // the crashed updater may be anywhere
			}
			if v != 3 {
				t.Fatalf("seed %d: segment %d = %d, want 3 (its updater completed)", seed, i, v)
			}
		}
		if err := history.CheckSnapshot(rec.Ops()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCrashMidRefreshLeavesFArrayConsistent(t *testing.T) {
	// White-box: crash a process between its leaf write and its root-path
	// refreshes. Helpers (other updaters) must carry its value to the root
	// — the whole point of the double-refresh helping pattern.
	pool := primitive.NewPool()
	fa, err := farray.New(pool, 4, farray.Sum)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewSystem()
	defer s.Shutdown()

	if err := s.Spawn(0, func(ctx primitive.Context) {
		if _, err := fa.Add(ctx, 5); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// p0 performs exactly its leaf read + leaf write, then crashes.
	if err := s.Run([]int{0, 0}); err != nil {
		t.Fatal(err)
	}

	// p1 updates its sibling leaf and, in refreshing the shared path,
	// publishes p0's stranded 5 as well.
	runSolo(t, s, 1, func(ctx primitive.Context) {
		if _, err := fa.Add(ctx, 2); err != nil {
			panic(err)
		}
	})

	var got int64
	runSolo(t, s, 2, func(ctx primitive.Context) { got = fa.Read(ctx) })
	if got != 7 {
		t.Fatalf("root = %d, want 7 (crashed updater's 5 + helper's 2)", got)
	}
}
