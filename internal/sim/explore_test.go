package sim

import (
	"errors"
	"strings"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// buildTwoWriters makes two processes that each perform `steps` writes to
// their own register: the schedule count is the binomial C(2k, k).
func buildTwoWriters(steps int) func() (*System, error) {
	return func() (*System, error) {
		pool := primitive.NewPool()
		a := pool.New("a", 0)
		b := pool.New("b", 0)
		s := NewSystem()
		for id, reg := range []*primitive.Register{a, b} {
			reg := reg
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps; i++ {
					ctx.Write(reg, int64(i))
				}
			}); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

func TestExploreCountsInterleavings(t *testing.T) {
	// Two independent 3-step processes: C(6,3) = 20 schedules.
	checked := 0
	execs, err := Explore(buildTwoWriters(3), func(s *System) error {
		checked++
		if len(s.Events()) != 6 {
			return errors.New("incomplete execution passed to check")
		}
		return nil
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if execs != 20 || checked != 20 {
		t.Fatalf("execs=%d checked=%d, want 20", execs, checked)
	}
}

func TestExploreBudget(t *testing.T) {
	_, err := Explore(buildTwoWriters(4), func(*System) error { return nil }, 10)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("budget overrun not reported: %v", err)
	}
}

func TestExplorePropagatesCheckError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Explore(buildTwoWriters(1), func(*System) error { return sentinel }, 100)
	if !errors.Is(err, sentinel) {
		t.Fatalf("check error lost: %v", err)
	}
}

func TestExplorePropagatesBuildError(t *testing.T) {
	sentinel := errors.New("cannot build")
	_, err := Explore(func() (*System, error) { return nil, sentinel }, func(*System) error { return nil }, 10)
	if !errors.Is(err, sentinel) {
		t.Fatalf("build error lost: %v", err)
	}
}
