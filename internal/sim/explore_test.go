package sim

import (
	"errors"
	"strings"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// buildTwoWriters makes two processes that each perform `steps` writes to
// their own register: the schedule count is the binomial C(2k, k).
func buildTwoWriters(steps int) func() (*System, error) {
	return func() (*System, error) {
		pool := primitive.NewPool()
		a := pool.New("a", 0)
		b := pool.New("b", 0)
		s := NewSystem()
		for id, reg := range []*primitive.Register{a, b} {
			reg := reg
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps; i++ {
					ctx.Write(reg, int64(i))
				}
			}); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

func TestExploreCountsInterleavings(t *testing.T) {
	// Two independent 3-step processes: C(6,3) = 20 schedules.
	checked := 0
	execs, err := Explore(buildTwoWriters(3), func(s *System) error {
		checked++
		if len(s.Events()) != 6 {
			return errors.New("incomplete execution passed to check")
		}
		return nil
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if execs != 20 || checked != 20 {
		t.Fatalf("execs=%d checked=%d, want 20", execs, checked)
	}
}

func TestExploreBudget(t *testing.T) {
	_, err := Explore(buildTwoWriters(4), func(*System) error { return nil }, 10)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("budget overrun not reported: %v", err)
	}
}

func TestExploreBudgetBoundaryChecksEveryCountedExecution(t *testing.T) {
	// Regression test for the budget boundary: the returned count must equal
	// the number of check calls, and the first over-budget execution must be
	// neither counted nor checked. The old code counted the over-budget
	// execution before testing the cap, returning budget+1 with only budget
	// checks — this test fails against that behavior.
	checked := 0
	execs, err := Explore(buildTwoWriters(4), func(*System) error {
		checked++
		return nil
	}, 10)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget overrun not reported as *BudgetError: %v", err)
	}
	if execs != 10 {
		t.Fatalf("returned count %d, want exactly the budget (10)", execs)
	}
	if checked != execs {
		t.Fatalf("check ran %d times but count is %d — they must be equal", checked, execs)
	}

	// An exactly-fitting budget is not an overrun: the boundary execution is
	// counted, checked, and no error surfaces.
	checked = 0
	execs, err = Explore(buildTwoWriters(3), func(*System) error {
		checked++
		return nil
	}, 20)
	if err != nil {
		t.Fatalf("exact-fit budget reported an error: %v", err)
	}
	if execs != 20 || checked != 20 {
		t.Fatalf("exact-fit budget: execs=%d checked=%d, want 20", execs, checked)
	}
}

func TestExplorePropagatesCheckError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Explore(buildTwoWriters(1), func(*System) error { return sentinel }, 100)
	if !errors.Is(err, sentinel) {
		t.Fatalf("check error lost: %v", err)
	}
}

func TestExplorePropagatesBuildError(t *testing.T) {
	sentinel := errors.New("cannot build")
	_, err := Explore(func() (*System, error) { return nil, sentinel }, func(*System) error { return nil }, 10)
	if !errors.Is(err, sentinel) {
		t.Fatalf("build error lost: %v", err)
	}
}
