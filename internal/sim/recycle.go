package sim

import (
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// A Recycler caches the allocation-heavy scaffolding of released Systems —
// event logs, schedule slices, process shells with their response channels,
// and one reusable register pool — so an exploration engine rebuilding
// thousands of systems per second reuses storage instead of hammering the
// allocator. Exploration builds are deterministic, which is exactly what
// makes reuse sound: every cycle allocates the same registers in the same
// order and spawns the same processes.
//
// A Recycler is NOT safe for concurrent use. ExploreParallel gives each
// worker its own.
//
// A Recycler is scheduler-side scaffolding reuse; no model step is involved.
type Recycler struct {
	shells []systemShell
	procs  []*proc
	pool   *primitive.Pool
}

// systemShell is the reusable storage of one released System.
type systemShell struct {
	procs    map[int]*proc
	order    []int
	events   []Event
	schedule []int
}

// NewRecycler returns an empty recycler.
func NewRecycler() *Recycler { return &Recycler{} }

// NewSystem returns an empty system that draws cached process shells from
// the recycler and whose log storage reuses that of previously Released
// systems. Behavior is identical to NewSystem; only allocation differs.
func (r *Recycler) NewSystem() *System {
	s := &System{kill: make(chan struct{}), rec: r}
	if n := len(r.shells); n > 0 {
		sh := r.shells[n-1]
		r.shells = r.shells[:n-1]
		s.procs = sh.procs
		s.order = sh.order[:0]
		s.events = sh.events[:0]
		s.schedule = sh.schedule[:0]
	} else {
		s.procs = make(map[int]*proc)
	}
	return s
}

// Pool returns the recycler's register pool, Reset to empty: a
// deterministic builder allocating through it sees bit-identical registers
// (same storage, same identifiers) cycle after cycle. See
// primitive.Pool.Reset for the aliasing obligations.
func (r *Recycler) Pool() *primitive.Pool {
	if r.pool == nil {
		r.pool = primitive.NewPool()
	} else {
		r.pool.Reset()
	}
	return r.pool
}

// Release shuts s down and donates its scaffolding to the recycler. The
// system, its event log, its schedule, and any registers allocated from the
// recycler's pool must not be used afterwards: the next build cycle
// overwrites them. Systems built outside the recycler may be Released too —
// their scaffolding is simply adopted.
func (r *Recycler) Release(s *System) {
	s.Shutdown()
	for id, p := range s.procs {
		// The response channel is unbuffered and every goroutine has
		// exited, so the shell is quiescent; only reqCh (closed by the
		// program goroutine) must be reallocated, which Spawn does.
		p.reqCh = nil
		p.pending = nil
		p.done = false
		p.steps = 0
		r.procs = append(r.procs, p)
		delete(s.procs, id)
	}
	r.shells = append(r.shells, systemShell{
		procs:    s.procs,
		order:    s.order,
		events:   s.events,
		schedule: s.schedule,
	})
	s.procs = nil
	s.order = nil
	s.events = nil
	s.schedule = nil
}

// getProc pops a cached process shell, or returns nil when none is cached.
func (r *Recycler) getProc() *proc {
	if n := len(r.procs); n > 0 {
		p := r.procs[n-1]
		r.procs = r.procs[:n-1]
		return p
	}
	return nil
}
