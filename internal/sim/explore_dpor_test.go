package sim

import (
	"errors"
	"sync"
	"testing"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// buildSharedWriters makes two processes that each perform `steps` writes
// to ONE shared register with process-distinct values: every pair of steps
// conflicts, so DPOR must not prune anything.
func buildSharedWriters(steps int) func() (*System, error) {
	return func() (*System, error) {
		pool := primitive.NewPool()
		shared := pool.New("shared", 0)
		s := NewSystem()
		for id := 0; id < 2; id++ {
			id := id
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps; i++ {
					ctx.Write(shared, int64(id*100+i))
				}
			}); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

// buildCASIncrementers makes `procs` processes that each CAS-increment one
// shared register `steps` times with read-then-CAS retry loops — the
// contended workload whose branching depends on CAS outcomes.
func buildCASIncrementers(procs, steps int) func() (*System, error) {
	return func() (*System, error) {
		pool := primitive.NewPool()
		shared := pool.New("shared", 0)
		s := NewSystem()
		for id := 0; id < procs; id++ {
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps; i++ {
					for {
						v := ctx.Read(shared)
						if ctx.CAS(shared, v, v+1) {
							break
						}
					}
				}
			}); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

// buildMixedReaders makes two processes that each write their own register
// then read a shared one: writes are independent across processes, reads
// are independent of each other — partial reduction.
func buildMixedReaders(steps int) func() (*System, error) {
	return func() (*System, error) {
		pool := primitive.NewPool()
		shared := pool.New("shared", 7)
		own := pool.NewSlice("own", 2, 0)
		s := NewSystem()
		for id := 0; id < 2; id++ {
			reg := own[id]
			if err := s.Spawn(id, func(ctx primitive.Context) {
				for i := 0; i < steps; i++ {
					ctx.Write(reg, int64(i))
				}
				ctx.Read(shared)
			}); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

func TestExploreReducedCollapsesIndependentWriters(t *testing.T) {
	// Two independent 3-step writers: 20 interleavings, ONE trace class.
	full, err := Explore(buildTwoWriters(3), func(*System) error { return nil }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	reduced, err := ExploreReduced(buildTwoWriters(3), func(s *System) error {
		checked++
		if len(s.Events()) != 6 {
			return errors.New("incomplete execution passed to check")
		}
		return nil
	}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if full != 20 {
		t.Fatalf("full exploration visited %d executions, want 20", full)
	}
	if reduced != 1 || checked != 1 {
		t.Fatalf("reduced=%d checked=%d, want 1 (fully independent programs collapse to one representative)", reduced, checked)
	}
}

func TestExploreReducedPreservesFullyDependentTree(t *testing.T) {
	// Every step writes the one shared register: no two steps commute, so
	// the reduced tree must equal the full tree.
	full, err := Explore(buildSharedWriters(3), func(*System) error { return nil }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := ExploreReduced(buildSharedWriters(3), func(*System) error { return nil }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if full != 20 || reduced != full {
		t.Fatalf("full=%d reduced=%d, want both 20 (nothing commutes)", full, reduced)
	}
}

func TestCrossCheckReductionCoversAllClasses(t *testing.T) {
	// The mechanical soundness check over configurations spanning the
	// independence spectrum: fully independent, fully conflicting,
	// CAS-retry branching, and mixed read/write sharing.
	configs := []struct {
		name      string
		build     func() (*System, error)
		minFactor float64
	}{
		{"independent-writers", buildTwoWriters(3), 5},
		{"shared-writers", buildSharedWriters(3), 1},
		{"cas-increment", buildCASIncrementers(2, 2), 1},
		{"mixed-readers", buildMixedReaders(2), 5},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			stats, err := CrossCheckReduction(cfg.build, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ReducedExecs > stats.FullExecs {
				t.Fatalf("reduced visited MORE executions than full: %+v", stats)
			}
			if stats.Factor < cfg.minFactor {
				t.Fatalf("reduction factor %.2fx below the %gx this configuration guarantees (%+v)",
					stats.Factor, cfg.minFactor, stats)
			}
			t.Logf("%s: %v", cfg.name, stats)
		})
	}
}

func TestExploreParallelReducedMatchesSequentialReduced(t *testing.T) {
	// The reduced engines must agree exactly — same count, same schedule
	// multiset — for every worker count, like the unreduced pair.
	builds := []struct {
		name string
		seq  func() (*System, error)
		par  Build
	}{
		{"independent", buildTwoWriters(3), buildTwoWritersRecycled(3)},
		{"shared", buildSharedWriters(2), ignoreRecycler(buildSharedWriters(2))},
		{"cas", buildCASIncrementers(2, 2), ignoreRecycler(buildCASIncrementers(2, 2))},
		{"mixed", buildMixedReaders(2), ignoreRecycler(buildMixedReaders(2))},
	}
	for _, b := range builds {
		var seq [][]int
		seqExecs, err := ExploreReduced(b.seq, func(s *System) error {
			seq = append(seq, append([]int(nil), s.Schedule()...))
			return nil
		}, 1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		sortSchedules(seq)

		for _, workers := range []int{1, 2, 4} {
			var mu sync.Mutex
			var par [][]int
			parExecs, err := ExploreParallel(b.par, func(s *System) error {
				cp := append([]int(nil), s.Schedule()...)
				mu.Lock()
				par = append(par, cp)
				mu.Unlock()
				return nil
			}, Options{Workers: workers, Budget: 1_000_000, Reduce: true})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", b.name, workers, err)
			}
			if parExecs != seqExecs {
				t.Fatalf("%s workers=%d: parallel reduced visited %d executions, sequential reduced %d",
					b.name, workers, parExecs, seqExecs)
			}
			sortSchedules(par)
			if len(par) != len(seq) {
				t.Fatalf("%s workers=%d: %d schedules, want %d", b.name, workers, len(par), len(seq))
			}
			for i := range seq {
				if len(par[i]) != len(seq[i]) {
					t.Fatalf("%s workers=%d: schedule %d is %v, want %v", b.name, workers, i, par[i], seq[i])
				}
				for k := range seq[i] {
					if par[i][k] != seq[i][k] {
						t.Fatalf("%s workers=%d: schedule %d is %v, want %v", b.name, workers, i, par[i], seq[i])
					}
				}
			}
		}
	}
}

func TestTraceHashInvariantUnderIndependentSwaps(t *testing.T) {
	// Two independent writers: [0 1 0 1] and [1 0 1 0] are the same trace;
	// hashes must match. Two shared writers: the same two schedules order
	// conflicting writes differently; hashes must differ.
	run := func(build func() (*System, error), schedule []int) []Event {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		if err := s.Run(schedule); err != nil {
			t.Fatal(err)
		}
		if len(s.Active()) != 0 {
			t.Fatalf("schedule %v did not complete the execution", schedule)
		}
		return append([]Event(nil), s.Events()...)
	}

	indep := buildTwoWriters(2)
	h1 := TraceHash(run(indep, []int{0, 1, 0, 1}))
	h2 := TraceHash(run(indep, []int{1, 0, 1, 0}))
	if h1 != h2 {
		t.Fatalf("independent-writer schedules hashed differently: %#x vs %#x", h1, h2)
	}

	shared := buildSharedWriters(2)
	g1 := TraceHash(run(shared, []int{0, 1, 0, 1}))
	g2 := TraceHash(run(shared, []int{1, 0, 1, 0}))
	if g1 == g2 {
		t.Fatalf("conflicting-writer schedules hashed identically: %#x", g1)
	}
}

func TestFailedCASCommutesWithReadInTraceHash(t *testing.T) {
	// proc 0 reads the register; proc 1 attempts a CAS that always fails
	// (expected value never present). The failed CAS writes nothing, so
	// both orders are one trace class.
	build := func() (*System, error) {
		pool := primitive.NewPool()
		r := pool.New("r", 5)
		s := NewSystem()
		if err := s.Spawn(0, func(ctx primitive.Context) { ctx.Read(r) }); err != nil {
			return nil, err
		}
		if err := s.Spawn(1, func(ctx primitive.Context) { ctx.CAS(r, 99, 100) }); err != nil {
			return nil, err
		}
		return s, nil
	}
	run := func(schedule []int) []Event {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		if err := s.Run(schedule); err != nil {
			t.Fatal(err)
		}
		return append([]Event(nil), s.Events()...)
	}
	h1 := TraceHash(run([]int{0, 1}))
	h2 := TraceHash(run([]int{1, 0}))
	if h1 != h2 {
		t.Fatalf("read and failed CAS did not commute in the trace hash: %#x vs %#x", h1, h2)
	}
	// Exploration still treats the pending CAS as a possible write (success
	// unknown before execution), so the reduced run visits both orders —
	// strictly more executions than classes is allowed; missing a class is
	// not. The cross-check pins that direction.
	if _, err := CrossCheckReduction(build, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestExploreReducedBudget(t *testing.T) {
	// Fully dependent tree (no pruning) with a sub-tree-size budget: the
	// typed error must surface with a complete witness schedule, and the
	// count must equal the number of checked executions.
	checked := 0
	execs, err := ExploreReduced(buildSharedWriters(3), func(*System) error {
		checked++
		return nil
	}, 10)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget overrun not reported as *BudgetError: %v", err)
	}
	if be.Budget != 10 || len(be.Prefix) != 6 {
		t.Fatalf("BudgetError = %+v, want budget 10 and a complete 6-event schedule", be)
	}
	if execs != 10 || checked != 10 {
		t.Fatalf("execs=%d checked=%d, want exactly the 10 in-budget executions", execs, checked)
	}
}
