// Package maxreg is a boundedloop fixture loaded under a model-package
// import path: bare retry loops and unbounded loops in wait-free-documented
// functions must be flagged; bounded loops, negated wait-free claims, and
// the casretry escape hatch must stay silent.
package maxreg

// Spin retries forever.
func Spin(done func() bool) {
	for { // want "unbounded retry loop (bare for)"
		if done() {
			return
		}
	}
}

// ReadAll is wait-free: the three-clause loop is visibly bounded.
func ReadAll(n int, step func(int)) {
	for i := 0; i < n; i++ {
		step(i)
	}
}

// Sum is wait-free: range loops are bounded by their operand.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Drain is wait-free in name only: the condition loop has no visible bound.
func Drain(pending func() bool) {
	for pending() { // want "loop without a visible bound in a function documented wait-free"
	}
}

// Help is wait-free: the loop carries its termination argument.
func Help(pending func() bool) {
	//tradeoffvet:casretry fixture: bounded by a helping argument the checker cannot see
	for pending() {
	}
}

// Poll is NOT wait-free (lock-free baseline), so a condition loop is fine.
func Poll(pending func() bool) {
	for pending() {
	}
}
