// Package util is a modelstep fixture loaded under a non-model import
// path: sync/atomic and locks are allowed here, but direct Register
// primitive calls are still flagged module-wide.
package util

import (
	"sync/atomic"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Counter may use raw atomics outside the model packages.
type Counter struct {
	n atomic.Int64
}

// Bump is fine: the step model does not apply here.
func (c *Counter) Bump() { c.n.Add(1) }

// Snapshot still may not reach around the Context.
func Snapshot(r *primitive.Register) int64 {
	return r.Load() // want "direct Register.Load bypasses step accounting"
}
