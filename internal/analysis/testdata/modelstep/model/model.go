// Package counter is a modelstep fixture loaded under a model-package
// import path (internal/counter): every out-of-band shared-memory
// construct must be flagged, and the annotation escape hatches must
// silence it.
package counter

import (
	"sync"
	"sync/atomic" // want "model package imports sync/atomic"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Shared smuggles raw coordination primitives into the model.
type Shared struct {
	n  atomic.Int64 // want "atomic.Int64 bypasses the step-counted primitive.Context"
	mu sync.Mutex   // want "sync.Mutex in model package"
}

// Notify communicates through a channel instead of registers.
func Notify(ch chan int) { // want "channel type in model package"
	ch <- 1  // want "channel send in model package"
	<-ch     // want "channel receive in model package"
	select { // want "select statement in model package"
	case v := <-ch: // want "channel receive in model package"
		_ = v
	default:
	}
}

// Peek reads a register directly instead of through a Context.
func Peek(r *primitive.Register) int64 {
	return r.Load() // want "direct Register.Load bypasses step accounting"
}

// Poke is a checker-style access covered by its declaration's annotation.
//
//tradeoffvet:outofband fixture: out-of-band inspection justified in the doc comment
func Poke(r *primitive.Register, v int64) {
	r.Store(v)
}

// Swap demonstrates the same-line escape hatch.
func Swap(r *primitive.Register, oldv, newv int64) bool {
	return r.CompareAndSwap(oldv, newv) //tradeoffvet:outofband fixture: same-line escape hatch
}
