// Package counter is a stepbound fixture: certifiable bound declarations
// stay silent, while a tightened bound (direct or inherited through a
// call), a CAS retry loop claimed as worst-case, and a loop the evaluator
// cannot bound are all flagged.
package counter

import "github.com/restricteduse/tradeoffs/internal/primitive"

// Table is a register array whose length symbol n comes from the param
// annotation, plus one standalone cell.
type Table struct {
	cell  *primitive.Register
	cells []*primitive.Register //tradeoffvet:param n one register per process
}

// Read is exactly one shared-memory step.
//
//tradeoffvet:bound steps<=1 reads<=1
func (t *Table) Read(ctx primitive.Context) int64 {
	return ctx.Read(t.cell)
}

// Collect reads every register once; the range bound is the param symbol.
//
//tradeoffvet:bound steps<=n reads<=n
func (t *Table) Collect(ctx primitive.Context) int64 {
	var sum int64
	for _, c := range t.cells {
		sum += ctx.Read(c)
	}
	return sum
}

// Walk's loop bound is declared on the loop itself.
//
//tradeoffvet:bound steps<=2k writes<=k
func (t *Table) Walk(ctx primitive.Context, limit int) {
	//tradeoffvet:loopbound k fixture: bounded by the probe budget
	for i := 0; i < limit; i++ {
		ctx.Read(t.cell)
		ctx.Write(t.cell, 0)
	}
}

// Tight under-declares: the body issues two steps.
//
//tradeoffvet:bound steps<=1
func (t *Table) Tight(ctx primitive.Context) { // want "Table.Tight: derived worst-case steps cost 2 exceeds declared bound 1"
	ctx.Read(t.cell)
	ctx.Write(t.cell, 1)
}

// double issues two steps; callers inherit them through the call graph.
func (t *Table) double(ctx primitive.Context) {
	ctx.Read(t.cell)
	ctx.Write(t.cell, 1)
}

// Indirect under-declares a cost inherited through a call.
//
//tradeoffvet:bound steps<=1
func (t *Table) Indirect(ctx primitive.Context) { // want "Table.Indirect: derived worst-case steps cost 2 exceeds declared bound 1"
	t.double(ctx)
}

// Amortized excludes the maintenance call with a cost annotation.
//
//tradeoffvet:bound steps<=1
func (t *Table) Amortized(ctx primitive.Context) {
	ctx.Read(t.cell)
	//tradeoffvet:cost 0 fixture: amortized maintenance, charged elsewhere
	t.double(ctx)
}

// Spin claims a worst-case bound over a CAS retry loop, which is unbounded
// under contention; only the uncontended qualifier could certify it.
//
//tradeoffvet:bound steps<=2
func (t *Table) Spin(ctx primitive.Context) { // want "unbounded retry loop"
	for {
		cur := ctx.Read(t.cell)
		if ctx.CAS(t.cell, cur, cur+1) {
			return
		}
	}
}

// SpinUncontended is the same loop certified solo: the first CAS succeeds.
//
//tradeoffvet:bound steps<=2 uncontended
func (t *Table) SpinUncontended(ctx primitive.Context) {
	for {
		cur := ctx.Read(t.cell)
		if ctx.CAS(t.cell, cur, cur+1) {
			return
		}
	}
}

// Hidden loops to a plain parameter, which the evaluator cannot bound.
//
//tradeoffvet:bound steps<=n
func (t *Table) Hidden(ctx primitive.Context, limit int) int64 { // want "annotate //tradeoffvet:loopbound"
	var sum int64
	for i := 0; i < limit; i++ {
		sum += ctx.Read(t.cell)
	}
	return sum
}
