// Package core is a poolalloc fixture: every way of conjuring or copying
// a register outside the pool must be flagged; pointer-sharing and the
// annotation escape hatch must stay silent.
package core

import (
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Bad allocates registers behind the pool's back.
func Bad() *primitive.Register {
	a := &primitive.Register{}   // want "primitive.Register composite literal"
	b := new(primitive.Register) // want "new(primitive.Register) bypasses the pool"
	_ = b
	return a
}

// Holder stores registers by value.
type Holder struct {
	reg  primitive.Register   // want "struct field holds primitive.Register by value"
	regs []primitive.Register // want "struct field holds primitive.Register by value"
}

var slot primitive.Register // want "variable holds primitive.Register by value"

// ByValue passes and returns registers by value.
func ByValue(r primitive.Register) primitive.Register { // want "parameter holds primitive.Register by value" "result holds primitive.Register by value"
	return r
}

// Copy forks a register by dereferencing it.
func Copy(r *primitive.Register) {
	v := *r // want "dereferencing a *primitive.Register copies the register"
	_ = v
}

// Share holds registers the sanctioned way: by pointer.
type Share struct {
	reg  *primitive.Register
	regs []*primitive.Register
}

// Scratch is annotated out-of-band storage.
//
//tradeoffvet:outofband fixture: value storage justified in the doc comment
type Scratch struct {
	reg primitive.Register
}
