// Package sim is a modelstep fixture for the scheduler-side escape hatch
// introduced with the parallel exploration engine: a non-model package may
// use raw atomics freely, but direct Register primitives are flagged
// module-wide unless the site carries a //tradeoffvet:outofband annotation
// explaining why the access is genuinely outside the step model.
package sim

import (
	"sync/atomic"

	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// engine mirrors the ExploreParallel scheduler: work-stealing bookkeeping
// uses raw atomics, which the step model does not govern here.
type engine struct {
	execs       atomic.Int64
	outstanding atomic.Int64
}

// leaf mirrors the per-execution accounting on the scheduler side.
func (e *engine) leaf() int64 {
	e.outstanding.Add(-1)
	return e.execs.Add(1)
}

//tradeoffvet:outofband fixture: the scheduler inspects registers between executions, outside any process's step count
func (e *engine) snapshotRegisters(regs []*primitive.Register) []int64 {
	out := make([]int64, len(regs))
	for i, r := range regs {
		out[i] = r.Load()
	}
	return out
}

// reset uses the same-line escape hatch for replay-scaffolding recycling.
func reset(r *primitive.Register) {
	r.Store(0) //tradeoffvet:outofband fixture: recycled-register reset between executions is not a modeled step
}

// probe forgets the annotation: direct primitives stay flagged even in
// non-model packages.
func probe(r *primitive.Register) int64 {
	return r.Load() // want "direct Register.Load bypasses step accounting"
}
