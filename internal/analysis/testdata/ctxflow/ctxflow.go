// Package app is a ctxflow fixture: contexts stored in fields, at package
// level, or captured by goroutine closures must be flagged; parameter flow,
// explicit hand-off, interface assertions and the annotation escape hatch
// must stay silent.
package app

import (
	"github.com/restricteduse/tradeoffs/internal/primitive"
)

// Holder parks a context in a field.
type Holder struct {
	ctx primitive.Context // want "primitive.Context stored in a struct field"
}

var global primitive.Context // want "package-level primitive.Context"

// The compile-time assertion idiom is not storage.
var _ primitive.Context = primitive.NewDirect(0)

// Spawn leaks its context into a goroutine.
func Spawn(ctx primitive.Context) {
	go func() {
		use(ctx) // want "goroutine closure captures primitive.Context"
	}()
}

// Handoff passes the context explicitly: the sanctioned idiom.
func Handoff(ctx primitive.Context) {
	go func(c primitive.Context) {
		use(c)
	}(ctx)
}

// Wrapper is itself a per-process context, annotated as such.
//
//tradeoffvet:outofband fixture: wrapper is itself a per-process context
type Wrapper struct {
	inner primitive.Context
}

func use(c primitive.Context) {
	if c != nil {
		_ = c.ID()
	}
}
