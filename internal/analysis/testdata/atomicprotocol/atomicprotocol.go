// Package obs is an atomicprotocol fixture: compliant seqlock writers and
// readers stay silent; stores outside the critical section, unpaired
// acquire/release, missing reader revalidation, atomic value copies and
// mixed atomic/plain access are all flagged.
package obs

import "sync/atomic"

// ring follows the flight-ring seqlock discipline: the atomic field named
// seq marks the protocol.
type ring struct {
	seq  atomic.Uint64
	data atomic.Int64
	aux  atomic.Int64
}

// goodWriter brackets every sibling store with acquire and release.
func goodWriter(r *ring, v int64) {
	r.seq.Store(0)
	r.data.Store(v)
	r.aux.Store(v)
	r.seq.Store(2)
}

// goodReader loads seq before and after the field loads and retries.
func goodReader(r *ring) int64 {
	for {
		s1 := r.seq.Load()
		v := r.data.Load()
		if r.seq.Load() == s1 && s1 != 0 {
			return v
		}
	}
}

// badWriter stores a sibling field before acquiring.
func badWriter(r *ring, v int64) {
	r.data.Store(v) // want "outside the seqlock critical section"
	r.seq.Store(0)
	r.aux.Store(v)
	r.seq.Store(2)
}

// releaseOnly publishes a sequence it never acquired.
func releaseOnly(r *ring, v int64) {
	r.seq.Store(2)  // want "without a preceding seq.Store(0) acquire"
	r.data.Store(v) // want "outside the seqlock critical section"
}

// neverReleased leaves readers spinning on seq==0.
func neverReleased(r *ring, v int64) {
	r.seq.Store(0)
	r.data.Store(v) // want "acquired but never released"
}

// unvalidatedReader could return a torn read.
func unvalidatedReader(r *ring) int64 {
	return r.data.Load() // want "lack seqlock revalidation"
}

// initRing deliberately bends the protocol: single-goroutine setup.
func initRing(r *ring, v int64) {
	//tradeoffvet:seqlock fixture: single-goroutine initializer, no concurrent readers yet
	r.data.Store(v)
}

// counters is an atomic cell outside any seqlock protocol.
type counters struct {
	n atomic.Int64
}

// copyValue forks the cell.
func copyValue(c *counters) int64 {
	v := c.n // want "used as a plain value"
	return v.Load()
}

// useShared is the sanctioned access: methods on the shared cell.
func useShared(c *counters) int64 {
	return c.n.Load()
}

// rangeValue copies each element into the loop variable.
func rangeValue(cs []atomic.Int64) int64 {
	var sum int64
	for _, c := range cs { // want "ranging with a value variable copies"
		sum += c.Load()
	}
	return sum
}

// hits is accessed with the function-style atomic API.
var hits int64

// bump is the atomic side.
func bump() {
	atomic.AddInt64(&hits, 1)
}

// reset races with every atomic access.
func reset() {
	hits = 0 // want "written plainly but accessed atomically"
}
