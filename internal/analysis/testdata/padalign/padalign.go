// Package app is a padalign fixture: dense pool allocation outside the
// exempt packages is flagged; the padded arena and the annotated opt-out
// stay silent.
package app

import "github.com/restricteduse/tradeoffs/internal/primitive"

// Bad allocates an unpadded arena for hot-path registers.
func Bad() *primitive.Pool {
	return primitive.NewPool() // want "false-share"
}

// Good uses the cache-line padded arena.
func Good() *primitive.Pool {
	return primitive.NewPadded()
}

// Deliberate documents why the dense layout is wanted.
func Deliberate() *primitive.Pool {
	//tradeoffvet:unpadded fixture: dense layout is deliberate here
	return primitive.NewPool()
}
