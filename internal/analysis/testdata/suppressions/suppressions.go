// Package app is the stale-suppression fixture: one annotation padalign
// actually consults, one annotation nothing consults.
package app

import "github.com/restricteduse/tradeoffs/internal/primitive"

// Live carries an annotation the padalign pass consumes.
func Live() *primitive.Pool {
	//tradeoffvet:unpadded fixture: consulted by padalign
	return primitive.NewPool()
}

// Dead carries an annotation no analyzer ever consults.
//
//tradeoffvet:outofband fixture: nothing reports here, so this is stale
func Dead() {}
