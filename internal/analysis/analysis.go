// Package analysis is the repository's static-analysis suite: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the four passes that mechanically
// enforce the paper's step-accounting model (Hendler & Khait, PODC 2014,
// Section 2).
//
// The invariant the suite guards cannot be seen by the compiler: a "step"
// is exactly one Context.Read/Write/CAS, so algorithm code must never touch
// Register.Load/Store/CompareAndSwap, raw sync/atomic, locks, or channels,
// and every register must be Pool-allocated so internal/sim, internal/aware
// and internal/obs can key their tables by stable register ids. A single
// stray atomic.Int64 in a model package would silently corrupt step counts
// and adversary schedules; these passes turn the convention into a
// machine-checked property. See docs/static-analysis.md for the diagnostic
// catalog.
//
// The framework deliberately re-implements only the slice of go/analysis
// this repository needs: the toolchain image carries no module cache and no
// network, so golang.org/x/tools cannot be vendored. Packages are
// typechecked from source with the standard library's "source" importer,
// which resolves both stdlib and module-internal imports without export
// data.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and documentation.
	Name string

	// Doc is the one-paragraph description printed by tradeoffvet -list.
	Doc string

	// Suppressor is the annotation name (the part after "tradeoffvet:")
	// that silences this analyzer's diagnostics: "outofband" for the
	// step-accounting passes, "casretry" for boundedloop.
	Suppressor string

	// Run reports diagnostics through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer

	// Path is the package's import path (module-rooted for real packages,
	// caller-chosen for fixtures).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Prog is the interprocedural view over every package loaded together
	// with this one; stepbound resolves cross-package calls through it.
	Prog *Program

	pkg    *Package
	report func(Diagnostic)
}

// A Diagnostic is one finding, already positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf reports a diagnostic at pos unless a tradeoffvet annotation
// matching the analyzer's Suppressor covers that line (same line, the line
// above, or the doc comment of the enclosing top-level declaration).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.suppressed(p.Analyzer.Suppressor, position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// primitivePath is the suffix identifying the base-object package, which
// defines Register, Pool and Context and is therefore exempt from the
// passes that police access to them.
const primitivePath = "internal/primitive"

// modelPackages are the packages implementing the paper's algorithms: inside
// them every shared-memory event must be a counted step issued through a
// primitive.Context.
var modelPackages = []string{
	"internal/core",
	"internal/counter",
	"internal/counter/sharded",
	"internal/maxreg",
	"internal/snapshot",
	"internal/b1tree",
	"internal/farray",
	"internal/consensus",
}

// hasPathSuffix reports whether path ends in the package-path suffix want
// (matching whole segments, so "internal/counter" matches
// "example.com/m/internal/counter" but not "example.com/m/internal/counter2").
func hasPathSuffix(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// IsModelPackage reports whether the import path names one of the paper's
// algorithm packages.
func IsModelPackage(path string) bool {
	for _, m := range modelPackages {
		if hasPathSuffix(path, m) {
			return true
		}
	}
	return false
}

// isPrimitivePackage reports whether the import path is the base-object
// package itself.
func isPrimitivePackage(path string) bool {
	return hasPathSuffix(path, primitivePath)
}

// primitiveScope returns the type scope of the directly imported
// internal/primitive package, or nil if the analyzed package does not
// import it.
func (p *Pass) primitiveScope() *types.Scope {
	for _, imp := range p.Pkg.Imports() {
		if isPrimitivePackage(imp.Path()) {
			return imp.Scope()
		}
	}
	return nil
}

// primitiveNamed returns the named type primitive.<name> as seen by this
// package, or nil.
func (p *Pass) primitiveNamed(name string) types.Type {
	scope := p.primitiveScope()
	if scope == nil {
		return nil
	}
	obj, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	return obj.Type()
}

// Analyzers returns the full suite in the order the multichecker runs it.
func Analyzers() []*Analyzer {
	return []*Analyzer{Modelstep, Poolalloc, Ctxflow, Boundedloop, Stepbound, Atomicprotocol, Padalign}
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// diagnostics sorted by position. The interprocedural program covers only
// that package; use RunAnalyzerIn when calls cross package boundaries.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunAnalyzerIn(a, pkg, NewProgram([]*Package{pkg}))
}

// RunAnalyzerIn applies one analyzer to one package with an explicit
// interprocedural program (typically covering every package loaded
// together, so stepbound can chase calls across package boundaries).
func RunAnalyzerIn(a *Analyzer, pkg *Package, prog *Program) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Prog:     prog,
		pkg:      pkg,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunAll applies the whole suite to every package and returns the merged,
// position-sorted diagnostics. All packages share one interprocedural
// program, so per-function summaries are derived once.
func RunAll(pkgs []*Package) ([]Diagnostic, error) {
	return RunAllIn(pkgs, NewProgram(pkgs))
}

// RunAllIn is RunAll with an explicit interprocedural program, so the
// CLI can report on a subset of packages while stepbound summaries are
// derived over the whole module.
func RunAllIn(pkgs []*Package, prog *Program) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			ds, err := RunAnalyzerIn(a, pkg, prog)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// StaleAnnotations reports every tradeoffvet annotation nothing consulted,
// as diagnostics under the pseudo-analyzer "suppressions". Call it only
// after running the full suite (e.g. via RunAll) over the same packages:
// staleness is defined against the analyses that actually ran.
func StaleAnnotations(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range pkg.staleAnnotations() {
			diags = append(diags, Diagnostic{
				Pos:      a.Pos,
				Analyzer: "suppressions",
				Message:  fmt.Sprintf("stale annotation //tradeoffvet:%s: no analyzer consulted it; remove it or fix the spelling", a.Name),
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders diagnostics deterministically — file, line,
// column, analyzer, then message — so text, JSON and SARIF output is
// stable run-to-run regardless of package iteration order.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
