package analysis

import (
	"go/ast"
	"go/types"
)

// padalignExempt are the packages allowed to allocate unpadded pools:
// the primitive package itself, plus the step-accounting and
// model-checking harnesses, where registers are driven by one scheduler
// and padding only wastes memory.
var padalignExempt = []string{
	"internal/primitive",
	"internal/sim",
	"internal/adversary",
	"internal/bench",
	"internal/analysis",
}

// Padalign requires hot-path register arrays to come from cache-line
// padded arenas: PR 2 measured false sharing between adjacent unpadded
// registers under multi-writer contention, so production call sites (the
// facade, examples, servers) must allocate with primitive.NewPadded.
// primitive.NewPool stays legal in the simulator/adversary/bench
// harnesses, where a deterministic scheduler serializes every access.
var Padalign = &Analyzer{
	Name: "padalign",
	Doc: "require primitive.NewPadded for shared hot-path register arrays: " +
		"NewPool packs registers into adjacent cache lines and false-shares " +
		"under real concurrency (suppressor: unpadded)",
	Suppressor: "unpadded",
	Run:        runPadalign,
}

func runPadalign(pass *Pass) error {
	for _, exempt := range padalignExempt {
		if hasPathSuffix(pass.Path, exempt) {
			return nil
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "NewPool" || fn.Pkg() == nil || !isPrimitivePackage(fn.Pkg().Path()) {
				return true
			}
			pass.Reportf(call.Pos(), "primitive.NewPool allocates unpadded registers that false-share cache lines on hot paths: use primitive.NewPadded, or annotate //tradeoffvet:unpadded where the dense layout is deliberate")
			return true
		})
	}
	return nil
}
