package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Stepbound certifies declared step-complexity bounds: a function carrying
// //tradeoffvet:bound class<=expr... has its worst-case (or, with the
// "uncontended" qualifier, solo-execution) step cost derived by the
// interprocedural summary interpreter and checked against each clause.
// This turns the paper's tradeoff table — O(1) reads vs Omega(n) scans,
// the max register's O(log n) WriteMax, the sharded counter's 2-step
// uncontended update — into machine-checked properties of the actual code.
var Stepbound = &Analyzer{
	Name: "stepbound",
	Doc: "certify //tradeoffvet:bound step-complexity declarations: derive each " +
		"annotated function's per-class step cost (reads/writes/cas, parameterized " +
		"over n/k/logn) through the cross-package call graph and report any " +
		"operation whose derived cost exceeds its declared bound",
	Run: runStepbound,
}

func runStepbound(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, ann := range pass.pkg.funcAnnotations("bound", pass.Fset, fn) {
				ann.markUsed()
				checkBound(pass, fn, ann.Args)
			}
		}
	}
	return nil
}

func checkBound(pass *Pass, fn *ast.FuncDecl, args string) {
	decl, err := parseBoundDecl(args)
	if err != nil {
		pass.Reportf(fn.Pos(), "%s: bad bound annotation: %v", funcDisplay(fn), err)
		return
	}
	pf := pass.Prog.funcFor(pass.pkg, fn)
	if pf == nil {
		pass.Reportf(fn.Pos(), "%s: bound annotation on an unindexed declaration", funcDisplay(fn))
		return
	}
	mode := modeWorst
	if decl.uncontended {
		mode = modeUncontended
	}
	derived := pass.Prog.Summary(pf, mode)
	for _, cl := range decl.clauses {
		got, ok := derived.Class(cl.class)
		if !ok {
			continue // parseBoundDecl already validated the class name
		}
		if !leqCost(got, cl.bound) {
			pass.Reportf(fn.Pos(), "%s: derived %s %s cost %s exceeds declared bound %s",
				funcDisplay(fn), mode, cl.class, got, cl.expr)
		}
	}
}

func funcDisplay(fn *ast.FuncDecl) string {
	if fn.Recv != nil {
		if recv := recvTypeName(fn); recv != "" {
			return recv + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// A BoundRow is one clause of the certified-bound table printed by
// tradeoffvet -bounds: the declared obligation next to the derived cost.
type BoundRow struct {
	Pos      token.Position
	Func     string // Pkg.Recv.Name display form
	Mode     string // "worst-case" or "uncontended"
	Class    string
	Declared string
	Derived  string
	OK       bool

	// Amortized marks bounds that hold per operation only on average:
	// the function body carries a //tradeoffvet:cost ... amortized
	// override, so an individual execution may exceed the bound by the
	// deferred maintenance cost. Runtime conformance checking uses this
	// to classify such exceedances separately.
	Amortized bool
}

// BoundTable derives every declared bound in the given packages and
// returns the comparison table, ordered by position. It marks the bound
// annotations used, exactly as the stepbound pass does.
func BoundTable(pkgs []*Package, prog *Program) []BoundRow {
	var rows []BoundRow
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				for _, ann := range pkg.funcAnnotations("bound", pkg.Fset, fn) {
					ann.markUsed()
					rows = append(rows, boundRows(pkg, prog, fn, ann.Args)...)
				}
			}
		}
	}
	return rows
}

func boundRows(pkg *Package, prog *Program, fn *ast.FuncDecl, args string) []BoundRow {
	pos := pkg.Fset.Position(fn.Pos())
	name := pkg.Types.Name() + "." + funcDisplay(fn)
	decl, err := parseBoundDecl(args)
	if err != nil {
		return []BoundRow{{Pos: pos, Func: name, Class: "?", Declared: args, Derived: "parse error: " + err.Error()}}
	}
	pf := prog.funcFor(pkg, fn)
	if pf == nil {
		return []BoundRow{{Pos: pos, Func: name, Class: "?", Declared: args, Derived: "unindexed declaration"}}
	}
	mode := modeWorst
	if decl.uncontended {
		mode = modeUncontended
	}
	derived := prog.Summary(pf, mode)
	amort := decl.amortized || hasAmortizedCost(pkg, fn)
	var rows []BoundRow
	for _, cl := range decl.clauses {
		got, _ := derived.Class(cl.class)
		rows = append(rows, BoundRow{
			Pos:       pos,
			Func:      name,
			Mode:      mode.String(),
			Class:     cl.class,
			Declared:  cl.expr,
			Derived:   got.String(),
			OK:        leqCost(got, cl.bound),
			Amortized: amort,
		})
	}
	return rows
}

// hasAmortizedCost reports whether fn's body contains a
// //tradeoffvet:cost override declaring an amortized cost — the marker
// that fn's bounds hold on average, not per execution. Wrappers that
// merely delegate to such a function declare it explicitly with the
// "amortized" bound qualifier instead.
func hasAmortizedCost(pkg *Package, fn *ast.FuncDecl) bool {
	if pkg.ann == nil || fn.Body == nil {
		return false
	}
	from := pkg.Fset.Position(fn.Body.Pos())
	to := pkg.Fset.Position(fn.Body.End())
	for _, a := range pkg.ann.all {
		if a.Name == "cost" && a.Pos.Filename == from.Filename &&
			a.Pos.Line >= from.Line && a.Pos.Line <= to.Line &&
			strings.Contains(a.Args, "amortized") {
			return true
		}
	}
	return false
}
