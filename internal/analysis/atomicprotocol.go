package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// Atomicprotocol checks the concurrency protocols of the non-model
// infrastructure (flight rings, obs shards, parallel exploration), where
// raw sync/atomic is legal but easy to misuse:
//
//   - an atomic.Int64/Bool/Pointer value must only be touched through its
//     methods — copying it (assignment, argument, range value) forks the
//     cell and silently drops concurrent updates;
//   - a location accessed with the function-style atomic API
//     (atomic.AddInt64(&x) ...) must not also be written plainly;
//   - structs carrying an atomic field named "seq" follow the flight-ring
//     seqlock discipline: writers store seq=0 before touching sibling
//     fields and store the new sequence after; readers load seq before and
//     after the field loads so torn reads are detected and retried.
//
// The suppressor is "seqlock": an annotated line opts out where the
// protocol is deliberately bent (e.g. a single-goroutine initializer).
var Atomicprotocol = &Analyzer{
	Name: "atomicprotocol",
	Doc: "flag fields accessed both atomically and plainly, atomic values used " +
		"without their atomic API, and seqlock acquire/release/revalidation " +
		"violations in flight-ring style structs (suppressor: seqlock)",
	Suppressor: "seqlock",
	Run:        runAtomicprotocol,
}

func runAtomicprotocol(pass *Pass) error {
	checkAtomicCopies(pass)
	checkMixedAccess(pass)
	checkSeqlock(pass)
	return nil
}

// isAtomicNamed reports whether t is one of sync/atomic's value types
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// checkAtomicCopies flags atomic-typed fields and elements used as plain
// values. Method-call receivers and address-taking are the sanctioned
// uses; anything else copies the cell.
func checkAtomicCopies(pass *Pass) {
	for _, file := range pass.Files {
		sanctioned := map[ast.Node]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					sanctioned[sel.X] = true // receiver of a method call
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					sanctioned[n.X] = true // &x.f keeps the cell shared
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypeOf(n.Value); t != nil && isAtomicNamed(t) {
						pass.Reportf(n.Value.Pos(), "ranging with a value variable copies each %s: iterate by index and use the element's atomic methods", types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.SelectorExpr:
				return checkAtomicValueUse(pass, n, sanctioned)
			case *ast.IndexExpr:
				return checkAtomicValueUse(pass, n, sanctioned)
			}
			return true
		})
	}
}

func checkAtomicValueUse(pass *Pass, expr ast.Expr, sanctioned map[ast.Node]bool) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || !tv.IsValue() || sanctioned[expr] {
		return true
	}
	if isAtomicNamed(tv.Type) {
		pass.Reportf(expr.Pos(), "%s is used as a plain value: copying an atomic cell forks it and drops concurrent updates; call its atomic methods on the shared cell", types.ExprString(expr))
		return false
	}
	return true
}

// checkMixedAccess flags locations accessed through the function-style
// atomic API (atomic.AddInt64(&x), ...) and also written plainly: the
// plain write races with every atomic access.
func checkMixedAccess(pass *Pass) {
	atomicTargets := map[types.Object]token.Position{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := referencedObject(pass, addr.X); obj != nil {
				atomicTargets[obj] = pass.Fset.Position(call.Pos())
			}
			return true
		})
	}
	if len(atomicTargets) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportPlainWrite(pass, lhs, atomicTargets)
				}
			case *ast.IncDecStmt:
				reportPlainWrite(pass, n.X, atomicTargets)
			}
			return true
		})
	}
}

func referencedObject(pass *Pass, expr ast.Expr) types.Object {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.Info.Uses[expr]
	case *ast.SelectorExpr:
		return pass.Info.Uses[expr.Sel]
	}
	return nil
}

func reportPlainWrite(pass *Pass, lhs ast.Expr, atomicTargets map[types.Object]token.Position) {
	obj := referencedObject(pass, lhs)
	if obj == nil {
		return
	}
	if at, ok := atomicTargets[obj]; ok {
		pass.Reportf(lhs.Pos(), "%s is written plainly but accessed atomically at %s:%d: the plain write races with every atomic access", obj.Name(), pathTail(at.Filename), at.Line)
	}
}

// --- seqlock protocol ---

type seqOpKind int

const (
	opSeqAcquire seqOpKind = iota // seq.Store(0)
	opSeqRelease                  // seq.Store(nonzero)
	opSeqLoad                     // seq.Load()
	opFieldStore                  // sibling field Store/Swap/Add/CompareAndSwap
	opFieldLoad                   // sibling field Load
)

type seqOp struct {
	kind  seqOpKind
	pos   token.Pos
	field string
}

// checkSeqlock enforces the flight-ring discipline on every struct that
// declares an atomic field named "seq": per function and per base
// expression, writers bracket sibling stores with seq.Store(0) ...
// seq.Store(n), and readers revalidate (a seq load before and after the
// field loads).
func checkSeqlock(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			groups := map[string][]seqOp{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				base, op, ok := classifySeqOp(pass, call)
				if ok {
					groups[base] = append(groups[base], op)
				}
				return true
			})
			for _, base := range sortedKeys(groups) {
				ops := groups[base]
				sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
				checkSeqWriter(pass, base, ops)
				checkSeqReader(pass, base, ops)
			}
		}
	}
}

// classifySeqOp recognizes a method call on an atomic field of a
// seqlock-carrying struct and returns the base expression plus op kind.
func classifySeqOp(pass *Pass, call *ast.CallExpr) (string, seqOp, bool) {
	method, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", seqOp{}, false
	}
	fieldSel, ok := ast.Unparen(method.X).(*ast.SelectorExpr)
	if !ok {
		return "", seqOp{}, false
	}
	recvType := pass.TypeOf(fieldSel.X)
	if recvType == nil {
		return "", seqOp{}, false
	}
	if ptr, ok := recvType.Underlying().(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	if !hasAtomicSeqField(recvType) {
		return "", seqOp{}, false
	}
	field := fieldSel.Sel.Name
	op := seqOp{pos: call.Pos(), field: field}
	switch {
	case field == "seq" && method.Sel.Name == "Store":
		if len(call.Args) == 1 && isConstZero(pass, call.Args[0]) {
			op.kind = opSeqAcquire
		} else {
			op.kind = opSeqRelease
		}
	case field == "seq" && method.Sel.Name == "Load":
		op.kind = opSeqLoad
	case field == "seq":
		return "", seqOp{}, false
	case method.Sel.Name == "Load":
		op.kind = opFieldLoad
	case method.Sel.Name == "Store" || method.Sel.Name == "Swap" ||
		method.Sel.Name == "Add" || method.Sel.Name == "CompareAndSwap":
		op.kind = opFieldStore
	default:
		return "", seqOp{}, false
	}
	return types.ExprString(fieldSel.X), op, true
}

// hasAtomicSeqField reports whether the struct type declares an atomic
// field named "seq" — the marker that the seqlock protocol applies.
func hasAtomicSeqField(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "seq" && isAtomicNamed(f.Type()) {
			return true
		}
	}
	return false
}

func isConstZero(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}

// checkSeqWriter verifies, in source order, that every sibling-field store
// sits between a seq.Store(0) acquire and a seq.Store(n) release.
func checkSeqWriter(pass *Pass, base string, ops []seqOp) {
	anyStore := false
	for _, op := range ops {
		if op.kind == opFieldStore {
			anyStore = true
		}
	}
	if !anyStore {
		return
	}
	inside := false
	for _, op := range ops {
		switch op.kind {
		case opSeqAcquire:
			inside = true
		case opSeqRelease:
			if !inside {
				pass.Reportf(op.pos, "seqlock release on %s without a preceding seq.Store(0) acquire", base)
			}
			inside = false
		case opFieldStore:
			if !inside {
				pass.Reportf(op.pos, "store to %s.%s outside the seqlock critical section: bracket sibling stores with %s.seq.Store(0) ... %s.seq.Store(n)", base, op.field, base, base)
			}
		}
	}
	if inside {
		pass.Reportf(ops[len(ops)-1].pos, "seqlock on %s is acquired but never released: readers would spin forever on seq==0", base)
	}
}

// checkSeqReader verifies that sibling-field loads are revalidated: a seq
// load before the first field load and another after the last.
func checkSeqReader(pass *Pass, base string, ops []seqOp) {
	firstLoad, lastLoad := token.NoPos, token.NoPos
	for _, op := range ops {
		if op.kind == opFieldLoad {
			if firstLoad == token.NoPos {
				firstLoad = op.pos
			}
			lastLoad = op.pos
		}
	}
	if firstLoad == token.NoPos {
		return
	}
	firstSeq, lastSeq := token.NoPos, token.NoPos
	nSeq := 0
	for _, op := range ops {
		if op.kind == opSeqLoad {
			nSeq++
			if firstSeq == token.NoPos {
				firstSeq = op.pos
			}
			lastSeq = op.pos
		}
	}
	if nSeq < 2 || firstSeq > firstLoad || lastSeq < lastLoad {
		pass.Reportf(firstLoad, "loads of %s fields lack seqlock revalidation: load %s.seq before and after the field loads and retry on change", base, base)
	}
}

func sortedKeys(m map[string][]seqOp) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
