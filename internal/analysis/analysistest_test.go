package analysis

// The fixture harness is a miniature analysistest: each directory under
// testdata holds one package's worth of Go files annotated with
// expectation comments of the form
//
//	expr // want "substring"
//
// (several quoted substrings per line allowed). The harness loads the
// fixture under a caller-chosen import path — which is how fixtures opt in
// or out of model-package status — runs one analyzer, and requires an
// exact correspondence: every diagnostic must match an expectation on its
// line, every expectation must be hit.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sharedLoader reuses one import cache (including the typechecked standard
// library) across every fixture in this package.
var sharedLoader = NewLoader()

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type expectation struct {
	file   string
	line   int
	substr string
}

// runFixture loads testdata/<dir> as one package under importPath, runs a
// over it, and compares diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	fixDir := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(fixDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	files := map[string]string{}
	var wants []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(fixDir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		files[path] = string(src)
		wants = append(wants, parseWants(t, path, string(src))...)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", fixDir)
	}

	pkg, err := sharedLoader.Source(importPath, files)
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}
	diags, err := RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: want diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

// parseWants extracts the expectation comments from one fixture file.
func parseWants(t *testing.T, path, src string) []expectation {
	t.Helper()
	var out []expectation
	for i, line := range strings.Split(src, "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		quoted := quotedRe.FindAllString(m[1], -1)
		if len(quoted) == 0 {
			t.Fatalf("%s:%d: want comment without a quoted substring", path, i+1)
		}
		for _, q := range quoted {
			s, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: malformed want string %s: %v", path, i+1, q, err)
			}
			out = append(out, expectation{file: path, line: i + 1, substr: s})
		}
	}
	return out
}

func TestModelstepModelPackage(t *testing.T) {
	runFixture(t, Modelstep, filepath.Join("modelstep", "model"), "example.test/internal/counter")
}

func TestModelstepNonModelPackage(t *testing.T) {
	runFixture(t, Modelstep, filepath.Join("modelstep", "nonmodel"), "example.test/pkg/util")
}

func TestModelstepOutOfBandScheduler(t *testing.T) {
	runFixture(t, Modelstep, "outofband", "example.test/internal/sim")
}

func TestPoolalloc(t *testing.T) {
	runFixture(t, Poolalloc, "poolalloc", "example.test/internal/core")
}

func TestCtxflow(t *testing.T) {
	runFixture(t, Ctxflow, "ctxflow", "example.test/pkg/app")
}

func TestBoundedloop(t *testing.T) {
	runFixture(t, Boundedloop, "boundedloop", "example.test/internal/maxreg")
}

func TestStepbound(t *testing.T) {
	runFixture(t, Stepbound, "stepbound", "example.test/internal/counter")
}

func TestAtomicprotocol(t *testing.T) {
	runFixture(t, Atomicprotocol, "atomicprotocol", "example.test/internal/obs")
}

func TestPadalign(t *testing.T) {
	runFixture(t, Padalign, "padalign", "example.test/pkg/app")
}

// TestStaleAnnotationsFixture runs the full suite over the suppressions
// fixture and checks that exactly the unconsulted annotation is reported:
// the one padalign consumed must not be.
func TestStaleAnnotationsFixture(t *testing.T) {
	fixDir := filepath.Join("testdata", "suppressions")
	entries, err := os.ReadDir(fixDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	files := map[string]string{}
	for _, e := range entries {
		path := filepath.Join(fixDir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		files[path] = string(src)
	}
	pkg, err := sharedLoader.Source("example.test/pkg/app", files)
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}
	if _, err := RunAll([]*Package{pkg}); err != nil {
		t.Fatalf("running suite: %v", err)
	}
	stale := StaleAnnotations([]*Package{pkg})
	if len(stale) != 1 {
		t.Fatalf("StaleAnnotations reported %d diagnostics, want 1:\n%v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "tradeoffvet:outofband") {
		t.Errorf("stale diagnostic names the wrong annotation: %s", stale[0])
	}
}
