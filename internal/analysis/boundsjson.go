package analysis

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// BoundsSchema identifies the machine-readable certified-bound table
// emitted by tradeoffvet -bounds -format json. The runtime conformance
// layer (internal/obs/bounds) consumes exactly this shape, so the schema
// string is versioned independently of the diagnostic formats.
const BoundsSchema = "tradeoffs/bounds/v1"

// BoundsFile is the top-level JSON document: one row per declared bound
// clause, in source order.
type BoundsFile struct {
	Schema string      `json:"schema"`
	Rows   []BoundsRow `json:"rows"`
}

// BoundsRow is one clause of the certified-bound table. Family is the
// implementing type in "pkg.Recv" display form (e.g. "counter.FArray")
// and Op the method name; together they reproduce Func. Symbols lists
// the free size parameters of the declared expression — the values a
// runtime loader must supply to instantiate the bound.
type BoundsRow struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Func     string   `json:"func"`
	Family   string   `json:"family"`
	Op       string   `json:"op"`
	Mode     string   `json:"mode"`
	Class    string   `json:"class"`
	Declared string   `json:"declared"`
	Derived  string   `json:"derived"`
	Symbols  []string `json:"symbols,omitempty"`
	OK       bool     `json:"ok"`

	// Amortized marks bounds that hold per operation only on average
	// (the function defers maintenance via an amortized cost override),
	// so a single execution may legitimately exceed them.
	Amortized bool `json:"amortized,omitempty"`
}

// WriteBoundsJSON renders the bound table as tradeoffs/bounds/v1 JSON.
// Positions are relativized against root (module root) so the committed
// file is stable across checkouts.
func WriteBoundsJSON(w io.Writer, rows []BoundRow, root string) error {
	out := BoundsFile{Schema: BoundsSchema, Rows: make([]BoundsRow, 0, len(rows))}
	for _, r := range rows {
		family, op := splitFunc(r.Func)
		out.Rows = append(out.Rows, BoundsRow{
			File:      relPath(root, r.Pos.Filename),
			Line:      r.Pos.Line,
			Func:      r.Func,
			Family:    family,
			Op:        op,
			Mode:      r.Mode,
			Class:     r.Class,
			Declared:  r.Declared,
			Derived:   r.Derived,
			Symbols:   exprSymbols(r.Declared),
			OK:        r.OK,
			Amortized: r.Amortized,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// splitFunc breaks a "pkg.Recv.Method" display name into the family
// ("pkg.Recv") and the method. Package-level functions ("pkg.Func")
// yield family "pkg".
func splitFunc(fn string) (family, op string) {
	i := strings.LastIndex(fn, ".")
	if i < 0 {
		return "", fn
	}
	return fn[:i], fn[i+1:]
}

// exprSymbols returns the sorted free symbols of a declared bound
// expression, nil when it does not parse (rows recording a parse error
// carry the raw annotation text in Declared).
func exprSymbols(expr string) []string {
	c, err := parseCostExpr(expr)
	if err != nil || c.unbounded {
		return nil
	}
	set := map[string]bool{}
	for k := range c.terms {
		if k == "" {
			continue
		}
		for _, s := range strings.Split(k, "*") {
			set[s] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	syms := make([]string, 0, len(set))
	for s := range set {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	return syms
}
