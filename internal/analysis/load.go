package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one typechecked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ann *annotationIndex
}

// A Loader parses and typechecks packages from source. One Loader shares a
// FileSet and an import cache across every package it loads, so the
// standard library is typechecked at most once per process.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader backed by the standard library's "source"
// importer. Cgo is disabled for the whole process: the importer must be
// able to typecheck net, os/user etc. from pure-Go source, and none of this
// repository uses cgo.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// Dir loads the package in dir under the given import path. Test files
// (_test.go) are excluded: tests legitimately reach around the model (they
// inspect memory out of band and build adversary schedules), so the
// invariants the suite enforces apply to non-test code only.
func (l *Loader) Dir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !eligibleGoFile(e.Name()) {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[filepath.Join(dir, e.Name())] = string(src)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	return l.Source(importPath, files)
}

// Source loads a package from in-memory file contents keyed by filename.
// It is the loading primitive behind Dir and the injection tests in
// cmd/tradeoffvet, which typecheck a deliberately broken package against
// the real module without touching the tree.
func (l *Loader) Source(importPath string, files map[string]string) (*Package, error) {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, parsed, info)
	if len(typeErrs) > 0 {
		var b strings.Builder
		fmt.Fprintf(&b, "analysis: typecheck %s:", importPath)
		for i, e := range typeErrs {
			if i == 8 {
				fmt.Fprintf(&b, "\n\t... and %d more", len(typeErrs)-i)
				break
			}
			fmt.Fprintf(&b, "\n\t%v", e)
		}
		return nil, fmt.Errorf("%s", b.String())
	}

	pkg := &Package{
		Path:  importPath,
		Fset:  l.fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}
	pkg.ann = buildAnnotationIndex(l.fset, parsed)
	return pkg, nil
}

// LoadPatterns loads the module packages matched by the given patterns
// ("./..." for everything, "./dir/..." for a subtree, "./dir" for one
// package), resolving the module root by walking up from the current
// directory. testdata directories and hidden/underscore directories are
// skipped, matching the go tool. The default package set is the whole
// module — examples/ and cmd/ included, so migrated callers cannot
// quietly regress onto raw sync/atomic or unpadded pools. The returned
// root is the module root directory, for relativizing diagnostic paths.
func LoadPatterns(patterns []string) (pkgs []*Package, root string, err error) {
	pkgs, _, root, err = LoadModule(patterns)
	return pkgs, root, err
}

// LoadModule loads every package in the module and returns both the
// subset matched by patterns (the packages under report) and the full
// set. Step summaries are interprocedural: even when only one package is
// being reported on, stepbound must chase calls through the whole module
// call graph, so callers build the Program from all and report on
// matched.
func LoadModule(patterns []string) (matched, all []*Package, root string, err error) {
	root, modPath, err := findModule()
	if err != nil {
		return nil, nil, "", err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, nil, "", err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := NewLoader()
	for _, rel := range dirs {
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Dir(filepath.Join(root, rel), importPath)
		if err != nil {
			return nil, nil, "", err
		}
		all = append(all, pkg)
		if matchesAny(rel, patterns, modPath) {
			matched = append(matched, pkg)
		}
	}
	if len(matched) == 0 {
		return nil, nil, "", fmt.Errorf("analysis: no packages match %v", patterns)
	}
	return matched, all, root, nil
}

// findModule walks up from the working directory to go.mod and returns the
// module root directory and module path.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above working directory")
		}
		dir = parent
	}
}

// packageDirs returns the module-relative directories containing at least
// one eligible (non-test) Go file, sorted.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !eligibleGoFile(d.Name()) {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func eligibleGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// matchesAny reports whether the module-relative directory rel is selected
// by any pattern. Patterns may also be written against the full import
// path (e.g. example.com/m/internal/...).
func matchesAny(rel string, patterns []string, modPath string) bool {
	rel = filepath.ToSlash(rel)
	full := modPath
	if rel != "." {
		full = modPath + "/" + rel
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == ".":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") ||
				full == prefix || strings.HasPrefix(full, prefix+"/") {
				return true
			}
		case rel == pat || full == pat:
			return true
		}
	}
	return false
}

// An Annotation is one //tradeoffvet:NAME [args...] comment. Suppressors
// (outofband, casretry, seqlock, unpadded) silence diagnostics; directive
// annotations (bound, loopbound, param, cost) feed the stepbound
// interpreter. Every annotation tracks whether anything consulted it, so
// tradeoffvet -unused-suppressions can flag stale escape hatches.
type Annotation struct {
	Name string
	Args string // everything after the name, trimmed
	Pos  token.Position

	used bool
}

// markUsed records that the annotation influenced an analysis result.
func (a *Annotation) markUsed() { a.used = true }

// annotationIndex records where //tradeoffvet: annotations appear, so
// Pass.Reportf can honor the escape hatches: an annotation suppresses a
// diagnostic on its own line, on the line directly below, or anywhere
// inside the top-level declaration whose doc comment carries it.
type annotationIndex struct {
	// all holds every annotation, in file order.
	all []*Annotation
	// lines maps filename -> line -> annotations on that line.
	lines map[string]map[int][]*Annotation
	// decls maps filename -> declaration ranges annotated via doc comment.
	decls map[string][]annotatedRange
}

type annotatedRange struct {
	from, to int
	anns     []*Annotation
}

// parseAnnotationComment extracts the annotation from a single comment, or
// returns nil ("//tradeoffvet:outofband reason..." -> {outofband, "reason..."}).
func parseAnnotationComment(c *ast.Comment) *Annotation {
	text := strings.TrimPrefix(c.Text, "//")
	rest, ok := strings.CutPrefix(text, "tradeoffvet:")
	if !ok {
		return nil
	}
	name, args, _ := strings.Cut(rest, " ")
	if name = strings.TrimSpace(name); name == "" {
		return nil
	}
	return &Annotation{Name: name, Args: strings.TrimSpace(args)}
}

// annotationNames extracts tradeoffvet annotation names from one comment
// group ("//tradeoffvet:outofband reason..." -> "outofband").
func annotationNames(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var names []string
	for _, c := range cg.List {
		if a := parseAnnotationComment(c); a != nil {
			names = append(names, a.Name)
		}
	}
	return names
}

func buildAnnotationIndex(fset *token.FileSet, files []*ast.File) *annotationIndex {
	idx := &annotationIndex{
		lines: map[string]map[int][]*Annotation{},
		decls: map[string][]annotatedRange{},
	}
	// byComment lets the decl ranges share Annotation values with the line
	// index, so a use through either lookup marks the same annotation.
	byComment := map[*ast.Comment]*Annotation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a := parseAnnotationComment(c)
				if a == nil {
					continue
				}
				a.Pos = fset.Position(c.Pos())
				byComment[c] = a
				idx.all = append(idx.all, a)
				byLine := idx.lines[a.Pos.Filename]
				if byLine == nil {
					byLine = map[int][]*Annotation{}
					idx.lines[a.Pos.Filename] = byLine
				}
				byLine[a.Pos.Line] = append(byLine[a.Pos.Line], a)
			}
		}
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			var anns []*Annotation
			for _, c := range doc.List {
				if a := byComment[c]; a != nil {
					anns = append(anns, a)
				}
			}
			if len(anns) == 0 {
				continue
			}
			from := fset.Position(decl.Pos())
			to := fset.Position(decl.End())
			idx.decls[from.Filename] = append(idx.decls[from.Filename], annotatedRange{
				from: from.Line,
				to:   to.Line,
				anns: anns,
			})
		}
	}
	return idx
}

// suppressed reports whether an annotation named name covers the position,
// marking any matching annotation as used.
func (p *Package) suppressed(name string, pos token.Position) bool {
	if p.ann == nil || name == "" {
		return false
	}
	hit := false
	if byLine := p.ann.lines[pos.Filename]; byLine != nil {
		for _, l := range []int{pos.Line, pos.Line - 1} {
			for _, a := range byLine[l] {
				if a.Name == name {
					a.markUsed()
					hit = true
				}
			}
		}
	}
	for _, r := range p.ann.decls[pos.Filename] {
		if pos.Line >= r.from && pos.Line <= r.to {
			for _, a := range r.anns {
				if a.Name == name {
					a.markUsed()
					hit = true
				}
			}
		}
	}
	return hit
}

// annotationAt returns the annotation named name on the given line or the
// line directly above, marking it used. The stepbound interpreter uses it
// to find loopbound and cost directives at the statement they govern.
func (p *Package) annotationAt(name, filename string, line int) *Annotation {
	if p.ann == nil {
		return nil
	}
	byLine := p.ann.lines[filename]
	if byLine == nil {
		return nil
	}
	for _, l := range []int{line, line - 1} {
		for _, a := range byLine[l] {
			if a.Name == name {
				a.markUsed()
				return a
			}
		}
	}
	return nil
}

// funcAnnotations returns the annotations named name attached to a
// function declaration: in its doc comment or on the line directly above.
// The returned annotations are not marked used; the caller marks them as
// it consumes them.
func (p *Package) funcAnnotations(name string, fset *token.FileSet, fn *ast.FuncDecl) []*Annotation {
	if p.ann == nil {
		return nil
	}
	declPos := fset.Position(fn.Pos())
	from := declPos.Line - 1
	if fn.Doc != nil {
		from = fset.Position(fn.Doc.Pos()).Line
	}
	var anns []*Annotation
	for _, a := range p.ann.all {
		if a.Name == name && a.Pos.Filename == declPos.Filename &&
			a.Pos.Line >= from && a.Pos.Line < declPos.Line {
			anns = append(anns, a)
		}
	}
	return anns
}

// staleAnnotations returns the package's annotations that no analyzer
// consulted: suppressors that silence nothing and stepbound directives
// nothing reads. Run the full suite first; staleness is defined against
// the analyses that actually ran.
func (p *Package) staleAnnotations() []*Annotation {
	if p.ann == nil {
		return nil
	}
	var stale []*Annotation
	for _, a := range p.ann.all {
		if !a.used {
			stale = append(stale, a)
		}
	}
	return stale
}
