package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Relativize rewrites diagnostic filenames to be module-root relative with
// forward slashes, so JSON/SARIF artifacts and baselines are stable across
// checkouts and operating systems.
func Relativize(diags []Diagnostic, root string) {
	for i := range diags {
		diags[i].Pos.Filename = relPath(root, diags[i].Pos.Filename)
	}
}

func relPath(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// jsonDiagnostic is the stable shape of one finding in -format json output
// and in baseline files.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func toJSONDiagnostics(diags []Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// WriteJSON emits the machine-readable report consumed by CI:
// {"diagnostics": [...]} with diagnostics in deterministic order.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
	}{toJSONDiagnostics(diags)})
}

// SARIF 2.1.0, minimally: one run, one rule per analyzer, one result per
// diagnostic. Enough for code-scanning upload without pulling in a SARIF
// dependency.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription map[string]string `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string            `json:"ruleId"`
	Level     string            `json:"level"`
	Message   map[string]string `json:"message"`
	Locations []sarifLocation   `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the diagnostics as a SARIF 2.1.0 log.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	rules := []sarifRule{}
	seen := map[string]bool{}
	addRule := func(name, doc string) {
		if !seen[name] {
			seen[name] = true
			rules = append(rules, sarifRule{ID: name, ShortDescription: map[string]string{"text": doc}})
		}
	}
	for _, a := range Analyzers() {
		addRule(a.Name, a.Doc)
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		addRule(d.Analyzer, d.Analyzer) // covers pseudo-analyzers like "suppressions"
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: map[string]string{"text": d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tradeoffvet", Rules: rules}},
			Results: results,
		}},
	})
}

// WriteText emits the human-readable one-line-per-finding form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// A baseline is a multiset of accepted findings keyed by (file, analyzer,
// message) — line numbers are deliberately excluded so unrelated edits
// don't invalidate entries.
type baselineKey struct {
	File     string
	Analyzer string
	Message  string
}

// WriteBaseline persists the diagnostics as a baseline file.
func WriteBaseline(path string, diags []Diagnostic) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(toJSONDiagnostics(diags))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadBaseline reads a baseline file into a multiset.
func LoadBaseline(path string) (map[baselineKey]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []jsonDiagnostic
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	base := map[baselineKey]int{}
	for _, e := range entries {
		base[baselineKey{File: e.File, Analyzer: e.Analyzer, Message: e.Message}]++
	}
	return base, nil
}

// FilterBaseline drops diagnostics matched by the baseline multiset and
// returns the survivors plus the number suppressed.
func FilterBaseline(diags []Diagnostic, base map[baselineKey]int) (kept []Diagnostic, suppressed int) {
	remaining := map[baselineKey]int{}
	for k, v := range base {
		remaining[k] = v
	}
	for _, d := range diags {
		k := baselineKey{File: d.Pos.Filename, Analyzer: d.Analyzer, Message: d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
